package repro_test

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation section, plus the ablations. Each benchmark
// regenerates its artifact through internal/experiments and, on -v or
// with -benchtime=1x, prints the reproduced table so the rows/series
// can be compared with the paper. Headline metrics (average model error,
// HDD/SSD gaps, cloud savings) are reported through b.ReportMetric so
// they appear in the benchmark output.
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkFig7 -benchtime=1x -v

import (
	"context"
	"os"
	"testing"
	"time"

	"repro/internal/experiments"
)

// BenchmarkAllArtifacts regenerates the entire registry through the
// parallel worker-pool executor (experiments.RunAll) — the bench-smoke
// CI gate: it fails if any artifact errors, and reports the pool's
// speedup (total artifact time / wall time) alongside the artifact
// count.
func BenchmarkAllArtifacts(b *testing.B) {
	var artifacts int
	var wall, artifactTime time.Duration
	for i := 0; i < b.N; i++ {
		start := time.Now()
		reports := experiments.RunAll(context.Background(), experiments.Options{})
		wall = time.Since(start)
		artifacts = len(reports)
		artifactTime = 0
		for _, r := range reports {
			artifactTime += r.Runtime
			if r.Err != nil {
				b.Fatalf("%s: %v", r.ID, r.Err)
			}
		}
	}
	b.ReportMetric(float64(artifacts), "artifacts")
	if wall > 0 {
		b.ReportMetric(artifactTime.Seconds()/wall.Seconds(), "xpool")
	}
}

// benchArtifact runs one registered experiment per iteration, printing
// the table once and attaching its metrics to the benchmark result.
func benchArtifact(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		tab, err := e.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		last = tab
	}
	b.StopTimer()
	for name, v := range last.Metrics {
		unit := name
		switch name {
		case "avg_error":
			unit = "%err"
			v *= 100
		case "saving_R1":
			unit = "%saveR1"
			v *= 100
		case "saving_R2":
			unit = "%saveR2"
			v *= 100
		case "optimal_cost":
			unit = "$opt"
		}
		b.ReportMetric(v, unit)
	}
	if testing.Verbose() {
		if _, err := last.WriteTo(os.Stdout); err != nil {
			b.Fatal(err)
		}
	}
}

// --- GATK4 motivation study (Section III) ---

// BenchmarkTableIV regenerates Table IV: per-stage I/O volumes.
func BenchmarkTableIV(b *testing.B) { benchArtifact(b, "tab4") }

// BenchmarkFig2 regenerates Fig. 2: stage runtimes across the four
// hybrid disk configurations.
func BenchmarkFig2(b *testing.B) { benchArtifact(b, "fig2") }

// BenchmarkFig3 regenerates Fig. 3: the core-count sweep on 2SSD/2HDD.
func BenchmarkFig3(b *testing.B) { benchArtifact(b, "fig3") }

// BenchmarkFig5 regenerates Fig. 5: effective bandwidth and IOPS vs
// request size for both device models.
func BenchmarkFig5(b *testing.B) { benchArtifact(b, "fig5") }

// --- model (Section IV) ---

// BenchmarkFig6 regenerates Fig. 6: the three execution phases of the
// toy example, simulator vs Eq. 1.
func BenchmarkFig6(b *testing.B) { benchArtifact(b, "fig6") }

// --- model validation (Section V) ---

// BenchmarkFig7 regenerates Fig. 7: GATK4 measured vs model across
// configurations and core counts.
func BenchmarkFig7(b *testing.B) { benchArtifact(b, "fig7") }

// BenchmarkFig8a regenerates Fig. 8a: Logistic Regression, small
// (cached) dataset.
func BenchmarkFig8a(b *testing.B) { benchArtifact(b, "fig8a") }

// BenchmarkFig8b regenerates Fig. 8b: Logistic Regression, large
// (spilled) dataset.
func BenchmarkFig8b(b *testing.B) { benchArtifact(b, "fig8b") }

// BenchmarkFig9 regenerates Fig. 9: SVM.
func BenchmarkFig9(b *testing.B) { benchArtifact(b, "fig9") }

// BenchmarkFig10 regenerates Fig. 10: PageRank.
func BenchmarkFig10(b *testing.B) { benchArtifact(b, "fig10") }

// BenchmarkFig11 regenerates Fig. 11: Triangle Count.
func BenchmarkFig11(b *testing.B) { benchArtifact(b, "fig11") }

// BenchmarkFig12 regenerates Fig. 12: Terasort.
func BenchmarkFig12(b *testing.B) { benchArtifact(b, "fig12") }

// --- cloud cost study (Section VI) ---

// BenchmarkTableV regenerates Table V: Google Cloud disk prices.
func BenchmarkTableV(b *testing.B) { benchArtifact(b, "tab5") }

// BenchmarkFig13 regenerates Fig. 13: cost vs HDD sizes with the R1/R2
// reference points.
func BenchmarkFig13(b *testing.B) { benchArtifact(b, "fig13") }

// BenchmarkFig14 regenerates Fig. 14: measured vs model runtime while
// sweeping the HDD local size.
func BenchmarkFig14(b *testing.B) { benchArtifact(b, "fig14") }

// BenchmarkFig15 regenerates Fig. 15: cost and runtime for SSD local
// sizes across core counts.
func BenchmarkFig15(b *testing.B) { benchArtifact(b, "fig15") }

// BenchmarkHeadlineSavings regenerates the Section VI-4 summary: the
// optimal configuration and the 38%/57% savings vs R1/R2.
func BenchmarkHeadlineSavings(b *testing.B) { benchArtifact(b, "headline") }

// --- ablations (DESIGN.md A1–A3) ---

// BenchmarkAblationPeakBW compares the Doppio model against the
// peak-bandwidth (Ernest-style) and no-overlap variants.
func BenchmarkAblationPeakBW(b *testing.B) { benchArtifact(b, "ablation-model") }

// BenchmarkAblationGC isolates the MarkDuplicate GC model.
func BenchmarkAblationGC(b *testing.B) { benchArtifact(b, "ablation-gc") }

// --- extensions (DESIGN.md E17, X1–X3) ---

// BenchmarkErrorBars repeats GATK4 over five seeds (the paper's error
// bars).
func BenchmarkErrorBars(b *testing.B) { benchArtifact(b, "errorbars") }

// BenchmarkGATK4Full runs the six-stage pipeline with BWA and
// HaplotypeCaller (the paper's §VIII future work).
func BenchmarkGATK4Full(b *testing.B) { benchArtifact(b, "gatk4-full") }

// BenchmarkMultiDisk validates the §IV-C multi-disk generality claim.
func BenchmarkMultiDisk(b *testing.B) { benchArtifact(b, "multidisk") }

// BenchmarkScheduler quantifies the §I model-driven scheduling use case.
func BenchmarkScheduler(b *testing.B) { benchArtifact(b, "scheduler") }

// BenchmarkOusterhoutReconciliation reproduces §VII-A: why SQL workloads
// on a 4:1 CPU:disk cluster see <=19%% gains from I/O optimisation.
func BenchmarkOusterhoutReconciliation(b *testing.B) { benchArtifact(b, "ousterhout") }

// BenchmarkSpeculation measures straggler tails and Spark speculative
// execution on a BR-like stage.
func BenchmarkSpeculation(b *testing.B) { benchArtifact(b, "speculation") }
