// Package repro is a from-scratch Go reproduction of "Doppio: I/O-Aware
// Performance Analysis, Modeling and Optimization for In-Memory
// Computing Framework" (Zhou et al., ISPASS 2018).
//
// The library lives under internal/: a flow-level Spark cluster
// simulator (internal/spark) over storage device models
// (internal/disk), the Doppio analytical model and its four-sample-run
// calibration (internal/core), the paper's workloads
// (internal/workloads), the Google Cloud cost model and configuration
// optimizer (internal/cloud, internal/optimizer), profiling utilities
// (internal/profile) and the table/figure regeneration harness
// (internal/experiments). See README.md for a tour and EXPERIMENTS.md
// for the paper-vs-reproduction results. The benchmarks in
// bench_test.go regenerate every table and figure of the paper's
// evaluation.
package repro
