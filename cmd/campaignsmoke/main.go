// Command campaignsmoke is the CI campaign-smoke gate: it proves that a
// campaign killed with SIGKILL mid-run loses nothing and wastes nothing.
// Using a built doppio binary it
//
//  1. runs a small study uninterrupted and merges its checkpoint into a
//     reference report + BENCH-style trend JSON;
//  2. starts the same study fresh, waits until a handful of points are
//     durably checkpointed, SIGKILLs the process, and resumes with
//     -resume — gating that the resumed run skipped exactly the
//     checkpointed points and executed exactly the remainder (zero
//     recomputed-point waste above the in-flight window);
//  3. gates that every point appears exactly once in the resumed
//     checkpoint and that the merged report and trend JSON are
//     byte-identical to the uninterrupted run's;
//  4. repeats the study as two shards (-shards 2 -shard {0,1}) and gates
//     that merging the shard checkpoints reproduces the same bytes;
//  5. runs a two-point heap_gbs off-vs-on study and gates that the
//     heap-limited point spilled, stalled and slowed down while the
//     memory-off point reports no memory activity — the heap axis works
//     end-to-end through config, checkpoint and trend JSON.
//
// Usage:
//
//	go build -o /tmp/doppio ./cmd/doppio
//	go run ./cmd/campaignsmoke -doppio /tmp/doppio
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"time"
)

// studyJSON is sized so points are expensive enough (~0.3-1s of
// simulated pagerank each) that SIGKILL reliably lands mid-run, and the
// whole smoke still finishes in well under a minute.
const studyJSON = `{
  "name": "smoke",
  "base": {"workload": "pagerank", "max_task_failures": 8},
  "axes": {
    "cores": [4, 8],
    "fetch_fail_probs": [0, 0.02],
    "data_scales": [1, 2],
    "seeds": [1, 2, 3]
  },
  "parallel": 2
}`

const totalPoints = 24 // 2 cores x 2 fault rates x 2 scales x 3 seeds

// killAfterRecords is how many durable records the interrupted run must
// have before the SIGKILL: enough to make "skipped on resume" a real
// assertion, small enough that plenty of work remains.
const killAfterRecords = 4

var summaryRE = regexp.MustCompile(`# campaign \S+ shard \d+/\d+: (\d+) points, (\d+) skipped \(checkpointed\), (\d+) executed, (\d+) failed, (\d+) unfinished`)

func main() {
	doppio := flag.String("doppio", "", "path to a built doppio binary (required)")
	keep := flag.Bool("keep", false, "keep the work directory for debugging")
	flag.Parse()
	if *doppio == "" {
		fatal("campaignsmoke: -doppio is required (go build -o /tmp/doppio ./cmd/doppio)")
	}
	bin, err := filepath.Abs(*doppio)
	if err != nil {
		fatal("campaignsmoke: %v", err)
	}
	dir, err := os.MkdirTemp("", "campaignsmoke-")
	if err != nil {
		fatal("campaignsmoke: %v", err)
	}
	if !*keep {
		defer os.RemoveAll(dir)
	}
	fmt.Printf("# work directory %s\n", dir)
	cfgPath := filepath.Join(dir, "study.json")
	if err := os.WriteFile(cfgPath, []byte(studyJSON), 0o644); err != nil {
		fatal("campaignsmoke: %v", err)
	}
	s := smoke{bin: bin, dir: dir, cfg: cfgPath}

	s.uninterrupted()
	s.killAndResume()
	s.sharded()
	s.memoryPoint()
	fmt.Println("PASS campaign-smoke: kill-and-resume and shard-merge reproduce the uninterrupted bytes with zero recompute waste, and the heap axis spills end-to-end")
}

type smoke struct {
	bin, dir, cfg string
	refReport     []byte
	refBench      []byte
}

// uninterrupted produces the reference artifacts.
func (s *smoke) uninterrupted() {
	ckpt := filepath.Join(s.dir, "a.jsonl")
	out := s.run("uninterrupted run",
		"campaign", "run", "-config", s.cfg, "-checkpoint", ckpt, "-q")
	total, skipped, executed, _, unfinished := parseSummary(out)
	if total != totalPoints || executed != totalPoints || skipped != 0 || unfinished != 0 {
		fatal("campaignsmoke: uninterrupted run summary off: total=%d skipped=%d executed=%d unfinished=%d (want %d/0/%d/0)",
			total, skipped, executed, unfinished, totalPoints, totalPoints)
	}
	s.refReport, s.refBench = s.merge("reference merge", ckpt)
	fmt.Printf("ok  uninterrupted: %d points executed, reference report %d bytes\n", executed, len(s.refReport))
}

// killAndResume is the heart of the gate.
func (s *smoke) killAndResume() {
	ckpt := filepath.Join(s.dir, "b.jsonl")
	cmd := exec.Command(s.bin, "campaign", "run", "-config", s.cfg, "-checkpoint", ckpt, "-q")
	cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
	if err := cmd.Start(); err != nil {
		fatal("campaignsmoke: starting interrupted run: %v", err)
	}
	// Wait for durable records, then SIGKILL — no drain, no handler, the
	// hard machine-crash case. The fsync contract says at most the final
	// record may be torn.
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	deadline := time.Now().Add(2 * time.Minute)
	for countRecords(ckpt) < killAfterRecords {
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			fatal("campaignsmoke: interrupted run produced <%d records in 2m", killAfterRecords)
		}
		select {
		case werr := <-done:
			fatal("campaignsmoke: run finished (%v) before it could be killed; grow the study", werr)
		case <-time.After(5 * time.Millisecond):
		}
	}
	if err := cmd.Process.Kill(); err != nil {
		fatal("campaignsmoke: SIGKILL: %v", err)
	}
	if werr := <-done; werr == nil {
		fatal("campaignsmoke: run exited cleanly before SIGKILL landed; grow the study")
	}
	completed := countRecords(ckpt)
	if completed >= totalPoints {
		fatal("campaignsmoke: all %d points checkpointed before the kill; grow the study", totalPoints)
	}
	fmt.Printf("ok  killed mid-run with %d of %d points durably checkpointed\n", completed, totalPoints)

	out := s.run("resume", "campaign", "run", "-config", s.cfg, "-checkpoint", ckpt, "-resume", "-q")
	total, skipped, executed, failed, unfinished := parseSummary(out)
	// Zero-waste gate: the resume must skip every durable record and
	// execute exactly the remainder. Anything else means completed work
	// was recomputed (waste) or lost.
	if total != totalPoints || skipped != completed || executed != totalPoints-completed || unfinished != 0 || failed != 0 {
		fatal("campaignsmoke: resume summary off: total=%d skipped=%d executed=%d failed=%d unfinished=%d (want %d/%d/%d/0/0)",
			total, skipped, executed, failed, unfinished, totalPoints, completed, totalPoints-completed)
	}
	// Exactly-once gate, independent of the merge path: every point hash
	// appears exactly once in the final checkpoint.
	if n, unique := recordStats(ckpt); n != totalPoints || unique != totalPoints {
		fatal("campaignsmoke: resumed checkpoint has %d records, %d unique hashes (want %d/%d)", n, unique, totalPoints, totalPoints)
	}
	report, bench := s.merge("post-resume merge", ckpt)
	mustIdentical("merged report (interrupted+resumed vs uninterrupted)", s.refReport, report)
	mustIdentical("trend JSON (interrupted+resumed vs uninterrupted)", s.refBench, bench)
	fmt.Printf("ok  resume: skipped %d, executed %d, report byte-identical\n", skipped, executed)
}

// sharded runs the study as two processes and merges their checkpoints.
func (s *smoke) sharded() {
	var ckpts []string
	for shard := 0; shard < 2; shard++ {
		ckpt := filepath.Join(s.dir, fmt.Sprintf("s%d.jsonl", shard))
		ckpts = append(ckpts, ckpt)
		out := s.run(fmt.Sprintf("shard %d", shard),
			"campaign", "run", "-config", s.cfg, "-checkpoint", ckpt,
			"-shards", "2", "-shard", strconv.Itoa(shard), "-q")
		total, _, executed, _, unfinished := parseSummary(out)
		if executed != total || unfinished != 0 {
			fatal("campaignsmoke: shard %d executed %d of %d points, %d unfinished", shard, executed, total, unfinished)
		}
	}
	report, bench := s.merge("shard merge", ckpts...)
	mustIdentical("merged report (2 shards vs uninterrupted)", s.refReport, report)
	mustIdentical("trend JSON (2 shards vs uninterrupted)", s.refBench, bench)
	fmt.Println("ok  shards: 2-way fan-out merge byte-identical")
}

// memStudyJSON sweeps the executor heap off-vs-on at one cheap sql
// point; 0.5GB is far below the scan stage's ~320MB-per-core working
// sets, so the second point must spill.
const memStudyJSON = `{
  "name": "smokemem",
  "base": {"workload": "sql", "nodes": 2, "cores": 4},
  "axes": {"heap_gbs": [0, 0.5]},
  "parallel": 2
}`

// memoryPoint gates the heap_gbs axis end-to-end: config → points →
// simulation → checkpoint → trend JSON.
func (s *smoke) memoryPoint() {
	cfgPath := filepath.Join(s.dir, "memstudy.json")
	if err := os.WriteFile(cfgPath, []byte(memStudyJSON), 0o644); err != nil {
		fatal("campaignsmoke: %v", err)
	}
	ckpt := filepath.Join(s.dir, "mem.jsonl")
	out := s.run("memory-point run",
		"campaign", "run", "-config", cfgPath, "-checkpoint", ckpt, "-q")
	total, _, executed, failed, unfinished := parseSummary(out)
	if total != 2 || executed != 2 || failed != 0 || unfinished != 0 {
		fatal("campaignsmoke: memory study summary off: total=%d executed=%d failed=%d unfinished=%d (want 2/2/0/0)",
			total, executed, failed, unfinished)
	}
	benchPath := filepath.Join(s.dir, "mem-bench.json")
	s.run("memory-point merge", "campaign", "merge", "-config", cfgPath,
		"-bench", benchPath, ckpt)
	data, err := os.ReadFile(benchPath)
	if err != nil {
		fatal("campaignsmoke: %v", err)
	}
	var bench struct {
		Points map[string]struct {
			TotalSeconds   float64 `json:"total_seconds"`
			SpilledTasks   int     `json:"spilled_tasks"`
			SpillBytes     int64   `json:"spill_bytes"`
			GCStallSeconds float64 `json:"gc_stall_seconds"`
		} `json:"points"`
	}
	if err := json.Unmarshal(data, &bench); err != nil {
		fatal("campaignsmoke: parsing %s: %v", benchPath, err)
	}
	free, ok := bench.Points["sql/n2/p4/ssd/q0/x1/s0"]
	if !ok {
		fatal("campaignsmoke: memory-off point missing from trend JSON (keys: %v)", keysOf(bench.Points))
	}
	tight, ok := bench.Points["sql/n2/p4/ssd/h0.5/q0/x1/s0"]
	if !ok {
		fatal("campaignsmoke: heap-limited point missing from trend JSON (keys: %v)", keysOf(bench.Points))
	}
	if free.SpilledTasks != 0 || free.SpillBytes != 0 || free.GCStallSeconds != 0 {
		fatal("campaignsmoke: memory-off point reports memory activity: %+v", free)
	}
	if tight.SpilledTasks == 0 || tight.SpillBytes <= 0 {
		fatal("campaignsmoke: heap-limited point did not spill: %+v", tight)
	}
	if tight.TotalSeconds <= free.TotalSeconds {
		fatal("campaignsmoke: heap-limited total %.1fs not above memory-off %.1fs",
			tight.TotalSeconds, free.TotalSeconds)
	}
	fmt.Printf("ok  memory point: 0.5GB heap spilled %d tasks (%d bytes), %.1fs vs %.1fs memory-off\n",
		tight.SpilledTasks, tight.SpillBytes, tight.TotalSeconds, free.TotalSeconds)
}

func keysOf[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// run executes the doppio binary and returns its combined output.
func (s *smoke) run(what string, args ...string) []byte {
	cmd := exec.Command(s.bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		fatal("campaignsmoke: %s failed: %v\n%s", what, err, out)
	}
	os.Stdout.Write(out)
	return out
}

// merge renders the report and trend JSON for the given checkpoints and
// returns their bytes.
func (s *smoke) merge(what string, ckpts ...string) (report, bench []byte) {
	reportPath := filepath.Join(s.dir, "report.txt")
	benchPath := filepath.Join(s.dir, "bench.json")
	args := append([]string{"campaign", "merge", "-config", s.cfg,
		"-report", reportPath, "-bench", benchPath}, ckpts...)
	s.run(what, args...)
	r, err := os.ReadFile(reportPath)
	if err != nil {
		fatal("campaignsmoke: %v", err)
	}
	b, err := os.ReadFile(benchPath)
	if err != nil {
		fatal("campaignsmoke: %v", err)
	}
	return r, b
}

// countRecords counts complete (newline-terminated, parseable) data
// records in a checkpoint, mirroring what resume will trust.
func countRecords(path string) int {
	n, _ := checkpointScan(path)
	return n
}

// recordStats returns (records, unique hashes).
func recordStats(path string) (int, int) {
	return checkpointScan(path)
}

func checkpointScan(path string) (records, unique int) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0
	}
	defer f.Close()
	hashes := map[string]bool{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		if first {
			first = false
			continue // header
		}
		var rec struct {
			Hash string `json:"hash"`
		}
		if json.Unmarshal(line, &rec) != nil || rec.Hash == "" {
			continue // torn tail
		}
		records++
		hashes[rec.Hash] = true
	}
	return records, len(hashes)
}

func parseSummary(out []byte) (total, skipped, executed, failed, unfinished int) {
	m := summaryRE.FindSubmatch(out)
	if m == nil {
		fatal("campaignsmoke: no campaign summary line in output:\n%s", out)
	}
	ints := make([]int, 5)
	for i := range ints {
		ints[i], _ = strconv.Atoi(string(m[i+1]))
	}
	return ints[0], ints[1], ints[2], ints[3], ints[4]
}

func mustIdentical(what string, a, b []byte) {
	if !bytes.Equal(a, b) {
		fatal("campaignsmoke: %s differ (%d vs %d bytes)", what, len(a), len(b))
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
