package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeScrape(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestResolvePromMap(t *testing.T) {
	tol := map[string]map[string]window{
		"prom:router": {"a_total": {Min: 0, Max: 1}},
		"prom:serve":  {"b_total": {Min: 0, Max: 1}},
	}

	// Bare path fans out to every prom: section.
	m, err := resolvePromMap([]string{"/tmp/x.prom"}, tol)
	if err != nil {
		t.Fatal(err)
	}
	if m["prom:router"] != "/tmp/x.prom" || m["prom:serve"] != "/tmp/x.prom" {
		t.Fatalf("bare path map = %v", m)
	}

	// SECTION=FILE pins sections individually, with or without the
	// prom: prefix spelled out.
	m, err = resolvePromMap([]string{"router=/tmp/r.prom", "prom:serve=/tmp/s.prom"}, tol)
	if err != nil {
		t.Fatal(err)
	}
	if m["prom:router"] != "/tmp/r.prom" || m["prom:serve"] != "/tmp/s.prom" {
		t.Fatalf("mapped form = %v", m)
	}

	for name, bad := range map[string][]string{
		"two bare paths":  {"/tmp/a.prom", "/tmp/b.prom"},
		"mixed forms":     {"/tmp/a.prom", "serve=/tmp/s.prom"},
		"unknown section": {"nosuch=/tmp/a.prom"},
		"duplicate":       {"router=/tmp/a.prom", "router=/tmp/b.prom"},
	} {
		if _, err := resolvePromMap(bad, tol); err == nil {
			t.Errorf("%s: accepted %v", name, bad)
		}
	}
}

func TestRunPromPerSectionScrapes(t *testing.T) {
	router := writeScrape(t, "router.prom",
		"doppio_cluster_coalesced_total 63\ndoppio_cluster_hotcache_entries 5\n")
	replica := writeScrape(t, "replica.prom",
		"doppio_cache_snapshot_restored_entries 14\ndoppio_cache_hit_ratio 1\n")
	tol := map[string]map[string]window{
		"prom:router": {
			"doppio_cluster_coalesced_total": {Min: 1, Max: 1e12},
		},
		"prom:serve": {
			"doppio_cache_snapshot_restored_entries": {Min: 1, Max: 1e12},
			"doppio_cache_hit_ratio":                 {Min: 0.9, Max: 1},
			// Absent but nondeterministic: counts as 0, inside [0, max].
			"doppio_peer_readthrough_total": {Min: 0, Max: 1e12},
		},
	}
	promMap := map[string]string{"prom:router": router, "prom:serve": replica}
	if err := runProm("tol.json", promMap, tol); err != nil {
		t.Fatalf("runProm: %v", err)
	}

	// A deterministic family (a gauge: no _total suffix) missing from
	// its mapped scrape must fail even if present in the other scrape.
	tol["prom:serve"]["doppio_cluster_hotcache_entries"] = window{Min: 0, Max: 1e12}
	err := runProm("tol.json", promMap, tol)
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("cross-scrape leak: err = %v", err)
	}
	delete(tol["prom:serve"], "doppio_cluster_hotcache_entries")

	// Out-of-window values fail with the offending section named.
	tol["prom:serve"]["doppio_cache_hit_ratio"] = window{Min: 0, Max: 0.5}
	err = runProm("tol.json", promMap, tol)
	if err == nil || !strings.Contains(err.Error(), "doppio_cache_hit_ratio") {
		t.Fatalf("window breach: err = %v", err)
	}
}

func TestSumFamilySumsLabeledSeries(t *testing.T) {
	series := map[string]float64{
		`x_total{result="hit"}`:  2,
		`x_total{result="miss"}`: 3,
		"y_total":                7,
		"x_total_other":          100,
	}
	if v, ok := sumFamily(series, "x_total"); !ok || v != 5 {
		t.Errorf("x_total = %v, %v; want 5, true", v, ok)
	}
	if v, ok := sumFamily(series, "y_total"); !ok || v != 7 {
		t.Errorf("y_total = %v, %v; want 7, true", v, ok)
	}
	if _, ok := sumFamily(series, "z_total"); ok {
		t.Error("z_total found")
	}
}
