// Command metriccheck is the CI bench-smoke metric gate: it regenerates
// the experiments named in a tolerance file (docs/tolerances.json by
// default) through the parallel harness and fails when any headline
// Table.Metrics value — average model error, HDD/SSD gap ratios, cloud
// savings — leaves its committed window. This catches model regressions
// that still compile and still produce tables; see docs/CI.md for how
// to update the tolerances when the model legitimately changes.
//
// The tolerance file may also carry "prom:" sections whose windows
// apply to a Prometheus text scrape instead of a regenerated
// experiment. With -prom, metriccheck checks ONLY those sections
// against scrapes (the cluster-e2e job feeds it the router's and a
// replica's final /metrics dumps); without -prom, prom: sections are
// skipped so the bench-smoke job is unaffected. -prom repeats and takes
// either a bare FILE (every prom: section reads that one scrape — the
// single-tier form) or SECTION=FILE mapping one section to its own
// scrape, e.g. -prom router=/tmp/router.prom -prom serve=/tmp/replica.prom;
// with mappings, unmapped prom: sections are skipped. A scrape value is
// the sum of every series in the family (labeled or bare); a family
// that is absent from the scrape is an error unless
// experiments.NondeterministicMetric allows it to vary, in which case
// it counts as 0.
//
// Usage:
//
//	go run ./cmd/metriccheck [-tolerances docs/tolerances.json] [-parallel N]
//	go run ./cmd/metriccheck [-tolerances docs/tolerances.json] -prom /tmp/router.prom
//	go run ./cmd/metriccheck -prom router=/tmp/router.prom -prom serve=/tmp/replica.prom
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"

	"repro/internal/experiments"
)

// window is one committed [min, max] tolerance for a metric.
type window struct {
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// promFlags collects repeated -prom values, each a bare scrape path or
// a SECTION=FILE mapping.
type promFlags []string

func (p *promFlags) String() string { return strings.Join(*p, ",") }

func (p *promFlags) Set(v string) error {
	if v == "" {
		return fmt.Errorf("empty -prom value")
	}
	*p = append(*p, v)
	return nil
}

func main() {
	tolPath := flag.String("tolerances", "docs/tolerances.json", "tolerance file (artifact -> metric -> {min,max})")
	parallel := flag.Int("parallel", 0, "experiment worker pool size (0 = GOMAXPROCS)")
	var proms promFlags
	flag.Var(&proms, "prom", "Prometheus text scrape: FILE (all prom: sections) or SECTION=FILE (repeatable)")
	flag.Parse()
	if err := run(*tolPath, proms, *parallel); err != nil {
		fmt.Fprintln(os.Stderr, "metriccheck:", err)
		os.Exit(1)
	}
}

// resolvePromMap turns the -prom values into section -> scrape path.
// Bare paths fan out to every prom: section; SECTION=FILE pins one
// section (bare "router" means "prom:router"). The two forms don't mix.
func resolvePromMap(proms []string, promTol map[string]map[string]window) (map[string]string, error) {
	out := map[string]string{}
	bare := ""
	for _, v := range proms {
		section, path, mapped := strings.Cut(v, "=")
		if !mapped {
			if bare != "" {
				return nil, fmt.Errorf("-prom given twice without SECTION= (use -prom SECTION=FILE to map scrapes)")
			}
			bare = v
			continue
		}
		if !strings.HasPrefix(section, "prom:") {
			section = "prom:" + section
		}
		if _, ok := promTol[section]; !ok {
			return nil, fmt.Errorf("-prom %s: tolerance file has no %q section", v, section)
		}
		if _, dup := out[section]; dup {
			return nil, fmt.Errorf("-prom %s: section %q mapped twice", v, section)
		}
		out[section] = path
	}
	if bare != "" {
		if len(out) > 0 {
			return nil, fmt.Errorf("-prom mixes a bare path with SECTION=FILE mappings; use one form")
		}
		for section := range promTol {
			out[section] = bare
		}
	}
	return out, nil
}

func run(tolPath string, proms []string, parallel int) error {
	data, err := os.ReadFile(tolPath)
	if err != nil {
		return err
	}
	var tol map[string]map[string]window
	if err := json.Unmarshal(data, &tol); err != nil {
		return fmt.Errorf("parsing %s: %w", tolPath, err)
	}
	if len(tol) == 0 {
		return fmt.Errorf("%s names no artifacts", tolPath)
	}
	// Partition: "prom:" sections gate a scrape, the rest regenerate
	// experiments. Each CI job runs exactly one of the two passes.
	promTol := map[string]map[string]window{}
	for id := range tol {
		if strings.HasPrefix(id, "prom:") {
			promTol[id] = tol[id]
			delete(tol, id)
		}
	}
	if len(proms) > 0 {
		if len(promTol) == 0 {
			return fmt.Errorf("-prom given but %s has no prom: sections", tolPath)
		}
		promMap, err := resolvePromMap(proms, promTol)
		if err != nil {
			return err
		}
		return runProm(tolPath, promMap, promTol)
	}
	if len(tol) == 0 {
		return fmt.Errorf("%s names no experiment artifacts (prom: sections need -prom)", tolPath)
	}
	ids := make([]string, 0, len(tol))
	for id := range tol {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	reports, err := experiments.RunSet(ctx, ids, experiments.Options{Parallel: parallel})
	if err != nil {
		return err
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "artifact\tmetric\tvalue\twindow\tstatus")
	// offending collects every failure with its committed window so the
	// final error names each one alongside the tolerance file to edit —
	// the CI log tail is all most readers see.
	var offending []string
	for _, r := range reports {
		if r.Err != nil {
			fmt.Fprintf(tw, "%s\t—\t—\t—\tERROR: %v\n", r.ID, r.Err)
			offending = append(offending, fmt.Sprintf("%s failed to run: %v", r.ID, r.Err))
			continue
		}
		metrics := make([]string, 0, len(tol[r.ID]))
		for m := range tol[r.ID] {
			metrics = append(metrics, m)
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			w := tol[r.ID][m]
			v, ok := r.Table.Metrics[m]
			switch {
			case !ok:
				fmt.Fprintf(tw, "%s\t%s\t—\t[%g, %g]\tMISSING\n", r.ID, m, w.Min, w.Max)
				offending = append(offending, fmt.Sprintf("%s/%s missing (window [%g, %g])", r.ID, m, w.Min, w.Max))
			case v < w.Min || v > w.Max:
				fmt.Fprintf(tw, "%s\t%s\t%g\t[%g, %g]\tOUT OF TOLERANCE\n", r.ID, m, v, w.Min, w.Max)
				offending = append(offending, fmt.Sprintf("%s/%s = %g outside window [%g, %g]", r.ID, m, v, w.Min, w.Max))
			default:
				fmt.Fprintf(tw, "%s\t%s\t%g\t[%g, %g]\tok\n", r.ID, m, v, w.Min, w.Max)
			}
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if len(offending) > 0 {
		for _, o := range offending {
			fmt.Fprintf(os.Stderr, "metriccheck: FAIL %s\n", o)
		}
		return fmt.Errorf("%d metric(s) outside the windows committed in %s: %s (update that file if the model legitimately changed; see docs/CI.md)",
			len(offending), tolPath, strings.Join(offending, "; "))
	}
	fmt.Println("all headline metrics within committed tolerances")
	return nil
}

// runProm checks the mapped prom: tolerance sections, each against its
// own Prometheus text scrape.
func runProm(tolPath string, promMap map[string]string, tol map[string]map[string]window) error {
	parsed := map[string]map[string]float64{} // scrape path -> series
	for _, path := range promMap {
		if _, done := parsed[path]; done {
			continue
		}
		series, err := parsePromFile(path)
		if err != nil {
			return err
		}
		parsed[path] = series
	}
	sections := make([]string, 0, len(promMap))
	for id := range promMap {
		sections = append(sections, id)
	}
	sort.Strings(sections)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "section\tmetric\tvalue\twindow\tstatus")
	var offending []string
	for _, id := range sections {
		promPath := promMap[id]
		series := parsed[promPath]
		metrics := make([]string, 0, len(tol[id]))
		for m := range tol[id] {
			metrics = append(metrics, m)
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			w := tol[id][m]
			v, found := sumFamily(series, m)
			switch {
			case !found && !experiments.NondeterministicMetric(m):
				fmt.Fprintf(tw, "%s\t%s\t—\t[%g, %g]\tMISSING\n", id, m, w.Min, w.Max)
				offending = append(offending, fmt.Sprintf("%s/%s missing from %s (window [%g, %g])", id, m, promPath, w.Min, w.Max))
			case v < w.Min || v > w.Max:
				fmt.Fprintf(tw, "%s\t%s\t%g\t[%g, %g]\tOUT OF TOLERANCE\n", id, m, v, w.Min, w.Max)
				offending = append(offending, fmt.Sprintf("%s/%s = %g outside window [%g, %g]", id, m, v, w.Min, w.Max))
			default:
				fmt.Fprintf(tw, "%s\t%s\t%g\t[%g, %g]\tok\n", id, m, v, w.Min, w.Max)
			}
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if len(offending) > 0 {
		for _, o := range offending {
			fmt.Fprintf(os.Stderr, "metriccheck: FAIL %s\n", o)
		}
		return fmt.Errorf("%d metric(s) outside the windows committed in %s: %s (update that file if the service legitimately changed; see docs/CI.md)",
			len(offending), tolPath, strings.Join(offending, "; "))
	}
	fmt.Println("all scraped metrics within committed tolerances")
	return nil
}

// parsePromFile reads a Prometheus text exposition into full-series-
// name -> value.
func parsePromFile(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]float64{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, value, ok := strings.Cut(line, " ")
		if !ok {
			return nil, fmt.Errorf("%s: unparseable metrics line %q", path, line)
		}
		v, perr := strconv.ParseFloat(value, 64)
		if perr != nil {
			return nil, fmt.Errorf("%s: unparseable value in %q", path, line)
		}
		out[name] = v
	}
	return out, sc.Err()
}

// sumFamily adds every series of one family — the bare name or any
// labeled expansion — and reports whether any series existed at all.
func sumFamily(series map[string]float64, family string) (float64, bool) {
	total, found := 0.0, false
	for name, v := range series {
		if name == family || strings.HasPrefix(name, family+"{") {
			total += v
			found = true
		}
	}
	return total, found
}
