// Command metriccheck is the CI bench-smoke metric gate: it regenerates
// the experiments named in a tolerance file (docs/tolerances.json by
// default) through the parallel harness and fails when any headline
// Table.Metrics value — average model error, HDD/SSD gap ratios, cloud
// savings — leaves its committed window. This catches model regressions
// that still compile and still produce tables; see docs/CI.md for how
// to update the tolerances when the model legitimately changes.
//
// Usage:
//
//	go run ./cmd/metriccheck [-tolerances docs/tolerances.json] [-parallel N]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"text/tabwriter"

	"repro/internal/experiments"
)

// window is one committed [min, max] tolerance for a metric.
type window struct {
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

func main() {
	tolPath := flag.String("tolerances", "docs/tolerances.json", "tolerance file (artifact -> metric -> {min,max})")
	parallel := flag.Int("parallel", 0, "experiment worker pool size (0 = GOMAXPROCS)")
	flag.Parse()
	if err := run(*tolPath, *parallel); err != nil {
		fmt.Fprintln(os.Stderr, "metriccheck:", err)
		os.Exit(1)
	}
}

func run(tolPath string, parallel int) error {
	data, err := os.ReadFile(tolPath)
	if err != nil {
		return err
	}
	var tol map[string]map[string]window
	if err := json.Unmarshal(data, &tol); err != nil {
		return fmt.Errorf("parsing %s: %w", tolPath, err)
	}
	if len(tol) == 0 {
		return fmt.Errorf("%s names no artifacts", tolPath)
	}
	ids := make([]string, 0, len(tol))
	for id := range tol {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	reports, err := experiments.RunSet(ctx, ids, experiments.Options{Parallel: parallel})
	if err != nil {
		return err
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "artifact\tmetric\tvalue\twindow\tstatus")
	// offending collects every failure with its committed window so the
	// final error names each one alongside the tolerance file to edit —
	// the CI log tail is all most readers see.
	var offending []string
	for _, r := range reports {
		if r.Err != nil {
			fmt.Fprintf(tw, "%s\t—\t—\t—\tERROR: %v\n", r.ID, r.Err)
			offending = append(offending, fmt.Sprintf("%s failed to run: %v", r.ID, r.Err))
			continue
		}
		metrics := make([]string, 0, len(tol[r.ID]))
		for m := range tol[r.ID] {
			metrics = append(metrics, m)
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			w := tol[r.ID][m]
			v, ok := r.Table.Metrics[m]
			switch {
			case !ok:
				fmt.Fprintf(tw, "%s\t%s\t—\t[%g, %g]\tMISSING\n", r.ID, m, w.Min, w.Max)
				offending = append(offending, fmt.Sprintf("%s/%s missing (window [%g, %g])", r.ID, m, w.Min, w.Max))
			case v < w.Min || v > w.Max:
				fmt.Fprintf(tw, "%s\t%s\t%g\t[%g, %g]\tOUT OF TOLERANCE\n", r.ID, m, v, w.Min, w.Max)
				offending = append(offending, fmt.Sprintf("%s/%s = %g outside window [%g, %g]", r.ID, m, v, w.Min, w.Max))
			default:
				fmt.Fprintf(tw, "%s\t%s\t%g\t[%g, %g]\tok\n", r.ID, m, v, w.Min, w.Max)
			}
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if len(offending) > 0 {
		for _, o := range offending {
			fmt.Fprintf(os.Stderr, "metriccheck: FAIL %s\n", o)
		}
		return fmt.Errorf("%d metric(s) outside the windows committed in %s: %s (update that file if the model legitimately changed; see docs/CI.md)",
			len(offending), tolPath, strings.Join(offending, "; "))
	}
	fmt.Println("all headline metrics within committed tolerances")
	return nil
}
