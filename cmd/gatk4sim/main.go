// Command gatk4sim runs the GATK4 whole-genome pipeline on a simulated
// Spark cluster — the domain binary for the paper's motivating workload.
//
// Usage:
//
//	gatk4sim [-slaves N] [-cores P] [-hdfs DEV] [-local DEV]
//	         [-readpairs M] [-iostat] [-blocked] [-predict]
//
// Devices: hdd, ssd, pd-standard:SIZE, pd-ssd:SIZE.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/profile"
	"repro/internal/spark"
	"repro/internal/units"
	"repro/internal/workloads"
)

func main() {
	slaves := flag.Int("slaves", 3, "worker node count N")
	cores := flag.Int("cores", 36, "executor cores per node P")
	hdfs := flag.String("hdfs", "ssd", "HDFS device")
	local := flag.String("local", "ssd", "Spark Local device")
	readPairs := flag.Int("readpairs", 500, "input size in millions of read pairs (500 = the paper's genome)")
	iostat := flag.Bool("iostat", false, "print per-stage iostat report")
	blocked := flag.Bool("blocked", false, "print blocked-time analysis")
	predict := flag.Bool("predict", false, "calibrate the Doppio model and compare")
	flag.Parse()

	hd, err := parseDevice(*hdfs)
	if err != nil {
		fatal(err)
	}
	ld, err := parseDevice(*local)
	if err != nil {
		fatal(err)
	}

	// Scale the genome linearly with read pairs: the paper's 500M pairs
	// correspond to 122 GB in / 334 GB shuffle / 166 GB out.
	params := workloads.DefaultGATK4Params()
	scale := float64(*readPairs) / 500.0
	params.InputBAM = units.ByteSize(scale * float64(params.InputBAM))
	params.ShuffleBytes = units.ByteSize(scale * float64(params.ShuffleBytes))
	params.OutputBAM = units.ByteSize(scale * float64(params.OutputBAM))

	cfg := spark.DefaultTestbed(*slaves, *cores, hd, ld)
	res, err := spark.Run(cfg, params.Build(cfg))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("# GATK4, %dM read pairs (%v in, %v shuffle, %v out)\n",
		*readPairs, params.InputBAM, params.ShuffleBytes, params.OutputBAM)
	if _, err := res.WriteTo(os.Stdout); err != nil {
		fatal(err)
	}

	if *iostat {
		fmt.Println()
		if err := profile.WriteIostat(os.Stdout, profile.Iostat(res)); err != nil {
			fatal(err)
		}
	}
	if *blocked {
		fmt.Println()
		if err := profile.WriteBlockedTime(os.Stdout, profile.BlockedTimeAnalysis(res)); err != nil {
			fatal(err)
		}
	}
	if *predict {
		fmt.Println("\n# calibrating Doppio model (4 sample runs)...")
		ssd, hddProbe := disk.NewSSD(), disk.NewHDD()
		base := spark.DefaultTestbed(*slaves, 1, ssd, ssd)
		cal, err := core.Calibrate(base, ssd, hddProbe, params.Build)
		if err != nil {
			fatal(err)
		}
		pred, err := cal.Model.Predict(core.PlatformFor(cfg), core.ModeDoppio)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-6s %10s %10s %8s %s\n", "stage", "exp(min)", "model(min)", "err", "bottleneck")
		for i, s := range res.Stages {
			p := pred.Stages[i]
			fmt.Printf("%-6s %10.1f %10.1f %7.1f%% %s\n", s.Name,
				s.Duration().Minutes(), p.T.Minutes(),
				core.ErrorRate(p.T, s.Duration())*100, p.Bottleneck)
		}
	}
}

func parseDevice(s string) (disk.Device, error) {
	switch s {
	case "hdd":
		return disk.NewHDD(), nil
	case "ssd":
		return disk.NewSSD(), nil
	}
	name, sizeStr, ok := strings.Cut(s, ":")
	if !ok {
		return nil, fmt.Errorf("unknown device %q", s)
	}
	size, err := units.ParseByteSize(sizeStr)
	if err != nil {
		return nil, err
	}
	switch name {
	case "pd-standard":
		return cloud.NewDisk(cloud.PDStandard, size), nil
	case "pd-ssd":
		return cloud.NewDisk(cloud.PDSSD, size), nil
	}
	return nil, fmt.Errorf("unknown device type %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gatk4sim:", err)
	os.Exit(1)
}
