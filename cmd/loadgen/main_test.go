package main

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

// startServer boots a real serve instance on a loopback port and returns
// its base URL.
func startServer(t *testing.T) string {
	t.Helper()
	s, err := serve.New(serve.Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()
	select {
	case <-s.Started():
	case <-time.After(10 * time.Second):
		t.Fatal("server never started")
	}
	t.Cleanup(func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("serve.Run: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("server never drained")
		}
	})
	return "http://" + s.Addr()
}

// TestLoadgenAgainstLiveServer is the in-repo rehearsal of the CI
// service-e2e job: drive the full mix briefly, require zero 5xx and a
// warm cache.
func TestLoadgenAgainstLiveServer(t *testing.T) {
	if testing.Short() {
		t.Skip("drives a live server for several seconds")
	}
	base := startServer(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-base", base,
		"-qps", "30",
		"-workers", "4",
		"-duration", "3s",
		"-warmup", "500ms",
		"-fail-on-5xx",
		"-check-metrics",
		"-min-cache-hit-ratio", "0.05",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("loadgen exited %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	var sum summary
	if err := json.Unmarshal(stdout.Bytes(), &sum); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, stdout.String())
	}
	if sum.Requests == 0 {
		t.Error("no requests recorded")
	}
	if sum.Status["200"] == 0 {
		t.Errorf("no 200s in %v", sum.Status)
	}
	if sum.P99Ms <= 0 {
		t.Errorf("p99 = %v", sum.P99Ms)
	}
	if sum.CacheHitRatio <= 0 {
		t.Errorf("cache hit ratio = %v, want > 0", sum.CacheHitRatio)
	}
	if !strings.Contains(stderr.String(), "all checks passed") {
		t.Errorf("stderr: %s", stderr.String())
	}
}

// TestLoadgenStampedeAgainstLiveServer fires a 32-wide identical burst
// at a single warm-startable replica: every answer must be
// byte-identical, and the sequential probe must find a cache hit
// immediately (the burst's one compute warms the key).
func TestLoadgenStampedeAgainstLiveServer(t *testing.T) {
	if testing.Short() {
		t.Skip("drives a live server")
	}
	base := startServer(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-base", base,
		"-stampede", "32",
		"-warm-target", "0.9",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("stampede exited %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	var rep stampedeReport
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, stdout.String())
	}
	if rep.Stampede != 32 || rep.Errors != 0 {
		t.Errorf("stampede=%d errors=%d", rep.Stampede, rep.Errors)
	}
	if rep.UniqueBodies != 1 {
		t.Errorf("unique bodies = %d, want 1", rep.UniqueBodies)
	}
	// A bare replica (no router) still collapses the burst in its own
	// singleflight cache: all but the first are replica cache hits.
	if rep.CacheHits == 0 {
		t.Errorf("burst saw no cache hits: %+v", rep)
	}
	if rep.FirstHitAfter != 1 {
		t.Errorf("first probe after the burst should hit, got hit after %d", rep.FirstHitAfter)
	}
	if rep.RequestsToWarm == 0 {
		t.Errorf("never reached warm target: %+v", rep)
	}
	if !strings.Contains(stderr.String(), "stampede checks passed") {
		t.Errorf("stderr: %s", stderr.String())
	}
}

func TestLoadgenBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-workers", "0"}, &stdout, &stderr); code != 2 {
		t.Errorf("workers=0 exited %d, want 2", code)
	}
	if code := run([]string{"-qps", "-1"}, &stdout, &stderr); code != 2 {
		t.Errorf("qps=-1 exited %d, want 2", code)
	}
	if code := run([]string{"-stampede", "-1"}, &stdout, &stderr); code != 2 {
		t.Errorf("stampede=-1 exited %d, want 2", code)
	}
	if code := run([]string{"-stampede", "8", "-warm-target", "1.5"}, &stdout, &stderr); code != 2 {
		t.Errorf("warm-target=1.5 exited %d, want 2", code)
	}
	if code := run([]string{"-nonsense"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown flag exited %d, want 2", code)
	}
}

func TestLoadgenUnreachableServer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-base", "http://127.0.0.1:1", "-duration", "1s", "-ready-timeout", "1s"}, &stdout, &stderr)
	if code != 1 {
		t.Errorf("unreachable server exited %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "never became ready") {
		t.Errorf("stderr: %s", stderr.String())
	}
}

func TestSummarizePercentiles(t *testing.T) {
	var collected []sample
	for i := 1; i <= 100; i++ {
		collected = append(collected, sample{name: "r", status: 200, latency: time.Duration(i) * time.Millisecond})
	}
	sum := summarize(collected, 10*time.Second, false)
	if sum.Requests != 100 || sum.Errors != 0 {
		t.Errorf("requests = %d, errors = %d", sum.Requests, sum.Errors)
	}
	if sum.P50Ms < 45 || sum.P50Ms > 55 {
		t.Errorf("p50 = %v, want ~50", sum.P50Ms)
	}
	if sum.P99Ms < 95 || sum.P99Ms > 100 {
		t.Errorf("p99 = %v, want ~99", sum.P99Ms)
	}
	if sum.MaxMs != 100 {
		t.Errorf("max = %v, want 100", sum.MaxMs)
	}
	if sum.AchievedQPS != 10 {
		t.Errorf("qps = %v, want 10", sum.AchievedQPS)
	}
}

func TestAssessGates(t *testing.T) {
	sum := summary{Requests: 10, Status: map[string]int{"200": 8, "500": 2}, P99Ms: 250}
	fails := assess(&sum, 100*time.Millisecond, true)
	if len(fails) != 2 {
		t.Errorf("failures = %v, want 5xx + p99 budget", fails)
	}
	ok := summary{Requests: 10, Status: map[string]int{"200": 10}, P99Ms: 50}
	if fails := assess(&ok, 100*time.Millisecond, true); len(fails) != 0 {
		t.Errorf("unexpected failures: %v", fails)
	}
	empty := summary{Status: map[string]int{}}
	if fails := assess(&empty, 0, false); len(fails) != 1 {
		t.Errorf("empty run failures = %v, want 1", fails)
	}
}

func TestSummarizeNon2xxBreakdown(t *testing.T) {
	collected := []sample{
		{name: "a", status: 200, latency: time.Millisecond},
		{name: "a", status: 404, latency: time.Millisecond},
		{name: "a", status: 404, latency: time.Millisecond},
		{name: "a", status: 503, latency: time.Millisecond},
	}
	sum := summarize(collected, time.Second, false)
	if sum.Non2xx["404"] != 2 || sum.Non2xx["503"] != 1 {
		t.Errorf("non-2xx breakdown = %v, want 404:2 503:1", sum.Non2xx)
	}
	if _, ok := sum.Non2xx["200"]; ok {
		t.Error("200 counted as non-2xx")
	}
	clean := summarize([]sample{{name: "a", status: 200, latency: time.Millisecond}}, time.Second, false)
	if clean.Non2xx != nil {
		t.Errorf("clean run has non-2xx map %v, want omitted", clean.Non2xx)
	}
}

func TestSummarizeClusterShards(t *testing.T) {
	mk := func(n int, served, cache, route string) []sample {
		out := make([]sample, n)
		for i := range out {
			out[i] = sample{name: "r", status: 200, latency: time.Millisecond,
				servedBy: served, cache: cache, routeStatus: route}
		}
		return out
	}
	var collected []sample
	collected = append(collected, mk(6, "r1:1", "hit", "primary")...)
	collected = append(collected, mk(2, "r2:2", "miss", "primary")...)
	collected = append(collected, mk(2, "r2:2", "hit", "failover")...)
	collected = append(collected, mk(2, "r3:3", "miss", "hedged")...)

	sum := summarize(collected, time.Second, true)
	if len(sum.Shards) != 3 {
		t.Fatalf("shards = %v, want 3 entries", sum.Shards)
	}
	r1 := sum.Shards["r1:1"]
	if r1.Requests != 6 || r1.Share != 0.5 || r1.HitRatio != 1 {
		t.Errorf("r1 stats = %+v", r1)
	}
	r2 := sum.Shards["r2:2"]
	if r2.Requests != 4 || r2.CacheHits != 2 || r2.HitRatio != 0.5 {
		t.Errorf("r2 stats = %+v", r2)
	}
	// Shares 0.5 / 0.333 / 0.167: skew = 3.
	if sum.ShardSkew < 2.9 || sum.ShardSkew > 3.1 {
		t.Errorf("shard skew = %v, want ~3", sum.ShardSkew)
	}
	if sum.Failovers != 2 || sum.Hedged != 2 {
		t.Errorf("failovers = %d hedged = %d, want 2/2", sum.Failovers, sum.Hedged)
	}

	// Without -cluster the shard section stays out of the report.
	flat := summarize(collected, time.Second, false)
	if flat.Shards != nil || flat.Failovers != 0 {
		t.Errorf("non-cluster summary leaked shard stats: %+v", flat)
	}
}

func TestExpandMixCoversEveryEndpoint(t *testing.T) {
	mix := expandMix(defaultMix())
	paths := map[string]bool{}
	for _, r := range mix {
		paths[r.Path] = true
	}
	for _, want := range []string{
		"/api/v1/workloads", "/api/v1/predict", "/api/v1/simulate",
		"/api/v1/whatif", "/api/v1/recommend", "/api/v1/sweep",
	} {
		if !paths[want] {
			t.Errorf("default mix misses %s", want)
		}
	}
}
