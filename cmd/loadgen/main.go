// Command loadgen is a closed-loop load driver for `doppio serve`,
// patterned after the pilot-load phase of the paper's methodology: drive
// a known request mix at a target rate, measure the latency
// distribution, and assert the service-level objectives the CI
// service-e2e job gates on (zero 5xx, a p99 budget, a warm cache).
//
// Each worker runs a closed loop — issue a request, wait for the
// response, take the next token — so concurrency is bounded by -workers
// and the offered rate by -qps. The default mix covers every API
// endpoint with the cheap calibration workloads (lr-small, sql at three
// slaves), so a full run is fast enough for CI.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// request is one entry in the driven mix.
type request struct {
	Name   string
	Method string
	Path   string
	Body   string
	Weight int
}

// defaultMix exercises every serve endpoint. Weights favour the cached
// hot path (predict/simulate) the way a planning UI would.
func defaultMix() []request {
	return []request{
		{"workloads", "GET", "/api/v1/workloads", "", 2},
		{"predict", "POST", "/api/v1/predict", `{"workload":"lr-small","slaves":3,"cores":8}`, 6},
		{"predict-faulty", "POST", "/api/v1/predict", `{"workload":"lr-small","slaves":3,"cores":8,"faults":{"task_failure_prob":0.05}}`, 2},
		{"simulate", "POST", "/api/v1/simulate", `{"workload":"sql","slaves":3,"cores":8}`, 6},
		{"whatif", "POST", "/api/v1/whatif", `{"workload":"lr-small","slaves":3,"max_cores":16}`, 3},
		{"recommend", "POST", "/api/v1/recommend", `{"workload":"lr-small","slaves":3,"top":3}`, 1},
		{"sweep", "POST", "/api/v1/sweep", `{"workloads":["sql"],"nodes":[3],"cores":[4,8]}`, 2},
	}
}

// sample is one completed request.
type sample struct {
	name        string
	status      int
	latency     time.Duration
	err         error
	servedBy    string // X-Served-By: replica attribution
	cache       string // X-Cache: hit | miss
	routeStatus string // X-Route-Status: primary | failover | hedged | error
}

// shardStats is one replica's view of a clustered run, keyed by its
// X-Served-By identity.
type shardStats struct {
	Requests  int     `json:"requests"`
	Share     float64 `json:"share"`
	CacheHits int     `json:"cache_hits"`
	HitRatio  float64 `json:"hit_ratio"`
}

// summary aggregates a run for the JSON report.
type summary struct {
	Requests      int                   `json:"requests"`
	Errors        int                   `json:"errors"`
	Status        map[string]int        `json:"status"`
	Non2xx        map[string]int        `json:"non_2xx,omitempty"`
	P50Ms         float64               `json:"p50_ms"`
	P90Ms         float64               `json:"p90_ms"`
	P99Ms         float64               `json:"p99_ms"`
	MaxMs         float64               `json:"max_ms"`
	AchievedQPS   float64               `json:"achieved_qps"`
	ByRoute       map[string]float64    `json:"p99_by_route_ms"`
	CacheHits     float64               `json:"cache_hits,omitempty"`
	CacheMisses   float64               `json:"cache_misses,omitempty"`
	CacheHitRatio float64               `json:"cache_hit_ratio,omitempty"`
	Shards        map[string]shardStats `json:"shards,omitempty"`
	ShardSkew     float64               `json:"shard_skew,omitempty"`
	Failovers     int                   `json:"failovers,omitempty"`
	Hedged        int                   `json:"hedged,omitempty"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		base         = fs.String("base", "http://127.0.0.1:8080", "base URL of the doppio serve instance")
		qps          = fs.Float64("qps", 50, "target aggregate request rate (0 = unpaced)")
		workers      = fs.Int("workers", 8, "closed-loop worker count")
		duration     = fs.Duration("duration", 10*time.Second, "measured run length")
		warmup       = fs.Duration("warmup", 0, "unmeasured warm-up period before the run")
		timeout      = fs.Duration("timeout", 30*time.Second, "per-request client timeout")
		readyWait    = fs.Duration("ready-timeout", 30*time.Second, "how long to wait for /readyz before giving up")
		maxP99       = fs.Duration("max-p99", 0, "fail if measured p99 exceeds this (0 = no budget)")
		failOn5xx    = fs.Bool("fail-on-5xx", false, "fail if any request returns a 5xx")
		minHitRatio  = fs.Float64("min-cache-hit-ratio", 0, "fail if the server's cache hit ratio (from /metrics) is below this")
		checkMetrics = fs.Bool("check-metrics", false, "scrape and validate /metrics after the run")
		cluster      = fs.Bool("cluster", false, "report per-shard request share and hit ratio from X-Served-By/X-Cache headers")
		stampedeN    = fs.Int("stampede", 0, "instead of the mix, fire N barrier-released identical requests and report time-to-warm (0 = off)")
		warmTarget   = fs.Float64("warm-target", 0.9, "stampede mode: probe until the running hit ratio reaches this")
		minCoalesced = fs.Int("min-coalesced", 0, "stampede mode: fail unless at least this many responses were coalesced or router-cached")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *workers < 1 || *qps < 0 || *duration <= 0 {
		fmt.Fprintln(stderr, "loadgen: need workers >= 1, qps >= 0, duration > 0")
		return 2
	}
	if *stampedeN < 0 || *warmTarget <= 0 || *warmTarget > 1 {
		fmt.Fprintln(stderr, "loadgen: need stampede >= 0 and warm-target in (0, 1]")
		return 2
	}

	client := &http.Client{Timeout: *timeout}
	if err := waitReady(client, *base, *readyWait); err != nil {
		fmt.Fprintf(stderr, "loadgen: %v\n", err)
		return 1
	}

	if *stampedeN > 0 {
		return stampede(client, *base, *stampedeN, *warmTarget, *minCoalesced, stdout, stderr)
	}

	mix := expandMix(defaultMix())
	if *warmup > 0 {
		drive(client, *base, mix, *workers, *qps, *warmup, nil)
	}
	samples := make(chan sample, 4096)
	collected := make([]sample, 0, 4096)
	var collectWG sync.WaitGroup
	collectWG.Add(1)
	go func() {
		defer collectWG.Done()
		for s := range samples {
			collected = append(collected, s)
		}
	}()
	start := time.Now()
	drive(client, *base, mix, *workers, *qps, *duration, samples)
	elapsed := time.Since(start)
	close(samples)
	collectWG.Wait()

	sum := summarize(collected, elapsed, *cluster)
	failures := assess(&sum, *maxP99, *failOn5xx)

	if *checkMetrics || *minHitRatio > 0 {
		hits, misses, err := scrapeCache(client, *base)
		if err != nil {
			failures = append(failures, fmt.Sprintf("metrics scrape: %v", err))
		} else {
			sum.CacheHits, sum.CacheMisses = hits, misses
			if total := hits + misses; total > 0 {
				sum.CacheHitRatio = hits / total
			}
			if sum.CacheHitRatio < *minHitRatio {
				failures = append(failures,
					fmt.Sprintf("cache hit ratio %.3f below required %.3f", sum.CacheHitRatio, *minHitRatio))
			}
		}
	}

	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	enc.Encode(sum)
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(stderr, "loadgen: FAIL: %s\n", f)
		}
		return 1
	}
	fmt.Fprintln(stderr, "loadgen: all checks passed")
	return 0
}

// waitReady polls /readyz until the service accepts traffic.
func waitReady(client *http.Client, base string, patience time.Duration) error {
	deadline := time.Now().Add(patience)
	for {
		resp, err := client.Get(base + "/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("service never became ready: %v", err)
			}
			return fmt.Errorf("service never became ready")
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// expandMix unrolls weights into a request schedule.
func expandMix(mix []request) []request {
	var out []request
	for _, r := range mix {
		for i := 0; i < r.Weight; i++ {
			out = append(out, r)
		}
	}
	return out
}

// drive runs the closed loop: workers pull tokens (paced by qps) and
// issue the next request from the shared schedule. samples may be nil
// (warm-up).
func drive(client *http.Client, base string, mix []request, workers int, qps float64, d time.Duration, samples chan<- sample) {
	stop := time.After(d)
	tokens := make(chan struct{}, workers)
	var pacer *time.Ticker
	if qps > 0 {
		pacer = time.NewTicker(time.Duration(float64(time.Second) / qps))
		defer pacer.Stop()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if pacer != nil {
				select {
				case <-stop:
					return
				case <-pacer.C:
				}
			}
			select {
			case <-stop:
				return
			case tokens <- struct{}{}:
			}
		}
	}()

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				case <-tokens:
				}
				req := mix[int(next.Add(1)-1)%len(mix)]
				s := issue(client, base, req)
				if samples != nil {
					samples <- s
				}
			}
		}()
	}
	wg.Wait()
}

func issue(client *http.Client, base string, r request) sample {
	start := time.Now()
	var resp *http.Response
	var err error
	if r.Method == "GET" {
		resp, err = client.Get(base + r.Path)
	} else {
		resp, err = client.Post(base+r.Path, "application/json", strings.NewReader(r.Body))
	}
	s := sample{name: r.Name, latency: time.Since(start), err: err}
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		s.status = resp.StatusCode
		s.latency = time.Since(start)
		s.servedBy = resp.Header.Get("X-Served-By")
		s.cache = resp.Header.Get("X-Cache")
		s.routeStatus = resp.Header.Get("X-Route-Status")
	}
	return s
}

func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func summarize(collected []sample, elapsed time.Duration, cluster bool) summary {
	sum := summary{
		Requests: len(collected),
		Status:   map[string]int{},
		ByRoute:  map[string]float64{},
	}
	all := make([]time.Duration, 0, len(collected))
	byRoute := map[string][]time.Duration{}
	for _, s := range collected {
		if s.err != nil {
			sum.Errors++
			continue
		}
		code := strconv.Itoa(s.status)
		sum.Status[code]++
		if s.status < 200 || s.status > 299 {
			if sum.Non2xx == nil {
				sum.Non2xx = map[string]int{}
			}
			sum.Non2xx[code]++
		}
		all = append(all, s.latency)
		byRoute[s.name] = append(byRoute[s.name], s.latency)
	}
	if cluster {
		clusterStats(&sum, collected)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	sum.P50Ms = ms(percentile(all, 0.50))
	sum.P90Ms = ms(percentile(all, 0.90))
	sum.P99Ms = ms(percentile(all, 0.99))
	if len(all) > 0 {
		sum.MaxMs = ms(all[len(all)-1])
	}
	if elapsed > 0 {
		sum.AchievedQPS = float64(len(collected)) / elapsed.Seconds()
	}
	for name, lats := range byRoute {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		sum.ByRoute[name] = ms(percentile(lats, 0.99))
	}
	return sum
}

// clusterStats attributes samples to shards via the X-Served-By header
// a clustered deployment stamps, and measures how evenly the router
// spread the mix: per-shard request share and cache-hit ratio, the
// max/min share skew, and how many responses arrived via failover or a
// winning hedge.
func clusterStats(sum *summary, collected []sample) {
	shards := map[string]shardStats{}
	attributed := 0
	for _, s := range collected {
		if s.err != nil {
			continue
		}
		switch s.routeStatus {
		case "failover":
			sum.Failovers++
		case "hedged":
			sum.Hedged++
		}
		if s.servedBy == "" {
			continue
		}
		st := shards[s.servedBy]
		st.Requests++
		if s.cache == "hit" {
			st.CacheHits++
		}
		shards[s.servedBy] = st
		attributed++
	}
	if len(shards) == 0 {
		return
	}
	minShare, maxShare := 1.0, 0.0
	for id, st := range shards {
		st.Share = float64(st.Requests) / float64(attributed)
		if st.Requests > 0 {
			st.HitRatio = float64(st.CacheHits) / float64(st.Requests)
		}
		shards[id] = st
		if st.Share < minShare {
			minShare = st.Share
		}
		if st.Share > maxShare {
			maxShare = st.Share
		}
	}
	sum.Shards = shards
	if minShare > 0 {
		sum.ShardSkew = maxShare / minShare
	}
}

// stampedeReport is the JSON summary of a -stampede run: the concurrent
// burst first, then the sequential warm probe that measures how quickly
// the tier converges to serving the key from cache.
type stampedeReport struct {
	Stampede       int     `json:"stampede"`
	Errors         int     `json:"errors"`
	UniqueBodies   int     `json:"unique_bodies"`
	Coalesced      int     `json:"coalesced"`
	RouterCached   int     `json:"router_cached"`
	CacheHits      int     `json:"cache_hits"`
	BurstP50Ms     float64 `json:"burst_p50_ms"`
	BurstMaxMs     float64 `json:"burst_max_ms"`
	FirstHitAfter  int     `json:"first_hit_after_requests"`
	FirstHitMs     float64 `json:"first_hit_ms"`
	WarmTarget     float64 `json:"warm_target"`
	RequestsToWarm int     `json:"requests_to_warm"`
}

// stampede fires n barrier-released identical predict requests — the
// worst-case arrival pattern a hot key sees after a failover — then
// probes sequentially until the tier serves the key warm. The burst must
// come back byte-identical no matter which layer (flight table, hot
// cache, replica cache, cold compute) answered each request.
func stampede(client *http.Client, base string, n int, warmTarget float64, minCoalesced int, stdout, stderr io.Writer) int {
	const body = `{"workload":"lr-small","slaves":3,"cores":8}`
	const path = "/api/v1/predict"

	type result struct {
		status    int
		body      string
		latency   time.Duration
		coalesced bool
		hotCache  bool
		cacheHit  bool
		err       error
	}
	results := make([]result, n)
	barrier := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-barrier
			start := time.Now()
			resp, err := client.Post(base+path, "application/json", strings.NewReader(body))
			if err != nil {
				results[i] = result{err: err, latency: time.Since(start)}
				return
			}
			b, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			results[i] = result{
				status:    resp.StatusCode,
				body:      string(b),
				latency:   time.Since(start),
				coalesced: resp.Header.Get("X-Route-Coalesced") == "1",
				hotCache:  resp.Header.Get("X-Route-Cache") == "hit",
				cacheHit:  resp.Header.Get("X-Cache") == "hit",
				err:       err,
			}
		}(i)
	}
	close(barrier)
	wg.Wait()

	rep := stampedeReport{Stampede: n, WarmTarget: warmTarget}
	bodies := map[string]bool{}
	lats := make([]time.Duration, 0, n)
	for _, r := range results {
		if r.err != nil || r.status != http.StatusOK {
			rep.Errors++
			continue
		}
		bodies[r.body] = true
		lats = append(lats, r.latency)
		if r.coalesced {
			rep.Coalesced++
		}
		if r.hotCache {
			rep.RouterCached++
		}
		if r.cacheHit {
			rep.CacheHits++
		}
	}
	rep.UniqueBodies = len(bodies)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	rep.BurstP50Ms = ms(percentile(lats, 0.50))
	if len(lats) > 0 {
		rep.BurstMaxMs = ms(lats[len(lats)-1])
	}

	// Sequential warm probe: how many more requests until the first
	// cache-served answer, and until the running hit ratio holds the
	// target. Bounded so a tier that never warms fails fast.
	const probeLimit = 256
	hits := 0
	for i := 1; i <= probeLimit; i++ {
		start := time.Now()
		resp, err := client.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			rep.Errors++
			break
		}
		io.Copy(io.Discard, resp.Body)
		warm := resp.Header.Get("X-Cache") == "hit" || resp.Header.Get("X-Route-Cache") == "hit"
		resp.Body.Close()
		if warm {
			hits++
			if rep.FirstHitAfter == 0 {
				rep.FirstHitAfter = i
				rep.FirstHitMs = ms(time.Since(start))
			}
		}
		if rep.FirstHitAfter > 0 && float64(hits)/float64(i) >= warmTarget {
			rep.RequestsToWarm = i
			break
		}
	}

	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	enc.Encode(rep)

	var failures []string
	if rep.Errors > 0 {
		failures = append(failures, fmt.Sprintf("%d failed requests", rep.Errors))
	}
	if rep.UniqueBodies != 1 {
		failures = append(failures, fmt.Sprintf("%d distinct response bodies, want 1", rep.UniqueBodies))
	}
	if got := rep.Coalesced + rep.RouterCached; got < minCoalesced {
		failures = append(failures, fmt.Sprintf("only %d responses coalesced or router-cached, want >= %d", got, minCoalesced))
	}
	if rep.FirstHitAfter == 0 {
		failures = append(failures, fmt.Sprintf("no cache hit within %d probe requests", probeLimit))
	} else if rep.RequestsToWarm == 0 {
		failures = append(failures, fmt.Sprintf("hit ratio never reached %.2f within %d probe requests", warmTarget, probeLimit))
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(stderr, "loadgen: FAIL: %s\n", f)
		}
		return 1
	}
	fmt.Fprintln(stderr, "loadgen: stampede checks passed")
	return 0
}

// assess applies the SLO gates and returns human-readable failures.
func assess(sum *summary, maxP99 time.Duration, failOn5xx bool) []string {
	var failures []string
	if sum.Requests == 0 {
		failures = append(failures, "no requests completed")
	}
	if sum.Errors > 0 {
		failures = append(failures, fmt.Sprintf("%d transport errors", sum.Errors))
	}
	if failOn5xx {
		for code, n := range sum.Status {
			if strings.HasPrefix(code, "5") && n > 0 {
				failures = append(failures, fmt.Sprintf("%d responses with status %s", n, code))
			}
		}
	}
	if maxP99 > 0 && sum.P99Ms > ms(maxP99) {
		failures = append(failures, fmt.Sprintf("p99 %.1fms exceeds budget %v", sum.P99Ms, maxP99))
	}
	return failures
}

// scrapeCache pulls doppio_cache_hits_total / doppio_cache_misses_total
// off /metrics, validating the exposition line format along the way.
func scrapeCache(client *http.Client, base string) (hits, misses float64, err error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("/metrics returned %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, value, ok := strings.Cut(line, " ")
		if !ok {
			return 0, 0, fmt.Errorf("unparseable metrics line %q", line)
		}
		v, perr := strconv.ParseFloat(value, 64)
		if perr != nil && value != "+Inf" && value != "NaN" {
			return 0, 0, fmt.Errorf("unparseable metrics value in %q", line)
		}
		switch name {
		case "doppio_cache_hits_total":
			hits = v
		case "doppio_cache_misses_total":
			misses = v
		}
	}
	return hits, misses, sc.Err()
}
