// Command chaoscheck is the CI cluster-e2e gate: it proves the sharded
// serve tier hides a replica crash from clients. Using a built doppio
// binary it
//
//  1. boots three `doppio serve` replicas and one `doppio route` front
//     tier over them, then warms a corpus of distinct requests through
//     the router, recording each response's bytes and serving replica;
//  2. gates the sharding contract: a repeated request is a cache hit on
//     the same replica, and the router's response bytes match a direct
//     request to that replica byte for byte;
//  3. drives sustained load through the router, SIGKILLs the busiest
//     replica mid-load, restarts it, and gates that clients saw zero
//     transport errors, zero non-2xx responses, and a bounded p99 —
//     with at least one failover and one retry actually exercised;
//  4. gates re-admission: the doppio_cluster_replica_healthy gauge for
//     the restarted replica returns to 1 and a trailing window of
//     corpus requests is served by it again, with every response still
//     byte-identical to the pre-crash reference;
//  5. gates warm start: replicas run with -cache-snapshot, so the
//     restarted replica must serve every corpus key it owns as an
//     X-Cache hit with the pre-crash bytes and zero recomputes — the
//     crash cost one process, not one cache;
//  6. gates coalescing: a barrier-released stampede of identical
//     requests for a never-seen key costs the whole tier exactly one
//     cache miss, with most arrivals collapsed at the router;
//  7. shuts everything down with SIGTERM and requires clean exits.
//
// Usage:
//
//	go build -o /tmp/doppio ./cmd/doppio
//	go run ./cmd/chaoscheck -doppio /tmp/doppio [-metrics-out /tmp/router.prom] [-replica-metrics-out /tmp/replica.prom]
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

const (
	replicaCount = 3
	loadWorkers  = 6
	loadDuration = 8 * time.Second
	killAfter    = 2 * time.Second
	restartAfter = 3 * time.Second // after the kill
	p99Budget    = 2 * time.Second
	recoveryWait = 20 * time.Second

	snapInterval = 300 * time.Millisecond // replica -cache-snapshot-interval
	hotCacheTTL  = time.Second            // router -hot-cache-ttl
	stampedeN    = 32                     // barrier-released identical requests
)

func main() {
	doppio := flag.String("doppio", "", "path to a built doppio binary (required)")
	port := flag.Int("port", 19080, "router port; replicas use the next ports")
	metricsOut := flag.String("metrics-out", "", "write the router's final /metrics scrape here")
	replicaMetricsOut := flag.String("replica-metrics-out", "", "write the restarted replica's final /metrics scrape here")
	keep := flag.Bool("keep", false, "keep the log directory for debugging")
	flag.Parse()
	if *doppio == "" {
		fmt.Fprintln(os.Stderr, "chaoscheck: -doppio is required (go build -o /tmp/doppio ./cmd/doppio)")
		os.Exit(1)
	}
	bin, err := filepath.Abs(*doppio)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaoscheck:", err)
		os.Exit(1)
	}
	dir, err := os.MkdirTemp("", "chaoscheck-")
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaoscheck:", err)
		os.Exit(1)
	}
	fmt.Printf("# log directory %s\n", dir)

	c := &chaos{
		bin:    bin,
		dir:    dir,
		client: &http.Client{Timeout: 15 * time.Second},
		router: fmt.Sprintf("127.0.0.1:%d", *port),
	}
	for i := 1; i <= replicaCount; i++ {
		c.replicas = append(c.replicas, fmt.Sprintf("127.0.0.1:%d", *port+i))
	}
	defer c.killAll()

	c.boot()
	c.warm()
	c.awaitSnapshots()
	killed := c.loadWithKill()
	c.awaitReadmission(killed)
	c.verifyWarmStart(killed)
	c.stampedeFreshKey()
	c.verifyCounters()
	if *metricsOut != "" {
		c.dump(c.router, *metricsOut)
	}
	if *replicaMetricsOut != "" {
		c.dump(killed, *replicaMetricsOut)
	}
	c.shutdown()
	if !*keep {
		os.RemoveAll(dir)
	}
	fmt.Println("PASS cluster-e2e: replica SIGKILL was invisible to clients; the restarted replica came back cache-warm and byte-identical")
}

// corpusItem is one distinct logical request with its reference bytes.
type corpusItem struct {
	name string
	path string
	body string
	ref  []byte // response bytes from the warm pass
	home string // X-Served-By from the warm pass
}

type chaos struct {
	bin, dir string
	client   *http.Client
	router   string   // router host:port
	replicas []string // replica host:port, index 0..2

	procs  map[string]*proc
	corpus []*corpusItem
}

type proc struct {
	name string
	cmd  *exec.Cmd
	done chan error
	log  *os.File
}

// start launches one doppio subcommand with its own log file.
func (c *chaos) start(name string, args ...string) {
	if c.procs == nil {
		c.procs = map[string]*proc{}
	}
	logF, err := os.Create(filepath.Join(c.dir, name+".log"))
	if err != nil {
		c.fatal("creating log for %s: %v", name, err)
	}
	cmd := exec.Command(c.bin, args...)
	cmd.Stdout, cmd.Stderr = logF, logF
	if err := cmd.Start(); err != nil {
		c.fatal("starting %s: %v", name, err)
	}
	p := &proc{name: name, cmd: cmd, done: make(chan error, 1), log: logF}
	go func() { p.done <- cmd.Wait() }()
	c.procs[name] = p
}

// killAll SIGKILLs everything still running (fatal-path cleanup).
func (c *chaos) killAll() {
	for _, p := range c.procs {
		if p.cmd.ProcessState == nil {
			p.cmd.Process.Kill()
		}
		p.log.Close()
	}
}

func (c *chaos) fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "chaoscheck: FAIL: "+format+"\n", args...)
	for name := range c.procs {
		fmt.Fprintf(os.Stderr, "chaoscheck: see %s\n", filepath.Join(c.dir, name+".log"))
	}
	c.killAll()
	os.Exit(1)
}

func (c *chaos) replicaName(addr string) string {
	return "replica-" + addr[strings.LastIndex(addr, ":")+1:]
}

// startReplica launches one replica with the full cache plane: a
// snapshot file keyed by its stable name (a restart reuses it, which is
// exactly the warm-start path under test) and the peer list for
// cross-replica read-through.
func (c *chaos) startReplica(addr string) {
	name := c.replicaName(addr)
	c.start(name, "serve", "-addr", addr, "-request-timeout", "10s",
		"-replica-id", addr,
		"-cache-snapshot", filepath.Join(c.dir, name+".snap"),
		"-cache-snapshot-interval", snapInterval.String(),
		"-peers", strings.Join(c.replicas, ","),
		"-peer-timeout", "500ms",
	)
}

// boot starts the three replicas and the router, then waits for ready.
func (c *chaos) boot() {
	for _, addr := range c.replicas {
		c.startReplica(addr)
	}
	routeArgs := []string{
		"route", "-addr", c.router,
		"-probe-interval", "200ms",
		"-fail-after", "2", "-recover-after", "2",
		"-breaker-threshold", "3", "-breaker-cooldown", "1s",
		"-max-retries", "3", "-retry-base", "20ms", "-retry-max", "500ms",
		"-request-timeout", "10s",
		"-hot-cache-ttl", hotCacheTTL.String(),
	}
	for _, addr := range c.replicas {
		routeArgs = append(routeArgs, "-replica", addr)
	}
	c.start("router", routeArgs...)
	for _, addr := range append([]string{c.router}, c.replicas...) {
		c.waitReady(addr, 30*time.Second)
	}
	fmt.Printf("ok  booted %d replicas behind router %s\n", replicaCount, c.router)
}

func (c *chaos) waitReady(addr string, patience time.Duration) {
	deadline := time.Now().Add(patience)
	for {
		resp, err := c.client.Get("http://" + addr + "/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			c.fatal("%s never became ready (%v)", addr, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// buildCorpus enumerates ~24 distinct requests spanning the cached POST
// endpoints, cheap enough for CI but varied enough to spread across all
// shards.
func buildCorpus() []*corpusItem {
	var items []*corpusItem
	for _, w := range []string{"lr-small", "sql"} {
		for slaves := 2; slaves <= 4; slaves++ {
			for _, cores := range []int{4, 8, 16} {
				items = append(items, &corpusItem{
					name: fmt.Sprintf("predict-%s-%d-%d", w, slaves, cores),
					path: "/api/v1/predict",
					body: fmt.Sprintf(`{"workload":%q,"slaves":%d,"cores":%d}`, w, slaves, cores),
				})
			}
		}
	}
	for _, cores := range []int{4, 8} {
		items = append(items, &corpusItem{
			name: fmt.Sprintf("whatif-%d", cores),
			path: "/api/v1/whatif",
			body: fmt.Sprintf(`{"workload":"lr-small","slaves":3,"max_cores":%d}`, cores),
		})
		items = append(items, &corpusItem{
			name: fmt.Sprintf("simulate-%d", cores),
			path: "/api/v1/simulate",
			body: fmt.Sprintf(`{"workload":"sql","slaves":3,"cores":%d}`, cores),
		})
	}
	return items
}

type reply struct {
	status   int
	body     []byte
	servedBy string
	cache    string
	route    string
	err      error
}

func (c *chaos) post(base string, it *corpusItem) reply {
	resp, err := c.client.Post("http://"+base+it.path, "application/json", strings.NewReader(it.body))
	if err != nil {
		return reply{err: err}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return reply{err: err}
	}
	return reply{
		status:   resp.StatusCode,
		body:     body,
		servedBy: resp.Header.Get("X-Served-By"),
		cache:    resp.Header.Get("X-Cache"),
		route:    resp.Header.Get("X-Route-Status"),
	}
}

// warm populates the corpus references and gates the sharding contract.
func (c *chaos) warm() {
	c.corpus = buildCorpus()
	byHome := map[string]int{}
	for _, it := range c.corpus {
		first := c.post(c.router, it)
		if first.err != nil || first.status != http.StatusOK {
			c.fatal("warm %s: status %d err %v", it.name, first.status, first.err)
		}
		it.ref, it.home = first.body, first.servedBy
		byHome[it.home]++

		// Same logical request again: must hit the same replica's cache
		// and return the same bytes.
		again := c.post(c.router, it)
		if again.err != nil || again.status != http.StatusOK {
			c.fatal("re-request %s: status %d err %v", it.name, again.status, again.err)
		}
		if again.servedBy != it.home {
			c.fatal("%s moved replicas with no membership change: %s then %s", it.name, it.home, again.servedBy)
		}
		if again.cache != "hit" {
			c.fatal("%s second request was not a cache hit (X-Cache %q)", it.name, again.cache)
		}
		if !bytes.Equal(again.body, it.ref) {
			c.fatal("%s cache hit returned different bytes", it.name)
		}

		// Byte-identity across the proxy: asking the home replica
		// directly must produce exactly the router's bytes.
		direct := c.post(it.home, it)
		if direct.err != nil || direct.status != http.StatusOK {
			c.fatal("direct %s to %s: status %d err %v", it.name, it.home, direct.status, direct.err)
		}
		if !bytes.Equal(direct.body, it.ref) {
			c.fatal("%s direct response differs from routed response", it.name)
		}
	}
	if len(byHome) < 2 {
		c.fatal("corpus all landed on one replica (%v); sharding is not spreading", byHome)
	}
	fmt.Printf("ok  warmed %d corpus items across %d shards %v\n", len(c.corpus), len(byHome), byHome)
}

// awaitSnapshots blocks until every replica has completed two snapshot
// writes after the warm pass, guaranteeing at least one full snapshot
// cycle started with the entire corpus already cached — so whichever
// replica the kill picks, its on-disk snapshot covers the corpus.
func (c *chaos) awaitSnapshots() {
	base := map[string]float64{}
	for _, addr := range c.replicas {
		base[addr] = sumFamily(c.scrape(addr), "doppio_cache_snapshot_writes_total")
	}
	deadline := time.Now().Add(30 * time.Second)
	for _, addr := range c.replicas {
		for {
			writes := sumFamily(c.scrape(addr), "doppio_cache_snapshot_writes_total")
			if writes >= base[addr]+2 {
				break
			}
			if time.Now().After(deadline) {
				c.fatal("%s never snapshotted the warm corpus (writes %v, baseline %v)", addr, writes, base[addr])
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	fmt.Printf("ok  every replica snapshotted the warmed corpus (interval %v)\n", snapInterval)
}

// loadWithKill drives sustained load, SIGKILLs the busiest replica
// mid-load, restarts it, and gates the client-visible outcome. Returns
// the killed replica's host:port.
func (c *chaos) loadWithKill() string {
	// The victim is the replica owning the most corpus items, so the
	// crash is guaranteed to hit in-demand shards.
	byHome := map[string]int{}
	for _, it := range c.corpus {
		byHome[it.home]++
	}
	victim := ""
	for addr, n := range byHome {
		if victim == "" || n > byHome[victim] || (n == byHome[victim] && addr < victim) {
			victim = addr
		}
	}

	var mu sync.Mutex
	var errors []string
	var non2xx []string
	var latencies []time.Duration

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < loadWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				it := c.corpus[i%len(c.corpus)]
				t0 := time.Now()
				r := c.post(c.router, it)
				lat := time.Since(t0)
				mu.Lock()
				latencies = append(latencies, lat)
				if r.err != nil {
					errors = append(errors, fmt.Sprintf("%s: %v", it.name, r.err))
				} else if r.status != http.StatusOK {
					non2xx = append(non2xx, fmt.Sprintf("%s: %d", it.name, r.status))
				} else if !bytes.Equal(r.body, it.ref) {
					errors = append(errors, fmt.Sprintf("%s: response bytes changed under load", it.name))
				}
				mu.Unlock()
			}
		}(w)
	}

	time.Sleep(killAfter)
	vp := c.procs[c.replicaName(victim)]
	if err := vp.cmd.Process.Kill(); err != nil {
		c.fatal("SIGKILL %s: %v", victim, err)
	}
	<-vp.done
	fmt.Printf("ok  SIGKILLed %s mid-load\n", victim)

	time.Sleep(restartAfter)
	c.startReplica(victim)

	time.Sleep(loadDuration - killAfter - restartAfter)
	close(stop)
	wg.Wait()

	if len(errors) > 0 {
		c.fatal("%d client-visible transport errors through the crash; first: %s", len(errors), errors[0])
	}
	if len(non2xx) > 0 {
		c.fatal("%d non-2xx responses through the crash; first: %s", len(non2xx), non2xx[0])
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p99 := latencies[int(0.99*float64(len(latencies)-1))]
	if p99 > p99Budget {
		c.fatal("p99 %v exceeds %v budget through the crash", p99, p99Budget)
	}
	fmt.Printf("ok  %d requests through the crash: zero errors, zero non-2xx, p99 %v\n", len(latencies), p99.Round(time.Millisecond))
	return victim
}

// awaitReadmission gates recovery: the router's health gauge for the
// restarted replica returns to 1, and a trailing window of corpus
// requests is served by it again with the reference bytes.
func (c *chaos) awaitReadmission(killed string) {
	c.waitReady(killed, 30*time.Second)
	gauge := fmt.Sprintf(`doppio_cluster_replica_healthy{replica=%q}`, killed)
	deadline := time.Now().Add(recoveryWait)
	for {
		m := c.scrape(c.router)
		if m[gauge] == 1 {
			break
		}
		if time.Now().After(deadline) {
			c.fatal("router never re-admitted %s: %s = %v", killed, gauge, m[gauge])
		}
		time.Sleep(200 * time.Millisecond)
	}

	// Let the router's hot cache drain first: a replay would carry the
	// takeover replica's X-Served-By and hide the re-admission we are
	// here to observe.
	time.Sleep(hotCacheTTL + 200*time.Millisecond)
	served := 0
	for _, it := range c.corpus {
		r := c.post(c.router, it)
		if r.err != nil || r.status != http.StatusOK {
			c.fatal("post-recovery %s: status %d err %v", it.name, r.status, r.err)
		}
		if !bytes.Equal(r.body, it.ref) {
			c.fatal("post-recovery %s: response differs from pre-crash reference", it.name)
		}
		if r.servedBy == killed {
			served++
		}
	}
	if served == 0 {
		c.fatal("restarted replica %s served none of the trailing window; ring did not re-admit it", killed)
	}
	fmt.Printf("ok  %s re-admitted: healthy gauge 1, serving %d/%d of the trailing window, bytes identical\n",
		killed, served, len(c.corpus))
}

// verifyWarmStart gates the snapshot contract on the restarted replica:
// it restored entries from disk, serves every corpus key it owns as an
// X-Cache hit with the pre-crash bytes, and has recomputed nothing —
// the SIGKILL cost the tier one process, never one cache.
func (c *chaos) verifyWarmStart(killed string) {
	m := c.scrape(killed)
	restored := sumFamily(m, "doppio_cache_snapshot_restored_entries")
	if restored < 1 {
		c.fatal("restarted %s restored %v snapshot entries, want >= 1", killed, restored)
	}
	checked := 0
	for _, it := range c.corpus {
		if it.home != killed {
			continue
		}
		r := c.post(killed, it)
		if r.err != nil || r.status != http.StatusOK {
			c.fatal("warm-start %s direct to %s: status %d err %v", it.name, killed, r.status, r.err)
		}
		if r.cache != "hit" {
			c.fatal("warm-start %s on restarted %s was X-Cache %q, want hit from the snapshot", it.name, killed, r.cache)
		}
		if !bytes.Equal(r.body, it.ref) {
			c.fatal("warm-start %s on restarted %s returned different bytes than before the crash", it.name, killed)
		}
		checked++
	}
	if checked == 0 {
		c.fatal("no corpus items homed on %s; cannot verify warm start", killed)
	}
	if misses := sumFamily(c.scrape(killed), "doppio_cache_misses_total"); misses != 0 {
		c.fatal("restarted %s recomputed %v keys after restoring a snapshot; warm start leaked work", killed, misses)
	}
	fmt.Printf("ok  warm start: %s restored %v entries and served %d owned keys as hits with zero recomputes\n",
		killed, restored, checked)
}

// stampedeFreshKey gates router coalescing end to end: a barrier-
// released burst of identical requests for a key no replica has ever
// seen must cost the whole tier exactly one cache miss, every response
// byte-identical, with at least half the burst collapsed at the router.
// The workload (pagerank) appears nowhere in the corpus, so the one
// compute also pays a cold calibration — a wide window for followers to
// pile into the leader's flight.
func (c *chaos) stampedeFreshKey() {
	it := &corpusItem{
		name: "stampede-pagerank",
		path: "/api/v1/predict",
		body: `{"workload":"pagerank","slaves":3,"cores":8}`,
	}
	missesBefore, coalescedBefore := c.tierMisses(), sumFamily(c.scrape(c.router), "doppio_cluster_coalesced_total")

	replies := make([]reply, stampedeN)
	barrier := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < stampedeN; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-barrier
			replies[i] = c.post(c.router, it)
		}(i)
	}
	close(barrier)
	wg.Wait()

	bodies := map[string]bool{}
	leaders := 0
	for i, r := range replies {
		if r.err != nil || r.status != http.StatusOK {
			c.fatal("stampede request %d: status %d err %v", i, r.status, r.err)
		}
		bodies[string(r.body)] = true
		// Followers replay the leader's X-Cache: miss header; only an
		// uncollapsed request that itself missed is a distinct compute.
		if r.cache == "miss" && r.route != "coalesced" && r.route != "cached" {
			leaders++
		}
	}
	if len(bodies) != 1 {
		c.fatal("stampede produced %d distinct response bodies, want 1", len(bodies))
	}
	if leaders != 1 {
		c.fatal("stampede reached %d uncollapsed cache misses, want exactly 1 compute", leaders)
	}
	// The one compute costs at most two cache misses on its replica: the
	// result itself plus the workload's first-ever calibration (both live
	// in the same doppio_cache family). Anything more means requests
	// leaked past the flight table into parallel computes.
	if missDelta := c.tierMisses() - missesBefore; missDelta > 2 {
		c.fatal("stampede of %d identical requests cost the tier %v cache misses, want at most 2 (result + calibration)", stampedeN, missDelta)
	}
	coalesced := sumFamily(c.scrape(c.router), "doppio_cluster_coalesced_total") - coalescedBefore
	if coalesced < stampedeN/2 {
		c.fatal("only %v of %d stampede requests coalesced, want >= %d", coalesced, stampedeN, stampedeN/2)
	}
	fmt.Printf("ok  stampede: %d identical requests -> 1 compute, %v coalesced, byte-identical\n", stampedeN, coalesced)
}

// tierMisses sums doppio_cache_misses_total across every replica — the
// tier-wide compute count a stampede must move by exactly one.
func (c *chaos) tierMisses() float64 {
	total := 0.0
	for _, addr := range c.replicas {
		total += sumFamily(c.scrape(addr), "doppio_cache_misses_total")
	}
	return total
}

// verifyCounters gates that the chaos actually exercised the machinery.
func (c *chaos) verifyCounters() {
	m := c.scrape(c.router)
	failovers := sumFamily(m, "doppio_cluster_failovers_total")
	retries := sumFamily(m, "doppio_cluster_retries_total")
	if failovers < 1 {
		c.fatal("doppio_cluster_failovers_total = %v; the kill never forced a failover", failovers)
	}
	if retries < 1 {
		c.fatal("doppio_cluster_retries_total = %v; the kill never forced a retry", retries)
	}
	healthy := sumFamily(m, "doppio_cluster_replica_healthy")
	if healthy != replicaCount {
		c.fatal("doppio_cluster_replica_healthy sums to %v, want %d", healthy, replicaCount)
	}
	// The sustained load repeats ~22 keys within the hot-cache TTL, so a
	// run that never replays from the hot cache means the cache is dead.
	hotHits := sumFamily(m, "doppio_cluster_hotcache_hits_total")
	if hotHits < 1 {
		c.fatal("doppio_cluster_hotcache_hits_total = %v; the hot cache never served a repeat", hotHits)
	}
	fmt.Printf("ok  chaos exercised the stack: %v failovers, %v retries, %v hot-cache replays, %v/%d replicas healthy\n",
		failovers, retries, hotHits, healthy, replicaCount)
}

// scrape returns every /metrics series, keyed by its full name
// including labels.
func (c *chaos) scrape(addr string) map[string]float64 {
	resp, err := c.client.Get("http://" + addr + "/metrics")
	if err != nil {
		c.fatal("scraping %s: %v", addr, err)
	}
	defer resp.Body.Close()
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, value, ok := strings.Cut(line, " ")
		if !ok {
			c.fatal("unparseable metrics line %q", line)
		}
		v, perr := strconv.ParseFloat(value, 64)
		if perr != nil {
			c.fatal("unparseable metrics value in %q", line)
		}
		out[name] = v
	}
	if err := sc.Err(); err != nil {
		c.fatal("reading metrics: %v", err)
	}
	return out
}

// sumFamily adds every series of one family (bare name or labeled).
func sumFamily(m map[string]float64, family string) float64 {
	total := 0.0
	for name, v := range m {
		if name == family || strings.HasPrefix(name, family+"{") {
			total += v
		}
	}
	return total
}

// dump writes one process's final /metrics exposition for metriccheck.
func (c *chaos) dump(addr, path string) {
	resp, err := c.client.Get("http://" + addr + "/metrics")
	if err != nil {
		c.fatal("final scrape of %s: %v", addr, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		c.fatal("final scrape of %s: %v", addr, err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		c.fatal("writing %s: %v", path, err)
	}
	fmt.Printf("ok  wrote final metrics of %s to %s\n", addr, path)
}

// shutdown SIGTERMs everything and requires clean drains.
func (c *chaos) shutdown() {
	names := make([]string, 0, len(c.procs))
	for name := range c.procs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p := c.procs[name]
		if p.cmd.ProcessState != nil {
			continue // the SIGKILLed original; its restart is a separate proc
		}
		if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			c.fatal("SIGTERM %s: %v", name, err)
		}
		select {
		case err := <-p.done:
			if err != nil {
				c.fatal("%s exited uncleanly after SIGTERM: %v", name, err)
			}
		case <-time.After(30 * time.Second):
			c.fatal("%s did not drain within 30s of SIGTERM", name)
		}
	}
	fmt.Println("ok  clean SIGTERM shutdown of router and replicas")
}
