// Command fiobench sweeps the storage device models across request
// sizes, reporting IOPS and effective bandwidth — the reproduction of
// the fio runs behind the paper's Fig. 5 and of the "one-time disk
// profiling per data center" of Section VI-1.
//
// Usage:
//
//	fiobench [-dev hdd|ssd|pd-standard:SIZE|pd-ssd:SIZE] [-sizes 4KB,30KB,...]
//
// Without -dev both physical device models are swept.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cloud"
	"repro/internal/disk"
	"repro/internal/units"
)

func main() {
	devFlag := flag.String("dev", "", "device: hdd, ssd, pd-standard:SIZE, pd-ssd:SIZE (default: both physical models)")
	sizesFlag := flag.String("sizes", "", "comma-separated request sizes (default: the Fig. 5 sweep)")
	flag.Parse()

	var sizes []units.ByteSize
	if *sizesFlag != "" {
		for _, s := range strings.Split(*sizesFlag, ",") {
			b, err := units.ParseByteSize(strings.TrimSpace(s))
			if err != nil {
				fatal(err)
			}
			sizes = append(sizes, b)
		}
	}

	var devs []disk.Device
	switch {
	case *devFlag == "":
		devs = []disk.Device{disk.NewHDD(), disk.NewSSD()}
	case *devFlag == "hdd":
		devs = []disk.Device{disk.NewHDD()}
	case *devFlag == "ssd":
		devs = []disk.Device{disk.NewSSD()}
	default:
		name, sizeStr, ok := strings.Cut(*devFlag, ":")
		if !ok {
			fatal(fmt.Errorf("unknown device %q", *devFlag))
		}
		size, err := units.ParseByteSize(sizeStr)
		if err != nil {
			fatal(err)
		}
		switch name {
		case "pd-standard":
			devs = []disk.Device{cloud.NewDisk(cloud.PDStandard, size)}
		case "pd-ssd":
			devs = []disk.Device{cloud.NewDisk(cloud.PDSSD, size)}
		default:
			fatal(fmt.Errorf("unknown device type %q", name))
		}
	}

	for i, d := range devs {
		if i > 0 {
			fmt.Println()
		}
		rep := disk.Fio(d, sizes)
		if _, err := rep.WriteTo(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fiobench:", err)
	os.Exit(1)
}
