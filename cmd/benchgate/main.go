// Command benchgate is the perf-regression gate for the simulation
// core. It parses `go test -bench -benchmem` output and either records
// a baseline (-write) or compares the run against a committed baseline
// (-baseline), failing when ns/op or allocs/op regress beyond the
// tolerance — benchstat-style, but dependency-free and scriptable in CI.
//
//	go test -bench ... -benchmem -run '^$' ./... | benchgate -write docs/BENCH_simcore.json
//	go test -bench ... -benchmem -run '^$' ./... | benchgate -baseline docs/BENCH_simcore.json
//
// -baseline repeats: one gated run can cover several committed baseline
// files (the sim core and the serve hot path), as long as no benchmark
// name appears in more than one of them:
//
//	... | benchgate -baseline docs/BENCH_simcore.json -baseline docs/BENCH_serve.json
//
// allocs/op and B/op are deterministic and gated strictly; ns/op is machine-
// dependent, so the gate compares against the committed baseline with a
// relative tolerance (default 15%). See docs/PERF.md for when and how
// to refresh the baseline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed benchmark reference.
type Baseline struct {
	Note       string           `json:"note,omitempty"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// Entry is one benchmark's recorded cost. BytesPerOp is omitted from
// baselines written before it was gated; a zero value skips the B/op
// gate (an actually-zero-byte benchmark is already pinned through its
// zero allocs/op).
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, in io.Reader, out, errW io.Writer) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(errW)
	write := fs.String("write", "", "record the parsed benchmarks as the new baseline at this path")
	var baselines []string
	fs.Func("baseline", "compare against the baseline at this path (repeatable)", func(s string) error {
		baselines = append(baselines, s)
		return nil
	})
	tolerance := fs.Float64("tolerance", 0.15, "maximum allowed relative regression in ns/op and allocs/op")
	note := fs.String("note", "Committed perf baseline. Refresh per docs/PERF.md.",
		"note stored in the baseline file written by -write")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if (*write == "") == (len(baselines) == 0) {
		fmt.Fprintln(errW, "benchgate: need exactly one of -write or -baseline")
		return 2
	}
	got, err := parseBench(in)
	if err != nil {
		fmt.Fprintln(errW, "benchgate:", err)
		return 2
	}
	if len(got) == 0 {
		fmt.Fprintln(errW, "benchgate: no benchmark lines found on stdin (did you pass -benchmem?)")
		return 2
	}
	if *write != "" {
		b := Baseline{
			Note:       *note,
			Benchmarks: got,
		}
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			fmt.Fprintln(errW, "benchgate:", err)
			return 2
		}
		if err := os.WriteFile(*write, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(errW, "benchgate:", err)
			return 2
		}
		fmt.Fprintf(out, "benchgate: wrote %d benchmarks to %s\n", len(got), *write)
		return 0
	}

	base, err := loadBaselines(baselines)
	if err != nil {
		fmt.Fprintln(errW, "benchgate:", err)
		return 2
	}
	return compare(base, got, *tolerance, out, errW)
}

// loadBaselines merges the committed baseline files into one gate. A
// benchmark name appearing in two files is an authorship error (which
// file would own its refresh?), so it fails loudly instead of silently
// letting the later file win.
func loadBaselines(paths []string) (Baseline, error) {
	merged := Baseline{Benchmarks: map[string]Entry{}}
	owner := map[string]string{}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return Baseline{}, err
		}
		var b Baseline
		if err := json.Unmarshal(data, &b); err != nil {
			return Baseline{}, fmt.Errorf("%s: %v", path, err)
		}
		if len(b.Benchmarks) == 0 {
			return Baseline{}, fmt.Errorf("%s: no benchmarks", path)
		}
		for name, e := range b.Benchmarks {
			if prev, dup := owner[name]; dup {
				return Baseline{}, fmt.Errorf("benchmark %s appears in both %s and %s", name, prev, path)
			}
			owner[name] = path
			merged.Benchmarks[name] = e
		}
	}
	return merged, nil
}

// compare gates every baseline benchmark against the current run.
func compare(base Baseline, got map[string]Entry, tol float64, out, errW io.Writer) int {
	names := make([]string, 0, len(base.Benchmarks))
	for n := range base.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	failed := 0
	for _, name := range names {
		want := base.Benchmarks[name]
		cur, ok := got[name]
		if !ok {
			fmt.Fprintf(errW, "FAIL %s: in baseline but missing from this run\n", name)
			failed++
			continue
		}
		nsOK := gate(cur.NsPerOp, want.NsPerOp, tol)
		bytesOK := want.BytesPerOp == 0 || gate(cur.BytesPerOp, want.BytesPerOp, tol)
		allocOK := gate(cur.AllocsPerOp, want.AllocsPerOp, tol)
		status := "ok  "
		if !nsOK || !bytesOK || !allocOK {
			status = "FAIL"
			failed++
		}
		fmt.Fprintf(out, "%s %-40s ns/op %12.0f -> %12.0f (%+6.1f%%)  B/op %10.0f -> %10.0f (%+6.1f%%)  allocs/op %8.0f -> %8.0f (%+6.1f%%)\n",
			status, name,
			want.NsPerOp, cur.NsPerOp, delta(cur.NsPerOp, want.NsPerOp),
			want.BytesPerOp, cur.BytesPerOp, delta(cur.BytesPerOp, want.BytesPerOp),
			want.AllocsPerOp, cur.AllocsPerOp, delta(cur.AllocsPerOp, want.AllocsPerOp))
	}
	if failed > 0 {
		fmt.Fprintf(errW, "benchgate: %d of %d gated benchmarks regressed beyond %.0f%%\n",
			failed, len(names), tol*100)
		return 1
	}
	fmt.Fprintf(out, "benchgate: %d benchmarks within %.0f%% of baseline\n", len(names), tol*100)
	return 0
}

// gate reports whether cur is within the relative tolerance of want.
// Improvements always pass; a zero baseline admits only zero.
func gate(cur, want, tol float64) bool {
	if cur <= want {
		return true
	}
	if want == 0 {
		return false
	}
	return (cur-want)/want <= tol
}

func delta(cur, want float64) float64 {
	if want == 0 {
		if cur == 0 {
			return 0
		}
		return 100
	}
	return (cur - want) / want * 100
}

// parseBench extracts Benchmark lines from `go test -bench` output. The
// trailing -N GOMAXPROCS suffix is stripped so baselines survive CPU-
// count changes; duplicate names keep the last occurrence.
func parseBench(r io.Reader) (map[string]Entry, error) {
	got := map[string]Entry{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		name := f[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var e Entry
		var haveNs, haveAllocs bool
		for i := 2; i+1 < len(f); i++ {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "ns/op":
				e.NsPerOp, haveNs = v, true
			case "B/op":
				e.BytesPerOp = v
			case "allocs/op":
				e.AllocsPerOp, haveAllocs = v, true
			}
		}
		if haveNs && haveAllocs {
			got[name] = e
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return got, nil
}
