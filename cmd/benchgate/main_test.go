package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchOut = `goos: linux
goarch: amd64
pkg: repro/internal/sim
cpu: some cpu
BenchmarkEngineEventLoop-8   	41940980	        28.55 ns/op	       0 B/op	       0 allocs/op
BenchmarkFlowChurn-8         	 3075902	       382.9 ns/op	     322 B/op	       2 allocs/op
BenchmarkNoMem-8             	 1000000	      1000 ns/op
PASS
ok  	repro/internal/sim	5.1s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(benchOut))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2 (no-benchmem lines skipped): %v", len(got), got)
	}
	e := got["BenchmarkEngineEventLoop"]
	if e.NsPerOp != 28.55 || e.BytesPerOp != 0 || e.AllocsPerOp != 0 {
		t.Errorf("EngineEventLoop = %+v", e)
	}
	e = got["BenchmarkFlowChurn"]
	if e.NsPerOp != 382.9 || e.BytesPerOp != 322 || e.AllocsPerOp != 2 {
		t.Errorf("FlowChurn = %+v", e)
	}
}

func TestWriteThenCheckRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	var out, errW bytes.Buffer
	if code := run([]string{"-write", path}, strings.NewReader(benchOut), &out, &errW); code != 0 {
		t.Fatalf("write exited %d: %s", code, errW.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatal(err)
	}
	if len(b.Benchmarks) != 2 {
		t.Fatalf("baseline has %d benchmarks", len(b.Benchmarks))
	}
	out.Reset()
	if code := run([]string{"-baseline", path}, strings.NewReader(benchOut), &out, &errW); code != 0 {
		t.Fatalf("identical run failed the gate (%d): %s", code, errW.String())
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	var out, errW bytes.Buffer
	if code := run([]string{"-write", path}, strings.NewReader(benchOut), &out, &errW); code != 0 {
		t.Fatalf("write exited %d", code)
	}
	// 382.9 -> 500 ns/op is a ~31% regression; 2 -> 9 allocs is worse still.
	regressed := strings.Replace(benchOut, "382.9 ns/op	     322 B/op	       2 allocs/op",
		"500.0 ns/op	     322 B/op	       9 allocs/op", 1)
	if code := run([]string{"-baseline", path}, strings.NewReader(regressed), &out, &errW); code != 1 {
		t.Fatalf("regressed run exited %d, want 1\n%s%s", code, out.String(), errW.String())
	}
	// A generous tolerance lets the ns/op slip through but allocs still fail.
	errW.Reset()
	if code := run([]string{"-baseline", path, "-tolerance", "0.5"}, strings.NewReader(regressed), &out, &errW); code != 1 {
		t.Fatalf("alloc regression passed at 50%% tolerance (exit %d)", code)
	}
}

// TestGateFailsOnBytesRegression pins the B/op gate: a run whose only
// regression is bytes-per-op fails against a baseline that recorded
// them, and passes against a legacy baseline that did not.
func TestGateFailsOnBytesRegression(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	var out, errW bytes.Buffer
	if code := run([]string{"-write", path}, strings.NewReader(benchOut), &out, &errW); code != 0 {
		t.Fatalf("write exited %d", code)
	}
	bloated := strings.Replace(benchOut, "382.9 ns/op	     322 B/op	       2 allocs/op",
		"382.9 ns/op	     999 B/op	       2 allocs/op", 1)
	if code := run([]string{"-baseline", path}, strings.NewReader(bloated), &out, &errW); code != 1 {
		t.Fatalf("B/op regression exited %d, want 1\n%s%s", code, out.String(), errW.String())
	}

	// A pre-B/op baseline (bytes_per_op absent -> zero) skips the gate.
	legacy := filepath.Join(t.TempDir(), "legacy.json")
	data, err := json.Marshal(Baseline{Benchmarks: map[string]Entry{
		"BenchmarkFlowChurn": {NsPerOp: 382.9, AllocsPerOp: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(legacy, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errW.Reset()
	if code := run([]string{"-baseline", legacy}, strings.NewReader(bloated), &out, &errW); code != 0 {
		t.Fatalf("legacy baseline without bytes_per_op exited %d, want 0: %s", code, errW.String())
	}
}

func TestGateFailsOnMissingBenchmark(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	var out, errW bytes.Buffer
	if code := run([]string{"-write", path}, strings.NewReader(benchOut), &out, &errW); code != 0 {
		t.Fatalf("write exited %d", code)
	}
	partial := strings.Replace(benchOut, "BenchmarkFlowChurn", "BenchmarkRenamed", 1)
	if code := run([]string{"-baseline", path}, strings.NewReader(partial), &out, &errW); code != 1 {
		t.Fatalf("run missing a gated benchmark exited %d, want 1", code)
	}
}

func TestImprovementAlwaysPasses(t *testing.T) {
	if !gate(10, 100, 0.15) {
		t.Error("10x improvement should pass")
	}
	if !gate(100, 100, 0.15) {
		t.Error("flat should pass")
	}
	if gate(1, 0, 0.15) {
		t.Error("zero-alloc baseline must reject any alloc")
	}
	if !gate(0, 0, 0.15) {
		t.Error("zero vs zero should pass")
	}
}

func TestBadUsage(t *testing.T) {
	var out, errW bytes.Buffer
	if code := run(nil, strings.NewReader(benchOut), &out, &errW); code != 2 {
		t.Errorf("no mode flag exited %d, want 2", code)
	}
	if code := run([]string{"-baseline", "nope.json", "-write", "x.json"}, strings.NewReader(benchOut), &out, &errW); code != 2 {
		t.Errorf("both modes exited %d, want 2", code)
	}
	if code := run([]string{"-baseline", filepath.Join(t.TempDir(), "absent.json")}, strings.NewReader(benchOut), &out, &errW); code != 2 {
		t.Errorf("missing baseline exited %d, want 2", code)
	}
}

// TestMultipleBaselines checks one gated run can cover several committed
// baseline files, and that a benchmark owned by two files is rejected.
func TestMultipleBaselines(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, b Baseline) string {
		t.Helper()
		path := filepath.Join(dir, name)
		data, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	simBase := write("sim.json", Baseline{Benchmarks: map[string]Entry{
		"BenchmarkEngineEventLoop": {NsPerOp: 30, AllocsPerOp: 0},
	}})
	serveBase := write("serve.json", Baseline{Benchmarks: map[string]Entry{
		"BenchmarkFlowChurn": {NsPerOp: 400, AllocsPerOp: 2},
	}})

	var out, errW bytes.Buffer
	code := run([]string{"-baseline", simBase, "-baseline", serveBase},
		strings.NewReader(benchOut), &out, &errW)
	if code != 0 {
		t.Fatalf("merged gate exited %d: %s", code, errW.String())
	}
	if !strings.Contains(out.String(), "2 benchmarks within") {
		t.Errorf("output: %s", out.String())
	}

	// A regression in the second file's benchmark fails the merged gate.
	out.Reset()
	errW.Reset()
	strict := write("serve-strict.json", Baseline{Benchmarks: map[string]Entry{
		"BenchmarkFlowChurn": {NsPerOp: 100, AllocsPerOp: 2},
	}})
	code = run([]string{"-baseline", simBase, "-baseline", strict},
		strings.NewReader(benchOut), &out, &errW)
	if code != 1 {
		t.Fatalf("regressed merged gate exited %d, want 1: %s", code, errW.String())
	}

	// Duplicate ownership is an authorship error, not last-wins.
	out.Reset()
	errW.Reset()
	dup := write("dup.json", Baseline{Benchmarks: map[string]Entry{
		"BenchmarkEngineEventLoop": {NsPerOp: 10, AllocsPerOp: 0},
	}})
	code = run([]string{"-baseline", simBase, "-baseline", dup},
		strings.NewReader(benchOut), &out, &errW)
	if code != 2 {
		t.Fatalf("duplicate baseline exited %d, want 2: %s", code, errW.String())
	}
	if !strings.Contains(errW.String(), "appears in both") {
		t.Errorf("stderr: %s", errW.String())
	}
}
