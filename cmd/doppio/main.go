// Command doppio drives the Doppio reproduction: it lists and runs the
// paper's experiments, simulates workloads on configurable clusters,
// calibrates and applies the analytical model, profiles I/O, and
// searches Google Cloud configurations for the cost optimum.
//
// Usage:
//
//	doppio experiments                 list reproducible paper artifacts
//	doppio run [-format text|csv|md] [-parallel N] <id>|all
//	doppio workloads                   list workloads
//	doppio sim [flags] <workload>      simulate a workload, print stages + iostat
//	doppio predict [flags] <workload>  calibrate, predict, compare with sim
//	doppio optimize [flags]            search the cloud configuration space
//	doppio fio                         fio-like sweep of the device models
//
// The implementation lives in internal/cli.
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.Main(os.Args[1:], os.Stdout, os.Stderr))
}
