// Command doppio drives the Doppio reproduction: it lists and runs the
// paper's experiments, simulates workloads on configurable clusters,
// calibrates and applies the analytical model, profiles I/O, and
// searches Google Cloud configurations for the cost optimum.
//
// Usage:
//
//	doppio experiments                 list reproducible paper artifacts
//	doppio run [-format text|csv|md] [-parallel N] [-timeout D] <id>|all
//	doppio workloads                   list workloads
//	doppio sim [flags] <workload>      simulate a workload, print stages + iostat
//	doppio predict [flags] <workload>  calibrate, predict, compare with sim
//	doppio optimize [flags]            search the cloud configuration space
//	doppio recommend [flags]           constrained search (-deadline/-budget)
//	                                   with Eq. 1 monotonicity pruning
//	doppio whatif [flags] <workload>   sweep core counts with the calibrated model
//	doppio serve [flags]               HTTP prediction service (docs/SERVING.md)
//	doppio campaign plan|run|merge     resumable, checkpointed parameter
//	                                   studies (docs/CAMPAIGN.md)
//	doppio fio                         fio-like sweep of the device models
//
// `doppio run` bounds each artifact with -timeout and cancels cleanly
// on Ctrl-C, flushing the reports that already completed. `doppio sim`
// takes fault-injection flags (-fail-prob, -fetch-fail-prob,
// -max-task-failures, -retry-backoff, -fault-seed); see
// docs/RESILIENCE.md for the failure-recovery model behind them.
// `doppio serve` exposes predict/simulate/whatif/recommend/sweep as
// cached JSON endpoints with /healthz, /readyz and Prometheus-text
// /metrics, and drains gracefully on SIGTERM; cmd/loadgen drives it for
// the CI service gate. `doppio campaign` expands a JSON study config
// into a deterministic point list, checkpoints every completed point to
// an fsync'd JSONL file (kill-safe, resumable with -resume, shardable
// across processes), and merges checkpoints into one report;
// cmd/campaignsmoke drives its kill-and-resume CI gate.
//
// The implementation lives in internal/cli.
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.Main(os.Args[1:], os.Stdout, os.Stderr))
}
