package spark

import (
	"math"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/units"
)

// FuzzMemoryAccounting drives randomized memory configurations through
// config validation, the spill arithmetic and a small end-to-end
// simulation, checking the layer's invariants: Validate never panics,
// per-task spill stays inside [0, working set], peak resident demand
// never exceeds the node's concurrency times the working set, and a
// heap too large to matter is indistinguishable from the memory layer
// being off.
func FuzzMemoryAccounting(f *testing.F) {
	f.Add(1.0, 2.5, int64(256), 0.5, 0.6, int64(32), int64(24), int64(2), uint64(1))
	f.Add(0.25, 4.0, int64(64), 1.0, 0.9, int64(64), int64(48), int64(4), uint64(7))
	f.Add(0.0, 0.0, int64(0), 0.0, 0.0, int64(8), int64(8), int64(1), uint64(0))
	f.Fuzz(func(t *testing.T, heapGB, expansion float64, spillKB int64,
		gcPauseSec, gcThr float64, perTaskMB, tasks, cores int64, seed uint64) {
		// Validate must reject or accept without panicking, whatever the
		// raw values are.
		raw := MemoryConfig{
			HeapGB:       heapGB,
			Expansion:    expansion,
			SpillReqSize: units.ByteSize(spillKB) * units.KB,
			GCMaxPause:   DurationParam(gcPauseSec),
			GCThreshold:  gcThr,
		}
		rawErr := raw.Validate()
		if raw.HeapGB < 0 || raw.Expansion < 0 || raw.SpillReqSize < 0 ||
			raw.GCMaxPause < 0 || raw.GCThreshold < 0 || raw.GCThreshold > 1 {
			if rawErr == nil {
				t.Fatalf("Validate accepted %+v", raw)
			}
			return
		}
		if rawErr != nil {
			t.Fatalf("Validate rejected in-range %+v: %v", raw, rawErr)
		}

		// Sanitize the shape parameters into a range the sim can run in
		// microseconds; the memory parameters keep their fuzzed values
		// when finite and in-range.
		mod := func(v, lo, hi int64) int64 {
			if v < 0 {
				v = -v
			}
			if v < 0 { // math.MinInt64
				v = 0
			}
			return lo + v%(hi-lo+1)
		}
		if math.IsNaN(heapGB) || math.IsInf(heapGB, 0) || heapGB > 64 {
			heapGB = 1
		}
		cfg := DefaultTestbed(2, int(mod(cores, 1, 4)), disk.NewSSD(), disk.NewHDD())
		cfg.Seed = seed
		cfg.Memory = MemoryConfig{
			HeapGB:       heapGB,
			Expansion:    expansion,
			SpillReqSize: raw.SpillReqSize,
			GCMaxPause:   raw.GCMaxPause,
			GCThreshold:  gcThr,
		}
		if err := cfg.Memory.Validate(); err != nil {
			t.Fatalf("sanitized config invalid: %v", err)
		}

		perTask := units.ByteSize(mod(perTaskMB, 1, 64)) * units.MB
		app := App{Name: "fuzz-mem", Stages: []Stage{{
			Name: "s",
			Groups: []TaskGroup{{Name: "g", Count: int(mod(tasks, 1, 48)), Ops: []Op{
				IO(OpHDFSRead, perTask, 4*units.MB, 0),
				Compute(50 * time.Millisecond),
			}}},
		}}}

		res, err := Run(cfg, app)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		ws := cfg.Memory.TaskWorkingSet(app.Stages[0].Groups[0])
		nTasks := units.ByteSize(app.Stages[0].Groups[0].Count)
		if res.Mem.SpillBytes < 0 || res.Mem.SpillBytes > nTasks*ws {
			t.Fatalf("spill %v outside [0, %v]", res.Mem.SpillBytes, nTasks*ws)
		}
		// resident is demand, not in-heap occupancy: it sums the full
		// working set of every in-flight attempt (spilled bytes
		// included), so its bound is the node's concurrency, not the
		// heap.
		if maxRes := units.ByteSize(cfg.ExecutorCores) * ws; res.Mem.PeakResident > maxRes {
			t.Fatalf("peak resident %v exceeds %d concurrent working sets (%v)",
				res.Mem.PeakResident, cfg.ExecutorCores, maxRes)
		}

		// spillFor's clamp, on the values this run actually saw.
		heap := cfg.Memory.HeapBytes()
		for _, resident := range []units.ByteSize{0, heap / 2, heap, heap + ws} {
			s := spillFor(resident, ws, heap)
			if s < 0 || s > ws {
				t.Fatalf("spillFor(%v, %v, %v) = %v outside [0, ws]", resident, ws, heap, s)
			}
			if resident+ws <= heap && s != 0 {
				t.Fatalf("spillFor(%v, %v, %v) = %v, want 0 when the set fits", resident, ws, heap, s)
			}
		}

		// A heap that can never bind must be event-for-event identical
		// to the layer being off.
		huge := cfg
		huge.Memory = MemoryConfig{HeapGB: 1 << 30}
		off := cfg
		off.Memory = MemoryConfig{}
		hugeRes, err := Run(huge, app)
		if err != nil {
			t.Fatalf("huge-heap run: %v", err)
		}
		offRes, err := Run(off, app)
		if err != nil {
			t.Fatalf("memory-off run: %v", err)
		}
		if hugeRes.Total != offRes.Total {
			t.Fatalf("huge heap total %v != memory-off total %v", hugeRes.Total, offRes.Total)
		}
		if hugeRes.Mem.SpillBytes != 0 || hugeRes.Mem.GCPauses != 0 {
			t.Fatalf("huge heap still spilled/collected: %+v", hugeRes.Mem)
		}
	})
}
