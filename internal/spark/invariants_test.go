package spark

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/disk"
	"repro/internal/units"
)

// randApp builds a small deterministic app from fuzz bytes.
func randApp(stages, tasks, ioMB, computeSec uint8) App {
	nStages := int(stages%3) + 1
	app := App{Name: "fuzz"}
	for s := 0; s < nStages; s++ {
		count := int(tasks%40) + 1
		bytes := units.ByteSize(int(ioMB%64)+1) * units.MB
		comp := time.Duration(int(computeSec%8)) * time.Second
		kind := []OpKind{OpHDFSRead, OpShuffleRead, OpPersistRead}[s%3]
		app.Stages = append(app.Stages, Stage{
			Name: string(rune('a' + s)),
			Groups: []TaskGroup{{
				Name:  "g",
				Count: count,
				Ops: []Op{
					IOC(kind, bytes, bytes/4+1, units.MBps(50), comp),
					IO(OpShuffleWrite, bytes/2, bytes/2, units.MBps(50)),
				},
			}},
		})
	}
	return app
}

// TestRuntimeMonotoneInCores: adding executor cores never slows an app
// down (no GC model in play).
func TestRuntimeMonotoneInCores(t *testing.T) {
	ssd := disk.NewSSD()
	f := func(stages, tasks, ioMB, computeSec, pRaw uint8) bool {
		app := randApp(stages, tasks, ioMB, computeSec)
		p1 := int(pRaw%16) + 1
		p2 := p1 * 2
		cfg1 := barebones(2, p1, ssd)
		cfg2 := barebones(2, p2, ssd)
		r1, err1 := Run(cfg1, app)
		r2, err2 := Run(cfg2, app)
		if err1 != nil || err2 != nil {
			return false
		}
		// Allow a sliver of slack for barrier rounding.
		return r2.Total <= r1.Total+time.Millisecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestRuntimeMonotoneInNodes: adding slave nodes never slows an app.
func TestRuntimeMonotoneInNodes(t *testing.T) {
	ssd := disk.NewSSD()
	f := func(stages, tasks, ioMB, computeSec, nRaw uint8) bool {
		app := randApp(stages, tasks, ioMB, computeSec)
		n1 := int(nRaw%4) + 1
		n2 := n1 * 2
		r1, err1 := Run(barebones(n1, 8, ssd), app)
		r2, err2 := Run(barebones(n2, 8, ssd), app)
		if err1 != nil || err2 != nil {
			return false
		}
		return r2.Total <= r1.Total+time.Millisecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestFasterDiskNeverHurts: upgrading a device can only help.
func TestFasterDiskNeverHurts(t *testing.T) {
	f := func(stages, tasks, ioMB, computeSec uint8) bool {
		app := randApp(stages, tasks, ioMB, computeSec)
		slow, err1 := Run(barebones(2, 8, disk.NewHDD()), app)
		fast, err2 := Run(barebones(2, 8, disk.NewSSD()), app)
		if err1 != nil || err2 != nil {
			return false
		}
		return fast.Total <= slow.Total+time.Millisecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestIOAccountingInvariantToHardware: the volumes a stage moves are a
// property of the application, not of the disks or core count.
func TestIOAccountingInvariantToHardware(t *testing.T) {
	f := func(stages, tasks, ioMB, computeSec uint8) bool {
		app := randApp(stages, tasks, ioMB, computeSec)
		a, err1 := Run(barebones(1, 4, disk.NewHDD()), app)
		b, err2 := Run(barebones(3, 16, disk.NewSSD()), app)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range a.Stages {
			for _, kind := range []OpKind{OpHDFSRead, OpShuffleRead, OpShuffleWrite, OpPersistRead} {
				if a.Stages[i].IO[kind].Bytes != b.Stages[i].IO[kind].Bytes {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestCoreSecondsBounded: busy core-seconds never exceed N·P·wallclock
// and are positive for non-empty apps.
func TestCoreSecondsBounded(t *testing.T) {
	f := func(stages, tasks, ioMB, computeSec uint8) bool {
		app := randApp(stages, tasks, ioMB, computeSec)
		const n, p = 2, 6
		r, err := Run(barebones(n, p, disk.NewSSD()), app)
		if err != nil {
			return false
		}
		return r.CoreSeconds > 0 && r.CoreSeconds <= float64(n*p)*r.Total.Seconds()+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestStageTimesSumToTotal: stage durations (which own their setup
// gaps) partition the application wallclock.
func TestStageTimesSumToTotal(t *testing.T) {
	f := func(stages, tasks, ioMB, computeSec uint8) bool {
		app := randApp(stages, tasks, ioMB, computeSec)
		cfg := DefaultTestbed(2, 8, disk.NewSSD(), disk.NewSSD())
		r, err := Run(cfg, app)
		if err != nil {
			return false
		}
		var sum time.Duration
		for _, s := range r.Stages {
			sum += s.Duration()
		}
		diff := (sum - r.Total).Seconds()
		return diff < 1e-6 && diff > -1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestSeedChangesJitterNotVolume: different seeds perturb runtimes only
// slightly and never the I/O accounting.
func TestSeedChangesJitterNotVolume(t *testing.T) {
	app := randApp(2, 30, 40, 5)
	cfg := DefaultTestbed(2, 8, disk.NewSSD(), disk.NewSSD())
	cfg.Seed = 1
	a, err := Run(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 2
	b, err := Run(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	if a.Total == b.Total {
		t.Error("different seeds produced identical runtimes; jitter inert")
	}
	rel := (a.Total - b.Total).Seconds() / a.Total.Seconds()
	if rel < 0 {
		rel = -rel
	}
	if rel > 0.2 {
		t.Errorf("seed changed runtime by %.0f%%; jitter too strong", rel*100)
	}
	for i := range a.Stages {
		if a.Stages[i].IO[OpShuffleWrite].Bytes != b.Stages[i].IO[OpShuffleWrite].Bytes {
			t.Error("seed changed I/O volumes")
		}
	}
}

// TestDeviceUtilisationExplainsBottlenecks: the BR-style shuffle stage
// saturates the local HDD (~100% busy) but leaves an SSD mostly idle —
// the utilisation view behind the paper's Fig. 3 analysis.
func TestDeviceUtilisationExplainsBottlenecks(t *testing.T) {
	app := App{Name: "br", Stages: []Stage{{
		Name: "BR",
		Groups: []TaskGroup{{
			Name:  "recal",
			Count: 2000,
			Ops: []Op{
				IOC(OpShuffleRead, 27*units.MB, 28*units.KB, units.MBps(60), 8550*time.Millisecond),
			},
		}},
	}}}
	hddRes, err := Run(DefaultTestbed(3, 36, disk.NewSSD(), disk.NewHDD()), app)
	if err != nil {
		t.Fatal(err)
	}
	ssdRes, err := Run(DefaultTestbed(3, 36, disk.NewSSD(), disk.NewSSD()), app)
	if err != nil {
		t.Fatal(err)
	}
	hddUtil := hddRes.MustStage("BR").LocalUtil(3)
	ssdUtil := ssdRes.MustStage("BR").LocalUtil(3)
	if hddUtil < 0.9 {
		t.Errorf("HDD local utilisation = %.0f%%, want saturated", hddUtil*100)
	}
	if ssdUtil > 0.5 {
		t.Errorf("SSD local utilisation = %.0f%%, want well below saturation", ssdUtil*100)
	}
	// HDFS disks are untouched by this stage.
	if u := hddRes.MustStage("BR").HDFSUtil(3); u != 0 {
		t.Errorf("HDFS utilisation = %.2f, want 0", u)
	}
}
