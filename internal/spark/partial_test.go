package spark

import (
	"reflect"
	"testing"

	"repro/internal/disk"
)

// degradedConfigs returns representative degraded-mode configurations
// (faults, speculation, stragglers, and combinations) on a small
// cluster, for identity checks against the per-task oracle.
func degradedConfigs() map[string]ClusterConfig {
	ssd := disk.NewSSD()
	base := func() ClusterConfig {
		cfg := DefaultTestbed(8, 4, ssd, ssd)
		cfg.ComputeJitter = 0
		cfg.Seed = 42
		return cfg
	}
	cfgs := map[string]ClusterConfig{}

	c := base()
	c.Faults = FaultConfig{TaskFailureProb: 0.01, Seed: 7, RetryBackoff: 0.05}
	cfgs["faults"] = c

	c = base()
	c.Faults = FaultConfig{TaskFailureProb: 0.005, ShuffleFetchFailureProb: 0.02, Seed: 3, RetryBackoff: 0.05}
	cfgs["fetch"] = c

	c = base()
	c.Speculation = true
	c.StragglerFraction = 0.03
	c.StragglerSlowdown = 5
	cfgs["stragglers"] = c

	c = base()
	c.Speculation = true
	c.StragglerFraction = 0.02
	c.StragglerSlowdown = 4
	c.Faults = FaultConfig{TaskFailureProb: 0.01, ShuffleFetchFailureProb: 0.01, Seed: 11, RetryBackoff: 0.05}
	cfgs["all"] = c

	c = base()
	c.Faults = FaultConfig{TaskFailureProb: 0.02, Seed: 5, RetryBackoff: 0.05, BlacklistThreshold: 2}
	cfgs["blacklist"] = c

	return cfgs
}

// TestPartialMatchesPerTask pins the tentpole guarantee: on degraded
// runs the default path (partial coalescing where the plan allows,
// bail-to-per-task otherwise) returns a Result deeply equal to the
// DisableCoalescing per-task replay.
func TestPartialMatchesPerTask(t *testing.T) {
	app := scaleAppSized(8, 4, 128)
	for name, cfg := range degradedConfigs() {
		t.Run(name, func(t *testing.T) {
			got, err := Run(cfg, app)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			ref := cfg
			ref.DisableCoalescing = true
			want, err := Run(ref, app)
			if err != nil {
				t.Fatalf("per-task Run: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("partial path diverges from per-task replay:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestPartialPlanCoalesces asserts the benchmark configuration really
// takes the partial path (the perf win is meaningless if the plan
// silently degrades to per-task) and that its plan leaves a large
// clean cohort.
func TestPartialPlanCoalesces(t *testing.T) {
	cfg, app := faultScaleConfig()
	dirty, dirtyCount, repReal, ok := planPartial(cfg, app)
	if !ok {
		t.Fatal("benchmark config is not partial-coalescing eligible")
	}
	if repReal < 0 || dirty[repReal] {
		t.Fatalf("representative id %d is not clean", repReal)
	}
	if dirtyCount == 0 {
		t.Fatal("plan drew zero dirty nodes; the benchmark would not exercise the fault path")
	}
	if dirtyCount > cfg.Slaves/2 {
		t.Fatalf("plan drew %d/%d dirty nodes; the clean cohort is too small for the benchmark to demonstrate coalescing", dirtyCount, cfg.Slaves)
	}
	r := newRunner(cfg, app, false)
	if !r.partial {
		t.Fatal("runner did not select the partial path")
	}
	res, err, bailed := r.runSafe()
	if err != nil {
		t.Fatalf("partial run: %v", err)
	}
	if bailed {
		t.Fatal("partial run bailed to per-task; the benchmark measures the slow path")
	}
	if res.Faults.TaskFailures == 0 {
		t.Fatal("partial run injected no failures; the benchmark would not exercise recovery")
	}
}

// TestFaultScalePartialIdentity is the at-scale identity gate: the
// benchmark configuration (64 nodes x 32 cores, ~100k tasks, faults +
// speculation + stragglers) must produce byte-identical Results on
// both paths.
func TestFaultScalePartialIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("at-scale per-task replay is slow; run without -short")
	}
	cfg, app := faultScaleConfig()
	got, err := Run(cfg, app)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	ref := cfg
	ref.DisableCoalescing = true
	want, err := Run(ref, app)
	if err != nil {
		t.Fatalf("per-task Run: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("partial path diverges from per-task replay at scale:\n got %+v\nwant %+v", got, want)
	}
}
