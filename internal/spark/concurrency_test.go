package spark

import (
	"sync"
	"testing"
	"time"

	"repro/internal/units"
)

// shuffleApp is a small two-stage app with shuffle write/read, enough to
// exercise CorePool, FlowResource and the DAG barrier.
func shuffleApp() App {
	return App{Name: "conc", Stages: []Stage{
		{Name: "map", Groups: []TaskGroup{{
			Name: "m", Count: 64,
			Ops: []Op{
				IO(OpHDFSRead, 128*units.MB, 128*units.MB, 0),
				Compute(2 * time.Second),
				IO(OpShuffleWrite, 32*units.MB, 32*units.MB, 0),
			},
		}}},
		{Name: "reduce", Groups: []TaskGroup{{
			Name: "r", Count: 32,
			Ops: []Op{
				IO(OpShuffleRead, 64*units.MB, 30*units.KB, units.MBps(60)),
				Compute(time.Second),
			},
		}}},
	}}
}

// TestConcurrentRunsAreDeterministic runs many simulations concurrently
// — the regime the parallel experiment harness puts the simulator in —
// and asserts every run owns its engine, CorePool and FlowResource
// instances: all concurrent results must equal the serial reference
// exactly. Run under -race in CI, this is the simulator's
// shared-mutable-state audit.
func TestConcurrentRunsAreDeterministic(t *testing.T) {
	dev := constDev{units.MBps(400), units.MBps(300)}
	cfg := barebones(4, 8, dev)
	ref, err := Run(cfg, shuffleApp())
	if err != nil {
		t.Fatal(err)
	}

	const runs = 8
	results := make([]*Result, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = Run(cfg, shuffleApp())
		}(i)
	}
	wg.Wait()
	for i := 0; i < runs; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if results[i].Total != ref.Total {
			t.Errorf("run %d: total %v != serial reference %v", i, results[i].Total, ref.Total)
		}
		if len(results[i].Stages) != len(ref.Stages) {
			t.Fatalf("run %d: %d stages, want %d", i, len(results[i].Stages), len(ref.Stages))
		}
		for si := range ref.Stages {
			if results[i].Stages[si].Duration() != ref.Stages[si].Duration() {
				t.Errorf("run %d stage %s: %v != %v", i, ref.Stages[si].Name,
					results[i].Stages[si].Duration(), ref.Stages[si].Duration())
			}
		}
	}
}
