package spark

import (
	"sort"
	"testing"
	"time"
)

// oracleMedian is the naive sorted-slice upper median the speculation
// scan historically used: insert-sort every value, read sorted[n/2].
type oracleMedian struct{ ds []time.Duration }

func (o *oracleMedian) Add(d time.Duration) {
	i := sort.Search(len(o.ds), func(i int) bool { return o.ds[i] >= d })
	o.ds = append(o.ds, 0)
	copy(o.ds[i+1:], o.ds[i:])
	o.ds[i] = d
}

func (o *oracleMedian) Median() time.Duration {
	if len(o.ds) == 0 {
		return 0
	}
	return o.ds[len(o.ds)/2]
}

// splitmix is a tiny deterministic generator for test inputs.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// TestMedianTrackerMatchesOracle pins the two-heap running median
// against the sorted-slice oracle after every insertion, across
// several input shapes (random, sorted, reverse-sorted, heavy ties).
func TestMedianTrackerMatchesOracle(t *testing.T) {
	shapes := map[string]func(i int) time.Duration{
		"random":  func(i int) time.Duration { return time.Duration(splitmix(uint64(i)) % 1_000_000) },
		"sorted":  func(i int) time.Duration { return time.Duration(i) },
		"reverse": func(i int) time.Duration { return time.Duration(5000 - i) },
		"ties":    func(i int) time.Duration { return time.Duration(splitmix(uint64(i)) % 7) },
	}
	for name, gen := range shapes {
		t.Run(name, func(t *testing.T) {
			m := newMedianTracker(0)
			var o oracleMedian
			if got := m.Median(); got != 0 {
				t.Fatalf("empty tracker Median() = %v, want 0", got)
			}
			for i := 0; i < 5000; i++ {
				d := gen(i)
				m.Add(d)
				o.Add(d)
				if m.Len() != i+1 {
					t.Fatalf("after %d adds Len() = %d", i+1, m.Len())
				}
				if got, want := m.Median(), o.Median(); got != want {
					t.Fatalf("after %d adds Median() = %v, oracle %v", i+1, got, want)
				}
			}
		})
	}
}

// TestMedianTrackerAddN pins the coalesced-fold insertion (one value,
// multiplicity n) against n oracle insertions.
func TestMedianTrackerAddN(t *testing.T) {
	m := newMedianTracker(64)
	var o oracleMedian
	for i := 0; i < 200; i++ {
		d := time.Duration(splitmix(uint64(i)) % 10_000)
		n := 1 + int(splitmix(uint64(i)*13)%5)
		m.AddN(d, n)
		for k := 0; k < n; k++ {
			o.Add(d)
		}
		if got, want := m.Median(), o.Median(); got != want {
			t.Fatalf("after batch %d Median() = %v, oracle %v", i, got, want)
		}
	}
}
