package spark

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/units"
)

// memApp is a single-stage app with count tasks, each reading readBytes
// from HDFS and computing for d.
func memApp(count int, readBytes units.ByteSize, d time.Duration) App {
	return App{
		Name: "memtest",
		Stages: []Stage{{
			Name: "map",
			Groups: []TaskGroup{{
				Name:  "map",
				Count: count,
				Ops: []Op{
					IO(OpHDFSRead, readBytes, 0, 0),
					Compute(d),
				},
			}},
		}},
	}
}

// memConfig is a deterministic single-purpose cluster: no jitter, no
// faults, memory layer as given.
func memConfig(slaves, cores int, m MemoryConfig) ClusterConfig {
	ssd := disk.NewSSD()
	cfg := DefaultTestbed(slaves, cores, ssd, ssd)
	cfg.ComputeJitter = 0
	cfg.Memory = m
	return cfg
}

// TestMemSpillExactFit: a working set exactly equal to the heap spills
// nothing — the boundary is inclusive.
func TestMemSpillExactFit(t *testing.T) {
	cfg := memConfig(1, 1, MemoryConfig{HeapGB: 1, Expansion: 1, GCThreshold: 1})
	res, err := Run(cfg, memApp(4, units.GB, 10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if res.Mem.SpilledTasks != 0 || res.Mem.SpillBytes != 0 {
		t.Errorf("exact-fit working set spilled: %+v", res.Mem)
	}
	if res.Mem.PeakResident != units.GB {
		t.Errorf("peak resident = %v, want %v", res.Mem.PeakResident, units.GB)
	}
	if _, ok := res.Stages[0].IO[OpSpillWrite]; ok {
		t.Error("spill write flow recorded without spill")
	}
}

// TestMemSpillSingleTaskOverflow: a heap smaller than a single task's
// working set spills the overflow (never more than the task's own set,
// never negative) for every task.
func TestMemSpillSingleTaskOverflow(t *testing.T) {
	cfg := memConfig(1, 1, MemoryConfig{HeapGB: 0.5, Expansion: 1, GCThreshold: 1})
	const tasks = 4
	res, err := Run(cfg, memApp(tasks, units.GB, 10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	perTask := units.GB - units.ByteSize(0.5*float64(units.GB))
	if res.Mem.SpilledTasks != tasks {
		t.Errorf("spilled tasks = %d, want %d", res.Mem.SpilledTasks, tasks)
	}
	if want := units.ByteSize(tasks) * perTask; res.Mem.SpillBytes != want {
		t.Errorf("spill bytes = %v, want %v", res.Mem.SpillBytes, want)
	}
	// Each spilled byte is written once and re-read once through the
	// Local device.
	w, r := res.Stages[0].IO[OpSpillWrite], res.Stages[0].IO[OpSpillRead]
	if w.Bytes != res.Mem.SpillBytes || r.Bytes != res.Mem.SpillBytes {
		t.Errorf("spill IO bytes w=%v r=%v, want both %v", w.Bytes, r.Bytes, res.Mem.SpillBytes)
	}
	if w.Ops != tasks || r.Ops != tasks {
		t.Errorf("spill IO ops w=%d r=%d, want both %d", w.Ops, r.Ops, tasks)
	}
}

// TestMemSpillWavePressure: with two cores, spill is a function of the
// co-resident wave, not of a task alone — the first task of a wave fits,
// its neighbour overflows.
func TestMemSpillWavePressure(t *testing.T) {
	// ws = 1 GB per task, heap = 1.5 GB: resident alone fits, two
	// co-resident tasks overflow by ws/2.
	cfg := memConfig(1, 2, MemoryConfig{HeapGB: 1.5, Expansion: 1, GCThreshold: 1})
	res, err := Run(cfg, memApp(4, units.GB, 10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	half := units.ByteSize(0.5 * float64(units.GB))
	// Task 0 fits (resident 0 -> 1 GB). Tasks 1..3 each reserve against
	// a 1 GB co-resident set and spill 0.5 GB.
	if res.Mem.SpilledTasks != 3 {
		t.Errorf("spilled tasks = %d, want 3 (%+v)", res.Mem.SpilledTasks, res.Mem)
	}
	if want := 3 * half; res.Mem.SpillBytes != want {
		t.Errorf("spill bytes = %v, want %v", res.Mem.SpillBytes, want)
	}
	if want := 2 * units.GB; res.Mem.PeakResident != want {
		t.Errorf("peak resident = %v, want %v", res.Mem.PeakResident, want)
	}
}

// TestMemGCOccupancyEdges pins the GC trigger at its occupancy edges:
// free exactly at the threshold, full (±ated seeded spread) at 100%
// occupancy.
func TestMemGCOccupancyEdges(t *testing.T) {
	const tasks = 2
	// occ = 0.5 == threshold: collections are free.
	cfg := memConfig(1, 1, MemoryConfig{HeapGB: 2, Expansion: 1, GCThreshold: 0.5, GCMaxPause: 1})
	res, err := Run(cfg, memApp(tasks, units.GB, 10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if res.Mem.GCPauses != 0 || res.Mem.GCStall != 0 {
		t.Errorf("GC fired at threshold occupancy: %+v", res.Mem)
	}
	// occ = 1.0: every completion pays the full pause, spread ±15%.
	cfg = memConfig(1, 1, MemoryConfig{HeapGB: 1, Expansion: 1, GCThreshold: 0.5, GCMaxPause: 1})
	res, err = Run(cfg, memApp(tasks, units.GB, 10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if res.Mem.GCPauses != tasks {
		t.Fatalf("GC pauses = %d, want %d", res.Mem.GCPauses, tasks)
	}
	lo := time.Duration(float64(tasks) * 0.85 * float64(time.Second))
	hi := time.Duration(float64(tasks) * 1.15 * float64(time.Second))
	if res.Mem.GCStall < lo || res.Mem.GCStall > hi {
		t.Errorf("GC stall %v outside [%v, %v]", res.Mem.GCStall, lo, hi)
	}
}

// TestMemGCStallsSiblingCores: a GC pause is node-wide — tasks on other
// cores defer their next op past the pause, so the stage takes longer
// than the same run with GC disabled.
func TestMemGCStallsSiblingCores(t *testing.T) {
	app := memApp(8, units.GB, 50*time.Millisecond)
	base := memConfig(1, 4, MemoryConfig{HeapGB: 16, Expansion: 1, GCThreshold: 1})
	noGC, err := Run(base, app)
	if err != nil {
		t.Fatal(err)
	}
	gc := memConfig(1, 4, MemoryConfig{HeapGB: 16, Expansion: 1, GCThreshold: 0.1, GCMaxPause: 2})
	withGC, err := Run(gc, app)
	if err != nil {
		t.Fatal(err)
	}
	if withGC.Mem.GCPauses == 0 {
		t.Fatal("GC never fired")
	}
	if withGC.Total <= noGC.Total {
		t.Errorf("GC stalls did not extend the run: %v <= %v", withGC.Total, noGC.Total)
	}
}

// TestMemSpillDeviceDivergence: the same overflow costs more on HDD
// than SSD — spill goes through the Local device curve at spill request
// sizes, which is the whole point of charging it to the device model.
func TestMemSpillDeviceDivergence(t *testing.T) {
	app := memApp(8, units.GB, 50*time.Millisecond)
	mem := MemoryConfig{HeapGB: 0.5, Expansion: 1, GCThreshold: 1}
	hdd, ssd := disk.NewHDD(), disk.NewSSD()

	run := func(local disk.Device) time.Duration {
		cfg := DefaultTestbed(2, 2, ssd, local)
		cfg.ComputeJitter = 0
		cfg.Memory = mem
		res, err := Run(cfg, app)
		if err != nil {
			t.Fatal(err)
		}
		if res.Mem.SpilledTasks == 0 {
			t.Fatal("no spill in divergence scenario")
		}
		return res.Total
	}
	tHDD, tSSD := run(hdd), run(ssd)
	if tHDD <= tSSD {
		t.Errorf("HDD spill (%v) not slower than SSD spill (%v)", tHDD, tSSD)
	}
}

// TestMemHugeHeapEquivalence: a heap no wave can fill produces the same
// Result as no memory layer at all, modulo the Mem accounting fields —
// the layer's only externally visible effect is spill and GC.
func TestMemHugeHeapEquivalence(t *testing.T) {
	ssd := disk.NewSSD()
	app := scaleAppSized(4, 4, 64)

	base := DefaultTestbed(4, 4, ssd, ssd) // default jitter: per-task path
	base.DisableCoalescing = true
	want, err := Run(base, app)
	if err != nil {
		t.Fatal(err)
	}

	huge := base
	huge.Memory = MemoryConfig{HeapGB: 1 << 20}
	got, err := Run(huge, app)
	if err != nil {
		t.Fatal(err)
	}
	if got.Mem.PeakResident == 0 {
		t.Fatal("memory layer did not account the working set")
	}
	if got.Mem.SpilledTasks != 0 || got.Mem.GCPauses != 0 {
		t.Fatalf("huge heap spilled or paused: %+v", got.Mem)
	}
	// Strip the accounting that is *supposed* to differ.
	got.Mem = MemStats{}
	for i := range got.Stages {
		got.Stages[i].Mem = MemStats{}
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("huge-heap run diverges from legacy run:\n got %+v\nwant %+v", got, want)
	}
}

// TestMemReleasedOnAllExits: after any run — including one with faults,
// retries and speculation — every node's resident set drains to zero.
func TestMemReleasedOnAllExits(t *testing.T) {
	ssd := disk.NewSSD()
	cfg := DefaultTestbed(3, 2, ssd, ssd)
	cfg.Memory = MemoryConfig{HeapGB: 1, Expansion: 1}
	cfg.Speculation = true
	cfg.StragglerFraction = 0.2
	cfg.StragglerSlowdown = 4
	cfg.Faults = FaultConfig{TaskFailureProb: 0.2, ShuffleFetchFailureProb: 0.1, Seed: 7}
	app := scaleAppSized(3, 2, 24)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	r := newRunner(cfg, app, false)
	// The aggressive failure rate may abort the app; the reservation
	// invariant must hold either way (aborted runs drain their
	// in-flight attempts through the r.err path).
	if _, err := r.run(); err != nil {
		t.Logf("run ended with: %v", err)
	}
	for _, nd := range r.ns {
		if nd.resident != 0 {
			t.Errorf("node %d leaked %v resident working set", nd.id, nd.resident)
		}
	}
}

// TestMemConfigValidate covers the config error paths and the
// zero-value defaults.
func TestMemConfigValidate(t *testing.T) {
	bad := []MemoryConfig{
		{HeapGB: -1},
		{HeapGB: 1, Expansion: -0.1},
		{HeapGB: 1, SpillReqSize: -units.KB},
		{HeapGB: 1, GCMaxPause: -1},
		{HeapGB: 1, GCThreshold: 1.5},
		{HeapGB: 1, GCThreshold: -0.5},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", m)
		}
	}
	var zero MemoryConfig
	if zero.Enabled() {
		t.Error("zero MemoryConfig is enabled")
	}
	if err := zero.Validate(); err != nil {
		t.Errorf("zero MemoryConfig invalid: %v", err)
	}
	m := MemoryConfig{HeapGB: 8}
	if m.ExpansionFactor() != DefaultMemExpansion ||
		m.SpillRequestSize() != DefaultSpillReqSize ||
		m.GCOccupancyThreshold() != DefaultGCThreshold {
		t.Error("defaults not applied")
	}
	if m.GCPauseMax() != 500*time.Millisecond {
		t.Errorf("GCPauseMax = %v, want 500ms", m.GCPauseMax())
	}
}

// TestSpillForClamp pins the pure spill arithmetic: never negative,
// never more than the task's own working set.
func TestSpillForClamp(t *testing.T) {
	cases := []struct {
		resident, ws, heap, want units.ByteSize
	}{
		{0, 100, 100, 0},    // exact fit
		{0, 100, 1000, 0},   // plenty of room
		{0, 300, 100, 200},  // single task overflows: heap keeps 100
		{900, 100, 1000, 0}, // wave exactly fills
		{950, 100, 1000, 50},
		{2000, 100, 1000, 100}, // already over: whole set spills (caps at ws)
	}
	for _, c := range cases {
		if got := spillFor(c.resident, c.ws, c.heap); got != c.want {
			t.Errorf("spillFor(%d,%d,%d) = %d, want %d", c.resident, c.ws, c.heap, got, c.want)
		}
	}
}
