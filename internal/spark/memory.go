package spark

// Executor-memory model: per-node heap accounting, spill-to-device and
// occupancy-driven GC stalls. Spark holds a task's working set —
// deserialized input partitions, shuffle buffers, aggregation maps — in
// the executor heap; when a wave's resident set outgrows the heap, the
// overflow spills to the Spark Local device and is re-read before the
// task completes (MEMORY_AND_DISK semantics). High heap occupancy also
// triggers stop-the-world collections that stall every core on the
// node. Both effects are what the scale-up characterizations
// (arXiv:1507.08340, arXiv:1805.08332) observe once data volume
// outgrows memory, and both are invisible to Eq. 1 without the
// t_mem_limit term in internal/core.
//
// Like FaultConfig, the zero value disables every memory path: a run
// with an unset MemoryConfig is event-for-event identical to a run
// without the memory layer (the registry-wide golden test in
// internal/workloads pins this byte for byte).

import (
	"fmt"
	"time"

	"repro/internal/units"
)

// Memory-model defaults, shared with core.MemParamsFor so the simulator
// and the analytical t_mem_limit term resolve identical values.
const (
	// DefaultMemExpansion is the calibrated expansion factor from
	// on-disk task bytes to in-heap working set. Deserialized JVM
	// objects run 2-5x their serialized size (Spark tuning guide);
	// 2.5 matches the SparkBench-style workloads the paper evaluates.
	DefaultMemExpansion = 2.5
	// DefaultSpillReqSize is the request size of spill I/O. Spark's
	// spill files are written through a 32 KB-buffered stream but the
	// device sees the merged sequential pattern; 256 KB is the
	// effective operating point fio measures for spill-like traffic.
	DefaultSpillReqSize = 256 * units.KB
	// DefaultGCMaxPause is the full-heap stop-the-world pause cost, in
	// seconds (DurationParam).
	DefaultGCMaxPause DurationParam = 0.5
	// DefaultGCThreshold is the heap occupancy where collections start
	// to cost time (CMS/G1 initiating-occupancy style).
	DefaultGCThreshold = 0.6
	// memGCSpread is the deterministic per-task spread of GC pause
	// lengths around the occupancy-determined mean (±15%, seeded).
	memGCSpread = 0.15
)

// saltGC separates the GC-pause draw from the jitter/fault draws that
// share the splitmix64 hash.
const saltGC uint64 = 0xFA14

// MemoryConfig enables the executor-memory model. The zero value
// disables it entirely; a zero-valued MemoryConfig run is
// event-for-event identical to a run without the memory layer.
type MemoryConfig struct {
	// HeapGB is the usable executor heap per node in GB. Zero disables
	// the memory model (today's behavior); positive values enable heap
	// accounting, spill and GC stalls.
	HeapGB float64
	// Expansion scales a task's on-disk I/O bytes into its in-heap
	// working set (deserialization blow-up). Zero means
	// DefaultMemExpansion.
	Expansion float64
	// SpillReqSize is the device request size of spill writes and
	// re-reads; it selects the effective-bandwidth operating point on
	// the Local device curve, which is what makes HDD and SSD spill
	// costs diverge. Zero means DefaultSpillReqSize.
	SpillReqSize units.ByteSize
	// GCMaxPause is the per-task stop-the-world pause at full heap
	// occupancy, in seconds. Zero means DefaultGCMaxPause; GC can be
	// effectively disabled by setting GCThreshold to ~1.
	GCMaxPause DurationParam
	// GCThreshold is the heap occupancy (0..1) below which collections
	// are free. Zero means DefaultGCThreshold.
	GCThreshold float64
}

// Enabled reports whether the memory layer is active.
func (m MemoryConfig) Enabled() bool { return m.HeapGB > 0 }

// HeapBytes returns the usable executor heap per node.
func (m MemoryConfig) HeapBytes() units.ByteSize {
	return units.ByteSize(m.HeapGB * float64(units.GB))
}

// ExpansionFactor returns the working-set expansion with the default
// applied.
func (m MemoryConfig) ExpansionFactor() float64 {
	if m.Expansion > 0 {
		return m.Expansion
	}
	return DefaultMemExpansion
}

// SpillRequestSize returns the spill request size with the default
// applied.
func (m MemoryConfig) SpillRequestSize() units.ByteSize {
	if m.SpillReqSize > 0 {
		return m.SpillReqSize
	}
	return DefaultSpillReqSize
}

// GCPauseMax returns the full-occupancy pause with the default applied.
func (m MemoryConfig) GCPauseMax() time.Duration {
	p := m.GCMaxPause
	if p <= 0 {
		p = DefaultGCMaxPause
	}
	return units.SecDuration(p.Seconds())
}

// GCOccupancyThreshold returns the free-GC occupancy bound with the
// default applied.
func (m MemoryConfig) GCOccupancyThreshold() float64 {
	if m.GCThreshold > 0 {
		return m.GCThreshold
	}
	return DefaultGCThreshold
}

// Validate checks the memory configuration.
func (m MemoryConfig) Validate() error {
	switch {
	case m.HeapGB < 0:
		return fmt.Errorf("spark: HeapGB must be >= 0, got %v", m.HeapGB)
	case m.Expansion < 0:
		return fmt.Errorf("spark: memory Expansion must be >= 0, got %v", m.Expansion)
	case m.SpillReqSize < 0:
		return fmt.Errorf("spark: SpillReqSize must be >= 0, got %v", m.SpillReqSize)
	case m.GCMaxPause < 0:
		return fmt.Errorf("spark: GCMaxPause must be >= 0, got %v", m.GCMaxPause)
	case m.GCThreshold < 0 || m.GCThreshold > 1:
		return fmt.Errorf("spark: GCThreshold %v outside [0,1]", m.GCThreshold)
	}
	return nil
}

// TaskWorkingSet returns one task's in-heap working set for a group:
// the expansion factor times the task's total I/O volume.
func (m MemoryConfig) TaskWorkingSet(g TaskGroup) units.ByteSize {
	var io units.ByteSize
	for _, op := range g.Ops {
		if op.Kind.IsIO() {
			io += op.Bytes
		}
	}
	return units.ByteSize(m.ExpansionFactor() * float64(io))
}

// spillFor returns how much of a task's working set ws must spill when
// reserved on a node already holding resident bytes against the heap:
// clamp(resident + ws - heap, 0, ws). Never negative, never more than
// the task's own working set.
func spillFor(resident, ws, heap units.ByteSize) units.ByteSize {
	over := resident + ws - heap
	if over < 0 {
		return 0
	}
	if over > ws {
		return ws
	}
	return over
}

// gcFraction maps heap occupancy to the fraction of GCPauseMax a
// completing task pays: zero below the threshold, then a quadratic
// ramp to 1 at (or beyond) full occupancy. The quadratic matches the
// super-linear pause growth GC logs show as the live set approaches
// the heap.
func (m MemoryConfig) gcFraction(occ float64) float64 {
	thr := m.GCOccupancyThreshold()
	if occ <= thr || thr >= 1 {
		return 0
	}
	q := (occ - thr) / (1 - thr)
	if q > 1 {
		q = 1
	}
	return q * q
}

// MemStats aggregates memory-layer activity over a stage or run. All
// fields are zero when the memory layer is disabled.
type MemStats struct {
	// SpilledTasks counts task attempts whose working set overflowed
	// the heap.
	SpilledTasks int
	// SpillBytes is the per-task overflow volume reserved to the Local
	// device (each spilled byte is written once and re-read once, so
	// the device moves 2x this).
	SpillBytes units.ByteSize
	// GCPauses counts occupancy-triggered stop-the-world pauses.
	GCPauses int
	// GCStall is the summed pause time; each pause stalls every core
	// on its node until it ends.
	GCStall time.Duration
	// PeakResident is the largest per-node resident working set seen.
	// It measures demand — each in-flight task charges its full working
	// set, spilled bytes included — so it can exceed the heap; the
	// overshoot is what spilled.
	PeakResident units.ByteSize
}

// Any reports whether any memory activity was recorded.
func (s MemStats) Any() bool {
	return s.SpilledTasks != 0 || s.SpillBytes != 0 || s.GCPauses != 0 ||
		s.GCStall != 0 || s.PeakResident != 0
}
