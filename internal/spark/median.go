package spark

import "time"

// medianTracker maintains the running median of completed task
// durations in O(log n) per insertion, replacing the insertion-sorted
// slice the speculation scan used to keep (O(n) memmove per completion,
// quadratic over a 100k-task stage). It is the classic two-heap
// construction: lo is a max-heap holding the smaller ⌊n/2⌋ durations,
// hi a min-heap holding the rest, and the median is hi's minimum —
// exactly the upper median sorted[n/2] the sorted slice indexed, so the
// speculation threshold is unchanged to the nanosecond (pinned against
// the sorted-slice oracle in median_test.go).
type medianTracker struct {
	lo []time.Duration // max-heap: smaller half
	hi []time.Duration // min-heap: larger half (never smaller than lo)
	n  int
}

// newMedianTracker pre-sizes both heaps for roughly hint total values.
func newMedianTracker(hint int) *medianTracker {
	if hint < 0 {
		hint = 0
	}
	return &medianTracker{
		lo: make([]time.Duration, 0, hint/2+1),
		hi: make([]time.Duration, 0, hint/2+1),
	}
}

// Len returns the number of recorded durations.
func (m *medianTracker) Len() int { return m.n }

// Median returns the upper median (sorted[n/2], 0-indexed) of the
// recorded durations; zero when empty.
func (m *medianTracker) Median() time.Duration {
	if m.n == 0 {
		return 0
	}
	return m.hi[0]
}

// Add records one duration.
func (m *medianTracker) Add(d time.Duration) {
	if len(m.hi) == 0 || d >= m.hi[0] {
		m.hi = pushMin(m.hi, d)
	} else {
		m.lo = pushMax(m.lo, d)
	}
	// Rebalance to |lo| = ⌊n/2⌋, |hi| = ⌈n/2⌉.
	if len(m.lo) > len(m.hi) {
		var v time.Duration
		m.lo, v = popMax(m.lo)
		m.hi = pushMin(m.hi, v)
	} else if len(m.hi) > len(m.lo)+1 {
		var v time.Duration
		m.hi, v = popMin(m.hi)
		m.lo = pushMax(m.lo, v)
	}
	m.n++
}

// AddN records the duration n times — the wave-coalescing path inserts
// one representative completion once per replicated node.
func (m *medianTracker) AddN(d time.Duration, n int) {
	for i := 0; i < n; i++ {
		m.Add(d)
	}
}

// The sift helpers are hand-rolled on plain slices (rather than
// container/heap) so insertions stay free of interface allocations.

func pushMin(h []time.Duration, v time.Duration) []time.Duration {
	h = append(h, v)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p] <= h[i] {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	return h
}

func popMin(h []time.Duration) ([]time.Duration, time.Duration) {
	v := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && h[l] < h[s] {
			s = l
		}
		if r < n && h[r] < h[s] {
			s = r
		}
		if s == i {
			break
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
	return h, v
}

func pushMax(h []time.Duration, v time.Duration) []time.Duration {
	h = append(h, v)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p] >= h[i] {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	return h
}

func popMax(h []time.Duration) ([]time.Duration, time.Duration) {
	v := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && h[l] > h[s] {
			s = l
		}
		if r < n && h[r] > h[s] {
			s = r
		}
		if s == i {
			break
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
	return h, v
}
