package spark

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/sim"
	"repro/internal/units"
)

// Run simulates the application on the cluster and returns the measured
// result. It is deterministic: same inputs, same output.
//
// Stages without explicit dependencies run as a linear chain (each
// stage barriers on the previous one). When any stage declares
// DependsOn, the DAG scheduler runs every stage whose dependencies have
// completed, concurrently — Spark's actual stage semantics.
func Run(cfg ClusterConfig, app App) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := app.Validate(); err != nil {
		return nil, err
	}
	r := newRunner(cfg, app)
	return r.run()
}

// node is one simulated slave.
type node struct {
	id    int
	cores *sim.CorePool
	hdfs  *sim.FlowResource
	local *sim.FlowResource
	nic   *sim.FlowResource
	// fault state: a crashed node is gone for the rest of the run; a
	// blacklisted one finishes its in-flight work but receives no new
	// dispatches. taskFailures counts injected failures for the
	// blacklist threshold.
	crashed      bool
	blacklisted  bool
	taskFailures int
	// memory state (only touched when the memory layer is on): the
	// resident working set of in-flight attempts, and the instant
	// until which a stop-the-world GC pause stalls every core on the
	// node.
	resident units.ByteSize
	gcUntil  time.Duration
}

// stageState tracks one stage through its execution.
type stageState struct {
	idx       int
	stage     Stage
	deps      []int
	launched  bool
	completed bool
	res       *StageResult
	groups    []GroupResult
	remaining int
	// device utilisation snapshots at the stage's barrier; with
	// concurrent DAG stages the per-stage attribution is approximate
	// (shared device time counts toward every overlapping stage).
	hdfsBusy0, localBusy0 time.Duration
	// speculation bookkeeping: completed task durations (sorted) and
	// the in-flight attempts.
	durations []time.Duration
	running   map[*attempt]struct{}
	// reqTrace records, on the coalesced path only, every increment to
	// the cluster-shared IOStat.Requests accumulators in event order, so
	// completeStage can replay the additions the replicated nodes would
	// have made (float addition is order-sensitive; see scaleResult).
	reqTrace map[OpKind][]reqIncr
}

// reqIncr is one recorded IOStat.Requests increment: its virtual instant
// and value.
type reqIncr struct {
	at time.Duration
	v  float64
}

// taskState is one logical task, possibly executed by several attempts.
type taskState struct {
	done       bool
	attempts   int
	speculated bool
	// fault bookkeeping: counted failures against the attempt budget,
	// fetch failures (Spark tracks these separately from task failures),
	// and the number of attempts currently in flight.
	failures      int
	fetchFailures int
	inflight      int
}

// attempt is one execution of a task on one node.
type attempt struct {
	task    *taskState
	nd      *node
	gi      int
	g       TaskGroup
	taskIdx int
	start   time.Duration
	// failAt / fetchFailAt are the op indices at which this attempt is
	// fated to fail (-1: never). lost marks the attempt killed by its
	// node's crash; it dies at the next op boundary.
	failAt      int
	fetchFailAt int
	lost        bool
	// memory layer: the working set reserved on the node for this
	// attempt (released on every exit path) and the portion that
	// overflowed the heap (written to the Local device up front and
	// re-read before the task completes).
	memBytes units.ByteSize
	spill    units.ByteSize
}

type runner struct {
	cfg        cfgDerived
	app        App
	eng        *sim.Engine
	ns         []*node
	res        *Result
	states     []*stageState
	done       int
	finishedAt time.Duration
	// scale is the wave-coalescing replication factor: 1 on the
	// per-task path; cfg.Slaves when the run is provably node-symmetric
	// and a single representative node is simulated in place of the
	// cluster (see coalescable and docs/PERF.md). Every aggregate is
	// scaled back so the Result is byte-identical to the per-task path.
	scale int
	// err is the first fatal failure (attempt budget exhausted, no
	// healthy nodes left). Once set, no new work launches and the
	// engine drains its in-flight events.
	err error
}

// busySums totals the device utilisation seconds across nodes (iostat's
// %util integral, not mere occupancy). Under coalescing each simulated
// node stands for scale identical nodes; the replicated nodes would
// accumulate bit-identical UtilSeconds, so adding the representative's
// converted value scale times reproduces the per-task sum exactly
// (Duration addition is integer arithmetic).
func (r *runner) busySums() (hdfs, local time.Duration) {
	for _, n := range r.ns {
		h := units.SecDuration(n.hdfs.Stats().UtilSeconds)
		l := units.SecDuration(n.local.Stats().UtilSeconds)
		for s := 0; s < r.scale; s++ {
			hdfs += h
			local += l
		}
	}
	return hdfs, local
}

// cfgDerived bundles the config with precomputed values.
type cfgDerived struct {
	ClusterConfig
	remoteFrac float64 // fraction of shuffle-read bytes crossing the NIC
}

func newRunner(cfg ClusterConfig, app App) *runner {
	d := cfgDerived{ClusterConfig: cfg}
	if cfg.Slaves > 1 {
		// remoteFrac always reflects the full cluster size, even when
		// coalescing simulates a single representative node.
		d.remoteFrac = float64(cfg.Slaves-1) / float64(cfg.Slaves)
	}
	scale := 1
	simNodes := cfg.Slaves
	if coalescable(cfg, app) {
		scale = cfg.Slaves
		simNodes = 1
	}
	eng := sim.NewEngineSized(simNodes*(cfg.ExecutorCores+4) + 16)
	r := &runner{cfg: d, app: app, eng: eng, scale: scale}
	for i := 0; i < simNodes; i++ {
		n := &node{
			id:    i,
			cores: sim.NewCorePool(eng, cfg.ExecutorCores),
			hdfs:  sim.NewFlowResource(eng, fmt.Sprintf("node%d/hdfs", i)),
			local: sim.NewFlowResource(eng, fmt.Sprintf("node%d/local", i)),
		}
		if cfg.ModelNetwork {
			n.nic = sim.NewFlowResource(eng, fmt.Sprintf("node%d/nic", i))
		}
		r.ns = append(r.ns, n)
	}
	r.res = &Result{App: app.Name, Slaves: cfg.Slaves, Cores: cfg.ExecutorCores}
	r.states = buildStates(app)
	return r
}

// buildStates resolves each stage's dependency indices: the declared
// DAG when any stage names dependencies, otherwise the implicit linear
// chain.
func buildStates(app App) []*stageState {
	useDAG := false
	for _, s := range app.Stages {
		if len(s.DependsOn) > 0 {
			useDAG = true
			break
		}
	}
	byName := map[string]int{}
	for i, s := range app.Stages {
		byName[s.Name] = i
	}
	states := make([]*stageState, len(app.Stages))
	for i, s := range app.Stages {
		st := &stageState{idx: i, stage: s}
		if useDAG {
			for _, dep := range s.DependsOn {
				st.deps = append(st.deps, byName[dep])
			}
		} else if i > 0 {
			st.deps = []int{i - 1}
		}
		states[i] = st
	}
	return states
}

// coalescable reports whether the run qualifies for wave coalescing:
// simulating one representative node in place of cfg.Slaves identical
// ones and replicating its timings and metrics. That is exact only when
// every node provably executes the same event sequence, which requires
//
//   - no fault injection, speculation, stragglers or compute jitter
//     (each makes tasks or nodes heterogeneous), and
//   - every task group's count divisible by the node count, so the
//     round-robin assignment gives all nodes identical task schedules.
//
// Anything else falls back to the per-task path automatically. The
// fallback and the coalesced path produce byte-identical Results — the
// registry-wide golden test in internal/workloads enforces it.
func coalescable(cfg ClusterConfig, app App) bool {
	if cfg.DisableCoalescing || cfg.Slaves <= 1 {
		return false
	}
	if cfg.Faults.Enabled() || cfg.Speculation || cfg.StragglerFraction > 0 || cfg.ComputeJitter > 0 {
		return false
	}
	// Heap occupancy couples every task on a node to its co-resident
	// wave: simulating one representative node would need the exact
	// cross-node placement to reproduce spill decisions, so
	// memory-enabled runs always take the per-task path.
	if cfg.Memory.Enabled() {
		return false
	}
	for _, s := range app.Stages {
		for _, g := range s.Groups {
			if g.Count%cfg.Slaves != 0 {
				return false
			}
		}
	}
	return true
}

func (r *runner) run() (*Result, error) {
	if f := r.cfg.Faults; f.Enabled() {
		for _, c := range f.NodeCrashes {
			nd := r.ns[c.Node]
			r.eng.At(units.SecDuration(c.At.Seconds()), func() { r.crashNode(nd) })
		}
	}
	r.launchReady()
	r.eng.Run()
	if r.err != nil {
		return nil, r.err
	}
	if r.done < len(r.states) {
		for _, st := range r.states {
			if st.launched && !st.completed {
				return nil, fmt.Errorf("spark: simulation of %q stalled in stage %s: %d tasks unfinished",
					r.app.Name, st.stage.Name, st.remaining)
			}
		}
		return nil, fmt.Errorf("spark: simulation of %q deadlocked: %d of %d stages never became ready",
			r.app.Name, len(r.states)-r.done, len(r.states))
	}
	// The application ends when its last stage completes; the engine may
	// drain a little further (cancelled speculative attempts finishing
	// their in-flight op before standing down).
	r.res.Total = r.finishedAt
	// Under coalescing every replicated node's pool would report the
	// same float, and the per-task path sums them node by node — so add
	// the representative's value scale times rather than multiplying, to
	// reproduce the identical float accumulation sequence.
	for _, n := range r.ns {
		v := n.cores.BusyCoreSeconds()
		for s := 0; s < r.scale; s++ {
			r.res.CoreSeconds += v
		}
	}
	return r.res, nil
}

// launchReady schedules every unlaunched stage whose dependencies have
// completed.
func (r *runner) launchReady() {
	if r.err != nil {
		return
	}
	for _, st := range r.states {
		if st.launched {
			continue
		}
		ready := true
		for _, d := range st.deps {
			if !r.states[d].completed {
				ready = false
				break
			}
		}
		if !ready {
			continue
		}
		st.launched = true
		// The stage owns its setup gap: its Start is the barrier time, so
		// in linear mode stage durations sum to the application total and
		// the driver overhead lands in the measurements δ_scale is fitted
		// from.
		barrier := r.eng.Now()
		st.hdfsBusy0, st.localBusy0 = r.busySums()
		st := st
		r.eng.After(units.SecDuration(r.cfg.StageSetupOverhead.Seconds()), func() {
			r.launchStage(st, barrier)
		})
	}
}

// completeStage records the finished stage and unlocks its dependents.
func (r *runner) completeStage(st *stageState) {
	st.res.End = r.eng.Now()
	st.res.Groups = st.groups
	hdfs, local := r.busySums()
	st.res.HDFSBusy = hdfs - st.hdfsBusy0
	st.res.LocalBusy = local - st.localBusy0
	if r.scale > 1 {
		r.scaleStage(st)
	}
	st.completed = true
	r.done++
	if st.res.End > r.finishedAt {
		r.finishedAt = st.res.End
	}
	r.res.Stages = append(r.res.Stages, *st.res)
	r.launchReady()
}

// scaleStage converts a representative-node stage measurement into the
// full-cluster one. Integer aggregates (durations, bytes, counts) scale
// exactly by multiplication; the one cluster-shared float accumulator —
// IOStat.Requests — is rebuilt by replaying the recorded increment
// sequence once per replicated node, reproducing the per-task path's
// float additions bit for bit. (Within a virtual instant the per-task
// path interleaves nodes in node-major order: each node's resource
// completes its flows in one cascade before the next node's fires.)
func (r *runner) scaleStage(st *stageState) {
	k := time.Duration(r.scale)
	b := units.ByteSize(r.scale)
	for gi := range st.groups {
		g := &st.groups[gi]
		g.TotalTaskTime *= k
		for oi := range g.OpTimes {
			o := &g.OpTimes[oi]
			o.Time *= k
			o.Bytes *= b
			o.Coupled *= k
			o.Count *= r.scale
		}
	}
	st.res.NetBytes *= b
	for kind, s := range st.res.IO {
		s.Bytes *= b
		s.Ops *= r.scale
		s.Time *= k
		s.Requests = replayRequests(st.reqTrace[kind], r.scale)
		st.res.IO[kind] = s
	}
}

// replayRequests folds one op kind's recorded Requests increments as the
// whole cluster would have: per virtual instant, each of the scale
// identical nodes contributes the representative's increments in turn.
func replayRequests(trace []reqIncr, scale int) float64 {
	var sum float64
	for i := 0; i < len(trace); {
		j := i
		for j < len(trace) && trace[j].at == trace[i].at {
			j++
		}
		for n := 0; n < scale; n++ {
			for t := i; t < j; t++ {
				sum += trace[t].v
			}
		}
		i = j
	}
	return sum
}

func (r *runner) launchStage(st *stageState, barrier time.Duration) {
	if r.err != nil {
		return
	}
	stage := st.stage
	st.res = &StageResult{
		Name:  stage.Name,
		Start: barrier,
		Tasks: stage.Tasks(),
		IO:    make(map[OpKind]IOStat),
	}
	st.groups = make([]GroupResult, len(stage.Groups))
	st.remaining = stage.Tasks() / r.scale
	st.running = make(map[*attempt]struct{})
	if r.scale > 1 {
		st.reqTrace = make(map[OpKind][]reqIncr)
	}
	if r.cfg.Speculation {
		// Spark re-evaluates speculation on a timer
		// (spark.speculation.interval); completions alone would miss a
		// straggler tail that outlives the last normal task.
		var tick func()
		tick = func() {
			if st.completed || r.err != nil {
				return
			}
			r.maybeSpeculate(st)
			r.eng.After(time.Second, tick)
		}
		r.eng.After(time.Second, tick)
	}
	taskIdx := 0
	for gi, g := range stage.Groups {
		nOps := len(g.Ops)
		if g.GC != nil {
			nOps++ // trailing GC accounting slot
		}
		st.groups[gi] = GroupResult{
			Name:    g.Name,
			Count:   g.Count,
			OpTimes: make([]OpStat, nOps),
		}
		// On the coalesced path the representative node runs its 1/scale
		// share of the group — exactly the tasks round-robin would give
		// each node (coalescable guarantees divisibility).
		for t := 0; t < g.Count/r.scale; t++ {
			nd := r.ns[taskIdx%len(r.ns)]
			if r.faultsOn() {
				nd = r.pickHealthy(taskIdx%len(r.ns), nil)
				if nd == nil {
					r.failApp(r.noHealthyNodes())
					return
				}
			}
			gi, g, idx := gi, g, taskIdx
			taskIdx++
			task := &taskState{}
			nd.cores.Acquire(func() { r.startAttempt(st, task, nd, gi, g, idx, false) })
		}
	}
}

// maybeSpeculate launches a second attempt for tasks that have run far
// past the median completed duration (spark.speculation semantics).
func (r *runner) maybeSpeculate(st *stageState) {
	if !r.cfg.Speculation || len(st.durations) == 0 || r.err != nil {
		return
	}
	mult := r.cfg.SpeculationMultiplier
	if mult <= 0 {
		mult = 1.5
	}
	median := st.durations[len(st.durations)/2]
	threshold := time.Duration(float64(median) * mult)
	now := r.eng.Now()
	var cands []*attempt
	for a := range st.running {
		if a.task.done || a.task.speculated {
			continue
		}
		if now-a.start < threshold {
			continue
		}
		cands = append(cands, a)
	}
	// Map iteration order varies between runs and speculative launches
	// schedule engine events, so launch in task order to keep the whole
	// simulation a deterministic function of its inputs.
	sort.Slice(cands, func(i, j int) bool { return cands[i].taskIdx < cands[j].taskIdx })
	for _, a := range cands {
		a.task.speculated = true
		// Relaunch on the next node over; the copy is a fresh attempt
		// (stragglers are machine-local, so the copy runs clean).
		other := r.ns[(nodeIndex(r.ns, a.nd)+1)%len(r.ns)]
		if r.faultsOn() {
			other = r.pickHealthy(a.nd.id+1, a.nd)
			if other == nil {
				// Nowhere to speculate; the original attempt may still
				// finish on its own.
				continue
			}
		}
		task, gi, g, idx := a.task, a.gi, a.g, a.taskIdx
		other.cores.Acquire(func() { r.startAttempt(st, task, other, gi, g, idx+1_000_003, true) })
	}
}

func nodeIndex(ns []*node, nd *node) int {
	for i, n := range ns {
		if n == nd {
			return i
		}
	}
	return 0
}

// startAttempt runs one attempt of a task on its node: launch overhead,
// the op sequence, then GC, then releases the core and decrements the
// stage barrier. The first attempt to finish wins; later ones notice at
// the next op boundary and stand down (Spark kills the slower copy).
func (r *runner) startAttempt(st *stageState, task *taskState, nd *node, gi int, g TaskGroup, taskIdx int, speculative bool) {
	if r.faultsOn() {
		if task.done || r.err != nil {
			// The task finished (or the app failed) while this dispatch
			// waited in the core queue.
			nd.cores.Release()
			return
		}
		if nd.crashed || nd.blacklisted {
			// The node went away while the dispatch queued; bounce the
			// task to a healthy executor.
			nd.cores.Release()
			target := r.pickHealthy(nd.id+1, nil)
			if target == nil {
				r.failApp(r.noHealthyNodes())
				return
			}
			target.cores.Acquire(func() { r.startAttempt(st, task, target, gi, g, taskIdx, speculative) })
			return
		}
	}
	taskStart := r.eng.Now()
	task.attempts++
	task.inflight++
	a := &attempt{task: task, nd: nd, gi: gi, g: g, taskIdx: taskIdx, start: taskStart, failAt: -1, fetchFailAt: -1}
	st.running[a] = struct{}{}
	if r.memOn() {
		r.reserveMem(st, a)
	}
	if f := r.cfg.Faults; f.Enabled() {
		// Decide this attempt's fate up front, deterministically from
		// (seed, stage, task, attempt). The failure point is uniform over
		// the op boundaries, including the final one.
		if p := f.TaskFailureProb; p > 0 && r.faultHash01(st.idx, taskIdx, task.attempts, saltFailProb) < p {
			a.failAt = int(r.faultHash01(st.idx, taskIdx, task.attempts, saltFailAt) * float64(len(g.Ops)+1))
		}
		if q := f.ShuffleFetchFailureProb; q > 0 {
			for i, op := range g.Ops {
				if op.Kind != OpShuffleRead {
					continue
				}
				if r.faultHash01(st.idx, taskIdx, task.attempts, saltFetch+uint64(i)<<8) < q {
					a.fetchFailAt = i
					break
				}
			}
		}
	}
	jitter := r.jitterFactor(st.idx, taskIdx)
	// Speculative copies run clean: stragglers are machine-local and the
	// scheduler relaunches on a healthy node.
	if f := r.cfg.StragglerFraction; !speculative && f > 0 && r.hash01(st.idx, taskIdx, 0x5743) < f {
		slow := r.cfg.StragglerSlowdown
		if slow < 1 {
			slow = 3
		}
		jitter *= slow
	}

	// JVM garbage collection pauses are spread through the task's
	// execution, so GC time is distributed over the I/O ops as coupled
	// compute (proportional to bytes); the device keeps serving other
	// tasks during the pauses. Groups without I/O fall back to a
	// trailing CPU block.
	var gcTime time.Duration
	var gcIOBytes units.ByteSize
	if g.GC != nil {
		gcTime = g.GC(r.cfg.ExecutorCores)
		if gcTime < 0 {
			gcTime = 0
		}
		for _, op := range g.Ops {
			if op.Kind.IsIO() {
				gcIOBytes += op.Bytes
			}
		}
	}
	var runOp func(i int)
	finish := func() {
		delete(st.running, a)
		task.inflight--
		nd.cores.Release()
		if task.done {
			return // a speculative sibling won
		}
		task.done = true
		dur := r.eng.Now() - taskStart
		gr := &st.groups[gi]
		gr.TotalTaskTime += dur
		insertSorted(&st.durations, dur)
		st.remaining--
		if st.remaining == 0 {
			r.completeStage(st)
			return
		}
		r.maybeSpeculate(st)
	}
	// endTask is what the op walk calls at the task boundary. With the
	// memory layer off it IS finish, so the zero-heap event sequence is
	// unchanged; with it on, the spill re-read and the occupancy-driven
	// GC pause run first (see memEpilogue).
	endTask := finish
	if r.memOn() {
		endTask = func() { r.memEpilogue(st, a, finish) }
	}
	runOp = func(i int) {
		if r.memOn() && r.memGate(nd, func() { runOp(i) }) {
			// A GC pause on this node stalls the core until it ends; the
			// op re-dispatches at the pause boundary.
			return
		}
		if task.done {
			// A speculative sibling won: stand down at the op boundary
			// (Spark kills the slower attempt).
			r.releaseMem(a)
			delete(st.running, a)
			task.inflight--
			nd.cores.Release()
			return
		}
		if r.faultsOn() {
			if r.err != nil {
				// The application already failed; drain quietly.
				r.releaseMem(a)
				delete(st.running, a)
				task.inflight--
				nd.cores.Release()
				return
			}
			if a.lost {
				r.failAttempt(st, a, FailNodeLost)
				return
			}
			if i == a.fetchFailAt {
				r.fetchFail(st, a)
				return
			}
			if i == a.failAt {
				r.failAttempt(st, a, FailInjected)
				return
			}
		}
		if i >= len(g.Ops) {
			// GC fallback for compute-only groups: a trailing pause.
			if gcTime > 0 && gcIOBytes == 0 {
				opStart := r.eng.Now()
				r.eng.After(gcTime, func() {
					s := &st.groups[gi].OpTimes[len(g.Ops)]
					s.Kind = OpCompute
					s.Time += r.eng.Now() - opStart
					s.Count++
					endTask()
				})
				return
			}
			endTask()
			return
		}
		op := g.Ops[i]
		if op.Kind == OpCompute {
			op.Duration = time.Duration(float64(op.Duration) * jitter)
		} else {
			if gcTime > 0 && gcIOBytes > 0 && op.Bytes > 0 {
				share := float64(op.Bytes) / float64(gcIOBytes)
				op.CoupledCompute += time.Duration(share * float64(gcTime))
			}
			if op.CoupledCompute > 0 {
				op.CoupledCompute = time.Duration(float64(op.CoupledCompute) * jitter)
			}
		}
		opStart := r.eng.Now()
		done := func() {
			elapsed := r.eng.Now() - opStart
			s := &st.groups[gi].OpTimes[i]
			s.Kind = op.Kind
			s.Time += elapsed
			s.Bytes += op.Bytes
			s.Coupled += op.CoupledCompute
			s.Count++
			r.accountIO(st, op, elapsed)
			runOp(i + 1)
		}
		r.execOp(st, nd, op, done)
	}
	// Task launch overhead occupies the core before the first op.
	launch := func() { runOp(0) }
	if a.spill > 0 {
		// The heap overflow is written to the Local device before the op
		// walk begins (Spark spills while building the working set; the
		// simulator charges it up front at spill request sizes).
		launch = func() { r.execSpill(st, a, OpSpillWrite, func() { runOp(0) }) }
	}
	r.eng.After(units.SecDuration(r.cfg.TaskLaunchOverhead.Seconds()), launch)
}

// jitterFactor returns the deterministic per-task compute-time multiplier
// in [1-j, 1+j], derived from a splitmix64 hash of (seed, stage, task).
func (r *runner) jitterFactor(stageIdx, taskIdx int) float64 {
	j := r.cfg.ComputeJitter
	if j <= 0 {
		return 1
	}
	u := r.hash01(stageIdx, taskIdx, 0)
	return 1 - j + 2*j*u
}

// hash01 maps (seed, stage, task, salt) to a uniform [0,1) value via
// splitmix64.
func (r *runner) hash01(stageIdx, taskIdx int, salt uint64) float64 {
	x := r.cfg.Seed ^ (uint64(stageIdx)<<32 + uint64(taskIdx)) ^ (salt << 48)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// faultsOn reports whether the fault layer is active. Every fault-path
// behavior is gated on it so a zero-valued FaultConfig run is
// event-for-event identical to a run without the fault layer.
func (r *runner) faultsOn() bool { return r.cfg.Faults.Enabled() }

// memOn reports whether the memory layer is active. Like faultsOn,
// every memory-path behavior is gated on it so a zero-valued
// MemoryConfig run is event-for-event identical to a run without the
// memory layer (golden-pinned in internal/workloads).
func (r *runner) memOn() bool { return r.cfg.Memory.Enabled() }

// reserveMem charges an attempt's working set against its node's heap
// and decides, deterministically, how much of it spills: the overflow
// above the heap, clamped to the task's own set. Counterpart of
// releaseMem, which every attempt exit path calls.
func (r *runner) reserveMem(st *stageState, a *attempt) {
	ws := r.cfg.Memory.TaskWorkingSet(a.g)
	if ws <= 0 {
		return
	}
	a.spill = spillFor(a.nd.resident, ws, r.cfg.Memory.HeapBytes())
	a.nd.resident += ws
	a.memBytes = ws
	if a.nd.resident > r.res.Mem.PeakResident {
		r.res.Mem.PeakResident = a.nd.resident
	}
	if st.res.Mem.PeakResident < a.nd.resident {
		st.res.Mem.PeakResident = a.nd.resident
	}
	if a.spill > 0 {
		st.res.Mem.SpilledTasks++
		r.res.Mem.SpilledTasks++
		st.res.Mem.SpillBytes += a.spill
		r.res.Mem.SpillBytes += a.spill
	}
}

// releaseMem returns an attempt's working-set reservation to its node.
// Safe to call on every exit path: it is a no-op once released or when
// nothing was reserved.
func (r *runner) releaseMem(a *attempt) {
	if a.memBytes > 0 {
		a.nd.resident -= a.memBytes
		a.memBytes = 0
	}
}

// memGate defers f to the end of the node's in-progress GC pause, if
// one is stalling its cores. Reports whether f was deferred.
func (r *runner) memGate(nd *node, f func()) bool {
	if until := nd.gcUntil; r.eng.Now() < until {
		r.eng.At(until, f)
		return true
	}
	return false
}

// execSpill runs one spill write or re-read for an attempt's overflow
// through the regular device path, so the Local curve's request-size
// behavior (and iostat accounting) applies to spill traffic too.
func (r *runner) execSpill(st *stageState, a *attempt, kind OpKind, done func()) {
	op := Op{Kind: kind, Bytes: a.spill, ReqSize: r.cfg.Memory.SpillRequestSize()}
	opStart := r.eng.Now()
	r.execOp(st, a.nd, op, func() {
		r.accountIO(st, op, r.eng.Now()-opStart)
		done()
	})
}

// memEpilogue runs between an attempt's last op and finish: the spill
// re-read (the overflow must come back from the Local device to emit
// the task's output), then the occupancy-driven GC pause. The pause
// holds this core directly and stalls the node's other cores through
// gcUntil + memGate. Occupancy is sampled before the release — the
// collection happens under the completing wave's full pressure.
func (r *runner) memEpilogue(st *stageState, a *attempt, done func()) {
	fin := func() {
		pause := r.gcPause(st, a)
		r.releaseMem(a)
		if pause <= 0 {
			done()
			return
		}
		until := r.eng.Now() + pause
		if until > a.nd.gcUntil {
			a.nd.gcUntil = until
		}
		st.res.Mem.GCPauses++
		r.res.Mem.GCPauses++
		st.res.Mem.GCStall += pause
		r.res.Mem.GCStall += pause
		r.eng.After(pause, done)
	}
	if a.spill > 0 && !a.task.done {
		r.execSpill(st, a, OpSpillRead, fin)
		return
	}
	fin()
}

// gcPause returns the stop-the-world pause a completing attempt
// triggers at its node's current heap occupancy: zero below the
// threshold, a quadratic ramp above it, spread ±15% by a seeded
// deterministic draw (same splitmix64 family as jitter and faults).
func (r *runner) gcPause(st *stageState, a *attempt) time.Duration {
	heap := r.cfg.Memory.HeapBytes()
	if heap <= 0 || a.memBytes == 0 {
		return 0
	}
	occ := float64(a.nd.resident) / float64(heap)
	q := r.cfg.Memory.gcFraction(occ)
	if q <= 0 {
		return 0
	}
	u := r.hash01(st.idx, a.taskIdx, saltGC)
	spread := 1 - memGCSpread + 2*memGCSpread*u
	return units.SecDuration(q * spread * r.cfg.Memory.GCPauseMax().Seconds())
}

// Salts separating the independent fault decisions drawn per attempt.
const (
	saltFailProb uint64 = 0xFA11
	saltFailAt   uint64 = 0xFA12
	saltFetch    uint64 = 0xFA13
)

// faultHash01 maps (seeds, stage, task, attempt, salt) to a uniform
// [0,1) value. Unlike hash01 it mixes in the attempt number, so a
// retried attempt draws fresh fates, and FaultConfig.Seed, so the
// failure pattern can vary independently of the jitter pattern.
func (r *runner) faultHash01(stageIdx, taskIdx, attempt int, salt uint64) float64 {
	x := r.cfg.Seed ^ (r.cfg.Faults.Seed * 0x9e3779b97f4a7c15)
	x ^= uint64(stageIdx)<<40 ^ uint64(taskIdx)<<16 ^ uint64(attempt)<<56 ^ salt
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// pickHealthy returns the first non-crashed, non-blacklisted node at or
// after index start (wrapping), preferring any node other than avoid;
// avoid itself is returned only when it is the sole healthy node. Nil
// means no healthy node exists.
func (r *runner) pickHealthy(start int, avoid *node) *node {
	n := len(r.ns)
	var fallback *node
	for k := 0; k < n; k++ {
		nd := r.ns[(start+k)%n]
		if nd.crashed || nd.blacklisted {
			continue
		}
		if nd == avoid {
			if fallback == nil {
				fallback = nd
			}
			continue
		}
		return nd
	}
	return fallback
}

// noHealthyNodes builds the fatal everything-is-gone error.
func (r *runner) noHealthyNodes() error {
	var lost, black int
	for _, n := range r.ns {
		if n.crashed {
			lost++
		} else if n.blacklisted {
			black++
		}
	}
	return &NoHealthyNodesError{App: r.app.Name, Lost: lost, Blacklisted: black}
}

// failApp records the first fatal error; the engine then drains its
// in-flight events while every launch path stands down.
func (r *runner) failApp(err error) {
	if r.err == nil {
		r.err = err
	}
}

// crashNode executes a scheduled node loss: in-flight attempts on the
// node die at their next op boundary; queued dispatches bounce to
// healthy nodes when they reach startAttempt.
func (r *runner) crashNode(nd *node) {
	if nd.crashed || r.done == len(r.states) || r.err != nil {
		return
	}
	nd.crashed = true
	r.res.Faults.NodesLost++
	for _, st := range r.states {
		if !st.launched || st.completed || st.running == nil {
			continue
		}
		for a := range st.running {
			if a.nd == nd {
				a.lost = true
			}
		}
	}
}

// noteNodeFailure counts an injected failure against the node's
// blacklist budget (spark.blacklist.maxFailedTasksPerExecutor). The
// last healthy node is never blacklisted: with uniformly injected
// failures every node eventually trips the threshold, and a scheduler
// with zero executors can only abort.
func (r *runner) noteNodeFailure(nd *node) {
	nd.taskFailures++
	t := r.cfg.Faults.BlacklistThreshold
	if t <= 0 || nd.blacklisted || nd.taskFailures < t {
		return
	}
	healthy := 0
	for _, n := range r.ns {
		if !n.crashed && !n.blacklisted {
			healthy++
		}
	}
	if healthy <= 1 {
		return
	}
	nd.blacklisted = true
	r.res.Faults.NodesBlacklisted++
}

// failAttempt kills one attempt: the core frees, the failure counts
// against the task's budget, and — unless a sibling attempt is still
// running — the task retries after exponential backoff.
func (r *runner) failAttempt(st *stageState, a *attempt, kind FailureKind) {
	r.releaseMem(a)
	delete(st.running, a)
	a.task.inflight--
	a.nd.cores.Release()
	task := a.task
	if task.done || r.err != nil {
		return
	}
	task.failures++
	st.res.Faults.TaskFailures++
	r.res.Faults.TaskFailures++
	if kind == FailNodeLost {
		st.res.Faults.LostAttempts++
		r.res.Faults.LostAttempts++
	} else {
		r.noteNodeFailure(a.nd)
	}
	f := r.cfg.Faults
	if task.failures >= f.maxTaskFailures() {
		r.failApp(&TaskFailedError{App: r.app.Name, Stage: st.stage.Name, Task: a.taskIdx, Failures: task.failures, Kind: kind})
		return
	}
	if task.inflight > 0 {
		return // a speculative sibling may still win
	}
	r.retryTask(st, a, f.backoff(task.failures))
}

// retryTask relaunches a task on a healthy node after the backoff.
func (r *runner) retryTask(st *stageState, a *attempt, delay time.Duration) {
	task := a.task
	st.res.Faults.Retries++
	r.res.Faults.Retries++
	r.eng.After(delay, func() {
		if task.done || r.err != nil {
			return
		}
		target := r.pickHealthy(a.nd.id+1, a.nd)
		if target == nil {
			r.failApp(r.noHealthyNodes())
			return
		}
		target.cores.Acquire(func() { r.startAttempt(st, task, target, a.gi, a.g, a.taskIdx, false) })
	})
}

// fetchFail handles a shuffle-fetch failure: the reducer attempt dies,
// and on stages with a parent one lost map output is recomputed before
// the retry — re-running the parent op sequence (HDFS re-read at block
// sizes, shuffle re-write) on a healthy node. This is the recovery cost
// the request-size-aware bandwidth curves make device-dependent.
func (r *runner) fetchFail(st *stageState, a *attempt) {
	r.releaseMem(a)
	delete(st.running, a)
	a.task.inflight--
	a.nd.cores.Release()
	task := a.task
	if task.done || r.err != nil {
		return
	}
	task.fetchFailures++
	st.res.Faults.TaskFailures++
	st.res.Faults.FetchFailures++
	r.res.Faults.TaskFailures++
	r.res.Faults.FetchFailures++
	f := r.cfg.Faults
	if task.fetchFailures >= f.maxTaskFailures() {
		r.failApp(&TaskFailedError{App: r.app.Name, Stage: st.stage.Name, Task: a.taskIdx, Failures: task.fetchFailures, Kind: FailFetch})
		return
	}
	if task.inflight > 0 {
		return
	}
	if len(st.deps) == 0 {
		// No parent stage to recompute; degrade to a plain retry.
		r.retryTask(st, a, f.backoff(task.fetchFailures))
		return
	}
	parent := r.states[st.deps[0]]
	r.recomputeParent(st, parent, a, func() { r.retryTask(st, a, f.backoff(task.fetchFailures)) })
}

// recomputeParent re-runs one parent map task's op sequence on a
// healthy node, holding a core for the duration. The recompute I/O is
// charged to the consumer stage st, where the recovery cost shows up in
// the degraded measurements.
func (r *runner) recomputeParent(st *stageState, parent *stageState, a *attempt, then func()) {
	st.res.Faults.Recomputes++
	r.res.Faults.Recomputes++
	target := r.pickHealthy(a.nd.id, nil)
	if target == nil {
		r.failApp(r.noHealthyNodes())
		return
	}
	g := parent.stage.Groups[0]
	target.cores.Acquire(func() {
		var run func(i int)
		run = func(i int) {
			if r.err != nil || i >= len(g.Ops) {
				target.cores.Release()
				if r.err == nil {
					then()
				}
				return
			}
			op := g.Ops[i]
			opStart := r.eng.Now()
			r.execOp(st, target, op, func() {
				r.accountIO(st, op, r.eng.Now()-opStart)
				run(i + 1)
			})
		}
		r.eng.After(units.SecDuration(r.cfg.TaskLaunchOverhead.Seconds()), func() { run(0) })
	})
}

// insertSorted keeps the completed-duration slice ordered for median
// lookup.
func insertSorted(ds *[]time.Duration, d time.Duration) {
	s := *ds
	i := len(s)
	s = append(s, d)
	for i > 0 && s[i-1] > d {
		s[i] = s[i-1]
		i--
	}
	s[i] = d
	*ds = s
}

// accountIO updates the stage-level iostat-style aggregation.
func (r *runner) accountIO(st *stageState, op Op, elapsed time.Duration) {
	if !op.Kind.IsIO() || op.Bytes <= 0 {
		return
	}
	s := st.res.IO[op.Kind]
	s.Time += elapsed
	bytes := op.Bytes
	if op.Kind == OpHDFSWrite {
		bytes *= units.ByteSize(r.cfg.HDFSReplication)
	}
	s.Bytes += bytes
	s.Ops++
	rs := op.DefaultReqSize(r.cfg.HDFSBlockSize)
	if rs > 0 {
		v := float64(bytes) / float64(rs)
		s.Requests += v
		if st.reqTrace != nil {
			st.reqTrace[op.Kind] = append(st.reqTrace[op.Kind], reqIncr{at: r.eng.Now(), v: v})
		}
	}
	st.res.IO[op.Kind] = s
}

// execOp performs one op and calls done when it completes.
func (r *runner) execOp(st *stageState, nd *node, op Op, done func()) {
	switch op.Kind {
	case OpCompute:
		d := op.Duration
		if d < 0 {
			d = 0
		}
		r.eng.After(d, func() { done() })
		return
	default:
	}

	if op.Bytes <= 0 {
		r.eng.After(0, done)
		return
	}

	reqSize := op.DefaultReqSize(r.cfg.HDFSBlockSize)
	var res *sim.FlowResource
	var full units.Rate
	diskBytes := op.Bytes
	var netBytes units.ByteSize

	dev := r.cfg.HDFSDisk
	if op.Kind.OnLocal() {
		dev = r.cfg.LocalDisk
	}
	if op.Kind.IsRead() {
		full = dev.ReadBandwidth(reqSize)
	} else {
		full = dev.WriteBandwidth(reqSize)
	}
	if op.Kind.OnLocal() {
		res = nd.local
	} else {
		res = nd.hdfs
	}

	switch op.Kind {
	case OpHDFSWrite:
		// dfs.replication copies: one local, the rest remote. The disk
		// load is symmetric across nodes, so we charge the full
		// replicated volume to this node's HDFS disk and the remote
		// copies to the NIC.
		diskBytes = op.Bytes * units.ByteSize(r.cfg.HDFSReplication)
		netBytes = op.Bytes * units.ByteSize(r.cfg.HDFSReplication-1)
	case OpShuffleRead:
		// A reducer pulls (N-1)/N of its input from remote mapper disks.
		// Disk load is symmetric; network carries the remote fraction.
		netBytes = units.ByteSize(float64(op.Bytes) * r.cfg.remoteFrac)
	}

	pending := 1
	if r.cfg.ModelNetwork && netBytes > 0 {
		pending = 2
	}
	complete := func() {
		pending--
		if pending == 0 {
			done()
		}
	}

	var computeRate units.Rate
	if op.CoupledCompute > 0 {
		computeRate = units.Over(diskBytes, op.CoupledCompute)
	}
	res.Start(&sim.Flow{
		Name:        op.Kind.String(),
		Bytes:       diskBytes,
		FullRate:    full,
		Cap:         op.StreamLimit,
		ComputeRate: computeRate,
		OnComplete:  complete,
	})
	if r.cfg.ModelNetwork && netBytes > 0 {
		st.res.NetBytes += netBytes
		nd.nic.Start(&sim.Flow{
			Name:       op.Kind.String() + "/net",
			Bytes:      netBytes,
			FullRate:   r.cfg.NICRate,
			Cap:        op.StreamLimit,
			OnComplete: complete,
		})
	}
}
