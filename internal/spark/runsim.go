package spark

import (
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/units"
)

// Run simulates the application on the cluster and returns the measured
// result. It is deterministic: same inputs, same output.
//
// Stages without explicit dependencies run as a linear chain (each
// stage barriers on the previous one). When any stage declares
// DependsOn, the DAG scheduler runs every stage whose dependencies have
// completed, concurrently — Spark's actual stage semantics.
//
// Three execution modes share one event loop, chosen automatically:
//
//   - full coalescing: a provably node-symmetric run (see coalescable)
//     simulates one representative node and folds it back Slaves times;
//   - partial coalescing: a degraded run (faults, speculation,
//     stragglers) pre-draws every per-task event from the seeded hashes,
//     simulates the few "dirty" nodes that host one individually, and
//     folds one representative over the untouched clean cohort (see
//     planPartial and docs/PERF.md);
//   - per-task: everything else, and the oracle the other two modes are
//     pinned byte-identical against (ClusterConfig.DisableCoalescing
//     forces it for A/B comparison).
func Run(cfg ClusterConfig, app App) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := app.Validate(); err != nil {
		return nil, err
	}
	r := newRunner(cfg, app, false)
	res, err, bailed := r.runSafe()
	if !bailed {
		return res, err
	}
	// The partial-coalescing plan was violated at runtime (a degradation
	// event reached the clean cohort); rerun per-task, which is always
	// exact.
	r = newRunner(cfg, app, true)
	return r.run()
}

// bailToPerTask is the panic sentinel the partial-coalescing path
// throws when a runtime event would break cohort symmetry (a retry or
// speculative copy landing on a clean node, a blacklisting, a
// representative task drawing an event the plan missed). Run recovers
// it and replays the whole simulation per-task, so partial coalescing
// is an optimisation that can never change a Result.
type bailToPerTask struct{}

// bail abandons the partial-coalesced simulation.
func (r *runner) bail() { panic(bailToPerTask{}) }

// runSafe runs the simulation, converting a bail sentinel into the
// bailed flag. Only the partial path installs the recover — the
// per-task and fully-coalesced paths never bail, and real panics must
// keep propagating.
func (r *runner) runSafe() (res *Result, err error, bailed bool) {
	if r.partial {
		defer func() {
			if v := recover(); v != nil {
				if _, ok := v.(bailToPerTask); ok {
					res, err, bailed = nil, nil, true
					return
				}
				panic(v)
			}
		}()
	}
	res, err = r.run()
	return res, err, false
}

// node is one simulated slave.
type node struct {
	id    int // real cluster index, also the fault-hash / pickHealthy identity
	si    int // index into runner.ns (per-node accounting rows)
	cores *sim.CorePool
	hdfs  *sim.FlowResource
	local *sim.FlowResource
	nic   *sim.FlowResource
	// fault state: a crashed node is gone for the rest of the run; a
	// blacklisted one finishes its in-flight work but receives no new
	// dispatches. taskFailures counts injected failures for the
	// blacklist threshold.
	crashed      bool
	blacklisted  bool
	taskFailures int
	// memory state (only touched when the memory layer is on): the
	// resident working set of in-flight attempts, and the instant
	// until which a stop-the-world GC pause stalls every core on the
	// node.
	resident units.ByteSize
	gcUntil  time.Duration
}

// numOpKinds sizes the fixed per-stage accounting arrays.
const numOpKinds = len(opKindNames)

// netFlowNames precomputes the "<kind>/net" flow labels so the NIC
// fast path never builds a string per op.
var netFlowNames = func() (a [numOpKinds]string) {
	for i := range a {
		a[i] = OpKind(i).String() + "/net"
	}
	return a
}()

// ioAgg is one op kind's integer stage accounting. The representative
// node's contributions are folded in at multiplicity inline (integer
// arithmetic is exact under multiplication); the float Requests
// accumulator lives in stageState.reqSub instead, per node, so it can
// be folded in real-node order at stage completion.
type ioAgg struct {
	bytes units.ByteSize
	ops   int
	time  time.Duration
}

// stageState tracks one stage through its execution.
type stageState struct {
	idx       int
	stage     Stage
	deps      []int
	launched  bool
	completed bool
	res       *StageResult
	groups    []GroupResult
	remaining int // logical tasks left, counted at full-cluster multiplicity
	// device utilisation snapshots at the stage's barrier; with
	// concurrent DAG stages the per-stage attribution is approximate
	// (shared device time counts toward every overlapping stage).
	hdfsBusy0, localBusy0 time.Duration
	// io is the integer I/O accounting; the IOStat map is materialised
	// from it when the stage completes.
	io [numOpKinds]ioAgg
	// reqSub accumulates the float IOStat.Requests increments per
	// simulated node (row = node.si), folded in real-node-id order at
	// completion so the per-task and coalesced paths perform the same
	// float additions in the same order.
	reqSub [][numOpKinds]float64
	// med tracks the running median of completed task durations for the
	// speculation threshold (nil when speculation is off).
	med *medianTracker
	// running is an intrusive doubly-linked list of in-flight attempts.
	running *attempt
	// needsFinal marks the stage for the end-of-instant finalizer (see
	// runner.finalize).
	needsFinal bool
	// tasks is the logical-task slab: one entry per dispatched task,
	// allocated in a single slice per stage.
	tasks []taskState
}

// addRunning links an attempt into the stage's running list.
func (st *stageState) addRunning(a *attempt) {
	a.prev = nil
	a.next = st.running
	if st.running != nil {
		st.running.prev = a
	}
	st.running = a
	a.inList = true
}

// removeRunning unlinks an attempt; safe to call once per attempt.
func (st *stageState) removeRunning(a *attempt) {
	if !a.inList {
		return
	}
	a.inList = false
	if a.prev != nil {
		a.prev.next = a.next
	} else if st.running == a {
		st.running = a.next
	}
	if a.next != nil {
		a.next.prev = a.prev
	}
	a.prev, a.next = nil, nil
}

// taskState is one logical task, possibly executed by several attempts.
type taskState struct {
	done       bool
	attempts   int
	speculated bool
	// fault bookkeeping: counted failures against the attempt budget,
	// fetch failures (Spark tracks these separately from task failures),
	// and the number of attempts currently in flight.
	failures      int
	fetchFailures int
	inflight      int
}

// attempt is one execution of a task on one node. Attempts are pooled
// on the runner and recycled at every terminal transition, with their
// callback closures bound once at allocation, so the steady-state task
// walk performs no per-op or per-task allocation.
type attempt struct {
	r       *runner
	st      *stageState
	task    *taskState
	nd      *node
	gi      int
	g       TaskGroup
	taskIdx int
	// mult is the attempt's full-cluster multiplicity: 1 normally,
	// the cohort size when this attempt runs on the representative
	// node of a coalesced run.
	mult  int
	start time.Duration
	// failAt / fetchFailAt are the op indices at which this attempt is
	// fated to fail (-1: never). lost marks the attempt killed by its
	// node's crash; it dies at the next op boundary.
	failAt      int
	fetchFailAt int
	lost        bool
	speculative bool
	// memory layer: the working set reserved on the node for this
	// attempt (released on every exit path) and the portion that
	// overflowed the heap (written to the Local device up front and
	// re-read before the task completes).
	memBytes units.ByteSize
	spill    units.ByteSize
	// op-walk state.
	i         int // current op index
	jitter    float64
	gcTime    time.Duration
	gcIOBytes units.ByteSize
	curOp     Op // the adjusted copy of g.Ops[i] in flight
	opStart   time.Duration
	pending   int // in-flight flows of the current op
	// flow and netFlow are reused across ops: reassigning the struct
	// resets the resource-internal fields, so the hot path starts flows
	// without allocating.
	flow    sim.Flow
	netFlow sim.Flow
	// intrusive links: running list and the runner's free list.
	prev, next *attempt
	inList     bool
	freeNext   *attempt
	// prebound callbacks, created once per pooled attempt.
	launchF   func()
	stepF     func()
	flowDoneF func()
	gcDoneF   func()
	finishF   func()
}

type runner struct {
	cfg        cfgDerived
	app        App
	eng        *sim.Engine
	ns         []*node // simulated nodes
	byReal     []*node // real node id -> simulated node (clean ids map to rep)
	rep        *node   // cohort representative (nil on the pure per-task path)
	repReal    int     // the real id the representative impersonates
	repMult    int     // real nodes the representative stands for
	partial    bool    // partial (degraded-mode) coalescing active
	dirtyReal  []bool  // partial mode: real ids simulated individually
	res        *Result
	states     []*stageState
	done       int
	finishedAt time.Duration
	// err is the first fatal failure (attempt budget exhausted, no
	// healthy nodes left). Once set, no new work launches and the
	// engine drains its in-flight events.
	err error
	// end-of-instant finalizer state (see finalize).
	finalSet bool
	finalF   func()
	// pools and scratch.
	freeA *attempt
	cands []*attempt
}

// busySums totals the device utilisation seconds across the cluster
// (iostat's %util integral, not mere occupancy), folding the
// representative's value once per real node it stands for — the
// replicated nodes would accumulate bit-identical UtilSeconds, and
// Duration addition is integer arithmetic, so the fold reproduces the
// per-task sum exactly.
func (r *runner) busySums() (hdfs, local time.Duration) {
	for id := 0; id < r.cfg.Slaves; id++ {
		n := r.byReal[id]
		hdfs += units.SecDuration(n.hdfs.Stats().UtilSeconds)
		local += units.SecDuration(n.local.Stats().UtilSeconds)
	}
	return hdfs, local
}

// cfgDerived bundles the config with precomputed values.
type cfgDerived struct {
	ClusterConfig
	remoteFrac float64 // fraction of shuffle-read bytes crossing the NIC
}

func newRunner(cfg ClusterConfig, app App, forcePerTask bool) *runner {
	d := cfgDerived{ClusterConfig: cfg}
	if cfg.Slaves > 1 {
		// remoteFrac always reflects the full cluster size, even when
		// coalescing simulates a representative node.
		d.remoteFrac = float64(cfg.Slaves-1) / float64(cfg.Slaves)
	}
	r := &runner{cfg: d, app: app, repReal: -1, repMult: 1}
	if !forcePerTask {
		if coalescable(cfg, app) {
			r.repReal, r.repMult = 0, cfg.Slaves
		} else if dirty, dirtyCount, repReal, ok := planPartial(cfg, app); ok {
			r.partial = true
			r.dirtyReal = dirty
			r.repReal = repReal
			r.repMult = cfg.Slaves - dirtyCount
		}
	}
	simNodes := cfg.Slaves
	if r.repReal >= 0 {
		simNodes = cfg.Slaves - r.repMult + 1
	}
	eng := sim.NewEngineSized(simNodes*(cfg.ExecutorCores+4) + 16)
	r.eng = eng
	newNode := func(id int) *node {
		n := &node{
			id:    id,
			si:    len(r.ns),
			cores: sim.NewCorePool(eng, cfg.ExecutorCores),
			hdfs:  sim.NewFlowResource(eng, fmt.Sprintf("node%d/hdfs", id)),
			local: sim.NewFlowResource(eng, fmt.Sprintf("node%d/local", id)),
		}
		if cfg.ModelNetwork {
			n.nic = sim.NewFlowResource(eng, fmt.Sprintf("node%d/nic", id))
		}
		r.ns = append(r.ns, n)
		return n
	}
	r.byReal = make([]*node, cfg.Slaves)
	switch {
	case r.repReal < 0: // per-task: every real node simulated
		for i := 0; i < cfg.Slaves; i++ {
			r.byReal[i] = newNode(i)
		}
	default: // coalesced: one representative plus any dirty nodes
		r.rep = newNode(r.repReal)
		for i := 0; i < cfg.Slaves; i++ {
			if r.partial && r.dirtyReal[i] {
				r.byReal[i] = newNode(i)
			} else {
				r.byReal[i] = r.rep
			}
		}
	}
	r.finalF = r.finalize
	r.res = &Result{App: app.Name, Slaves: cfg.Slaves, Cores: cfg.ExecutorCores}
	r.states = buildStates(app)
	return r
}

// buildStates resolves each stage's dependency indices: the declared
// DAG when any stage names dependencies, otherwise the implicit linear
// chain.
func buildStates(app App) []*stageState {
	useDAG := false
	for _, s := range app.Stages {
		if len(s.DependsOn) > 0 {
			useDAG = true
			break
		}
	}
	byName := map[string]int{}
	for i, s := range app.Stages {
		byName[s.Name] = i
	}
	states := make([]*stageState, len(app.Stages))
	for i, s := range app.Stages {
		st := &stageState{idx: i, stage: s}
		if useDAG {
			for _, dep := range s.DependsOn {
				st.deps = append(st.deps, byName[dep])
			}
		} else if i > 0 {
			st.deps = []int{i - 1}
		}
		states[i] = st
	}
	return states
}

// coalescable reports whether the run qualifies for full wave
// coalescing: simulating one representative node in place of
// cfg.Slaves identical ones and folding its timings and metrics back.
// That is exact only when every node provably executes the same event
// sequence, which requires
//
//   - no fault injection, speculation, stragglers or compute jitter
//     (each makes tasks or nodes heterogeneous), and
//   - every task group's count divisible by the node count, so the
//     round-robin assignment gives all nodes identical task schedules.
//
// Degraded runs that miss only the first condition may still qualify
// for partial coalescing (see planPartial); anything else falls back
// to the per-task path automatically. All paths produce byte-identical
// Results — the registry-wide golden tests in internal/workloads and
// internal/spark enforce it.
func coalescable(cfg ClusterConfig, app App) bool {
	if cfg.DisableCoalescing || cfg.Slaves <= 1 {
		return false
	}
	if cfg.Faults.Enabled() || cfg.Speculation || cfg.StragglerFraction > 0 || cfg.ComputeJitter > 0 {
		return false
	}
	// Heap occupancy couples every task on a node to its co-resident
	// wave: simulating one representative node would need the exact
	// cross-node placement to reproduce spill decisions, so
	// memory-enabled runs always take the per-task path.
	if cfg.Memory.Enabled() {
		return false
	}
	for _, s := range app.Stages {
		for _, g := range s.Groups {
			if g.Count%cfg.Slaves != 0 {
				return false
			}
		}
	}
	return true
}

func (r *runner) run() (*Result, error) {
	if f := r.cfg.Faults; f.Enabled() {
		for _, c := range f.NodeCrashes {
			nd := r.byReal[c.Node]
			r.eng.At(units.SecDuration(c.At.Seconds()), func() { r.crashNode(nd) })
		}
	}
	r.launchReady()
	r.eng.Run()
	if r.err != nil {
		return nil, r.err
	}
	if r.done < len(r.states) {
		for _, st := range r.states {
			if st.launched && !st.completed {
				return nil, fmt.Errorf("spark: simulation of %q stalled in stage %s: %d tasks unfinished",
					r.app.Name, st.stage.Name, st.remaining)
			}
		}
		return nil, fmt.Errorf("spark: simulation of %q deadlocked: %d of %d stages never became ready",
			r.app.Name, len(r.states)-r.done, len(r.states))
	}
	// The application ends when its last stage completes; the engine may
	// drain a little further (cancelled speculative attempts finishing
	// their in-flight op before standing down).
	r.res.Total = r.finishedAt
	// Fold core-seconds in real-node order: each real node the
	// representative stands for would report a bit-identical float, so
	// adding the representative's value once per real id reproduces the
	// per-task accumulation sequence exactly.
	for id := 0; id < r.cfg.Slaves; id++ {
		r.res.CoreSeconds += r.byReal[id].cores.BusyCoreSeconds()
	}
	return r.res, nil
}

// launchReady schedules every unlaunched stage whose dependencies have
// completed.
func (r *runner) launchReady() {
	if r.err != nil {
		return
	}
	for _, st := range r.states {
		if st.launched {
			continue
		}
		ready := true
		for _, d := range st.deps {
			if !r.states[d].completed {
				ready = false
				break
			}
		}
		if !ready {
			continue
		}
		st.launched = true
		// The stage owns its setup gap: its Start is the barrier time, so
		// in linear mode stage durations sum to the application total and
		// the driver overhead lands in the measurements δ_scale is fitted
		// from.
		barrier := r.eng.Now()
		st.hdfsBusy0, st.localBusy0 = r.busySums()
		st := st
		r.eng.After(units.SecDuration(r.cfg.StageSetupOverhead.Seconds()), func() {
			r.launchStage(st, barrier)
		})
	}
}

// scheduleFinal marks a stage for end-of-instant processing and arms
// the finalizer. Completion bookkeeping and speculation decisions run
// in the engine's late phase, after every normal event at the current
// instant: both observe the instant's fully settled state, which makes
// them independent of same-time event interleaving — the property that
// lets the coalesced paths (fewer events per instant) stay
// byte-identical to the per-task path.
func (r *runner) scheduleFinal(st *stageState) {
	st.needsFinal = true
	if r.finalSet {
		return
	}
	r.finalSet = true
	r.eng.AtLate(r.eng.Now(), r.finalF)
}

// finalize is the end-of-instant pass: stages are visited in index
// order (a canonical order shared by every execution mode), completing
// those whose last task finished this instant and re-evaluating
// speculation on the rest.
func (r *runner) finalize() {
	r.finalSet = false
	for _, st := range r.states {
		if !st.needsFinal {
			continue
		}
		st.needsFinal = false
		if st.completed || r.err != nil {
			continue
		}
		if st.launched && st.remaining == 0 {
			r.completeStage(st)
		} else {
			r.maybeSpeculate(st)
		}
	}
}

// completeStage records the finished stage and unlocks its dependents.
// Integer aggregates were folded inline at multiplicity; the float
// accumulators (device utilisation, request counts) are folded here in
// real-node-id order, substituting the representative's row for every
// clean node — bit-identical to the per-task sums because the clean
// nodes' event sequences are identical to the representative's.
func (r *runner) completeStage(st *stageState) {
	st.res.End = r.eng.Now()
	st.res.Groups = st.groups
	hdfs, local := r.busySums()
	st.res.HDFSBusy = hdfs - st.hdfsBusy0
	st.res.LocalBusy = local - st.localBusy0
	for k := 0; k < numOpKinds; k++ {
		agg := st.io[k]
		if agg.ops == 0 {
			continue
		}
		var req float64
		for id := 0; id < r.cfg.Slaves; id++ {
			req += st.reqSub[r.byReal[id].si][k]
		}
		st.res.IO[OpKind(k)] = IOStat{Bytes: agg.bytes, Ops: agg.ops, Time: agg.time, Requests: req}
	}
	st.tasks = nil
	st.reqSub = nil
	st.med = nil
	st.completed = true
	r.done++
	if st.res.End > r.finishedAt {
		r.finishedAt = st.res.End
	}
	r.res.Stages = append(r.res.Stages, *st.res)
	r.launchReady()
}

func (r *runner) launchStage(st *stageState, barrier time.Duration) {
	if r.err != nil {
		return
	}
	stage := st.stage
	st.res = &StageResult{
		Name:  stage.Name,
		Start: barrier,
		Tasks: stage.Tasks(),
		IO:    make(map[OpKind]IOStat),
	}
	st.groups = make([]GroupResult, len(stage.Groups))
	st.remaining = stage.Tasks()
	st.reqSub = make([][numOpKinds]float64, len(r.ns))
	if r.cfg.Speculation {
		st.med = newMedianTracker(stage.Tasks())
		// Spark re-evaluates speculation on a timer
		// (spark.speculation.interval); completions alone would miss a
		// straggler tail that outlives the last normal task. The tick
		// routes through the finalizer so the decision always sees the
		// instant's settled state.
		var tick func()
		tick = func() {
			if st.completed || r.err != nil {
				return
			}
			r.scheduleFinal(st)
			r.eng.After(time.Second, tick)
		}
		r.eng.After(time.Second, tick)
	}
	// Size the logical-task slab: coalesced modes dispatch only the
	// representative's and the dirty nodes' shares (group divisibility
	// is guaranteed by eligibility).
	dispatched := stage.Tasks()
	if r.rep != nil {
		per := 0
		for _, g := range stage.Groups {
			per += g.Count / r.cfg.Slaves
		}
		dispatched = per * len(r.ns) // dirty nodes + the representative
	}
	st.tasks = make([]taskState, dispatched)
	ti := 0
	taskIdx := 0
	for gi, g := range stage.Groups {
		nOps := len(g.Ops)
		if g.GC != nil {
			nOps++ // trailing GC accounting slot
		}
		st.groups[gi] = GroupResult{
			Name:    g.Name,
			Count:   g.Count,
			OpTimes: make([]OpStat, nOps),
		}
		for t := 0; t < g.Count; t++ {
			idx := taskIdx
			taskIdx++
			home := idx % r.cfg.Slaves
			nd := r.byReal[home]
			if nd == r.rep && home != r.repReal {
				continue // clean-cohort sibling: folded into the representative
			}
			mult := 1
			if nd == r.rep {
				mult = r.repMult
			}
			if r.faultsOn() {
				target, tid := r.pickHealthy(home, nil)
				if target == nil {
					r.failApp(r.noHealthyNodes())
					return
				}
				if r.partial && tid != home {
					// A diverted launch would land the task off its home
					// node; only blacklisting or crashes divert, and both
					// bail before this point — keep the invariant explicit.
					r.bail()
				}
				nd = target
			}
			task := &st.tasks[ti]
			ti++
			nd.cores.Acquire(func() { r.dispatch(st, task, nd, gi, idx, mult, false) })
		}
	}
}

// dispatch runs when a core frees up for a queued task attempt: it
// re-validates the placement, allocates a pooled attempt, draws the
// attempt's fates, and begins the op walk.
func (r *runner) dispatch(st *stageState, task *taskState, nd *node, gi, taskIdx, mult int, speculative bool) {
	g := st.stage.Groups[gi]
	if r.faultsOn() {
		if task.done || r.err != nil {
			// The task finished (or the app failed) while this dispatch
			// waited in the core queue.
			nd.cores.Release()
			return
		}
		if nd.crashed || nd.blacklisted {
			// The node went away while the dispatch queued; bounce the
			// task to a healthy executor.
			nd.cores.Release()
			target, tid := r.pickHealthy(nd.id+1, nil)
			if target == nil {
				r.failApp(r.noHealthyNodes())
				return
			}
			if r.partial && !r.dirtyReal[tid] {
				r.bail()
			}
			target.cores.Acquire(func() { r.dispatch(st, task, target, gi, taskIdx, mult, speculative) })
			return
		}
	}
	task.attempts++
	task.inflight++
	a := r.newAttempt(st, task, nd, gi, g, taskIdx, mult, speculative)
	a.start = r.eng.Now()
	st.addRunning(a)
	if r.memOn() {
		r.reserveMem(st, a)
	}
	straggled := false
	if f := r.cfg.Faults; f.Enabled() {
		// Decide this attempt's fate up front, deterministically from
		// (seed, stage, task, attempt). The failure point is uniform over
		// the op boundaries, including the final one.
		if p := f.TaskFailureProb; p > 0 && r.faultHash01(st.idx, taskIdx, task.attempts, saltFailProb) < p {
			a.failAt = int(r.faultHash01(st.idx, taskIdx, task.attempts, saltFailAt) * float64(len(g.Ops)+1))
		}
		if q := f.ShuffleFetchFailureProb; q > 0 {
			for i, op := range g.Ops {
				if op.Kind != OpShuffleRead {
					continue
				}
				if r.faultHash01(st.idx, taskIdx, task.attempts, saltFetch+uint64(i)<<8) < q {
					a.fetchFailAt = i
					break
				}
			}
		}
	}
	a.jitter = r.jitterFactor(st.idx, taskIdx)
	// Speculative copies run clean: stragglers are machine-local and the
	// scheduler relaunches on a healthy node.
	if f := r.cfg.StragglerFraction; !speculative && f > 0 && r.hash01(st.idx, taskIdx, saltStraggler) < f {
		slow := r.cfg.StragglerSlowdown
		if slow < 1 {
			slow = 3
		}
		a.jitter *= slow
		straggled = true
	}
	if nd == r.rep && (a.failAt >= 0 || a.fetchFailAt >= 0 || straggled) {
		// The pre-draw plan promised the representative's tasks stay
		// clean; a live draw disagreeing means the plan is stale — replay
		// per-task rather than silently diverging.
		r.bail()
	}

	// JVM garbage collection pauses are spread through the task's
	// execution, so GC time is distributed over the I/O ops as coupled
	// compute (proportional to bytes); the device keeps serving other
	// tasks during the pauses. Groups without I/O fall back to a
	// trailing CPU block.
	a.gcTime, a.gcIOBytes = 0, 0
	if g.GC != nil {
		a.gcTime = g.GC(r.cfg.ExecutorCores)
		if a.gcTime < 0 {
			a.gcTime = 0
		}
		for _, op := range g.Ops {
			if op.Kind.IsIO() {
				a.gcIOBytes += op.Bytes
			}
		}
	}
	// Task launch overhead occupies the core before the first op.
	r.eng.After(units.SecDuration(r.cfg.TaskLaunchOverhead.Seconds()), a.launchF)
}

// newAttempt takes an attempt from the free list (or grows the pool),
// binding its callback closures exactly once per pooled object.
func (r *runner) newAttempt(st *stageState, task *taskState, nd *node, gi int, g TaskGroup, taskIdx, mult int, speculative bool) *attempt {
	a := r.freeA
	if a != nil {
		r.freeA = a.freeNext
		a.freeNext = nil
	} else {
		a = &attempt{r: r}
		a.launchF = a.launch
		a.stepF = a.step
		a.flowDoneF = a.flowDone
		a.gcDoneF = a.gcDone
		a.finishF = a.finish
	}
	a.st, a.task, a.nd = st, task, nd
	a.gi, a.g, a.taskIdx, a.mult = gi, g, taskIdx, mult
	a.speculative = speculative
	a.failAt, a.fetchFailAt = -1, -1
	a.lost = false
	a.memBytes, a.spill = 0, 0
	a.i, a.pending = 0, 0
	return a
}

// recycle returns a terminal attempt to the pool. Every terminal path
// (finish, stand-down, failure) runs at an op boundary, so no flow or
// engine event still references the attempt.
func (r *runner) recycle(a *attempt) {
	a.st, a.task, a.nd = nil, nil, nil
	a.g = TaskGroup{}
	a.freeNext = r.freeA
	r.freeA = a
}

// launch begins the op walk after the task-launch overhead (preceded
// by the up-front spill write when the memory layer charged one).
func (a *attempt) launch() {
	if a.spill > 0 {
		a.r.execSpill(a.st, a, OpSpillWrite, a.stepF)
		return
	}
	a.step()
}

// step advances the attempt to its next op boundary: the fault and
// stand-down checks, then the current op's execution.
func (a *attempt) step() {
	r, st, task := a.r, a.st, a.task
	if r.memOn() && r.memGate(a.nd, a.stepF) {
		// A GC pause on this node stalls the core until it ends; the
		// op re-dispatches at the pause boundary.
		return
	}
	if task.done {
		// A speculative sibling won: stand down at the op boundary
		// (Spark kills the slower attempt).
		a.standDown()
		return
	}
	if r.faultsOn() {
		if r.err != nil {
			// The application already failed; drain quietly.
			a.standDown()
			return
		}
		if a.lost {
			r.failAttempt(st, a, FailNodeLost)
			return
		}
		if a.i == a.fetchFailAt {
			r.fetchFail(st, a)
			return
		}
		if a.i == a.failAt {
			r.failAttempt(st, a, FailInjected)
			return
		}
	}
	g := a.g
	if a.i >= len(g.Ops) {
		// GC fallback for compute-only groups: a trailing pause.
		if a.gcTime > 0 && a.gcIOBytes == 0 {
			a.opStart = r.eng.Now()
			r.eng.After(a.gcTime, a.gcDoneF)
			return
		}
		a.endTask()
		return
	}
	op := g.Ops[a.i]
	if op.Kind == OpCompute {
		op.Duration = time.Duration(float64(op.Duration) * a.jitter)
	} else {
		if a.gcTime > 0 && a.gcIOBytes > 0 && op.Bytes > 0 {
			share := float64(op.Bytes) / float64(a.gcIOBytes)
			op.CoupledCompute += time.Duration(share * float64(a.gcTime))
		}
		if op.CoupledCompute > 0 {
			op.CoupledCompute = time.Duration(float64(op.CoupledCompute) * a.jitter)
		}
	}
	a.curOp = op
	a.opStart = r.eng.Now()
	a.execCurOp()
}

// gcDone accounts the trailing GC block and ends the task.
func (a *attempt) gcDone() {
	s := &a.st.groups[a.gi].OpTimes[len(a.g.Ops)]
	s.Kind = OpCompute
	s.Time += (a.r.eng.Now() - a.opStart) * time.Duration(a.mult)
	s.Count += a.mult
	a.endTask()
}

// endTask is the task boundary: with the memory layer off it IS
// finish, so the zero-heap event sequence is unchanged; with it on,
// the spill re-read and the occupancy-driven GC pause run first.
func (a *attempt) endTask() {
	if a.r.memOn() {
		a.r.memEpilogue(a.st, a, a.finishF)
		return
	}
	a.finish()
}

// finish completes the attempt: the first attempt of a task to finish
// wins; later ones notice at their next op boundary and stand down.
func (a *attempt) finish() {
	r, st, task := a.r, a.st, a.task
	st.removeRunning(a)
	task.inflight--
	a.nd.cores.Release()
	if task.done {
		r.recycle(a)
		return // a speculative sibling won
	}
	task.done = true
	dur := r.eng.Now() - a.start
	gr := &st.groups[a.gi]
	gr.TotalTaskTime += dur * time.Duration(a.mult)
	if st.med != nil {
		st.med.AddN(dur, a.mult)
	}
	st.remaining -= a.mult
	r.scheduleFinal(st)
	r.recycle(a)
}

// standDown abandons the attempt (speculative loser or post-error
// drain) at an op boundary.
func (a *attempt) standDown() {
	r := a.r
	r.releaseMem(a)
	a.st.removeRunning(a)
	a.task.inflight--
	a.nd.cores.Release()
	r.recycle(a)
}

// flowDone fires once per completed flow of the current op; the last
// one accounts the op and advances the walk.
func (a *attempt) flowDone() {
	a.pending--
	if a.pending > 0 {
		return
	}
	r, st, op := a.r, a.st, a.curOp
	elapsed := r.eng.Now() - a.opStart
	k := time.Duration(a.mult)
	s := &st.groups[a.gi].OpTimes[a.i]
	s.Kind = op.Kind
	s.Time += elapsed * k
	s.Bytes += op.Bytes * units.ByteSize(a.mult)
	s.Coupled += op.CoupledCompute * k
	s.Count += a.mult
	r.accountIO(st, a.nd, op, elapsed, a.mult)
	a.i++
	a.step()
}

// execCurOp performs a.curOp allocation-free, reusing the attempt's
// embedded flow pair. The rare recovery paths (spill, parent
// recompute) use the generic execOp instead.
func (a *attempt) execCurOp() {
	r, op, nd := a.r, a.curOp, a.nd
	if op.Kind == OpCompute {
		d := op.Duration
		if d < 0 {
			d = 0
		}
		a.pending = 1
		r.eng.After(d, a.flowDoneF)
		return
	}
	if op.Bytes <= 0 {
		a.pending = 1
		r.eng.After(0, a.flowDoneF)
		return
	}

	reqSize := op.DefaultReqSize(r.cfg.HDFSBlockSize)
	dev := r.cfg.HDFSDisk
	res := nd.hdfs
	if op.Kind.OnLocal() {
		dev = r.cfg.LocalDisk
		res = nd.local
	}
	var full units.Rate
	if op.Kind.IsRead() {
		full = dev.ReadBandwidth(reqSize)
	} else {
		full = dev.WriteBandwidth(reqSize)
	}

	diskBytes := op.Bytes
	var netBytes units.ByteSize
	switch op.Kind {
	case OpHDFSWrite:
		// dfs.replication copies: one local, the rest remote. The disk
		// load is symmetric across nodes, so we charge the full
		// replicated volume to this node's HDFS disk and the remote
		// copies to the NIC.
		diskBytes = op.Bytes * units.ByteSize(r.cfg.HDFSReplication)
		netBytes = op.Bytes * units.ByteSize(r.cfg.HDFSReplication-1)
	case OpShuffleRead:
		// A reducer pulls (N-1)/N of its input from remote mapper disks.
		// Disk load is symmetric; network carries the remote fraction.
		netBytes = units.ByteSize(float64(op.Bytes) * r.cfg.remoteFrac)
	}

	a.pending = 1
	if r.cfg.ModelNetwork && netBytes > 0 {
		a.pending = 2
	}
	var computeRate units.Rate
	if op.CoupledCompute > 0 {
		computeRate = units.Over(diskBytes, op.CoupledCompute)
	}
	a.flow = sim.Flow{
		Name:        op.Kind.String(),
		Bytes:       diskBytes,
		FullRate:    full,
		Cap:         op.StreamLimit,
		ComputeRate: computeRate,
		OnComplete:  a.flowDoneF,
	}
	res.Start(&a.flow)
	if r.cfg.ModelNetwork && netBytes > 0 {
		a.st.res.NetBytes += netBytes * units.ByteSize(a.mult)
		a.netFlow = sim.Flow{
			Name:       netFlowNames[op.Kind],
			Bytes:      netBytes,
			FullRate:   r.cfg.NICRate,
			Cap:        op.StreamLimit,
			OnComplete: a.flowDoneF,
		}
		nd.nic.Start(&a.netFlow)
	}
}

// jitterFactor returns the deterministic per-task compute-time multiplier
// in [1-j, 1+j], derived from a splitmix64 hash of (seed, stage, task).
func (r *runner) jitterFactor(stageIdx, taskIdx int) float64 {
	j := r.cfg.ComputeJitter
	if j <= 0 {
		return 1
	}
	u := r.hash01(stageIdx, taskIdx, 0)
	return 1 - j + 2*j*u
}

// hash01 maps (seed, stage, task, salt) to a uniform [0,1) value via
// splitmix64.
func (r *runner) hash01(stageIdx, taskIdx int, salt uint64) float64 {
	x := r.cfg.Seed ^ (uint64(stageIdx)<<32 + uint64(taskIdx)) ^ (salt << 48)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// faultsOn reports whether the fault layer is active. Every fault-path
// behavior is gated on it so a zero-valued FaultConfig run is
// event-for-event identical to a run without the fault layer.
func (r *runner) faultsOn() bool { return r.cfg.Faults.Enabled() }

// memOn reports whether the memory layer is active. Like faultsOn,
// every memory-path behavior is gated on it so a zero-valued
// MemoryConfig run is event-for-event identical to a run without the
// memory layer (golden-pinned in internal/workloads).
func (r *runner) memOn() bool { return r.cfg.Memory.Enabled() }

// accountIO updates the stage-level iostat-style aggregation: integers
// inline at multiplicity, the float request count into the node's
// per-stage row (folded at completion; see completeStage). A completed
// stage's accounting is frozen — late ops of killed speculative
// attempts no longer shift it.
func (r *runner) accountIO(st *stageState, nd *node, op Op, elapsed time.Duration, mult int) {
	if !op.Kind.IsIO() || op.Bytes <= 0 || st.completed {
		return
	}
	bytes := op.Bytes
	if op.Kind == OpHDFSWrite {
		bytes *= units.ByteSize(r.cfg.HDFSReplication)
	}
	agg := &st.io[op.Kind]
	agg.time += elapsed * time.Duration(mult)
	agg.bytes += bytes * units.ByteSize(mult)
	agg.ops += mult
	if rs := op.DefaultReqSize(r.cfg.HDFSBlockSize); rs > 0 {
		st.reqSub[nd.si][op.Kind] += float64(bytes) / float64(rs)
	}
}

// execOp performs one op and calls done when it completes. This is the
// generic (allocating) form used by the recovery paths — spill traffic
// and parent recomputes; the hot per-task walk uses execCurOp.
func (r *runner) execOp(st *stageState, nd *node, op Op, done func()) {
	switch op.Kind {
	case OpCompute:
		d := op.Duration
		if d < 0 {
			d = 0
		}
		r.eng.After(d, func() { done() })
		return
	default:
	}

	if op.Bytes <= 0 {
		r.eng.After(0, done)
		return
	}

	reqSize := op.DefaultReqSize(r.cfg.HDFSBlockSize)
	var res *sim.FlowResource
	var full units.Rate
	diskBytes := op.Bytes
	var netBytes units.ByteSize

	dev := r.cfg.HDFSDisk
	if op.Kind.OnLocal() {
		dev = r.cfg.LocalDisk
	}
	if op.Kind.IsRead() {
		full = dev.ReadBandwidth(reqSize)
	} else {
		full = dev.WriteBandwidth(reqSize)
	}
	if op.Kind.OnLocal() {
		res = nd.local
	} else {
		res = nd.hdfs
	}

	switch op.Kind {
	case OpHDFSWrite:
		diskBytes = op.Bytes * units.ByteSize(r.cfg.HDFSReplication)
		netBytes = op.Bytes * units.ByteSize(r.cfg.HDFSReplication-1)
	case OpShuffleRead:
		netBytes = units.ByteSize(float64(op.Bytes) * r.cfg.remoteFrac)
	}

	pending := 1
	if r.cfg.ModelNetwork && netBytes > 0 {
		pending = 2
	}
	complete := func() {
		pending--
		if pending == 0 {
			done()
		}
	}

	var computeRate units.Rate
	if op.CoupledCompute > 0 {
		computeRate = units.Over(diskBytes, op.CoupledCompute)
	}
	res.Start(&sim.Flow{
		Name:        op.Kind.String(),
		Bytes:       diskBytes,
		FullRate:    full,
		Cap:         op.StreamLimit,
		ComputeRate: computeRate,
		OnComplete:  complete,
	})
	if r.cfg.ModelNetwork && netBytes > 0 {
		st.res.NetBytes += netBytes
		nd.nic.Start(&sim.Flow{
			Name:       netFlowNames[op.Kind],
			Bytes:      netBytes,
			FullRate:   r.cfg.NICRate,
			Cap:        op.StreamLimit,
			OnComplete: complete,
		})
	}
}
