package spark

import (
	"time"

	"repro/internal/units"
)

// Salts separating the independent per-attempt and per-task draws.
const (
	saltFailProb  uint64 = 0xFA11
	saltFailAt    uint64 = 0xFA12
	saltFetch     uint64 = 0xFA13
	saltStraggler uint64 = 0x5743
)

// specCopyIdxOffset displaces a speculative copy's task index so its
// fault draws are independent of the original attempt's.
const specCopyIdxOffset = 1_000_003

// faultHash01 maps (seeds, stage, task, attempt, salt) to a uniform
// [0,1) value. Unlike hash01 it mixes in the attempt number, so a
// retried attempt draws fresh fates, and FaultConfig.Seed, so the
// failure pattern can vary independently of the jitter pattern.
func (r *runner) faultHash01(stageIdx, taskIdx, attempt int, salt uint64) float64 {
	x := r.cfg.Seed ^ (r.cfg.Faults.Seed * 0x9e3779b97f4a7c15)
	x ^= uint64(stageIdx)<<40 ^ uint64(taskIdx)<<16 ^ uint64(attempt)<<56 ^ salt
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// planPartial decides whether a degraded run (faults, speculation,
// stragglers — the configurations full coalescing must reject)
// qualifies for partial coalescing, and if so pre-draws the dirty-node
// partition: every fault and straggler decision is a pure function of
// the seeded hashes, so the set of tasks that will draw a degradation
// event — and the nodes their recovery can touch — is known before the
// event loop starts. Nodes outside that set execute provably identical
// event sequences and fold into one representative.
//
// The plan is conservative where it can be (recovery taint spans) and
// exact where it must be (the attempt-1 draws reuse the dispatch-time
// hash calls verbatim); any runtime violation bails to the per-task
// path, so a misprediction costs speed, never accuracy.
func planPartial(cfg ClusterConfig, app App) (dirty []bool, dirtyCount, repReal int, ok bool) {
	if !partialEligible(cfg, app) {
		return nil, 0, -1, false
	}
	rr := &runner{cfg: cfgDerived{ClusterConfig: cfg}}
	dirty = rr.drawDirty(app)
	for _, d := range dirty {
		if d {
			dirtyCount++
		}
	}
	// The fold needs a cohort: with fewer than two clean nodes the
	// representative buys nothing over per-task.
	if cfg.Slaves-dirtyCount < 2 {
		return nil, 0, -1, false
	}
	repReal = -1
	for id, d := range dirty {
		if !d {
			repReal = id
			break
		}
	}
	return dirty, dirtyCount, repReal, true
}

// partialEligible holds the static preconditions for partial
// coalescing — the properties that make the clean cohort symmetric.
func partialEligible(cfg ClusterConfig, app App) bool {
	if cfg.DisableCoalescing || cfg.Slaves <= 2 {
		return false
	}
	if !(cfg.Faults.Enabled() || cfg.Speculation || cfg.StragglerFraction > 0) {
		return false // clean runs belong to full coalescing
	}
	// Jitter draws a distinct factor per task, so no two nodes run the
	// same schedule; heap occupancy couples co-resident tasks the same
	// way. Both stay per-task.
	if cfg.ComputeJitter > 0 || cfg.Memory.Enabled() {
		return false
	}
	// A scheduled crash dirties the whole cluster: surviving nodes
	// absorb the dead node's share asymmetrically.
	if len(cfg.Faults.NodeCrashes) > 0 {
		return false
	}
	// A speculation multiplier at or below 1 makes roughly half the
	// running tasks instant candidates — the clean cohort would bail
	// immediately.
	if cfg.Speculation && cfg.SpeculationMultiplier > 0 && cfg.SpeculationMultiplier <= 1 {
		return false
	}
	for _, s := range app.Stages {
		for _, g := range s.Groups {
			if g.Count%cfg.Slaves != 0 {
				return false
			}
		}
	}
	return true
}

// drawDirty replays every attempt-1 fate draw the dispatcher will make
// — the same faultHash01/hash01 calls with the same salts — and taints
// the nodes an eventful task's recovery can reach: its home node, plus
// a window covering retries (each hop moves one node right), the
// speculative copy (launched one node right), and the follow-on
// failures drawn on the retry and copy chains.
func (r *runner) drawDirty(app App) []bool {
	S := r.cfg.Slaves
	dirty := make([]bool, S)
	f := r.cfg.Faults
	maxF := 1
	if f.Enabled() {
		maxF = f.maxTaskFailures()
	}
	taint := func(home, span int) {
		if span >= S {
			span = S - 1
		}
		for k := 0; k <= span; k++ {
			dirty[(home+k)%S] = true
		}
	}
	for si, s := range app.Stages {
		idx := 0
		for _, g := range s.Groups {
			// draws reports whether attempt number a of hash-index tid
			// would draw a failure or fetch failure.
			draws := func(tid, a int) bool {
				if p := f.TaskFailureProb; p > 0 && r.faultHash01(si, tid, a, saltFailProb) < p {
					return true
				}
				if q := f.ShuffleFetchFailureProb; q > 0 {
					for i, op := range g.Ops {
						if op.Kind == OpShuffleRead && r.faultHash01(si, tid, a, saltFetch+uint64(i)<<8) < q {
							return true
						}
					}
				}
				return false
			}
			for t := 0; t < g.Count; t++ {
				eventful := f.Enabled() && draws(idx, 1)
				if sf := r.cfg.StragglerFraction; sf > 0 && r.hash01(si, idx, saltStraggler) < sf {
					eventful = true
				}
				if !eventful {
					idx++
					continue
				}
				// Count every failure the retry chain and the speculative
				// copy's chain could draw; attempt numbers are dynamic at
				// runtime, so scan a window twice the attempt budget.
				fails := 0
				if f.Enabled() {
					for a := 2; a <= 2*maxF; a++ {
						if draws(idx, a) {
							fails++
						}
					}
					if r.cfg.Speculation {
						for a := 1; a <= 2*maxF; a++ {
							if draws(idx+specCopyIdxOffset, a) {
								fails++
							}
						}
					}
				}
				taint(idx%S, 2+fails)
				idx++
			}
		}
	}
	return dirty
}

// maybeSpeculate launches a second attempt for tasks that have run far
// past the median completed duration (spark.speculation semantics). It
// runs in the engine's late phase (see scheduleFinal), so the median
// and the running set reflect every completion of the current instant.
func (r *runner) maybeSpeculate(st *stageState) {
	if !r.cfg.Speculation || st.med == nil || st.med.Len() == 0 || r.err != nil {
		return
	}
	mult := r.cfg.SpeculationMultiplier
	if mult <= 0 {
		mult = 1.5
	}
	threshold := time.Duration(float64(st.med.Median()) * mult)
	now := r.eng.Now()
	// Collect candidates in task order (the running list is insertion-
	// ordered, not task-ordered) so speculative launches schedule engine
	// events deterministically.
	cands := r.cands[:0]
	for a := st.running; a != nil; a = a.next {
		if a.task.done || a.task.speculated {
			continue
		}
		if now-a.start < threshold {
			continue
		}
		if a.nd == r.rep {
			// A clean-cohort task lagging the median breaks the plan's
			// "nothing notable happens on clean nodes" premise.
			r.bail()
		}
		j := len(cands)
		cands = append(cands, a)
		for j > 0 && cands[j-1].taskIdx > a.taskIdx {
			cands[j], cands[j-1] = cands[j-1], cands[j]
			j--
		}
	}
	for _, a := range cands {
		a.task.speculated = true
		// Relaunch on the next node over; the copy is a fresh attempt
		// (stragglers are machine-local, so the copy runs clean).
		var other *node
		var tid int
		if r.faultsOn() {
			other, tid = r.pickHealthy(a.nd.id+1, a.nd)
			if other == nil {
				// Nowhere to speculate; the original attempt may still
				// finish on its own.
				continue
			}
		} else {
			tid = (a.nd.id + 1) % r.cfg.Slaves
			other = r.byReal[tid]
		}
		if r.partial && !r.dirtyReal[tid] {
			r.bail()
		}
		task, gi, idx := a.task, a.gi, a.taskIdx
		other.cores.Acquire(func() { r.dispatch(st, task, other, gi, idx+specCopyIdxOffset, 1, true) })
	}
	r.cands = cands[:0]
}

// pickHealthy returns the first non-crashed, non-blacklisted node at or
// after real id start (wrapping), with its real id, preferring any node
// other than avoid; avoid itself is returned only when it is the sole
// healthy node. Nil means no healthy node exists.
func (r *runner) pickHealthy(start int, avoid *node) (*node, int) {
	n := r.cfg.Slaves
	var fallback *node
	fallbackID := -1
	for k := 0; k < n; k++ {
		id := (start + k) % n
		nd := r.byReal[id]
		if nd.crashed || nd.blacklisted {
			continue
		}
		if nd == avoid {
			if fallback == nil {
				fallback, fallbackID = nd, id
			}
			continue
		}
		return nd, id
	}
	return fallback, fallbackID
}

// noHealthyNodes builds the fatal everything-is-gone error.
func (r *runner) noHealthyNodes() error {
	var lost, black int
	for id := 0; id < r.cfg.Slaves; id++ {
		n := r.byReal[id]
		if n.crashed {
			lost++
		} else if n.blacklisted {
			black++
		}
	}
	return &NoHealthyNodesError{App: r.app.Name, Lost: lost, Blacklisted: black}
}

// failApp records the first fatal error; the engine then drains its
// in-flight events while every launch path stands down.
func (r *runner) failApp(err error) {
	if r.err == nil {
		r.err = err
	}
}

// crashNode executes a scheduled node loss: in-flight attempts on the
// node die at their next op boundary; queued dispatches bounce to
// healthy nodes when they reach dispatch.
func (r *runner) crashNode(nd *node) {
	if nd.crashed || r.done == len(r.states) || r.err != nil {
		return
	}
	nd.crashed = true
	r.res.Faults.NodesLost++
	for _, st := range r.states {
		if !st.launched || st.completed {
			continue
		}
		for a := st.running; a != nil; a = a.next {
			if a.nd == nd {
				a.lost = true
			}
		}
	}
}

// noteNodeFailure counts an injected failure against the node's
// blacklist budget (spark.blacklist.maxFailedTasksPerExecutor). The
// last healthy node is never blacklisted: with uniformly injected
// failures every node eventually trips the threshold, and a scheduler
// with zero executors can only abort.
func (r *runner) noteNodeFailure(nd *node) {
	nd.taskFailures++
	t := r.cfg.Faults.BlacklistThreshold
	if t <= 0 || nd.blacklisted || nd.taskFailures < t {
		return
	}
	healthy := 0
	for id := 0; id < r.cfg.Slaves; id++ {
		n := r.byReal[id]
		if !n.crashed && !n.blacklisted {
			healthy++
		}
	}
	if healthy <= 1 {
		return
	}
	if r.partial {
		// Blacklisting reroutes every future dispatch homed on this
		// node — the clean cohort's schedules stop being symmetric.
		r.bail()
	}
	nd.blacklisted = true
	r.res.Faults.NodesBlacklisted++
}

// failAttempt kills one attempt: the core frees, the failure counts
// against the task's budget, and — unless a sibling attempt is still
// running — the task retries after exponential backoff. The attempt is
// recycled here; everything the retry needs is copied out first.
func (r *runner) failAttempt(st *stageState, a *attempt, kind FailureKind) {
	r.releaseMem(a)
	st.removeRunning(a)
	a.task.inflight--
	a.nd.cores.Release()
	task, nd, gi, g, taskIdx := a.task, a.nd, a.gi, a.g, a.taskIdx
	r.recycle(a)
	if task.done || r.err != nil {
		return
	}
	task.failures++
	st.res.Faults.TaskFailures++
	r.res.Faults.TaskFailures++
	if kind == FailNodeLost {
		st.res.Faults.LostAttempts++
		r.res.Faults.LostAttempts++
	} else {
		r.noteNodeFailure(nd)
	}
	f := r.cfg.Faults
	if task.failures >= f.maxTaskFailures() {
		r.failApp(&TaskFailedError{App: r.app.Name, Stage: st.stage.Name, Task: taskIdx, Failures: task.failures, Kind: kind})
		return
	}
	if task.inflight > 0 {
		return // a speculative sibling may still win
	}
	r.retryTask(st, task, nd.id, gi, g, taskIdx, f.backoff(task.failures))
}

// retryTask relaunches a task on a healthy node after the backoff.
func (r *runner) retryTask(st *stageState, task *taskState, fromID, gi int, g TaskGroup, taskIdx int, delay time.Duration) {
	st.res.Faults.Retries++
	r.res.Faults.Retries++
	from := r.byReal[fromID]
	r.eng.After(delay, func() {
		if task.done || r.err != nil {
			return
		}
		target, tid := r.pickHealthy(fromID+1, from)
		if target == nil {
			r.failApp(r.noHealthyNodes())
			return
		}
		if r.partial && !r.dirtyReal[tid] {
			r.bail()
		}
		target.cores.Acquire(func() { r.dispatch(st, task, target, gi, taskIdx, 1, false) })
	})
}

// fetchFail handles a shuffle-fetch failure: the reducer attempt dies,
// and on stages with a parent one lost map output is recomputed before
// the retry — re-running the parent op sequence (HDFS re-read at block
// sizes, shuffle re-write) on a healthy node. This is the recovery cost
// the request-size-aware bandwidth curves make device-dependent.
func (r *runner) fetchFail(st *stageState, a *attempt) {
	r.releaseMem(a)
	st.removeRunning(a)
	a.task.inflight--
	a.nd.cores.Release()
	task, fromID, gi, g, taskIdx := a.task, a.nd.id, a.gi, a.g, a.taskIdx
	r.recycle(a)
	if task.done || r.err != nil {
		return
	}
	task.fetchFailures++
	st.res.Faults.TaskFailures++
	st.res.Faults.FetchFailures++
	r.res.Faults.TaskFailures++
	r.res.Faults.FetchFailures++
	f := r.cfg.Faults
	if task.fetchFailures >= f.maxTaskFailures() {
		r.failApp(&TaskFailedError{App: r.app.Name, Stage: st.stage.Name, Task: taskIdx, Failures: task.fetchFailures, Kind: FailFetch})
		return
	}
	if task.inflight > 0 {
		return
	}
	if len(st.deps) == 0 {
		// No parent stage to recompute; degrade to a plain retry.
		r.retryTask(st, task, fromID, gi, g, taskIdx, f.backoff(task.fetchFailures))
		return
	}
	parent := r.states[st.deps[0]]
	r.recomputeParent(st, parent, fromID, func() {
		r.retryTask(st, task, fromID, gi, g, taskIdx, f.backoff(task.fetchFailures))
	})
}

// recomputeParent re-runs one parent map task's op sequence on a
// healthy node, holding a core for the duration. The recompute I/O is
// charged to the consumer stage st, where the recovery cost shows up in
// the degraded measurements.
func (r *runner) recomputeParent(st *stageState, parent *stageState, fromID int, then func()) {
	st.res.Faults.Recomputes++
	r.res.Faults.Recomputes++
	target, tid := r.pickHealthy(fromID, nil)
	if target == nil {
		r.failApp(r.noHealthyNodes())
		return
	}
	if r.partial && !r.dirtyReal[tid] {
		r.bail()
	}
	g := parent.stage.Groups[0]
	target.cores.Acquire(func() {
		var run func(i int)
		run = func(i int) {
			if r.err != nil || i >= len(g.Ops) {
				target.cores.Release()
				if r.err == nil {
					then()
				}
				return
			}
			op := g.Ops[i]
			opStart := r.eng.Now()
			r.execOp(st, target, op, func() {
				r.accountIO(st, target, op, r.eng.Now()-opStart, 1)
				run(i + 1)
			})
		}
		r.eng.After(units.SecDuration(r.cfg.TaskLaunchOverhead.Seconds()), func() { run(0) })
	})
}
