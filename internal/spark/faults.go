package spark

import (
	"fmt"
	"time"

	"repro/internal/units"
)

// FaultConfig injects failures into a simulated run, modeling the
// adversity a real Spark cluster survives: task attempts that die
// mid-flight, executors lost to node crashes, and shuffle-fetch failures
// that force partial recomputation of the parent stage. Injection is
// deterministic: the same (ClusterConfig.Seed, FaultConfig) always
// produces the same failures, so degraded runs are as reproducible as
// clean ones.
//
// The zero value disables every fault path; a zero-valued FaultConfig
// run is event-for-event identical to a run without the fault layer.
//
// Recovery follows Spark's semantics:
//
//   - a failed attempt is retried on another healthy executor, up to
//     MaxTaskFailures attempts per task (spark.task.maxFailures), with
//     exponential backoff between retries;
//   - executors accumulating BlacklistThreshold task failures stop
//     receiving new tasks (spark.blacklist.maxFailedTasksPerExecutor);
//   - a shuffle-fetch failure first recomputes the lost parent map
//     output (re-running one parent task's op sequence, re-reading its
//     HDFS input at block-size requests and re-writing its shuffle
//     output) before the reducer retries — the recovery cost the paper's
//     request-size-aware bandwidth curves make visible: cheap at HDFS
//     block sizes, brutal at ~30 KB shuffle request sizes on HDD.
type FaultConfig struct {
	// TaskFailureProb is the per-attempt probability that a task attempt
	// fails partway through its op sequence (the failure point is
	// uniform over the op boundaries, so on average half an attempt's
	// work is wasted). Zero disables.
	TaskFailureProb float64
	// ShuffleFetchFailureProb is the per-attempt probability that a
	// shuffle-read op suffers a fetch failure. On stages with a parent,
	// recovery recomputes one parent map task before the retry; on
	// parentless stages it degrades to a plain task failure. Zero
	// disables.
	ShuffleFetchFailureProb float64
	// MaxTaskFailures is spark.task.maxFailures: the attempt budget per
	// task. When the budget is exhausted the application fails with a
	// *TaskFailedError. Zero means the Spark default of 4.
	MaxTaskFailures int
	// RetryBackoff is the base delay before relaunching a failed
	// attempt; the n-th retry of a task waits base·2^(n-1), capped at
	// one minute. Zero means the default of one second.
	RetryBackoff DurationParam
	// BlacklistThreshold is the number of injected task failures on one
	// executor node before it is blacklisted (no new task dispatch;
	// in-flight work finishes). Zero disables blacklisting. Node-loss
	// failures do not count — the node is already gone. The last healthy
	// node is never blacklisted, so the cluster degrades instead of
	// scheduling itself to death.
	BlacklistThreshold int
	// NodeCrashes schedules executor loss: at each entry's time the node
	// stops, its in-flight attempts fail at their next op boundary, and
	// its tasks are rescheduled on the surviving nodes. Crashes are
	// permanent for the run.
	NodeCrashes []NodeCrash
	// Seed adds fault-specific entropy on top of ClusterConfig.Seed, so
	// repeated degraded measurements can vary the failure pattern while
	// keeping the jitter pattern fixed.
	Seed uint64
}

// NodeCrash is one scheduled executor loss.
type NodeCrash struct {
	// Node is the slave index in [0, Slaves).
	Node int
	// At is the crash time in seconds of simulated run time.
	At DurationParam
}

// Enabled reports whether any fault source is configured. The zero
// value is disabled, which keeps the fault layer strictly additive.
func (f FaultConfig) Enabled() bool {
	return f.TaskFailureProb > 0 || f.ShuffleFetchFailureProb > 0 || len(f.NodeCrashes) > 0
}

// Validate checks the fault configuration against the cluster shape.
func (f FaultConfig) Validate(slaves int) error {
	switch {
	case f.TaskFailureProb < 0 || f.TaskFailureProb >= 1:
		return fmt.Errorf("spark: TaskFailureProb %v outside [0,1)", f.TaskFailureProb)
	case f.ShuffleFetchFailureProb < 0 || f.ShuffleFetchFailureProb >= 1:
		return fmt.Errorf("spark: ShuffleFetchFailureProb %v outside [0,1)", f.ShuffleFetchFailureProb)
	case f.MaxTaskFailures < 0:
		return fmt.Errorf("spark: negative MaxTaskFailures")
	case f.RetryBackoff < 0:
		return fmt.Errorf("spark: negative RetryBackoff")
	case f.BlacklistThreshold < 0:
		return fmt.Errorf("spark: negative BlacklistThreshold")
	}
	for i, c := range f.NodeCrashes {
		if c.Node < 0 || c.Node >= slaves {
			return fmt.Errorf("spark: NodeCrashes[%d] targets node %d outside [0,%d)", i, c.Node, slaves)
		}
		if c.At < 0 {
			return fmt.Errorf("spark: NodeCrashes[%d] has negative time", i)
		}
	}
	if f.Enabled() && len(f.NodeCrashes) >= slaves && slaves > 0 {
		// Losing every node can only end in NoHealthyNodesError; reject
		// upfront with a readable message.
		crashed := map[int]bool{}
		for _, c := range f.NodeCrashes {
			crashed[c.Node] = true
		}
		if len(crashed) >= slaves {
			return fmt.Errorf("spark: NodeCrashes loses all %d nodes", slaves)
		}
	}
	return nil
}

// maxTaskFailures resolves the attempt budget (Spark default 4).
func (f FaultConfig) maxTaskFailures() int {
	if f.MaxTaskFailures > 0 {
		return f.MaxTaskFailures
	}
	return 4
}

// backoff returns the delay before the n-th retry of a task
// (1-indexed): base·2^(n-1), capped at one minute.
func (f FaultConfig) backoff(retry int) time.Duration {
	base := units.SecDuration(f.RetryBackoff.Seconds())
	if base <= 0 {
		base = time.Second
	}
	const limit = time.Minute
	d := base
	for i := 1; i < retry && d < limit; i++ {
		d *= 2
	}
	if d > limit {
		d = limit
	}
	return d
}

// FailureKind classifies an injected failure.
type FailureKind int

// Failure kinds.
const (
	// FailInjected is a plain per-attempt task failure.
	FailInjected FailureKind = iota
	// FailNodeLost is an attempt killed by its executor's crash.
	FailNodeLost
	// FailFetch is a shuffle-fetch failure.
	FailFetch
)

// String names the failure kind.
func (k FailureKind) String() string {
	switch k {
	case FailInjected:
		return "task-failure"
	case FailNodeLost:
		return "node-lost"
	case FailFetch:
		return "fetch-failure"
	default:
		return fmt.Sprintf("FailureKind(%d)", int(k))
	}
}

// TaskFailedError reports a task that exhausted its attempt budget,
// failing the application — Spark's "Task failed 4 times; aborting job".
type TaskFailedError struct {
	App      string
	Stage    string
	Task     int
	Failures int
	Kind     FailureKind
}

// Error implements error.
func (e *TaskFailedError) Error() string {
	return fmt.Sprintf("spark: %s/%s task %d failed %d times (last: %s); aborting application",
		e.App, e.Stage, e.Task, e.Failures, e.Kind)
}

// NoHealthyNodesError reports that every executor node is crashed or
// blacklisted, leaving nowhere to schedule work.
type NoHealthyNodesError struct {
	App         string
	Lost        int
	Blacklisted int
}

// Error implements error.
func (e *NoHealthyNodesError) Error() string {
	return fmt.Sprintf("spark: %s has no healthy nodes left (%d crashed, %d blacklisted); aborting application",
		e.App, e.Lost, e.Blacklisted)
}

// FaultStats aggregates the failures and recoveries observed during a
// run (or one stage of it).
type FaultStats struct {
	// TaskFailures counts failed attempts of every kind, including
	// node-loss kills and fetch failures.
	TaskFailures int
	// LostAttempts counts the attempts killed by node crashes.
	LostAttempts int
	// FetchFailures counts shuffle-fetch failures.
	FetchFailures int
	// Recomputes counts parent map-task recomputations triggered by
	// fetch failures.
	Recomputes int
	// Retries counts attempt relaunches (excludes speculative copies).
	Retries int
	// NodesLost and NodesBlacklisted count executor-level losses
	// (Result-level only; zero in per-stage stats).
	NodesLost        int
	NodesBlacklisted int
}

// Any reports whether any fault activity was recorded.
func (s FaultStats) Any() bool {
	return s != FaultStats{}
}
