package spark

import (
	"math"
	"testing"
	"time"

	"repro/internal/units"
)

func computeStage(name string, deps []string, count int, d time.Duration) Stage {
	return Stage{
		Name:      name,
		DependsOn: deps,
		Groups:    []TaskGroup{{Name: "g", Count: count, Ops: []Op{Compute(d)}}},
	}
}

func TestDAGIndependentStagesOverlap(t *testing.T) {
	dev := constDev{units.MBps(1000), units.MBps(1000)}
	// Two independent 60s stages on 8 cores with 4 tasks each: together
	// they fill the cores and finish in ~60s, where the linear chain
	// needs 120s.
	dag := App{Name: "dag", Stages: []Stage{
		computeStage("a", nil, 4, 60*time.Second),
		computeStage("b", []string{}, 4, 60*time.Second),
		computeStage("join", []string{"a", "b"}, 1, time.Second),
	}}
	// Force DAG mode: "join" declares deps; a and b have none so they
	// are roots.
	res, err := Run(barebones(1, 8, dev), dag)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Total.Seconds(); math.Abs(got-61) > 0.5 {
		t.Errorf("DAG total = %.1fs, want ~61 (a ∥ b, then join)", got)
	}

	linear := App{Name: "chain", Stages: []Stage{
		computeStage("a", nil, 4, 60*time.Second),
		computeStage("b", nil, 4, 60*time.Second),
		computeStage("join", nil, 1, time.Second),
	}}
	lres, err := Run(barebones(1, 8, dev), linear)
	if err != nil {
		t.Fatal(err)
	}
	if got := lres.Total.Seconds(); math.Abs(got-121) > 0.5 {
		t.Errorf("linear total = %.1fs, want ~121", got)
	}
}

func TestDAGJoinWaitsForAllDeps(t *testing.T) {
	dev := constDev{units.MBps(1000), units.MBps(1000)}
	app := App{Name: "dag", Stages: []Stage{
		computeStage("fast", nil, 1, time.Second),
		computeStage("slow", nil, 1, 30*time.Second),
		computeStage("join", []string{"fast", "slow"}, 1, time.Second),
	}}
	res, err := Run(barebones(1, 4, dev), app)
	if err != nil {
		t.Fatal(err)
	}
	join := res.MustStage("join")
	slow := res.MustStage("slow")
	if join.Start < slow.End {
		t.Errorf("join started at %v before slow ended at %v", join.Start, slow.End)
	}
}

func TestDAGValidation(t *testing.T) {
	mk := func(stages ...Stage) App { return App{Name: "x", Stages: stages} }
	// Unknown dependency.
	if err := mk(
		computeStage("a", []string{"ghost"}, 1, time.Second),
	).Validate(); err == nil {
		t.Error("unknown dependency accepted")
	}
	// Cycle.
	if err := mk(
		computeStage("a", []string{"b"}, 1, time.Second),
		computeStage("b", []string{"a"}, 1, time.Second),
	).Validate(); err == nil {
		t.Error("dependency cycle accepted")
	}
	// Duplicate names in DAG mode.
	if err := mk(
		computeStage("a", nil, 1, time.Second),
		computeStage("a", []string{"a"}, 1, time.Second),
	).Validate(); err == nil {
		t.Error("duplicate stage names accepted in DAG mode")
	}
	// Self-dependency is a cycle.
	if err := mk(
		computeStage("a", []string{"a"}, 1, time.Second),
	).Validate(); err == nil {
		t.Error("self-dependency accepted")
	}
	// Valid diamond.
	if err := mk(
		computeStage("src", nil, 1, time.Second),
		computeStage("l", []string{"src"}, 1, time.Second),
		computeStage("r", []string{"src"}, 1, time.Second),
		computeStage("sink", []string{"l", "r"}, 1, time.Second),
	).Validate(); err != nil {
		t.Errorf("diamond rejected: %v", err)
	}
}

func TestDAGDiamondExecutes(t *testing.T) {
	dev := constDev{units.MBps(1000), units.MBps(1000)}
	app := App{Name: "diamond", Stages: []Stage{
		computeStage("src", nil, 2, 2*time.Second),
		computeStage("l", []string{"src"}, 2, 5*time.Second),
		computeStage("r", []string{"src"}, 2, 7*time.Second),
		computeStage("sink", []string{"l", "r"}, 1, time.Second),
	}}
	res, err := Run(barebones(1, 8, dev), app)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) != 4 {
		t.Fatalf("stages = %d", len(res.Stages))
	}
	// src 2s, then l and r in parallel (7s), then sink 1s = ~10s.
	if got := res.Total.Seconds(); math.Abs(got-10) > 0.5 {
		t.Errorf("diamond total = %.1fs, want ~10", got)
	}
}
