package spark

import (
	"fmt"
	"time"

	"repro/internal/units"
)

// OpKind enumerates the per-task operations the simulator understands.
// They correspond to the RDD access kinds the paper models: HDFS
// read/write, shuffle read/write and persist read/write, plus pure CPU
// computation.
type OpKind int

// Task operation kinds.
const (
	OpCompute OpKind = iota
	OpHDFSRead
	OpHDFSWrite
	OpShuffleRead
	OpShuffleWrite
	OpPersistRead
	OpPersistWrite
	// OpSpillWrite and OpSpillRead are emitted by the simulator's
	// memory layer (never by applications): working-set overflow
	// written to the Local device when a wave outgrows the executor
	// heap, and re-read before the task completes.
	OpSpillWrite
	OpSpillRead
)

var opKindNames = [...]string{
	"Compute", "HDFSRead", "HDFSWrite", "ShuffleRead", "ShuffleWrite",
	"PersistRead", "PersistWrite", "SpillWrite", "SpillRead",
}

// String names the op kind.
func (k OpKind) String() string {
	if k < 0 || int(k) >= len(opKindNames) {
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
	return opKindNames[k]
}

// IsIO reports whether the op moves data to or from a disk.
func (k OpKind) IsIO() bool { return k != OpCompute }

// IsRead reports whether the op reads from a disk.
func (k OpKind) IsRead() bool {
	return k == OpHDFSRead || k == OpShuffleRead || k == OpPersistRead || k == OpSpillRead
}

// IsWrite reports whether the op writes to a disk.
func (k OpKind) IsWrite() bool {
	return k == OpHDFSWrite || k == OpShuffleWrite || k == OpPersistWrite || k == OpSpillWrite
}

// OnLocal reports whether the op targets the Spark Local disk (as
// opposed to the HDFS disk).
func (k OpKind) OnLocal() bool {
	return k == OpShuffleRead || k == OpShuffleWrite ||
		k == OpPersistRead || k == OpPersistWrite ||
		k == OpSpillRead || k == OpSpillWrite
}

// Op is one step of a task. Tasks execute their ops sequentially while
// holding an executor core — I/O does not overlap computation within a
// task, only across tasks, exactly the paper's pipeline model (Fig. 6).
type Op struct {
	Kind OpKind
	// Bytes is the data volume for I/O ops (per task).
	Bytes units.ByteSize
	// ReqSize is the I/O request size seen by the disk; it selects the
	// effective-bandwidth operating point. Zero picks a kind-specific
	// default (see DefaultReqSize).
	ReqSize units.ByteSize
	// StreamLimit is the per-core client-side throughput cap, the paper's
	// T (e.g. 60 MB/s for shuffle read including inline decompression).
	// Zero means the device is the only limit.
	StreamLimit units.Rate
	// CoupledCompute is CPU time interleaved with this op's I/O at
	// request granularity (Spark tasks process each fetched block before
	// pulling the next). The device is free for other tasks during the
	// compute slices. Real Spark exposes the same decomposition as task
	// time minus "blocked time" in its metrics. Only valid on I/O ops.
	CoupledCompute time.Duration
	// Duration is the CPU time for OpCompute.
	Duration time.Duration
}

// Compute builds a pure-CPU op.
func Compute(d time.Duration) Op { return Op{Kind: OpCompute, Duration: d} }

// IO builds an I/O op.
func IO(kind OpKind, bytes, reqSize units.ByteSize, streamLimit units.Rate) Op {
	return Op{Kind: kind, Bytes: bytes, ReqSize: reqSize, StreamLimit: streamLimit}
}

// IOC builds an I/O op with coupled (interleaved) computation.
func IOC(kind OpKind, bytes, reqSize units.ByteSize, streamLimit units.Rate, coupled time.Duration) Op {
	return Op{Kind: kind, Bytes: bytes, ReqSize: reqSize, StreamLimit: streamLimit, CoupledCompute: coupled}
}

// ComputeRate converts the op's coupled compute into a rate (bytes per
// second of CPU-side processing); zero when the op has none.
func (o Op) ComputeRate() units.Rate {
	if o.CoupledCompute <= 0 || o.Bytes <= 0 {
		return 0
	}
	return units.Over(o.Bytes, o.CoupledCompute)
}

// DefaultReqSize returns the request size used when an op does not
// specify one: HDFS ops use the HDFS block size; shuffle and persist ops
// use the full op volume (one sequential chunk), which callers normally
// override with the M×R shuffle math.
func (o Op) DefaultReqSize(blockSize units.ByteSize) units.ByteSize {
	if o.ReqSize > 0 {
		return o.ReqSize
	}
	switch o.Kind {
	case OpHDFSRead, OpHDFSWrite:
		if o.Bytes < blockSize {
			return o.Bytes
		}
		return blockSize
	default:
		return o.Bytes
	}
}

// TaskGroup is a homogeneous set of tasks within a stage. Stages may mix
// groups — e.g. GATK4's BaseRecalibrator runs both HDFS-read filter
// tasks and shuffle-read recalibration tasks in the same stage.
type TaskGroup struct {
	Name  string
	Count int
	Ops   []Op
	// GC, when non-nil, returns extra per-task CPU time as a function of
	// the per-node core count P. It models the JVM garbage-collection
	// pressure the paper observes on GATK4 MarkDuplicate (Section V-A1),
	// which is explicitly outside the analytic model.
	GC func(p int) time.Duration
}

// Bytes sums the group's per-task volume for the given op kind.
func (g TaskGroup) Bytes(kind OpKind) units.ByteSize {
	var total units.ByteSize
	for _, op := range g.Ops {
		if op.Kind == kind {
			total += op.Bytes
		}
	}
	return total
}

// Stage is a set of task groups separated from other stages by shuffle
// boundaries. By default stages run as a linear chain (each barriers on
// the previous one); when any stage in the app lists DependsOn, the DAG
// scheduler runs every stage whose dependencies have completed — as
// Spark's DAG scheduler does for independent branches of the lineage.
type Stage struct {
	Name   string
	Groups []TaskGroup
	// DependsOn names the stages that must complete before this one
	// starts. Only consulted when at least one stage in the app sets it;
	// otherwise the implicit linear chain applies.
	DependsOn []string
}

// Tasks returns the stage's total task count M.
func (s Stage) Tasks() int {
	n := 0
	for _, g := range s.Groups {
		n += g.Count
	}
	return n
}

// TotalBytes sums the stage's cluster-wide volume for an op kind.
func (s Stage) TotalBytes(kind OpKind) units.ByteSize {
	var total units.ByteSize
	for _, g := range s.Groups {
		total += units.ByteSize(int64(g.Count)) * g.Bytes(kind)
	}
	return total
}

// App is a Spark application: an ordered list of stages.
type App struct {
	Name   string
	Stages []Stage
}

// Validate checks the app for structural problems.
func (a App) Validate() error {
	if len(a.Stages) == 0 {
		return fmt.Errorf("spark: app %q has no stages", a.Name)
	}
	if err := a.validateDeps(); err != nil {
		return err
	}
	for si, s := range a.Stages {
		if len(s.Groups) == 0 {
			return fmt.Errorf("spark: app %q stage %d (%s) has no task groups", a.Name, si, s.Name)
		}
		for gi, g := range s.Groups {
			if g.Count <= 0 {
				return fmt.Errorf("spark: %s/%s group %d has non-positive count", a.Name, s.Name, gi)
			}
			if len(g.Ops) == 0 {
				return fmt.Errorf("spark: %s/%s group %d has no ops", a.Name, s.Name, gi)
			}
			for oi, op := range g.Ops {
				switch {
				case op.Kind == OpSpillRead || op.Kind == OpSpillWrite:
					return fmt.Errorf("spark: %s/%s group %d op %d: spill ops are emitted by the memory layer, not by applications", a.Name, s.Name, gi, oi)
				case op.Kind == OpCompute && op.Duration < 0:
					return fmt.Errorf("spark: %s/%s group %d op %d: negative compute", a.Name, s.Name, gi, oi)
				case op.Kind == OpCompute && op.CoupledCompute != 0:
					return fmt.Errorf("spark: %s/%s group %d op %d: coupled compute on a compute op", a.Name, s.Name, gi, oi)
				case op.Kind != OpCompute && op.Bytes < 0:
					return fmt.Errorf("spark: %s/%s group %d op %d: negative bytes", a.Name, s.Name, gi, oi)
				case op.ReqSize < 0:
					return fmt.Errorf("spark: %s/%s group %d op %d: negative request size", a.Name, s.Name, gi, oi)
				case op.CoupledCompute < 0:
					return fmt.Errorf("spark: %s/%s group %d op %d: negative coupled compute", a.Name, s.Name, gi, oi)
				}
			}
		}
	}
	return nil
}

// validateDeps checks the optional stage DAG: unique names, known
// dependency targets, no cycles.
func (a App) validateDeps() error {
	useDAG := false
	for _, s := range a.Stages {
		if len(s.DependsOn) > 0 {
			useDAG = true
			break
		}
	}
	if !useDAG {
		return nil
	}
	byName := map[string]int{}
	for i, s := range a.Stages {
		if _, dup := byName[s.Name]; dup {
			return fmt.Errorf("spark: app %q uses a stage DAG but stage name %q is not unique", a.Name, s.Name)
		}
		byName[s.Name] = i
	}
	for _, s := range a.Stages {
		for _, dep := range s.DependsOn {
			if _, ok := byName[dep]; !ok {
				return fmt.Errorf("spark: stage %q depends on unknown stage %q", s.Name, dep)
			}
		}
	}
	// Cycle check via colouring.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	colour := make([]int, len(a.Stages))
	var visit func(i int) error
	visit = func(i int) error {
		switch colour[i] {
		case grey:
			return fmt.Errorf("spark: stage dependency cycle through %q", a.Stages[i].Name)
		case black:
			return nil
		}
		colour[i] = grey
		for _, dep := range a.Stages[i].DependsOn {
			if err := visit(byName[dep]); err != nil {
				return err
			}
		}
		colour[i] = black
		return nil
	}
	for i := range a.Stages {
		if err := visit(i); err != nil {
			return err
		}
	}
	return nil
}

// ShuffleReadReqSize computes the request size a reducer sees: each
// reducer pulls its slice from every one of the M mapper output files,
// so the block size is reducerBytes / M (paper Section III-C2:
// 27 MB / 973 ≈ 30 KB in GATK4). The result is floored at 1 KB to keep
// degenerate partitionings physical.
func ShuffleReadReqSize(reducerBytes units.ByteSize, mappers int) units.ByteSize {
	if mappers <= 0 {
		return reducerBytes
	}
	rs := reducerBytes / units.ByteSize(mappers)
	if rs < units.KB {
		rs = units.KB
	}
	return rs
}

// HDFSTasks returns the number of map tasks for an HDFS-resident input:
// one per block (paper: M = 122 GB / 128 MB = 973).
func HDFSTasks(input, blockSize units.ByteSize) int {
	if blockSize <= 0 {
		return 1
	}
	n := int((input + blockSize - 1) / blockSize)
	if n < 1 {
		n = 1
	}
	return n
}
