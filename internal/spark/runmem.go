package spark

import (
	"time"

	"repro/internal/units"
)

// The memory layer runs only on the per-task path (coalescable and
// partialEligible both reject Memory.Enabled() configs): heap occupancy
// couples every task on a node to its co-resident wave, so node
// symmetry cannot be assumed.

// reserveMem charges an attempt's working set against its node's heap
// and decides, deterministically, how much of it spills: the overflow
// above the heap, clamped to the task's own set. Counterpart of
// releaseMem, which every attempt exit path calls.
func (r *runner) reserveMem(st *stageState, a *attempt) {
	ws := r.cfg.Memory.TaskWorkingSet(a.g)
	if ws <= 0 {
		return
	}
	a.spill = spillFor(a.nd.resident, ws, r.cfg.Memory.HeapBytes())
	a.nd.resident += ws
	a.memBytes = ws
	if a.nd.resident > r.res.Mem.PeakResident {
		r.res.Mem.PeakResident = a.nd.resident
	}
	if st.res.Mem.PeakResident < a.nd.resident {
		st.res.Mem.PeakResident = a.nd.resident
	}
	if a.spill > 0 {
		st.res.Mem.SpilledTasks++
		r.res.Mem.SpilledTasks++
		st.res.Mem.SpillBytes += a.spill
		r.res.Mem.SpillBytes += a.spill
	}
}

// releaseMem returns an attempt's working-set reservation to its node.
// Safe to call on every exit path: it is a no-op once released or when
// nothing was reserved.
func (r *runner) releaseMem(a *attempt) {
	if a.memBytes > 0 {
		a.nd.resident -= a.memBytes
		a.memBytes = 0
	}
}

// memGate defers f to the end of the node's in-progress GC pause, if
// one is stalling its cores. Reports whether f was deferred.
func (r *runner) memGate(nd *node, f func()) bool {
	if until := nd.gcUntil; r.eng.Now() < until {
		r.eng.At(until, f)
		return true
	}
	return false
}

// execSpill runs one spill write or re-read for an attempt's overflow
// through the regular device path, so the Local curve's request-size
// behavior (and iostat accounting) applies to spill traffic too.
func (r *runner) execSpill(st *stageState, a *attempt, kind OpKind, done func()) {
	op := Op{Kind: kind, Bytes: a.spill, ReqSize: r.cfg.Memory.SpillRequestSize()}
	nd := a.nd
	opStart := r.eng.Now()
	r.execOp(st, nd, op, func() {
		r.accountIO(st, nd, op, r.eng.Now()-opStart, 1)
		done()
	})
}

// memEpilogue runs between an attempt's last op and finish: the spill
// re-read (the overflow must come back from the Local device to emit
// the task's output), then the occupancy-driven GC pause. The pause
// holds this core directly and stalls the node's other cores through
// gcUntil + memGate. Occupancy is sampled before the release — the
// collection happens under the completing wave's full pressure.
func (r *runner) memEpilogue(st *stageState, a *attempt, done func()) {
	fin := func() {
		pause := r.gcPause(st, a)
		r.releaseMem(a)
		if pause <= 0 {
			done()
			return
		}
		until := r.eng.Now() + pause
		if until > a.nd.gcUntil {
			a.nd.gcUntil = until
		}
		st.res.Mem.GCPauses++
		r.res.Mem.GCPauses++
		st.res.Mem.GCStall += pause
		r.res.Mem.GCStall += pause
		r.eng.After(pause, done)
	}
	if a.spill > 0 && !a.task.done {
		r.execSpill(st, a, OpSpillRead, fin)
		return
	}
	fin()
}

// gcPause returns the stop-the-world pause a completing attempt
// triggers at its node's current heap occupancy: zero below the
// threshold, a quadratic ramp above it, spread ±15% by a seeded
// deterministic draw (same splitmix64 family as jitter and faults).
func (r *runner) gcPause(st *stageState, a *attempt) time.Duration {
	heap := r.cfg.Memory.HeapBytes()
	if heap <= 0 || a.memBytes == 0 {
		return 0
	}
	occ := float64(a.nd.resident) / float64(heap)
	q := r.cfg.Memory.gcFraction(occ)
	if q <= 0 {
		return 0
	}
	u := r.hash01(st.idx, a.taskIdx, saltGC)
	spread := 1 - memGCSpread + 2*memGCSpread*u
	return units.SecDuration(q * spread * r.cfg.Memory.GCPauseMax().Seconds())
}
