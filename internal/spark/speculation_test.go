package spark

import (
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/units"
)

func stragglerConfig(frac, slowdown float64, speculate bool) ClusterConfig {
	cfg := DefaultTestbed(4, 8, disk.NewSSD(), disk.NewSSD())
	cfg.StragglerFraction = frac
	cfg.StragglerSlowdown = slowdown
	cfg.Speculation = speculate
	cfg.SpeculationMultiplier = 1.5
	return cfg
}

func computeApp(tasks int, d time.Duration) App {
	return App{Name: "straggle", Stages: []Stage{{
		Name:   "s",
		Groups: []TaskGroup{{Name: "g", Count: tasks, Ops: []Op{Compute(d)}}},
	}}}
}

func TestStragglersSlowTheTail(t *testing.T) {
	app := computeApp(256, 10*time.Second)
	clean, err := Run(stragglerConfig(0, 0, false), app)
	if err != nil {
		t.Fatal(err)
	}
	straggly, err := Run(stragglerConfig(0.03, 5, false), app)
	if err != nil {
		t.Fatal(err)
	}
	if straggly.Total.Seconds() < clean.Total.Seconds()*1.2 {
		t.Errorf("3%% of 5x stragglers only moved %.1fs -> %.1fs; tail should hurt",
			clean.Total.Seconds(), straggly.Total.Seconds())
	}
}

func TestSpeculationRecoversStragglerTail(t *testing.T) {
	app := computeApp(256, 10*time.Second)
	without, err := Run(stragglerConfig(0.03, 5, false), app)
	if err != nil {
		t.Fatal(err)
	}
	with, err := Run(stragglerConfig(0.03, 5, true), app)
	if err != nil {
		t.Fatal(err)
	}
	if with.Total >= without.Total {
		t.Errorf("speculation did not help: %v vs %v", with.Total, without.Total)
	}
	// Speculation should claw back most of the tail: the stage is
	// compute-bound, so the re-run copy finishes near the median.
	clean, err := Run(stragglerConfig(0, 0, false), app)
	if err != nil {
		t.Fatal(err)
	}
	excessWithout := without.Total - clean.Total
	excessWith := with.Total - clean.Total
	if excessWith.Seconds() > 0.6*excessWithout.Seconds() {
		t.Errorf("speculation recovered too little: excess %v -> %v", excessWithout, excessWith)
	}
}

func TestSpeculationConservesWork(t *testing.T) {
	// Every logical task completes exactly once even when copies race.
	app := computeApp(100, 5*time.Second)
	res, err := Run(stragglerConfig(0.1, 4, true), app)
	if err != nil {
		t.Fatal(err)
	}
	s := res.MustStage("s")
	if s.Tasks != 100 {
		t.Errorf("tasks = %d", s.Tasks)
	}
	// Group task-time accounting covers exactly the winners.
	if got := s.Groups[0].Count; got != 100 {
		t.Errorf("group count = %d", got)
	}
}

func TestSpeculationOffByDefault(t *testing.T) {
	cfg := DefaultTestbed(2, 4, disk.NewSSD(), disk.NewSSD())
	if cfg.Speculation || cfg.StragglerFraction != 0 {
		t.Error("stragglers/speculation must be opt-in")
	}
}

func TestStragglerValidation(t *testing.T) {
	cfg := DefaultTestbed(2, 4, disk.NewSSD(), disk.NewSSD())
	cfg.StragglerFraction = 1.5
	if err := cfg.Validate(); err == nil {
		t.Error("fraction > 1 accepted")
	}
	cfg.StragglerFraction = 0.1
	cfg.StragglerSlowdown = 0.5
	if err := cfg.Validate(); err == nil {
		t.Error("slowdown < 1 accepted")
	}
	cfg.StragglerSlowdown = 3
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid straggler config rejected: %v", err)
	}
}

// TestSpeculationWithIO: racing attempts that include disk flows must
// not corrupt the simulation (the loser's flow completes harmlessly).
func TestSpeculationWithIO(t *testing.T) {
	app := App{Name: "io", Stages: []Stage{{
		Name: "s",
		Groups: []TaskGroup{{
			Name: "g", Count: 64,
			Ops: []Op{
				IOC(OpShuffleRead, 27*units.MB, 30*units.KB, units.MBps(60), 4*time.Second),
			},
		}},
	}}}
	cfg := stragglerConfig(0.05, 5, true)
	res, err := Run(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total <= 0 {
		t.Fatal("no progress")
	}
}
