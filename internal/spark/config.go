// Package spark is a flow-level discrete-event simulator of a Spark
// cluster: slave nodes with executor cores, an HDFS disk and a Spark
// Local disk each, a 10 Gb/s NIC, a stage/task scheduler with FIFO core
// assignment, shuffle write/read with the M×R small-block access pattern,
// RDD persist to local storage, and an optional GC model.
//
// It plays the role of the physical testbed in the paper: every
// "measured"/"exp" series in the reproduced figures comes from this
// simulator, while the "model" series comes from the analytical model in
// internal/core calibrated against profiling runs of this simulator —
// the same relationship the paper has between its cluster and its model.
package spark

import (
	"fmt"

	"repro/internal/disk"
	"repro/internal/units"
)

// ClusterConfig describes the simulated cluster, mirroring the paper's
// Tables I–III.
type ClusterConfig struct {
	// Slaves is N, the number of worker nodes (the master is not
	// simulated; it only runs the driver).
	Slaves int
	// ExecutorCores is P, the number of launched executor cores per node.
	ExecutorCores int
	// ExecutorMemory is SPARK_WORKER_MEMORY per node (90 GB on the
	// paper's testbed).
	ExecutorMemory units.ByteSize
	// StorageFraction is the share of executor memory usable for cached
	// RDDs (the paper assumes 40%).
	StorageFraction float64
	// HDFSDisk backs the HDFS data directory on every node.
	HDFSDisk disk.Device
	// LocalDisk backs spark.local.dir on every node.
	LocalDisk disk.Device
	// NICRate is the per-node network bandwidth (10 Gb/s on the testbed).
	NICRate units.Rate
	// HDFSBlockSize is dfs.blocksize (128 MB).
	HDFSBlockSize units.ByteSize
	// HDFSReplication is dfs.replication (2).
	HDFSReplication int
	// ModelNetwork enables the NIC flows for shuffle reads and HDFS
	// replication. The paper argues the 10 Gb/s network is never the
	// bottleneck; keeping the flows in the simulation lets us check that
	// claim rather than assume it.
	ModelNetwork bool
	// TaskLaunchOverhead is the scheduler+JVM overhead added to every
	// task. It is what the model's δ terms absorb.
	TaskLaunchOverhead DurationParam
	// StageSetupOverhead is the per-stage serial time (driver planning,
	// broadcast), also absorbed by δ_scale.
	StageSetupOverhead DurationParam
	// ComputeJitter is the relative spread of per-task compute times
	// (±ComputeJitter, deterministic per task index and Seed). Real task
	// durations vary — data skew, JIT, GC — which desynchronises task
	// waves so I/O and computation of different tasks overlap, the
	// pipeline behaviour the paper's Fig. 6 describes. Zero disables.
	ComputeJitter float64
	// Seed varies the jitter pattern; different seeds play the role of
	// the paper's five repeated measurement runs.
	Seed uint64
	// StragglerFraction injects slow tasks: this fraction of tasks run
	// their compute StragglerSlowdown times slower (deterministic per
	// seed). Real clusters always have a straggler tail — it is one of
	// the three factors (network, disk, stragglers) Ousterhout et al.
	// [5] decompose. Zero disables.
	StragglerFraction float64
	// StragglerSlowdown is the compute multiplier for straggler tasks
	// (default 3 when stragglers are enabled).
	StragglerSlowdown float64
	// Speculation enables Spark-style speculative execution: when a
	// task runs longer than SpeculationMultiplier times the median
	// completed task time of its stage, a copy launches on another node
	// and the first finisher wins.
	Speculation bool
	// SpeculationMultiplier is spark.speculation.multiplier (default
	// 1.5).
	SpeculationMultiplier float64
	// Faults injects deterministic task failures, node crashes and
	// shuffle-fetch failures with Spark-faithful recovery (see
	// FaultConfig). The zero value disables the fault layer entirely.
	Faults FaultConfig
	// Memory enables per-node executor-heap accounting: working-set
	// reservation per task, spill to the Local device when a wave's
	// resident set exceeds the heap, and occupancy-driven GC stalls
	// (see MemoryConfig). The zero value disables the memory layer
	// entirely. A memory-enabled run always takes the per-task
	// simulation path (heap occupancy couples nodes through task
	// placement, so wave coalescing does not apply).
	Memory MemoryConfig
	// DisableCoalescing forces the per-task simulation path even when a
	// run qualifies for wave coalescing (see docs/PERF.md). Coalescing
	// is output-preserving, so this knob exists only for A/B equivalence
	// tests and performance debugging.
	DisableCoalescing bool
}

// DurationParam is a plain duration in seconds used in configs so zero
// values read naturally in literals.
type DurationParam float64

// Seconds returns the parameter value in seconds.
func (d DurationParam) Seconds() float64 { return float64(d) }

// DefaultTestbed returns the paper's physical cluster defaults
// (Tables I and II) with the given slave count, core count and disks.
func DefaultTestbed(slaves, cores int, hdfs, local disk.Device) ClusterConfig {
	return ClusterConfig{
		Slaves:             slaves,
		ExecutorCores:      cores,
		ExecutorMemory:     90 * units.GB,
		StorageFraction:    0.4,
		HDFSDisk:           hdfs,
		LocalDisk:          local,
		NICRate:            units.MBps(10 * 1000 / 8), // 10 Gb/s ≈ 1220 MiB/s
		HDFSBlockSize:      128 * units.MB,
		HDFSReplication:    2,
		ModelNetwork:       true,
		TaskLaunchOverhead: 0.05,
		StageSetupOverhead: 2.0,
		ComputeJitter:      0.15,
	}
}

// Validate checks the configuration for inconsistencies.
func (c ClusterConfig) Validate() error {
	switch {
	case c.Slaves <= 0:
		return fmt.Errorf("spark: Slaves must be positive, got %d", c.Slaves)
	case c.ExecutorCores <= 0:
		return fmt.Errorf("spark: ExecutorCores must be positive, got %d", c.ExecutorCores)
	case c.ExecutorMemory < 0:
		return fmt.Errorf("spark: negative ExecutorMemory")
	case c.StorageFraction < 0 || c.StorageFraction > 1:
		return fmt.Errorf("spark: StorageFraction %v outside [0,1]", c.StorageFraction)
	case c.HDFSDisk == nil:
		return fmt.Errorf("spark: HDFSDisk is nil")
	case c.LocalDisk == nil:
		return fmt.Errorf("spark: LocalDisk is nil")
	case c.HDFSBlockSize <= 0:
		return fmt.Errorf("spark: HDFSBlockSize must be positive")
	case c.HDFSReplication <= 0:
		return fmt.Errorf("spark: HDFSReplication must be positive")
	case c.ModelNetwork && c.NICRate <= 0:
		return fmt.Errorf("spark: ModelNetwork requires positive NICRate")
	case c.ComputeJitter < 0 || c.ComputeJitter >= 1:
		return fmt.Errorf("spark: ComputeJitter %v outside [0,1)", c.ComputeJitter)
	case c.StragglerFraction < 0 || c.StragglerFraction >= 1:
		return fmt.Errorf("spark: StragglerFraction %v outside [0,1)", c.StragglerFraction)
	case c.StragglerFraction > 0 && c.StragglerSlowdown < 1:
		return fmt.Errorf("spark: StragglerSlowdown %v must be >= 1", c.StragglerSlowdown)
	}
	// Device sanity: a device reporting non-positive bandwidth (e.g. a
	// zero-sized virtual disk) would later trip the DES invariant panic
	// inside internal/sim. Surface it here as an input error instead.
	for _, d := range []struct {
		name string
		dev  disk.Device
	}{{"HDFSDisk", c.HDFSDisk}, {"LocalDisk", c.LocalDisk}} {
		for _, rs := range []units.ByteSize{units.KB, c.HDFSBlockSize} {
			if d.dev.ReadBandwidth(rs) <= 0 {
				return fmt.Errorf("spark: %s delivers no read bandwidth at %v requests (zero-sized or misconfigured device?)", d.name, rs)
			}
			if d.dev.WriteBandwidth(rs) <= 0 {
				return fmt.Errorf("spark: %s delivers no write bandwidth at %v requests (zero-sized or misconfigured device?)", d.name, rs)
			}
		}
	}
	if err := c.Memory.Validate(); err != nil {
		return err
	}
	return c.Faults.Validate(c.Slaves)
}

// StorageMemory returns the cluster-wide memory available for cached
// RDDs: N × executor memory × storage fraction.
func (c ClusterConfig) StorageMemory() units.ByteSize {
	return units.ByteSize(float64(c.Slaves) * float64(c.ExecutorMemory) * c.StorageFraction)
}

// FitsInStorage reports whether an RDD with the given in-memory
// (deserialised) footprint can be fully cached. RDDs that do not fit are
// persisted to Spark Local, the paper's Section III-B2 scenario.
func (c ClusterConfig) FitsInStorage(memFootprint units.ByteSize) bool {
	return memFootprint <= c.StorageMemory()
}

// WithCores returns a copy with a different P; used by core sweeps.
func (c ClusterConfig) WithCores(p int) ClusterConfig {
	c.ExecutorCores = p
	return c
}

// WithDisks returns a copy with different devices; used by disk-config
// sweeps (Table III's four hybrid configurations).
func (c ClusterConfig) WithDisks(hdfs, local disk.Device) ClusterConfig {
	c.HDFSDisk = hdfs
	c.LocalDisk = local
	return c
}
