package spark

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/disk"
)

// FuzzFaultyCoalesce drives randomized degraded-mode configurations —
// fault rates, straggler fractions, jitter, seeds, speculation knobs
// and cluster shapes — through the default path and the
// DisableCoalescing per-task oracle, asserting the Results (or the
// fatal errors) are deeply equal. This is the tentpole's safety net:
// whatever the partial-coalescing planner decides (coalesce, bail at
// runtime, or fall through to per-task), the outcome must be
// byte-identical.
//
// The seed corpus covers the paper's degraded-measurement regimes:
// fig-13-style task-failure sweeps, fig-14-style fetch-failure /
// recompute runs, and fig-15-style straggler + speculation studies.
func FuzzFaultyCoalesce(f *testing.F) {
	// slaves, cores, mapTasks, failP, fetchP, stragF, slow, jitter, spec, specMult, seed, fseed
	f.Add(8, 4, 128, 0.01, 0.0, 0.0, 0.0, 0.0, false, 0.0, uint64(42), uint64(7))   // fig-13: task failures
	f.Add(8, 4, 128, 0.005, 0.02, 0.0, 0.0, 0.0, false, 0.0, uint64(42), uint64(3)) // fig-14: fetch failures + recompute
	f.Add(8, 4, 128, 0.0, 0.0, 0.03, 5.0, 0.0, true, 1.5, uint64(42), uint64(0))    // fig-15: stragglers + speculation
	f.Add(6, 2, 120, 0.01, 0.01, 0.02, 4.0, 0.0, true, 2.0, uint64(1), uint64(11))  // everything on
	f.Add(4, 2, 30, 0.02, 0.0, 0.0, 0.0, 0.15, false, 0.0, uint64(9), uint64(5))    // jittered: per-task regime
	f.Add(3, 1, 33, 0.1, 0.05, 0.1, 6.0, 0.0, true, 1.2, uint64(13), uint64(17))    // indivisible counts, high rates
	f.Fuzz(func(t *testing.T, slaves, cores, mapTasks int,
		failP, fetchP, stragF, slow, jitter float64,
		spec bool, specMult float64, seed, fseed uint64) {
		mod := func(v, lo, hi int) int {
			if v < 0 {
				v = -v
			}
			if v < 0 { // math.MinInt
				v = 0
			}
			return lo + v%(hi-lo+1)
		}
		frac := func(v, hi float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return 0
			}
			return math.Mod(v, hi)
		}
		slaves = mod(slaves, 1, 10)
		cores = mod(cores, 1, 4)
		mapTasks = mod(mapTasks, 1, 160)

		ssd := disk.NewSSD()
		cfg := DefaultTestbed(slaves, cores, ssd, ssd)
		cfg.Seed = seed
		cfg.ComputeJitter = frac(jitter, 0.3)
		cfg.Speculation = spec
		cfg.SpeculationMultiplier = frac(specMult, 4)
		cfg.StragglerFraction = frac(stragF, 0.15)
		cfg.StragglerSlowdown = 1 + frac(slow, 8)
		cfg.Faults = FaultConfig{
			TaskFailureProb:         frac(failP, 0.12),
			ShuffleFetchFailureProb: frac(fetchP, 0.12),
			RetryBackoff:            0.05,
			Seed:                    fseed,
		}
		if err := cfg.Validate(); err != nil {
			t.Skipf("config rejected: %v", err)
		}
		app := scaleAppSized(slaves, cores, mapTasks)

		got, gotErr := Run(cfg, app)
		ref := cfg
		ref.DisableCoalescing = true
		want, wantErr := Run(ref, app)

		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("error mismatch: default path %v, per-task %v", gotErr, wantErr)
		}
		if gotErr != nil {
			if !reflect.DeepEqual(gotErr, wantErr) {
				t.Fatalf("errors diverge:\n got %#v\nwant %#v", gotErr, wantErr)
			}
			return
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("default path diverges from per-task replay:\n got %+v\nwant %+v", got, want)
		}
	})
}
