package spark

// Scale benchmarks: the production-size input the ROADMAP aims at
// (64 nodes × 32 cores, >100k tasks), measured with wave coalescing on
// and off. The coalesced/pertask pair is what docs/BENCH_simcore.json
// gates — refreshing the baseline is described in docs/PERF.md.
//
//	go test -bench BenchmarkSimScale -benchmem ./internal/spark

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/units"
)

// scaleApp is a synthetic two-stage map/reduce application sized like a
// production batch job: scaleTasks map tasks reading HDFS blocks and
// writing shuffle output, and one reduce wave pulling it back in.
func scaleApp(slaves, cores int) App {
	mapTasks := scaleTasks
	reduceTasks := slaves * cores
	perMap := 32 * units.MB
	perReduce := units.ByteSize(int64(mapTasks) * int64(perMap) / int64(reduceTasks))
	return App{
		Name: "scale",
		Stages: []Stage{
			{Name: "map", Groups: []TaskGroup{{
				Name:  "map",
				Count: mapTasks,
				Ops: []Op{
					IOC(OpHDFSRead, perMap, 0, 0, 40*time.Millisecond),
					Compute(120 * time.Millisecond),
					IO(OpShuffleWrite, perMap/2, 0, 0),
				},
			}}},
			{Name: "reduce", Groups: []TaskGroup{{
				Name:  "reduce",
				Count: reduceTasks,
				Ops: []Op{
					IOC(OpShuffleRead, perReduce/2, ShuffleReadReqSize(perReduce/2, mapTasks), units.MBps(60), 200*time.Millisecond),
					Compute(500 * time.Millisecond),
					IO(OpHDFSWrite, perReduce/4, 0, 0),
				},
			}}},
		},
	}
}

const (
	scaleSlaves = 64
	scaleCores  = 32
	scaleTasks  = 102_400 // 64 nodes × 32 cores × 50 full waves
)

func benchSimScale(b *testing.B, disableCoalescing bool) {
	ssd := disk.NewSSD()
	cfg := DefaultTestbed(scaleSlaves, scaleCores, ssd, ssd)
	cfg.ComputeJitter = 0 // homogeneous: the coalescing-eligible regime
	cfg.DisableCoalescing = disableCoalescing
	app := scaleApp(scaleSlaves, scaleCores)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg, app)
		if err != nil {
			b.Fatal(err)
		}
		if res.Stages[0].Tasks != scaleTasks {
			b.Fatalf("map stage ran %d tasks", res.Stages[0].Tasks)
		}
	}
}

// BenchmarkSimScale is the headline scale benchmark (coalesced path).
func BenchmarkSimScale(b *testing.B) { benchSimScale(b, false) }

// BenchmarkSimScalePerTask is the same input forced down the per-task
// path — the pre-optimisation cost, kept runnable so the coalescing
// speedup stays measurable instead of historical.
func BenchmarkSimScalePerTask(b *testing.B) { benchSimScale(b, true) }

// BenchmarkSimMedium is a mid-size fallback-path benchmark (jittered,
// so never coalesced): it tracks the per-task path's own regressions,
// which the scale benchmark would hide behind coalescing.
func BenchmarkSimMedium(b *testing.B) {
	ssd := disk.NewSSD()
	cfg := DefaultTestbed(8, 8, ssd, ssd) // default jitter 0.15
	app := scaleAppSized(8, 8, 6400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, app); err != nil {
			b.Fatal(err)
		}
	}
}

// scaleAppSized is scaleApp with an explicit map-task count.
func scaleAppSized(slaves, cores, mapTasks int) App {
	app := scaleApp(slaves, cores)
	app.Stages[0].Groups[0].Count = mapTasks
	return app
}

// faultScaleConfig is the degraded-mode scale input: the production
// 64×32×100k job with faults, speculation and stragglers all enabled,
// at rates low enough that most nodes draw no degradation event — the
// partial-coalescing regime docs/PERF.md describes. The probabilities
// are per-attempt, so ~2 task failures, ~2 stragglers and a fetch
// failure or two are expected across the run.
func faultScaleConfig() (ClusterConfig, App) {
	ssd := disk.NewSSD()
	cfg := DefaultTestbed(scaleSlaves, scaleCores, ssd, ssd)
	cfg.ComputeJitter = 0
	cfg.Seed = 42
	cfg.Speculation = true
	cfg.StragglerFraction = 2e-5
	cfg.StragglerSlowdown = 3
	cfg.Faults = FaultConfig{
		TaskFailureProb:         2e-5,
		ShuffleFetchFailureProb: 1e-4,
		RetryBackoff:            0.1,
		Seed:                    7,
	}
	return cfg, scaleApp(scaleSlaves, scaleCores)
}

// BenchmarkSimFaultScale is the degraded-mode headline benchmark: the
// docs/BENCH_simfault.json baseline gates it. Faults, speculation and
// stragglers force the simulator off the fully-symmetric fast path, so
// this prices the clean-node partial-coalescing + zero-alloc fallback
// machinery that resilience and chaos campaigns live on.
func BenchmarkSimFaultScale(b *testing.B) {
	cfg, app := faultScaleConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg, app)
		if err != nil {
			b.Fatal(err)
		}
		if res.Faults.TaskFailures == 0 {
			b.Fatal("benchmark config must inject at least one task failure")
		}
	}
}

// TestScaleAppCoalesces pins the benchmark's premise: the scale config
// qualifies for coalescing, and both paths produce identical Results
// even at the 64×32×100k production size.
func TestScaleAppCoalesces(t *testing.T) {
	ssd := disk.NewSSD()
	cfg := DefaultTestbed(scaleSlaves, scaleCores, ssd, ssd)
	cfg.ComputeJitter = 0
	app := scaleApp(scaleSlaves, scaleCores)
	if !coalescable(cfg, app) {
		t.Fatal("scale benchmark config must be coalescable")
	}
	a, err := Run(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DisableCoalescing = true
	b, err := Run(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("paths disagree at production scale:\ncoalesced: %+v\nper-task:  %+v", a, b)
	}
}

// BenchmarkSimMemSpill is the memory layer's hot path: the mid-size
// jittered input with a heap small enough that every wave spills and
// collects, so each task pays reservation accounting, spill I/O through
// the Local device and a seeded GC stall on top of the fallback path
// BenchmarkSimMedium prices.
func BenchmarkSimMemSpill(b *testing.B) {
	ssd := disk.NewSSD()
	cfg := DefaultTestbed(8, 8, ssd, ssd) // default jitter 0.15
	cfg.Memory = MemoryConfig{HeapGB: 0.5}
	app := scaleAppSized(8, 8, 6400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg, app)
		if err != nil {
			b.Fatal(err)
		}
		if res.Mem.SpilledTasks == 0 {
			b.Fatal("benchmark config must exercise the spill path")
		}
	}
}
