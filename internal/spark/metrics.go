package spark

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/units"
)

// IOStat aggregates one op kind's I/O over a stage, cluster-wide. It is
// the simulator's equivalent of what the paper extracts from the Spark
// event log plus iostat.
type IOStat struct {
	// Bytes is the total volume moved (including HDFS replication
	// amplification on writes).
	Bytes units.ByteSize
	// Ops is the number of task-level operations executed.
	Ops int
	// Time is the summed per-task wall time spent in the op.
	Time time.Duration
	// Requests estimates the number of device-level requests,
	// Σ bytes/reqSize; Bytes/Requests is the iostat-style average request
	// size.
	Requests float64
}

// AvgReqSize returns the average device request size for the op kind.
func (s IOStat) AvgReqSize() units.ByteSize {
	if s.Requests <= 0 {
		return 0
	}
	return units.ByteSize(float64(s.Bytes) / s.Requests)
}

// AvgOpTime returns the mean per-task duration of the op.
func (s IOStat) AvgOpTime() time.Duration {
	if s.Ops == 0 {
		return 0
	}
	return s.Time / time.Duration(s.Ops)
}

// OpStat records the execution of one op slot (by position) of a task
// group: total time and bytes across the group's tasks.
type OpStat struct {
	Kind  OpKind
	Time  time.Duration
	Bytes units.ByteSize
	// Coupled is the summed interleaved CPU time of the op (what real
	// Spark reports as task time minus blocked time).
	Coupled time.Duration
	Count   int
}

// AvgCoupled returns the mean coupled compute per task.
func (s OpStat) AvgCoupled() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Coupled / time.Duration(s.Count)
}

// AvgTime returns the mean duration of this op across the group's tasks.
func (s OpStat) AvgTime() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Time / time.Duration(s.Count)
}

// GroupResult is the per-task-group accounting of a stage.
type GroupResult struct {
	Name          string
	Count         int
	TotalTaskTime time.Duration
	// OpTimes has one entry per op in the group's op list, in order,
	// plus a trailing entry for GC time when the group has a GC model.
	OpTimes []OpStat
}

// AvgTaskTime returns the mean end-to-end task duration (the model's
// t_avg when measured without I/O contention).
func (g GroupResult) AvgTaskTime() time.Duration {
	if g.Count == 0 {
		return 0
	}
	return g.TotalTaskTime / time.Duration(g.Count)
}

// StageResult is the simulator's measurement of one stage.
type StageResult struct {
	Name     string
	Start    time.Duration
	End      time.Duration
	Tasks    int
	Groups   []GroupResult
	IO       map[OpKind]IOStat
	NetBytes units.ByteSize
	// HDFSBusy and LocalBusy are the summed device busy times across
	// nodes during the stage; divided by N·duration they give the
	// utilisation that explains which stages are device-bound.
	HDFSBusy  time.Duration
	LocalBusy time.Duration
	// Faults records the failures injected while the stage was active
	// and their recoveries. Recompute I/O performed on behalf of a fetch
	// failure is charged to this (consumer) stage's IO stats.
	Faults FaultStats
	// Mem records spill and GC activity while the stage was active.
	// All fields are zero when the memory layer is disabled.
	Mem MemStats
}

// HDFSUtil returns the stage's average HDFS-disk utilisation across
// the cluster (0..1).
func (s StageResult) HDFSUtil(slaves int) float64 {
	return util(s.HDFSBusy, s.Duration(), slaves)
}

// LocalUtil returns the stage's average Spark-Local-disk utilisation.
func (s StageResult) LocalUtil(slaves int) float64 {
	return util(s.LocalBusy, s.Duration(), slaves)
}

func util(busy, dur time.Duration, slaves int) float64 {
	if dur <= 0 || slaves <= 0 {
		return 0
	}
	return busy.Seconds() / (dur.Seconds() * float64(slaves))
}

// Duration returns the stage wall-clock time.
func (s StageResult) Duration() time.Duration { return s.End - s.Start }

// Result is a full application run measurement.
type Result struct {
	App    string
	Slaves int
	Cores  int
	Stages []StageResult
	// Total is the application wall-clock time, Σ stage durations plus
	// inter-stage gaps (none in this simulator beyond stage setup).
	Total time.Duration
	// CoreSeconds is the integral of busy cores over time, for cloud
	// cost accounting.
	CoreSeconds float64
	// Faults aggregates fault activity across the whole run. All fields
	// are zero when the fault layer is disabled.
	Faults FaultStats
	// Mem aggregates memory-layer activity (spilled tasks, spill
	// volume, GC stalls, peak resident set) across the whole run. All
	// fields are zero when the memory layer is disabled.
	Mem MemStats
}

// Stage returns the named stage's result, or false.
func (r *Result) Stage(name string) (StageResult, bool) {
	for _, s := range r.Stages {
		if s.Name == name {
			return s, true
		}
	}
	return StageResult{}, false
}

// MustStage is Stage for tests and benches; it panics when absent.
func (r *Result) MustStage(name string) StageResult {
	s, ok := r.Stage(name)
	if !ok {
		panic(fmt.Sprintf("spark: no stage %q in result for %s", name, r.App))
	}
	return s
}

// WriteTo renders a per-stage summary table.
func (r *Result) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	tw := tabwriter.NewWriter(cw, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "# %s: N=%d P=%d total=%s\n", r.App, r.Slaves, r.Cores, fmtMin(r.Total))
	fmt.Fprintln(tw, "stage\ttime\ttasks\thdfsR\tshufW\tshufR\tpersR\tpersW\thdfsW\thdfs%\tlocal%")
	for _, s := range r.Stages {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%v\t%v\t%v\t%v\t%v\t%v\t%.0f%%\t%.0f%%\n",
			s.Name, fmtMin(s.Duration()), s.Tasks,
			s.IO[OpHDFSRead].Bytes, s.IO[OpShuffleWrite].Bytes,
			s.IO[OpShuffleRead].Bytes, s.IO[OpPersistRead].Bytes,
			s.IO[OpPersistWrite].Bytes, s.IO[OpHDFSWrite].Bytes,
			100*s.HDFSUtil(r.Slaves), 100*s.LocalUtil(r.Slaves))
	}
	if err := tw.Flush(); err != nil {
		return cw.n, err
	}
	if f := r.Faults; f.Any() {
		fmt.Fprintf(cw, "# faults: %d failed attempts (%d node-lost, %d fetch), %d retries, %d recomputes, %d nodes lost, %d blacklisted\n",
			f.TaskFailures, f.LostAttempts, f.FetchFailures, f.Retries,
			f.Recomputes, f.NodesLost, f.NodesBlacklisted)
	}
	if m := r.Mem; m.Any() {
		fmt.Fprintf(cw, "# memory: %d spilled tasks, %v spilled, %d GC pauses (%s stalled), peak resident %v/node\n",
			m.SpilledTasks, m.SpillBytes, m.GCPauses, m.GCStall, m.PeakResident)
	}
	return cw.n, nil
}

func fmtMin(d time.Duration) string {
	return fmt.Sprintf("%.1fmin", d.Minutes())
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
