package spark

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/units"
)

// constDev is a request-size-independent device for analytic tests.
type constDev struct {
	read, write units.Rate
}

func (c constDev) Name() string                             { return "const" }
func (c constDev) Kind() disk.Type                          { return disk.SSD }
func (c constDev) ReadBandwidth(units.ByteSize) units.Rate  { return c.read }
func (c constDev) WriteBandwidth(units.ByteSize) units.Rate { return c.write }

func barebones(slaves, cores int, dev disk.Device) ClusterConfig {
	cfg := DefaultTestbed(slaves, cores, dev, dev)
	cfg.TaskLaunchOverhead = 0
	cfg.StageSetupOverhead = 0
	cfg.ModelNetwork = false
	cfg.ComputeJitter = 0
	return cfg
}

func TestValidate(t *testing.T) {
	dev := constDev{units.MBps(100), units.MBps(100)}
	good := barebones(2, 4, dev)
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []ClusterConfig{
		{}, // everything zero
		func() ClusterConfig { c := good; c.Slaves = 0; return c }(),
		func() ClusterConfig { c := good; c.ExecutorCores = -1; return c }(),
		func() ClusterConfig { c := good; c.StorageFraction = 1.5; return c }(),
		func() ClusterConfig { c := good; c.HDFSDisk = nil; return c }(),
		func() ClusterConfig { c := good; c.HDFSBlockSize = 0; return c }(),
		func() ClusterConfig { c := good; c.HDFSReplication = 0; return c }(),
		func() ClusterConfig { c := good; c.ModelNetwork = true; c.NICRate = 0; return c }(),
		func() ClusterConfig { c := good; c.ComputeJitter = 1.5; return c }(),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestAppValidate(t *testing.T) {
	if err := (App{Name: "x"}).Validate(); err == nil {
		t.Error("empty app accepted")
	}
	app := App{Name: "x", Stages: []Stage{{Name: "s"}}}
	if err := app.Validate(); err == nil {
		t.Error("stage without groups accepted")
	}
	app.Stages[0].Groups = []TaskGroup{{Name: "g", Count: 0, Ops: []Op{Compute(time.Second)}}}
	if err := app.Validate(); err == nil {
		t.Error("zero-count group accepted")
	}
	app.Stages[0].Groups[0].Count = 1
	if err := app.Validate(); err != nil {
		t.Errorf("good app rejected: %v", err)
	}
	app.Stages[0].Groups[0].Ops = []Op{Compute(-time.Second)}
	if err := app.Validate(); err == nil {
		t.Error("negative compute accepted")
	}
}

func TestComputeOnlyStageScalesWithCores(t *testing.T) {
	// M tasks of pure compute: t = ceil-ish(M/(N*P)) * t_task.
	dev := constDev{units.MBps(1000), units.MBps(1000)}
	app := App{Name: "compute", Stages: []Stage{{
		Name: "c",
		Groups: []TaskGroup{{
			Name: "g", Count: 120,
			Ops: []Op{Compute(10 * time.Second)},
		}},
	}}}
	for _, tc := range []struct {
		n, p    int
		wantSec float64
	}{
		{1, 1, 1200}, {1, 12, 100}, {3, 4, 100}, {2, 60, 10}, {4, 30, 10},
	} {
		res, err := Run(barebones(tc.n, tc.p, dev), app)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Total.Seconds(); math.Abs(got-tc.wantSec) > 0.01 {
			t.Errorf("N=%d P=%d: total=%.2fs want %.0fs", tc.n, tc.p, got, tc.wantSec)
		}
	}
}

func TestPartialLastBatch(t *testing.T) {
	// 10 tasks on 4 cores: batches of 4,4,2 -> 3 * t_task.
	dev := constDev{units.MBps(1000), units.MBps(1000)}
	app := App{Name: "c", Stages: []Stage{{
		Name:   "c",
		Groups: []TaskGroup{{Name: "g", Count: 10, Ops: []Op{Compute(5 * time.Second)}}},
	}}}
	res, err := Run(barebones(1, 4, dev), app)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Total.Seconds(); math.Abs(got-15) > 0.01 {
		t.Errorf("total=%.2fs want 15s", got)
	}
}

// TestFig6Phases reproduces the paper's Fig. 6 toy example: T = 60 MB/s
// per core, BW = 120 MB/s, λ = 4 (task = I/O + 3x compute), so b = 2 and
// B = 8.
func TestFig6Phases(t *testing.T) {
	dev := constDev{units.MBps(120), units.MBps(120)}
	const taskIOBytes = 60 * units.MB // 1s of I/O at T
	mkApp := func(m int) App {
		return App{Name: "fig6", Stages: []Stage{{
			Name: "s",
			Groups: []TaskGroup{{
				Name:  "g",
				Count: m,
				Ops: []Op{
					IO(OpShuffleRead, taskIOBytes, taskIOBytes, units.MBps(60)),
					Compute(3 * time.Second),
				},
			}},
		}}}
	}
	const m = 64
	app := mkApp(m)
	timeAt := func(p int) float64 {
		cfg := barebones(1, p, dev)
		// Task-time variance desynchronises waves, which is what lets
		// I/O of one batch hide under computation of another (Fig. 6b).
		cfg.ComputeJitter = 0.15
		res, err := Run(cfg, app)
		if err != nil {
			t.Fatal(err)
		}
		return res.Total.Seconds()
	}

	// Phase 1, P <= b: no contention; t ≈ M/P * t_avg (t_avg = 4s).
	got2 := timeAt(2)
	if ideal := float64(m) / 2 * 4; math.Abs(got2-ideal)/ideal > 0.07 {
		t.Errorf("P=2: %.1fs, want ≈%.0f", got2, ideal)
	}
	// Phase 2, b < P <= λb: contention mostly hidden; t between the
	// ideal M/P*t_avg and the fully-serialised wave bound.
	got4 := timeAt(4)
	ideal4 := float64(m) / 4 * 4
	if got4 < ideal4*0.95 || got4 > ideal4*1.30 {
		t.Errorf("P=4: %.1fs, want within 30%% above ≈%.0f", got4, ideal4)
	}
	// Phase 3, P > B: device-bound; the paper's formula is
	// D/(N·BW) + t_avg = 64*60/120 + 4 = 36s.
	got16 := timeAt(16)
	if got16 < 32 || got16 > 46 {
		t.Errorf("P=16: %.1fs, want ≈36 (I/O bound, D/BW + t_avg)", got16)
	}
	// Increasing P past B must not meaningfully help.
	got32 := timeAt(32)
	if got32 < 32 || math.Abs(got32-got16)/got16 > 0.25 {
		t.Errorf("P=32 (%.1fs) vs P=16 (%.1fs): I/O-bound plateau broken", got32, got16)
	}
	if !(got2 > got4 && got4 > got16) {
		t.Errorf("runtimes not decreasing toward the plateau: %.1f, %.1f, %.1f", got2, got4, got16)
	}
}

// TestShuffleHDDMatchesPaperMath replays the paper's Section III-C3
// arithmetic: 334 GB shuffle read at 15 MB/s effective HDD bandwidth over
// 3 slaves = ~126 minutes, independent of P.
func TestShuffleHDDMatchesPaperMath(t *testing.T) {
	hdd := disk.NewHDD()
	const totalShuffle = 334 * units.GB
	reducers := int(totalShuffle / (27 * units.MB)) // 27 MB per reducer
	perTask := totalShuffle / units.ByteSize(reducers)
	reqSize := ShuffleReadReqSize(perTask, 973)
	app := App{Name: "shuffle", Stages: []Stage{{
		Name: "BR",
		Groups: []TaskGroup{{
			Name:  "reduce",
			Count: reducers,
			Ops: []Op{
				IO(OpShuffleRead, perTask, reqSize, units.MBps(60)),
				Compute(8550 * time.Millisecond), // λ=20 at SSD speeds
			},
		}},
	}}}
	cfg := barebones(3, 36, hdd)
	cfg.ComputeJitter = 0.15 // desynchronise waves so I/O pipelines
	res, err := Run(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	gotMin := res.Total.Minutes()
	if gotMin < 118 || gotMin > 140 {
		t.Errorf("HDD shuffle stage = %.0f min, paper computes ~126", gotMin)
	}

	// Same stage with SSDs is far faster and scale-bound.
	ssdRes, err := Run(barebones(3, 36, disk.NewSSD()), app)
	if err != nil {
		t.Fatal(err)
	}
	gain := res.Total.Minutes() / ssdRes.Total.Minutes()
	if gain < 3 {
		t.Errorf("SSD gain on shuffle stage = %.1fx, want substantial (>3x)", gain)
	}
}

func TestShuffleReadReqSizeMatchesPaper(t *testing.T) {
	// 27 MB per reducer over 973 mappers ≈ 28-30 KB requests.
	rs := ShuffleReadReqSize(27*units.MB, 973)
	if rs < 26*units.KB || rs > 31*units.KB {
		t.Errorf("req size = %v, paper says ~30KB", rs)
	}
	if ShuffleReadReqSize(10*units.MB, 0) != 10*units.MB {
		t.Error("zero mappers should return whole volume")
	}
	if ShuffleReadReqSize(2*units.KB, 973) != units.KB {
		t.Error("request size should floor at 1KB")
	}
}

func TestHDFSTasks(t *testing.T) {
	if got := HDFSTasks(122*units.GB, 128*units.MB); got != 976 {
		// 122*1024/128 = 976 exactly; the paper rounds its 122 GB figure.
		t.Errorf("tasks = %d, want 976", got)
	}
	if HDFSTasks(1*units.KB, 128*units.MB) != 1 {
		t.Error("small input should still get one task")
	}
	if HDFSTasks(129*units.MB, 128*units.MB) != 2 {
		t.Error("ceil division broken")
	}
}

func TestHDFSWriteReplicationAmplification(t *testing.T) {
	dev := constDev{units.MBps(100), units.MBps(100)}
	app := App{Name: "w", Stages: []Stage{{
		Name: "w",
		Groups: []TaskGroup{{
			Name: "g", Count: 1,
			Ops: []Op{IO(OpHDFSWrite, 100*units.MB, 100*units.MB, 0)},
		}},
	}}}
	cfg := barebones(1, 1, dev)
	cfg.HDFSReplication = 2
	res, err := Run(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	// 200 MB at 100 MB/s = 2s.
	if got := res.Total.Seconds(); math.Abs(got-2) > 0.01 {
		t.Errorf("replicated write took %.2fs, want 2s", got)
	}
	st := res.Stages[0].IO[OpHDFSWrite]
	if st.Bytes != 200*units.MB {
		t.Errorf("accounted write bytes = %v, want 200MB (2x replication)", st.Bytes)
	}
}

func TestStageBarrier(t *testing.T) {
	// Second stage must not start before every task of the first ends.
	dev := constDev{units.MBps(100), units.MBps(100)}
	app := App{Name: "b", Stages: []Stage{
		{Name: "s1", Groups: []TaskGroup{{Name: "g", Count: 3, Ops: []Op{Compute(3 * time.Second)}}}},
		{Name: "s2", Groups: []TaskGroup{{Name: "g", Count: 1, Ops: []Op{Compute(time.Second)}}}},
	}}
	res, err := Run(barebones(1, 2, dev), app)
	if err != nil {
		t.Fatal(err)
	}
	s1 := res.MustStage("s1")
	s2 := res.MustStage("s2")
	if s2.Start < s1.End {
		t.Errorf("s2 started at %v before s1 ended at %v", s2.Start, s1.End)
	}
	// 3 tasks on 2 cores: 6s; then 1s.
	if got := res.Total.Seconds(); math.Abs(got-7) > 0.01 {
		t.Errorf("total = %.2fs, want 7", got)
	}
}

func TestGCModelExtendsTasks(t *testing.T) {
	dev := constDev{units.MBps(100), units.MBps(100)}
	mk := func(gc func(int) time.Duration) App {
		return App{Name: "gc", Stages: []Stage{{
			Name: "s",
			Groups: []TaskGroup{{
				Name: "g", Count: 4,
				Ops: []Op{Compute(time.Second)},
				GC:  gc,
			}},
		}}}
	}
	base, err := Run(barebones(1, 4, dev), mk(nil))
	if err != nil {
		t.Fatal(err)
	}
	withGC, err := Run(barebones(1, 4, dev), mk(func(p int) time.Duration {
		return time.Duration(p) * time.Second
	}))
	if err != nil {
		t.Fatal(err)
	}
	wantDelta := 4.0 // P=4 -> +4s per task, one batch
	if got := (withGC.Total - base.Total).Seconds(); math.Abs(got-wantDelta) > 0.01 {
		t.Errorf("GC delta = %.2fs, want %.0f", got, wantDelta)
	}
	// GC time must appear in the trailing op slot.
	gr := withGC.Stages[0].Groups[0]
	gcStat := gr.OpTimes[len(gr.OpTimes)-1]
	if gcStat.Count != 4 || gcStat.Time < 15*time.Second {
		t.Errorf("GC op stat = %+v", gcStat)
	}
}

func TestIOStatAccounting(t *testing.T) {
	dev := constDev{units.MBps(100), units.MBps(100)}
	app := App{Name: "io", Stages: []Stage{{
		Name: "s",
		Groups: []TaskGroup{{
			Name: "g", Count: 10,
			Ops: []Op{
				IO(OpShuffleRead, 27*units.MB, 30*units.KB, units.MBps(60)),
				Compute(time.Second),
			},
		}},
	}}}
	res, err := Run(barebones(2, 4, dev), app)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stages[0].IO[OpShuffleRead]
	if st.Bytes != 270*units.MB {
		t.Errorf("bytes = %v, want 270MB", st.Bytes)
	}
	if st.Ops != 10 {
		t.Errorf("ops = %d", st.Ops)
	}
	avg := st.AvgReqSize()
	if avg < 29*units.KB || avg > 31*units.KB {
		t.Errorf("avg req size = %v, want ~30KB", avg)
	}
	if st.AvgOpTime() <= 0 {
		t.Error("avg op time should be positive")
	}
}

func TestNetworkNotBottleneckAt10G(t *testing.T) {
	// The paper's claim: with 10 Gb/s NICs the network never binds. A
	// shuffle on SSDs with and without network modelling should agree
	// closely.
	ssd := disk.NewSSD()
	app := App{Name: "net", Stages: []Stage{{
		Name: "s",
		Groups: []TaskGroup{{
			Name: "g", Count: 200,
			Ops: []Op{
				IO(OpShuffleRead, 27*units.MB, 30*units.KB, units.MBps(60)),
				Compute(2 * time.Second),
			},
		}},
	}}}
	cfgNoNet := barebones(4, 8, ssd)
	cfgNet := cfgNoNet
	cfgNet.ModelNetwork = true
	a, err := Run(cfgNoNet, app)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfgNet, app)
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(a.Total.Seconds()-b.Total.Seconds()) / a.Total.Seconds(); diff > 0.05 {
		t.Errorf("network model changed runtime by %.1f%%; 10G should be invisible", diff*100)
	}
	if b.Stages[0].NetBytes == 0 {
		t.Error("network model accounted no bytes")
	}
}

func TestResultWriteTo(t *testing.T) {
	dev := constDev{units.MBps(100), units.MBps(100)}
	app := App{Name: "w", Stages: []Stage{{
		Name:   "s1",
		Groups: []TaskGroup{{Name: "g", Count: 1, Ops: []Op{Compute(time.Second)}}},
	}}}
	res, err := Run(barebones(1, 1, dev), app)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if _, err := res.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "s1") {
		t.Errorf("summary missing stage: %s", sb.String())
	}
	if _, ok := res.Stage("nope"); ok {
		t.Error("Stage found a nonexistent stage")
	}
}

func TestCoreSecondsAccounting(t *testing.T) {
	dev := constDev{units.MBps(100), units.MBps(100)}
	app := App{Name: "cs", Stages: []Stage{{
		Name:   "s",
		Groups: []TaskGroup{{Name: "g", Count: 8, Ops: []Op{Compute(10 * time.Second)}}},
	}}}
	res, err := Run(barebones(2, 2, dev), app)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.CoreSeconds-80) > 0.5 {
		t.Errorf("CoreSeconds = %.1f, want ~80", res.CoreSeconds)
	}
}

func TestStorageMemoryMath(t *testing.T) {
	cfg := DefaultTestbed(10, 36, constDev{1, 1}, constDev{1, 1})
	// 10 nodes * 90 GB * 0.4 = 360 GB.
	if got := cfg.StorageMemory(); got != 360*units.GB {
		t.Errorf("storage memory = %v, want 360GB", got)
	}
	if !cfg.FitsInStorage(280 * units.GB) {
		t.Error("280GB should fit (the paper's LR small dataset on 10 slaves)")
	}
	if cfg.FitsInStorage(990 * units.GB) {
		t.Error("990GB should not fit (the paper's LR large dataset)")
	}
}

func TestOpKindHelpers(t *testing.T) {
	if !OpShuffleRead.IsIO() || OpCompute.IsIO() {
		t.Error("IsIO broken")
	}
	if !OpShuffleRead.IsRead() || OpShuffleWrite.IsRead() {
		t.Error("IsRead broken")
	}
	if !OpHDFSWrite.IsWrite() || OpHDFSRead.IsWrite() {
		t.Error("IsWrite broken")
	}
	if !OpPersistRead.OnLocal() || OpHDFSRead.OnLocal() {
		t.Error("OnLocal broken")
	}
	if OpCompute.String() != "Compute" || OpShuffleRead.String() != "ShuffleRead" {
		t.Error("String broken")
	}
	if !strings.Contains(OpKind(99).String(), "99") {
		t.Error("unknown kind String broken")
	}
}
