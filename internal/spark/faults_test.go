package spark

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/units"
)

// faultyConfig is the shared cluster for fault tests: small enough to be
// fast, with jitter off so timing assertions are crisp.
func faultyConfig(f FaultConfig) ClusterConfig {
	cfg := DefaultTestbed(4, 4, disk.NewSSD(), disk.NewSSD())
	cfg.ComputeJitter = 0
	cfg.Faults = f
	return cfg
}

// shuffleApp is a two-stage map/reduce workload whose reduce stage pulls
// shuffle data — the shape fetch failures need.
func faultShuffleApp(mapTasks, reduceTasks int) App {
	const perMap = 16 * units.MB
	shuffled := units.ByteSize(mapTasks) * perMap
	perRed := shuffled / units.ByteSize(reduceTasks)
	return App{Name: "mr", Stages: []Stage{
		{
			Name: "map",
			Groups: []TaskGroup{{Name: "m", Count: mapTasks, Ops: []Op{
				IO(OpHDFSRead, 128*units.MB, 128*units.MB, 0),
				Compute(2 * time.Second),
				IO(OpShuffleWrite, perMap, 256*units.KB, 0),
			}}},
		},
		{
			Name: "reduce",
			Groups: []TaskGroup{{Name: "r", Count: reduceTasks, Ops: []Op{
				IO(OpShuffleRead, perRed, ShuffleReadReqSize(perRed, mapTasks), 0),
				Compute(time.Second),
			}}},
		},
	}}
}

func renderResult(t *testing.T, cfg ClusterConfig, app App) (string, *Result) {
	t.Helper()
	res, err := Run(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := res.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String(), res
}

func TestFaultsOffByDefault(t *testing.T) {
	cfg := DefaultTestbed(2, 4, disk.NewSSD(), disk.NewSSD())
	if cfg.Faults.Enabled() {
		t.Error("fault layer must be opt-in")
	}
	out, res := renderResult(t, cfg, faultShuffleApp(16, 16))
	if res.Faults.Any() {
		t.Errorf("fault stats recorded without faults: %+v", res.Faults)
	}
	if bytes.Contains([]byte(out), []byte("faults")) {
		t.Errorf("fault line rendered for clean run:\n%s", out)
	}
}

// TestFaultDeterminism: same seed, byte-identical tables; different
// fault seed, a different (but still self-consistent) degraded run.
func TestFaultDeterminism(t *testing.T) {
	f := FaultConfig{TaskFailureProb: 0.08, ShuffleFetchFailureProb: 0.05, Seed: 7}
	app := faultShuffleApp(32, 32)
	a, resA := renderResult(t, faultyConfig(f), app)
	b, resB := renderResult(t, faultyConfig(f), app)
	if a != b {
		t.Fatalf("same seed produced different tables:\n--- A ---\n%s--- B ---\n%s", a, b)
	}
	if !resA.Faults.Any() {
		t.Fatal("8% failure rate injected nothing across 64 tasks")
	}
	if resA.Faults != resB.Faults {
		t.Errorf("fault stats diverged: %+v vs %+v", resA.Faults, resB.Faults)
	}
	f.Seed = 8
	c, _ := renderResult(t, faultyConfig(f), app)
	if c == a {
		t.Error("changing FaultConfig.Seed changed nothing (entropy not mixed in)")
	}
}

// TestFaultsInflateRuntime: a degraded run must cost more than a clean
// one — failures waste work and retries wait out backoff.
func TestFaultsInflateRuntime(t *testing.T) {
	app := faultShuffleApp(32, 32)
	clean, err := Run(faultyConfig(FaultConfig{}), app)
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := Run(faultyConfig(FaultConfig{TaskFailureProb: 0.15}), app)
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Total <= clean.Total {
		t.Errorf("15%% failures did not inflate runtime: %v vs %v", faulty.Total, clean.Total)
	}
	if faulty.Faults.Retries == 0 {
		t.Error("no retries recorded")
	}
}

// TestRetryExhaustion: TaskFailureProb ~1 burns the whole attempt
// budget and must surface the typed error, not hang or panic.
func TestRetryExhaustion(t *testing.T) {
	f := FaultConfig{TaskFailureProb: 0.999, MaxTaskFailures: 3}
	_, err := Run(faultyConfig(f), faultShuffleApp(8, 8))
	if err == nil {
		t.Fatal("near-certain failure completed successfully")
	}
	var tf *TaskFailedError
	if !errors.As(err, &tf) {
		t.Fatalf("want *TaskFailedError, got %T: %v", err, err)
	}
	if tf.Failures != 3 {
		t.Errorf("failed %d times, budget was 3", tf.Failures)
	}
}

func TestFetchFailureRecomputesParent(t *testing.T) {
	f := FaultConfig{ShuffleFetchFailureProb: 0.3, Seed: 1}
	out, res := renderResult(t, faultyConfig(f), faultShuffleApp(16, 32))
	if res.Faults.FetchFailures == 0 {
		t.Fatal("30% fetch-failure rate injected nothing across 32 reducers")
	}
	if res.Faults.Recomputes == 0 {
		t.Error("fetch failures triggered no parent recomputes")
	}
	// Recompute I/O is charged to the consumer (reduce) stage.
	red := res.MustStage("reduce")
	if red.Faults.FetchFailures != res.Faults.FetchFailures {
		t.Errorf("stage-level fetch failures %d != run-level %d",
			red.Faults.FetchFailures, res.Faults.FetchFailures)
	}
	if !bytes.Contains([]byte(out), []byte("faults")) {
		t.Errorf("fault summary missing from table:\n%s", out)
	}
}

func TestNodeCrashRecovery(t *testing.T) {
	app := faultShuffleApp(32, 32)
	clean, err := Run(faultyConfig(FaultConfig{}), app)
	if err != nil {
		t.Fatal(err)
	}
	f := FaultConfig{NodeCrashes: []NodeCrash{{Node: 1, At: 5}}}
	res, err := Run(faultyConfig(f), app)
	if err != nil {
		t.Fatalf("losing 1 of 4 nodes must be survivable: %v", err)
	}
	if res.Faults.NodesLost != 1 {
		t.Errorf("NodesLost = %d", res.Faults.NodesLost)
	}
	if res.Faults.LostAttempts == 0 {
		t.Error("crash at t=5s killed no in-flight attempts")
	}
	if res.Total <= clean.Total {
		t.Errorf("losing a quarter of the cluster did not slow the run: %v vs %v", res.Total, clean.Total)
	}
	// Work is conserved: every task still completes exactly once.
	for _, s := range res.Stages {
		if got := s.Groups[0].Count; got != s.Tasks {
			t.Errorf("stage %s completed %d of %d tasks", s.Name, got, s.Tasks)
		}
	}
}

func TestCrashAllNodesRejected(t *testing.T) {
	f := FaultConfig{NodeCrashes: []NodeCrash{{Node: 0, At: 1}, {Node: 1, At: 1}, {Node: 2, At: 1}, {Node: 3, At: 1}}}
	if _, err := Run(faultyConfig(f), faultShuffleApp(8, 8)); err == nil {
		t.Error("crashing every node accepted")
	}
}

func TestBlacklisting(t *testing.T) {
	f := FaultConfig{TaskFailureProb: 0.25, BlacklistThreshold: 2, MaxTaskFailures: 10}
	res, err := Run(faultyConfig(f), faultShuffleApp(32, 32))
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.NodesBlacklisted == 0 {
		t.Error("25% failures with threshold 2 blacklisted nothing")
	}
}

// TestSpeculationFaultInterplay: both subsystems on at once — racing
// copies where one is fated to fail must neither deadlock nor
// double-complete tasks.
func TestSpeculationFaultInterplay(t *testing.T) {
	cfg := faultyConfig(FaultConfig{TaskFailureProb: 0.15, Seed: 3})
	cfg.StragglerFraction = 0.1
	cfg.StragglerSlowdown = 5
	cfg.Speculation = true
	app := faultShuffleApp(32, 32)
	res, err := Run(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Stages {
		if got := s.Groups[0].Count; got != s.Tasks {
			t.Errorf("stage %s completed %d of %d tasks", s.Name, got, s.Tasks)
		}
	}
	if !res.Faults.Any() {
		t.Error("no faults recorded")
	}
}

// TestConcurrentFaultyRuns exercises parallel degraded simulations for
// the race detector: runs must not share mutable state.
func TestConcurrentFaultyRuns(t *testing.T) {
	app := faultShuffleApp(16, 16)
	var wg sync.WaitGroup
	outs := make([]string, 8)
	for i := range outs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f := FaultConfig{TaskFailureProb: 0.1, ShuffleFetchFailureProb: 0.05, Seed: 42}
			res, err := Run(faultyConfig(f), app)
			if err != nil {
				t.Errorf("run %d: %v", i, err)
				return
			}
			var buf bytes.Buffer
			if _, err := res.WriteTo(&buf); err != nil {
				t.Errorf("run %d: %v", i, err)
				return
			}
			outs[i] = buf.String()
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(outs); i++ {
		if outs[i] != outs[0] {
			t.Errorf("concurrent run %d diverged from run 0", i)
		}
	}
}

func TestFaultConfigValidate(t *testing.T) {
	bad := []FaultConfig{
		{TaskFailureProb: -0.1},
		{TaskFailureProb: 1},
		{ShuffleFetchFailureProb: 2},
		{MaxTaskFailures: -1},
		{RetryBackoff: -1},
		{BlacklistThreshold: -2},
		{NodeCrashes: []NodeCrash{{Node: 9, At: 1}}},
		{NodeCrashes: []NodeCrash{{Node: 0, At: -1}}},
	}
	for i, f := range bad {
		if err := faultyConfig(f).Validate(); err == nil {
			t.Errorf("bad fault config %d accepted", i)
		}
	}
	good := FaultConfig{TaskFailureProb: 0.1, ShuffleFetchFailureProb: 0.1,
		MaxTaskFailures: 6, RetryBackoff: 0.5, BlacklistThreshold: 3,
		NodeCrashes: []NodeCrash{{Node: 1, At: 30}}}
	if err := faultyConfig(good).Validate(); err != nil {
		t.Errorf("good fault config rejected: %v", err)
	}
}

func TestBackoffSchedule(t *testing.T) {
	var f FaultConfig
	for i, want := range []time.Duration{time.Second, 2 * time.Second, 4 * time.Second} {
		if got := f.backoff(i + 1); got != want {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, want)
		}
	}
	if got := f.backoff(100); got != time.Minute {
		t.Errorf("backoff uncapped: %v", got)
	}
	f.RetryBackoff = 0.25
	if got := f.backoff(2); got != 500*time.Millisecond {
		t.Errorf("custom base: backoff(2) = %v", got)
	}
}

func TestZeroSizedDeviceRejected(t *testing.T) {
	// A zero-sized virtual disk yields zero bandwidth at every request
	// size; the old behavior was a DES-internal panic ("non-positive
	// FullRate") mid-simulation. Validate must catch it as input error.
	cfg := DefaultTestbed(2, 4, disk.NewSSD(), constDev{0, 0})
	if err := cfg.Validate(); err == nil {
		t.Error("zero-bandwidth LocalDisk accepted")
	}
	cfg = DefaultTestbed(2, 4, constDev{0, units.MBps(100)}, disk.NewSSD())
	if err := cfg.Validate(); err == nil {
		t.Error("zero-read-bandwidth HDFSDisk accepted")
	}
}
