package hdfs

import (
	"bytes"
	"fmt"
	"io"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func newFS(t *testing.T, block units.ByteSize, repl, nodes int) *FileSystem {
	t.Helper()
	fs, err := New(Config{BlockSize: block, Replication: repl, Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{BlockSize: 1, Replication: 0, Nodes: 1},
		{BlockSize: 1, Replication: 3, Nodes: 2},
		{BlockSize: 0, Replication: 1, Nodes: 1},
	}
	for _, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("bad config accepted: %+v", c)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := newFS(t, 1024, 2, 4)
	data := bytes.Repeat([]byte("0123456789abcdef"), 1000) // 16000 B -> 16 blocks
	if err := fs.WriteFile("genome.bam", data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("genome.bam")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip corrupted data")
	}
	info, err := fs.Stat("genome.bam")
	if err != nil {
		t.Fatal(err)
	}
	// 16000/1024 = 15 full blocks + one 640 B tail.
	if info.NumBlocks() != 16 {
		t.Errorf("blocks = %d, want 16", info.NumBlocks())
	}
	if info.Blocks[15].Size != 640 {
		t.Errorf("tail block = %d bytes", info.Blocks[15].Size)
	}
	for _, b := range info.Blocks {
		if len(b.Replicas) != 2 {
			t.Errorf("block %d has %d replicas", b.Index, len(b.Replicas))
		}
		if b.Replicas[0] == b.Replicas[1] {
			t.Errorf("block %d replicas on the same node", b.Index)
		}
	}
}

// TestBlockCountDrivesTaskCount reproduces the paper's M arithmetic:
// a 122 GB file with 128 MB blocks yields 976 blocks (map tasks).
func TestBlockCountDrivesTaskCount(t *testing.T) {
	fs := newFS(t, 128, 2, 4) // scaled: 1 B here = 1 MB
	data := make([]byte, 122*1024)
	if err := fs.WriteFile("wgs", data); err != nil {
		t.Fatal(err)
	}
	info, _ := fs.Stat("wgs")
	if info.NumBlocks() != 976 {
		t.Errorf("blocks = %d, want 976 (= ceil(122*1024/128))", info.NumBlocks())
	}
}

func TestPlacementBalance(t *testing.T) {
	fs := newFS(t, 100, 2, 5)
	for i := 0; i < 20; i++ {
		if err := fs.WriteFile(fmt.Sprintf("f%02d", i), make([]byte, 500)); err != nil {
			t.Fatal(err)
		}
	}
	usage := fs.NodeUsage()
	// 20 files x 5 blocks x 2 replicas x 100 B = 20000 B over 5 nodes:
	// perfectly balanceable at 4000 B each; allow modest skew.
	var min, max units.ByteSize = 1 << 62, 0
	for _, u := range usage {
		if u < min {
			min = u
		}
		if u > max {
			max = u
		}
	}
	if float64(max) > 1.3*float64(min) {
		t.Errorf("placement imbalance: %v", usage)
	}
}

func TestReplicationSurvivesNodeFailure(t *testing.T) {
	fs := newFS(t, 64, 2, 3)
	data := bytes.Repeat([]byte("x"), 640)
	if err := fs.WriteFile("f", data); err != nil {
		t.Fatal(err)
	}
	if err := fs.KillNode(0); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("f")
	if err != nil {
		t.Fatalf("read after one failure: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data corrupted after failover")
	}
	// Kill a second node: with replication 2 some block must lose both
	// replicas.
	if err := fs.KillNode(1); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("f"); err == nil {
		t.Error("read succeeded with both replicas dead")
	}
	// Revive and read again.
	if err := fs.ReviveNode(0); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("f"); err != nil {
		t.Errorf("read after revive: %v", err)
	}
}

func TestWriteFailsWithoutEnoughAliveNodes(t *testing.T) {
	fs := newFS(t, 64, 2, 2)
	if err := fs.KillNode(1); err != nil {
		t.Fatal(err)
	}
	err := fs.WriteFile("f", make([]byte, 100))
	if err == nil {
		t.Error("write accepted with fewer alive nodes than replication")
	}
}

func TestLocalityAccounting(t *testing.T) {
	fs := newFS(t, 128, 2, 2) // two nodes, replication 2: everything is everywhere
	data := make([]byte, 1024)
	if err := fs.WriteFile("f", data); err != nil {
		t.Fatal(err)
	}
	r, err := fs.OpenAt("f", 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1024)
	if _, err := r.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	local, remote := fs.LocalityStats()
	if local != 1024 || remote != 0 {
		t.Errorf("local=%v remote=%v; with full replication all reads should be local", local, remote)
	}
}

func TestReaderSeekRead(t *testing.T) {
	fs := newFS(t, 16, 1, 1)
	data := []byte("abcdefghijklmnopqrstuvwxyz0123456789")
	if err := fs.WriteFile("f", data); err != nil {
		t.Fatal(err)
	}
	r, err := fs.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Seek(10, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	if _, err := io.ReadFull(r, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "klmnopqrst" {
		t.Errorf("read %q", buf)
	}
	if _, err := r.Seek(-5, io.SeekEnd); err != nil {
		t.Fatal(err)
	}
	rest, err := io.ReadAll(r)
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(rest) != "56789" {
		t.Errorf("tail = %q", rest)
	}
	if _, err := r.Seek(-1, io.SeekStart); err == nil {
		t.Error("seek before start accepted")
	}
}

func TestDeleteFreesSpace(t *testing.T) {
	fs := newFS(t, 64, 2, 3)
	if err := fs.WriteFile("f", make([]byte, 640)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete("f"); err != nil {
		t.Fatal(err)
	}
	for i, u := range fs.NodeUsage() {
		if u != 0 {
			t.Errorf("node %d still holds %v", i, u)
		}
	}
	if err := fs.Delete("f"); err == nil {
		t.Error("double delete accepted")
	}
	if len(fs.List()) != 0 {
		t.Error("file still listed")
	}
}

func TestCreateDuplicate(t *testing.T) {
	fs := newFS(t, 64, 1, 1)
	if err := fs.WriteFile("f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("f"); err == nil {
		t.Error("duplicate create accepted")
	}
}

// TestRoundTripProperty: any content round-trips through any block size.
func TestRoundTripProperty(t *testing.T) {
	f := func(data []byte, blockSz uint8) bool {
		fs, err := New(Config{
			BlockSize:   units.ByteSize(blockSz%200) + 1,
			Replication: 2,
			Nodes:       3,
		})
		if err != nil {
			return false
		}
		if err := fs.WriteFile("f", data); err != nil {
			return false
		}
		got, err := fs.ReadFile("f")
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEmptyFile(t *testing.T) {
	fs := newFS(t, 64, 1, 1)
	if err := fs.WriteFile("empty", nil); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty file read %d bytes", len(got))
	}
	info, _ := fs.Stat("empty")
	if info.NumBlocks() != 0 {
		t.Errorf("empty file has %d blocks", info.NumBlocks())
	}
}
