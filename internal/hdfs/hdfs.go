// Package hdfs is a miniature in-memory Hadoop Distributed File System:
// a namenode that splits files into fixed-size blocks and places
// replicas across datanodes, plus readers that prefer local replicas.
// It supplies the input side of the mini-RDD engine (one partition per
// block, which is exactly how the paper's M — the map task count — comes
// about: M = 122 GB / 128 MB = 973 for the whole genome) and lets tests
// exercise replication, balance and datanode failure.
package hdfs

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/units"
)

// Config shapes the filesystem, mirroring the paper's Table II.
type Config struct {
	// BlockSize is dfs.blocksize (128 MB in the paper; tests use small
	// values).
	BlockSize units.ByteSize
	// Replication is dfs.replication (2 in the paper).
	Replication int
	// Nodes is the datanode count.
	Nodes int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.BlockSize <= 0:
		return fmt.Errorf("hdfs: BlockSize must be positive")
	case c.Replication <= 0:
		return fmt.Errorf("hdfs: Replication must be positive")
	case c.Nodes <= 0:
		return fmt.Errorf("hdfs: Nodes must be positive")
	case c.Replication > c.Nodes:
		return fmt.Errorf("hdfs: Replication %d exceeds %d nodes", c.Replication, c.Nodes)
	}
	return nil
}

// Block is one placed file block.
type Block struct {
	// Index is the block's position within its file.
	Index int
	// Size is the block's byte length (the last block may be short).
	Size units.ByteSize
	// Replicas are the datanode ids holding a copy.
	Replicas []int
}

// FileInfo describes a stored file.
type FileInfo struct {
	Name   string
	Size   units.ByteSize
	Blocks []Block
}

// NumBlocks returns the block count — the natural partition count for
// a computation over the file.
func (f FileInfo) NumBlocks() int { return len(f.Blocks) }

type datanode struct {
	id     int
	alive  bool
	used   units.ByteSize
	blocks map[string][]byte // key: file/blockIndex
}

func blockKey(file string, idx int) string { return fmt.Sprintf("%s/%d", file, idx) }

// FileSystem is the namenode plus its datanodes.
type FileSystem struct {
	cfg Config

	mu    sync.RWMutex
	nodes []*datanode
	files map[string]*FileInfo

	localBytes  units.ByteSize
	remoteBytes units.ByteSize
}

// New creates an empty filesystem.
func New(cfg Config) (*FileSystem, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	fs := &FileSystem{cfg: cfg, files: map[string]*FileInfo{}}
	for i := 0; i < cfg.Nodes; i++ {
		fs.nodes = append(fs.nodes, &datanode{id: i, alive: true, blocks: map[string][]byte{}})
	}
	return fs, nil
}

// Config returns the filesystem configuration.
func (fs *FileSystem) Config() Config { return fs.cfg }

// List returns the stored file names, sorted.
func (fs *FileSystem) List() []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	out := make([]string, 0, len(fs.files))
	for n := range fs.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Stat returns a file's metadata.
func (fs *FileSystem) Stat(name string) (FileInfo, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[name]
	if !ok {
		return FileInfo{}, fmt.Errorf("hdfs: no such file %q", name)
	}
	return *f, nil
}

// Delete removes a file and its block replicas.
func (fs *FileSystem) Delete(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("hdfs: no such file %q", name)
	}
	for _, b := range f.Blocks {
		for _, nid := range b.Replicas {
			n := fs.nodes[nid]
			key := blockKey(name, b.Index)
			if data, ok := n.blocks[key]; ok {
				n.used -= units.ByteSize(len(data))
				delete(n.blocks, key)
			}
		}
	}
	delete(fs.files, name)
	return nil
}

// KillNode marks a datanode dead: its replicas become unreadable and it
// receives no new blocks. Reads fall back to surviving replicas.
func (fs *FileSystem) KillNode(id int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if id < 0 || id >= len(fs.nodes) {
		return fmt.Errorf("hdfs: no node %d", id)
	}
	fs.nodes[id].alive = false
	return nil
}

// ReviveNode brings a datanode back (its stored blocks become readable
// again; this mini filesystem does not re-replicate).
func (fs *FileSystem) ReviveNode(id int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if id < 0 || id >= len(fs.nodes) {
		return fmt.Errorf("hdfs: no node %d", id)
	}
	fs.nodes[id].alive = true
	return nil
}

// NodeUsage returns the stored bytes per datanode — the balance the
// placement policy maintains.
func (fs *FileSystem) NodeUsage() []units.ByteSize {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	out := make([]units.ByteSize, len(fs.nodes))
	for i, n := range fs.nodes {
		out[i] = n.used
	}
	return out
}

// LocalityStats reports bytes served from the reader's preferred node
// vs elsewhere (the data-locality concern of the paper's related work,
// Opass [44]).
func (fs *FileSystem) LocalityStats() (local, remote units.ByteSize) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.localBytes, fs.remoteBytes
}

// placeReplicas picks Replication distinct alive nodes with the least
// used space (the namenode's balance heuristic).
func (fs *FileSystem) placeReplicas() ([]int, error) {
	type cand struct {
		id   int
		used units.ByteSize
	}
	var cands []cand
	for _, n := range fs.nodes {
		if n.alive {
			cands = append(cands, cand{n.id, n.used})
		}
	}
	if len(cands) < fs.cfg.Replication {
		return nil, fmt.Errorf("hdfs: only %d alive nodes for replication %d", len(cands), fs.cfg.Replication)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].used != cands[j].used {
			return cands[i].used < cands[j].used
		}
		return cands[i].id < cands[j].id
	})
	out := make([]int, fs.cfg.Replication)
	for i := range out {
		out[i] = cands[i].id
	}
	return out, nil
}

// Writer streams a new file into the filesystem, sealing a block every
// BlockSize bytes.
type Writer struct {
	fs     *FileSystem
	name   string
	buf    []byte
	info   *FileInfo
	closed bool
}

// Create starts writing a new file. The file becomes visible at Close.
func (fs *FileSystem) Create(name string) (*Writer, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, dup := fs.files[name]; dup {
		return nil, fmt.Errorf("hdfs: file %q exists", name)
	}
	return &Writer{fs: fs, name: name, info: &FileInfo{Name: name}}, nil
}

// Write implements io.Writer.
func (w *Writer) Write(p []byte) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("hdfs: write to closed writer")
	}
	w.buf = append(w.buf, p...)
	for units.ByteSize(len(w.buf)) >= w.fs.cfg.BlockSize {
		if err := w.seal(w.buf[:w.fs.cfg.BlockSize]); err != nil {
			return 0, err
		}
		w.buf = w.buf[w.fs.cfg.BlockSize:]
	}
	return len(p), nil
}

func (w *Writer) seal(data []byte) error {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	replicas, err := w.fs.placeReplicas()
	if err != nil {
		return err
	}
	idx := len(w.info.Blocks)
	cp := make([]byte, len(data))
	copy(cp, data)
	for _, nid := range replicas {
		n := w.fs.nodes[nid]
		n.blocks[blockKey(w.name, idx)] = cp
		n.used += units.ByteSize(len(cp))
	}
	w.info.Blocks = append(w.info.Blocks, Block{Index: idx, Size: units.ByteSize(len(cp)), Replicas: replicas})
	w.info.Size += units.ByteSize(len(cp))
	return nil
}

// Close seals the trailing partial block and publishes the file.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if len(w.buf) > 0 {
		if err := w.seal(w.buf); err != nil {
			return err
		}
		w.buf = nil
	}
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	w.fs.files[w.name] = w.info
	return nil
}

// Reader reads a stored file with positional access, preferring a given
// node's replicas (−1 means no preference).
type Reader struct {
	fs        *FileSystem
	info      FileInfo
	name      string
	preferred int
	offset    int64
}

// Open returns a reader with no locality preference.
func (fs *FileSystem) Open(name string) (*Reader, error) { return fs.OpenAt(name, -1) }

// OpenAt returns a reader that prefers replicas on the given node.
func (fs *FileSystem) OpenAt(name string, preferredNode int) (*Reader, error) {
	info, err := fs.Stat(name)
	if err != nil {
		return nil, err
	}
	return &Reader{fs: fs, info: info, name: name, preferred: preferredNode}, nil
}

// Size returns the file length.
func (r *Reader) Size() units.ByteSize { return r.info.Size }

// ReadAt implements io.ReaderAt across block boundaries.
func (r *Reader) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("hdfs: negative offset")
	}
	total := 0
	for total < len(p) {
		if off >= int64(r.info.Size) {
			return total, io.EOF
		}
		bi := int(off / int64(r.fs.cfg.BlockSize))
		within := off % int64(r.fs.cfg.BlockSize)
		data, local, err := r.fs.blockData(r.name, r.info.Blocks[bi], r.preferred)
		if err != nil {
			return total, err
		}
		n := copy(p[total:], data[within:])
		r.fs.account(units.ByteSize(n), local)
		total += n
		off += int64(n)
		if n == 0 {
			return total, io.EOF
		}
	}
	return total, nil
}

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	n, err := r.ReadAt(p, r.offset)
	r.offset += int64(n)
	return n, err
}

// Seek implements io.Seeker.
func (r *Reader) Seek(offset int64, whence int) (int64, error) {
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = r.offset
	case io.SeekEnd:
		base = int64(r.info.Size)
	default:
		return 0, fmt.Errorf("hdfs: bad whence %d", whence)
	}
	pos := base + offset
	if pos < 0 {
		return 0, fmt.Errorf("hdfs: seek before start")
	}
	r.offset = pos
	return pos, nil
}

func (fs *FileSystem) blockData(name string, b Block, preferred int) ([]byte, bool, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	// Prefer the local replica, then any alive one.
	order := append([]int(nil), b.Replicas...)
	sort.Slice(order, func(i, j int) bool {
		return (order[i] == preferred) && (order[j] != preferred)
	})
	for _, nid := range order {
		n := fs.nodes[nid]
		if !n.alive {
			continue
		}
		if data, ok := n.blocks[blockKey(name, b.Index)]; ok {
			return data, nid == preferred, nil
		}
	}
	return nil, false, fmt.Errorf("hdfs: block %d of %q has no alive replica", b.Index, name)
}

func (fs *FileSystem) account(n units.ByteSize, local bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if local {
		fs.localBytes += n
	} else {
		fs.remoteBytes += n
	}
}

// WriteFile is a convenience that stores data as a file.
func (fs *FileSystem) WriteFile(name string, data []byte) error {
	w, err := fs.Create(name)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	return w.Close()
}

// ReadFile returns the whole file.
func (fs *FileSystem) ReadFile(name string) ([]byte, error) {
	r, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	out := make([]byte, r.Size())
	if len(out) == 0 {
		return out, nil
	}
	if _, err := r.ReadAt(out, 0); err != nil && err != io.EOF {
		return nil, err
	}
	return out, nil
}
