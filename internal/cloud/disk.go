// Package cloud models the Google Cloud environment of the paper's
// Section VI: persistent disks whose bandwidth scales with provisioned
// size, per-size/type disk pricing (Table V), per-vCPU pricing, and the
// cost function Cost = f(P, DiskTypes, DiskSize_HDFS, DiskSize_Local,
// Time) the optimizer minimises.
package cloud

import (
	"fmt"
	"math"

	"repro/internal/disk"
	"repro/internal/units"
)

// DiskType is a Google Cloud persistent-disk type.
type DiskType int

const (
	// PDStandard is the HDD-backed "Standard provisioned space".
	PDStandard DiskType = iota
	// PDSSD is "SSD provisioned space".
	PDSSD
)

// String names the type as in the paper's Table V.
func (t DiskType) String() string {
	switch t {
	case PDStandard:
		return "pd-standard"
	case PDSSD:
		return "pd-ssd"
	default:
		return fmt.Sprintf("DiskType(%d)", int(t))
	}
}

// PerfModel is the size-scaled performance envelope of a virtual disk
// type: throughput and IOPS both grow linearly with provisioned capacity
// up to caps, as in the 2017 GCP datasheet. Effective bandwidth at a
// request size is min(throughput limit, IOPS limit × request size).
type PerfModel struct {
	ReadMBpsPerGB   float64
	ReadMBpsCap     float64
	WriteMBpsPerGB  float64
	WriteMBpsCap    float64
	ReadIOPSPerGB   float64
	ReadIOPSCap     float64
	WriteIOPSPerGB  float64
	WriteIOPSCap    float64
	MinEffectiveBps float64 // floor, so tiny disks still make progress
}

// StandardPerf returns the pd-standard envelope. The IOPS caps are
// calibrated against the paper's published lookup tables [14]: the
// GATK4 shuffle-read bandwidth stops improving at 2 TB (paper Fig. 14).
func StandardPerf() PerfModel {
	return PerfModel{
		ReadMBpsPerGB:  0.12,
		ReadMBpsCap:    180,
		WriteMBpsPerGB: 0.09,
		WriteMBpsCap:   120,
		ReadIOPSPerGB:  1.5,
		ReadIOPSCap:    3000,
		WriteIOPSPerGB: 1.5,
		WriteIOPSCap:   3000,
	}
}

// SSDPerf returns the pd-ssd envelope.
func SSDPerf() PerfModel {
	return PerfModel{
		ReadMBpsPerGB:  0.48,
		ReadMBpsCap:    800,
		WriteMBpsPerGB: 0.48,
		WriteMBpsCap:   400,
		ReadIOPSPerGB:  30,
		ReadIOPSCap:    25000,
		WriteIOPSPerGB: 30,
		WriteIOPSCap:   25000,
	}
}

// VirtualDisk is a provisioned Google Cloud persistent disk. It
// implements disk.Device, so the Spark simulator and the Doppio model
// consume it exactly like a physical drive.
type VirtualDisk struct {
	DiskType DiskType
	Size     units.ByteSize
	Perf     PerfModel
}

// NewDisk provisions a virtual disk of the given type and size with the
// default performance envelope for the type.
func NewDisk(t DiskType, size units.ByteSize) *VirtualDisk {
	perf := StandardPerf()
	if t == PDSSD {
		perf = SSDPerf()
	}
	return &VirtualDisk{DiskType: t, Size: size, Perf: perf}
}

// Name implements disk.Device.
func (d *VirtualDisk) Name() string {
	return fmt.Sprintf("%s-%s", d.DiskType, d.Size)
}

// Kind implements disk.Device.
func (d *VirtualDisk) Kind() disk.Type { return disk.Virtual }

func (d *VirtualDisk) bw(reqSize units.ByteSize, mbpsPerGB, mbpsCap, iopsPerGB, iopsCap float64) units.Rate {
	if reqSize <= 0 || d.Size <= 0 {
		return 0
	}
	gb := d.Size.GBytes()
	mbps := math.Min(mbpsPerGB*gb, mbpsCap)
	iops := math.Min(iopsPerGB*gb, iopsCap)
	byIOPS := iops * float64(reqSize) / float64(units.MB)
	eff := math.Min(mbps, byIOPS)
	if eff < d.Perf.MinEffectiveBps {
		eff = d.Perf.MinEffectiveBps
	}
	return units.MBps(eff)
}

// ReadBandwidth implements disk.Device.
func (d *VirtualDisk) ReadBandwidth(reqSize units.ByteSize) units.Rate {
	return d.bw(reqSize, d.Perf.ReadMBpsPerGB, d.Perf.ReadMBpsCap, d.Perf.ReadIOPSPerGB, d.Perf.ReadIOPSCap)
}

// WriteBandwidth implements disk.Device.
func (d *VirtualDisk) WriteBandwidth(reqSize units.ByteSize) units.Rate {
	return d.bw(reqSize, d.Perf.WriteMBpsPerGB, d.Perf.WriteMBpsCap, d.Perf.WriteIOPSPerGB, d.Perf.WriteIOPSCap)
}
