package cloud

import (
	"fmt"
	"time"

	"repro/internal/spark"
	"repro/internal/units"
)

// Pricing holds the Google Cloud unit prices. Disk prices are the
// paper's Table V; the vCPU price is the 2017 n1 rate.
type Pricing struct {
	// StandardPerGBMonth is pd-standard provisioned space ($/GB/month).
	StandardPerGBMonth float64
	// SSDPerGBMonth is pd-ssd provisioned space ($/GB/month).
	SSDPerGBMonth float64
	// VCPUPerHour is the per-vCPU-hour machine price.
	VCPUPerHour float64
	// MemoryGBPerHour is the per-GB-hour price of provisioned executor
	// memory (the custom-machine RAM rate). Specs with HeapGB 0 pay
	// nothing, so pricing stays bit-identical for memory-free searches.
	MemoryGBPerHour float64
	// HoursPerMonth prorates monthly disk prices (GCP bills per second;
	// 730 hours/month average).
	HoursPerMonth float64
}

// DefaultPricing returns the Table V prices.
func DefaultPricing() Pricing {
	return Pricing{
		StandardPerGBMonth: 0.040,
		SSDPerGBMonth:      0.170,
		VCPUPerHour:        0.030,
		MemoryGBPerHour:    0.0045,
		HoursPerMonth:      730,
	}
}

// DiskDollarsPerHour prices one provisioned disk per hour of use.
func (p Pricing) DiskDollarsPerHour(t DiskType, size units.ByteSize) float64 {
	perGB := p.StandardPerGBMonth
	if t == PDSSD {
		perGB = p.SSDPerGBMonth
	}
	return size.GBytes() * perGB / p.HoursPerMonth
}

// ClusterSpec is one point in the paper's configuration space:
// Cost = f(P, DiskTypes, DiskSize_HDFS, DiskSize_Local, Time).
type ClusterSpec struct {
	// Slaves is the worker-node count.
	Slaves int
	// VCPUs is P, the per-node executor core count.
	VCPUs int
	// HDFSType and HDFSSize provision the HDFS disk per node.
	HDFSType DiskType
	HDFSSize units.ByteSize
	// LocalType and LocalSize provision the spark.local.dir disk.
	LocalType DiskType
	LocalSize units.ByteSize
	// HeapGB provisions per-node executor memory and enables the
	// simulator's memory layer and the model's t_mem_limit term. Zero
	// keeps the legacy memory-free behaviour (and price).
	HeapGB float64
}

// Validate checks the spec.
func (s ClusterSpec) Validate() error {
	switch {
	case s.Slaves <= 0:
		return fmt.Errorf("cloud: Slaves must be positive")
	case s.VCPUs <= 0:
		return fmt.Errorf("cloud: VCPUs must be positive")
	case s.HDFSSize <= 0 || s.LocalSize <= 0:
		return fmt.Errorf("cloud: disk sizes must be positive")
	case s.HeapGB < 0:
		return fmt.Errorf("cloud: HeapGB must be >= 0")
	}
	return nil
}

// String renders the spec compactly.
func (s ClusterSpec) String() string {
	base := fmt.Sprintf("%dx%dvCPU hdfs=%s/%v local=%s/%v",
		s.Slaves, s.VCPUs, s.HDFSType, s.HDFSSize, s.LocalType, s.LocalSize)
	if s.HeapGB > 0 {
		return fmt.Sprintf("%s heap=%gGB", base, s.HeapGB)
	}
	return base
}

// ClusterConfig builds the simulator configuration for the spec: the
// paper's testbed software settings on provisioned virtual disks.
func (s ClusterSpec) ClusterConfig() spark.ClusterConfig {
	cfg := spark.DefaultTestbed(s.Slaves, s.VCPUs,
		NewDisk(s.HDFSType, s.HDFSSize), NewDisk(s.LocalType, s.LocalSize))
	cfg.Memory = spark.MemoryConfig{HeapGB: s.HeapGB}
	return cfg
}

// DollarsPerHour is the spec's burn rate. The expression order matches
// the optimizer's inline batch pricing term for term, so both paths
// produce bit-identical costs.
func (s ClusterSpec) DollarsPerHour(p Pricing) float64 {
	perNode := float64(s.VCPUs)*p.VCPUPerHour +
		s.HeapGB*p.MemoryGBPerHour +
		p.DiskDollarsPerHour(s.HDFSType, s.HDFSSize) +
		p.DiskDollarsPerHour(s.LocalType, s.LocalSize)
	return perNode * float64(s.Slaves)
}

// Cost prices a run of the given duration on the spec.
func (s ClusterSpec) Cost(d time.Duration, p Pricing) float64 {
	return s.DollarsPerHour(p) * d.Hours()
}

// R1 is the Apache Spark website's hardware-provisioning reference
// (1 disk per 2 CPU cores, 1 TB disks): 8 TB of pd-standard per 16-vCPU
// node, split evenly between HDFS and Spark Local.
func R1(slaves, vcpus int) ClusterSpec {
	total := units.ByteSize(vcpus/2) * units.TB
	return ClusterSpec{
		Slaves: slaves, VCPUs: vcpus,
		HDFSType: PDStandard, HDFSSize: total / 2,
		LocalType: PDStandard, LocalSize: total / 2,
	}
}

// R2 is Cloudera's Hadoop provisioning reference (1 disk per core,
// 1 TB disks): 16 TB of pd-standard per 16-vCPU node.
func R2(slaves, vcpus int) ClusterSpec {
	total := units.ByteSize(vcpus) * units.TB
	return ClusterSpec{
		Slaves: slaves, VCPUs: vcpus,
		HDFSType: PDStandard, HDFSSize: total / 2,
		LocalType: PDStandard, LocalSize: total / 2,
	}
}
