package cloud

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/disk"
	"repro/internal/units"
)

func TestVirtualDiskScalesWithSize(t *testing.T) {
	small := NewDisk(PDStandard, 200*units.GB)
	big := NewDisk(PDStandard, units.TB)
	rs := 30 * units.KB
	if small.ReadBandwidth(rs) >= big.ReadBandwidth(rs) {
		t.Error("bigger provisioned disk should be faster")
	}
	// Per-GB scaling: 200 GB standard at 30 KB requests is IOPS-bound:
	// 1.5 IOPS/GB * 200 GB * 30 KB ≈ 8.8 MB/s.
	got := small.ReadBandwidth(rs).PerSecMB()
	if got < 8 || got < 0 || got > 10 {
		t.Errorf("200GB pd-standard @30KB = %.1f MB/s, want ~8.8", got)
	}
}

func TestVirtualDiskCaps(t *testing.T) {
	huge := NewDisk(PDStandard, 100*units.TB)
	// Throughput cap 180 MB/s read, 120 write at large requests.
	if got := huge.ReadBandwidth(128 * units.MB).PerSecMB(); math.Abs(got-180) > 1 {
		t.Errorf("read cap = %.0f, want 180", got)
	}
	if got := huge.WriteBandwidth(128 * units.MB).PerSecMB(); math.Abs(got-120) > 1 {
		t.Errorf("write cap = %.0f, want 120", got)
	}
	// IOPS cap at small requests: 3000 * 30 KB ≈ 88 MB/s — the paper's
	// Fig. 14 flattening point: a 2 TB pd-standard already hits it.
	twoTB := NewDisk(PDStandard, 2*units.TB)
	fourTB := NewDisk(PDStandard, 4*units.TB)
	g2 := twoTB.ReadBandwidth(30 * units.KB).PerSecMB()
	g4 := fourTB.ReadBandwidth(30 * units.KB).PerSecMB()
	if math.Abs(g2-g4) > 0.5 {
		t.Errorf("shuffle-read bandwidth should flatten at 2TB: %.1f vs %.1f", g2, g4)
	}
}

func TestVirtualDiskMonotone(t *testing.T) {
	d := NewDisk(PDSSD, 500*units.GB)
	f := func(a, b uint32) bool {
		sa := units.ByteSize(a%(64*1024*1024) + 1)
		sb := units.ByteSize(b%(64*1024*1024) + 1)
		if sa > sb {
			sa, sb = sb, sa
		}
		return d.ReadBandwidth(sa) <= d.ReadBandwidth(sb)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVirtualDiskImplementsDevice(t *testing.T) {
	var dev disk.Device = NewDisk(PDSSD, 100*units.GB)
	if dev.Kind() != disk.Virtual {
		t.Error("kind should be Virtual")
	}
	if !strings.Contains(dev.Name(), "pd-ssd") {
		t.Errorf("name = %q", dev.Name())
	}
	if dev.ReadBandwidth(0) != 0 {
		t.Error("zero request size should give 0")
	}
}

func TestDiskTypeString(t *testing.T) {
	if PDStandard.String() != "pd-standard" || PDSSD.String() != "pd-ssd" {
		t.Error("DiskType.String broken")
	}
	if !strings.Contains(DiskType(7).String(), "7") {
		t.Error("unknown DiskType.String broken")
	}
}

func TestTableVPrices(t *testing.T) {
	p := DefaultPricing()
	if p.StandardPerGBMonth != 0.040 {
		t.Errorf("standard price = %v, Table V says $0.040", p.StandardPerGBMonth)
	}
	if p.SSDPerGBMonth != 0.170 {
		t.Errorf("SSD price = %v, Table V says $0.170", p.SSDPerGBMonth)
	}
	// The paper highlights the 4.2x price ratio.
	if ratio := p.SSDPerGBMonth / p.StandardPerGBMonth; math.Abs(ratio-4.25) > 0.1 {
		t.Errorf("SSD/HDD price ratio = %.2f, paper says 4.2x", ratio)
	}
}

func TestCostArithmetic(t *testing.T) {
	p := DefaultPricing()
	spec := ClusterSpec{
		Slaves: 10, VCPUs: 16,
		HDFSType: PDStandard, HDFSSize: units.TB,
		LocalType: PDSSD, LocalSize: 200 * units.GB,
	}
	// Per node-hour: 16*0.03 + 1024*0.04/730 + 200*0.17/730
	wantPerHour := 10 * (16*0.03 + 1024*0.04/730 + 200*0.17/730)
	if got := spec.DollarsPerHour(p); math.Abs(got-wantPerHour) > 1e-9 {
		t.Errorf("DollarsPerHour = %v, want %v", got, wantPerHour)
	}
	if got := spec.Cost(30*time.Minute, p); math.Abs(got-wantPerHour/2) > 1e-9 {
		t.Errorf("Cost(30min) = %v, want %v", got, wantPerHour/2)
	}
}

func TestR1R2References(t *testing.T) {
	r1 := R1(10, 16)
	if r1.HDFSSize+r1.LocalSize != 8*units.TB {
		t.Errorf("R1 total disk = %v, want 8TB (1 disk per 2 cores)", r1.HDFSSize+r1.LocalSize)
	}
	r2 := R2(10, 16)
	if r2.HDFSSize+r2.LocalSize != 16*units.TB {
		t.Errorf("R2 total disk = %v, want 16TB (1 disk per core)", r2.HDFSSize+r2.LocalSize)
	}
	p := DefaultPricing()
	if R2(10, 16).DollarsPerHour(p) <= R1(10, 16).DollarsPerHour(p) {
		t.Error("R2 should burn more than R1")
	}
}

func TestClusterSpecValidateAndString(t *testing.T) {
	good := ClusterSpec{Slaves: 1, VCPUs: 1, HDFSSize: units.GB, LocalSize: units.GB}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	for _, bad := range []ClusterSpec{
		{},
		{Slaves: 1, VCPUs: 0, HDFSSize: units.GB, LocalSize: units.GB},
		{Slaves: 1, VCPUs: 1, HDFSSize: 0, LocalSize: units.GB},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("bad spec accepted: %+v", bad)
		}
	}
	s := good.String()
	if !strings.Contains(s, "1vCPU") {
		t.Errorf("String = %q", s)
	}
}

func TestClusterConfigBridge(t *testing.T) {
	spec := ClusterSpec{
		Slaves: 3, VCPUs: 8,
		HDFSType: PDStandard, HDFSSize: units.TB,
		LocalType: PDSSD, LocalSize: 200 * units.GB,
	}
	cfg := spec.ClusterConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Slaves != 3 || cfg.ExecutorCores != 8 {
		t.Error("shape not carried over")
	}
	if cfg.LocalDisk.Kind() != disk.Virtual {
		t.Error("local disk should be virtual")
	}
}
