package cloud

import (
	"fmt"
	"strings"

	"repro/internal/disk"
	"repro/internal/units"
)

// ParseDevice resolves the device vocabulary shared by the CLI flags and
// the serve API: "hdd" and "ssd" are the paper's physical testbed
// devices, "pd-standard:SIZE" and "pd-ssd:SIZE" are Google Cloud
// persistent disks at a provisioned size ("pd-ssd:500GB").
func ParseDevice(s string) (disk.Device, error) {
	switch s {
	case "hdd":
		return disk.NewHDD(), nil
	case "ssd":
		return disk.NewSSD(), nil
	}
	name, sizeStr, ok := strings.Cut(s, ":")
	if !ok {
		return nil, fmt.Errorf("unknown device %q (want hdd, ssd, pd-standard:SIZE or pd-ssd:SIZE)", s)
	}
	size, err := units.ParseByteSize(sizeStr)
	if err != nil {
		return nil, fmt.Errorf("device %q: %v", s, err)
	}
	if size <= 0 {
		return nil, fmt.Errorf("device %q: size must be positive, got %v", s, size)
	}
	switch name {
	case "pd-standard":
		return NewDisk(PDStandard, size), nil
	case "pd-ssd":
		return NewDisk(PDSSD, size), nil
	default:
		return nil, fmt.Errorf("unknown device type %q", name)
	}
}
