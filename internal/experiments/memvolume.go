package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/experiments/sweep"
	"repro/internal/spark"
	"repro/internal/units"
)

func init() {
	register(Experiment{
		ID:    "memvolume",
		Title: "Extension: data volume vs executor memory (spill/GC inflation, sim and t_mem_limit model)",
		Run:   memvolume,
	})
}

// The memvolume workload is a scan whose only provisioned-device
// traffic is HDFS reads: the Spark Local device carries nothing but
// spill. That isolates the memory model's device interaction — with the
// heap unset, HDD-local and SSD-local cells are identical runs; once
// the per-wave working set outgrows the heap, every extra byte of data
// volume becomes spill traffic at DefaultSpillReqSize (256 KB), the
// request size where the effective-bandwidth curves split HDD from SSD.
// The sweep walks per-task volume across the heap boundary
// (P·expansion·perTask vs 1 GB) and reports runtime inflation
// (with-heap / memory-off) per cell, simulated and from the closed-form
// t_mem_limit term.
const (
	mvTasks    = 64
	mvCompute  = 200 * time.Millisecond
	mvHeapGB   = 1.0
	mvSeeds    = 2
	mvSlaves   = 4
	mvCores    = 4
	mvHDFSReq  = 4 * units.MB
	mvHeadline = 256 * units.MB
)

func memvolumeApp(perTask units.ByteSize) spark.App {
	return spark.App{Name: "memvolume-scan", Stages: []spark.Stage{
		{
			Name: "scan",
			Groups: []spark.TaskGroup{{Name: "s", Count: mvTasks, Ops: []spark.Op{
				spark.IO(spark.OpHDFSRead, perTask, mvHDFSReq, 0),
				spark.Compute(mvCompute),
			}}},
		},
	}}
}

// memvolumeModel is the analytical twin of memvolumeApp.
func memvolumeModel(perTask units.ByteSize) core.AppModel {
	return core.AppModel{Name: "memvolume-scan", Stages: []core.StageModel{
		{
			Name: "scan",
			Groups: []core.GroupModel{{Name: "s", Count: mvTasks, ComputePerTask: mvCompute, Ops: []core.OpModel{
				{Kind: spark.OpHDFSRead, BytesPerTask: perTask, ReqSize: mvHDFSReq},
			}}},
		},
	}}
}

func memvolumeTestbed(local func() disk.Device, heapGB float64, seed uint64) spark.ClusterConfig {
	// HDFS stays SSD in every cell so the local device's only job is
	// absorbing spill.
	cfg := spark.DefaultTestbed(mvSlaves, mvCores, disk.NewSSD(), local())
	cfg.ComputeJitter = 0
	cfg.Seed = seed
	cfg.Memory = spark.MemoryConfig{HeapGB: heapGB}
	return cfg
}

// mvPoint is one (per-task volume, local device) cell; its value is the
// simulated runtime inflation with-heap over memory-off.
type mvPoint struct {
	dev     string
	mk      func() disk.Device
	perTask units.ByteSize
}

func memvolume(ctx context.Context) (*Table, error) {
	scales := []units.ByteSize{16 * units.MB, 64 * units.MB, 128 * units.MB, mvHeadline}
	devs := []struct {
		name string
		mk   func() disk.Device
	}{
		{"hdd", func() disk.Device { return disk.NewHDD() }},
		{"ssd", func() disk.Device { return disk.NewSSD() }},
	}
	var points []mvPoint
	for _, sc := range scales {
		for _, d := range devs {
			points = append(points, mvPoint{dev: d.name, mk: d.mk, perTask: sc})
		}
	}
	type mvCell struct{ heap, base float64 }
	outcomes := sweep.Map(points, 0, func(pt mvPoint) (mvCell, error) {
		if err := ctx.Err(); err != nil {
			return mvCell{}, err
		}
		app := memvolumeApp(pt.perTask)
		var c mvCell
		for seed := uint64(0); seed < mvSeeds; seed++ {
			on, err := spark.Run(memvolumeTestbed(pt.mk, mvHeapGB, seed), app)
			if err != nil {
				return mvCell{}, fmt.Errorf("%s %v heap: %w", pt.dev, pt.perTask, err)
			}
			off, err := spark.Run(memvolumeTestbed(pt.mk, 0, seed), app)
			if err != nil {
				return mvCell{}, fmt.Errorf("%s %v base: %w", pt.dev, pt.perTask, err)
			}
			c.heap += on.Total.Seconds() / mvSeeds
			c.base += off.Total.Seconds() / mvSeeds
		}
		return c, nil
	})
	cells, err := sweep.Values(outcomes)
	if err != nil {
		return nil, err
	}

	// Model twin: the same pair from StageModel.Predict, with and
	// without the additive t_mem_limit term.
	modelCell := func(mk func() disk.Device, perTask units.ByteSize) (mvCell, error) {
		model := memvolumeModel(perTask)
		on, err := model.Predict(core.PlatformFor(memvolumeTestbed(mk, mvHeapGB, 0)), core.ModeDoppio)
		if err != nil {
			return mvCell{}, err
		}
		off, err := model.Predict(core.PlatformFor(memvolumeTestbed(mk, 0, 0)), core.ModeDoppio)
		if err != nil {
			return mvCell{}, err
		}
		return mvCell{heap: on.Total.Seconds(), base: off.Total.Seconds()}, nil
	}

	t := &Table{
		ID: "memvolume",
		Title: fmt.Sprintf("Scan (%d tasks) on %d slaves, P=%d, %.0f GB heap: runtime inflation vs per-task volume",
			mvTasks, mvSlaves, mvCores, mvHeapGB),
		Columns: []string{
			"per-task", "HDD sim", "HDD model", "SSD sim", "SSD model", "gap (sim)",
		},
	}
	x2 := func(v float64) string { return fmt.Sprintf("%.2fx", v) }
	var headHDD, headSSD float64
	for si, sc := range scales {
		hdd, ssd := cells[2*si], cells[2*si+1]
		hddSim := hdd.heap / hdd.base
		ssdSim := ssd.heap / ssd.base
		hddMod, err := modelCell(devs[0].mk, sc)
		if err != nil {
			return nil, err
		}
		ssdMod, err := modelCell(devs[1].mk, sc)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%v", sc),
			x2(hddSim), x2(hddMod.heap/hddMod.base),
			x2(ssdSim), x2(ssdMod.heap/ssdMod.base),
			fmt.Sprintf("%+.2f", hddSim-ssdSim))
		if si == 0 {
			// Flat region: the wave's working set fits the heap, so the
			// memory layer must cost (nearly) nothing on either device.
			t.SetMetric("flat_hdd_inflation", hddSim)
			t.SetMetric("flat_ssd_inflation", ssdSim)
		}
		if sc == mvHeadline {
			headHDD, headSSD = hddSim, ssdSim
			t.SetMetric("hdd_spill_inflation", hddSim)
			t.SetMetric("ssd_spill_inflation", ssdSim)
			t.SetMetric("spill_gap", hddSim-ssdSim)
			// Agreement compares the memory term head-on: the extra
			// seconds the model's t_mem_limit adds over the extra seconds
			// the simulator actually spends spilling and collecting.
			// Dividing out each backend's own clean baseline would
			// conflate the memory model with Eq. 1's clean-run error.
			t.SetMetric("model_hdd_agreement", (hddMod.heap-hddMod.base)/(hdd.heap-hdd.base))
			t.SetMetric("model_ssd_agreement", (ssdMod.heap-ssdMod.base)/(ssd.heap-ssd.base))
		}
	}
	t.Note("each cell averages %d seeds; the memory-off run of the same cell is its baseline", mvSeeds)
	heapBytes := mvHeapGB * float64(units.GB)
	boundary := units.ByteSize(heapBytes / (mvCores * spark.DefaultMemExpansion))
	t.Note("the wave outgrows the heap at P x expansion x per-task > %.0f GB (= %v/task): below it inflation stays ~1x, above it spill lands on the Local device at %v requests, where HDD and SSD bandwidth diverge",
		mvHeapGB, boundary, units.ByteSize(spark.DefaultSpillReqSize))
	if headHDD <= headSSD {
		return nil, fmt.Errorf("memvolume: expected HDD spill inflation (%.3f) above SSD (%.3f)", headHDD, headSSD)
	}
	flat := cells[0].heap / cells[0].base
	if flat > headHDD {
		return nil, fmt.Errorf("memvolume: HDD inflation not growing with volume (%.3f at %v vs %.3f at %v)",
			flat, scales[0], headHDD, mvHeadline)
	}
	return t, nil
}
