package experiments

import (
	"context"
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the paper's evaluation must be
	// reproducible, plus the ablations.
	want := []string{
		"ablation-gc", "ablation-model", "errorbars",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
		"fig2", "fig3", "fig5", "fig6", "fig7", "fig8a", "fig8b", "fig9",
		"gatk4-full", "headline", "memvolume", "multidisk", "ousterhout", "resilience",
		"scheduler", "speculation", "tab4", "tab5",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("ids = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ids = %v, want %v", got, want)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "x", Title: "test", Columns: []string{"a", "b"}}
	tab.AddRow("1", "2")
	tab.Note("note %d", 7)
	var sb strings.Builder
	if _, err := tab.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"## x", "a", "1", "# note 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %q", want, out)
		}
	}
}

// runExperiment executes one experiment and sanity-checks the table.
func runExperiment(t *testing.T, id string) *Table {
	t.Helper()
	e, err := Get(id)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := e.Run(context.Background())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if tab.ID != id {
		t.Errorf("%s: table id %q", id, tab.ID)
	}
	if len(tab.Rows) == 0 {
		t.Fatalf("%s: empty table", id)
	}
	for i, r := range tab.Rows {
		if len(r) != len(tab.Columns) {
			t.Errorf("%s row %d: %d cells for %d columns", id, i, len(r), len(tab.Columns))
		}
	}
	if len(tab.Notes) == 0 {
		t.Errorf("%s: expected paper-comparison notes", id)
	}
	return tab
}

func TestFastExperiments(t *testing.T) {
	for _, id := range []string{"tab4", "tab5", "fig5", "fig6"} {
		runExperiment(t, id)
	}
}

func TestTableIVContent(t *testing.T) {
	tab := runExperiment(t, "tab4")
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// MD row: 122 GB HDFS read, 334 GB shuffle write.
	if tab.Rows[0][1] != "122" || tab.Rows[0][2] != "334" {
		t.Errorf("MD row = %v", tab.Rows[0])
	}
}

func TestFig5Content(t *testing.T) {
	tab := runExperiment(t, "fig5")
	// Find the 30 KB row and check the 32x-gap column.
	for _, r := range tab.Rows {
		if r[0] != "30KB" {
			continue
		}
		gap, err := strconv.ParseFloat(strings.TrimSuffix(r[5], "x"), 64)
		if err != nil {
			t.Fatal(err)
		}
		if gap < 28 || gap > 38 {
			t.Errorf("30KB gap = %v, paper says 32x", gap)
		}
		return
	}
	t.Fatal("no 30KB row")
}

func TestMediumExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweeps")
	}
	for _, id := range []string{"fig2", "fig3", "ablation-gc"} {
		runExperiment(t, id)
	}
}

func TestModelValidationExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration + sweeps")
	}
	for _, id := range []string{"fig7", "fig9", "fig11", "fig12", "ablation-model"} {
		runExperiment(t, id)
	}
}

// TestAppFigureErrorRates asserts the abstract's headline claim: the
// calibrated model predicts every Section V workload within 10%
// average error, and the HDD/SSD gap ratios land near the paper's
// published values.
func TestAppFigureErrorRates(t *testing.T) {
	if testing.Short() {
		t.Skip("full Section V sweep")
	}
	cases := []struct {
		id       string
		gapKey   string
		paperGap float64
	}{
		{"fig8a", "gap_dataValidator", 2.0},
		{"fig8b", "gap_iter", 7.0},
		{"fig9", "gap_subtract", 6.2},
		{"fig10", "gap_iter", 2.2},
		{"fig11", "gap_computeTriangleCount", 6.5},
		{"fig12", "gap_total", 2.6},
	}
	for _, c := range cases {
		tab := runExperiment(t, c.id)
		if e := tab.Metrics["avg_error"]; e <= 0 || e > 0.10 {
			t.Errorf("%s: average model error %.1f%% outside (0,10%%]", c.id, e*100)
		}
		gap := tab.Metrics[c.gapKey]
		if gap < c.paperGap*0.75 || gap > c.paperGap*1.25 {
			t.Errorf("%s: %s = %.2fx, paper reports %.1fx", c.id, c.gapKey, gap, c.paperGap)
		}
	}
}

func TestIterativeWorkloadExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("long iterative sims")
	}
	for _, id := range []string{"fig8a", "fig8b", "fig10"} {
		runExperiment(t, id)
	}
}

func TestExtensionExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("extension sweeps")
	}
	eb := runExperiment(t, "errorbars")
	if s := eb.Metrics["worst_spread"]; s <= 0 || s > 0.10 {
		t.Errorf("error-bar spread %.1f%% outside (0,10%%]", s*100)
	}
	full := runExperiment(t, "gatk4-full")
	if e := full.Metrics["avg_error"]; e <= 0 || e > 0.10 {
		t.Errorf("gatk4-full avg error %.1f%%", e*100)
	}
	md := runExperiment(t, "multidisk")
	if e := md.Metrics["avg_error"]; e <= 0 || e > 0.10 {
		t.Errorf("multidisk avg error %.1f%%", e*100)
	}
	sc := runExperiment(t, "scheduler")
	if r := sc.Metrics["wait_reduction"]; r < 0.2 {
		t.Errorf("scheduler wait reduction %.0f%%; model-driven SJF should cut waits substantially", r*100)
	}
}

func TestMemvolumeExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("memory sweep")
	}
	mv := runExperiment(t, "memvolume")
	t.Logf("memvolume metrics: %v", mv.Metrics)
	if f := mv.Metrics["flat_hdd_inflation"]; f < 0.97 || f > 1.05 {
		t.Errorf("flat-region HDD inflation %.3f, want ~1 (working set fits the heap)", f)
	}
	hdd, ssd := mv.Metrics["hdd_spill_inflation"], mv.Metrics["ssd_spill_inflation"]
	if hdd <= ssd || ssd <= 1 {
		t.Errorf("spill inflation hdd=%.2f ssd=%.2f, want hdd > ssd > 1", hdd, ssd)
	}
	for _, k := range []string{"model_hdd_agreement", "model_ssd_agreement"} {
		if a := mv.Metrics[k]; a <= 0 {
			t.Errorf("%s = %.3f, want positive", k, a)
		}
	}
}

func TestCloudExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("cloud calibration + grid search")
	}
	for _, id := range []string{"fig13", "fig15"} {
		runExperiment(t, id)
	}
	fig14 := runExperiment(t, "fig14")
	if e := fig14.Metrics["avg_error"]; e <= 0 || e > 0.10 {
		t.Errorf("fig14: average error %.1f%% outside (0,10%%]", e*100)
	}
	head := runExperiment(t, "headline")
	if s := head.Metrics["saving_R1"]; s < 0.30 || s > 0.46 {
		t.Errorf("saving vs R1 = %.0f%%, paper reports 38%%", s*100)
	}
	if s := head.Metrics["saving_R2"]; s < 0.49 || s > 0.65 {
		t.Errorf("saving vs R2 = %.0f%%, paper reports 57%%", s*100)
	}
}

func TestOusterhoutReconciliation(t *testing.T) {
	if testing.Short() {
		t.Skip("sim sweep")
	}
	tab := runExperiment(t, "ousterhout")
	// On [5]'s cluster shape the gain must stay near their <=19% bound...
	if g := tab.Metrics["gain_4to1"]; g < 0.05 || g > 0.25 {
		t.Errorf("4:1 gain = %.0f%%, want near [5]'s <=19%%", g*100)
	}
	// ...and invert decisively on the paper's core-rich shape.
	if g := tab.Metrics["gain_18to1"]; g < 0.4 {
		t.Errorf("18:1 gain = %.0f%%, I/O should dominate", g*100)
	}
}

func TestSpeculationExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("sim sweep")
	}
	tab := runExperiment(t, "speculation")
	if r := tab.Metrics["tail_recovered"]; r < 0.3 {
		t.Errorf("speculation recovered only %.0f%% of the tail", r*100)
	}
}
