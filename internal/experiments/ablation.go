package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/spark"
	"repro/internal/workloads"
)

func init() {
	register(Experiment{ID: "ablation-model", Title: "Ablation: Doppio vs peak-bandwidth vs no-overlap model variants", Run: ablationModel})
	register(Experiment{ID: "ablation-gc", Title: "Ablation: MarkDuplicate GC model on/off (paper §V-A1)", Run: ablationGC})
}

// ablationModel quantifies why the paper's two I/O-aware ingredients
// matter: the request-size-aware bandwidth lookup (vs Ernest-style peak
// bandwidth) and the CPU/I/O overlap max() composition (vs additive).
func ablationModel(ctx context.Context) (*Table, error) {
	cal, err := calibratedTestbed(ctx, "gatk4")
	if err != nil {
		return nil, err
	}
	w := mustWorkload("gatk4")
	t := &Table{
		ID: "ablation-model", Title: "GATK4 total-runtime prediction error by model variant, 10 slaves",
		Columns: []string{"config", "P", "exp (min)", "doppio", "peak-bw", "no-overlap"},
	}
	for _, c := range hybridConfigs {
		for _, p := range []int{12, 24} {
			cfg := spark.DefaultTestbed(10, p, c.HDFS(), c.Local())
			res, err := runSim(w, cfg)
			if err != nil {
				return nil, err
			}
			pl := core.PlatformFor(cfg)
			row := []string{c.Name, fmt.Sprint(p), fmtMin(res.Total)}
			for _, mode := range []core.Mode{core.ModeDoppio, core.ModePeakBW, core.ModeNoOverlap} {
				pred, err := cal.Model.Predict(pl, mode)
				if err != nil {
					return nil, err
				}
				row = append(row, fmtPct(core.ErrorRate(pred.Total, res.Total)))
			}
			t.AddRow(row...)
		}
	}
	t.Note("peak-bw collapses on HDD-local configs (it prices 30KB reads at sequential bandwidth); no-overlap overpredicts everywhere (it double-counts I/O hidden under computation)")
	return t, nil
}

// ablationGC isolates the GC model behind the MD flatness observation.
func ablationGC(context.Context) (*Table, error) {
	withGC := workloads.DefaultGATK4Params()
	noGC := withGC
	noGC.GCPerCore = 0

	ssd := disk.NewSSD()
	t := &Table{
		ID: "ablation-gc", Title: "MarkDuplicate runtime (min) on SSDs vs P, with and without the GC model",
		Columns: []string{"P", "with GC", "without GC"},
	}
	for _, p := range []int{12, 24, 36} {
		cfg := spark.DefaultTestbed(3, p, ssd, ssd)
		a, err := spark.Run(cfg, withGC.Build(cfg))
		if err != nil {
			return nil, err
		}
		b, err := spark.Run(cfg, noGC.Build(cfg))
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(p),
			fmtMin(a.MustStage("MD").Duration()),
			fmtMin(b.MustStage("MD").Duration()))
	}
	t.Note("with GC, MD stays near flat in P (the paper's observed behaviour); without it, MD scales like any compute stage — GC is why the analytic model misses MD at high P (paper §V-A1)")
	return t, nil
}
