package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/experiments/sweep"
	"repro/internal/optimizer"
	"repro/internal/units"
)

func init() {
	register(Experiment{ID: "tab5", Title: "Table V: disk price in Google Cloud platform", Run: tableV})
	register(Experiment{ID: "fig13", Title: "Fig. 13: cost for different sizes of HDDs (P=16, 10 slaves)", Run: fig13})
	register(Experiment{ID: "fig14", Title: "Fig. 14: measured vs model runtime vs HDD local size (16 vCPU)", Run: fig14})
	register(Experiment{ID: "fig15", Title: "Fig. 15: cost and runtime using different sizes SSD as local", Run: fig15})
	register(Experiment{ID: "headline", Title: "Section VI-4: optimal configuration and savings vs R1/R2", Run: headline})
}

func tableV(context.Context) (*Table, error) {
	p := cloud.DefaultPricing()
	t := &Table{
		ID: "tab5", Title: "Disk price in Google Cloud platform",
		Columns: []string{"type", "price (per GB/month)"},
	}
	t.AddRow("Standard provisioned space", fmt.Sprintf("$%.3f", p.StandardPerGBMonth))
	t.AddRow("SSD provisioned space", fmt.Sprintf("$%.3f", p.SSDPerGBMonth))
	t.Note("paper Table V: $0.040 and $0.170; the 4.2x ratio drives the optimizer's trade-off")
	return t, nil
}

// cloudEval builds the model evaluator from the cloud calibration.
func cloudEval(ctx context.Context) (*optimizer.CompiledEvaluator, error) {
	cal, err := calibratedCloud(ctx, "gatk4")
	if err != nil {
		return nil, err
	}
	return optimizer.ModelEvaluator(cal.Model), nil
}

// fig13Point is one (labelled) configuration of the Fig. 13 sweep.
type fig13Point struct {
	sweep, label string
	spec         cloud.ClusterSpec
}

// fig13 sweeps HDD sizes for both disks around the HDD optimum and
// prints the resulting cost curves plus the R1/R2 reference points. The
// points fan out through the sweep engine; rows keep sweep order.
func fig13(ctx context.Context) (*Table, error) {
	eval, err := cloudEval(ctx)
	if err != nil {
		return nil, err
	}
	pricing := cloud.DefaultPricing()
	t := &Table{
		ID: "fig13", Title: "Cost for different sizes of HDDs, GATK4, 10 slaves, 16 vCPU",
		Columns: []string{"sweep", "size", "time (min)", "cost"},
	}
	var points []fig13Point
	// 13a: HDFS size sweep at Local = 2 TB.
	for _, hs := range []units.ByteSize{500 * units.GB, units.TB, 2 * units.TB, 4 * units.TB, 8 * units.TB} {
		points = append(points, fig13Point{"a: HDFS (local=2TB)", fmtSize(hs), cloud.ClusterSpec{
			Slaves: 10, VCPUs: 16,
			HDFSType: cloud.PDStandard, HDFSSize: hs,
			LocalType: cloud.PDStandard, LocalSize: 2 * units.TB,
		}})
	}
	// 13b: Local size sweep at HDFS = 1 TB.
	for _, ls := range []units.ByteSize{200 * units.GB, 500 * units.GB, units.TB, 2 * units.TB, optimizer.ByteTB(3.2), 8 * units.TB} {
		points = append(points, fig13Point{"b: Local (hdfs=1TB)", fmtSize(ls), cloud.ClusterSpec{
			Slaves: 10, VCPUs: 16,
			HDFSType: cloud.PDStandard, HDFSSize: units.TB,
			LocalType: cloud.PDStandard, LocalSize: ls,
		}})
	}
	points = append(points,
		fig13Point{"reference", "R1 (8TB)", cloud.R1(10, 16)},
		fig13Point{"reference", "R2 (16TB)", cloud.R2(10, 16)},
	)
	outcomes := sweep.Map(points, 0, func(p fig13Point) (time.Duration, error) {
		return eval.Evaluate(p.spec)
	})
	durations, err := sweep.Values(outcomes)
	if err != nil {
		return nil, err
	}
	for i, p := range points {
		d := durations[i]
		t.AddRow(p.sweep, p.label, fmtMin(d), fmtUSD(p.spec.Cost(d, pricing)))
	}
	t.Note("paper: HDD optimum at HDFS=1TB, Local=2TB ($4.12); R1 $6.06, R2 $8.65 — our absolute dollars differ (faster simulated pipeline) but the optimum location and ordering reproduce")
	return t, nil
}

// fig14 verifies the model against the simulator while sweeping the
// HDD local size (Section VI-2).
func fig14(ctx context.Context) (*Table, error) {
	eval, err := cloudEval(ctx)
	if err != nil {
		return nil, err
	}
	w := mustWorkload("gatk4")
	sim := optimizer.SimEvaluator(w.Build)
	t := &Table{
		ID: "fig14", Title: "GATK4 runtime vs HDD local size, 16 vCPU, 10 slaves, HDFS=1TB HDD",
		Columns: []string{"local size", "exp (min)", "model (min)", "err"},
	}
	sizes := []units.ByteSize{200 * units.GB, 500 * units.GB, units.TB, 2 * units.TB, optimizer.ByteTB(3.2)}
	type pair struct{ sim, model time.Duration }
	outcomes := sweep.Map(sizes, 0, func(ls units.ByteSize) (pair, error) {
		spec := cloud.ClusterSpec{
			Slaves: 10, VCPUs: 16,
			HDFSType: cloud.PDStandard, HDFSSize: units.TB,
			LocalType: cloud.PDStandard, LocalSize: ls,
		}
		st, err := sim(spec)
		if err != nil {
			return pair{}, err
		}
		mt, err := eval.Evaluate(spec)
		if err != nil {
			return pair{}, err
		}
		return pair{st, mt}, nil
	})
	pairs, err := sweep.Values(outcomes)
	if err != nil {
		return nil, err
	}
	var sumErr float64
	var n int
	for i, ls := range sizes {
		st, mt := pairs[i].sim, pairs[i].model
		e := core.ErrorRate(mt, st)
		sumErr += e
		n++
		t.AddRow(fmtSize(ls), fmtMin(st), fmtMin(mt), fmtPct(e))
	}
	t.SetMetric("avg_error", sumErr/float64(n))
	t.Note("average error: %s (paper: <4%%); runtime falls until 2TB then flattens, as in the paper", fmtPct(sumErr/float64(n)))
	return t, nil
}

// fig15 sweeps SSD local sizes and core counts.
func fig15(ctx context.Context) (*Table, error) {
	eval, err := cloudEval(ctx)
	if err != nil {
		return nil, err
	}
	pricing := cloud.DefaultPricing()
	t := &Table{
		ID: "fig15", Title: "Cost and runtime using different sizes SSD as local (HDFS = 1TB HDD)",
		Columns: []string{"P", "SSD size", "time (min)", "cost"},
	}
	var specs []cloud.ClusterSpec
	for _, p := range []int{8, 16, 32} {
		for _, ls := range []units.ByteSize{20 * units.GB, 50 * units.GB, 100 * units.GB,
			200 * units.GB, 500 * units.GB, units.TB, optimizer.ByteTB(3.2)} {
			specs = append(specs, cloud.ClusterSpec{
				Slaves: 10, VCPUs: p,
				HDFSType: cloud.PDStandard, HDFSSize: units.TB,
				LocalType: cloud.PDSSD, LocalSize: ls,
			})
		}
	}
	outcomes := sweep.Map(specs, 0, eval.Evaluate)
	durations, err := sweep.Values(outcomes)
	if err != nil {
		return nil, err
	}
	for i, spec := range specs {
		d := durations[i]
		t.AddRow(fmt.Sprint(spec.VCPUs), fmtSize(spec.LocalSize), fmtMin(d), fmtUSD(spec.Cost(d, pricing)))
	}
	t.Note("paper: optimum at a small SSD (200GB, $3.75) — cost rises steeply below it (runtime explodes) and linearly above it (provisioned-space price)")
	return t, nil
}

// headline runs the full optimisation and reports the Section VI-4
// summary: optimal configuration and savings vs the R1/R2 provisioning
// guides.
func headline(ctx context.Context) (*Table, error) {
	eval, err := cloudEval(ctx)
	if err != nil {
		return nil, err
	}
	pricing := cloud.DefaultPricing()
	space := optimizer.DefaultSpace(10)
	space.VCPUs = []int{16}

	all, err := optimizer.GridSearch(space, eval, pricing)
	if err != nil {
		return nil, err
	}
	best := all[0]

	hddSpace := space
	hddSpace.LocalTypes = []cloud.DiskType{cloud.PDStandard}
	hddSpace.HDFSTypes = []cloud.DiskType{cloud.PDStandard}
	hddAll, err := optimizer.GridSearch(hddSpace, eval, pricing)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID: "headline", Title: "Optimal cloud configuration for GATK4 (10 slaves)",
		Columns: []string{"configuration", "spec", "time (min)", "cost", "saving vs"},
	}
	t.AddRow("optimal", best.Spec.String(), fmtMin(best.Time), fmtUSD(best.Cost), "—")
	t.AddRow("optimal (HDD only)", hddAll[0].Spec.String(), fmtMin(hddAll[0].Time), fmtUSD(hddAll[0].Cost),
		fmtPct(1-best.Cost/hddAll[0].Cost)+" cheaper with SSD local")
	t.SetMetric("optimal_cost", best.Cost)
	for _, ref := range []struct {
		name, key string
		spec      cloud.ClusterSpec
	}{
		{"R1 (Spark guide, 8TB)", "saving_R1", cloud.R1(10, 16)},
		{"R2 (Cloudera guide, 16TB)", "saving_R2", cloud.R2(10, 16)},
	} {
		d, err := eval.Evaluate(ref.spec)
		if err != nil {
			return nil, err
		}
		c := ref.spec.Cost(d, pricing)
		saving := 1 - best.Cost/c
		t.SetMetric(ref.key, saving)
		t.AddRow(ref.name, ref.spec.String(), fmtMin(d), fmtUSD(c), fmtPct(saving)+" saved by optimal")
	}
	t.Note("paper: optimum = 200GB SSD local + 1TB HDD HDFS at $3.75, saving 38%% vs R1 and 57%% vs R2")
	return t, nil
}
