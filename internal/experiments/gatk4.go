package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/spark"
	"repro/internal/units"
)

// hybridConfigs are Table III's four HDD/SSD combinations.
var hybridConfigs = []struct {
	Name        string
	HDFS, Local func() disk.Device
}{
	{"1 (hdfs=SSD local=SSD)", newSSD, newSSD},
	{"2 (hdfs=HDD local=SSD)", newHDD, newSSD},
	{"3 (hdfs=SSD local=HDD)", newSSD, newHDD},
	{"4 (hdfs=HDD local=HDD)", newHDD, newHDD},
}

func newSSD() disk.Device { return disk.NewSSD() }
func newHDD() disk.Device { return disk.NewHDD() }

func init() {
	register(Experiment{ID: "tab4", Title: "Table IV: I/O data size (GB) in different GATK4 stages", Run: tableIV})
	register(Experiment{ID: "fig2", Title: "Fig. 2: GATK4 stage runtimes, four disk configs, P=36, 3 slaves", Run: fig2})
	register(Experiment{ID: "fig3", Title: "Fig. 3: GATK4 runtime for 2HDD and 2SSD, P=12/24/36", Run: fig3})
	register(Experiment{ID: "fig7", Title: "Fig. 7: GATK4 measured (exp) vs Doppio model, 10 slaves", Run: fig7})
}

// tableIV regenerates Table IV from the simulator's own I/O accounting.
func tableIV(context.Context) (*Table, error) {
	w := mustWorkload("gatk4")
	ssd := disk.NewSSD()
	res, err := runSim(w, spark.DefaultTestbed(3, 36, ssd, ssd))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "tab4", Title: "I/O data size (GB) in different GATK4 stages",
		Columns: []string{"stage", "HDFS read", "Shuffle write", "Shuffle read", "HDFS write"},
	}
	for _, name := range []string{"MD", "BR", "SF"} {
		s := res.MustStage(name)
		t.AddRow(name,
			fmtGB(s.IO[spark.OpHDFSRead].Bytes),
			fmtGB(s.IO[spark.OpShuffleWrite].Bytes),
			fmtGB(s.IO[spark.OpShuffleRead].Bytes),
			fmtGB(s.IO[spark.OpHDFSWrite].Bytes))
	}
	t.Note("paper: MD 122/334/0/0, BR 122/0/334/0, SF 122/0/334/166 GB (HDFS write here includes 2x replication)")
	return t, nil
}

// fig2 measures the four Table III configurations at P=36 on three
// slaves.
func fig2(context.Context) (*Table, error) {
	w := mustWorkload("gatk4")
	t := &Table{
		ID: "fig2", Title: "GATK4 stage runtime (min), 500M read pairs, 3 slaves, P=36",
		Columns: []string{"config", "MD", "BR", "SF", "total"},
	}
	for _, c := range hybridConfigs {
		res, err := runSim(w, spark.DefaultTestbed(3, 36, c.HDFS(), c.Local()))
		if err != nil {
			return nil, err
		}
		t.AddRow(c.Name,
			fmtMin(res.MustStage("MD").Duration()),
			fmtMin(res.MustStage("BR").Duration()),
			fmtMin(res.MustStage("SF").Duration()),
			fmtMin(res.Total))
	}
	t.Note("paper's shape: HDFS switch moves BR (<=30%%) and SF (<=90%%) but not MD; local HDD pushes BR and SF to ~126 min each")
	return t, nil
}

// fig3 sweeps P for the 2SSD and 2HDD configurations.
func fig3(context.Context) (*Table, error) {
	w := mustWorkload("gatk4")
	t := &Table{
		ID: "fig3", Title: "GATK4 stage runtime (min) vs per-node cores P, 3 slaves",
		Columns: []string{"config", "P", "MD", "BR", "SF"},
	}
	for _, c := range []struct {
		name string
		dev  func() disk.Device
	}{{"2SSD", newSSD}, {"2HDD", newHDD}} {
		for _, p := range []int{12, 24, 36} {
			res, err := runSim(w, spark.DefaultTestbed(3, p, c.dev(), c.dev()))
			if err != nil {
				return nil, err
			}
			t.AddRow(c.name, fmt.Sprint(p),
				fmtMin(res.MustStage("MD").Duration()),
				fmtMin(res.MustStage("BR").Duration()),
				fmtMin(res.MustStage("SF").Duration()))
		}
	}
	t.Note("paper's shape: BR/SF scale with P on SSDs, stay flat on HDDs (B=5); MD near flat on both (GC / shuffle-write bound)")
	return t, nil
}

// fig7 compares the simulator against the four-sample-run calibrated
// model on ten slaves, P ∈ {6,12,24}, all four disk configurations.
func fig7(ctx context.Context) (*Table, error) {
	cal, err := calibratedTestbed(ctx, "gatk4")
	if err != nil {
		return nil, err
	}
	w := mustWorkload("gatk4")
	t := &Table{
		ID: "fig7", Title: "GATK4 measured (exp) vs model (min), 10 slaves",
		Columns: []string{"config", "P", "stage", "exp", "model", "err"},
	}
	var sumErr float64
	var cells int
	for _, c := range hybridConfigs {
		for _, p := range []int{6, 12, 24} {
			cfg := spark.DefaultTestbed(10, p, c.HDFS(), c.Local())
			res, err := runSim(w, cfg)
			if err != nil {
				return nil, err
			}
			pred, err := cal.Model.Predict(core.PlatformFor(cfg), core.ModeDoppio)
			if err != nil {
				return nil, err
			}
			for _, st := range []string{"MD", "BR", "SF"} {
				meas := res.MustStage(st).Duration()
				pr, _ := pred.Stage(st)
				e := core.ErrorRate(pr.T, meas)
				sumErr += e
				cells++
				t.AddRow(c.Name, fmt.Sprint(p), st, fmtMin(meas), fmtMin(pr.T), fmtPct(e))
			}
		}
	}
	t.SetMetric("avg_error", sumErr/float64(cells))
	t.Note("average per-stage error: %s (paper reports <6%%; MD carries the unmodelled GC effect, paper §V-A1)", fmtPct(sumErr/float64(cells)))
	return t, nil
}

// shuffleReadReqSize is re-exported for the fig5 annotation.
var gatk4ShuffleReqSize = spark.ShuffleReadReqSize(27*units.MB, 973)
