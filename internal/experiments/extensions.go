package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/sched"
	"repro/internal/spark"
)

func init() {
	register(Experiment{ID: "errorbars", Title: "Error bars: five repeat runs of GATK4 (the paper's §II-C methodology)", Run: errorBars})
	register(Experiment{ID: "gatk4-full", Title: "Extension (§VIII): six-stage GATK4 with BWA and HaplotypeCaller", Run: gatk4Full})
	register(Experiment{ID: "multidisk", Title: "Extension (§IV-C): model generality over multi-disk arrays", Run: multiDisk})
	register(Experiment{ID: "scheduler", Title: "Extension (§I): model-driven job scheduling vs FIFO", Run: scheduler})
}

// errorBars repeats the Fig. 2 measurement with five jitter seeds and
// reports mean, min and max per stage — the error bars the paper draws
// on every figure.
func errorBars(context.Context) (*Table, error) {
	w := mustWorkload("gatk4")
	t := &Table{
		ID: "errorbars", Title: "GATK4 over five seeds (min), 3 slaves, P=36, 2SSD",
		Columns: []string{"stage", "mean", "min", "max", "spread"},
	}
	const runs = 5
	stageNames := []string{"MD", "BR", "SF"}
	times := map[string][]time.Duration{}
	for seed := 0; seed < runs; seed++ {
		cfg := spark.DefaultTestbed(3, 36, disk.NewSSD(), disk.NewSSD())
		cfg.Seed = uint64(seed)
		res, err := runSim(w, cfg)
		if err != nil {
			return nil, err
		}
		for _, s := range stageNames {
			times[s] = append(times[s], res.MustStage(s).Duration())
		}
	}
	var worstSpread float64
	for _, s := range stageNames {
		var sum, min, max time.Duration
		min = times[s][0]
		for _, d := range times[s] {
			sum += d
			if d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
		mean := sum / runs
		spread := (max - min).Seconds() / mean.Seconds()
		if spread > worstSpread {
			worstSpread = spread
		}
		t.AddRow(s, fmtMin(mean), fmtMin(min), fmtMin(max), fmtPct(spread))
	}
	t.SetMetric("worst_spread", worstSpread)
	t.Note("the paper reports five-run averages with positive/negative error bars; run-to-run spread here comes from the deterministic task-time jitter seeds")
	return t, nil
}

// gatk4Full measures the extended pipeline across the disk configs and
// checks the model tracks it without recalibration tricks (a fresh
// calibration on the extended app).
func gatk4Full(ctx context.Context) (*Table, error) {
	cal, err := calibratedTestbed(ctx, "gatk4-full")
	if err != nil {
		return nil, err
	}
	w := mustWorkload("gatk4-full")
	t := &Table{
		ID: "gatk4-full", Title: "Extended GATK4 (BWA+MD+BR+SF+HC), 10 slaves, P=24 (min)",
		Columns: []string{"config", "BWA", "MD", "BR", "SF", "HC", "total", "model total", "err"},
	}
	var sumErr float64
	var n int
	for _, c := range hybridConfigs {
		cfg := spark.DefaultTestbed(10, 24, c.HDFS(), c.Local())
		res, err := runSim(w, cfg)
		if err != nil {
			return nil, err
		}
		pred, err := cal.Model.Predict(core.PlatformFor(cfg), core.ModeDoppio)
		if err != nil {
			return nil, err
		}
		e := core.ErrorRate(pred.Total, res.Total)
		sumErr += e
		n++
		t.AddRow(c.Name,
			fmtMin(res.MustStage("BWA").Duration()),
			fmtMin(res.MustStage("MD").Duration()),
			fmtMin(res.MustStage("BR").Duration()),
			fmtMin(res.MustStage("SF").Duration()),
			fmtMin(res.MustStage("HC").Duration()),
			fmtMin(res.Total), fmtMin(pred.Total), fmtPct(e))
	}
	t.SetMetric("avg_error", sumErr/float64(n))
	t.Note("BWA and HC are compute-bound and disk-insensitive; the middle stages keep their storage cliff — the extension dilutes but does not remove the paper's conclusion")
	return t, nil
}

// multiDisk verifies the paper's Section IV-C claim: the model "relates
// to disk bandwidth rather than disk number", so a striped array enters
// through its bandwidth curve and nothing else.
func multiDisk(ctx context.Context) (*Table, error) {
	cal, err := calibratedTestbed(ctx, "gatk4")
	if err != nil {
		return nil, err
	}
	w := mustWorkload("gatk4")
	t := &Table{
		ID: "multidisk", Title: "GATK4 with striped HDD arrays as Spark Local, 10 slaves, P=24",
		Columns: []string{"local disks", "BR exp (min)", "BR model (min)", "err", "total exp", "total model", "err"},
	}
	var sumErr float64
	var cells int
	for _, n := range []int{1, 2, 4, 8} {
		local := disk.NewArray(disk.NewHDD(), n)
		cfg := spark.DefaultTestbed(10, 24, disk.NewSSD(), local)
		res, err := runSim(w, cfg)
		if err != nil {
			return nil, err
		}
		pred, err := cal.Model.Predict(core.PlatformFor(cfg), core.ModeDoppio)
		if err != nil {
			return nil, err
		}
		br := res.MustStage("BR").Duration()
		brPred, _ := pred.Stage("BR")
		e1 := core.ErrorRate(brPred.T, br)
		e2 := core.ErrorRate(pred.Total, res.Total)
		sumErr += e1 + e2
		cells += 2
		t.AddRow(fmt.Sprint(n), fmtMin(br), fmtMin(brPred.T), fmtPct(e1),
			fmtMin(res.Total), fmtMin(pred.Total), fmtPct(e2))
	}
	t.SetMetric("avg_error", sumErr/float64(cells))
	t.Note("the calibration never saw an array; predictions use only the array's profiled bandwidth curve — disk *bandwidth*, not disk count, is what the model consumes")
	return t, nil
}

// scheduler quantifies the introduction's use case: a shared cluster
// running a batch of jobs, FIFO vs shortest-predicted-job-first with
// Doppio runtime estimates.
func scheduler(ctx context.Context) (*Table, error) {
	specs := []struct {
		workload string
	}{
		{"gatk4"}, {"terasort"}, {"trianglecount"}, {"svm"}, {"lr-small"},
	}
	var jobs []sched.Job
	for _, s := range specs {
		w := mustWorkload(s.workload)
		cfg := spark.DefaultTestbed(10, 36, disk.NewSSD(), disk.NewSSD())
		res, err := runSim(w, cfg)
		if err != nil {
			return nil, err
		}
		cal, err := calibratedTestbed(ctx, s.workload)
		if err != nil {
			return nil, err
		}
		pred, err := cal.Model.Predict(core.PlatformFor(cfg), core.ModeDoppio)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, sched.Job{
			Name:      s.workload,
			Runtime:   res.Total,
			Predicted: pred.Total,
		})
	}

	t := &Table{
		ID: "scheduler", Title: "Batch of five jobs on a shared 10-slave cluster: average waiting time by policy",
		Columns: []string{"policy", "avg wait (min)", "avg turnaround (min)", "makespan (min)"},
	}
	var fifoWait, sjfWait time.Duration
	for _, pol := range []sched.Policy{sched.FIFO, sched.SJF, sched.SJFOracle} {
		out, err := sched.Run(jobs, pol)
		if err != nil {
			return nil, err
		}
		switch pol {
		case sched.FIFO:
			fifoWait = out.AvgWait()
		case sched.SJF:
			sjfWait = out.AvgWait()
		}
		t.AddRow(pol.String(), fmtMin(out.AvgWait()), fmtMin(out.AvgTurnaround()), fmtMin(out.Makespan()))
	}
	if fifoWait > 0 {
		saving := 1 - sjfWait.Seconds()/fifoWait.Seconds()
		t.SetMetric("wait_reduction", saving)
		t.Note("model-driven SJF cuts average waiting time by %s vs FIFO (the paper's §I scheduler claim); the oracle row shows how little the <10%% prediction error costs", fmtPct(saving))
	}
	return t, nil
}
