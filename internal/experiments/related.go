package experiments

import (
	"context"
	"fmt"

	"repro/internal/disk"
	"repro/internal/profile"
	"repro/internal/spark"
)

func init() {
	register(Experiment{
		ID:    "ousterhout",
		Title: "Section VII-A reconciliation: why [5] found I/O irrelevant for SQL — and when it stops being true",
		Run:   ousterhout,
	})
}

// ousterhout runs the low-I/O-intensity SQL workload on [5]'s 4:1
// CPU:disk shape and on the paper's core-rich 18:1 shape, measuring the
// HDD→SSD improvement and the blocked-time fraction in both.
func ousterhout(context.Context) (*Table, error) {
	w := mustWorkload("sql")
	t := &Table{
		ID:    "ousterhout",
		Title: "SQL query: HDD->SSD improvement and blocked time by cluster shape (10 slaves)",
		Columns: []string{
			"cluster shape", "P", "HDD (min)", "SSD (min)", "I/O optimisation gain", "blocked on HDD",
		},
	}
	type shape struct {
		name string
		p    int
	}
	var gains []float64
	for _, sh := range []shape{
		{"[5]-like 4:1 CPU:disk", 8},
		{"paper-like 18:1 CPU:disk", 36},
	} {
		hddCfg := spark.DefaultTestbed(10, sh.p, disk.NewHDD(), disk.NewHDD())
		hdd, err := runSim(w, hddCfg)
		if err != nil {
			return nil, err
		}
		ssd, err := runSim(w, spark.DefaultTestbed(10, sh.p, disk.NewSSD(), disk.NewSSD()))
		if err != nil {
			return nil, err
		}
		gain := 1 - ssd.Total.Seconds()/hdd.Total.Seconds()
		gains = append(gains, gain)

		var blocked, taskTime float64
		for _, b := range profile.BlockedTimeAnalysis(hdd) {
			blocked += b.Blocked.Seconds()
			taskTime += b.TaskTime.Seconds()
		}
		frac := 0.0
		if taskTime > 0 {
			frac = blocked / taskTime
		}
		t.AddRow(sh.name, fmt.Sprint(sh.p),
			fmtMin(hdd.Total), fmtMin(ssd.Total), fmtPct(gain), fmtPct(frac))
	}
	t.SetMetric("gain_4to1", gains[0])
	t.SetMetric("gain_18to1", gains[1])
	t.Note("[5] reports <=19%% runtime reduction from eliminating disk I/O on SQL workloads; with their ~10 MB/s-per-core intensity and 4:1 shape the reproduction agrees — and the model predicts the same query turns I/O-bound once the core count outruns the disks (the paper's §VII-A explanation: apply their numbers to Eq. 1)")
	return t, nil
}
