package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// WriteCSV renders the table as RFC-4180 CSV (notes become trailing
// comment-style rows prefixed with '#').
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		row := make([]string, len(t.Columns))
		row[0] = "# " + n
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteMarkdown renders the table as GitHub-flavoured markdown.
func (t *Table) WriteMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title); err != nil {
		return err
	}
	esc := func(s string) string { return strings.ReplaceAll(s, "|", "\\|") }
	var b strings.Builder
	b.WriteString("|")
	for _, c := range t.Columns {
		b.WriteString(" " + esc(c) + " |")
	}
	b.WriteString("\n|")
	for range t.Columns {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		b.WriteString("|")
		for _, c := range r {
			b.WriteString(" " + esc(c) + " |")
		}
		b.WriteString("\n")
	}
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "\n> %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// Render writes the table in the named format: "text" (default), "csv"
// or "md".
func (t *Table) Render(w io.Writer, format string) error {
	switch format {
	case "", "text":
		_, err := t.WriteTo(w)
		return err
	case "csv":
		return t.WriteCSV(w)
	case "md", "markdown":
		return t.WriteMarkdown(w)
	default:
		return fmt.Errorf("experiments: unknown format %q (text, csv, md)", format)
	}
}
