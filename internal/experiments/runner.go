package experiments

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"
)

// Report is the outcome of one experiment executed through the pool:
// either a Table or an error, plus the artifact's wall-clock runtime.
// Reports preserve the order the ids were requested in, regardless of
// which worker finished first.
type Report struct {
	ID    string
	Title string
	// Table is the regenerated artifact; nil when Err is set.
	Table *Table
	// Err is the artifact's own failure. One failing artifact never
	// cancels its siblings; callers inspect each report. Cancellation
	// and per-artifact deadlines surface here too, wrapping
	// context.Canceled / context.DeadlineExceeded.
	Err error
	// Runtime is the artifact's wall-clock regeneration time. It is
	// also recorded in Table.Metrics["runtime_seconds"].
	Runtime time.Duration
	// CacheHits / CacheMisses count the artifact's calibration-cache
	// lookups: a hit reused a fitted model (or joined an in-flight
	// build); a miss paid the four sample runs. Both are also recorded
	// in Table.Metrics when the artifact calibrates at all.
	CacheHits, CacheMisses int
}

// RuntimeMetric is the Table.Metrics key carrying the per-artifact
// wall-clock seconds. Comparisons between runs (serial vs parallel,
// tolerance checks) must ignore it: it is not a deterministic function
// of the model (see NondeterministicMetric).
const RuntimeMetric = "runtime_seconds"

// Calibration-cache metrics keys. Lookups (hits+misses) is a
// deterministic function of the artifact's code path, so the metrics CI
// job can pin it to an exact window; the hit/miss split depends on which
// sibling artifact calibrated first and is excluded from determinism
// comparisons.
const (
	CacheHitsMetric    = "calibration_cache_hits"
	CacheMissesMetric  = "calibration_cache_misses"
	CacheLookupsMetric = "calibration_cache_lookups"
)

// NondeterministicMetric reports whether a Table.Metrics key is allowed
// to differ between two runs of the same artifact (wall-clock time, and
// the scheduling-dependent hit/miss split). Tests comparing serial vs
// parallel output strip exactly these keys. The `doppio route` counters
// (doppio_cluster_*_total) are in the same class: how many retries,
// failovers, hedges, coalesced waits, or probes a chaos run records
// depends entirely on timing, so scrape gates (metriccheck -prom) may
// only window them, and must tolerate their absence from a quiet
// scrape. The serve tier's cache-plane counters — snapshot writes
// (doppio_cache_snapshot_*_total), cross-replica read-throughs
// (doppio_peer_readthrough_total), and peek traffic
// (doppio_peek_requests_total) — vary the same way: how many snapshot
// cycles fit a run and whether a failover window ever triggered a
// read-through are pure scheduling accidents.
func NondeterministicMetric(name string) bool {
	switch name {
	case RuntimeMetric, CacheHitsMetric, CacheMissesMetric:
		return true
	}
	if !strings.HasSuffix(name, "_total") {
		return false
	}
	for _, prefix := range []string{
		"doppio_cluster_",
		"doppio_cache_snapshot_",
		"doppio_peer_",
		"doppio_peek_",
	} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// Options tunes a RunSet/RunAll invocation.
type Options struct {
	// Parallel is the worker-pool size; <=0 means GOMAXPROCS.
	Parallel int
	// ArtifactTimeout bounds each artifact's regeneration; an artifact
	// exceeding it gets a context.DeadlineExceeded report while its
	// siblings continue. Zero means no per-artifact deadline.
	ArtifactTimeout time.Duration
}

// RunAll regenerates every registered artifact through a worker pool.
// See RunSet.
func RunAll(ctx context.Context, opts Options) []Report {
	reports, _ := RunSet(ctx, IDs(), opts) // IDs() only returns registered ids
	return reports
}

// RunSet regenerates the named artifacts concurrently on a worker pool.
// The returned reports are in the order of ids. Unknown ids fail
// upfront, before any work starts; individual artifact failures
// (including panics and blown deadlines) are isolated into their own
// Report and do not stop the remaining artifacts. Cancelling ctx stops
// feeding the pool: artifacts not yet started report ctx's error, and
// the call returns once in-flight artifacts finish, so partial results
// are always available for flushing.
func RunSet(ctx context.Context, ids []string, opts Options) ([]Report, error) {
	exps := make([]Experiment, len(ids))
	for i, id := range ids {
		e, err := Get(id)
		if err != nil {
			return nil, err
		}
		exps[i] = e
	}
	return runExperiments(ctx, exps, opts), nil
}

// runExperiments is the pool itself, factored out so tests can inject
// experiments (e.g. deliberately failing ones) without touching the
// global registry.
func runExperiments(ctx context.Context, exps []Experiment, opts Options) []Report {
	if ctx == nil {
		ctx = context.Background()
	}
	parallel := opts.Parallel
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > len(exps) {
		parallel = len(exps)
	}
	if parallel < 1 {
		parallel = 1
	}
	reports := make([]Report, len(exps))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				reports[i] = runOne(ctx, exps[i], opts.ArtifactTimeout)
			}
		}()
	}
feed:
	for i := range exps {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	// Artifacts the cancelled feed never dispatched still owe a report.
	for i := range reports {
		if reports[i].ID == "" {
			reports[i] = Report{
				ID:    exps[i].ID,
				Title: exps[i].Title,
				Err:   fmt.Errorf("experiments: %s not started: %w", exps[i].ID, context.Cause(ctx)),
			}
		}
	}
	return reports
}

// runOne executes a single experiment, capturing panics as errors so a
// broken artifact cannot take down a whole sweep. A positive timeout
// bounds the artifact with its own deadline; an artifact that outlives
// it is abandoned (its goroutine drains in the background) and reported
// as context.DeadlineExceeded.
func runOne(ctx context.Context, e Experiment, timeout time.Duration) (rep Report) {
	rep.ID = e.ID
	rep.Title = e.Title
	start := time.Now()
	ctx, stats := withCalStats(ctx)
	defer func() {
		rep.Runtime = time.Since(start)
		if r := recover(); r != nil {
			rep.Table = nil
			rep.Err = fmt.Errorf("experiments: %s panicked: %v", e.ID, r)
		}
		rep.CacheHits, rep.CacheMisses = stats.counts()
		if rep.Table != nil {
			rep.Table.SetMetric(RuntimeMetric, rep.Runtime.Seconds())
			if lookups := rep.CacheHits + rep.CacheMisses; lookups > 0 {
				rep.Table.SetMetric(CacheHitsMetric, float64(rep.CacheHits))
				rep.Table.SetMetric(CacheMissesMetric, float64(rep.CacheMisses))
				rep.Table.SetMetric(CacheLookupsMetric, float64(lookups))
			}
		}
	}()
	if err := ctx.Err(); err != nil {
		rep.Err = fmt.Errorf("experiments: %s not started: %w", e.ID, err)
		return rep
	}
	actx := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	type outcome struct {
		table *Table
		err   error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{err: fmt.Errorf("experiments: %s panicked: %v", e.ID, r)}
			}
		}()
		t, err := e.Run(actx)
		ch <- outcome{table: t, err: err}
	}()
	select {
	case o := <-ch:
		rep.Table, rep.Err = o.table, o.err
	case <-actx.Done():
		rep.Err = fmt.Errorf("experiments: %s: %w", e.ID, actx.Err())
		return rep
	}
	if rep.Err == nil && rep.Table == nil {
		rep.Err = fmt.Errorf("experiments: %s returned no table", e.ID)
	}
	return rep
}

// Failed filters the reports down to the failing ones.
func Failed(reports []Report) []Report {
	var out []Report
	for _, r := range reports {
		if r.Err != nil {
			out = append(out, r)
		}
	}
	return out
}
