package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Report is the outcome of one experiment executed through the pool:
// either a Table or an error, plus the artifact's wall-clock runtime.
// Reports preserve the order the ids were requested in, regardless of
// which worker finished first.
type Report struct {
	ID    string
	Title string
	// Table is the regenerated artifact; nil when Err is set.
	Table *Table
	// Err is the artifact's own failure. One failing artifact never
	// cancels its siblings; callers inspect each report.
	Err error
	// Runtime is the artifact's wall-clock regeneration time. It is
	// also recorded in Table.Metrics["runtime_seconds"].
	Runtime time.Duration
}

// RuntimeMetric is the Table.Metrics key carrying the per-artifact
// wall-clock seconds. Comparisons between runs (serial vs parallel,
// tolerance checks) must ignore it: it is the one metric that is not a
// deterministic function of the model.
const RuntimeMetric = "runtime_seconds"

// RunAll regenerates every registered artifact through a worker pool of
// the given size (<=0 means GOMAXPROCS). See RunSet.
func RunAll(parallel int) []Report {
	reports, err := RunSet(IDs(), parallel)
	if err != nil {
		// IDs() only returns registered ids; resolution cannot fail.
		panic(err)
	}
	return reports
}

// RunSet regenerates the named artifacts concurrently on a worker pool
// of the given size (<=0 means GOMAXPROCS). The returned reports are in
// the order of ids. Unknown ids fail upfront, before any work starts;
// individual artifact failures (including panics) are isolated into
// their own Report and do not stop the remaining artifacts.
func RunSet(ids []string, parallel int) ([]Report, error) {
	exps := make([]Experiment, len(ids))
	for i, id := range ids {
		e, err := Get(id)
		if err != nil {
			return nil, err
		}
		exps[i] = e
	}
	return runExperiments(exps, parallel), nil
}

// runExperiments is the pool itself, factored out so tests can inject
// experiments (e.g. deliberately failing ones) without touching the
// global registry.
func runExperiments(exps []Experiment, parallel int) []Report {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > len(exps) {
		parallel = len(exps)
	}
	if parallel < 1 {
		parallel = 1
	}
	reports := make([]Report, len(exps))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				reports[i] = runOne(exps[i])
			}
		}()
	}
	for i := range exps {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return reports
}

// runOne executes a single experiment, capturing panics as errors so a
// broken artifact cannot take down a whole sweep.
func runOne(e Experiment) (rep Report) {
	rep.ID = e.ID
	rep.Title = e.Title
	start := time.Now()
	defer func() {
		rep.Runtime = time.Since(start)
		if r := recover(); r != nil {
			rep.Table = nil
			rep.Err = fmt.Errorf("experiments: %s panicked: %v", e.ID, r)
		}
		if rep.Table != nil {
			rep.Table.SetMetric(RuntimeMetric, rep.Runtime.Seconds())
		}
	}()
	rep.Table, rep.Err = e.Run()
	if rep.Err == nil && rep.Table == nil {
		rep.Err = fmt.Errorf("experiments: %s returned no table", e.ID)
	}
	return rep
}

// Failed filters the reports down to the failing ones.
func Failed(reports []Report) []Report {
	var out []Report
	for _, r := range reports {
		if r.Err != nil {
			out = append(out, r)
		}
	}
	return out
}
