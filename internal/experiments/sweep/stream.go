package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// StreamOptions tunes a StreamMap invocation.
type StreamOptions struct {
	// Parallel is the worker-pool size; <=0 means GOMAXPROCS.
	Parallel int
	// PointTimeout bounds each point's evaluation with its own deadline.
	// A point that outlives it is abandoned (its goroutine drains in the
	// background, exactly like the experiments runner's per-artifact
	// deadline) and reported with context.DeadlineExceeded. Zero means
	// no per-point deadline.
	PointTimeout time.Duration
}

// StreamMap is Map with the campaign-grade controls long multi-point
// studies need: cancelling ctx stops feeding the pool (in-flight points
// finish, unstarted points report ctx's error), a positive PointTimeout
// bounds each point with its own deadline, a panicking fn is captured
// into that point's Err without disturbing its siblings, and sink —
// when non-nil — is invoked as each point completes. Sink invocations
// are serialized (one at a time, in completion order), so callers can
// append to durable state such as a checkpoint file without their own
// locking; a sink error cancels the remaining points and is returned.
// Outcomes are returned in input order regardless of completion order.
func StreamMap[P, R any](ctx context.Context, points []P, opts StreamOptions,
	fn func(context.Context, P) (R, error),
	sink func(i int, o Outcome[P, R]) error) ([]Outcome[P, R], error) {

	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	parallel := opts.Parallel
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > len(points) {
		parallel = len(points)
	}
	if parallel < 1 {
		parallel = 1
	}

	out := make([]Outcome[P, R], len(points))
	started := make([]bool, len(points))

	var (
		sinkMu  sync.Mutex
		sinkErr error
	)
	deliver := func(i int, o Outcome[P, R]) {
		out[i] = o
		if sink == nil {
			return
		}
		sinkMu.Lock()
		defer sinkMu.Unlock()
		if sinkErr != nil {
			return // already aborting; drop further deliveries
		}
		if err := sink(i, o); err != nil {
			sinkErr = err
			cancel()
		}
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				deliver(i, evalPoint(ctx, points[i], opts.PointTimeout, fn))
			}
		}()
	}
feed:
	for i := range points {
		select {
		case idx <- i:
			started[i] = true
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()

	for i := range out {
		if !started[i] {
			out[i] = Outcome[P, R]{
				Point: points[i],
				Err:   fmt.Errorf("sweep: point %d not started: %w", i, context.Cause(ctx)),
			}
		}
	}
	sinkMu.Lock()
	err := sinkErr
	sinkMu.Unlock()
	return out, err
}

// evalPoint runs fn for one point under its own deadline, capturing
// panics as errors. fn runs in a child goroutine so a point that
// ignores its context can still be abandoned when the deadline fires.
func evalPoint[P, R any](ctx context.Context, p P, timeout time.Duration, fn func(context.Context, P) (R, error)) Outcome[P, R] {
	start := time.Now()
	pctx := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		pctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	type result struct {
		v   R
		err error
	}
	ch := make(chan result, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				var zero R
				ch <- result{zero, fmt.Errorf("sweep: point panicked: %v", r)}
			}
		}()
		v, err := fn(pctx, p)
		ch <- result{v, err}
	}()
	o := Outcome[P, R]{Point: p}
	select {
	case r := <-ch:
		o.Value, o.Err = r.v, r.err
	case <-pctx.Done():
		o.Err = pctx.Err()
	}
	o.Elapsed = time.Since(start)
	return o
}
