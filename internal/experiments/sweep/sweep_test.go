package sweep

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/disk"
)

func TestMapPreservesOrder(t *testing.T) {
	points := make([]int, 100)
	for i := range points {
		points[i] = i
	}
	out := Map(points, 8, func(p int) (int, error) { return p * p, nil })
	if len(out) != len(points) {
		t.Fatalf("len = %d", len(out))
	}
	for i, o := range out {
		if o.Point != i || o.Value != i*i || o.Err != nil {
			t.Fatalf("outcome %d = %+v", i, o)
		}
	}
	vals, err := Values(out)
	if err != nil {
		t.Fatal(err)
	}
	if vals[7] != 49 {
		t.Fatalf("vals[7] = %d", vals[7])
	}
}

func TestMapIsolatesErrors(t *testing.T) {
	out := Map([]int{1, 2, 3, 4}, 2, func(p int) (int, error) {
		if p%2 == 0 {
			return 0, fmt.Errorf("point %d failed", p)
		}
		return p, nil
	})
	if out[0].Err != nil || out[2].Err != nil {
		t.Errorf("odd points failed: %v %v", out[0].Err, out[2].Err)
	}
	if out[1].Err == nil || out[3].Err == nil {
		t.Errorf("even points should fail")
	}
	// Values surfaces the first error in input order, as a serial loop
	// would.
	if _, err := Values(out); err == nil || err.Error() != "point 2 failed" {
		t.Errorf("Values err = %v", err)
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	var cur, peak atomic.Int64
	var mu sync.Mutex
	points := make([]int, 64)
	Map(points, 4, func(int) (int, error) {
		n := cur.Add(1)
		mu.Lock()
		if n > peak.Load() {
			peak.Store(n)
		}
		mu.Unlock()
		defer cur.Add(-1)
		return 0, nil
	})
	if p := peak.Load(); p > 4 {
		t.Errorf("peak concurrency %d > 4 workers", p)
	}
}

func TestMapEmptyAndSerial(t *testing.T) {
	if out := Map(nil, 4, func(int) (int, error) { return 0, nil }); len(out) != 0 {
		t.Errorf("empty points produced %d outcomes", len(out))
	}
	out := Map([]int{1, 2}, 1, func(p int) (int, error) { return p + 1, nil })
	if out[0].Value != 2 || out[1].Value != 3 {
		t.Errorf("serial map wrong: %+v", out)
	}
}

func TestGridPoints(t *testing.T) {
	g := Grid{
		Nodes: []int{3, 10},
		Cores: []int{16, 36},
		Devices: []DevicePair{
			{Name: "SSD/SSD", HDFS: func() disk.Device { return disk.NewSSD() }, Local: func() disk.Device { return disk.NewSSD() }},
			{Name: "SSD/HDD", HDFS: func() disk.Device { return disk.NewSSD() }, Local: func() disk.Device { return disk.NewHDD() }},
		},
		Workloads: []string{"gatk4", "terasort"},
	}
	pts := g.Points()
	if len(pts) != 16 || g.Size() != 16 {
		t.Fatalf("points = %d, size = %d, want 16", len(pts), g.Size())
	}
	// Row-major: nodes vary slowest, workloads fastest.
	if pts[0].Nodes != 3 || pts[0].Cores != 16 || pts[0].Devices.Name != "SSD/SSD" || pts[0].Workload != "gatk4" {
		t.Errorf("pts[0] = %+v", pts[0])
	}
	if pts[1].Workload != "terasort" {
		t.Errorf("pts[1] = %+v", pts[1])
	}
	if pts[15].Nodes != 10 || pts[15].Cores != 36 || pts[15].Devices.Name != "SSD/HDD" || pts[15].Workload != "terasort" {
		t.Errorf("pts[15] = %+v", pts[15])
	}
	// Device constructors hand out fresh instances per call.
	if pts[0].Devices.HDFS() == pts[0].Devices.HDFS() {
		t.Error("device constructor returned a shared instance")
	}
}

func TestGridEmptyAxes(t *testing.T) {
	g := Grid{Cores: []int{1, 2, 4}}
	pts := g.Points()
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[2].Cores != 4 || pts[2].Nodes != 0 || pts[2].Workload != "" {
		t.Errorf("pts[2] = %+v", pts[2])
	}
}

func TestGroupBy(t *testing.T) {
	points := []string{"b1", "a1", "b2", "c1", "a2", "b3"}
	groups := GroupBy(points, func(s string) byte { return s[0] })
	if len(groups) != 3 {
		t.Fatalf("got %d groups, want 3", len(groups))
	}
	// First-appearance order of keys.
	for i, want := range []byte{'b', 'a', 'c'} {
		if groups[i].Key != want {
			t.Fatalf("group %d key = %c, want %c", i, groups[i].Key, want)
		}
	}
	// Input order within groups, and indices addressing the original slice.
	slab := make([]string, len(points))
	total := 0
	for _, g := range groups {
		if len(g.Points) != len(g.Indices) {
			t.Fatalf("group %c: %d points, %d indices", g.Key, len(g.Points), len(g.Indices))
		}
		for j, idx := range g.Indices {
			if points[idx] != g.Points[j] {
				t.Fatalf("group %c point %d: index %d holds %q, want %q", g.Key, j, idx, points[idx], g.Points[j])
			}
			slab[idx] = g.Points[j]
		}
		total += len(g.Points)
	}
	if total != len(points) {
		t.Fatalf("groups cover %d points, want %d", total, len(points))
	}
	for i := range points {
		if slab[i] != points[i] {
			t.Fatalf("slab[%d] = %q, want %q (input order not reproduced)", i, slab[i], points[i])
		}
	}
	if got := GroupBy(nil, func(s string) byte { return 0 }); len(got) != 0 {
		t.Fatalf("GroupBy(nil) = %v, want empty", got)
	}
}
