package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestStreamMapOrderAndCompleteness(t *testing.T) {
	points := make([]int, 50)
	for i := range points {
		points[i] = i
	}
	var calls atomic.Int64
	out, err := StreamMap(context.Background(), points, StreamOptions{Parallel: 8},
		func(_ context.Context, p int) (int, error) {
			calls.Add(1)
			return p * 2, nil
		}, nil)
	if err != nil {
		t.Fatalf("StreamMap: %v", err)
	}
	if got := calls.Load(); got != int64(len(points)) {
		t.Fatalf("fn ran %d times, want %d", got, len(points))
	}
	for i, o := range out {
		if o.Err != nil || o.Value != i*2 || o.Point != i {
			t.Fatalf("out[%d] = {point %d, value %d, err %v}, want {%d, %d, nil}",
				i, o.Point, o.Value, o.Err, i, i*2)
		}
	}
}

func TestStreamMapCancelStopsFeeding(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	points := make([]int, 100)
	var started atomic.Int64
	out, err := StreamMap(ctx, points, StreamOptions{Parallel: 2},
		func(_ context.Context, p int) (int, error) {
			if started.Add(1) == 3 {
				cancel()
			}
			return 0, nil
		}, nil)
	if err != nil {
		t.Fatalf("StreamMap: %v", err)
	}
	ran := int(started.Load())
	if ran >= len(points) {
		t.Fatalf("cancel did not stop the feed: all %d points ran", ran)
	}
	// After cancel every point is either completed (nil Err) or reported
	// with the cancellation — unstarted points, and in-flight points the
	// cancelled evaluation abandoned. Both are retried on resume.
	var completed int
	for _, o := range out {
		if o.Err == nil {
			completed++
			continue
		}
		if !errors.Is(o.Err, context.Canceled) {
			t.Fatalf("cancelled point error = %v, want context.Canceled", o.Err)
		}
	}
	if completed > ran {
		t.Fatalf("%d points completed but only %d ran", completed, ran)
	}
	if completed == len(points) {
		t.Fatal("cancel abandoned nothing")
	}
}

func TestStreamMapPointTimeout(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	// Point 1 ignores its context and blocks forever; the deadline must
	// abandon it without disturbing its siblings.
	out, err := StreamMap(context.Background(), []int{0, 1, 2},
		StreamOptions{Parallel: 3, PointTimeout: 30 * time.Millisecond},
		func(_ context.Context, p int) (int, error) {
			if p == 1 {
				<-block
			}
			return p, nil
		}, nil)
	if err != nil {
		t.Fatalf("StreamMap: %v", err)
	}
	if !errors.Is(out[1].Err, context.DeadlineExceeded) {
		t.Fatalf("out[1].Err = %v, want context.DeadlineExceeded", out[1].Err)
	}
	for _, i := range []int{0, 2} {
		if out[i].Err != nil {
			t.Fatalf("sibling point %d failed: %v", i, out[i].Err)
		}
	}
}

func TestStreamMapPanicIsolation(t *testing.T) {
	out, err := StreamMap(context.Background(), []int{0, 1, 2}, StreamOptions{Parallel: 3},
		func(_ context.Context, p int) (int, error) {
			if p == 1 {
				panic("boom")
			}
			return p, nil
		}, nil)
	if err != nil {
		t.Fatalf("StreamMap: %v", err)
	}
	if out[1].Err == nil || out[1].Value != 0 {
		t.Fatalf("panicking point: got {%d, %v}, want zero value and an error", out[1].Value, out[1].Err)
	}
	for _, i := range []int{0, 2} {
		if out[i].Err != nil {
			t.Fatalf("sibling point %d failed: %v", i, out[i].Err)
		}
	}
}

func TestStreamMapSinkSerialized(t *testing.T) {
	points := make([]int, 200)
	// seen is mutated without locking: the serialization contract means
	// this is safe, and the race detector job enforces it.
	seen := map[int]bool{}
	_, err := StreamMap(context.Background(), points, StreamOptions{Parallel: 8},
		func(_ context.Context, p int) (int, error) { return p, nil },
		func(i int, o Outcome[int, int]) error {
			if seen[i] {
				return fmt.Errorf("sink saw point %d twice", i)
			}
			seen[i] = true
			return nil
		})
	if err != nil {
		t.Fatalf("StreamMap: %v", err)
	}
	if len(seen) != len(points) {
		t.Fatalf("sink saw %d points, want %d", len(seen), len(points))
	}
}

func TestStreamMapSinkErrorAborts(t *testing.T) {
	boom := errors.New("sink refused")
	var delivered atomic.Int64
	points := make([]int, 100)
	_, err := StreamMap(context.Background(), points, StreamOptions{Parallel: 2},
		func(_ context.Context, p int) (int, error) { return p, nil },
		func(i int, o Outcome[int, int]) error {
			if delivered.Add(1) == 3 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("StreamMap error = %v, want the sink's", err)
	}
	if n := delivered.Load(); n >= int64(len(points)) {
		t.Fatalf("sink error did not abort: %d deliveries", n)
	}
}
