// Package sweep is the grid-sweep engine behind the what-if experiments:
// it fans a model (or simulator) evaluation out over a parameter grid —
// {nodes, cores/node, device, workload} points or arbitrary spec slices —
// through a bounded worker pool with deterministic output ordering and
// per-point error isolation. The cloud-cost figures, the optimizer's
// grid search and the scale experiments all drive their evaluations
// through Map instead of hand-rolled serial loops.
package sweep

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/disk"
)

// Outcome is the result of evaluating one grid point.
type Outcome[P, R any] struct {
	Point P
	Value R
	// Err is this point's own failure; other points are unaffected.
	Err error
	// Elapsed is the point's evaluation wall-clock time.
	Elapsed time.Duration
}

// Map evaluates fn over every point on a worker pool of the given size
// (<=0 means GOMAXPROCS) and returns the outcomes in input order. fn
// must be safe for concurrent use; each invocation receives its own
// point value.
func Map[P, R any](points []P, parallel int, fn func(P) (R, error)) []Outcome[P, R] {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > len(points) {
		parallel = len(points)
	}
	if parallel < 1 {
		parallel = 1
	}
	out := make([]Outcome[P, R], len(points))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				start := time.Now()
				v, err := fn(points[i])
				out[i] = Outcome[P, R]{
					Point: points[i], Value: v, Err: err,
					Elapsed: time.Since(start),
				}
			}
		}()
	}
	for i := range points {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// Values unwraps the outcome values, returning the first error in input
// order (the same error a serial loop would have surfaced).
func Values[P, R any](outcomes []Outcome[P, R]) ([]R, error) {
	vals := make([]R, len(outcomes))
	for i, o := range outcomes {
		if o.Err != nil {
			return nil, o.Err
		}
		vals[i] = o.Value
	}
	return vals, nil
}

// DevicePair names a (HDFS, Spark Local) device combination. The
// constructors are invoked per point so every evaluation owns fresh
// device instances.
type DevicePair struct {
	Name        string
	HDFS, Local func() disk.Device
}

// Point is one cluster-shape evaluation point of a Grid.
type Point struct {
	Nodes, Cores int
	Devices      DevicePair
	Workload     string
}

// Grid is the cross product of cluster shapes the Doppio model answers
// what-if questions over: node counts x cores/node x device pairs x
// workloads. Empty axes contribute a single zero value, so a Grid can
// sweep any subset of the dimensions.
type Grid struct {
	Nodes     []int
	Cores     []int
	Devices   []DevicePair
	Workloads []string
}

// Points enumerates the grid in deterministic row-major order
// (nodes, then cores, then devices, then workloads).
func (g Grid) Points() []Point {
	nodes := g.Nodes
	if len(nodes) == 0 {
		nodes = []int{0}
	}
	cores := g.Cores
	if len(cores) == 0 {
		cores = []int{0}
	}
	devices := g.Devices
	if len(devices) == 0 {
		devices = []DevicePair{{}}
	}
	workloads := g.Workloads
	if len(workloads) == 0 {
		workloads = []string{""}
	}
	out := make([]Point, 0, len(nodes)*len(cores)*len(devices)*len(workloads))
	for _, n := range nodes {
		for _, p := range cores {
			for _, d := range devices {
				for _, w := range workloads {
					out = append(out, Point{Nodes: n, Cores: p, Devices: d, Workload: w})
				}
			}
		}
	}
	return out
}

// Size reports the number of points the grid enumerates.
func (g Grid) Size() int { return len(g.Points()) }

// Group is one key-sharing chunk of a sweep: the points that can share
// expensive per-key setup (a calibration, a compiled model), plus their
// positions in the original slice so results land back in input order.
type Group[K comparable, P any] struct {
	Key     K
	Points  []P
	Indices []int
}

// GroupBy partitions points by key. Groups appear in first-appearance
// order and keep their points in input order, so iterating groups and
// writing results at Indices reproduces exactly the input ordering — the
// planner's contract with preallocated result slabs. Callers that
// process groups concurrently may write to disjoint slab indices
// without further synchronisation.
func GroupBy[K comparable, P any](points []P, key func(P) K) []Group[K, P] {
	order := make(map[K]int, len(points))
	var groups []Group[K, P]
	for i, p := range points {
		k := key(p)
		g, ok := order[k]
		if !ok {
			g = len(groups)
			order[k] = g
			groups = append(groups, Group[K, P]{Key: k})
		}
		groups[g].Points = append(groups[g].Points, p)
		groups[g].Indices = append(groups[g].Indices, i)
	}
	return groups
}
