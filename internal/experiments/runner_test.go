package experiments

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// parallelTestIDs are cheap artifacts (no calibration) used to exercise
// the pool; the CI race job runs these tests with -count=3.
var parallelTestIDs = []string{"tab4", "tab5", "fig5", "fig6"}

// stripRuntime removes the metrics that legitimately differ between
// runs (wall-clock time, the scheduling-dependent cache hit/miss
// split), using the same predicate production comparisons use.
func stripRuntime(m map[string]float64) map[string]float64 {
	out := map[string]float64{}
	for k, v := range m {
		if NondeterministicMetric(k) {
			continue
		}
		out[k] = v
	}
	return out
}

// TestRegistryParallelMatchesSerial asserts the acceptance criterion:
// every artifact's Rows and Metrics are identical whether regenerated
// serially or through a four-worker pool.
func TestRegistryParallelMatchesSerial(t *testing.T) {
	ids := parallelTestIDs
	if !testing.Short() {
		ids = append(append([]string{}, ids...), "fig2", "errorbars")
	}
	serial, err := RunSet(context.Background(), ids, Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunSet(context.Background(), ids, Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(par) {
		t.Fatalf("report counts differ: %d vs %d", len(serial), len(par))
	}
	for i := range serial {
		s, p := serial[i], par[i]
		if s.ID != ids[i] || p.ID != ids[i] {
			t.Fatalf("report %d out of order: serial=%s parallel=%s want %s", i, s.ID, p.ID, ids[i])
		}
		if s.Err != nil || p.Err != nil {
			t.Fatalf("%s: serial err=%v parallel err=%v", ids[i], s.Err, p.Err)
		}
		if !reflect.DeepEqual(s.Table.Columns, p.Table.Columns) {
			t.Errorf("%s: columns differ", ids[i])
		}
		if !reflect.DeepEqual(s.Table.Rows, p.Table.Rows) {
			t.Errorf("%s: rows differ\nserial:   %v\nparallel: %v", ids[i], s.Table.Rows, p.Table.Rows)
		}
		if !reflect.DeepEqual(s.Table.Notes, p.Table.Notes) {
			t.Errorf("%s: notes differ", ids[i])
		}
		sm, pm := stripRuntime(s.Table.Metrics), stripRuntime(p.Table.Metrics)
		if !reflect.DeepEqual(sm, pm) {
			t.Errorf("%s: metrics differ\nserial:   %v\nparallel: %v", ids[i], sm, pm)
		}
		if s.Table.Metrics[RuntimeMetric] <= 0 || p.Table.Metrics[RuntimeMetric] <= 0 {
			t.Errorf("%s: missing %s metric", ids[i], RuntimeMetric)
		}
	}
}

// TestRegistryParallelIsolatesFailure asserts that one failing (or
// panicking) artifact is reported in place without cancelling its
// siblings.
func TestRegistryParallelIsolatesFailure(t *testing.T) {
	boom := fmt.Errorf("deliberate failure")
	exps := []Experiment{
		{ID: "ok-1", Title: "ok", Run: func(context.Context) (*Table, error) {
			tab := &Table{ID: "ok-1", Columns: []string{"a"}}
			tab.AddRow("1")
			return tab, nil
		}},
		{ID: "fails", Title: "fails", Run: func(context.Context) (*Table, error) { return nil, boom }},
		{ID: "panics", Title: "panics", Run: func(context.Context) (*Table, error) { panic("deliberate panic") }},
		{ID: "ok-2", Title: "ok", Run: func(context.Context) (*Table, error) {
			tab := &Table{ID: "ok-2", Columns: []string{"a"}}
			tab.AddRow("2")
			return tab, nil
		}},
	}
	for _, parallel := range []int{1, 4} {
		reports := runExperiments(context.Background(), exps, Options{Parallel: parallel})
		if len(reports) != 4 {
			t.Fatalf("parallel=%d: %d reports", parallel, len(reports))
		}
		for i, e := range exps {
			if reports[i].ID != e.ID {
				t.Fatalf("parallel=%d: report %d is %s, want %s", parallel, i, reports[i].ID, e.ID)
			}
		}
		if reports[0].Err != nil || reports[3].Err != nil {
			t.Errorf("parallel=%d: healthy siblings failed: %v, %v", parallel, reports[0].Err, reports[3].Err)
		}
		if reports[1].Err == nil || reports[2].Err == nil {
			t.Errorf("parallel=%d: failures not reported: %v, %v", parallel, reports[1].Err, reports[2].Err)
		}
		if got := Failed(reports); len(got) != 2 {
			t.Errorf("parallel=%d: Failed() = %d reports, want 2", parallel, len(got))
		}
	}
}

// TestRegistryParallelUnknownID asserts upfront resolution: no work
// starts when any id is unknown.
func TestRegistryParallelUnknownID(t *testing.T) {
	if _, err := RunSet(context.Background(), []string{"tab4", "no-such-artifact"}, Options{Parallel: 2}); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// TestRunnerArtifactTimeout asserts the per-artifact deadline: a slow
// artifact is abandoned with context.DeadlineExceeded while fast
// siblings complete and keep their tables.
func TestRunnerArtifactTimeout(t *testing.T) {
	exps := []Experiment{
		{ID: "fast", Title: "fast", Run: func(context.Context) (*Table, error) {
			tab := &Table{ID: "fast", Columns: []string{"a"}}
			tab.AddRow("1")
			return tab, nil
		}},
		{ID: "slow", Title: "slow", Run: func(ctx context.Context) (*Table, error) {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(30 * time.Second):
				return &Table{ID: "slow"}, nil
			}
		}},
		{ID: "stuck", Title: "ignores its context", Run: func(context.Context) (*Table, error) {
			time.Sleep(200 * time.Millisecond) // long past the deadline, never checks ctx
			return &Table{ID: "stuck"}, nil
		}},
	}
	reports := runExperiments(context.Background(), exps, Options{Parallel: 3, ArtifactTimeout: 20 * time.Millisecond})
	if reports[0].Err != nil || reports[0].Table == nil {
		t.Errorf("fast artifact should survive the deadline: %v", reports[0].Err)
	}
	for _, i := range []int{1, 2} {
		if !errors.Is(reports[i].Err, context.DeadlineExceeded) {
			t.Errorf("%s: err = %v, want DeadlineExceeded", reports[i].ID, reports[i].Err)
		}
		if reports[i].Table != nil {
			t.Errorf("%s: timed-out artifact still returned a table", reports[i].ID)
		}
	}
}

// TestRunnerCancellation asserts partial-result semantics: cancelling
// the parent context mid-run stops feeding the pool, artifacts that
// already completed keep their reports, and never-started ones report
// the cancellation cause.
func TestRunnerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	mk := func(id string) Experiment {
		return Experiment{ID: id, Title: id, Run: func(context.Context) (*Table, error) {
			tab := &Table{ID: id, Columns: []string{"a"}}
			tab.AddRow("1")
			return tab, nil
		}}
	}
	// "second" cancels the set mid-run, then lingers long enough for the
	// feed loop to observe the cancellation before the worker frees up.
	second := Experiment{ID: "second", Title: "second", Run: func(context.Context) (*Table, error) {
		cancel()
		time.Sleep(50 * time.Millisecond)
		return &Table{ID: "second", Columns: []string{"a"}, Rows: [][]string{{"1"}}}, nil
	}}
	exps := []Experiment{mk("first"), second, mk("third")}
	reports := runExperiments(ctx, exps, Options{Parallel: 1})
	if len(reports) != 3 {
		t.Fatalf("got %d reports, want 3", len(reports))
	}
	// "first" completed before the cancellation and keeps its table.
	if reports[0].Err != nil || reports[0].Table == nil {
		t.Errorf("completed artifact lost: err=%v", reports[0].Err)
	}
	// "third" was never dispatched and reports the cancellation.
	if !errors.Is(reports[2].Err, context.Canceled) {
		t.Errorf("third: err = %v, want Canceled", reports[2].Err)
	}
}

// TestRunnerPreCancelled: a context cancelled before the call yields a
// full slate of not-started reports and returns promptly.
func TestRunnerPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reports, err := RunSet(ctx, parallelTestIDs, Options{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(parallelTestIDs) {
		t.Fatalf("got %d reports, want %d", len(reports), len(parallelTestIDs))
	}
	for _, r := range reports {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("%s: err = %v, want Canceled", r.ID, r.Err)
		}
	}
}

// TestRegistryParallelStress hammers the pool from several goroutines at
// once — the race detector's view of the registry, the calibration
// cache and the table builders. CI runs it with -count=3 under -race.
func TestRegistryParallelStress(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			reports, err := RunSet(context.Background(), parallelTestIDs, Options{Parallel: len(parallelTestIDs)})
			if err != nil {
				t.Error(err)
				return
			}
			for _, r := range reports {
				if r.Err != nil {
					t.Errorf("%s: %v", r.ID, r.Err)
				}
			}
		}()
	}
	wg.Wait()
}

// TestRegistryParallelCalibrationSingleflight checks the calibration
// cache's singleflight semantics directly: concurrent requests for the
// same key share one build, different keys build concurrently, and
// failed builds are retried rather than cached.
func TestRegistryParallelCalibrationSingleflight(t *testing.T) {
	keys := []string{"test/singleflight-a", "test/singleflight-b", "test/singleflight-c"}
	defer func() {
		calMu.Lock()
		for _, k := range keys {
			delete(calCache, k)
		}
		calMu.Unlock()
	}()

	var builds atomic.Int64
	build := func() (*core.Calibration, error) {
		builds.Add(1)
		time.Sleep(time.Millisecond)
		return &core.Calibration{}, nil
	}
	var wg sync.WaitGroup
	got := make([]*core.Calibration, 32*len(keys))
	for i := 0; i < 32; i++ {
		for j, k := range keys {
			wg.Add(1)
			go func(slot int, key string) {
				defer wg.Done()
				c, err := calibrated(context.Background(), key, build)
				if err != nil {
					t.Error(err)
				}
				got[slot] = c
			}(i*len(keys)+j, k)
		}
	}
	wg.Wait()
	if n := builds.Load(); n != int64(len(keys)) {
		t.Errorf("builds = %d, want one per key (%d)", n, len(keys))
	}
	for i := 1; i < 32; i++ {
		for j := range keys {
			if got[i*len(keys)+j] != got[j] {
				t.Errorf("key %s: callers saw different calibrations", keys[j])
			}
		}
	}

	// Failure path: the entry must be dropped so the next call retries.
	failKey := "test/singleflight-fail"
	calls := 0
	failing := func() (*core.Calibration, error) {
		calls++
		if calls == 1 {
			return nil, fmt.Errorf("transient")
		}
		return &core.Calibration{}, nil
	}
	if _, err := calibrated(context.Background(), failKey, failing); err == nil {
		t.Fatal("expected first build to fail")
	}
	c, err := calibrated(context.Background(), failKey, failing)
	if err != nil || c == nil {
		t.Fatalf("retry after failure: c=%v err=%v", c, err)
	}
	calMu.Lock()
	delete(calCache, failKey)
	calMu.Unlock()
}

// TestRegistryParallelSpeedup asserts the pool actually buys wall-clock
// time on sim-heavy artifacts: a four-worker RunSet must finish faster
// than the same set run serially (acceptance criterion on >=4 cores).
func TestRegistryParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison needs the sim-heavy artifacts")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skip("needs >=4 cores for a meaningful comparison")
	}
	ids := []string{"fig2", "fig3", "errorbars", "fig6"}
	start := time.Now()
	if _, err := RunSet(context.Background(), ids, Options{Parallel: 1}); err != nil {
		t.Fatal(err)
	}
	serial := time.Since(start)
	start = time.Now()
	if _, err := RunSet(context.Background(), ids, Options{Parallel: 4}); err != nil {
		t.Fatal(err)
	}
	parallel := time.Since(start)
	t.Logf("serial %v, parallel %v (%.2fx)", serial, parallel, serial.Seconds()/parallel.Seconds())
	if parallel >= serial {
		t.Errorf("parallel RunSet (%v) not faster than serial (%v)", parallel, serial)
	}
}

// TestRunReportsCalibrationCacheStats checks the runner threads the
// calibration-cache counters into the report and the table metrics: an
// artifact that asks for the same calibration three times pays one miss
// and two hits, and an artifact that never calibrates carries no cache
// metrics at all.
func TestRunReportsCalibrationCacheStats(t *testing.T) {
	key := "test/cache-stats"
	defer func() {
		calMu.Lock()
		delete(calCache, key)
		calMu.Unlock()
	}()
	calibrating := Experiment{ID: "cache-stats", Title: "calibrating artifact",
		Run: func(ctx context.Context) (*Table, error) {
			for i := 0; i < 3; i++ {
				if _, err := calibrated(ctx, key, func() (*core.Calibration, error) {
					return &core.Calibration{}, nil
				}); err != nil {
					return nil, err
				}
			}
			return &Table{ID: "cache-stats", Title: "t"}, nil
		}}
	plain := Experiment{ID: "plain", Title: "no calibration",
		Run: func(context.Context) (*Table, error) {
			return &Table{ID: "plain", Title: "t"}, nil
		}}
	reports := runExperiments(context.Background(), []Experiment{calibrating, plain}, Options{Parallel: 1})

	r := reports[0]
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.CacheMisses != 1 || r.CacheHits != 2 {
		t.Errorf("hits/misses = %d/%d, want 2/1", r.CacheHits, r.CacheMisses)
	}
	if got := r.Table.Metrics[CacheLookupsMetric]; got != 3 {
		t.Errorf("%s = %v, want 3", CacheLookupsMetric, got)
	}
	if got := r.Table.Metrics[CacheHitsMetric]; got != 2 {
		t.Errorf("%s = %v, want 2", CacheHitsMetric, got)
	}
	if got := r.Table.Metrics[CacheMissesMetric]; got != 1 {
		t.Errorf("%s = %v, want 1", CacheMissesMetric, got)
	}

	p := reports[1]
	if p.Err != nil {
		t.Fatal(p.Err)
	}
	if p.CacheHits != 0 || p.CacheMisses != 0 {
		t.Errorf("plain artifact counted cache traffic: %d/%d", p.CacheHits, p.CacheMisses)
	}
	for _, k := range []string{CacheHitsMetric, CacheMissesMetric, CacheLookupsMetric} {
		if _, ok := p.Table.Metrics[k]; ok {
			t.Errorf("plain artifact has %s metric", k)
		}
	}
}

func TestNondeterministicMetricPredicate(t *testing.T) {
	for _, k := range []string{
		RuntimeMetric, CacheHitsMetric, CacheMissesMetric,
		"doppio_cluster_retries_total", "doppio_cluster_failovers_total",
		"doppio_cluster_probes_total",
	} {
		if !NondeterministicMetric(k) {
			t.Errorf("%s should be nondeterministic", k)
		}
	}
	for _, k := range []string{
		CacheLookupsMetric, "avg_error",
		"doppio_cluster_replica_healthy", "doppio_cluster_breaker_state",
	} {
		if NondeterministicMetric(k) {
			t.Errorf("%s should be deterministic", k)
		}
	}
}
