package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/experiments/sweep"
	"repro/internal/spark"
	"repro/internal/units"
)

func init() {
	register(Experiment{
		ID:    "resilience",
		Title: "Extension: failure-recovery cost across devices (fetch-failure rate x device sweep)",
		Run:   resilience,
	})
}

// The resilience workload is a shuffle-heavy two-stage map/reduce job
// chosen to expose the device side of recovery: every fetch failure
// recomputes one map task, and a map task's cost is dominated by its
// 32 MB shuffle write at 64 KB requests — the request size where the
// paper's effective-bandwidth curves put HDD an order of magnitude
// below SSD. On HDD the device is the stage bottleneck, so recovery
// I/O extends the makespan one-for-one; on SSD the device has slack
// and the same recovery hides inside it.
const (
	resMapTasks  = 128
	resRedTasks  = 128
	resPerMap    = 32 * units.MB
	resCompute   = 200 * time.Millisecond
	resSeeds     = 3
	resBackoff   = spark.DurationParam(0.1)
	resHeadlineQ = 0.25
)

func resilienceApp() spark.App {
	shuffled := units.ByteSize(resMapTasks) * resPerMap
	perRed := shuffled / units.ByteSize(resRedTasks)
	return spark.App{Name: "resilience-mr", Stages: []spark.Stage{
		{
			Name: "map",
			Groups: []spark.TaskGroup{{Name: "m", Count: resMapTasks, Ops: []spark.Op{
				spark.IO(spark.OpHDFSRead, 32*units.MB, 32*units.MB, 0),
				spark.Compute(resCompute),
				spark.IO(spark.OpShuffleWrite, resPerMap, 64*units.KB, 0),
			}}},
		},
		{
			Name: "reduce",
			Groups: []spark.TaskGroup{{Name: "r", Count: resRedTasks, Ops: []spark.Op{
				spark.IO(spark.OpShuffleRead, perRed, spark.ShuffleReadReqSize(perRed, resMapTasks), 0),
				spark.Compute(resCompute),
			}}},
		},
	}}
}

// resilienceModel is the analytical twin of resilienceApp for the
// model-vs-simulation columns.
func resilienceModel() core.AppModel {
	shuffled := units.ByteSize(resMapTasks) * resPerMap
	perRed := shuffled / units.ByteSize(resRedTasks)
	return core.AppModel{Name: "resilience-mr", Stages: []core.StageModel{
		{
			Name: "map",
			Groups: []core.GroupModel{{Name: "m", Count: resMapTasks, ComputePerTask: resCompute, Ops: []core.OpModel{
				{Kind: spark.OpHDFSRead, BytesPerTask: 32 * units.MB, ReqSize: 32 * units.MB},
				{Kind: spark.OpShuffleWrite, BytesPerTask: resPerMap, ReqSize: 64 * units.KB},
			}}},
		},
		{
			Name: "reduce",
			Groups: []core.GroupModel{{Name: "r", Count: resRedTasks, ComputePerTask: resCompute, Ops: []core.OpModel{
				{Kind: spark.OpShuffleRead, BytesPerTask: perRed, ReqSize: spark.ShuffleReadReqSize(perRed, resMapTasks)},
			}}},
		},
	}}
}

func resilienceTestbed(dev func() disk.Device, q float64, seed uint64) spark.ClusterConfig {
	cfg := spark.DefaultTestbed(4, 4, dev(), dev())
	cfg.ComputeJitter = 0
	cfg.Seed = seed
	cfg.Faults = spark.FaultConfig{
		ShuffleFetchFailureProb: q,
		RetryBackoff:            resBackoff,
		// At q=0.25 a 4-attempt budget aborts with non-trivial
		// probability (128 tasks x 0.25^4); raise it so every sweep
		// cell measures recovery cost rather than abort behaviour.
		MaxTaskFailures: 8,
		Seed:            seed,
	}
	return cfg
}

// resPoint is one (device, fetch-failure rate) cell of the sweep; its
// value is the mean total runtime over resSeeds fault seeds.
type resPoint struct {
	dev  string
	mk   func() disk.Device
	q    float64
	qIdx int
}

// resilience sweeps the shuffle fetch-failure rate against the device
// type and reports the simulated and modeled runtime inflation per
// cell — the paper's request-size argument extended to failure
// recovery: identical fault processes cost more wall-clock on HDD than
// on SSD because the recompute I/O lands on the small-request cliff.
func resilience(ctx context.Context) (*Table, error) {
	qs := []float64{0, 0.05, 0.1, 0.15, 0.2, resHeadlineQ}
	devs := []struct {
		name string
		mk   func() disk.Device
	}{
		{"hdd", func() disk.Device { return disk.NewHDD() }},
		{"ssd", func() disk.Device { return disk.NewSSD() }},
	}
	var points []resPoint
	for qi, q := range qs {
		for _, d := range devs {
			points = append(points, resPoint{dev: d.name, mk: d.mk, q: q, qIdx: qi})
		}
	}
	app := resilienceApp()
	outcomes := sweep.Map(points, 0, func(pt resPoint) (float64, error) {
		// Long sweep: honour cancellation and per-artifact deadlines
		// between points.
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		var total float64
		for seed := uint64(0); seed < resSeeds; seed++ {
			res, err := spark.Run(resilienceTestbed(pt.mk, pt.q, seed), app)
			if err != nil {
				return 0, fmt.Errorf("%s q=%.2f seed=%d: %w", pt.dev, pt.q, seed, err)
			}
			total += res.Total.Seconds()
		}
		return total / resSeeds, nil
	})
	means, err := sweep.Values(outcomes)
	if err != nil {
		return nil, err
	}
	// means is laid out qs-major, devices-minor: [q0/hdd, q0/ssd, q1/hdd, ...].
	baseHDD, baseSSD := means[0], means[1]

	model := resilienceModel()
	modelInfl := func(dev func() disk.Device, q float64) (float64, error) {
		cfg := resilienceTestbed(dev, q, 0)
		fp, err := model.PredictFaulty(core.PlatformFor(cfg), core.ModeDoppio, core.FaultsFor(cfg.Faults))
		if err != nil {
			return 0, err
		}
		return fp.Inflation(), nil
	}

	t := &Table{
		ID:    "resilience",
		Title: "Shuffle-heavy MR (128+128 tasks) on 4 slaves, P=4: runtime inflation vs fetch-failure rate",
		Columns: []string{
			"fetch-fail q", "HDD sim", "HDD model", "SSD sim", "SSD model", "gap (sim)",
		},
	}
	x2 := func(v float64) string { return fmt.Sprintf("%.2fx", v) }
	var headlineHDD, headlineSSD float64
	for qi, q := range qs {
		hddInfl := means[2*qi] / baseHDD
		ssdInfl := means[2*qi+1] / baseSSD
		hddModel, err := modelInfl(devs[0].mk, q)
		if err != nil {
			return nil, err
		}
		ssdModel, err := modelInfl(devs[1].mk, q)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.2f", q),
			x2(hddInfl), x2(hddModel),
			x2(ssdInfl), x2(ssdModel),
			fmt.Sprintf("%+.2f", hddInfl-ssdInfl))
		if q == resHeadlineQ {
			headlineHDD, headlineSSD = hddInfl, ssdInfl
			t.SetMetric("hdd_inflation", hddInfl)
			t.SetMetric("ssd_inflation", ssdInfl)
			t.SetMetric("inflation_gap", hddInfl-ssdInfl)
			t.SetMetric("model_hdd_inflation", hddModel)
			t.SetMetric("model_ssd_inflation", ssdModel)
		}
	}
	t.Note("each cell averages %d deterministic fault seeds; clean run (q=0) is the per-device baseline", resSeeds)
	t.Note("at q=%.2f the same failure process inflates HDD %.2fx vs SSD %.2fx: recovery recomputes map tasks whose 64KB shuffle writes sit on the HDD bandwidth cliff (Fig. 5)",
		resHeadlineQ, headlineHDD, headlineSSD)
	if headlineHDD <= headlineSSD {
		return nil, fmt.Errorf("resilience: expected HDD inflation (%.3f) above SSD (%.3f)", headlineHDD, headlineSSD)
	}
	return t, nil
}
