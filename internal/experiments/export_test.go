package experiments

import (
	"encoding/csv"
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := &Table{ID: "x", Title: "sample", Columns: []string{"a", "b"}}
	t.AddRow("1", "2 | with pipe")
	t.AddRow("3", "4")
	t.Note("a note")
	return t
}

func TestWriteCSVParsesBack(t *testing.T) {
	var sb strings.Builder
	if err := sampleTable().WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// header + 2 rows + 1 note row
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][0] != "a" || rows[1][1] != "2 | with pipe" {
		t.Errorf("cells = %v", rows)
	}
	if !strings.HasPrefix(rows[3][0], "# ") {
		t.Errorf("note row = %v", rows[3])
	}
}

func TestWriteMarkdown(t *testing.T) {
	var sb strings.Builder
	if err := sampleTable().WriteMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"### x — sample", "| a | b |", "|---|---|", "2 \\| with pipe", "> a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestRenderFormats(t *testing.T) {
	for _, f := range []string{"", "text", "csv", "md", "markdown"} {
		var sb strings.Builder
		if err := sampleTable().Render(&sb, f); err != nil {
			t.Errorf("format %q: %v", f, err)
		}
		if sb.Len() == 0 {
			t.Errorf("format %q produced nothing", f)
		}
	}
	var sb strings.Builder
	if err := sampleTable().Render(&sb, "xml"); err == nil {
		t.Error("unknown format accepted")
	}
}
