package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/spark"
)

// appFigure describes one of the Fig. 8–12 model-validation figures:
// a workload, its phase decomposition, which disks the comparison
// switches, and the paper's published average error and headline gap.
type appFigure struct {
	id, title  string
	workload   string
	phases     []string
	switchHDFS bool // true: both disks switch; false: only Spark Local
	paperErr   string
	paperGap   string
}

var appFigures = []appFigure{
	{"fig8a", "Fig. 8a: Logistic Regression, 1200M examples (cached)", "lr-small",
		[]string{"dataValidator", "iter"}, true, "5.3%", "2x on dataValidator"},
	{"fig8b", "Fig. 8b: Logistic Regression, 4000M examples (persisted)", "lr-large",
		[]string{"dataValidator", "iter"}, true, "5.3%", "7.0x on iterations"},
	{"fig9", "Fig. 9: Support Vector Machine", "svm",
		[]string{"dataValidator", "iter", "subtract-map", "subtract"}, false, "8.4%", "6.2x on subtract"},
	{"fig10", "Fig. 10: PageRank", "pagerank",
		[]string{"graphLoader", "iter", "saveAsTextFile"}, true, "5.2%", "2.2x on iterations"},
	{"fig11", "Fig. 11: Triangle Count", "trianglecount",
		[]string{"graphLoader", "canonicalize", "computeTriangleCount"}, false, "3.6%", "6.5x on computeTriangleCount"},
	{"fig12", "Fig. 12: Terasort", "terasort",
		[]string{"NF", "SF"}, false, "3.9%", "2.6x overall"},
}

func init() {
	for _, f := range appFigures {
		f := f
		register(Experiment{ID: f.id, Title: f.title, Run: func(ctx context.Context) (*Table, error) { return runAppFigure(ctx, f) }})
	}
}

// runAppFigure produces the exp-vs-model comparison for one workload on
// the ten-slave cluster under the HDD and SSD configurations.
func runAppFigure(ctx context.Context, f appFigure) (*Table, error) {
	cal, err := calibratedTestbed(ctx, f.workload)
	if err != nil {
		return nil, err
	}
	w := mustWorkload(f.workload)
	t := &Table{
		ID: f.id, Title: f.title + " — measured (exp) vs model (min), 10 slaves, P=36",
		Columns: []string{"config", "phase", "exp", "model", "err"},
	}

	type cfgCase struct {
		name        string
		hdfs, local disk.Device
	}
	cases := []cfgCase{
		{"SSD", disk.NewSSD(), disk.NewSSD()},
	}
	if f.switchHDFS {
		cases = append(cases, cfgCase{"HDD", disk.NewHDD(), disk.NewHDD()})
	} else {
		cases = append(cases, cfgCase{"HDD-local", disk.NewSSD(), disk.NewHDD()})
	}

	var sumErr float64
	var cells int
	phaseTimes := map[string]map[string]time.Duration{}
	for _, c := range cases {
		cfg := spark.DefaultTestbed(10, 36, c.hdfs, c.local)
		res, err := runSim(w, cfg)
		if err != nil {
			return nil, err
		}
		pred, err := cal.Model.Predict(core.PlatformFor(cfg), core.ModeDoppio)
		if err != nil {
			return nil, err
		}
		phaseTimes[c.name] = map[string]time.Duration{}
		for _, ph := range f.phases {
			meas := phaseTime(res, ph)
			mod := phasePrediction(pred, ph)
			e := core.ErrorRate(mod, meas)
			sumErr += e
			cells++
			phaseTimes[c.name][ph] = meas
			t.AddRow(c.name, ph, fmtMin(meas), fmtMin(mod), fmtPct(e))
		}
		meas, mod := res.Total, pred.Total
		e := core.ErrorRate(mod, meas)
		sumErr += e
		cells++
		phaseTimes[c.name]["total"] = meas
		t.AddRow(c.name, "total", fmtMin(meas), fmtMin(mod), fmtPct(e))
	}

	t.SetMetric("avg_error", sumErr/float64(cells))
	t.Note("average error: %s (paper: %s)", fmtPct(sumErr/float64(cells)), f.paperErr)
	hddName := cases[1].name
	for _, ph := range append(f.phases, "total") {
		h, s := phaseTimes[hddName][ph], phaseTimes["SSD"][ph]
		if s > 0 && h > 0 {
			gap := h.Seconds() / s.Seconds()
			t.SetMetric("gap_"+ph, gap)
			t.Note("HDD/SSD gap on %s: %s (paper headline: %s)", ph, fmtX(gap), f.paperGap)
		}
	}
	return t, nil
}

// ensure the fmt import is used even if note formats change.
var _ = fmt.Sprint
