package experiments

import (
	"context"
	"time"

	"repro/internal/disk"
	"repro/internal/spark"
	"repro/internal/units"
)

func init() {
	register(Experiment{
		ID:    "speculation",
		Title: "Extension: straggler tails and Spark speculative execution",
		Run:   speculation,
	})
}

// speculation measures a BR-like shuffle stage under injected stragglers
// with and without speculative re-execution — the mitigation behind the
// straggler factor Ousterhout et al. decompose alongside disk and
// network.
func speculation(context.Context) (*Table, error) {
	app := spark.App{Name: "spec", Stages: []spark.Stage{{
		Name: "recal",
		Groups: []spark.TaskGroup{{
			Name:  "reduce",
			Count: 2000,
			Ops: []spark.Op{
				spark.IOC(spark.OpShuffleRead, 27*units.MB, 28*units.KB,
					units.MBps(60), 8550*time.Millisecond),
			},
		}},
	}}}

	t := &Table{
		ID:    "speculation",
		Title: "BR-like stage (2000 tasks) on SSDs, 10 slaves, P=36: straggler tail vs speculation",
		Columns: []string{
			"stragglers", "speculation", "stage time (min)", "vs clean",
		},
	}
	runCase := func(frac float64, spec bool) (time.Duration, error) {
		cfg := spark.DefaultTestbed(10, 36, disk.NewSSD(), disk.NewSSD())
		cfg.StragglerFraction = frac
		cfg.StragglerSlowdown = 5
		cfg.Speculation = spec
		cfg.SpeculationMultiplier = 1.5
		res, err := spark.Run(cfg, app)
		if err != nil {
			return 0, err
		}
		return res.Total, nil
	}
	clean, err := runCase(0, false)
	if err != nil {
		return nil, err
	}
	t.AddRow("none", "off", fmtMin(clean), "1.0x")
	var tail, recovered time.Duration
	for _, spec := range []bool{false, true} {
		d, err := runCase(0.02, spec)
		if err != nil {
			return nil, err
		}
		label := "off"
		if spec {
			label = "on"
			recovered = d
		} else {
			tail = d
		}
		t.AddRow("2% at 5x", label, fmtMin(d), fmtX(d.Seconds()/clean.Seconds()))
	}
	if tail > clean {
		frac := 1 - float64(recovered-clean)/float64(tail-clean)
		t.SetMetric("tail_recovered", frac)
		t.Note("speculative re-execution recovers %s of the straggler-induced excess", fmtPct(frac))
	}
	return t, nil
}
