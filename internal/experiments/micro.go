package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/spark"
	"repro/internal/units"
)

func init() {
	register(Experiment{ID: "fig5", Title: "Fig. 5: fio IOPS and effective bandwidth vs request size, HDD and SSD", Run: fig5})
	register(Experiment{ID: "fig6", Title: "Fig. 6: execution phases of the toy example (T=60MB/s, λ=4, BW=120MB/s)", Run: fig6})
}

// fig5 sweeps both devices with the fio-like microbenchmark.
func fig5(context.Context) (*Table, error) {
	hdd, ssd := disk.NewHDD(), disk.NewSSD()
	t := &Table{
		ID: "fig5", Title: "Read IOPS and effective bandwidth vs request size",
		Columns: []string{"reqsize", "HDD IOPS", "HDD BW", "SSD IOPS", "SSD BW", "SSD/HDD"},
	}
	for _, s := range disk.DefaultSweepSizes() {
		hb, sb := hdd.ReadBandwidth(s), ssd.ReadBandwidth(s)
		t.AddRow(fmtSize(s),
			fmt.Sprintf("%.0f", disk.ReadIOPS(hdd, s)),
			fmtRate(hb),
			fmt.Sprintf("%.0f", disk.ReadIOPS(ssd, s)),
			fmtRate(sb),
			fmtX(float64(sb)/float64(hb)))
	}
	t.Note("paper anchors: 15 MB/s vs 480 MB/s at 30KB (32x), 181x at 4KB, 3.7x at 128MB; GATK4 shuffle request size is %v", gatk4ShuffleReqSize)
	return t, nil
}

// fig6 simulates the paper's illustration workload and classifies each
// core count into the three phases, comparing the simulator against the
// analytic phase formulas.
func fig6(context.Context) (*Table, error) {
	const (
		tIO  = time.Second     // per-task I/O time at T
		tCPU = 3 * time.Second // λ = 4
		m    = 64
	)
	bw := units.MBps(120)
	tt := units.MBps(60)
	bytesPerTask := units.ByteSize(float64(tt) * tIO.Seconds())

	group := core.GroupModel{
		Name: "g", Count: m,
		ComputePerTask: tCPU,
		Ops: []core.OpModel{{
			Kind:         spark.OpShuffleRead,
			BytesPerTask: bytesPerTask,
			ReqSize:      bytesPerTask,
			T:            tt,
		}},
	}
	stage := core.StageModel{Name: "fig6", Groups: []core.GroupModel{group}}

	flat := disk.MustCurve([]disk.CurvePoint{
		{ReqSize: units.KB, Bandwidth: bw}, {ReqSize: units.GB, Bandwidth: bw},
	})

	t := &Table{
		ID: "fig6", Title: "Execution phases: simulator vs Eq. 1 (M=64 tasks, 1 node)",
		Columns: []string{"P", "phase", "sim (s)", "model (s)", "bottleneck"},
	}
	dev := constDevice{rate: bw}
	for _, p := range []int{1, 2, 4, 8, 12, 16, 32} {
		pl := core.Platform{
			N: 1, P: p,
			Curves:      core.Curves{HDFSRead: flat, HDFSWrite: flat, LocalRead: flat, LocalWrite: flat},
			Replication: 1,
			BlockSize:   128 * units.MB,
		}
		bp, err := group.Analyze(0, pl)
		if err != nil {
			return nil, err
		}
		pred := stage.Predict(pl, core.ModeDoppio)

		cfg := spark.DefaultTestbed(1, p, dev, dev)
		cfg.TaskLaunchOverhead = 0
		cfg.StageSetupOverhead = 0
		cfg.ModelNetwork = false
		app := spark.App{Name: "fig6", Stages: []spark.Stage{{
			Name: "s",
			Groups: []spark.TaskGroup{{
				Name: "g", Count: m,
				Ops: []spark.Op{spark.IOC(spark.OpShuffleRead, bytesPerTask, bytesPerTask, tt, tCPU)},
			}},
		}}}
		res, err := spark.Run(cfg, app)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(p), bp.Classify(p).String(),
			fmt.Sprintf("%.1f", res.Total.Seconds()),
			fmt.Sprintf("%.1f", pred.T.Seconds()),
			pred.Bottleneck)
	}
	t.Note("b = BW/T = 2, B = λ·b = 8: runtime scales up to P=8, then plateaus at D/BW")
	return t, nil
}

// constDevice is a request-size-independent device for the toy example.
type constDevice struct{ rate units.Rate }

func (c constDevice) Name() string                             { return "const" }
func (c constDevice) Kind() disk.Type                          { return disk.SSD }
func (c constDevice) ReadBandwidth(units.ByteSize) units.Rate  { return c.rate }
func (c constDevice) WriteBandwidth(units.ByteSize) units.Rate { return c.rate }
