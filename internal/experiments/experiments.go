// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment produces a Table (rows/series in the same
// shape the paper reports) and is addressable by the paper artifact id
// ("fig2", "tab4", ...). The bench harness (bench_test.go) and the
// doppio CLI both drive this registry.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/spark"
	"repro/internal/units"
	"repro/internal/workloads"
)

// Table is a reproduced paper artifact in tabular form.
type Table struct {
	// ID is the registry key ("fig7").
	ID string
	// Title describes the artifact ("Fig. 7: GATK4 measured vs model").
	Title string
	// Columns are the header cells.
	Columns []string
	// Rows are the data cells, one slice per row.
	Rows [][]string
	// Notes carry the paper-expected values and any calibration caveats.
	Notes []string
	// Metrics exposes headline numbers (average error rates, gap
	// ratios, savings) for programmatic assertions by the test suite
	// and benches.
	Metrics map[string]float64
}

// SetMetric records a headline number.
func (t *Table) SetMetric(name string, v float64) {
	if t.Metrics == nil {
		t.Metrics = map[string]float64{}
	}
	t.Metrics[name] = v
}

// AddRow appends a row from formatted values.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Note appends a note line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// WriteTo renders the table with aligned columns.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	fmt.Fprintf(cw, "## %s — %s\n", t.ID, t.Title)
	tw := tabwriter.NewWriter(cw, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Columns, "\t"))
	for _, r := range t.Rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return cw.n, err
	}
	for _, n := range t.Notes {
		fmt.Fprintf(cw, "# %s\n", n)
	}
	return cw.n, nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Experiment is one reproducible paper artifact. Run receives the
// runner's context (already carrying the per-artifact deadline, if
// any); long multi-point artifacts should check it between points so
// cancellation and timeouts take effect promptly.
type Experiment struct {
	ID    string
	Title string
	Run   func(context.Context) (*Table, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// Get returns the experiment with the given id.
func Get(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %s)",
			id, strings.Join(IDs(), ", "))
	}
	return e, nil
}

// IDs lists registered experiments in a stable order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// --- shared helpers -------------------------------------------------

func fmtMin(d time.Duration) string   { return fmt.Sprintf("%.1f", d.Minutes()) }
func fmtPct(v float64) string         { return fmt.Sprintf("%.1f%%", v*100) }
func fmtUSD(v float64) string         { return fmt.Sprintf("$%.2f", v) }
func fmtRate(r units.Rate) string     { return r.String() }
func fmtGB(b units.ByteSize) string   { return fmt.Sprintf("%.0f", b.GBytes()) }
func fmtX(v float64) string           { return fmt.Sprintf("%.1fx", v) }
func fmtSize(b units.ByteSize) string { return b.String() }

// mustWorkload resolves a registered workload.
func mustWorkload(name string) workloads.Workload {
	w, err := workloads.Get(name)
	if err != nil {
		panic(err)
	}
	return w
}

// runSim runs a workload on a config.
func runSim(w workloads.Workload, cfg spark.ClusterConfig) (*spark.Result, error) {
	return spark.Run(cfg, w.Build(cfg))
}

// phaseTime aggregates stage durations of a result by name prefix.
func phaseTime(res *spark.Result, prefix string) time.Duration {
	var total time.Duration
	for _, s := range res.Stages {
		if strings.HasPrefix(s.Name, prefix) {
			total += s.Duration()
		}
	}
	return total
}

// phasePrediction aggregates predicted stage times by name prefix.
func phasePrediction(pred core.AppPrediction, prefix string) time.Duration {
	var total time.Duration
	for _, s := range pred.Stages {
		if strings.HasPrefix(s.Name, prefix) {
			total += s.T
		}
	}
	return total
}

// --- calibration caches ----------------------------------------------
//
// Calibration performs four full simulator runs; experiments and benches
// reuse the fitted models. The cache has singleflight semantics: the
// map lock is only held to install an entry, and the calibration itself
// runs under the entry's own sync.Once — two artifacts asking for
// *different* workloads calibrate concurrently, while two asking for
// the *same* workload share one build instead of duplicating it.

type calEntry struct {
	once sync.Once
	cal  *core.Calibration
	err  error
}

var (
	calMu    sync.Mutex
	calCache = map[string]*calEntry{}
)

// calStats counts one artifact's calibration-cache activity. The runner
// installs a collector in the artifact's context; the report and the
// table metrics surface the counts so CI can watch cache effectiveness
// (a regression that stops sharing calibrations shows up as a lookup or
// miss count shift, long before it shows up as wall-clock time).
type calStats struct {
	mu           sync.Mutex
	hits, misses int
}

func (s *calStats) record(hit bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if hit {
		s.hits++
	} else {
		s.misses++
	}
}

// counts snapshots (hits, misses).
func (s *calStats) counts() (int, int) {
	if s == nil {
		return 0, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses
}

type calStatsKey struct{}

// withCalStats returns a context carrying a fresh collector plus the
// collector itself.
func withCalStats(ctx context.Context) (context.Context, *calStats) {
	s := &calStats{}
	return context.WithValue(ctx, calStatsKey{}, s), s
}

// calStatsFrom extracts the collector; nil (a no-op recorder) when the
// caller did not install one.
func calStatsFrom(ctx context.Context) *calStats {
	s, _ := ctx.Value(calStatsKey{}).(*calStats)
	return s
}

// calibratedTestbed calibrates a workload on the paper's physical
// testbed devices. Section V profiles on the evaluation cluster itself
// (ten slaves) and varies P and the disks, so the sample runs use the
// same slave count: RDD cache-or-persist decisions depend on cluster
// memory, and the fitted δ constants must live at the target scale.
func calibratedTestbed(ctx context.Context, workload string) (*core.Calibration, error) {
	return calibrated(ctx, "testbed/"+workload, func() (*core.Calibration, error) {
		w := mustWorkload(workload)
		ssd, hdd := disk.NewSSD(), disk.NewHDD()
		base := spark.DefaultTestbed(10, 1, ssd, ssd)
		return core.Calibrate(base, ssd, hdd, w.Build)
	})
}

// calibratedCloud calibrates a workload on Google Cloud virtual disks
// per Section VI-1: 500 GB pd-ssd for the SSD runs, 200 GB pd-standard
// for the probes.
func calibratedCloud(ctx context.Context, workload string) (*core.Calibration, error) {
	return calibrated(ctx, "cloud/"+workload, func() (*core.Calibration, error) {
		w := mustWorkload(workload)
		ssd := cloud.NewDisk(cloud.PDSSD, 500*units.GB)
		hdd := cloud.NewDisk(cloud.PDStandard, 200*units.GB)
		base := spark.DefaultTestbed(3, 1, ssd, ssd)
		return core.Calibrate(base, ssd, hdd, w.Build)
	})
}

// SharedTestbedCalibration exposes the artifact calibration cache to
// other subsystems — the campaign runner's model mode calibrates here —
// with the same singleflight keying the figN artifacts use, so a
// campaign sharing a workload with an artifact run (or with its own
// sibling points) reuses one fitted model instead of paying the four
// sample runs again.
func SharedTestbedCalibration(ctx context.Context, workload string) (*core.Calibration, error) {
	return calibratedTestbed(ctx, workload)
}

func calibrated(ctx context.Context, key string, build func() (*core.Calibration, error)) (*core.Calibration, error) {
	calMu.Lock()
	e, ok := calCache[key]
	if !ok {
		e = &calEntry{}
		calCache[key] = e
	}
	calMu.Unlock()
	// A lookup that found an installed entry is a hit even if the build is
	// still in flight — this caller spends no calibration work of its own.
	calStatsFrom(ctx).record(ok)
	e.once.Do(func() {
		e.cal, e.err = build()
		if e.err != nil {
			e.err = fmt.Errorf("experiments: calibrating %s: %w", key, e.err)
		}
	})
	if e.err != nil {
		// Do not cache failures: drop the entry so a later caller can
		// retry (the pre-singleflight behaviour).
		calMu.Lock()
		if calCache[key] == e {
			delete(calCache, key)
		}
		calMu.Unlock()
	}
	return e.cal, e.err
}
