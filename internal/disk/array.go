package disk

import (
	"fmt"

	"repro/internal/units"
)

// Array models several identical devices striped behind one mount (a
// JBOD/RAID-0 Spark Local directory list). The paper argues its model
// "relates to disk bandwidth rather than disk number... general enough
// to support the multi-disk case": an array simply multiplies the
// effective bandwidth at every request size, and both the simulator and
// the analytical model consume it unchanged.
type Array struct {
	// Member is the per-spindle device.
	Member Device
	// Count is the number of devices.
	Count int
}

// NewArray stripes n copies of the member device.
func NewArray(member Device, n int) *Array {
	if n <= 0 {
		n = 1
	}
	return &Array{Member: member, Count: n}
}

// Name implements Device.
func (a *Array) Name() string {
	return fmt.Sprintf("%dx%s", a.Count, a.Member.Name())
}

// Kind implements Device.
func (a *Array) Kind() Type { return a.Member.Kind() }

// ReadBandwidth implements Device: independent spindles serve disjoint
// request streams, so aggregate bandwidth scales with the member count.
func (a *Array) ReadBandwidth(reqSize units.ByteSize) units.Rate {
	return a.Member.ReadBandwidth(reqSize) * units.Rate(a.Count)
}

// WriteBandwidth implements Device.
func (a *Array) WriteBandwidth(reqSize units.ByteSize) units.Rate {
	return a.Member.WriteBandwidth(reqSize) * units.Rate(a.Count)
}
