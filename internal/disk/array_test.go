package disk

import (
	"strings"
	"testing"

	"repro/internal/units"
)

func TestArrayScalesBandwidth(t *testing.T) {
	hdd := NewHDD()
	arr := NewArray(hdd, 4)
	for _, rs := range []units.ByteSize{30 * units.KB, 128 * units.MB} {
		want := 4 * float64(hdd.ReadBandwidth(rs))
		if got := float64(arr.ReadBandwidth(rs)); got != want {
			t.Errorf("array read @%v = %v, want 4x member", rs, got)
		}
		if got := float64(arr.WriteBandwidth(rs)); got != 4*float64(hdd.WriteBandwidth(rs)) {
			t.Errorf("array write @%v wrong", rs)
		}
	}
	if arr.Kind() != HDD {
		t.Error("array kind should follow the member")
	}
	if !strings.HasPrefix(arr.Name(), "4x") {
		t.Errorf("name = %q", arr.Name())
	}
}

func TestArrayDegenerate(t *testing.T) {
	a := NewArray(NewSSD(), 0)
	if a.Count != 1 {
		t.Error("non-positive count should clamp to 1")
	}
}

// TestElevenHDDsMatchOneSSDOnlySequentially reproduces the paper's
// critique of Kambatla et al. [4]: matching HDD count to SSD bandwidth
// on *sequential* I/O does not match them on random I/O.
func TestElevenHDDsMatchOneSSDOnlySequentially(t *testing.T) {
	ssd := NewSSD()
	hdd11 := NewArray(NewHDD(), 11)
	seqRatio := float64(ssd.ReadBandwidth(128*units.MB)) / float64(hdd11.ReadBandwidth(128*units.MB))
	if seqRatio < 0.25 || seqRatio > 0.45 {
		t.Errorf("sequential: SSD/11xHDD = %.2f (11 HDDs should out-stream one SATA SSD ~3x)", seqRatio)
	}
	smallRatio := float64(ssd.ReadBandwidth(30*units.KB)) / float64(hdd11.ReadBandwidth(30*units.KB))
	if smallRatio < 2 {
		t.Errorf("random 30KB: SSD/11xHDD = %.2f; the SSD should still win (paper §VII-B)", smallRatio)
	}
}
