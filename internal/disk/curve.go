package disk

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/units"
)

// CurvePoint is one (request size, effective bandwidth) sample.
type CurvePoint struct {
	ReqSize   units.ByteSize
	Bandwidth units.Rate
}

// Curve is an empirical effective-bandwidth lookup table, the artifact
// the paper builds once per data center ("one-time disk profiling",
// Section VI-1) and that the analytical model consumes. Between samples
// the curve interpolates log-linearly in request size, which matches how
// these curves behave physically; outside the sampled range it clamps to
// the end points.
type Curve struct {
	points []CurvePoint // sorted by ReqSize, strictly increasing
}

// NewCurve builds a curve from samples. Samples are sorted; duplicate
// request sizes are rejected.
func NewCurve(points []CurvePoint) (*Curve, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("disk: curve needs at least one point")
	}
	ps := make([]CurvePoint, len(points))
	copy(ps, points)
	sort.Slice(ps, func(i, j int) bool { return ps[i].ReqSize < ps[j].ReqSize })
	for i, p := range ps {
		if p.ReqSize <= 0 {
			return nil, fmt.Errorf("disk: curve point %d has non-positive request size", i)
		}
		if p.Bandwidth <= 0 || math.IsNaN(float64(p.Bandwidth)) || math.IsInf(float64(p.Bandwidth), 0) {
			return nil, fmt.Errorf("disk: curve point %d has non-positive or non-finite bandwidth", i)
		}
		if i > 0 && ps[i-1].ReqSize == p.ReqSize {
			return nil, fmt.Errorf("disk: duplicate request size %v", p.ReqSize)
		}
	}
	return &Curve{points: ps}, nil
}

// MustCurve is NewCurve for static tables; it panics on error.
func MustCurve(points []CurvePoint) *Curve {
	c, err := NewCurve(points)
	if err != nil {
		panic(err)
	}
	return c
}

// Points returns a copy of the sample table.
func (c *Curve) Points() []CurvePoint {
	out := make([]CurvePoint, len(c.points))
	copy(out, c.points)
	return out
}

// Lookup returns the effective bandwidth at the given request size,
// interpolating log-linearly between samples.
func (c *Curve) Lookup(reqSize units.ByteSize) units.Rate {
	if reqSize <= 0 {
		return 0
	}
	ps := c.points
	if reqSize <= ps[0].ReqSize {
		return ps[0].Bandwidth
	}
	last := ps[len(ps)-1]
	if reqSize >= last.ReqSize {
		return last.Bandwidth
	}
	i := sort.Search(len(ps), func(i int) bool { return ps[i].ReqSize >= reqSize })
	if ps[i].ReqSize == reqSize {
		return ps[i].Bandwidth
	}
	lo, hi := ps[i-1], ps[i]
	// log-linear: interpolate log(BW) against log(size).
	x := (math.Log(float64(reqSize)) - math.Log(float64(lo.ReqSize))) /
		(math.Log(float64(hi.ReqSize)) - math.Log(float64(lo.ReqSize)))
	lb := math.Log(float64(lo.Bandwidth)) + x*(math.Log(float64(hi.Bandwidth))-math.Log(float64(lo.Bandwidth)))
	return units.Rate(math.Exp(lb))
}

// String renders the table in fio-report style.
func (c *Curve) String() string {
	var b strings.Builder
	for i, p := range c.points {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%v→%v", p.ReqSize, p.Bandwidth)
	}
	return b.String()
}

// DefaultSweepSizes is the request-size grid used for profiling, matching
// the paper's Fig. 5 x-axis (4 KB through the 128 MB HDFS block size).
func DefaultSweepSizes() []units.ByteSize {
	return []units.ByteSize{
		4 * units.KB, 8 * units.KB, 16 * units.KB, 30 * units.KB,
		64 * units.KB, 128 * units.KB, 256 * units.KB, 512 * units.KB,
		units.MB, 4 * units.MB, 16 * units.MB, 64 * units.MB, 128 * units.MB,
	}
}

// ProfileRead builds a read-bandwidth curve by sampling the device over
// the given request sizes (DefaultSweepSizes when nil). This is the
// "one-time disk profiling per data center" step of Section VI-1.
func ProfileRead(d Device, sizes []units.ByteSize) *Curve {
	return profile(sizes, d.ReadBandwidth)
}

// ProfileWrite builds the write-path curve.
func ProfileWrite(d Device, sizes []units.ByteSize) *Curve {
	return profile(sizes, d.WriteBandwidth)
}

func profile(sizes []units.ByteSize, f func(units.ByteSize) units.Rate) *Curve {
	if len(sizes) == 0 {
		sizes = DefaultSweepSizes()
	}
	pts := make([]CurvePoint, 0, len(sizes))
	for _, s := range sizes {
		pts = append(pts, CurvePoint{ReqSize: s, Bandwidth: f(s)})
	}
	return MustCurve(pts)
}
