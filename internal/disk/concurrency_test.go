package disk

import (
	"sync"
	"testing"
)

// TestConcurrentCurveAndDeviceLookups pins down the immutability
// contract the parallel experiment harness relies on: Curve lookup
// tables and Device bandwidth models are read-only after construction,
// so any number of concurrent artifact runs may share them. Run under
// -race in CI.
func TestConcurrentCurveAndDeviceLookups(t *testing.T) {
	hdd, ssd := NewHDD(), NewSSD()
	curve := ProfileRead(hdd, nil)
	arr := NewArray(NewHDD(), 4)
	sizes := DefaultSweepSizes()

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				for _, s := range sizes {
					if curve.Lookup(s) <= 0 {
						t.Errorf("curve lookup at %v returned non-positive bandwidth", s)
						return
					}
					if hdd.ReadBandwidth(s) <= 0 || ssd.WriteBandwidth(s) <= 0 {
						t.Error("device bandwidth non-positive")
						return
					}
					if arr.ReadBandwidth(s) < hdd.ReadBandwidth(s) {
						t.Error("array slower than single disk")
						return
					}
				}
				// Profiling builds fresh curves; concurrent profiling of a
				// shared device must also be safe.
				if ProfileWrite(ssd, sizes[:4]) == nil {
					t.Error("profile returned nil curve")
					return
				}
			}
		}()
	}
	wg.Wait()

	// The sweep grid itself must be a fresh slice per call: a caller
	// mutating its copy must not poison later profiling runs.
	a, b := DefaultSweepSizes(), DefaultSweepSizes()
	a[0] = 0
	if b[0] == 0 {
		t.Error("DefaultSweepSizes returns a shared backing array")
	}
}
