package disk

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/units"
)

// FioRow is one line of a fio-style sweep report: request size, IOPS and
// effective bandwidth for the read and write paths.
type FioRow struct {
	ReqSize   units.ByteSize
	ReadIOPS  float64
	ReadBW    units.Rate
	WriteIOPS float64
	WriteBW   units.Rate
}

// FioReport is the output of a full sweep over one device — the
// simulator-world equivalent of the fio runs behind the paper's Fig. 5.
type FioReport struct {
	Device string
	Kind   Type
	Rows   []FioRow
}

// Fio sweeps the device over the given request sizes (DefaultSweepSizes
// when nil) and returns the report.
func Fio(d Device, sizes []units.ByteSize) FioReport {
	if len(sizes) == 0 {
		sizes = DefaultSweepSizes()
	}
	rep := FioReport{Device: d.Name(), Kind: d.Kind()}
	for _, s := range sizes {
		rep.Rows = append(rep.Rows, FioRow{
			ReqSize:   s,
			ReadIOPS:  ReadIOPS(d, s),
			ReadBW:    d.ReadBandwidth(s),
			WriteIOPS: WriteIOPS(d, s),
			WriteBW:   d.WriteBandwidth(s),
		})
	}
	return rep
}

// ReadCurve converts the report's read columns into a Curve.
func (r FioReport) ReadCurve() *Curve {
	pts := make([]CurvePoint, 0, len(r.Rows))
	for _, row := range r.Rows {
		pts = append(pts, CurvePoint{ReqSize: row.ReqSize, Bandwidth: row.ReadBW})
	}
	return MustCurve(pts)
}

// WriteCurve converts the report's write columns into a Curve.
func (r FioReport) WriteCurve() *Curve {
	pts := make([]CurvePoint, 0, len(r.Rows))
	for _, row := range r.Rows {
		pts = append(pts, CurvePoint{ReqSize: row.ReqSize, Bandwidth: row.WriteBW})
	}
	return MustCurve(pts)
}

// WriteTo renders the report as an aligned table.
func (r FioReport) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	tw := tabwriter.NewWriter(cw, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "# fio sweep: %s (%s)\n", r.Device, r.Kind)
	fmt.Fprintln(tw, "reqsize\tread IOPS\tread BW\twrite IOPS\twrite BW")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%v\t%.0f\t%v\t%.0f\t%v\n",
			row.ReqSize, row.ReadIOPS, row.ReadBW, row.WriteIOPS, row.WriteBW)
	}
	err := tw.Flush()
	return cw.n, err
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
