// Package disk models storage devices at the level the Doppio paper
// consumes them: effective bandwidth as a function of request size, for
// reads and writes separately.
//
// The paper's key observation (Section III-C, Fig. 5) is that an HDD and
// an SSD differ by 3.7x at 128 MB requests (HDFS blocks) but by 32x at
// 30 KB requests (shuffle reads) and 181x at 4 KB. Both devices are well
// described by a positioning-overhead + sequential-transfer service
// model:
//
//	BW(s) = s / (overhead + s/seqRate)
//
// For the HDD the overhead is seek + rotational latency (~1.8 ms at
// 7200 RPM with realistic queueing); for the SSD it is the much smaller
// per-request channel/protocol overhead (~2.6 µs effective at high queue
// depth). The default constructors are calibrated so the three anchor
// ratios above are reproduced.
package disk

import (
	"fmt"
	"time"

	"repro/internal/units"
)

// Type distinguishes device technologies.
type Type int

// Device technologies.
const (
	HDD Type = iota
	SSD
	Virtual // cloud persistent disk; see internal/cloud
)

// String returns "HDD", "SSD" or "Virtual".
func (t Type) String() string {
	switch t {
	case HDD:
		return "HDD"
	case SSD:
		return "SSD"
	case Virtual:
		return "Virtual"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Device is a storage device's performance description. Implementations
// must be pure functions of the request size: all queueing and
// contention is handled by the flow-level simulator on top.
type Device interface {
	// Name identifies the device in traces ("WD4000FYYZ", "PM863").
	Name() string
	// Kind reports the device technology.
	Kind() Type
	// ReadBandwidth returns the sustained aggregate throughput when the
	// device serves a saturating stream of reads of the given size.
	ReadBandwidth(reqSize units.ByteSize) units.Rate
	// WriteBandwidth is the write-path analogue of ReadBandwidth.
	WriteBandwidth(reqSize units.ByteSize) units.Rate
}

// ReadIOPS converts a device's effective read bandwidth at reqSize into
// I/O operations per second, as fio reports.
func ReadIOPS(d Device, reqSize units.ByteSize) float64 {
	if reqSize <= 0 {
		return 0
	}
	return float64(d.ReadBandwidth(reqSize)) / float64(reqSize)
}

// WriteIOPS is the write-path analogue of ReadIOPS.
func WriteIOPS(d Device, reqSize units.ByteSize) float64 {
	if reqSize <= 0 {
		return 0
	}
	return float64(d.WriteBandwidth(reqSize)) / float64(reqSize)
}

// SeekTransfer is the positioning + transfer device model described in
// the package comment. It satisfies Device.
type SeekTransfer struct {
	// DeviceName labels the device.
	DeviceName string
	// Technology is HDD or SSD.
	Technology Type
	// ReadOverhead is the per-request positioning/processing overhead on
	// the read path.
	ReadOverhead time.Duration
	// ReadSeq is the sequential (large-request) read rate.
	ReadSeq units.Rate
	// WriteOverhead is the per-request overhead on the write path.
	WriteOverhead time.Duration
	// WriteSeq is the sequential write rate.
	WriteSeq units.Rate
	// MaxRequest caps the request size the device accepts in one
	// operation (Linux max_sectors_kb, 512 KB on the paper's testbed).
	// Larger application requests are split by the kernel; for bandwidth
	// purposes splitting sequential requests is free, so MaxRequest only
	// matters for accounting, not performance. Zero means unlimited.
	MaxRequest units.ByteSize
}

// Name implements Device.
func (d *SeekTransfer) Name() string { return d.DeviceName }

// Kind implements Device.
func (d *SeekTransfer) Kind() Type { return d.Technology }

func bw(reqSize units.ByteSize, overhead time.Duration, seq units.Rate) units.Rate {
	if reqSize <= 0 || seq <= 0 {
		return 0
	}
	serviceSec := overhead.Seconds() + float64(reqSize)/float64(seq)
	return units.Rate(float64(reqSize) / serviceSec)
}

// ReadBandwidth implements Device.
func (d *SeekTransfer) ReadBandwidth(reqSize units.ByteSize) units.Rate {
	return bw(reqSize, d.ReadOverhead, d.ReadSeq)
}

// WriteBandwidth implements Device.
func (d *SeekTransfer) WriteBandwidth(reqSize units.ByteSize) units.Rate {
	return bw(reqSize, d.WriteOverhead, d.WriteSeq)
}

// NewHDD returns a model of the paper's 7200 RPM 4 TB Western Digital
// drive. Calibration anchors (paper Fig. 5a and Section III-C):
//
//	~2.1 MB/s at 4 KB, 15 MB/s at 30 KB, ~140 MB/s at 128 MB,
//	~100 MB/s effective shuffle-write bandwidth at ~365 MB chunks.
func NewHDD() *SeekTransfer {
	return &SeekTransfer{
		DeviceName:    "WD4000FYYZ-7200RPM",
		Technology:    HDD,
		ReadOverhead:  1790 * time.Microsecond,
		ReadSeq:       units.MBps(142),
		WriteOverhead: 2200 * time.Microsecond,
		WriteSeq:      units.MBps(103),
		MaxRequest:    512 * units.KB,
	}
}

// NewSSD returns a model of the paper's Samsung SATA SSD. Calibration
// anchors (paper Fig. 5b and Section III-C):
//
//	~380 MB/s at 4 KB (181x HDD), ~480 MB/s at 30 KB (32x HDD),
//	~520 MB/s at 128 MB (3.7x HDD).
func NewSSD() *SeekTransfer {
	return &SeekTransfer{
		DeviceName:    "SAMSUNG-MZ7LM240",
		Technology:    SSD,
		ReadOverhead:  2600 * time.Nanosecond,
		ReadSeq:       units.MBps(520),
		WriteOverhead: 4500 * time.Nanosecond,
		WriteSeq:      units.MBps(380),
		MaxRequest:    512 * units.KB,
	}
}
