package disk

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

// The paper's Fig. 5 / Section III-C anchor points. These are the numbers
// the whole reproduction hangs on, so they get their own test.
func TestPaperAnchorRatios(t *testing.T) {
	hdd, ssd := NewHDD(), NewSSD()

	hdd30 := hdd.ReadBandwidth(30 * units.KB).PerSecMB()
	if hdd30 < 14 || hdd30 > 16 {
		t.Errorf("HDD @30KB = %.1f MB/s, paper says ~15", hdd30)
	}
	ssd30 := ssd.ReadBandwidth(30 * units.KB).PerSecMB()
	if ssd30 < 450 || ssd30 > 510 {
		t.Errorf("SSD @30KB = %.1f MB/s, paper says ~480", ssd30)
	}
	gap30 := ssd30 / hdd30
	if gap30 < 28 || gap30 > 36 {
		t.Errorf("SSD/HDD gap @30KB = %.1fx, paper says 32x", gap30)
	}

	gap4 := ssd.ReadBandwidth(4*units.KB).PerSecMB() / hdd.ReadBandwidth(4*units.KB).PerSecMB()
	if gap4 < 160 || gap4 > 200 {
		t.Errorf("SSD/HDD gap @4KB = %.1fx, paper says 181x", gap4)
	}

	gap128 := ssd.ReadBandwidth(128*units.MB).PerSecMB() / hdd.ReadBandwidth(128*units.MB).PerSecMB()
	if gap128 < 3.3 || gap128 > 4.1 {
		t.Errorf("SSD/HDD gap @128MB = %.2fx, paper says 3.7x", gap128)
	}

	// Shuffle write chunks (~365 MB) on HDD: paper model uses 100 MB/s.
	hddW := hdd.WriteBandwidth(365 * units.MB).PerSecMB()
	if hddW < 90 || hddW > 110 {
		t.Errorf("HDD write @365MB = %.1f MB/s, paper says ~100", hddW)
	}
}

func TestBandwidthMonotoneInRequestSize(t *testing.T) {
	// Effective bandwidth must be non-decreasing in request size for the
	// seek+transfer model.
	for _, d := range []Device{NewHDD(), NewSSD()} {
		f := func(a, b uint32) bool {
			sa := units.ByteSize(a%(256*1024) + 1)
			sb := units.ByteSize(b%(256*1024) + 1)
			if sa > sb {
				sa, sb = sb, sa
			}
			return d.ReadBandwidth(sa) <= d.ReadBandwidth(sb)+1 &&
				d.WriteBandwidth(sa) <= d.WriteBandwidth(sb)+1
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", d.Name(), err)
		}
	}
}

func TestBandwidthApproachesSequential(t *testing.T) {
	hdd := NewHDD()
	got := hdd.ReadBandwidth(4 * units.GB)
	if math.Abs(got.PerSecMB()-142) > 1 {
		t.Errorf("HDD at huge requests = %v, want ~ReadSeq 142MB/s", got)
	}
}

func TestIOPSBandwidthConsistency(t *testing.T) {
	ssd := NewSSD()
	s := 4 * units.KB
	iops := ReadIOPS(ssd, s)
	bwFromIOPS := iops * float64(s)
	if math.Abs(bwFromIOPS-float64(ssd.ReadBandwidth(s)))/float64(ssd.ReadBandwidth(s)) > 1e-9 {
		t.Error("IOPS * reqSize != bandwidth")
	}
	if ReadIOPS(ssd, 0) != 0 || WriteIOPS(ssd, 0) != 0 {
		t.Error("IOPS at zero request size should be 0")
	}
}

func TestZeroAndNegativeRequestSizes(t *testing.T) {
	hdd := NewHDD()
	if hdd.ReadBandwidth(0) != 0 || hdd.ReadBandwidth(-5) != 0 {
		t.Error("non-positive request size should give zero bandwidth")
	}
	if hdd.WriteBandwidth(0) != 0 {
		t.Error("non-positive request size should give zero write bandwidth")
	}
}

func TestTypeString(t *testing.T) {
	if HDD.String() != "HDD" || SSD.String() != "SSD" || Virtual.String() != "Virtual" {
		t.Error("Type.String broken")
	}
	if Type(42).String() != "Type(42)" {
		t.Error("unknown Type.String broken")
	}
}

func TestSSDIOPSPlausible(t *testing.T) {
	// The calibrated SSD should deliver on the order of 100k 4KB read
	// IOPS, like a real SATA drive at high queue depth.
	iops := ReadIOPS(NewSSD(), 4*units.KB)
	if iops < 80_000 || iops > 130_000 {
		t.Errorf("SSD 4KB read IOPS = %.0f, want ~100k", iops)
	}
	hiops := ReadIOPS(NewHDD(), 4*units.KB)
	if hiops < 300 || hiops > 700 {
		t.Errorf("HDD 4KB read IOPS = %.0f, want a few hundred", hiops)
	}
}
