package disk

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestCurveLookupExactPoints(t *testing.T) {
	c := MustCurve([]CurvePoint{
		{30 * units.KB, units.MBps(15)},
		{128 * units.MB, units.MBps(140)},
		{4 * units.KB, units.MBps(2)},
	})
	if got := c.Lookup(30 * units.KB); got != units.MBps(15) {
		t.Errorf("lookup 30KB = %v", got)
	}
	if got := c.Lookup(4 * units.KB); got != units.MBps(2) {
		t.Errorf("lookup 4KB = %v", got)
	}
}

func TestCurveClampsOutsideRange(t *testing.T) {
	c := MustCurve([]CurvePoint{
		{30 * units.KB, units.MBps(15)},
		{128 * units.MB, units.MBps(140)},
	})
	if got := c.Lookup(units.KB); got != units.MBps(15) {
		t.Errorf("below range = %v, want clamp to 15MB/s", got)
	}
	if got := c.Lookup(units.GB); got != units.MBps(140) {
		t.Errorf("above range = %v, want clamp to 140MB/s", got)
	}
	if got := c.Lookup(0); got != 0 {
		t.Errorf("zero size = %v, want 0", got)
	}
}

func TestCurveInterpolationIsMonotone(t *testing.T) {
	c := ProfileRead(NewHDD(), nil)
	f := func(a, b uint32) bool {
		sa := units.ByteSize(a%(128*1024*1024) + 1)
		sb := units.ByteSize(b%(128*1024*1024) + 1)
		if sa > sb {
			sa, sb = sb, sa
		}
		return c.Lookup(sa) <= c.Lookup(sb)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCurveTracksDevice(t *testing.T) {
	// The profiled curve interpolation should stay close to the true
	// device curve between samples (log-linear fit of a smooth function).
	dev := NewSSD()
	c := ProfileRead(dev, nil)
	for _, s := range []units.ByteSize{6 * units.KB, 45 * units.KB, 700 * units.KB, 9 * units.MB} {
		truth := float64(dev.ReadBandwidth(s))
		got := float64(c.Lookup(s))
		if math.Abs(got-truth)/truth > 0.05 {
			t.Errorf("at %v: curve %v vs device %v (>5%% apart)", s, c.Lookup(s), dev.ReadBandwidth(s))
		}
	}
}

func TestNewCurveValidation(t *testing.T) {
	if _, err := NewCurve(nil); err == nil {
		t.Error("empty curve accepted")
	}
	if _, err := NewCurve([]CurvePoint{{0, units.MBps(1)}}); err == nil {
		t.Error("zero request size accepted")
	}
	if _, err := NewCurve([]CurvePoint{{units.KB, 0}}); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if _, err := NewCurve([]CurvePoint{
		{units.KB, units.MBps(1)}, {units.KB, units.MBps(2)},
	}); err == nil {
		t.Error("duplicate request size accepted")
	}
}

func TestCurvePointsCopies(t *testing.T) {
	c := MustCurve([]CurvePoint{{units.KB, units.MBps(1)}})
	pts := c.Points()
	pts[0].Bandwidth = units.MBps(999)
	if c.Lookup(units.KB) != units.MBps(1) {
		t.Error("Points() exposed internal state")
	}
}

func TestCurveString(t *testing.T) {
	c := MustCurve([]CurvePoint{
		{30 * units.KB, units.MBps(15)},
		{128 * units.MB, units.MBps(140)},
	})
	s := c.String()
	if !strings.Contains(s, "30KB") || !strings.Contains(s, "15MB/s") {
		t.Errorf("String = %q", s)
	}
}

func TestFioReport(t *testing.T) {
	rep := Fio(NewHDD(), nil)
	if len(rep.Rows) != len(DefaultSweepSizes()) {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	var sb strings.Builder
	if _, err := rep.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"fio sweep", "30KB", "128MB", "IOPS"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	rc := rep.ReadCurve()
	if rc.Lookup(30*units.KB).PerSecMB() < 14 {
		t.Error("read curve lost calibration")
	}
	wc := rep.WriteCurve()
	if wc.Lookup(365*units.MB).PerSecMB() < 90 {
		t.Error("write curve lost calibration")
	}
}
