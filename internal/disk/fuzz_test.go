package disk

import (
	"math"
	"testing"

	"repro/internal/units"
)

// FuzzCurveInterp asserts the interpolation invariants over arbitrary
// three-point curves and request sizes: a curve NewCurve accepts never
// produces a NaN, infinite, or out-of-range bandwidth — the lookup is
// bounded by the sampled bandwidths, and non-positive request sizes
// yield zero. The committed corpus pins the paper's HDD shape.
func FuzzCurveInterp(f *testing.F) {
	f.Add(int64(30*units.KB), int64(4*units.KB), 11.0, int64(units.MB), 80.0, int64(128*units.MB), 140.0)
	f.Add(int64(-1), int64(1), 1.0, int64(2), 2.0, int64(3), 3.0)
	f.Add(int64(64*units.KB), int64(64*units.KB), 33.0, int64(64*units.KB), 34.0, int64(units.MB), 90.0)
	f.Add(int64(math.MaxInt64), int64(1), 1e-3, int64(math.MaxInt64), 1e6, int64(units.GB), 500.0)
	f.Fuzz(func(t *testing.T, req, s1 int64, b1 float64, s2 int64, b2 float64, s3 int64, b3 float64) {
		c, err := NewCurve([]CurvePoint{
			{ReqSize: units.ByteSize(s1), Bandwidth: units.MBps(b1)},
			{ReqSize: units.ByteSize(s2), Bandwidth: units.MBps(b2)},
			{ReqSize: units.ByteSize(s3), Bandwidth: units.MBps(b3)},
		})
		if err != nil {
			return // rejected inputs are out of scope
		}
		got := float64(c.Lookup(units.ByteSize(req)))
		if req <= 0 {
			if got != 0 {
				t.Fatalf("Lookup(%d) = %v, want 0 for non-positive request", req, got)
			}
			return
		}
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("Lookup(%d) = %v on curve %v", req, got, c)
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, p := range c.Points() {
			lo = math.Min(lo, float64(p.Bandwidth))
			hi = math.Max(hi, float64(p.Bandwidth))
		}
		// Log-linear interpolation stays between its bracketing samples;
		// allow a hair of float slack at the boundaries.
		if got < lo*(1-1e-9) || got > hi*(1+1e-9) {
			t.Fatalf("Lookup(%d) = %v outside sampled range [%v, %v] on curve %v", req, got, lo, hi, c)
		}
	})
}
