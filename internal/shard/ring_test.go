package shard

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("POST /api/v1/predict\x00{\"workload\":\"wc\",\"slaves\":%d}", i)
	}
	return keys
}

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty membership accepted")
	}
	if _, err := NewRing([]string{"a:1", "a:1"}, 0); err == nil {
		t.Fatal("duplicate replica accepted")
	}
	if _, err := NewRing([]string{""}, 0); err == nil {
		t.Fatal("empty replica id accepted")
	}
}

func TestRingStableAcrossConstructions(t *testing.T) {
	// Same membership in any order must shard identically: routers built
	// independently (restarts, multiple front tiers) have to agree.
	a, err := NewRing([]string{"h1:1", "h2:2", "h3:3"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"h3:3", "h1:1", "h2:2"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ringKeys(500) {
		if a.Primary(k) != b.Primary(k) {
			t.Fatalf("key %q: primary differs across constructions: %q vs %q", k, a.Primary(k), b.Primary(k))
		}
	}
}

func TestRingSequence(t *testing.T) {
	r, err := NewRing([]string{"h1:1", "h2:2", "h3:3", "h4:4"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ringKeys(200) {
		seq := r.Sequence(k)
		if len(seq) != 4 {
			t.Fatalf("key %q: sequence has %d entries, want 4", k, len(seq))
		}
		if seq[0] != r.Primary(k) {
			t.Fatalf("key %q: sequence head %q != primary %q", k, seq[0], r.Primary(k))
		}
		seen := map[string]bool{}
		for _, rep := range seq {
			if seen[rep] {
				t.Fatalf("key %q: replica %q repeated in sequence %v", k, rep, seq)
			}
			seen[rep] = true
		}
	}
}

func TestRingBoundedMovementOnRemoval(t *testing.T) {
	// The consistent-hashing contract: removing one replica moves ONLY
	// the keys that replica owned. Every other key keeps its primary, so
	// surviving replicas keep their caches warm through a failure.
	members := []string{"h1:1", "h2:2", "h3:3", "h4:4"}
	full, err := NewRing(members, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	removed := "h3:3"
	reduced, err := NewRing([]string{"h1:1", "h2:2", "h4:4"}, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	keys := ringKeys(5000)
	moved := 0
	for _, k := range keys {
		before, after := full.Primary(k), reduced.Primary(k)
		if before == removed {
			moved++
			if after == removed {
				t.Fatalf("key %q still assigned to removed replica", k)
			}
			// An orphaned key must land on its old first failover choice:
			// that is the replica whose cache a router already warmed for it.
			want := full.Sequence(k)[1]
			if after != want {
				t.Fatalf("key %q: moved to %q, want old failover choice %q", k, after, want)
			}
			continue
		}
		if before != after {
			t.Fatalf("key %q moved from %q to %q though %q was removed", k, before, after, removed)
		}
	}
	if moved == 0 {
		t.Fatal("no keys were owned by the removed replica; test vacuous")
	}
}

func TestRingBoundedMovementOnAddition(t *testing.T) {
	// Adding a replica may only steal keys for itself.
	small, err := NewRing([]string{"h1:1", "h2:2", "h3:3"}, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewRing([]string{"h1:1", "h2:2", "h3:3", "h4:4"}, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	stolen := 0
	for _, k := range ringKeys(5000) {
		before, after := small.Primary(k), big.Primary(k)
		if before != after {
			if after != "h4:4" {
				t.Fatalf("key %q moved %q -> %q on addition of h4:4", k, before, after)
			}
			stolen++
		}
	}
	if stolen == 0 {
		t.Fatal("new replica stole no keys; test vacuous")
	}
}

func TestRingDistribution(t *testing.T) {
	// With DefaultVNodes the per-replica share should be roughly fair:
	// no replica under half or over double its fair share.
	members := []string{"h1:1", "h2:2", "h3:3", "h4:4", "h5:5"}
	r, err := NewRing(members, DefaultVNodes)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	n := 20000
	for _, k := range ringKeys(n) {
		counts[r.Primary(k)]++
	}
	fair := float64(n) / float64(len(members))
	for _, rep := range members {
		share := float64(counts[rep])
		if share < fair/2 || share > fair*2 {
			t.Fatalf("replica %q owns %d of %d keys (fair %.0f): distribution too skewed: %v",
				rep, counts[rep], n, fair, counts)
		}
	}
}
