// Package shard holds the consistent-hash ring shared by the routing
// tier (internal/cluster) and the serve tier (internal/serve): both
// must agree on which replica owns a canonical key — the router to
// route it there, a replica to know which peer to consult on a local
// miss — so the ring lives below both of them.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring over replica IDs. Each replica owns
// VNodes points on a 64-bit circle; a key belongs to the replica owning
// the first point at or clockwise of the key's hash. The properties the
// router leans on:
//
//   - stability: a key's owner depends only on the replica set, not on
//     insertion order or lookup history, so every router instance (and
//     every restart) shards identically;
//   - bounded movement: removing one replica moves only the keys that
//     replica owned — every other key keeps its owner, so the surviving
//     replicas keep their caches warm through a failure;
//   - a total preference order: Sequence lists all replicas in ring
//     order from the key's primary, giving failover a deterministic
//     next-best replica whose cache is the most likely to be reused for
//     re-routed keys.
//
// A Ring is immutable after construction; membership changes build a
// new Ring (cheap: membership is a handful of replicas).
type Ring struct {
	replicas []string // sorted, unique
	points   []ringPoint
}

type ringPoint struct {
	hash    uint64
	replica int // index into replicas
}

// DefaultVNodes spreads each replica over enough points that the
// largest/smallest shard-share ratio stays close to 1 for small
// replica counts.
const DefaultVNodes = 128

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	// fnv64a alone leaves visible structure on short, similar inputs
	// (vnode labels differ only in a trailing digit), which skews the
	// per-replica share badly; a splitmix64 finalizer scatters it.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewRing builds a ring over the given replica IDs with vnodes points
// per replica (<=0 means DefaultVNodes).
func NewRing(replicas []string, vnodes int) (*Ring, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("shard: ring needs at least one replica")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	rs := append([]string(nil), replicas...)
	sort.Strings(rs)
	for i, rep := range rs {
		if rep == "" {
			return nil, fmt.Errorf("shard: empty replica id")
		}
		if i > 0 && rs[i-1] == rep {
			return nil, fmt.Errorf("shard: duplicate replica %q", rep)
		}
	}
	r := &Ring{replicas: rs, points: make([]ringPoint, 0, len(rs)*vnodes)}
	for i, rep := range rs {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", rep, v)), replica: i})
		}
	}
	// Ties (astronomically unlikely with fnv64a over distinct strings)
	// break by replica name so the order is still deterministic.
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].replica < r.points[b].replica
	})
	return r, nil
}

// Replicas returns the membership in sorted order.
func (r *Ring) Replicas() []string { return append([]string(nil), r.replicas...) }

// at returns the index of the first ring point at or after key's hash.
func (r *Ring) at(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Primary returns the replica that owns key.
func (r *Ring) Primary(key string) string {
	return r.replicas[r.points[r.at(key)].replica]
}

// Sequence returns every replica in preference order for key: the
// primary first, then each new replica encountered walking the ring
// clockwise. Failover tries them in this order.
func (r *Ring) Sequence(key string) []string {
	out := make([]string, 0, len(r.replicas))
	seen := make([]bool, len(r.replicas))
	start := r.at(key)
	for n := 0; n < len(r.points) && len(out) < len(r.replicas); n++ {
		p := r.points[(start+n)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			out = append(out, r.replicas[p.replica])
		}
	}
	return out
}
