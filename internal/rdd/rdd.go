// Package rdd is a miniature functional implementation of Spark's
// resilient distributed dataset abstraction: lazy, partitioned,
// lineage-based datasets with transformations (Map, Filter,
// GroupByKey, ...), actions (Collect, Count, Reduce, ...), explicit
// caching, and a real sort-based shuffle that materialises map outputs
// in per-reducer segments — the M×R small-block access pattern whose
// I/O cost the Doppio model quantifies.
//
// The engine is single-process (partitions run on goroutines) and is
// the workload-side substrate of the reproduction: it executes real
// computations at laptop scale while an attached Trace records the
// logical I/O (input bytes, shuffle volumes, request sizes,
// recomputation counts). The bridge in trace.go converts a trace into a
// spark.App so a small real run can be scaled up on the cluster
// simulator and priced by the analytical model — the workflow the paper
// applies to GATK4.
//
// Because Go methods cannot introduce type parameters,
// type-transforming operations are package functions (rdd.Map,
// rdd.GroupByKey) rather than methods.
package rdd

import (
	"fmt"
	"sync"
)

// Context owns execution resources and instrumentation for a set of
// datasets, playing the role of SparkContext.
type Context struct {
	// Parallelism bounds the number of concurrently computed
	// partitions (the executor core count). Zero means unbounded.
	Parallelism int

	mu          sync.Mutex
	trace       *Trace
	seq         int
	shuffleDirs []string
}

// NewContext returns a context with the given parallelism.
func NewContext(parallelism int) *Context {
	return &Context{Parallelism: parallelism, trace: NewTrace()}
}

// Trace returns the context's I/O trace.
func (c *Context) Trace() *Trace { return c.trace }

func (c *Context) nextID() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	return c.seq
}

// Dataset is a lazy, partitioned, immutable collection with lineage.
type Dataset[T any] struct {
	ctx   *Context
	id    int
	name  string
	parts int
	// compute materialises one partition from the dataset's parents.
	compute func(part int) ([]T, error)

	mu       sync.Mutex
	cached   [][]T
	caching  bool
	computes int // number of partition computations (lineage re-runs)
}

// newDataset wires a dataset into the context.
func newDataset[T any](ctx *Context, name string, parts int, compute func(int) ([]T, error)) *Dataset[T] {
	if parts <= 0 {
		parts = 1
	}
	return &Dataset[T]{ctx: ctx, id: ctx.nextID(), name: name, parts: parts, compute: compute}
}

// Name returns the dataset's lineage label.
func (d *Dataset[T]) Name() string { return d.name }

// NumPartitions returns the partition count.
func (d *Dataset[T]) NumPartitions() int { return d.parts }

// Computations reports how many partition computations this dataset has
// executed — caching makes repeated actions stop increasing it, the
// recomputation-vs-persist trade-off of the paper's Section III-B2.
func (d *Dataset[T]) Computations() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.computes
}

// Cache marks the dataset for in-memory materialisation on first use.
func (d *Dataset[T]) Cache() *Dataset[T] {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.caching = true
	return d
}

// Uncache drops any materialised partitions.
func (d *Dataset[T]) Uncache() *Dataset[T] {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.caching = false
	d.cached = nil
	return d
}

// partition returns one partition, using the cache when enabled.
func (d *Dataset[T]) partition(part int) ([]T, error) {
	if part < 0 || part >= d.parts {
		return nil, fmt.Errorf("rdd: partition %d out of range [0,%d)", part, d.parts)
	}
	d.mu.Lock()
	if d.cached != nil && d.cached[part] != nil {
		p := d.cached[part]
		d.mu.Unlock()
		return p, nil
	}
	d.mu.Unlock()

	rows, err := d.compute(part)
	if err != nil {
		return nil, fmt.Errorf("rdd: computing %s[%d]: %w", d.name, part, err)
	}

	d.mu.Lock()
	d.computes++
	if d.caching {
		if d.cached == nil {
			d.cached = make([][]T, d.parts)
		}
		d.cached[part] = rows
	}
	d.mu.Unlock()
	return rows, nil
}

// runParts evaluates fn over every partition index with the context's
// parallelism, collecting the first error.
func runParts(ctx *Context, parts int, fn func(part int) error) error {
	sem := make(chan struct{}, maxInt(1, parallelismOf(ctx, parts)))
	errCh := make(chan error, parts)
	var wg sync.WaitGroup
	for p := 0; p < parts; p++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(p int) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := fn(p); err != nil {
				errCh <- err
			}
		}(p)
	}
	wg.Wait()
	close(errCh)
	return <-errCh
}

func parallelismOf(ctx *Context, parts int) int {
	if ctx.Parallelism <= 0 || ctx.Parallelism > parts {
		return parts
	}
	return ctx.Parallelism
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Parallelize distributes a slice over partitions.
func Parallelize[T any](ctx *Context, data []T, parts int) *Dataset[T] {
	if parts <= 0 {
		parts = maxInt(1, ctx.Parallelism)
	}
	n := len(data)
	// Copy so later mutation of the caller's slice cannot alter the
	// "immutable" dataset.
	snapshot := make([]T, n)
	copy(snapshot, data)
	return newDataset(ctx, "parallelize", parts, func(part int) ([]T, error) {
		lo := part * n / parts
		hi := (part + 1) * n / parts
		out := make([]T, hi-lo)
		copy(out, snapshot[lo:hi])
		return out, nil
	})
}

// Map applies f to every element.
func Map[T, U any](d *Dataset[T], f func(T) U) *Dataset[U] {
	return newDataset(d.ctx, d.name+".map", d.parts, func(part int) ([]U, error) {
		in, err := d.partition(part)
		if err != nil {
			return nil, err
		}
		out := make([]U, len(in))
		for i, v := range in {
			out[i] = f(v)
		}
		return out, nil
	})
}

// FlatMap applies f and concatenates the results.
func FlatMap[T, U any](d *Dataset[T], f func(T) []U) *Dataset[U] {
	return newDataset(d.ctx, d.name+".flatMap", d.parts, func(part int) ([]U, error) {
		in, err := d.partition(part)
		if err != nil {
			return nil, err
		}
		var out []U
		for _, v := range in {
			out = append(out, f(v)...)
		}
		return out, nil
	})
}

// Filter keeps the elements for which f is true.
func Filter[T any](d *Dataset[T], f func(T) bool) *Dataset[T] {
	return newDataset(d.ctx, d.name+".filter", d.parts, func(part int) ([]T, error) {
		in, err := d.partition(part)
		if err != nil {
			return nil, err
		}
		out := in[:0:0]
		for _, v := range in {
			if f(v) {
				out = append(out, v)
			}
		}
		return out, nil
	})
}

// MapPartitions applies f to whole partitions.
func MapPartitions[T, U any](d *Dataset[T], f func(part int, rows []T) ([]U, error)) *Dataset[U] {
	return newDataset(d.ctx, d.name+".mapPartitions", d.parts, func(part int) ([]U, error) {
		in, err := d.partition(part)
		if err != nil {
			return nil, err
		}
		return f(part, in)
	})
}

// Union concatenates two datasets (partitions of b follow partitions of
// a) — the UnionRDD of GATK4's markedReads.
func Union[T any](a, b *Dataset[T]) *Dataset[T] {
	return newDataset(a.ctx, a.name+"+"+b.name, a.parts+b.parts, func(part int) ([]T, error) {
		if part < a.parts {
			return a.partition(part)
		}
		return b.partition(part - a.parts)
	})
}

// --- actions ------------------------------------------------------

// Collect materialises the whole dataset in partition order.
func Collect[T any](d *Dataset[T]) ([]T, error) {
	parts := make([][]T, d.parts)
	err := runParts(d.ctx, d.parts, func(p int) error {
		rows, err := d.partition(p)
		if err != nil {
			return err
		}
		parts[p] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []T
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// Count returns the element count.
func Count[T any](d *Dataset[T]) (int, error) {
	counts := make([]int, d.parts)
	err := runParts(d.ctx, d.parts, func(p int) error {
		rows, err := d.partition(p)
		if err != nil {
			return err
		}
		counts[p] = len(rows)
		return nil
	})
	if err != nil {
		return 0, err
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	return total, nil
}

// Reduce folds the dataset with an associative, commutative f. An empty
// dataset is an error, matching Spark.
func Reduce[T any](d *Dataset[T], f func(a, b T) T) (T, error) {
	var zero T
	partials := make([]*T, d.parts)
	err := runParts(d.ctx, d.parts, func(p int) error {
		rows, err := d.partition(p)
		if err != nil {
			return err
		}
		if len(rows) == 0 {
			return nil
		}
		acc := rows[0]
		for _, v := range rows[1:] {
			acc = f(acc, v)
		}
		partials[p] = &acc
		return nil
	})
	if err != nil {
		return zero, err
	}
	var acc *T
	for _, p := range partials {
		if p == nil {
			continue
		}
		if acc == nil {
			v := *p
			acc = &v
		} else {
			v := f(*acc, *p)
			acc = &v
		}
	}
	if acc == nil {
		return zero, fmt.Errorf("rdd: reduce of empty dataset %s", d.name)
	}
	return *acc, nil
}

// Take returns up to n leading elements without materialising every
// partition.
func Take[T any](d *Dataset[T], n int) ([]T, error) {
	var out []T
	for p := 0; p < d.parts && len(out) < n; p++ {
		rows, err := d.partition(p)
		if err != nil {
			return nil, err
		}
		need := n - len(out)
		if need > len(rows) {
			need = len(rows)
		}
		out = append(out, rows[:need]...)
	}
	return out, nil
}
