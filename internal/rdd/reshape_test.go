package rdd

import (
	"reflect"
	"sort"
	"testing"
)

func TestRepartitionBalancesAndPreservesElements(t *testing.T) {
	ctx := NewContext(4)
	defer ctx.Close()
	// Deliberately skewed input: partition 0 holds almost everything.
	skewed := newDataset(ctx, "skewed", 4, func(part int) ([]int, error) {
		if part == 0 {
			return intRange(970), nil
		}
		return []int{1000 + part}, nil
	})
	re := Repartition(skewed, 8)
	if re.NumPartitions() != 8 {
		t.Fatalf("partitions = %d", re.NumPartitions())
	}
	got, err := Collect(re)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 973 {
		t.Fatalf("elements = %d, want 973", len(got))
	}
	// Balance: no output partition should be wildly off 973/8.
	for p := 0; p < 8; p++ {
		rows, err := re.partition(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) < 973/8-30 || len(rows) > 973/8+30 {
			t.Errorf("partition %d has %d rows", p, len(rows))
		}
	}
	// Repartition is a shuffle: the trace must show it.
	if ctx.Trace().ShuffleWriteBytes() == 0 {
		t.Error("repartition produced no shuffle I/O")
	}
}

func TestCoalesceNoShuffle(t *testing.T) {
	ctx := NewContext(4)
	defer ctx.Close()
	d := Parallelize(ctx, intRange(100), 10)
	c := Coalesce(d, 3)
	if c.NumPartitions() != 3 {
		t.Fatalf("partitions = %d", c.NumPartitions())
	}
	got, err := Collect(c)
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(got)
	if !reflect.DeepEqual(got, intRange(100)) {
		t.Error("coalesce lost or duplicated elements")
	}
	if ctx.Trace().ShuffleWriteBytes() != 0 {
		t.Error("coalesce must not shuffle")
	}
	// Widening or no-op requests return the dataset unchanged.
	if Coalesce(d, 20) != d || Coalesce(d, 0) != d {
		t.Error("coalesce should be a no-op when not narrowing")
	}
}

func TestDistinct(t *testing.T) {
	ctx := NewContext(4)
	defer ctx.Close()
	var vals []int
	for i := 0; i < 300; i++ {
		vals = append(vals, i%37)
	}
	got, err := Collect(Distinct(Parallelize(ctx, vals, 6), 4))
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(got)
	if !reflect.DeepEqual(got, intRange(37)) {
		t.Errorf("distinct = %v", got)
	}
}

func TestSample(t *testing.T) {
	ctx := NewContext(4)
	defer ctx.Close()
	d := Parallelize(ctx, intRange(10000), 8)
	n, err := Count(Sample(d, 0.25, 7))
	if err != nil {
		t.Fatal(err)
	}
	if n < 2200 || n > 2800 {
		t.Errorf("sampled %d of 10000 at p=0.25", n)
	}
	// Determinism.
	n2, err := Count(Sample(d, 0.25, 7))
	if err != nil {
		t.Fatal(err)
	}
	if n != n2 {
		t.Error("sampling not deterministic for a fixed seed")
	}
	// Edge probabilities clamp.
	z, _ := Count(Sample(d, -1, 1))
	if z != 0 {
		t.Errorf("p<=0 sampled %d", z)
	}
	all, _ := Count(Sample(d, 2, 1))
	if all != 10000 {
		t.Errorf("p>=1 sampled %d", all)
	}
}
