package rdd_test

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rdd"
)

// Example runs the canonical word count on the mini-RDD engine: a lazy
// FlatMap into key-value pairs, then a ReduceByKey over a real
// file-backed shuffle.
func Example() {
	ctx := rdd.NewContext(4)
	defer ctx.Close()

	lines := rdd.Parallelize(ctx, []string{
		"to be or not to be",
		"that is the question",
	}, 2)
	words := rdd.FlatMap(lines, func(l string) []rdd.Pair[string, int] {
		var out []rdd.Pair[string, int]
		for _, w := range strings.Fields(l) {
			out = append(out, rdd.KV(w, 1))
		}
		return out
	})
	counts, err := rdd.CountByKey(words)
	if err != nil {
		fmt.Println(err)
		return
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if counts[k] > 1 {
			fmt.Printf("%s=%d\n", k, counts[k])
		}
	}
	// Output:
	// be=2
	// to=2
}

// ExampleSortByKey shows the Terasort building block: range partition
// plus in-partition sort gives a globally ordered dataset.
func ExampleSortByKey() {
	ctx := rdd.NewContext(2)
	defer ctx.Close()
	data := []rdd.Pair[int, string]{
		rdd.KV(30, "c"), rdd.KV(10, "a"), rdd.KV(40, "d"), rdd.KV(20, "b"),
	}
	sorted, err := rdd.Collect(rdd.SortByKey(rdd.Parallelize(ctx, data, 2), 2))
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, kv := range sorted {
		fmt.Print(kv.Value)
	}
	fmt.Println()
	// Output:
	// abcd
}
