package rdd

import (
	"repro/internal/hdfs"
)

// HDFSTextFile reads a file stored in the mini-HDFS as a dataset of
// lines with **one partition per block** — the rule that determines the
// paper's map-task count M (122 GB / 128 MB = 973 for the whole
// genome). Line records straddling block boundaries are handled with
// the same split rule as TextFile. Reads prefer the replica of the node
// given by nodeFor (pass nil for no locality preference).
func HDFSTextFile(ctx *Context, fs *hdfs.FileSystem, name string, nodeFor func(part int) int) *Dataset[string] {
	info, err := fs.Stat(name)
	parts := 1
	if err == nil && info.NumBlocks() > 0 {
		parts = info.NumBlocks()
	}
	blockSize := int64(fs.Config().BlockSize)
	return InputFunc(ctx, "hdfs://"+name, parts, func(part int) ([]string, int64, error) {
		if err != nil {
			return nil, 0, err
		}
		preferred := -1
		if nodeFor != nil {
			preferred = nodeFor(part)
		}
		r, err := fs.OpenAt(name, preferred)
		if err != nil {
			return nil, 0, err
		}
		start := int64(part) * blockSize
		end := start + blockSize
		if size := int64(r.Size()); end > size {
			end = size
		}
		return readLineRange(r, start, end)
	})
}
