package rdd

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// InputFunc builds a dataset from an arbitrary partitioned source. The
// reader returns the rows of one partition plus the number of input
// bytes consumed, which is recorded in the context's trace (the
// "HDFS read" side of the I/O profile).
func InputFunc[T any](ctx *Context, name string, parts int, read func(part int) ([]T, int64, error)) *Dataset[T] {
	return newDataset(ctx, name, parts, func(part int) ([]T, error) {
		rows, n, err := read(part)
		if err != nil {
			return nil, err
		}
		ctx.trace.addInput(n)
		return rows, nil
	})
}

// TextFile reads a local file as a dataset of lines, split into parts
// byte ranges aligned to line boundaries — the same splitting rule an
// HDFS input format applies to blocks. Each partition read is traced as
// input I/O.
func TextFile(ctx *Context, path string, parts int) *Dataset[string] {
	if parts <= 0 {
		parts = maxInt(1, ctx.Parallelism)
	}
	return InputFunc(ctx, "textFile("+path+")", parts, func(part int) ([]string, int64, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, 0, err
		}
		defer f.Close()
		st, err := f.Stat()
		if err != nil {
			return nil, 0, err
		}
		size := st.Size()
		start := size * int64(part) / int64(parts)
		end := size * int64(part+1) / int64(parts)
		return readLineRange(f, start, end)
	})
}

// readLineRange returns the lines whose first byte lies in [start, end),
// the Hadoop input-split rule: a reader that does not own byte 0 seeks
// to start-1 and discards through the first newline, so a line beginning
// exactly at start is kept and a line straddling start belongs to the
// previous split (whose reader runs past its range to finish it).
func readLineRange(f io.ReadSeeker, start, end int64) ([]string, int64, error) {
	pos := start
	seekTo := start
	if start > 0 {
		seekTo = start - 1
	}
	if _, err := f.Seek(seekTo, io.SeekStart); err != nil {
		return nil, 0, err
	}
	// A modest read-ahead buffer keeps the overrun past `end` (needed to
	// finish the final straddling line) small, which matters for
	// locality accounting when the source is block-placed storage.
	r := bufio.NewReaderSize(f, 512)
	var consumed int64
	if start > 0 {
		skipped, err := r.ReadString('\n')
		pos = start - 1 + int64(len(skipped))
		if err == io.EOF {
			return nil, 0, nil // no newline before EOF: nothing owned here
		}
		if err != nil {
			return nil, 0, err
		}
	}
	var lines []string
	for pos < end {
		line, err := r.ReadString('\n')
		if len(line) > 0 {
			pos += int64(len(line))
			consumed += int64(len(line))
			lines = append(lines, trimNewline(line))
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, consumed, err
		}
	}
	return lines, consumed, nil
}

func trimNewline(s string) string {
	for len(s) > 0 && (s[len(s)-1] == '\n' || s[len(s)-1] == '\r') {
		s = s[:len(s)-1]
	}
	return s
}

// SaveAsTextFile writes the dataset as one part-file per partition
// under dir, like Spark's saveAsTextFile.
func SaveAsTextFile[T any](d *Dataset[T], dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return runParts(d.ctx, d.parts, func(p int) error {
		rows, err := d.partition(p)
		if err != nil {
			return err
		}
		f, err := os.Create(fmt.Sprintf("%s/part-%05d", dir, p))
		if err != nil {
			return err
		}
		w := bufio.NewWriter(f)
		for _, row := range rows {
			if _, err := fmt.Fprintln(w, row); err != nil {
				f.Close()
				return err
			}
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	})
}
