package rdd

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/spark"
	"repro/internal/units"
)

// runMiniShuffleJob executes a real shuffle job and returns its context.
func runMiniShuffleJob(t *testing.T) *Context {
	t.Helper()
	ctx := NewContext(4)
	t.Cleanup(func() { ctx.Close() })
	payload := strings.Repeat("g", 200)
	var rows []Pair[int, string]
	for i := 0; i < 5000; i++ {
		rows = append(rows, KV(i%64, payload))
	}
	in := InputFunc(ctx, "reads", 16, func(part int) ([]Pair[int, string], int64, error) {
		lo, hi := part*len(rows)/16, (part+1)*len(rows)/16
		var bytes int64
		for _, r := range rows[lo:hi] {
			bytes += int64(len(r.Value)) + 8
		}
		return rows[lo:hi], bytes, nil
	})
	if _, err := Count(GroupByKey(in, 8)); err != nil {
		t.Fatal(err)
	}
	return ctx
}

func TestTraceString(t *testing.T) {
	ctx := runMiniShuffleJob(t)
	s := ctx.Trace().String()
	for _, want := range []string{"input=", "shuffleWrite=", "reads, avg"} {
		if !strings.Contains(s, want) {
			t.Errorf("trace string %q missing %q", s, want)
		}
	}
}

// TestToSparkApp bridges a real mini-run into the performance simulator
// and the analytical model: profile at megabyte scale, predict at
// terabyte scale.
func TestToSparkApp(t *testing.T) {
	ctx := runMiniShuffleJob(t)
	tr := ctx.Trace()

	const scale = 1 << 20 // ~1 MB-scale run -> ~1 TB-scale app
	app, err := tr.ToSparkApp("scaled-groupby", ScaleParams{
		Scale:                scale,
		MapTasks:             2000,
		ReduceTasks:          4000,
		THDFSRead:            units.MBps(32.5),
		TShuffle:             units.MBps(60),
		MapComputePerByte:    time.Duration(20), // 20ns per byte
		ReduceComputePerByte: time.Duration(40),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(app.Stages) != 2 {
		t.Fatalf("stages = %d", len(app.Stages))
	}
	// Volume conservation through the bridge.
	wantShuffle := units.ByteSize(float64(tr.ShuffleWriteBytes()) * scale)
	gotW := app.Stages[0].TotalBytes(spark.OpShuffleWrite)
	if ratio := float64(gotW) / float64(wantShuffle); ratio < 0.99 || ratio > 1.01 {
		t.Errorf("scaled shuffle write = %v, want %v", gotW, wantShuffle)
	}

	// The scaled app runs on the simulator and shows the HDD/SSD shuffle
	// cliff, and the hand-free model tracks the simulator.
	for _, dev := range []disk.Device{disk.NewSSD(), disk.NewHDD()} {
		cfg := spark.DefaultTestbed(10, 16, dev, dev)
		res, err := spark.Run(cfg, app)
		if err != nil {
			t.Fatal(err)
		}
		if res.Total <= 0 {
			t.Fatal("zero runtime")
		}
	}
}

func TestToSparkAppErrors(t *testing.T) {
	tr := NewTrace()
	if _, err := tr.ToSparkApp("x", ScaleParams{Scale: 1, MapTasks: 1, ReduceTasks: 1}); err == nil {
		t.Error("empty trace accepted")
	}
	tr.addShuffleWrite(tr.registerShuffle("x", 1, 1), 100)
	if _, err := tr.ToSparkApp("x", ScaleParams{Scale: 0, MapTasks: 1, ReduceTasks: 1}); err == nil {
		t.Error("zero scale accepted")
	}
	if _, err := tr.ToSparkApp("x", ScaleParams{Scale: 1}); err == nil {
		t.Error("missing task counts accepted")
	}
}

// TestBridgePredictionConsistency: the scaled app's simulated HDD/SSD
// gap should agree with what the Doppio model predicts from the same
// trace-derived parameters.
func TestBridgePredictionConsistency(t *testing.T) {
	ctx := runMiniShuffleJob(t)
	app, err := ctx.Trace().ToSparkApp("bridge", ScaleParams{
		Scale:                1 << 18,
		MapTasks:             1000,
		ReduceTasks:          2000,
		THDFSRead:            units.MBps(32.5),
		TShuffle:             units.MBps(60),
		MapComputePerByte:    time.Duration(30),
		ReduceComputePerByte: time.Duration(60),
	})
	if err != nil {
		t.Fatal(err)
	}
	model := core.AppModel{Name: app.Name}
	for _, st := range app.Stages {
		sm := core.StageModel{Name: st.Name}
		for _, g := range st.Groups {
			gm := core.GroupModel{Name: g.Name, Count: g.Count}
			for _, op := range g.Ops {
				gm.Ops = append(gm.Ops, core.OpModel{
					Kind:         op.Kind,
					BytesPerTask: op.Bytes,
					ReqSize:      op.ReqSize,
					T:            op.StreamLimit,
					CoupledRate:  op.ComputeRate(),
				})
			}
			sm.Groups = append(sm.Groups, gm)
		}
		model.Stages = append(model.Stages, sm)
	}
	for _, dev := range []disk.Device{disk.NewSSD(), disk.NewHDD()} {
		cfg := spark.DefaultTestbed(10, 16, dev, dev)
		res, err := spark.Run(cfg, app)
		if err != nil {
			t.Fatal(err)
		}
		pred, err := model.Predict(core.PlatformFor(cfg), core.ModeDoppio)
		if err != nil {
			t.Fatal(err)
		}
		if e := core.ErrorRate(pred.Total, res.Total); e > 0.20 {
			t.Errorf("%s: uncalibrated model err %.0f%% (>20%%): model %v vs sim %v",
				dev.Name(), e*100, pred.Total, res.Total)
		}
	}
}

var _ = fmt.Sprint

func TestPerShuffleStats(t *testing.T) {
	ctx := NewContext(4)
	defer ctx.Close()
	var pairs []Pair[int, int]
	for i := 0; i < 1000; i++ {
		pairs = append(pairs, KV(i%20, i))
	}
	d := Parallelize(ctx, pairs, 8)
	// Two distinct shuffles: a groupByKey and a repartition.
	if _, err := Count(GroupByKey(d, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := Count(Repartition(d, 5)); err != nil {
		t.Fatal(err)
	}
	shuffles := ctx.Trace().Shuffles()
	if len(shuffles) != 2 {
		t.Fatalf("shuffles = %d, want 2", len(shuffles))
	}
	g := shuffles[0]
	if !strings.Contains(g.Name, "groupByKey") || g.Mappers != 8 || g.Reducers != 4 {
		t.Errorf("first shuffle = %+v", g)
	}
	if g.WriteBytes == 0 || g.WriteBytes != g.ReadBytes {
		t.Errorf("shuffle conservation per record: %+v", g)
	}
	if g.ReadRequests != int64(g.Mappers*g.Reducers) {
		t.Errorf("requests = %d, want M*R = %d", g.ReadRequests, g.Mappers*g.Reducers)
	}
	if g.AvgReadReqSize() == 0 {
		t.Error("zero request size")
	}
	r := shuffles[1]
	if !strings.Contains(r.Name, "repartition") || r.Reducers != 5 {
		t.Errorf("second shuffle = %+v", r)
	}
	// Aggregate counters equal the per-shuffle sums.
	if ctx.Trace().ShuffleWriteBytes() != g.WriteBytes+r.WriteBytes {
		t.Error("aggregate/per-shuffle mismatch")
	}
}
