package rdd

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func writeTempFile(t *testing.T, content string) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "input.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTextFileReadsAllLinesOnce(t *testing.T) {
	var lines []string
	for i := 0; i < 250; i++ {
		lines = append(lines, fmt.Sprintf("line-%04d with some padding text", i))
	}
	path := writeTempFile(t, strings.Join(lines, "\n")+"\n")

	for _, parts := range []int{1, 2, 3, 7, 16} {
		ctx := NewContext(4)
		d := TextFile(ctx, path, parts)
		got, err := Collect(d)
		if err != nil {
			t.Fatalf("parts=%d: %v", parts, err)
		}
		if !reflect.DeepEqual(got, lines) {
			t.Fatalf("parts=%d: %d lines, first mismatch around %v", parts, len(got), diffAt(got, lines))
		}
		ctx.Close()
	}
}

func diffAt(a, b []string) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return fmt.Sprintf("index %d: %q vs %q", i, a[i], b[i])
		}
	}
	return fmt.Sprintf("lengths %d vs %d", len(a), len(b))
}

func TestTextFileNoTrailingNewline(t *testing.T) {
	path := writeTempFile(t, "a\nb\nc") // no trailing newline
	ctx := NewContext(2)
	defer ctx.Close()
	got, err := Collect(TextFile(ctx, path, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("got %v", got)
	}
}

func TestTextFileTracesInputBytes(t *testing.T) {
	content := strings.Repeat("0123456789\n", 1000)
	path := writeTempFile(t, content)
	ctx := NewContext(4)
	defer ctx.Close()
	if _, err := Count(TextFile(ctx, path, 4)); err != nil {
		t.Fatal(err)
	}
	got := int64(ctx.Trace().InputBytes())
	if got != int64(len(content)) {
		t.Errorf("traced input = %d, want %d", got, len(content))
	}
}

func TestTextFileMissing(t *testing.T) {
	ctx := NewContext(1)
	defer ctx.Close()
	if _, err := Count(TextFile(ctx, "/nonexistent/file", 2)); err == nil {
		t.Error("missing file accepted")
	}
}

func TestSaveAsTextFile(t *testing.T) {
	ctx := NewContext(2)
	defer ctx.Close()
	d := Parallelize(ctx, []string{"x", "y", "z"}, 2)
	dir := filepath.Join(t.TempDir(), "out")
	if err := SaveAsTextFile(d, dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("part files = %d", len(entries))
	}
	var all []string
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, strings.Fields(string(b))...)
	}
	if !reflect.DeepEqual(all, []string{"x", "y", "z"}) {
		t.Errorf("saved = %v", all)
	}
}

func TestContextCloseRemovesShuffleDirs(t *testing.T) {
	ctx := NewContext(2)
	d := Parallelize(ctx, []Pair[int, int]{KV(1, 1), KV(2, 2)}, 2)
	if _, err := Count(GroupByKey(d, 2)); err != nil {
		t.Fatal(err)
	}
	ctx.mu.Lock()
	dirs := append([]string(nil), ctx.shuffleDirs...)
	ctx.mu.Unlock()
	if len(dirs) == 0 {
		t.Fatal("no shuffle dirs registered")
	}
	if err := ctx.Close(); err != nil {
		t.Fatal(err)
	}
	for _, dir := range dirs {
		if _, err := os.Stat(dir); !os.IsNotExist(err) {
			t.Errorf("dir %s survived Close", dir)
		}
	}
}
