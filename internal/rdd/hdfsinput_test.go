package rdd

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/hdfs"
	"repro/internal/units"
)

func miniHDFS(t *testing.T, blockSize units.ByteSize) *hdfs.FileSystem {
	t.Helper()
	fs, err := hdfs.New(hdfs.Config{BlockSize: blockSize, Replication: 2, Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestHDFSTextFileOnePartitionPerBlock(t *testing.T) {
	fs := miniHDFS(t, 256)
	var lines []string
	for i := 0; i < 120; i++ {
		lines = append(lines, fmt.Sprintf("record-%04d padded to be longer", i))
	}
	content := strings.Join(lines, "\n") + "\n"
	if err := fs.WriteFile("input.txt", []byte(content)); err != nil {
		t.Fatal(err)
	}
	info, _ := fs.Stat("input.txt")

	ctx := NewContext(4)
	defer ctx.Close()
	d := HDFSTextFile(ctx, fs, "input.txt", nil)
	if d.NumPartitions() != info.NumBlocks() {
		t.Fatalf("partitions = %d, blocks = %d: M must equal the block count",
			d.NumPartitions(), info.NumBlocks())
	}
	got, err := Collect(d)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, lines) {
		t.Fatalf("line mismatch: got %d lines, want %d (%s)", len(got), len(lines), diffAt(got, lines))
	}
	// Input bytes traced.
	if traced := int64(ctx.Trace().InputBytes()); traced != int64(len(content)) {
		t.Errorf("traced %d bytes, want %d", traced, len(content))
	}
}

func TestHDFSTextFileLocality(t *testing.T) {
	fs := miniHDFS(t, 16*units.KB)
	var sb strings.Builder
	for i := 0; i < 5000; i++ {
		fmt.Fprintf(&sb, "line %d with a bit of padding\n", i)
	}
	if err := fs.WriteFile("f", []byte(sb.String())); err != nil {
		t.Fatal(err)
	}
	info, _ := fs.Stat("f")

	ctx := NewContext(4)
	defer ctx.Close()
	// Schedule every partition on the node holding its first replica —
	// perfect locality, like Spark's preferredLocations.
	d := HDFSTextFile(ctx, fs, "f", func(part int) int {
		return info.Blocks[part].Replicas[0]
	})
	if _, err := Count(d); err != nil {
		t.Fatal(err)
	}
	local, remote := fs.LocalityStats()
	if remote > local/10 {
		t.Errorf("remote=%v local=%v; locality scheduling should keep reads local", remote, local)
	}
}

func TestHDFSTextFileMissing(t *testing.T) {
	fs := miniHDFS(t, 128)
	ctx := NewContext(1)
	defer ctx.Close()
	if _, err := Count(HDFSTextFile(ctx, fs, "ghost", nil)); err == nil {
		t.Error("missing HDFS file accepted")
	}
}

// TestHDFSWordCountEndToEnd exercises the full mini stack: HDFS blocks
// -> block-aligned partitions -> shuffle -> counts.
func TestHDFSWordCountEndToEnd(t *testing.T) {
	fs := miniHDFS(t, 64)
	text := strings.Repeat("alpha beta gamma\nbeta gamma\ngamma\n", 50)
	if err := fs.WriteFile("corpus", []byte(text)); err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(4)
	defer ctx.Close()
	words := FlatMap(HDFSTextFile(ctx, fs, "corpus", nil), func(l string) []Pair[string, int] {
		var out []Pair[string, int]
		for _, w := range strings.Fields(l) {
			out = append(out, KV(w, 1))
		}
		return out
	})
	counts, err := CountByKey(words)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"alpha": 50, "beta": 100, "gamma": 150}
	if !reflect.DeepEqual(counts, want) {
		t.Errorf("counts = %v", counts)
	}
}
