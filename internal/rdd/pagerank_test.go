package rdd

import (
	"math"
	"testing"
)

// pageRank runs the classic iterative algorithm on the engine: ranks
// join the adjacency list, contributions shuffle by target, and
// ReduceByKey folds them — the GraphX structure the paper's PageRank
// workload models, executed for real.
func pageRank(ctx *Context, edges []Pair[int, []int], iters, parts int) (map[int]float64, error) {
	links := Parallelize(ctx, edges, parts).Cache()
	ranks := Map(links, func(e Pair[int, []int]) Pair[int, float64] {
		return KV(e.Key, 1.0)
	})
	for i := 0; i < iters; i++ {
		joined := Join(links, ranks, parts)
		contribs := FlatMap(joined, func(j Pair[int, Tuple2[[]int, float64]]) []Pair[int, float64] {
			outs := j.Value.A
			rank := j.Value.B
			var cs []Pair[int, float64]
			for _, dst := range outs {
				cs = append(cs, KV(dst, rank/float64(len(outs))))
			}
			return cs
		})
		// Pages with no inbound links would vanish from the ranks (the
		// classic naive-PageRank pitfall): union a zero contribution for
		// every page so the fixed point keeps them at the 0.15 floor.
		zero := Map(links, func(e Pair[int, []int]) Pair[int, float64] {
			return KV(e.Key, 0.0)
		})
		summed := ReduceByKey(Union(contribs, zero), func(a, b float64) float64 { return a + b }, parts)
		ranks = Map(summed, func(kv Pair[int, float64]) Pair[int, float64] {
			return KV(kv.Key, 0.15+0.85*kv.Value)
		})
	}
	rows, err := Collect(ranks)
	if err != nil {
		return nil, err
	}
	out := map[int]float64{}
	for _, kv := range rows {
		out[kv.Key] = kv.Value
	}
	return out, nil
}

func TestPageRankOnEngine(t *testing.T) {
	ctx := NewContext(4)
	defer ctx.Close()
	// The classic 4-page example: 1 and 2 link to each other; 3 links to
	// 1 and 2; 4 links to 3.
	edges := []Pair[int, []int]{
		KV(1, []int{2}),
		KV(2, []int{1}),
		KV(3, []int{1, 2}),
		KV(4, []int{3}),
	}
	ranks, err := pageRank(ctx, edges, 25, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Pages 1 and 2 are symmetric sinks of the link mass.
	if math.Abs(ranks[1]-ranks[2]) > 1e-6 {
		t.Errorf("symmetric pages diverge: %v vs %v", ranks[1], ranks[2])
	}
	if !(ranks[1] > ranks[3] && ranks[3] > ranks[4]) {
		t.Errorf("rank ordering wrong: %v", ranks)
	}
	// Fixed point check: 4 receives nothing -> 0.15; 3 only from 4.
	if math.Abs(ranks[4]-0.15) > 1e-6 {
		t.Errorf("rank(4) = %v, want 0.15", ranks[4])
	}
	want3 := 0.15 + 0.85*(0.15)
	if math.Abs(ranks[3]-want3) > 1e-3 {
		t.Errorf("rank(3) = %v, want ≈%v", ranks[3], want3)
	}
	// Every iteration shuffles twice (join + reduce): the trace must
	// show substantial shuffle traffic, the behaviour the paper's
	// PageRank workload models at 420 GB scale.
	if ctx.Trace().ShuffleReadRequests() == 0 {
		t.Error("iterative pagerank produced no shuffle reads")
	}
}
