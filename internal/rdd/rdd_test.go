package rdd

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func intRange(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestParallelizeCollect(t *testing.T) {
	ctx := NewContext(4)
	defer ctx.Close()
	d := Parallelize(ctx, intRange(100), 7)
	if d.NumPartitions() != 7 {
		t.Fatalf("partitions = %d", d.NumPartitions())
	}
	got, err := Collect(d)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, intRange(100)) {
		t.Errorf("collect mismatch: %v", got[:10])
	}
}

func TestParallelizeIsImmutable(t *testing.T) {
	ctx := NewContext(2)
	defer ctx.Close()
	src := []int{1, 2, 3}
	d := Parallelize(ctx, src, 2)
	src[0] = 99
	got, err := Collect(d)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Error("dataset observed caller mutation")
	}
}

func TestMapFilterFlatMap(t *testing.T) {
	ctx := NewContext(4)
	defer ctx.Close()
	d := Parallelize(ctx, intRange(10), 3)
	squares := Map(d, func(x int) int { return x * x })
	evens := Filter(squares, func(x int) bool { return x%2 == 0 })
	got, err := Collect(evens)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 4, 16, 36, 64}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}

	doubled, err := Collect(FlatMap(d, func(x int) []int { return []int{x, x} }))
	if err != nil {
		t.Fatal(err)
	}
	if len(doubled) != 20 {
		t.Errorf("flatMap len = %d", len(doubled))
	}
}

func TestCountReduceTake(t *testing.T) {
	ctx := NewContext(4)
	defer ctx.Close()
	d := Parallelize(ctx, intRange(1000), 13)
	n, err := Count(d)
	if err != nil || n != 1000 {
		t.Fatalf("count = %d, %v", n, err)
	}
	sum, err := Reduce(d, func(a, b int) int { return a + b })
	if err != nil || sum != 999*1000/2 {
		t.Fatalf("sum = %d, %v", sum, err)
	}
	head, err := Take(d, 5)
	if err != nil || !reflect.DeepEqual(head, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("take = %v, %v", head, err)
	}
	empty := Filter(d, func(int) bool { return false })
	if _, err := Reduce(empty, func(a, b int) int { return a + b }); err == nil {
		t.Error("reduce of empty dataset should error")
	}
}

func TestUnion(t *testing.T) {
	ctx := NewContext(2)
	defer ctx.Close()
	a := Parallelize(ctx, []int{1, 2}, 2)
	b := Parallelize(ctx, []int{3, 4, 5}, 3)
	u := Union(a, b)
	if u.NumPartitions() != 5 {
		t.Fatalf("union partitions = %d", u.NumPartitions())
	}
	got, err := Collect(u)
	if err != nil || !reflect.DeepEqual(got, []int{1, 2, 3, 4, 5}) {
		t.Fatalf("union = %v, %v", got, err)
	}
}

// TestCachingStopsRecomputation is the paper's Section III-B2 trade-off
// in miniature: without Cache every action re-runs the lineage; with it
// the second action is free.
func TestCachingStopsRecomputation(t *testing.T) {
	ctx := NewContext(4)
	defer ctx.Close()
	d := Map(Parallelize(ctx, intRange(100), 4), func(x int) int { return x + 1 })
	if _, err := Count(d); err != nil {
		t.Fatal(err)
	}
	if _, err := Count(d); err != nil {
		t.Fatal(err)
	}
	if got := d.Computations(); got != 8 {
		t.Errorf("uncached computations = %d, want 8 (4 parts x 2 actions)", got)
	}

	c := Map(Parallelize(ctx, intRange(100), 4), func(x int) int { return x + 1 }).Cache()
	if _, err := Count(c); err != nil {
		t.Fatal(err)
	}
	if _, err := Count(c); err != nil {
		t.Fatal(err)
	}
	if got := c.Computations(); got != 4 {
		t.Errorf("cached computations = %d, want 4", got)
	}
	c.Uncache()
	if _, err := Count(c); err != nil {
		t.Fatal(err)
	}
	if got := c.Computations(); got != 8 {
		t.Errorf("after Uncache computations = %d, want 8", got)
	}
}

func TestGroupByKey(t *testing.T) {
	ctx := NewContext(4)
	defer ctx.Close()
	var pairs []Pair[string, int]
	for i := 0; i < 100; i++ {
		pairs = append(pairs, KV(fmt.Sprintf("k%d", i%7), i))
	}
	d := Parallelize(ctx, pairs, 5)
	grouped, err := Collect(GroupByKey(d, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(grouped) != 7 {
		t.Fatalf("groups = %d, want 7", len(grouped))
	}
	total := 0
	for _, g := range grouped {
		total += len(g.Value)
		for _, v := range g.Value {
			if fmt.Sprintf("k%d", v%7) != g.Key {
				t.Errorf("value %d landed under key %s", v, g.Key)
			}
		}
	}
	if total != 100 {
		t.Errorf("total grouped values = %d", total)
	}
}

func TestReduceByKeyMatchesGroupByKey(t *testing.T) {
	ctx := NewContext(4)
	defer ctx.Close()
	var pairs []Pair[int, int]
	for i := 0; i < 500; i++ {
		pairs = append(pairs, KV(i%13, 1))
	}
	d := Parallelize(ctx, pairs, 8)
	counts, err := CountByKey(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 13 {
		t.Fatalf("keys = %d", len(counts))
	}
	for k, c := range counts {
		want := 500 / 13
		if k < 500%13 {
			want++
		}
		if c != want {
			t.Errorf("key %d count = %d, want %d", k, c, want)
		}
	}
}

// TestReduceByKeyShufflesLessThanGroupByKey verifies map-side combining
// reduces shuffle volume — the optimisation the paper's shuffle analysis
// motivates.
func TestReduceByKeyShufflesLessThanGroupByKey(t *testing.T) {
	mk := func() []Pair[int, int] {
		var pairs []Pair[int, int]
		for i := 0; i < 2000; i++ {
			pairs = append(pairs, KV(i%5, i))
		}
		return pairs
	}
	ctxG := NewContext(4)
	defer ctxG.Close()
	if _, err := Collect(GroupByKey(Parallelize(ctxG, mk(), 8), 4)); err != nil {
		t.Fatal(err)
	}
	ctxR := NewContext(4)
	defer ctxR.Close()
	if _, err := Collect(ReduceByKey(Parallelize(ctxR, mk(), 8), func(a, b int) int { return a + b }, 4)); err != nil {
		t.Fatal(err)
	}
	g := ctxG.Trace().ShuffleWriteBytes()
	r := ctxR.Trace().ShuffleWriteBytes()
	if r >= g/4 {
		t.Errorf("reduceByKey shuffled %v vs groupByKey %v; combining should shrink it", r, g)
	}
}

func TestSortByKeyGloballySorts(t *testing.T) {
	ctx := NewContext(4)
	defer ctx.Close()
	var pairs []Pair[int, string]
	for i := 0; i < 997; i++ {
		k := (i * 7919) % 1000 // scrambled
		pairs = append(pairs, KV(k, fmt.Sprint(k)))
	}
	d := Parallelize(ctx, pairs, 6)
	got, err := Collect(SortByKey(d, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 997 {
		t.Fatalf("len = %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Key < got[i-1].Key {
			t.Fatalf("not sorted at %d: %d < %d", i, got[i].Key, got[i-1].Key)
		}
	}
}

func TestJoin(t *testing.T) {
	ctx := NewContext(4)
	defer ctx.Close()
	users := Parallelize(ctx, []Pair[int, string]{
		KV(1, "ada"), KV(2, "grace"), KV(3, "edsger"),
	}, 2)
	scores := Parallelize(ctx, []Pair[int, int]{
		KV(1, 10), KV(1, 20), KV(3, 30), KV(4, 40),
	}, 2)
	joined, err := Collect(Join(users, scores, 3))
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(joined, func(i, j int) bool {
		if joined[i].Key != joined[j].Key {
			return joined[i].Key < joined[j].Key
		}
		return joined[i].Value.B < joined[j].Value.B
	})
	want := []Pair[int, Tuple2[string, int]]{
		KV(1, Tuple2[string, int]{"ada", 10}),
		KV(1, Tuple2[string, int]{"ada", 20}),
		KV(3, Tuple2[string, int]{"edsger", 30}),
	}
	if !reflect.DeepEqual(joined, want) {
		t.Errorf("join = %v", joined)
	}
}

func TestKeysValues(t *testing.T) {
	ctx := NewContext(2)
	defer ctx.Close()
	d := Parallelize(ctx, []Pair[string, int]{KV("a", 1), KV("b", 2)}, 1)
	ks, err := Collect(Keys(d))
	if err != nil || !reflect.DeepEqual(ks, []string{"a", "b"}) {
		t.Errorf("keys = %v, %v", ks, err)
	}
	vs, err := Collect(Values(d))
	if err != nil || !reflect.DeepEqual(vs, []int{1, 2}) {
		t.Errorf("values = %v, %v", vs, err)
	}
}

// TestShuffleRequestSizeMatchesMxRLayout checks the engine's shuffle
// reproduces the paper's request-size arithmetic: reducer segment reads
// average reducerBytes/M.
func TestShuffleRequestSizeMatchesMxRLayout(t *testing.T) {
	const mappers, reducers = 16, 4
	ctx := NewContext(4)
	defer ctx.Close()
	var pairs []Pair[int, string]
	payload := strings.Repeat("x", 100)
	for i := 0; i < 8000; i++ {
		pairs = append(pairs, KV(i, payload))
	}
	d := Parallelize(ctx, pairs, mappers)
	if _, err := Count(GroupByKey(d, reducers)); err != nil {
		t.Fatal(err)
	}
	tr := ctx.Trace()
	if got, want := tr.ShuffleReadRequests(), int64(mappers*reducers); got != want {
		t.Fatalf("segment reads = %d, want M*R = %d", got, want)
	}
	wrote, read := tr.ShuffleWriteBytes(), tr.ShuffleReadBytes()
	if wrote != read {
		t.Errorf("shuffle conservation broken: wrote %v, read %v", wrote, read)
	}
	wantReq := float64(read) / float64(mappers*reducers)
	if got := float64(tr.AvgShuffleReadReqSize()); got < wantReq*0.99 || got > wantReq*1.01 {
		t.Errorf("avg request size %v, want %.0f", tr.AvgShuffleReadReqSize(), wantReq)
	}
}

// TestShuffleConservationProperty: any dataset grouped by any key
// function preserves every element.
func TestShuffleConservationProperty(t *testing.T) {
	f := func(vals []uint8, mod uint8) bool {
		if len(vals) == 0 {
			return true
		}
		m := int(mod%7) + 1
		ctx := NewContext(2)
		defer ctx.Close()
		var pairs []Pair[int, uint8]
		for _, v := range vals {
			pairs = append(pairs, KV(int(v)%m, v))
		}
		d := Parallelize(ctx, pairs, 3)
		grouped, err := Collect(GroupByKey(d, 2))
		if err != nil {
			return false
		}
		n := 0
		for _, g := range grouped {
			n += len(g.Value)
		}
		return n == len(vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestWordCount(t *testing.T) {
	// The canonical example end-to-end.
	ctx := NewContext(4)
	defer ctx.Close()
	lines := []string{
		"the quick brown fox",
		"the lazy dog",
		"the quick dog",
	}
	words := FlatMap(Parallelize(ctx, lines, 2), func(l string) []Pair[string, int] {
		var out []Pair[string, int]
		for _, w := range strings.Fields(l) {
			out = append(out, KV(w, 1))
		}
		return out
	})
	counts, err := CountByKey(words)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"the": 3, "quick": 2, "dog": 2, "brown": 1, "fox": 1, "lazy": 1}
	if !reflect.DeepEqual(counts, want) {
		t.Errorf("wordcount = %v", counts)
	}
}

func TestPartitionOutOfRange(t *testing.T) {
	ctx := NewContext(1)
	defer ctx.Close()
	d := Parallelize(ctx, []int{1}, 1)
	if _, err := d.partition(5); err == nil {
		t.Error("out-of-range partition accepted")
	}
}
