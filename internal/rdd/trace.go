package rdd

import (
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/spark"
	"repro/internal/units"
)

// Trace accumulates the logical I/O a context performs: input bytes,
// shuffle write/read volumes and the shuffle read request sizes. It is
// the mini-engine's equivalent of the Spark event log + iostat, and the
// bridge that lets a small real computation parameterise the cluster
// simulator and the Doppio model.
type Trace struct {
	mu                  sync.Mutex
	inputBytes          int64
	shuffleWriteBytes   int64
	shuffleReadBytes    int64
	shuffleReadRequests int64
	shuffles            []ShuffleStat
}

// ShuffleStat records one shuffle dependency's geometry and volumes —
// the per-stage detail a multi-shuffle job needs to parameterise one
// simulator stage per shuffle.
type ShuffleStat struct {
	// Name labels the operation that introduced the shuffle.
	Name string
	// Mappers and Reducers give the M×R layout.
	Mappers, Reducers int
	// WriteBytes is the materialised map-output volume.
	WriteBytes units.ByteSize
	// ReadBytes and ReadRequests accumulate as reducers pull segments.
	ReadBytes    units.ByteSize
	ReadRequests int64
}

// AvgReadReqSize returns the mean segment read size of this shuffle.
func (s ShuffleStat) AvgReadReqSize() units.ByteSize {
	if s.ReadRequests == 0 {
		return 0
	}
	return s.ReadBytes / units.ByteSize(s.ReadRequests)
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

func (t *Trace) addInput(n int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.inputBytes += n
}

// registerShuffle adds a per-shuffle record and returns its id.
func (t *Trace) registerShuffle(name string, mappers, reducers int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.shuffles = append(t.shuffles, ShuffleStat{Name: name, Mappers: mappers, Reducers: reducers})
	return len(t.shuffles) - 1
}

func (t *Trace) addShuffleWrite(id int, n int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.shuffleWriteBytes += n
	if id >= 0 && id < len(t.shuffles) {
		t.shuffles[id].WriteBytes += units.ByteSize(n)
	}
}

func (t *Trace) addShuffleRead(id int, n int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.shuffleReadBytes += n
	t.shuffleReadRequests++
	if id >= 0 && id < len(t.shuffles) {
		t.shuffles[id].ReadBytes += units.ByteSize(n)
		t.shuffles[id].ReadRequests++
	}
}

// Shuffles returns a snapshot of the per-shuffle records.
func (t *Trace) Shuffles() []ShuffleStat {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]ShuffleStat, len(t.shuffles))
	copy(out, t.shuffles)
	return out
}

// InputBytes returns the bytes read from input sources.
func (t *Trace) InputBytes() units.ByteSize {
	t.mu.Lock()
	defer t.mu.Unlock()
	return units.ByteSize(t.inputBytes)
}

// ShuffleWriteBytes returns the bytes written to shuffle files.
func (t *Trace) ShuffleWriteBytes() units.ByteSize {
	t.mu.Lock()
	defer t.mu.Unlock()
	return units.ByteSize(t.shuffleWriteBytes)
}

// ShuffleReadBytes returns the bytes read back from shuffle files.
func (t *Trace) ShuffleReadBytes() units.ByteSize {
	t.mu.Lock()
	defer t.mu.Unlock()
	return units.ByteSize(t.shuffleReadBytes)
}

// ShuffleReadRequests returns the number of segment reads issued.
func (t *Trace) ShuffleReadRequests() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.shuffleReadRequests
}

// AvgShuffleReadReqSize returns the mean segment read size — the
// request-size operating point the Doppio model prices.
func (t *Trace) AvgShuffleReadReqSize() units.ByteSize {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.shuffleReadRequests == 0 {
		return 0
	}
	return units.ByteSize(t.shuffleReadBytes / t.shuffleReadRequests)
}

// String summarises the trace.
func (t *Trace) String() string {
	return fmt.Sprintf("input=%v shuffleWrite=%v shuffleRead=%v (%d reads, avg %v)",
		t.InputBytes(), t.ShuffleWriteBytes(), t.ShuffleReadBytes(),
		t.ShuffleReadRequests(), t.AvgShuffleReadReqSize())
}

// addShuffleDir registers a temp dir for cleanup.
func (c *Context) addShuffleDir(dir string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.shuffleDirs = append(c.shuffleDirs, dir)
}

// Close removes the context's shuffle spill files.
func (c *Context) Close() error {
	c.mu.Lock()
	dirs := c.shuffleDirs
	c.shuffleDirs = nil
	c.mu.Unlock()
	var first error
	for _, d := range dirs {
		if err := os.RemoveAll(d); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ScaleParams controls how a trace is turned into a simulator workload.
type ScaleParams struct {
	// Scale multiplies every traced volume (run 1 GB for real, model
	// 1 TB).
	Scale float64
	// MapTasks and ReduceTasks are the task counts of the scaled
	// application; zero keeps the traced partition counts.
	MapTasks, ReduceTasks int
	// THDFSRead, TShuffle are the per-core throughputs of the target
	// cluster (measured there, or the paper's 32.5 / 60 MB/s).
	THDFSRead, TShuffle units.Rate
	// MapComputePerByte and ReduceComputePerByte convert data volume
	// into CPU time on the target cluster (seconds per byte, measured
	// from a profiling run of the real job).
	MapComputePerByte, ReduceComputePerByte time.Duration
}

// ToSparkApp converts the traced I/O pattern into a two-stage
// spark.App at the requested scale: a map stage reading the input and
// writing the shuffle, and a reduce stage reading the shuffle with the
// request size implied by the scaled M×R layout. This is the
// "profile small, predict big" workflow the paper applies to GATK4.
func (t *Trace) ToSparkApp(name string, p ScaleParams) (spark.App, error) {
	if p.Scale <= 0 {
		return spark.App{}, fmt.Errorf("rdd: scale must be positive")
	}
	if t.ShuffleWriteBytes() == 0 {
		return spark.App{}, fmt.Errorf("rdd: trace has no shuffle to scale")
	}
	mapTasks := p.MapTasks
	redTasks := p.ReduceTasks
	if mapTasks <= 0 || redTasks <= 0 {
		return spark.App{}, fmt.Errorf("rdd: MapTasks and ReduceTasks required")
	}
	input := units.ByteSize(float64(t.InputBytes()) * p.Scale)
	shufW := units.ByteSize(float64(t.ShuffleWriteBytes()) * p.Scale)
	shufR := units.ByteSize(float64(t.ShuffleReadBytes()) * p.Scale)

	inPerMap := input / units.ByteSize(mapTasks)
	wPerMap := shufW / units.ByteSize(mapTasks)
	rPerRed := shufR / units.ByteSize(redTasks)
	reqSize := spark.ShuffleReadReqSize(rPerRed, mapTasks)

	mapCompute := time.Duration(float64(p.MapComputePerByte) * float64(inPerMap))
	redCompute := time.Duration(float64(p.ReduceComputePerByte) * float64(rPerRed))

	// Split the map computation between the read (parsing) and the spill
	// write (partition + serialise), both interleaved at request
	// granularity as Spark executes them.
	app := spark.App{Name: name, Stages: []spark.Stage{
		{
			Name: "map",
			Groups: []spark.TaskGroup{{
				Name:  "map",
				Count: mapTasks,
				Ops: []spark.Op{
					spark.IOC(spark.OpHDFSRead, inPerMap, 0, p.THDFSRead, mapCompute/2),
					spark.IOC(spark.OpShuffleWrite, wPerMap, wPerMap, p.TShuffle, mapCompute/2),
				},
			}},
		},
		{
			Name: "reduce",
			Groups: []spark.TaskGroup{{
				Name:  "reduce",
				Count: redTasks,
				Ops: []spark.Op{
					spark.IOC(spark.OpShuffleRead, rPerRed, reqSize, p.TShuffle, redCompute),
				},
			}},
		},
	}}
	return app, app.Validate()
}
