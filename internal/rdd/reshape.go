package rdd

import (
	"math/rand"
)

// Repartition redistributes the dataset over the given partition count
// through a full shuffle — the paper names repartition() alongside
// groupByKey() as the shuffle-heavy operations whose I/O its model
// prices (Section III-B1). Elements are spread round-robin by index, so
// the result is balanced regardless of input skew.
func Repartition[T any](d *Dataset[T], parts int) *Dataset[T] {
	if parts <= 0 {
		parts = d.parts
	}
	// Key each element by its local index (offset per source partition
	// so boundaries do not align), shuffle round-robin, drop the key.
	keyed := MapPartitions(d, func(part int, rows []T) ([]Pair[int, T], error) {
		out := make([]Pair[int, T], len(rows))
		for i, v := range rows {
			out[i] = KV(part+i, v)
		}
		return out, nil
	})
	red := shuffled(keyed, d.name+".repartition", parts, func(k, r int) int {
		return k % r
	})
	return Map(red, func(kv Pair[int, T]) T { return kv.Value })
}

// Coalesce reduces the partition count *without* a shuffle by folding
// existing partitions together — Spark's cheap narrow alternative to
// Repartition.
func Coalesce[T any](d *Dataset[T], parts int) *Dataset[T] {
	if parts <= 0 || parts >= d.parts {
		return d
	}
	return newDataset(d.ctx, d.name+".coalesce", parts, func(part int) ([]T, error) {
		var out []T
		for p := part; p < d.parts; p += parts {
			rows, err := d.partition(p)
			if err != nil {
				return nil, err
			}
			out = append(out, rows...)
		}
		return out, nil
	})
}

// Distinct removes duplicate elements via a shuffle on the element
// itself.
func Distinct[T comparable](d *Dataset[T], parts int) *Dataset[T] {
	keyed := Map(d, func(v T) Pair[T, struct{}] { return KV(v, struct{}{}) })
	red := shuffled(keyed, d.name+".distinct", parts, hashPartitioner[T])
	return MapPartitions(red, func(_ int, rows []Pair[T, struct{}]) ([]T, error) {
		seen := map[T]struct{}{}
		var out []T
		for _, kv := range rows {
			if _, dup := seen[kv.Key]; dup {
				continue
			}
			seen[kv.Key] = struct{}{}
			out = append(out, kv.Key)
		}
		return out, nil
	})
}

// Sample keeps each element with probability p (without replacement),
// deterministically per (seed, partition).
func Sample[T any](d *Dataset[T], p float64, seed int64) *Dataset[T] {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return MapPartitions(d, func(part int, rows []T) ([]T, error) {
		rng := rand.New(rand.NewSource(seed + int64(part)*1_000_003))
		var out []T
		for _, v := range rows {
			if rng.Float64() < p {
				out = append(out, v)
			}
		}
		return out, nil
	})
}
