package rdd

import (
	"bytes"
	"cmp"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Pair is a key-value record, the currency of shuffle operations.
type Pair[K comparable, V any] struct {
	Key   K
	Value V
}

// KV builds a pair.
func KV[K comparable, V any](k K, v V) Pair[K, V] { return Pair[K, V]{Key: k, Value: v} }

// hashKey produces a deterministic hash for any comparable key.
func hashKey[K comparable](k K) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%v", k)
	return h.Sum64()
}

// hashPartitioner assigns keys to reducers by hash, Spark's default.
func hashPartitioner[K comparable](k K, reducers int) int {
	return int(hashKey(k) % uint64(reducers))
}

// shuffle holds the materialised map outputs of one shuffle dependency:
// one file per mapper, containing one gob-encoded segment per reducer —
// the layout of Spark's sort-based shuffle, and the reason reducers
// issue M small reads each (paper Section III-C2).
type shuffle struct {
	dir      string
	id       int // index into the trace's per-shuffle records
	mappers  int
	reducers int
	mu       sync.Mutex
	// segLen[m][r] is the byte length of mapper m's segment for reducer
	// r (the in-memory equivalent of Spark's .index files).
	segLen [][]int64
}

func (s *shuffle) mapFile(m int) string {
	return filepath.Join(s.dir, fmt.Sprintf("map-%05d.data", m))
}

// writeShuffle eagerly materialises the map side of a shuffle.
func writeShuffle[K comparable, V any](d *Dataset[Pair[K, V]], name string, reducers int,
	part func(K, int) int) (*shuffle, error) {
	dir, err := os.MkdirTemp("", "rdd-shuffle-")
	if err != nil {
		return nil, fmt.Errorf("rdd: shuffle dir: %w", err)
	}
	d.ctx.addShuffleDir(dir)
	sh := &shuffle{
		dir: dir, id: d.ctx.trace.registerShuffle(name, d.parts, reducers),
		mappers: d.parts, reducers: reducers,
		segLen: make([][]int64, d.parts),
	}
	err = runParts(d.ctx, d.parts, func(m int) error {
		rows, err := d.partition(m)
		if err != nil {
			return err
		}
		segs := make([][]Pair[K, V], reducers)
		for _, kv := range rows {
			r := part(kv.Key, reducers)
			if r < 0 || r >= reducers {
				return fmt.Errorf("rdd: partitioner sent key %v to %d of %d", kv.Key, r, reducers)
			}
			segs[r] = append(segs[r], kv)
		}
		f, err := os.Create(sh.mapFile(m))
		if err != nil {
			return err
		}
		defer f.Close()
		lens := make([]int64, reducers)
		var written int64
		for r, seg := range segs {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(seg); err != nil {
				return fmt.Errorf("rdd: encoding shuffle segment: %w", err)
			}
			n, err := f.Write(buf.Bytes())
			if err != nil {
				return err
			}
			lens[r] = int64(n)
			written += int64(n)
		}
		sh.setLens(m, lens)
		d.ctx.trace.addShuffleWrite(sh.id, written)
		return f.Close()
	})
	if err != nil {
		return nil, err
	}
	return sh, nil
}

func (s *shuffle) setLens(m int, lens []int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.segLen[m] = lens
}

// readSegment performs the positioned read of one (mapper, reducer)
// segment — a real small-block file read.
func readSegment[K comparable, V any](ctx *Context, s *shuffle, m, r int) ([]Pair[K, V], error) {
	length := s.segLen[m][r]
	var off int64
	for i := 0; i < r; i++ {
		off += s.segLen[m][i]
	}
	f, err := os.Open(s.mapFile(m))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, length)
	if _, err := f.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("rdd: shuffle read map=%d red=%d: %w", m, r, err)
	}
	ctx.trace.addShuffleRead(s.id, length)
	var seg []Pair[K, V]
	if err := gob.NewDecoder(bytes.NewReader(buf)).Decode(&seg); err != nil {
		return nil, fmt.Errorf("rdd: decoding shuffle segment: %w", err)
	}
	return seg, nil
}

// shuffled builds the reduce-side dataset over a lazily-written shuffle.
func shuffled[K comparable, V any](d *Dataset[Pair[K, V]], name string, reducers int,
	part func(K, int) int) *Dataset[Pair[K, V]] {
	if reducers <= 0 {
		reducers = d.parts
	}
	var once sync.Once
	var sh *shuffle
	var shErr error
	ensure := func() (*shuffle, error) {
		once.Do(func() { sh, shErr = writeShuffle(d, name, reducers, part) })
		return sh, shErr
	}
	ctx := d.ctx
	return newDataset(ctx, name, reducers, func(r int) ([]Pair[K, V], error) {
		s, err := ensure()
		if err != nil {
			return nil, err
		}
		var out []Pair[K, V]
		for m := 0; m < s.mappers; m++ {
			seg, err := readSegment[K, V](ctx, s, m, r)
			if err != nil {
				return nil, err
			}
			out = append(out, seg...)
		}
		return out, nil
	})
}

// GroupByKey shuffles and groups values by key, Spark's groupByKey
// (paper Fig. 4).
func GroupByKey[K comparable, V any](d *Dataset[Pair[K, V]], reducers int) *Dataset[Pair[K, []V]] {
	red := shuffled(d, d.name+".groupByKey", reducers, hashPartitioner[K])
	return MapPartitions(red, func(_ int, rows []Pair[K, V]) ([]Pair[K, []V], error) {
		groups := map[K][]V{}
		var order []K
		for _, kv := range rows {
			if _, seen := groups[kv.Key]; !seen {
				order = append(order, kv.Key)
			}
			groups[kv.Key] = append(groups[kv.Key], kv.Value)
		}
		out := make([]Pair[K, []V], 0, len(order))
		for _, k := range order {
			out = append(out, KV(k, groups[k]))
		}
		return out, nil
	})
}

// ReduceByKey shuffles with map-side combining (Spark's preferred
// aggregation: far less shuffle volume than GroupByKey).
func ReduceByKey[K comparable, V any](d *Dataset[Pair[K, V]], f func(a, b V) V, reducers int) *Dataset[Pair[K, V]] {
	combined := MapPartitions(d, func(_ int, rows []Pair[K, V]) ([]Pair[K, V], error) {
		acc := map[K]V{}
		var order []K
		for _, kv := range rows {
			if cur, seen := acc[kv.Key]; seen {
				acc[kv.Key] = f(cur, kv.Value)
			} else {
				order = append(order, kv.Key)
				acc[kv.Key] = kv.Value
			}
		}
		out := make([]Pair[K, V], 0, len(order))
		for _, k := range order {
			out = append(out, KV(k, acc[k]))
		}
		return out, nil
	})
	red := shuffled(combined, d.name+".reduceByKey", reducers, hashPartitioner[K])
	return MapPartitions(red, func(_ int, rows []Pair[K, V]) ([]Pair[K, V], error) {
		acc := map[K]V{}
		var order []K
		for _, kv := range rows {
			if cur, seen := acc[kv.Key]; seen {
				acc[kv.Key] = f(cur, kv.Value)
			} else {
				order = append(order, kv.Key)
				acc[kv.Key] = kv.Value
			}
		}
		out := make([]Pair[K, V], 0, len(order))
		for _, k := range order {
			out = append(out, KV(k, acc[k]))
		}
		return out, nil
	})
}

// CountByKey returns the per-key record counts.
func CountByKey[K comparable, V any](d *Dataset[Pair[K, V]]) (map[K]int, error) {
	counted := ReduceByKey(Map(d, func(kv Pair[K, V]) Pair[K, int] {
		return KV(kv.Key, 1)
	}), func(a, b int) int { return a + b }, d.parts)
	rows, err := Collect(counted)
	if err != nil {
		return nil, err
	}
	out := make(map[K]int, len(rows))
	for _, kv := range rows {
		out[kv.Key] = kv.Value
	}
	return out, nil
}

// SortByKey range-partitions by sampled split points and sorts within
// each partition — Terasort's structure (paper Section V-B5).
func SortByKey[K cmp.Ordered, V any](d *Dataset[Pair[K, V]], reducers int) *Dataset[Pair[K, V]] {
	if reducers <= 0 {
		reducers = d.parts
	}
	// Sample split points from the first partition (Spark samples all;
	// one is enough for the mini engine and keeps the sample cheap).
	splits, err := sampleSplits(d, reducers)
	rangePart := func(k K, r int) int {
		if err != nil || len(splits) == 0 {
			return hashPartitioner(k, r)
		}
		i := sort.Search(len(splits), func(i int) bool { return !(splits[i] < k) })
		return i
	}
	red := shuffled(d, d.name+".sortByKey", reducers, rangePart)
	return MapPartitions(red, func(_ int, rows []Pair[K, V]) ([]Pair[K, V], error) {
		sort.SliceStable(rows, func(i, j int) bool { return rows[i].Key < rows[j].Key })
		return rows, nil
	})
}

// sampleSplits derives reducers-1 ascending split keys.
func sampleSplits[K cmp.Ordered, V any](d *Dataset[Pair[K, V]], reducers int) ([]K, error) {
	rows, err := d.partition(0)
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 || reducers <= 1 {
		return nil, nil
	}
	keys := make([]K, len(rows))
	for i, kv := range rows {
		keys[i] = kv.Key
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	splits := make([]K, 0, reducers-1)
	for i := 1; i < reducers; i++ {
		splits = append(splits, keys[i*len(keys)/reducers])
	}
	return splits, nil
}

// Tuple2 is a value pair (no comparability requirement), used for join
// results.
type Tuple2[A, B any] struct {
	A A
	B B
}

// Join inner-joins two pair datasets by key over a common shuffle
// partitioning.
func Join[K comparable, V, W any](a *Dataset[Pair[K, V]], b *Dataset[Pair[K, W]], reducers int) *Dataset[Pair[K, Tuple2[V, W]]] {
	if reducers <= 0 {
		reducers = maxInt(a.parts, b.parts)
	}
	ra := shuffled(a, a.name+".join-left", reducers, hashPartitioner[K])
	rb := shuffled(b, b.name+".join-right", reducers, hashPartitioner[K])
	return newDataset(a.ctx, a.name+"⋈"+b.name, reducers, func(r int) ([]Pair[K, Tuple2[V, W]], error) {
		left, err := ra.partition(r)
		if err != nil {
			return nil, err
		}
		right, err := rb.partition(r)
		if err != nil {
			return nil, err
		}
		byKey := map[K][]V{}
		for _, kv := range left {
			byKey[kv.Key] = append(byKey[kv.Key], kv.Value)
		}
		var out []Pair[K, Tuple2[V, W]]
		for _, kw := range right {
			for _, v := range byKey[kw.Key] {
				out = append(out, KV(kw.Key, Tuple2[V, W]{A: v, B: kw.Value}))
			}
		}
		return out, nil
	})
}

// Keys projects the keys.
func Keys[K comparable, V any](d *Dataset[Pair[K, V]]) *Dataset[K] {
	return Map(d, func(kv Pair[K, V]) K { return kv.Key })
}

// Values projects the values.
func Values[K comparable, V any](d *Dataset[Pair[K, V]]) *Dataset[V] {
	return Map(d, func(kv Pair[K, V]) V { return kv.Value })
}
