package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/campaign"
)

// cmdCampaign drives resumable, checkpointed parameter studies:
//
//	doppio campaign plan  -config study.json [-shards N -shard i]
//	doppio campaign run   -config study.json [-checkpoint F] [-resume]
//	                      [-shards N -shard i] [-parallel N]
//	                      [-point-timeout D] [-metrics F]
//	doppio campaign merge -config study.json [-report F] [-bench F] ckpt...
//
// `run` executes one shard of the study, appending each completed point
// to an fsync'd JSONL checkpoint; a killed run resumes with -resume,
// recomputing only the points that were in flight when it died. `merge`
// combines the checkpoints (one, or one per shard) into the study's
// report and BENCH-style trend JSON — byte-identical however the points
// were executed. See docs/CAMPAIGN.md.
func (a *app) cmdCampaign(ctx context.Context, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("campaign: need a verb: plan, run or merge (see docs/CAMPAIGN.md)")
	}
	switch args[0] {
	case "plan":
		return a.cmdCampaignPlan(args[1:])
	case "run":
		return a.cmdCampaignRun(ctx, args[1:])
	case "merge":
		return a.cmdCampaignMerge(args[1:])
	default:
		return fmt.Errorf("campaign: unknown verb %q (want plan, run or merge)", args[0])
	}
}

// campaignShardFlags adds and validates the -shards/-shard pair.
func campaignShardFlags(fs *flag.FlagSet) (shards, shard *int) {
	shards = fs.Int("shards", 1, "partition the point list across this many processes")
	shard = fs.Int("shard", 0, "which partition this process runs, in [0, shards)")
	return shards, shard
}

func checkShards(shards, shard int) error {
	if shards < 1 {
		return fmt.Errorf("-shards must be at least 1, got %d", shards)
	}
	if shard < 0 || shard >= shards {
		return fmt.Errorf("-shard must be in [0, %d), got %d", shards, shard)
	}
	return nil
}

// defaultCheckpoint derives the checkpoint path the run and smoke
// tooling agree on when -checkpoint is not given.
func defaultCheckpoint(cfg campaign.Config, shards, shard int) string {
	if shards > 1 {
		return fmt.Sprintf("%s.shard%d-of-%d.campaign.jsonl", cfg.Name, shard, shards)
	}
	return cfg.Name + ".campaign.jsonl"
}

func (a *app) cmdCampaignPlan(args []string) error {
	fs := flag.NewFlagSet("campaign plan", flag.ContinueOnError)
	configPath := fs.String("config", "", "study config file (JSON; see docs/CAMPAIGN.md)")
	shards, shard := campaignShardFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *configPath == "" {
		return fmt.Errorf("campaign plan: -config is required")
	}
	if err := checkShards(*shards, *shard); err != nil {
		return fmt.Errorf("campaign plan: %v", err)
	}
	cfg, err := campaign.LoadConfig(*configPath)
	if err != nil {
		return err
	}
	points := campaign.Shard(cfg.Points(), *shards, *shard)
	fmt.Fprintf(a.out, "# campaign %s: %d points total, %d in shard %d/%d, config hash %s\n",
		cfg.Name, cfg.Size(), len(points), *shard, *shards, cfg.Hash())
	for _, p := range points {
		fmt.Fprintf(a.out, "%6d  %s  %s\n", p.Index, cfg.PointHash(p)[:12], p.Name())
	}
	return nil
}

func (a *app) cmdCampaignRun(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("campaign run", flag.ContinueOnError)
	configPath := fs.String("config", "", "study config file (JSON; see docs/CAMPAIGN.md)")
	checkpoint := fs.String("checkpoint", "", "JSONL checkpoint path (default <name>[.shardI-of-N].campaign.jsonl)")
	resume := fs.Bool("resume", false, "skip points already in the checkpoint instead of refusing to touch it")
	parallel := fs.Int("parallel", 0, "point worker pool size (0 = config value, then GOMAXPROCS)")
	pointTimeout := fs.Duration("point-timeout", 0, "per-point deadline override (0 = config value; timed-out points are retried on resume)")
	metricsPath := fs.String("metrics", "", "write campaign progress counters (Prometheus text) to this file on exit")
	quiet := fs.Bool("q", false, "suppress per-point progress lines")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the campaign run to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile (after the run) to this file")
	shards, shard := campaignShardFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *configPath == "" {
		return fmt.Errorf("campaign run: -config is required")
	}
	stopProf, err := a.startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		return fmt.Errorf("campaign run: %v", err)
	}
	defer stopProf()
	if err := firstError(
		checkShards(*shards, *shard),
		checkNonNegativeInt("parallel", *parallel),
		checkNonNegativeDuration("point-timeout", *pointTimeout),
	); err != nil {
		return fmt.Errorf("campaign run: %v", err)
	}
	cfg, err := campaign.LoadConfig(*configPath)
	if err != nil {
		return err
	}
	ckpt := *checkpoint
	if ckpt == "" {
		ckpt = defaultCheckpoint(cfg, *shards, *shard)
	}
	progress := campaign.NewProgress()
	var logW = a.out
	if *quiet {
		logW = nil
	}
	sum, err := campaign.Run(ctx, cfg, campaign.RunOptions{
		CheckpointPath: ckpt,
		Resume:         *resume,
		Shards:         *shards,
		Shard:          *shard,
		Parallel:       *parallel,
		PointTimeout:   *pointTimeout,
		Progress:       progress,
		Log:            logW,
	})
	if *metricsPath != "" {
		if merr := progress.WriteFile(*metricsPath); merr != nil {
			fmt.Fprintf(a.out, "# metrics: %v\n", merr)
		}
	}
	// The summary line renders on every exit path — it is what the
	// campaign-smoke gate parses to prove zero recompute waste.
	fmt.Fprintf(a.out, "# campaign %s shard %d/%d: %d points, %d skipped (checkpointed), %d executed, %d failed, %d unfinished in %.1fs\n",
		sum.Name, *shard, *shards, sum.Total, sum.Skipped, sum.Executed, sum.Failed, sum.Unfinished, sum.Elapsed.Seconds())
	if err != nil {
		if errors.Is(err, campaign.ErrInterrupted) {
			fmt.Fprintf(a.out, "# checkpoint %s is durable; continue with: doppio campaign run -config %s -checkpoint %s -resume\n",
				ckpt, *configPath, ckpt)
		}
		return err
	}
	fmt.Fprintf(a.out, "# checkpoint complete: %s (merge with: doppio campaign merge -config %s %s)\n",
		ckpt, *configPath, ckpt)
	return nil
}

func (a *app) cmdCampaignMerge(args []string) error {
	fs := flag.NewFlagSet("campaign merge", flag.ContinueOnError)
	configPath := fs.String("config", "", "study config file (JSON; see docs/CAMPAIGN.md)")
	reportPath := fs.String("report", "", `write the merged report here ("-" or empty = stdout)`)
	format := fs.String("format", "text", "report format: text, csv, md")
	benchPath := fs.String("bench", "", "write the BENCH-style trend JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *configPath == "" {
		return fmt.Errorf("campaign merge: -config is required")
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("campaign merge: need at least one checkpoint file")
	}
	cfg, err := campaign.LoadConfig(*configPath)
	if err != nil {
		return err
	}
	merged, err := campaign.Merge(cfg, fs.Args())
	if err != nil {
		return err
	}
	table := merged.Table()
	if *reportPath == "" || *reportPath == "-" {
		if err := table.Render(a.out, *format); err != nil {
			return err
		}
	} else {
		f, err := os.Create(*reportPath)
		if err != nil {
			return err
		}
		if err := table.Render(f, *format); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if *benchPath != "" {
		f, err := os.Create(*benchPath)
		if err != nil {
			return err
		}
		if err := merged.WriteBenchJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Fprintf(a.out, "# merged %d points from %d checkpoint(s), %d duplicate record(s) collapsed\n",
		len(merged.Records), merged.Sources, merged.Duplicates)
	return nil
}
