package cli

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a writer the test can read while the server goroutine
// writes.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestFlagValidators is the table-driven audit of the shared validation
// helpers used by `doppio run` and `doppio serve`.
func TestFlagValidators(t *testing.T) {
	cases := []struct {
		name string
		err  error
		ok   bool
	}{
		{"positive ok", checkPositiveInt("max-inflight", 1), true},
		{"positive zero", checkPositiveInt("max-inflight", 0), false},
		{"positive negative", checkPositiveInt("cache-size", -3), false},
		{"nonneg ok", checkNonNegativeInt("parallel", 0), true},
		{"nonneg negative", checkNonNegativeInt("parallel", -1), false},
		{"duration ok", checkNonNegativeDuration("timeout", 0), true},
		{"duration positive", checkNonNegativeDuration("timeout", time.Second), true},
		{"duration negative", checkNonNegativeDuration("timeout", -time.Second), false},
		{"addr ok", checkListenAddr("addr", ":8080"), true},
		{"addr host ok", checkListenAddr("addr", "127.0.0.1:0"), true},
		{"addr no port", checkListenAddr("addr", "localhost"), false},
		{"addr bad port", checkListenAddr("addr", "localhost:http"), false},
		{"addr port too big", checkListenAddr("addr", "localhost:70000"), false},
	}
	for _, tc := range cases {
		if tc.ok && tc.err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, tc.err)
		}
		if !tc.ok && tc.err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
		if tc.err != nil && !strings.HasPrefix(tc.err.Error(), "-") {
			t.Errorf("%s: error should lead with the flag name: %v", tc.name, tc.err)
		}
	}
}

func TestFirstError(t *testing.T) {
	if err := firstError(nil, nil); err != nil {
		t.Errorf("firstError(nil, nil) = %v", err)
	}
	want := errors.New("boom")
	if err := firstError(nil, want, errors.New("later")); err != want {
		t.Errorf("firstError = %v, want the first non-nil", err)
	}
}

// TestRunRejectsBadFlags checks `doppio run` fails fast, at the flag
// layer, before touching the worker pool.
func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"run", "-parallel", "-2", "tab4"},
		{"run", "-timeout", "-5s", "tab4"},
	} {
		_, errOut, code := run(t, args...)
		if code != 1 {
			t.Errorf("%v: exit = %d, want 1", args, code)
		}
		if !strings.Contains(errOut, "must not be negative") {
			t.Errorf("%v: stderr = %q", args, errOut)
		}
	}
}

// TestServeRejectsBadFlags checks `doppio serve` fails fast on the bad
// shapes the issue names: bad port, negative timeout, zero concurrency.
func TestServeRejectsBadFlags(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"serve", "-addr", "nonsense"}, "-addr"},
		{[]string{"serve", "-addr", "localhost:99999"}, "-addr"},
		{[]string{"serve", "-request-timeout", "-1s"}, "-request-timeout"},
		{[]string{"serve", "-drain-timeout", "-1s"}, "-drain-timeout"},
		{[]string{"serve", "-max-inflight", "0"}, "-max-inflight"},
		{[]string{"serve", "-cache-size", "0"}, "-cache-size"},
		{[]string{"serve", "-cache-snapshot-interval", "-1s"}, "-cache-snapshot-interval"},
		{[]string{"serve", "-peer-timeout", "-1s"}, "-peer-timeout"},
		{[]string{"serve", "-peers", "127.0.0.1:8081,127.0.0.1:8082"}, "-replica-id"},
		{[]string{"serve", "-replica-id", "127.0.0.1:9", "-peers", "not-an-addr"}, "peer"},
		{[]string{"serve", "stray-arg"}, "unexpected argument"},
	}
	for _, tc := range cases {
		_, errOut, code := run(t, tc.args...)
		if code != 1 {
			t.Errorf("%v: exit = %d, want 1", tc.args, code)
		}
		if !strings.Contains(errOut, tc.want) {
			t.Errorf("%v: stderr = %q, want mention of %q", tc.args, errOut, tc.want)
		}
	}
}

// TestServeStartsAndDrains boots the real service through the CLI path
// with an injected context standing in for SIGTERM.
func TestServeStartsAndDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var out, errOut syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- runMain(ctx, []string{"serve", "-addr", "127.0.0.1:0"}, &out, &errOut)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(out.String(), "listening on") {
		if time.Now().After(deadline) {
			t.Fatalf("server never announced itself; stderr: %s", errOut.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Errorf("exit = %d, want 0; stderr: %s", code, errOut.String())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not drain after cancellation")
	}
}
