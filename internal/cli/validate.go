package cli

import (
	"fmt"
	"net"
	"strconv"
	"time"
)

// Flag validation shared by the subcommands: `doppio run` and `doppio
// serve` accept numerically-shaped knobs (pool sizes, deadlines, listen
// addresses) whose bad values should fail at the flag layer with flag
// vocabulary, not surface later as a confusing runtime error from the
// worker pool or the listener.

// checkPositiveInt rejects zero and negative values for flags that size
// something (a concurrency limit, a cache).
func checkPositiveInt(name string, v int) error {
	if v < 1 {
		return fmt.Errorf("-%s must be at least 1, got %d", name, v)
	}
	return nil
}

// checkNonNegativeInt rejects negative values for flags where zero means
// "use the default" (worker pool size).
func checkNonNegativeInt(name string, v int) error {
	if v < 0 {
		return fmt.Errorf("-%s must not be negative, got %d", name, v)
	}
	return nil
}

// checkNonNegativeDuration rejects negative durations for deadline flags
// where zero means "no deadline" or "use the default".
func checkNonNegativeDuration(name string, v time.Duration) error {
	if v < 0 {
		return fmt.Errorf("-%s must not be negative, got %v", name, v)
	}
	return nil
}

// checkListenAddr rejects addresses net.Listen would refuse: a missing
// port, or a port outside [0, 65535] (0 asks the kernel to pick).
func checkListenAddr(name, addr string) error {
	_, port, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("-%s %q: %v", name, addr, err)
	}
	p, err := strconv.Atoi(port)
	if err != nil || p < 0 || p > 65535 {
		return fmt.Errorf("-%s %q: port must be a number in [0, 65535]", name, addr)
	}
	return nil
}

// firstError returns the first non-nil error, so a subcommand can state
// all its flag invariants in one place.
func firstError(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
