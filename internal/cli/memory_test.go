package cli

import (
	"reflect"
	"strings"
	"testing"
)

// TestSimHeapFlag checks -heap-gb reaches the simulator: a tight heap
// must lengthen the run, and a negative one must be rejected at flag
// validation.
func TestSimHeapFlag(t *testing.T) {
	base, _, code := run(t, "sim", "-slaves", "3", "-cores", "8", "-local", "hdd", "-seed", "7", "terasort")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	tight, _, code := run(t, "sim", "-slaves", "3", "-cores", "8", "-local", "hdd", "-seed", "7",
		"-heap-gb", "0.25", "terasort")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	total := func(out string) string {
		for _, line := range strings.Split(out, "\n") {
			if strings.Contains(line, "total=") {
				return line
			}
		}
		t.Fatalf("no total= line in %q", out)
		return ""
	}
	if total(base) == total(tight) {
		t.Errorf("0.25 GB heap left the simulated total unchanged: %s", total(base))
	}

	_, _, code = run(t, "sim", "-heap-gb", "-1", "terasort")
	if code != 1 {
		t.Errorf("negative heap exit = %d, want 1", code)
	}
}

func TestParseHeapGBs(t *testing.T) {
	got, err := parseHeapGBs(" 4, 16 ,64")
	if err != nil || !reflect.DeepEqual(got, []float64{4, 16, 64}) {
		t.Errorf("parseHeapGBs = %v, %v", got, err)
	}
	if got, err := parseHeapGBs(""); err != nil || got != nil {
		t.Errorf("empty parse = %v, %v, want nil axis", got, err)
	}
	for _, bad := range []string{"x", "0", "-4", "5000", "4,,8"} {
		if _, err := parseHeapGBs(bad); err == nil {
			t.Errorf("parseHeapGBs(%q) accepted", bad)
		}
	}
}
