package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/shard"
)

// replicaList collects repeated -replica flags (and accepts one
// comma-separated value) so topologies read naturally either way:
//
//	doppio route -replica :8081 -replica :8082
//	doppio route -replicas 127.0.0.1:8081,127.0.0.1:8082
type replicaList []string

func (r *replicaList) String() string { return strings.Join(*r, ",") }

func (r *replicaList) Set(v string) error {
	for _, part := range strings.Split(v, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		*r = append(*r, part)
	}
	return nil
}

// cmdRoute runs the fault-tolerant sharding front tier over N `doppio
// serve` replicas until the context is cancelled, then drains like
// serve does. See docs/SERVING.md, "Cluster mode".
func (a *app) cmdRoute(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("route", flag.ContinueOnError)
	addr := fs.String("addr", ":8090", "listen address")
	var reps replicaList
	fs.Var(&reps, "replica", "backend replica host:port (repeatable)")
	fs.Var(&reps, "replicas", "comma-separated backend replicas (alias for repeated -replica)")
	vnodes := fs.Int("vnodes", shard.DefaultVNodes, "hash-ring points per replica")
	probeInterval := fs.Duration("probe-interval", time.Second, "active /readyz probe period")
	probeTimeout := fs.Duration("probe-timeout", 0, "per-probe deadline (0 = probe-interval, capped at 1s)")
	failAfter := fs.Int("fail-after", 2, "consecutive probe failures that mark a replica down")
	recoverAfter := fs.Int("recover-after", 2, "consecutive probe successes that mark it back up")
	breakerThreshold := fs.Int("breaker-threshold", 3, "consecutive proxied failures that open a replica's circuit")
	breakerCooldown := fs.Duration("breaker-cooldown", 3*time.Second, "open-circuit cooldown before a half-open trial")
	maxRetries := fs.Int("max-retries", 3, "extra attempts after the first, failing over along the ring")
	retryBase := fs.Duration("retry-base", 50*time.Millisecond, "first retry backoff (doubles per attempt, jittered)")
	retryMax := fs.Duration("retry-max", time.Second, "retry backoff cap")
	hedgeAfter := fs.Duration("hedge-after", 0, "duplicate a request to the next replica after this delay (0 = off)")
	reqTimeout := fs.Duration("request-timeout", 30*time.Second, "per-client-request deadline across all attempts")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long in-flight requests get to finish on shutdown")
	hotCacheTTL := fs.Duration("hot-cache-ttl", 2*time.Second, "router-side replay window for hot replica cache hits (0 = off)")
	hotCacheEntries := fs.Int("hot-cache-entries", 128, "hot-response cache capacity (with -hot-cache-ttl)")
	accessLog := fs.String("access-log", "", `JSON access log destination: a file path, or "-" for stdout (empty = off)`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("route: unexpected argument %q", fs.Arg(0))
	}
	if len(reps) == 0 {
		return fmt.Errorf("route: at least one -replica is required")
	}
	if err := firstError(
		checkListenAddr("addr", *addr),
		checkPositiveInt("vnodes", *vnodes),
		checkPositiveInt("fail-after", *failAfter),
		checkPositiveInt("recover-after", *recoverAfter),
		checkPositiveInt("breaker-threshold", *breakerThreshold),
		checkNonNegativeInt("max-retries", *maxRetries),
		checkNonNegativeDuration("probe-interval", *probeInterval),
		checkNonNegativeDuration("probe-timeout", *probeTimeout),
		checkNonNegativeDuration("breaker-cooldown", *breakerCooldown),
		checkNonNegativeDuration("retry-base", *retryBase),
		checkNonNegativeDuration("retry-max", *retryMax),
		checkNonNegativeDuration("hedge-after", *hedgeAfter),
		checkNonNegativeDuration("request-timeout", *reqTimeout),
		checkNonNegativeDuration("drain-timeout", *drainTimeout),
		checkNonNegativeDuration("hot-cache-ttl", *hotCacheTTL),
		checkNonNegativeInt("hot-cache-entries", *hotCacheEntries),
	); err != nil {
		return fmt.Errorf("route: %v", err)
	}
	var logW io.Writer
	switch *accessLog {
	case "":
	case "-":
		logW = a.out
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("route: %v", err)
		}
		defer f.Close()
		logW = f
	}
	rt, err := cluster.New(cluster.Config{
		Addr:             *addr,
		Replicas:         reps,
		VNodes:           *vnodes,
		ProbeInterval:    *probeInterval,
		ProbeTimeout:     *probeTimeout,
		FailAfter:        *failAfter,
		RecoverAfter:     *recoverAfter,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		MaxRetries:       *maxRetries,
		RetryBase:        *retryBase,
		RetryMax:         *retryMax,
		HedgeAfter:       *hedgeAfter,
		RequestTimeout:   *reqTimeout,
		DrainTimeout:     *drainTimeout,
		HotCacheTTL:      *hotCacheTTL,
		HotCacheEntries:  *hotCacheEntries,
		AccessLog:        logW,
	})
	if err != nil {
		return err
	}
	go func() {
		<-rt.Started()
		fmt.Fprintf(a.out, "# doppio route listening on %s, sharding %d replicas (Ctrl-C or SIGTERM drains)\n",
			rt.Addr(), len(rt.Ring().Replicas()))
	}()
	return rt.Run(ctx)
}
