package cli

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestRouteRequiresReplicas(t *testing.T) {
	_, errOut, code := run(t, "route")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errOut, "at least one -replica") {
		t.Fatalf("stderr %q lacks replica requirement", errOut)
	}
}

func TestRouteFlagValidation(t *testing.T) {
	for name, args := range map[string][]string{
		"bad addr":         {"route", "-addr", "nope", "-replica", "127.0.0.1:8081"},
		"bad replica":      {"route", "-replica", "ftp://127.0.0.1:8081"},
		"dup replica":      {"route", "-replica", "127.0.0.1:8081", "-replica", "http://127.0.0.1:8081"},
		"zero vnodes":      {"route", "-vnodes", "0", "-replica", "127.0.0.1:8081"},
		"negative retries": {"route", "-max-retries", "-1", "-replica", "127.0.0.1:8081"},
		"negative hot ttl": {"route", "-hot-cache-ttl", "-1s", "-replica", "127.0.0.1:8081"},
		"negative hot cap": {"route", "-hot-cache-entries", "-1", "-replica", "127.0.0.1:8081"},
		"stray arg":        {"route", "-replica", "127.0.0.1:8081", "extra"},
	} {
		if _, _, code := run(t, args...); code != 1 {
			t.Errorf("%s: exit = %d, want 1", name, code)
		}
	}
}

func TestRouteRunsAndDrains(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer backend.Close()
	replica := strings.TrimPrefix(backend.URL, "http://")

	ctx, cancel := context.WithCancel(context.Background())
	var out, errW syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- runMain(ctx, []string{
			"route", "-addr", "127.0.0.1:0", "-replica", replica,
			"-probe-interval", "50ms", "-drain-timeout", "2s",
		}, &out, &errW)
	}()
	// Give the router time to bind and announce itself, then drain.
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(out.String(), "doppio route listening") {
		if time.Now().After(deadline) {
			t.Fatalf("router never announced; stdout=%q stderr=%q", out.String(), errW.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit = %d, stderr=%q", code, errW.String())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("route did not drain after cancel")
	}
}

func TestServeReplicaIDFlagRejectsNothing(t *testing.T) {
	// -replica-id is free-form; just pin that the flag parses and an
	// invalid listen address still fails first.
	_, errOut, code := run(t, "serve", "-replica-id", "r1", "-addr", "nope")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errOut, "addr") {
		t.Fatalf("stderr %q lacks addr error", errOut)
	}
}
