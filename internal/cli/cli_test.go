package cli

import (
	"strings"
	"testing"
)

// run invokes the CLI and returns (stdout, stderr, exit code).
func run(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errW strings.Builder
	code := Main(args, &out, &errW)
	return out.String(), errW.String(), code
}

func TestNoArgsShowsUsage(t *testing.T) {
	_, errOut, code := run(t)
	if code != 2 {
		t.Errorf("exit = %d", code)
	}
	if !strings.Contains(errOut, "doppio") {
		t.Error("usage missing")
	}
}

func TestUnknownCommand(t *testing.T) {
	_, _, code := run(t, "frobnicate")
	if code != 2 {
		t.Errorf("exit = %d", code)
	}
}

func TestHelp(t *testing.T) {
	out, _, code := run(t, "help")
	if code != 0 || !strings.Contains(out, "experiments") {
		t.Errorf("help: code=%d out=%q", code, out)
	}
}

func TestExperimentsList(t *testing.T) {
	out, _, code := run(t, "experiments")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"fig7", "tab4", "headline", "scheduler"} {
		if !strings.Contains(out, want) {
			t.Errorf("experiments list missing %s", want)
		}
	}
}

func TestWorkloadsList(t *testing.T) {
	out, _, code := run(t, "workloads")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"gatk4", "terasort", "pagerank"} {
		if !strings.Contains(out, want) {
			t.Errorf("workloads list missing %s", want)
		}
	}
}

func TestRunExperimentFormats(t *testing.T) {
	out, _, code := run(t, "run", "tab5")
	if code != 0 || !strings.Contains(out, "SSD provisioned space") {
		t.Errorf("run tab5: code=%d", code)
	}
	csvOut, _, code := run(t, "run", "-format", "csv", "tab5")
	if code != 0 || !strings.Contains(csvOut, "type,price") {
		t.Errorf("csv output: code=%d out=%q", code, csvOut)
	}
	mdOut, _, code := run(t, "run", "-format", "md", "tab5")
	if code != 0 || !strings.Contains(mdOut, "| type |") {
		t.Errorf("md output: code=%d out=%q", code, mdOut)
	}
	_, _, code = run(t, "run", "-format", "xml", "tab5")
	if code != 1 {
		t.Errorf("bad format exit = %d", code)
	}
	_, _, code = run(t, "run", "no-such-figure")
	if code != 1 {
		t.Errorf("unknown experiment exit = %d", code)
	}
	_, _, code = run(t, "run")
	if code != 1 {
		t.Errorf("missing id exit = %d", code)
	}
}

// TestRunParallelOrderedOutput asserts that pool execution keeps tables
// in the requested order, prints per-artifact timings and closes a
// multi-artifact run with the summary footer.
func TestRunParallelOrderedOutput(t *testing.T) {
	out, _, code := run(t, "run", "-parallel", "4", "tab4", "tab5", "fig5", "fig6")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	prev := -1
	for _, id := range []string{"## tab4", "## tab5", "## fig5", "## fig6"} {
		i := strings.Index(out, id)
		if i < 0 {
			t.Fatalf("output missing %q", id)
		}
		if i < prev {
			t.Errorf("%q rendered out of order", id)
		}
		prev = i
	}
	if n := strings.Count(out, "# regenerated in"); n != 4 {
		t.Errorf("%d per-artifact timing lines, want 4", n)
	}
	if !strings.Contains(out, "# total: 4 artifacts in") || !strings.Contains(out, "pool speedup") {
		t.Errorf("summary footer missing:\n%s", out)
	}
}

// TestRunParallelMatchesSerialOutput asserts byte-identical rendering
// (CSV has no timing lines) between serial and pooled runs.
func TestRunParallelMatchesSerialOutput(t *testing.T) {
	serial, _, code := run(t, "run", "-format", "csv", "-parallel", "1", "tab4", "fig5", "tab5")
	if code != 0 {
		t.Fatalf("serial exit = %d", code)
	}
	parallel, _, code := run(t, "run", "-format", "csv", "-parallel", "3", "tab4", "fig5", "tab5")
	if code != 0 {
		t.Fatalf("parallel exit = %d", code)
	}
	if serial != parallel {
		t.Errorf("serial and parallel CSV output differ:\n--- serial\n%s\n--- parallel\n%s", serial, parallel)
	}
}

func TestFio(t *testing.T) {
	out, _, code := run(t, "fio")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"WD4000FYYZ", "SAMSUNG", "30KB"} {
		if !strings.Contains(out, want) {
			t.Errorf("fio output missing %s", want)
		}
	}
}

func TestSim(t *testing.T) {
	out, _, code := run(t, "sim", "-slaves", "3", "-cores", "8", "-local", "hdd", "-iostat", "-blocked", "svm")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"subtract", "avgrq-sz", "blocked-on-I/O"} {
		if !strings.Contains(out, want) {
			t.Errorf("sim output missing %q", want)
		}
	}
	_, _, code = run(t, "sim", "nonexistent-workload")
	if code != 1 {
		t.Errorf("unknown workload exit = %d", code)
	}
	_, _, code = run(t, "sim")
	if code != 1 {
		t.Errorf("missing workload exit = %d", code)
	}
	_, _, code = run(t, "sim", "-local", "floppy", "svm")
	if code != 1 {
		t.Errorf("bad device exit = %d", code)
	}
}

func TestSimVirtualDisks(t *testing.T) {
	out, _, code := run(t, "sim", "-slaves", "2", "-cores", "4",
		"-hdfs", "pd-standard:1TB", "-local", "pd-ssd:200GB", "svm")
	if code != 0 || !strings.Contains(out, "subtract") {
		t.Errorf("virtual-disk sim failed: code=%d", code)
	}
}

func TestPredict(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a calibration")
	}
	out, _, code := run(t, "predict", "-slaves", "4", "-cores", "12", "-local", "hdd", "svm")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"calibrating", "TOTAL", "bottleneck"} {
		if !strings.Contains(out, want) {
			t.Errorf("predict output missing %q", want)
		}
	}
}

func TestOptimize(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a calibration plus a grid search")
	}
	out, _, code := run(t, "optimize", "-slaves", "3", "-workload", "svm", "-top", "3")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"configuration", "reference R1", "reference R2"} {
		if !strings.Contains(out, want) {
			t.Errorf("optimize output missing %q", want)
		}
	}
	out2, _, code := run(t, "optimize", "-slaves", "3", "-workload", "svm", "-descend")
	if code != 0 || !strings.Contains(out2, "best after") {
		t.Errorf("descend output: code=%d", code)
	}
}

func TestWhatif(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a calibration")
	}
	out, _, code := run(t, "whatif", "-slaves", "3", "-local", "hdd", "-maxcores", "16", "svm")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"total(min)", "bottlenecks", "calibrating"} {
		if !strings.Contains(out, want) {
			t.Errorf("whatif output missing %q", want)
		}
	}
}

func TestPredictSaveLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a calibration")
	}
	path := t.TempDir() + "/model.json"
	out, _, code := run(t, "predict", "-slaves", "3", "-cores", "8", "-save", path, "svm")
	if code != 0 || !strings.Contains(out, "saved calibrated model") {
		t.Fatalf("save: code=%d", code)
	}
	out2, _, code := run(t, "predict", "-slaves", "3", "-cores", "8", "-load", path, "svm")
	if code != 0 || !strings.Contains(out2, "loaded calibrated model") {
		t.Fatalf("load: code=%d out=%q", code, out2)
	}
	if !strings.Contains(out2, "TOTAL") {
		t.Error("loaded-model prediction missing")
	}
	_, _, code = run(t, "predict", "-load", "/nonexistent.json", "svm")
	if code != 1 {
		t.Errorf("missing model file exit = %d", code)
	}
}

func TestSimStragglersAndSpeculation(t *testing.T) {
	out, _, code := run(t, "sim", "-slaves", "3", "-cores", "8",
		"-stragglers", "0.05", "-speculate", "-seed", "7", "svm")
	if code != 0 || !strings.Contains(out, "subtract") {
		t.Fatalf("straggler sim: code=%d", code)
	}
}
