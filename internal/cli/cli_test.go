package cli

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// run invokes the CLI and returns (stdout, stderr, exit code).
func run(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errW strings.Builder
	code := Main(args, &out, &errW)
	return out.String(), errW.String(), code
}

func TestNoArgsShowsUsage(t *testing.T) {
	_, errOut, code := run(t)
	if code != 2 {
		t.Errorf("exit = %d", code)
	}
	if !strings.Contains(errOut, "doppio") {
		t.Error("usage missing")
	}
}

func TestUnknownCommand(t *testing.T) {
	_, _, code := run(t, "frobnicate")
	if code != 2 {
		t.Errorf("exit = %d", code)
	}
}

func TestHelp(t *testing.T) {
	out, _, code := run(t, "help")
	if code != 0 || !strings.Contains(out, "experiments") {
		t.Errorf("help: code=%d out=%q", code, out)
	}
}

func TestExperimentsList(t *testing.T) {
	out, _, code := run(t, "experiments")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"fig7", "tab4", "headline", "scheduler"} {
		if !strings.Contains(out, want) {
			t.Errorf("experiments list missing %s", want)
		}
	}
}

func TestWorkloadsList(t *testing.T) {
	out, _, code := run(t, "workloads")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"gatk4", "terasort", "pagerank"} {
		if !strings.Contains(out, want) {
			t.Errorf("workloads list missing %s", want)
		}
	}
}

func TestRunExperimentFormats(t *testing.T) {
	out, _, code := run(t, "run", "tab5")
	if code != 0 || !strings.Contains(out, "SSD provisioned space") {
		t.Errorf("run tab5: code=%d", code)
	}
	csvOut, _, code := run(t, "run", "-format", "csv", "tab5")
	if code != 0 || !strings.Contains(csvOut, "type,price") {
		t.Errorf("csv output: code=%d out=%q", code, csvOut)
	}
	mdOut, _, code := run(t, "run", "-format", "md", "tab5")
	if code != 0 || !strings.Contains(mdOut, "| type |") {
		t.Errorf("md output: code=%d out=%q", code, mdOut)
	}
	_, _, code = run(t, "run", "-format", "xml", "tab5")
	if code != 1 {
		t.Errorf("bad format exit = %d", code)
	}
	_, _, code = run(t, "run", "no-such-figure")
	if code != 1 {
		t.Errorf("unknown experiment exit = %d", code)
	}
	_, _, code = run(t, "run")
	if code != 1 {
		t.Errorf("missing id exit = %d", code)
	}
}

// TestRunParallelOrderedOutput asserts that pool execution keeps tables
// in the requested order, prints per-artifact timings and closes a
// multi-artifact run with the summary footer.
func TestRunParallelOrderedOutput(t *testing.T) {
	out, _, code := run(t, "run", "-parallel", "4", "tab4", "tab5", "fig5", "fig6")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	prev := -1
	for _, id := range []string{"## tab4", "## tab5", "## fig5", "## fig6"} {
		i := strings.Index(out, id)
		if i < 0 {
			t.Fatalf("output missing %q", id)
		}
		if i < prev {
			t.Errorf("%q rendered out of order", id)
		}
		prev = i
	}
	if n := strings.Count(out, "# regenerated in"); n != 4 {
		t.Errorf("%d per-artifact timing lines, want 4", n)
	}
	if !strings.Contains(out, "# total: 4 artifacts in") || !strings.Contains(out, "pool speedup") {
		t.Errorf("summary footer missing:\n%s", out)
	}
}

// TestRunParallelMatchesSerialOutput asserts byte-identical rendering
// (CSV has no timing lines) between serial and pooled runs.
func TestRunParallelMatchesSerialOutput(t *testing.T) {
	serial, _, code := run(t, "run", "-format", "csv", "-parallel", "1", "tab4", "fig5", "tab5")
	if code != 0 {
		t.Fatalf("serial exit = %d", code)
	}
	parallel, _, code := run(t, "run", "-format", "csv", "-parallel", "3", "tab4", "fig5", "tab5")
	if code != 0 {
		t.Fatalf("parallel exit = %d", code)
	}
	if serial != parallel {
		t.Errorf("serial and parallel CSV output differ:\n--- serial\n%s\n--- parallel\n%s", serial, parallel)
	}
}

func TestFio(t *testing.T) {
	out, _, code := run(t, "fio")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"WD4000FYYZ", "SAMSUNG", "30KB"} {
		if !strings.Contains(out, want) {
			t.Errorf("fio output missing %s", want)
		}
	}
}

func TestSim(t *testing.T) {
	out, _, code := run(t, "sim", "-slaves", "3", "-cores", "8", "-local", "hdd", "-iostat", "-blocked", "svm")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"subtract", "avgrq-sz", "blocked-on-I/O"} {
		if !strings.Contains(out, want) {
			t.Errorf("sim output missing %q", want)
		}
	}
	_, _, code = run(t, "sim", "nonexistent-workload")
	if code != 1 {
		t.Errorf("unknown workload exit = %d", code)
	}
	_, _, code = run(t, "sim")
	if code != 1 {
		t.Errorf("missing workload exit = %d", code)
	}
	_, _, code = run(t, "sim", "-local", "floppy", "svm")
	if code != 1 {
		t.Errorf("bad device exit = %d", code)
	}
}

func TestSimVirtualDisks(t *testing.T) {
	out, _, code := run(t, "sim", "-slaves", "2", "-cores", "4",
		"-hdfs", "pd-standard:1TB", "-local", "pd-ssd:200GB", "svm")
	if code != 0 || !strings.Contains(out, "subtract") {
		t.Errorf("virtual-disk sim failed: code=%d", code)
	}
}

func TestPredict(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a calibration")
	}
	out, _, code := run(t, "predict", "-slaves", "4", "-cores", "12", "-local", "hdd", "svm")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"calibrating", "TOTAL", "bottleneck"} {
		if !strings.Contains(out, want) {
			t.Errorf("predict output missing %q", want)
		}
	}
}

func TestOptimize(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a calibration plus a grid search")
	}
	out, _, code := run(t, "optimize", "-slaves", "3", "-workload", "svm", "-top", "3")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"configuration", "reference R1", "reference R2"} {
		if !strings.Contains(out, want) {
			t.Errorf("optimize output missing %q", want)
		}
	}
	out2, _, code := run(t, "optimize", "-slaves", "3", "-workload", "svm", "-descend")
	if code != 0 || !strings.Contains(out2, "best after") {
		t.Errorf("descend output: code=%d", code)
	}
}

func TestRecommend(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a calibration plus a constrained search")
	}
	// A loose deadline keeps the space feasible while still exercising the
	// pruning path; the footer must account for the whole space.
	out, _, code := run(t, "recommend", "-slaves", "3", "-workload", "svm", "-top", "3", "-deadline", "600")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"configuration", "# evaluated"} {
		if !strings.Contains(out, want) {
			t.Errorf("recommend output missing %q", want)
		}
	}
	var evaluated, pruned, total int
	if _, err := fmt.Sscanf(out[strings.Index(out, "# evaluated"):],
		"# evaluated %d, pruned %d, total %d", &evaluated, &pruned, &total); err != nil {
		t.Fatalf("footer did not parse: %v\n%s", err, out)
	}
	if evaluated+pruned != total || total == 0 {
		t.Errorf("accounting: evaluated=%d pruned=%d total=%d", evaluated, pruned, total)
	}

	// -no-prune runs the exhaustive reference path: same candidates, every
	// point evaluated.
	out2, _, code := run(t, "recommend", "-slaves", "3", "-workload", "svm", "-top", "3", "-deadline", "600", "-no-prune")
	if code != 0 {
		t.Fatalf("no-prune exit = %d", code)
	}
	var evaluated2, pruned2, total2 int
	if _, err := fmt.Sscanf(out2[strings.Index(out2, "# evaluated"):],
		"# evaluated %d, pruned %d, total %d", &evaluated2, &pruned2, &total2); err != nil {
		t.Fatalf("no-prune footer did not parse: %v\n%s", err, out2)
	}
	if evaluated2 != total2 || pruned2 != 0 || total2 != total {
		t.Errorf("no-prune accounting: evaluated=%d pruned=%d total=%d", evaluated2, pruned2, total2)
	}
	// Candidate tables (everything between the header and the footer) must
	// agree between the two modes.
	table := func(s string) string {
		return s[strings.Index(s, "configuration"):strings.Index(s, "# evaluated")]
	}
	if table(out) != table(out2) {
		t.Errorf("pruned and no-prune tables differ:\n%s\nvs\n%s", table(out), table(out2))
	}

	if _, _, code := run(t, "recommend", "-deadline", "-5"); code == 0 {
		t.Error("negative deadline should fail")
	}
}

func TestWhatif(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a calibration")
	}
	out, _, code := run(t, "whatif", "-slaves", "3", "-local", "hdd", "-maxcores", "16", "svm")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"total(min)", "bottlenecks", "calibrating"} {
		if !strings.Contains(out, want) {
			t.Errorf("whatif output missing %q", want)
		}
	}
}

func TestPredictSaveLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a calibration")
	}
	path := t.TempDir() + "/model.json"
	out, _, code := run(t, "predict", "-slaves", "3", "-cores", "8", "-save", path, "svm")
	if code != 0 || !strings.Contains(out, "saved calibrated model") {
		t.Fatalf("save: code=%d", code)
	}
	out2, _, code := run(t, "predict", "-slaves", "3", "-cores", "8", "-load", path, "svm")
	if code != 0 || !strings.Contains(out2, "loaded calibrated model") {
		t.Fatalf("load: code=%d out=%q", code, out2)
	}
	if !strings.Contains(out2, "TOTAL") {
		t.Error("loaded-model prediction missing")
	}
	_, _, code = run(t, "predict", "-load", "/nonexistent.json", "svm")
	if code != 1 {
		t.Errorf("missing model file exit = %d", code)
	}
}

// TestRunArtifactTimeout is the acceptance check: an absurdly small
// per-artifact deadline must produce per-artifact failure reports and a
// clean (non-panicking) nonzero exit, not a hang or a crash.
func TestRunArtifactTimeout(t *testing.T) {
	// tab4 regenerates simulator runs (hundreds of ms); tab5 is a static
	// price table that normally beats even a 1ms deadline — together they
	// show a timed-out artifact failing in place while the run continues.
	out, errOut, code := run(t, "run", "-timeout", "1ms", "tab4", "tab5")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(out, "# FAILED tab4") || !strings.Contains(out, "deadline exceeded") {
		t.Errorf("tab4 should fail with a deadline error:\n%s", out)
	}
	if !strings.Contains(errOut, "artifacts failed") {
		t.Errorf("summary error missing: %q", errOut)
	}
}

// TestRunCancelledContext drives runMain with an already-cancelled
// context — the SIGINT path without delivering a signal. Artifacts
// never started must be reported, and the command must still exit in
// an orderly way.
func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errW strings.Builder
	code := runMain(ctx, []string{"run", "tab4", "tab5"}, &out, &errW)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(out.String(), "context canceled") {
		t.Errorf("cancelled artifacts not reported:\n%s", out.String())
	}
}

// TestSimFaultFlags exercises the fault-injection flags end to end: a
// faulty run must carry the faults summary line, and out-of-range
// probabilities must be rejected at flag-validation time.
func TestSimFaultFlags(t *testing.T) {
	out, _, code := run(t, "sim", "-slaves", "3", "-cores", "8",
		"-fail-prob", "0.02", "-fetch-fail-prob", "0.05", "-fault-seed", "7", "svm")
	if code != 0 {
		t.Fatalf("faulty sim exit = %d", code)
	}
	if !strings.Contains(out, "# faults:") {
		t.Errorf("faulty sim output missing the faults summary:\n%s", out)
	}
	_, errOut, code := run(t, "sim", "-fail-prob", "1.5", "svm")
	if code != 1 || !strings.Contains(errOut, "TaskFailureProb") {
		t.Errorf("bad -fail-prob: code=%d err=%q", code, errOut)
	}
	_, errOut, code = run(t, "sim", "-retry-backoff", "-1", "svm")
	if code != 1 || !strings.Contains(errOut, "RetryBackoff") {
		t.Errorf("bad -retry-backoff: code=%d err=%q", code, errOut)
	}
}

// TestDeviceZeroSizeRejected: a zero-sized virtual disk must fail flag
// parsing instead of producing a zero-bandwidth device.
func TestDeviceZeroSizeRejected(t *testing.T) {
	_, errOut, code := run(t, "sim", "-local", "pd-ssd:0GB", "svm")
	if code != 1 || !strings.Contains(errOut, "size must be positive") {
		t.Errorf("zero-sized device: code=%d err=%q", code, errOut)
	}
}

func TestSimStragglersAndSpeculation(t *testing.T) {
	out, _, code := run(t, "sim", "-slaves", "3", "-cores", "8",
		"-stragglers", "0.05", "-speculate", "-seed", "7", "svm")
	if code != 0 || !strings.Contains(out, "subtract") {
		t.Fatalf("straggler sim: code=%d", code)
	}
}

// TestRunWritesProfiles checks the pprof hooks: -cpuprofile and
// -memprofile must leave non-empty profile files behind a successful
// artifact run.
func TestRunWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	_, _, code := run(t, "run", "-cpuprofile", cpu, "-memprofile", mem, "tab5")
	if code != 0 {
		t.Fatalf("run exit = %d", code)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
	// An unwritable profile path must fail up front, not mid-run.
	_, _, code = run(t, "run", "-cpuprofile", filepath.Join(dir, "no-such-dir", "x"), "tab5")
	if code != 1 {
		t.Errorf("bad cpuprofile path exit = %d", code)
	}
}

// TestCampaignRunWritesProfiles checks the same pprof hooks on the
// campaign runner, which is where degraded-mode profiling sessions
// actually happen (docs/CI.md).
func TestCampaignRunWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	config := filepath.Join(dir, "study.json")
	study := `{"name":"prof","base":{"workload":"sql"},"axes":{"nodes":[2],"seeds":[1]}}`
	if err := os.WriteFile(config, []byte(study), 0o644); err != nil {
		t.Fatal(err)
	}
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	ckpt := filepath.Join(dir, "c.jsonl")
	_, errOut, code := run(t, "campaign", "run", "-config", config, "-checkpoint", ckpt,
		"-cpuprofile", cpu, "-memprofile", mem, "-q")
	if code != 0 {
		t.Fatalf("campaign run exit = %d: %s", code, errOut)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
	_, _, code = run(t, "campaign", "run", "-config", config,
		"-cpuprofile", filepath.Join(dir, "no-such-dir", "x"))
	if code != 1 {
		t.Errorf("bad cpuprofile path exit = %d", code)
	}
}
