// Package cli implements the doppio command: it lists and runs the
// paper's experiments, simulates workloads on configurable clusters,
// calibrates and applies the analytical model, profiles I/O, and
// searches Google Cloud configurations for the cost optimum. The thin
// binary in cmd/doppio delegates here so every subcommand is testable
// against an injected writer.
package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/experiments"
	"repro/internal/optimizer"
	"repro/internal/profile"
	"repro/internal/serve"
	"repro/internal/spark"
	"repro/internal/units"
	"repro/internal/workloads"
)

// Main runs the doppio CLI with the given arguments (excluding the
// program name) and returns a process exit code. All output goes to the
// supplied writers, which makes every subcommand testable.
func Main(args []string, stdout, stderr io.Writer) int {
	// Ctrl-C (or SIGTERM from an orchestrator) cancels the context instead
	// of killing the process: long artifact sweeps stop feeding their
	// worker pool and flush whatever reports already completed, and
	// `doppio serve` drains in-flight requests before exiting. A second
	// signal kills the process the usual way (signal.NotifyContext
	// restores the default handler once the context is cancelled).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return runMain(ctx, args, stdout, stderr)
}

// runMain is Main with an injectable context, so tests can exercise
// cancellation without delivering real signals.
func runMain(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	a := &app{out: stdout}
	var err error
	switch args[0] {
	case "experiments":
		err = a.cmdExperiments()
	case "run":
		err = a.cmdRun(ctx, args[1:])
	case "workloads":
		err = a.cmdWorkloads()
	case "sim":
		err = a.cmdSim(args[1:])
	case "predict":
		err = a.cmdPredict(args[1:])
	case "optimize":
		err = a.cmdOptimize(args[1:])
	case "recommend":
		err = a.cmdRecommend(args[1:])
	case "whatif":
		err = a.cmdWhatif(args[1:])
	case "serve":
		err = a.cmdServe(ctx, args[1:])
	case "route":
		err = a.cmdRoute(ctx, args[1:])
	case "campaign":
		err = a.cmdCampaign(ctx, args[1:])
	case "fio":
		err = a.cmdFio()
	case "help", "-h", "--help":
		usage(stdout)
	default:
		usage(stderr)
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "doppio:", err)
		return 1
	}
	return 0
}

// app carries the output sink through the subcommands.
type app struct {
	out io.Writer
}

func usage(w io.Writer) {
	fmt.Fprint(w, `doppio — I/O-aware performance analysis, modeling and optimization

  doppio experiments                 list reproducible paper artifacts
  doppio run [-parallel N] [-timeout D] [-cpuprofile F] [-memprofile F] <id>|all
                                     regenerate tables/figures (e.g. fig7);
                                     Ctrl-C flushes completed artifacts;
                                     -cpuprofile/-memprofile write pprof data
  doppio workloads                   list workloads
  doppio sim [flags] <workload>      simulate a workload on a cluster
  doppio predict [flags] <workload>  calibrated model vs simulator
  doppio optimize [flags]            search cloud configurations for min cost
  doppio recommend [flags]           constrained search with deadline/budget
                                     pruning (see -deadline, -budget, -no-prune)
  doppio whatif [flags] <workload>   sweep core counts with the calibrated model
  doppio serve [flags]               HTTP prediction service (see docs/SERVING.md);
                                     SIGTERM drains in-flight requests
  doppio route [flags]               fault-tolerant sharding front tier over N
                                     serve replicas: consistent-hash routing,
                                     health-checked failover, retries, hedging
  doppio campaign plan|run|merge     resumable, checkpointed parameter studies
                                     (see docs/CAMPAIGN.md); run checkpoints every
                                     completed point, -resume skips them, and
                                     -cpuprofile/-memprofile write pprof data
  doppio fio                         effective-bandwidth sweep of HDD/SSD models
`)
}

// startProfiles begins the optional pprof captures shared by `doppio
// run` and `doppio campaign run`. The returned stop function (never
// nil) ends the CPU profile and writes the heap profile; defer it so
// every exit path flushes the data.
func (a *app) startProfiles(cpuprofile, memprofile string) (func(), error) {
	var stopCPU func()
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("start CPU profile: %v", err)
		}
		stopCPU = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	return func() {
		if stopCPU != nil {
			stopCPU()
		}
		if memprofile == "" {
			return
		}
		f, err := os.Create(memprofile)
		if err != nil {
			fmt.Fprintf(a.out, "# memprofile: %v\n", err)
			return
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile reflects retained memory
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(a.out, "# memprofile: %v\n", err)
		}
	}, nil
}

func (a *app) cmdExperiments() error {
	for _, id := range experiments.IDs() {
		e, err := experiments.Get(id)
		if err != nil {
			return err
		}
		fmt.Fprintf(a.out, "%-14s %s\n", id, e.Title)
	}
	return nil
}

// cmdRun regenerates artifacts through the experiments worker pool:
// independent artifacts run concurrently (-parallel N workers), tables
// are rendered in the requested order regardless of completion order,
// and one failing artifact is reported without cancelling its siblings.
// -timeout bounds each artifact with its own deadline; SIGINT cancels
// the whole set. Either way the reports that did complete are rendered
// before the command returns.
func (a *app) cmdRun(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	format := fs.String("format", "text", "output format: text, csv, md")
	parallel := fs.Int("parallel", 0, "experiment worker pool size (0 = GOMAXPROCS, 1 = serial)")
	timeout := fs.Duration("timeout", 0, "per-artifact deadline (0 = none); timed-out artifacts fail, siblings continue")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the artifact run to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile (after the run) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("run: need an experiment id or 'all'")
	}
	if err := firstError(
		checkNonNegativeInt("parallel", *parallel),
		checkNonNegativeDuration("timeout", *timeout),
	); err != nil {
		return fmt.Errorf("run: %v", err)
	}
	stopProf, err := a.startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		return fmt.Errorf("run: %v", err)
	}
	defer stopProf()
	ids := fs.Args()
	if len(ids) == 1 && ids[0] == "all" {
		ids = experiments.IDs()
	}
	start := time.Now()
	reports, err := experiments.RunSet(ctx, ids, experiments.Options{
		Parallel:        *parallel,
		ArtifactTimeout: *timeout,
	})
	if err != nil {
		return err
	}
	var artifactTime time.Duration
	var calHits, calLookups int
	for _, r := range reports {
		artifactTime += r.Runtime
		calHits += r.CacheHits
		calLookups += r.CacheHits + r.CacheMisses
		if r.Err != nil {
			fmt.Fprintf(a.out, "# FAILED %s: %v\n\n", r.ID, r.Err)
			continue
		}
		if err := r.Table.Render(a.out, *format); err != nil {
			return err
		}
		if *format == "text" {
			fmt.Fprintf(a.out, "# regenerated in %.1fs\n", r.Runtime.Seconds())
		}
		fmt.Fprintln(a.out)
	}
	if len(reports) > 1 && *format == "text" {
		wall := time.Since(start).Seconds()
		if wall <= 0 {
			wall = 1e-9
		}
		fmt.Fprintf(a.out, "# total: %d artifacts in %.1fs wall, %.1fs artifact time (%.1fx pool speedup)\n",
			len(reports), wall, artifactTime.Seconds(), artifactTime.Seconds()/wall)
		if calLookups > 0 {
			fmt.Fprintf(a.out, "# calibration cache: %d lookups, %d hits (each miss costs 4 sample runs)\n",
				calLookups, calHits)
		}
	}
	if failed := experiments.Failed(reports); len(failed) > 0 {
		return fmt.Errorf("run: %d of %d artifacts failed", len(failed), len(reports))
	}
	return nil
}

func (a *app) cmdWorkloads() error {
	for _, n := range workloads.Names() {
		w, err := workloads.Get(n)
		if err != nil {
			return err
		}
		fmt.Fprintf(a.out, "%-14s %s\n", n, w.Description)
	}
	return nil
}

// clusterFlags defines the shared cluster-shape flags.
type clusterFlags struct {
	slaves     *int
	cores      *int
	hdfs       *string
	local      *string
	heapGB     *float64
	seed       *uint64
	stragglers *float64
	speculate  *bool
	failProb   *float64
	fetchProb  *float64
	maxFail    *int
	backoff    *float64
	faultSeed  *uint64
}

func addClusterFlags(fs *flag.FlagSet) clusterFlags {
	return clusterFlags{
		slaves:     fs.Int("slaves", 10, "worker node count N"),
		cores:      fs.Int("cores", 36, "executor cores per node P"),
		hdfs:       fs.String("hdfs", "ssd", "HDFS device: hdd, ssd, pd-standard:SIZE, pd-ssd:SIZE"),
		local:      fs.String("local", "ssd", "Spark Local device: hdd, ssd, pd-standard:SIZE, pd-ssd:SIZE"),
		heapGB:     fs.Float64("heap-gb", 0, "executor heap per node in GB (0 = unlimited memory, legacy behaviour)"),
		seed:       fs.Uint64("seed", 0, "task-time jitter seed (repeat-run error bars)"),
		stragglers: fs.Float64("stragglers", 0, "fraction of tasks running 5x slower"),
		speculate:  fs.Bool("speculate", false, "enable Spark-style speculative execution"),
		failProb:   fs.Float64("fail-prob", 0, "per-attempt task failure probability (fault injection)"),
		fetchProb:  fs.Float64("fetch-fail-prob", 0, "per-attempt shuffle-fetch failure probability"),
		maxFail:    fs.Int("max-task-failures", 0, "attempt budget before the app aborts (0 = Spark default 4)"),
		backoff:    fs.Float64("retry-backoff", 0, "base retry delay in seconds (0 = 1s default)"),
		faultSeed:  fs.Uint64("fault-seed", 0, "fault-injection seed (mixed with -seed)"),
	}
}

func (c clusterFlags) config() (spark.ClusterConfig, error) {
	hd, err := parseDevice(*c.hdfs)
	if err != nil {
		return spark.ClusterConfig{}, err
	}
	ld, err := parseDevice(*c.local)
	if err != nil {
		return spark.ClusterConfig{}, err
	}
	cfg := spark.DefaultTestbed(*c.slaves, *c.cores, hd, ld)
	cfg.Memory = spark.MemoryConfig{HeapGB: *c.heapGB}
	cfg.Seed = *c.seed
	if *c.stragglers > 0 {
		cfg.StragglerFraction = *c.stragglers
		cfg.StragglerSlowdown = 5
	}
	cfg.Speculation = *c.speculate
	cfg.Faults = spark.FaultConfig{
		TaskFailureProb:         *c.failProb,
		ShuffleFetchFailureProb: *c.fetchProb,
		MaxTaskFailures:         *c.maxFail,
		RetryBackoff:            spark.DurationParam(*c.backoff),
		Seed:                    *c.faultSeed,
	}
	// Surface bad flag combinations here, with flag vocabulary, instead
	// of letting spark.Run fail later with config vocabulary.
	if err := cfg.Validate(); err != nil {
		return spark.ClusterConfig{}, err
	}
	return cfg, nil
}

// parseDevice understands "hdd", "ssd", "pd-standard:2TB", "pd-ssd:200GB".
// The vocabulary lives in cloud.ParseDevice so the serve API shares it.
func parseDevice(s string) (disk.Device, error) {
	return cloud.ParseDevice(s)
}

func (a *app) cmdSim(args []string) error {
	fs := flag.NewFlagSet("sim", flag.ContinueOnError)
	cf := addClusterFlags(fs)
	iostat := fs.Bool("iostat", false, "print the per-stage iostat report")
	blocked := fs.Bool("blocked", false, "print the blocked-time analysis")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("sim: need exactly one workload (see 'doppio workloads')")
	}
	w, err := workloads.Get(fs.Arg(0))
	if err != nil {
		return err
	}
	cfg, err := cf.config()
	if err != nil {
		return err
	}
	res, err := spark.Run(cfg, w.Build(cfg))
	if err != nil {
		return err
	}
	if _, err := res.WriteTo(a.out); err != nil {
		return err
	}
	if *iostat {
		fmt.Fprintln(a.out)
		if err := profile.WriteIostat(a.out, profile.Iostat(res)); err != nil {
			return err
		}
	}
	if *blocked {
		fmt.Fprintln(a.out)
		if err := profile.WriteBlockedTime(a.out, profile.BlockedTimeAnalysis(res)); err != nil {
			return err
		}
	}
	return nil
}

func (a *app) cmdPredict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ContinueOnError)
	cf := addClusterFlags(fs)
	save := fs.String("save", "", "write the calibrated model to this JSON file")
	load := fs.String("load", "", "load a previously saved model instead of calibrating")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("predict: need exactly one workload")
	}
	w, err := workloads.Get(fs.Arg(0))
	if err != nil {
		return err
	}
	cfg, err := cf.config()
	if err != nil {
		return err
	}

	var model core.AppModel
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			return err
		}
		defer f.Close()
		if model, err = core.ReadJSON(f); err != nil {
			return err
		}
		fmt.Fprintf(a.out, "# loaded calibrated model from %s\n", *load)
	} else {
		// Calibrate on the same slave count per the paper's Section VI-1.
		ssd, hdd := disk.NewSSD(), disk.NewHDD()
		base := spark.DefaultTestbed(cfg.Slaves, 1, ssd, ssd)
		fmt.Fprintf(a.out, "# calibrating (4 sample runs, %d slaves)...\n", cfg.Slaves)
		cal, err := core.Calibrate(base, ssd, hdd, w.Build)
		if err != nil {
			return err
		}
		for _, warn := range cal.Warnings {
			fmt.Fprintln(a.out, "# warning:", warn)
		}
		model = cal.Model
		if *save != "" {
			f, err := os.Create(*save)
			if err != nil {
				return err
			}
			if err := model.WriteJSON(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(a.out, "# saved calibrated model to %s\n", *save)
		}
	}

	res, err := spark.Run(cfg, w.Build(cfg))
	if err != nil {
		return err
	}
	pred, err := model.Predict(core.PlatformFor(cfg), core.ModeDoppio)
	if err != nil {
		return err
	}
	fmt.Fprintf(a.out, "%-20s %10s %10s %8s %s\n", "stage", "exp(min)", "model(min)", "err", "bottleneck")
	for i, s := range res.Stages {
		p := pred.Stages[i]
		fmt.Fprintf(a.out, "%-20s %10.1f %10.1f %7.1f%% %s\n",
			s.Name, s.Duration().Minutes(), p.T.Minutes(),
			core.ErrorRate(p.T, s.Duration())*100, p.Bottleneck)
	}
	fmt.Fprintf(a.out, "%-20s %10.1f %10.1f %7.1f%%\n", "TOTAL",
		res.Total.Minutes(), pred.Total.Minutes(),
		core.ErrorRate(pred.Total, res.Total)*100)
	return nil
}

func (a *app) cmdOptimize(args []string) error {
	fs := flag.NewFlagSet("optimize", flag.ContinueOnError)
	slaves := fs.Int("slaves", 10, "worker node count")
	workload := fs.String("workload", "gatk4", "workload to optimise for")
	top := fs.Int("top", 10, "show the N cheapest configurations")
	descend := fs.Bool("descend", false, "use coordinate descent instead of the full grid")
	heapGBs := fs.String("heap-gbs", "", "comma-separated executor heap sizes in GB to add as a search axis (empty = memory-free space)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	heaps, err := parseHeapGBs(*heapGBs)
	if err != nil {
		return fmt.Errorf("optimize: %v", err)
	}
	w, err := workloads.Get(*workload)
	if err != nil {
		return err
	}

	ssd := cloud.NewDisk(cloud.PDSSD, 500*units.GB)
	hdd := cloud.NewDisk(cloud.PDStandard, 200*units.GB)
	base := spark.DefaultTestbed(3, 1, ssd, ssd)
	fmt.Fprintln(a.out, "# calibrating on virtual disks (4 sample runs, 3 slaves)...")
	cal, err := core.Calibrate(base, ssd, hdd, w.Build)
	if err != nil {
		return err
	}
	eval := optimizer.ModelEvaluator(cal.Model)
	pricing := cloud.DefaultPricing()
	space := optimizer.DefaultSpace(*slaves)
	space.HeapGBs = heaps

	if *descend {
		start := cloud.ClusterSpec{
			Slaves: *slaves, VCPUs: 16,
			HDFSType: cloud.PDStandard, HDFSSize: units.TB,
			LocalType: cloud.PDStandard, LocalSize: units.TB,
		}
		best, evals, err := optimizer.CoordinateDescent(space, start, eval, pricing)
		if err != nil {
			return err
		}
		fmt.Fprintf(a.out, "best after %d evaluations (space has %d):\n  %v  time=%.0fmin  cost=%s\n",
			evals, space.Size(), best.Spec, best.Time.Minutes(), usd(best.Cost))
		return nil
	}

	cands, err := optimizer.GridSearch(space, eval, pricing)
	if err != nil {
		return err
	}
	fmt.Fprintf(a.out, "%-55s %10s %8s\n", "configuration", "time(min)", "cost")
	for i, c := range cands {
		if i >= *top {
			break
		}
		fmt.Fprintf(a.out, "%-55s %10.0f %8s\n", c.Spec.String(), c.Time.Minutes(), usd(c.Cost))
	}
	for _, ref := range []struct {
		name string
		spec cloud.ClusterSpec
	}{{"R1", cloud.R1(*slaves, 16)}, {"R2", cloud.R2(*slaves, 16)}} {
		d, err := eval.Evaluate(ref.spec)
		if err != nil {
			return err
		}
		c := ref.spec.Cost(d, pricing)
		fmt.Fprintf(a.out, "reference %s: %v time=%.0fmin cost=%s (optimal saves %.0f%%)\n",
			ref.name, ref.spec, d.Minutes(), usd(c), (1-cands[0].Cost/c)*100)
	}
	return nil
}

// cmdRecommend is the constrained flavour of cmdOptimize: it searches
// the same space but under a deadline and/or budget, using
// PrunedSearch's Eq. 1 monotonicity bounds to skip configurations that
// provably cannot be feasible. -no-prune runs the exhaustive
// GridSearch-then-Filter reference path instead — same answer, every
// point evaluated — so the two modes A/B the pruning on real
// calibrations.
func (a *app) cmdRecommend(args []string) error {
	fs := flag.NewFlagSet("recommend", flag.ContinueOnError)
	slaves := fs.Int("slaves", 10, "worker node count")
	workload := fs.String("workload", "gatk4", "workload to optimise for")
	top := fs.Int("top", 10, "show the N cheapest feasible configurations")
	deadline := fs.Float64("deadline", 0, "longest admissible runtime in minutes (0 = none)")
	budget := fs.Float64("budget", 0, "highest admissible cost in dollars (0 = none)")
	noPrune := fs.Bool("no-prune", false, "evaluate the full grid and filter (reference path)")
	heapGBs := fs.String("heap-gbs", "", "comma-separated executor heap sizes in GB to add as a search axis (empty = memory-free space)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	heaps, err := parseHeapGBs(*heapGBs)
	if err != nil {
		return fmt.Errorf("recommend: %v", err)
	}
	if *deadline < 0 {
		return fmt.Errorf("recommend: -deadline must be >= 0")
	}
	if *budget < 0 {
		return fmt.Errorf("recommend: -budget must be >= 0")
	}
	w, err := workloads.Get(*workload)
	if err != nil {
		return err
	}

	ssd := cloud.NewDisk(cloud.PDSSD, 500*units.GB)
	hdd := cloud.NewDisk(cloud.PDStandard, 200*units.GB)
	base := spark.DefaultTestbed(3, 1, ssd, ssd)
	fmt.Fprintln(a.out, "# calibrating on virtual disks (4 sample runs, 3 slaves)...")
	cal, err := core.Calibrate(base, ssd, hdd, w.Build)
	if err != nil {
		return err
	}
	eval := optimizer.ModelEvaluator(cal.Model)
	pricing := cloud.DefaultPricing()
	space := optimizer.DefaultSpace(*slaves)
	space.HeapGBs = heaps
	cons := optimizer.Constraints{
		Deadline: time.Duration(*deadline * float64(time.Minute)),
		Budget:   *budget,
	}

	var rep optimizer.SearchReport
	if *noPrune {
		cands, err := optimizer.GridSearch(space, eval, pricing)
		if err != nil {
			return err
		}
		rep = optimizer.SearchReport{
			Candidates: optimizer.Filter(cands, cons),
			Evaluated:  space.Size(),
			Total:      space.Size(),
		}
	} else {
		rep, err = optimizer.PrunedSearch(space, eval, pricing, cons)
		if err != nil {
			return err
		}
	}

	if len(rep.Candidates) == 0 {
		fmt.Fprintln(a.out, "no feasible configuration under the given constraints")
	} else {
		fmt.Fprintf(a.out, "%-55s %10s %8s\n", "configuration", "time(min)", "cost")
		for i, c := range rep.Candidates {
			if i >= *top {
				break
			}
			fmt.Fprintf(a.out, "%-55s %10.0f %8s\n", c.Spec.String(), c.Time.Minutes(), usd(c.Cost))
		}
	}
	fmt.Fprintf(a.out, "# evaluated %d, pruned %d, total %d configurations\n",
		rep.Evaluated, rep.Pruned, rep.Total)
	return nil
}

func usd(v float64) string { return fmt.Sprintf("$%.2f", v) }

// parseHeapGBs turns a -heap-gbs value ("4,16,64") into the search
// space's heap axis. Empty means no axis: the legacy memory-free space.
func parseHeapGBs(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("heap-gbs: %q is not a number", p)
		}
		if v <= 0 || v > 4096 {
			return nil, fmt.Errorf("heap-gbs: %v outside (0, 4096]", v)
		}
		out = append(out, v)
	}
	return out, nil
}

func (a *app) cmdFio() error {
	for _, d := range []disk.Device{disk.NewHDD(), disk.NewSSD()} {
		rep := disk.Fio(d, nil)
		if _, err := rep.WriteTo(a.out); err != nil {
			return err
		}
		fmt.Fprintln(a.out)
	}
	return nil
}

// cmdServe runs the HTTP prediction service until the context is
// cancelled (SIGINT/SIGTERM), then drains: in-flight requests finish
// within -drain-timeout and readiness flips off first so load balancers
// stop routing here.
func (a *app) cmdServe(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	maxInflight := fs.Int("max-inflight", 64, "concurrent API request bound; excess sheds with 429")
	reqTimeout := fs.Duration("request-timeout", 30*time.Second, "per-request computation deadline (503 on expiry)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long in-flight requests get to finish on shutdown")
	cacheSize := fs.Int("cache-size", 512, "bounded result/calibration cache entries")
	accessLog := fs.String("access-log", "", `JSON access log destination: a file path, or "-" for stdout (empty = off)`)
	replicaID := fs.String("replica-id", "", "name stamped in X-Served-By and the access log (empty = bound host:port)")
	snapshotPath := fs.String("cache-snapshot", "", "cache snapshot file for warm starts: restored on boot, rewritten periodically and on drain (empty = off)")
	snapshotInterval := fs.Duration("cache-snapshot-interval", 30*time.Second, "periodic snapshot write period (with -cache-snapshot)")
	var peers replicaList
	fs.Var(&peers, "peers", "comma-separated replica host:port peers (including this one) for cross-replica read-through; requires -replica-id (repeatable)")
	peerTimeout := fs.Duration("peer-timeout", 150*time.Millisecond, "per-peek deadline for cross-replica read-through")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("serve: unexpected argument %q", fs.Arg(0))
	}
	if err := firstError(
		checkListenAddr("addr", *addr),
		checkPositiveInt("max-inflight", *maxInflight),
		checkNonNegativeDuration("request-timeout", *reqTimeout),
		checkNonNegativeDuration("drain-timeout", *drainTimeout),
		checkPositiveInt("cache-size", *cacheSize),
		checkNonNegativeDuration("cache-snapshot-interval", *snapshotInterval),
		checkNonNegativeDuration("peer-timeout", *peerTimeout),
	); err != nil {
		return fmt.Errorf("serve: %v", err)
	}
	if len(peers) > 0 && *replicaID == "" {
		return fmt.Errorf("serve: -peers requires -replica-id (the ring identity of this replica)")
	}
	var logW io.Writer
	switch *accessLog {
	case "":
	case "-":
		logW = a.out
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("serve: %v", err)
		}
		defer f.Close()
		logW = f
	}
	srv, err := serve.New(serve.Config{
		Addr:             *addr,
		MaxInFlight:      *maxInflight,
		RequestTimeout:   *reqTimeout,
		DrainTimeout:     *drainTimeout,
		CacheEntries:     *cacheSize,
		AccessLog:        logW,
		ReplicaID:        *replicaID,
		SnapshotPath:     *snapshotPath,
		SnapshotInterval: *snapshotInterval,
		Peers:            peers,
		PeerTimeout:      *peerTimeout,
	})
	if err != nil {
		return err
	}
	go func() {
		<-srv.Started()
		fmt.Fprintf(a.out, "# doppio serve listening on %s (Ctrl-C or SIGTERM drains)\n", srv.Addr())
	}()
	return srv.Run(ctx)
}

// cmdWhatif calibrates once, then sweeps the per-node core count with
// the analytical model — the capacity-planning question (how many cores
// before I/O stops the scaling?) that the paper's break-point analysis
// answers without burning cluster hours.
func (a *app) cmdWhatif(args []string) error {
	fs := flag.NewFlagSet("whatif", flag.ContinueOnError)
	cf := addClusterFlags(fs)
	maxP := fs.Int("maxcores", 64, "largest per-node core count to sweep")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("whatif: need exactly one workload")
	}
	w, err := workloads.Get(fs.Arg(0))
	if err != nil {
		return err
	}
	cfg, err := cf.config()
	if err != nil {
		return err
	}
	ssd, hddProbe := disk.NewSSD(), disk.NewHDD()
	base := spark.DefaultTestbed(cfg.Slaves, 1, ssd, ssd)
	fmt.Fprintln(a.out, "# calibrating (4 sample runs)...")
	cal, err := core.Calibrate(base, ssd, hddProbe, w.Build)
	if err != nil {
		return err
	}
	fmt.Fprintf(a.out, "%6s %12s %-10s\n", "P", "total(min)", "bottlenecks")
	prev := time.Duration(0)
	for p := 1; p <= *maxP; p *= 2 {
		pl := core.PlatformFor(cfg.WithCores(p))
		pred, err := cal.Model.Predict(pl, core.ModeDoppio)
		if err != nil {
			return err
		}
		bn := map[string]int{}
		for _, s := range pred.Stages {
			bn[s.Bottleneck]++
		}
		var parts []string
		for _, k := range []string{"scale", "read", "write", "device", "memory"} {
			if bn[k] > 0 {
				parts = append(parts, fmt.Sprintf("%s:%d", k, bn[k]))
			}
		}
		marker := ""
		if prev > 0 && pred.Total.Seconds() > prev.Seconds()*0.95 {
			marker = "  <- scaling exhausted (P > B for the binding stages)"
		}
		fmt.Fprintf(a.out, "%6d %12.1f %-10s%s\n", p, pred.Total.Minutes(), strings.Join(parts, " "), marker)
		prev = pred.Total
	}
	return nil
}
