package cluster

import (
	"context"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
)

// replica is one backend `doppio serve` process as the router sees it:
// its identity (the host:port the ring shards by), its base URL, its
// circuit breaker, and its health state. Health is driven from two
// sides — an active /readyz probe loop and passive observation of
// proxied-request outcomes — because probes alone react a full interval
// late and passive signals alone can't notice a recovery on a replica
// that receives no traffic (its shard moved away).
type replica struct {
	id      string // host:port; ring member and metric label
	base    string // http://host:port
	breaker *Breaker

	healthyGauge *obs.Gauge // doppio_cluster_replica_healthy{replica}
	breakerGauge *obs.Gauge // doppio_cluster_breaker_state{replica}

	mu           sync.Mutex
	probeHealthy bool
	probeFails   int
	probeOKs     int
	lastErr      string
}

// available reports whether the router should prefer this replica: the
// probes say ready and the breaker is not open. (An open breaker's
// half-open trial is granted inside Allow at attempt time.)
func (r *replica) available() bool {
	r.mu.Lock()
	ok := r.probeHealthy
	r.mu.Unlock()
	return ok && r.breaker.State() != BreakerOpen
}

// probeOK reports just the active-probe view, without the breaker. The
// attempt picker uses it so that breaker admission stays with Allow —
// which must be the one to consume a half-open trial slot.
func (r *replica) probeOK() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.probeHealthy
}

// refreshGauges re-exports the health and breaker-state gauges; called
// after every observation so /metrics always shows the current view.
func (r *replica) refreshGauges() {
	if r.available() {
		r.healthyGauge.Set(1)
	} else {
		r.healthyGauge.Set(0)
	}
	r.breakerGauge.Set(int64(r.breaker.State()))
}

// observeProbe folds one active /readyz result into the health state.
// failAfter consecutive failures mark the replica down; recoverAfter
// consecutive successes mark it back up and reset the breaker — an
// actively-ready replica should not stay quarantined by a breaker that
// opened while it was dead.
func (r *replica) observeProbe(ok bool, err error, failAfter, recoverAfter int) {
	r.mu.Lock()
	if ok {
		r.probeOKs++
		r.probeFails = 0
		r.lastErr = ""
		if !r.probeHealthy && r.probeOKs >= recoverAfter {
			r.probeHealthy = true
			r.mu.Unlock()
			r.breaker.Success()
			r.refreshGauges()
			return
		}
	} else {
		r.probeFails++
		r.probeOKs = 0
		if err != nil {
			r.lastErr = err.Error()
		}
		if r.probeHealthy && r.probeFails >= failAfter {
			r.probeHealthy = false
		}
	}
	r.mu.Unlock()
	r.refreshGauges()
}

// observeResult folds one proxied-request outcome into the breaker (and
// thereby the health gauge). Passive failure is what catches a replica
// dying between probes: the first few requests after a SIGKILL fail
// fast, trip the breaker, and traffic routes around the corpse before
// the prober has noticed.
func (r *replica) observeResult(ok bool) {
	if ok {
		r.breaker.Success()
	} else {
		r.breaker.Failure()
	}
	r.refreshGauges()
}

// probeLoop drives the active /readyz probes until ctx is cancelled.
// All replicas are probed concurrently each tick; a tick is skipped if
// the previous one is somehow still running (slow probe timeouts).
func (rt *Router) probeLoop(ctx context.Context) {
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		var wg sync.WaitGroup
		for _, rep := range rt.replicas {
			wg.Add(1)
			go func(rep *replica) {
				defer wg.Done()
				ok, err := rt.probe(ctx, rep)
				rep.observeProbe(ok, err, rt.cfg.FailAfter, rt.cfg.RecoverAfter)
				rt.probes.With(rep.id, okLabel(ok)).Inc()
			}(rep)
		}
		wg.Wait()
	}
}

// probe issues one GET /readyz with its own timeout.
func (rt *Router) probe(ctx context.Context, rep *replica) (bool, error) {
	pctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, rep.base+"/readyz", nil)
	if err != nil {
		return false, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
	return resp.StatusCode == http.StatusOK, nil
}

func okLabel(ok bool) string {
	if ok {
		return "ok"
	}
	return "fail"
}
