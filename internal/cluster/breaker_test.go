package cluster

import (
	"testing"
	"time"
)

// fakeClock drives Breaker transitions deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(threshold, cooldown)
	b.now = clk.now
	return b, clk
}

func TestBreakerTransitions(t *testing.T) {
	// Each step is one operation against the breaker plus the state the
	// breaker must be in afterwards. op: "fail", "ok", "allow" (expect
	// granted), "deny" (expect rejected), "sleep" (advance past cooldown).
	type step struct {
		op   string
		want BreakerState
	}
	cases := []struct {
		name  string
		steps []step
	}{
		{"trips at threshold", []step{
			{"fail", BreakerClosed},
			{"fail", BreakerClosed},
			{"fail", BreakerOpen},
		}},
		{"success resets the streak", []step{
			{"fail", BreakerClosed},
			{"fail", BreakerClosed},
			{"ok", BreakerClosed},
			{"fail", BreakerClosed},
			{"fail", BreakerClosed},
			{"fail", BreakerOpen},
		}},
		{"open rejects until cooldown then half-opens", []step{
			{"fail", BreakerClosed},
			{"fail", BreakerClosed},
			{"fail", BreakerOpen},
			{"deny", BreakerOpen},
			{"sleep", BreakerOpen},
			{"allow", BreakerHalfOpen},
		}},
		{"half-open trial success closes", []step{
			{"fail", BreakerClosed},
			{"fail", BreakerClosed},
			{"fail", BreakerOpen},
			{"sleep", BreakerOpen},
			{"allow", BreakerHalfOpen},
			{"ok", BreakerClosed},
			{"allow", BreakerClosed},
		}},
		{"half-open trial failure reopens", []step{
			{"fail", BreakerClosed},
			{"fail", BreakerClosed},
			{"fail", BreakerOpen},
			{"sleep", BreakerOpen},
			{"allow", BreakerHalfOpen},
			{"fail", BreakerOpen},
			{"deny", BreakerOpen},
		}},
		{"half-open admits exactly one trial", []step{
			{"fail", BreakerClosed},
			{"fail", BreakerClosed},
			{"fail", BreakerOpen},
			{"sleep", BreakerOpen},
			{"allow", BreakerHalfOpen},
			{"deny", BreakerHalfOpen},
			{"ok", BreakerClosed},
		}},
		{"failure while open re-arms the cooldown", []step{
			{"fail", BreakerClosed},
			{"fail", BreakerClosed},
			{"fail", BreakerOpen},
			{"sleep", BreakerOpen},
			// A last-resort attempt (every replica down) failed while open:
			// the clock restarts, so the next Allow must still be denied.
			{"fail", BreakerOpen},
			{"deny", BreakerOpen},
			{"sleep", BreakerOpen},
			{"allow", BreakerHalfOpen},
		}},
	}
	const cooldown = 5 * time.Second
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, clk := newTestBreaker(3, cooldown)
			for i, st := range tc.steps {
				switch st.op {
				case "fail":
					b.Failure()
				case "ok":
					b.Success()
				case "allow":
					if !b.Allow() {
						t.Fatalf("step %d: Allow denied, want granted", i)
					}
				case "deny":
					if b.Allow() {
						t.Fatalf("step %d: Allow granted, want denied", i)
					}
				case "sleep":
					clk.advance(cooldown + time.Millisecond)
				default:
					t.Fatalf("step %d: unknown op %q", i, st.op)
				}
				if got := b.State(); got != st.want {
					t.Fatalf("step %d (%s): state %v, want %v", i, st.op, got, st.want)
				}
			}
		})
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := NewBreaker(0, 0)
	if b.threshold != 3 || b.cooldown != 3*time.Second {
		t.Fatalf("defaults: threshold=%d cooldown=%v, want 3/3s", b.threshold, b.cooldown)
	}
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker denied request %d", i)
		}
		b.Failure()
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state %v after threshold failures, want open", b.State())
	}
}

func TestBreakerStateString(t *testing.T) {
	for s, want := range map[BreakerState]string{
		BreakerClosed: "closed", BreakerHalfOpen: "half-open", BreakerOpen: "open", BreakerState(9): "unknown",
	} {
		if got := s.String(); got != want {
			t.Fatalf("BreakerState(%d).String() = %q, want %q", s, got, want)
		}
	}
}
