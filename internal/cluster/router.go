package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/shard"
)

// maxBodyBytes mirrors the replica-side request bound.
const maxBodyBytes = 1 << 20

// Router is the sharding, fault-tolerant front tier.
type Router struct {
	cfg      Config
	ring     *shard.Ring
	replicas []*replica // in ring (sorted-id) order
	byID     map[string]*replica
	client   *http.Client
	reg      *obs.Registry
	health   *obs.Health
	handler  http.Handler
	flights  *flightTable
	hot      *hotCache // nil when HotCacheTTL is 0

	requests        *obs.CounterVec   // doppio_cluster_requests_total{code}
	latency         *obs.HistogramVec // doppio_cluster_request_duration_seconds{outcome}
	retries         *obs.Counter      // doppio_cluster_retries_total
	failovers       *obs.Counter      // doppio_cluster_failovers_total
	hedges          *obs.Counter      // doppio_cluster_hedges_total
	hedgeWins       *obs.Counter      // doppio_cluster_hedge_wins_total
	replicaRequests *obs.CounterVec   // doppio_cluster_replica_requests_total{replica,code}
	probes          *obs.CounterVec   // doppio_cluster_probes_total{replica,result}
	coalesced       *obs.Counter      // doppio_cluster_coalesced_total
	hotHits         *obs.Counter      // doppio_cluster_hotcache_hits_total
	hotMisses       *obs.Counter      // doppio_cluster_hotcache_misses_total

	logMu   sync.Mutex
	started chan struct{}
	addr    atomic.Value // string, set once listening
}

// New assembles a Router (no listener yet; see Run and Handler).
func New(cfg Config) (*Router, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	specs, err := sortedReplicaSpecs(cfg.Replicas)
	if err != nil {
		return nil, err
	}
	ids := make([]string, len(specs))
	for i, sp := range specs {
		ids[i] = sp[0]
	}
	ring, err := shard.NewRing(ids, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	rt := &Router{
		cfg:    cfg,
		ring:   ring,
		byID:   make(map[string]*replica, len(specs)),
		reg:    obs.NewRegistry(),
		health: obs.NewHealth(),
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}},
		started: make(chan struct{}),
		flights: newFlightTable(),
		hot:     newHotCache(cfg.HotCacheEntries, cfg.HotCacheTTL),
	}
	rt.requests = rt.reg.NewCounterVec("doppio_cluster_requests_total",
		"Client requests routed, by final status code.", "code")
	rt.latency = rt.reg.NewHistogramVec("doppio_cluster_request_duration_seconds",
		"Client-observed routing latency across all attempts, by outcome.", nil, "outcome")
	rt.retries = rt.reg.NewCounter("doppio_cluster_retries_total",
		"Attempts retried after a connect error or 5xx.")
	rt.failovers = rt.reg.NewCounter("doppio_cluster_failovers_total",
		"Requests served by a replica other than their hash-ring primary.")
	rt.hedges = rt.reg.NewCounter("doppio_cluster_hedges_total",
		"Hedged duplicate requests launched after the latency threshold.")
	rt.hedgeWins = rt.reg.NewCounter("doppio_cluster_hedge_wins_total",
		"Hedged duplicates that answered before the primary attempt.")
	rt.replicaRequests = rt.reg.NewCounterVec("doppio_cluster_replica_requests_total",
		"Proxied attempts, by replica and status code (error = transport failure).", "replica", "code")
	rt.probes = rt.reg.NewCounterVec("doppio_cluster_probes_total",
		"Active /readyz probes, by replica and result.", "replica", "result")
	rt.coalesced = rt.reg.NewCounter("doppio_cluster_coalesced_total",
		"Requests answered by joining another request's in-flight upstream call.")
	rt.hotHits = rt.reg.NewCounter("doppio_cluster_hotcache_hits_total",
		"Requests replayed from the router's TTL'd hot-response cache.")
	rt.hotMisses = rt.reg.NewCounter("doppio_cluster_hotcache_misses_total",
		"Canonical requests the hot cache could not answer (cache enabled only).")
	rt.reg.NewGaugeFunc("doppio_cluster_hotcache_entries",
		"Live entries in the hot-response cache.",
		func() float64 { return float64(rt.hot.len()) })
	healthyVec := rt.reg.NewGaugeVec("doppio_cluster_replica_healthy",
		"1 while the replica is probe-healthy with a non-open breaker.", "replica")
	breakerVec := rt.reg.NewGaugeVec("doppio_cluster_breaker_state",
		"Circuit-breaker position per replica: 0 closed, 1 half-open, 2 open.", "replica")

	for _, sp := range specs {
		rep := &replica{
			id:           sp[0],
			base:         sp[1],
			breaker:      NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
			healthyGauge: healthyVec.With(sp[0]),
			breakerGauge: breakerVec.With(sp[0]),
			// Start optimistic: the first probe (or the first passive
			// failure) corrects a wrong guess within one interval, while a
			// pessimistic start would 502 every request until the prober's
			// first pass even in a perfectly healthy cluster.
			probeHealthy: true,
		}
		rep.refreshGauges()
		rt.replicas = append(rt.replicas, rep)
		rt.byID[rep.id] = rep
		// Resolve common series now so /metrics lists every replica from
		// the first scrape.
		rt.probes.With(rep.id, "ok")
		rt.probes.With(rep.id, "fail")
	}

	mux := http.NewServeMux()
	mux.Handle("GET /healthz", rt.health.HealthzHandler())
	mux.HandleFunc("GET /readyz", rt.handleReadyz)
	mux.Handle("GET /metrics", rt.reg.Handler())
	mux.HandleFunc("/api/", rt.handleProxy)
	rt.handler = mux
	return rt, nil
}

// Handler returns the full route tree; tests drive it through httptest.
func (rt *Router) Handler() http.Handler { return rt.handler }

// Ring exposes the hash ring (read-only) so tools and tests can reason
// about key placement.
func (rt *Router) Ring() *shard.Ring { return rt.ring }

// Addr returns the bound listen address once Run has started.
func (rt *Router) Addr() string {
	if v := rt.addr.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// Started is closed once the listener is accepting.
func (rt *Router) Started() <-chan struct{} { return rt.started }

// StartProbes launches the active health-probe loop; it stops when ctx
// is cancelled. Run calls this; Handler-only tests may call it
// directly.
func (rt *Router) StartProbes(ctx context.Context) {
	go rt.probeLoop(ctx)
}

// Run listens and routes until ctx is cancelled, then drains like the
// replicas do: readiness flips off first, in-flight requests get
// DrainTimeout to finish.
func (rt *Router) Run(ctx context.Context) error {
	ln, err := net.Listen("tcp", rt.cfg.Addr)
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	rt.addr.Store(ln.Addr().String())
	srv := &http.Server{
		Handler:           rt.handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	probeCtx, stopProbes := context.WithCancel(context.Background())
	defer stopProbes()
	rt.StartProbes(probeCtx)
	rt.health.SetReady(true)
	close(rt.started)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		return fmt.Errorf("cluster: %w", err)
	case <-ctx.Done():
	}
	rt.health.SetReady(false)
	dctx, cancel := context.WithTimeout(context.Background(), rt.cfg.DrainTimeout)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		return fmt.Errorf("cluster: drain: %w", err)
	}
	return nil
}

// handleReadyz reports the router ready while it is accepting AND at
// least one replica is available — a router fronting only corpses
// should be pulled from its own load balancer.
func (rt *Router) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !rt.health.Ready() {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("draining\n"))
		return
	}
	for _, rep := range rt.replicas {
		if rep.available() {
			w.WriteHeader(http.StatusOK)
			w.Write([]byte("ready\n"))
			return
		}
	}
	w.WriteHeader(http.StatusServiceUnavailable)
	w.Write([]byte("no healthy replicas\n"))
}

// errorResponse mirrors the replica error body shape.
type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body, _ := json.Marshal(errorResponse{Error: err.Error()})
	w.Write(append(body, '\n'))
}

// handleProxy is the catch-all /api/ entry: canonicalize, shard, and
// run the robustness stack.
func (rt *Router) handleProxy(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading request body: %v", err))
		return
	}
	if len(body) > maxBodyBytes {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("request body over %d bytes", maxBodyBytes))
		return
	}
	uri := r.URL.Path
	if r.URL.RawQuery != "" {
		uri += "?" + r.URL.RawQuery
	}
	// The shard key IS the replica cache key whenever the request is
	// canonicalizable, so byte-identical cache hits survive sharding. A
	// request no replica could canonicalize (it will be answered 400/404)
	// still shards deterministically, by its raw bytes.
	key, canonical := serve.CanonicalShardKey(r.Method, r.URL.Path, body)
	if !canonical {
		key = r.Method + " " + uri + "\x00" + string(body)
	}
	seq := rt.ring.Sequence(key)
	order := make([]*replica, len(seq))
	for i, id := range seq {
		order[i] = rt.byID[id]
	}

	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.RequestTimeout)
	defer cancel()
	pr := proxyReq{method: r.Method, uri: uri, contentType: r.Header.Get("Content-Type"), body: body}

	// Canonical requests collapse twice before costing an upstream call:
	// first against the hot-response cache, then against any in-flight
	// identical request (see flight.go). Non-canonical requests (answered
	// 400/404 upstream) take the plain path.
	var up *upstream
	var meta routeMeta
	var doErr error
	served := "" // "", "coalesced", or "hotcache"
	if canonical && rt.hot != nil {
		if h, ok := rt.hot.get(key); ok {
			up, served = h, "hotcache"
			rt.hotHits.Inc()
		} else {
			rt.hotMisses.Inc()
		}
	}
	if up == nil && canonical {
		f, leader := rt.flights.join(key)
		if leader {
			up, meta, doErr = rt.do(ctx, pr, order)
			rt.flights.finish(key, f, up, meta, doErr)
			if up != nil && up.status == http.StatusOK && up.header.Get("X-Cache") == "hit" {
				rt.hot.put(key, up)
			}
		} else {
			served = "coalesced"
			select {
			case <-f.done:
				up, meta, doErr = f.up, f.meta, f.err
				rt.coalesced.Inc()
			case <-ctx.Done():
				doErr = ctx.Err()
			}
		}
	} else if up == nil {
		up, meta, doErr = rt.do(ctx, pr, order)
	}

	outcome := "primary"
	switch {
	case served == "hotcache":
		outcome = "cached"
	case up == nil:
		outcome = "error"
	case served == "coalesced":
		outcome = "coalesced"
	case meta.hedgeWon:
		outcome = "hedged"
	case meta.failover:
		outcome = "failover"
	}
	var status int
	servedBy := ""
	if up == nil {
		w.Header().Set("X-Route-Status", outcome)
		w.Header().Set("X-Route-Attempts", strconv.Itoa(meta.attempts))
		status = http.StatusBadGateway
		writeError(w, status, fmt.Errorf("no replica could serve the request after %d attempts: %v", meta.attempts, doErr))
	} else {
		for _, h := range []string{"Content-Type", "X-Cache", "X-Served-By"} {
			if v := up.header.Get(h); v != "" {
				w.Header().Set(h, v)
			}
		}
		if w.Header().Get("X-Served-By") == "" {
			w.Header().Set("X-Served-By", up.rep.id)
		}
		servedBy = w.Header().Get("X-Served-By")
		w.Header().Set("X-Route-Status", outcome)
		// Attempts reflect the upstream work this response cost: a
		// follower reports its leader's attempts, a hot-cache replay
		// reports zero.
		w.Header().Set("X-Route-Attempts", strconv.Itoa(meta.attempts))
		switch served {
		case "coalesced":
			w.Header().Set("X-Route-Coalesced", "1")
		case "hotcache":
			w.Header().Set("X-Route-Cache", "hit")
		}
		status = up.status
		w.WriteHeader(status)
		w.Write(up.body)
	}
	dur := time.Since(start)
	rt.requests.With(strconv.Itoa(status)).Inc()
	rt.latency.With(outcome).Observe(dur.Seconds())
	rt.accessLog(r, seq[0], servedBy, status, outcome, meta, dur)
}

// accessLog emits one structured line per routed request.
func (rt *Router) accessLog(r *http.Request, shard, servedBy string, status int, outcome string, meta routeMeta, dur time.Duration) {
	if rt.cfg.AccessLog == nil {
		return
	}
	line, err := json.Marshal(struct {
		Time     string  `json:"time"`
		Method   string  `json:"method"`
		Path     string  `json:"path"`
		Shard    string  `json:"shard"`
		Replica  string  `json:"replica,omitempty"`
		Status   int     `json:"status"`
		Outcome  string  `json:"outcome"`
		Attempts int     `json:"attempts"`
		Hedged   bool    `json:"hedged,omitempty"`
		Millis   float64 `json:"duration_ms"`
		Remote   string  `json:"remote"`
	}{
		Time:     time.Now().UTC().Format(time.RFC3339Nano),
		Method:   r.Method,
		Path:     r.URL.Path,
		Shard:    shard,
		Replica:  servedBy,
		Status:   status,
		Outcome:  outcome,
		Attempts: meta.attempts,
		Hedged:   meta.hedged,
		Millis:   float64(dur.Microseconds()) / 1000,
		Remote:   r.RemoteAddr,
	})
	if err != nil {
		return
	}
	rt.logMu.Lock()
	defer rt.logMu.Unlock()
	rt.cfg.AccessLog.Write(append(line, '\n'))
}
