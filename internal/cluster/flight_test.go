package cluster

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// blockingBackend is a fake replica that counts requests and holds each
// one until release is closed, so a test can pin any number of
// followers in the flight table before the leader's answer exists.
func blockingBackend(t *testing.T, release <-chan struct{}, hits *atomic.Int64) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	id := ln.Addr().String()
	ts := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		<-release
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Cache", "miss")
		w.Header().Set("X-Served-By", id)
		w.Write([]byte(`{"answer":"expensive"}` + "\n"))
	}))
	ts.Listener.Close()
	ts.Listener = ln
	ts.Start()
	t.Cleanup(ts.Close)
	return id
}

func TestRouterCoalescesStampedeTo1Upstream(t *testing.T) {
	// The acceptance stampede: 64 identical concurrent requests cost
	// exactly one upstream compute; the other 63 are coalesced followers
	// with byte-identical responses. Deterministic: the backend blocks
	// until all 63 followers have joined the leader's flight.
	release := make(chan struct{})
	var upstreamHits atomic.Int64
	id := blockingBackend(t, release, &upstreamHits)
	rt := newTestRouter(t, Config{Replicas: []string{id}})

	const stampede = 64
	body := []byte(`{"workload":"lr-small","slaves":3,"cores":8}`)
	recs := make([]*httptest.ResponseRecorder, stampede)
	var wg sync.WaitGroup
	wg.Add(stampede)
	for i := 0; i < stampede; i++ {
		go func(i int) {
			defer wg.Done()
			recs[i] = doPredict(t, rt.Handler(), body)
		}(i)
	}
	// Wait until the leader reached the backend and all 63 followers are
	// parked in its flight, then let the single upstream call finish.
	deadline := time.Now().Add(10 * time.Second)
	for {
		rt.flights.mu.Lock()
		var waiting int64
		for _, f := range rt.flights.flights {
			waiting = f.waiters.Load()
		}
		nflights := len(rt.flights.flights)
		rt.flights.mu.Unlock()
		if upstreamHits.Load() == 1 && nflights == 1 && waiting == stampede-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stampede never converged: upstream=%d flights=%d waiters=%d",
				upstreamHits.Load(), nflights, waiting)
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := upstreamHits.Load(); got != 1 {
		t.Fatalf("upstream computed %d times, want exactly 1", got)
	}
	if got := rt.coalesced.Value(); got != stampede-1 {
		t.Fatalf("doppio_cluster_coalesced_total = %d, want %d", got, stampede-1)
	}
	want := recs[0].Body.Bytes()
	coalescedHeaders := 0
	for i, rec := range recs {
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, rec.Code)
		}
		if !bytes.Equal(rec.Body.Bytes(), want) {
			t.Fatalf("request %d: body differs", i)
		}
		if rec.Header().Get("X-Route-Coalesced") == "1" {
			coalescedHeaders++
		}
	}
	if coalescedHeaders != stampede-1 {
		t.Fatalf("%d responses carry X-Route-Coalesced, want %d", coalescedHeaders, stampede-1)
	}
}

func TestRouterCoalescingPreservesDistinctKeys(t *testing.T) {
	// Different canonical keys must never share a flight.
	release := make(chan struct{})
	close(release) // backend answers immediately
	var upstreamHits atomic.Int64
	id := blockingBackend(t, release, &upstreamHits)
	rt := newTestRouter(t, Config{Replicas: []string{id}})
	var wg sync.WaitGroup
	const n = 8
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := []byte(fmt.Sprintf(`{"workload":"lr-small","slaves":%d,"cores":8}`, i+2))
			rec := doPredict(t, rt.Handler(), body)
			if rec.Code != http.StatusOK {
				t.Errorf("key %d: status %d", i, rec.Code)
			}
		}(i)
	}
	wg.Wait()
	if got := upstreamHits.Load(); got != n {
		t.Fatalf("upstream hits %d, want %d distinct computes", got, n)
	}
}

func TestRouterHotCacheServesRepeatsWithoutUpstream(t *testing.T) {
	// A 200 + X-Cache: hit answer enters the hot cache; repeats within
	// the TTL replay it with zero upstream calls and the replica's
	// original attribution headers.
	var hits atomic.Int64
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	id := ln.Addr().String()
	ts := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		if n == 1 {
			w.Header().Set("X-Cache", "miss")
		} else {
			w.Header().Set("X-Cache", "hit")
		}
		w.Header().Set("X-Served-By", id)
		w.Write([]byte(`{"answer":1}` + "\n"))
	}))
	ts.Listener.Close()
	ts.Listener = ln
	ts.Start()
	t.Cleanup(ts.Close)

	rt := newTestRouter(t, Config{
		Replicas:    []string{id},
		HotCacheTTL: time.Minute,
	})
	body := []byte(`{"workload":"lr-small","slaves":3,"cores":8}`)

	// First answer is a replica miss: never hot-cached (a cold compute
	// must not be frozen as "hot").
	first := doPredict(t, rt.Handler(), body)
	if first.Header().Get("X-Cache") != "miss" || first.Header().Get("X-Route-Cache") != "" {
		t.Fatalf("first: X-Cache %q X-Route-Cache %q", first.Header().Get("X-Cache"), first.Header().Get("X-Route-Cache"))
	}
	// Second goes upstream (replica hit) and seeds the hot cache.
	second := doPredict(t, rt.Handler(), body)
	if second.Header().Get("X-Cache") != "hit" || second.Header().Get("X-Route-Cache") != "" {
		t.Fatalf("second: X-Cache %q X-Route-Cache %q", second.Header().Get("X-Cache"), second.Header().Get("X-Route-Cache"))
	}
	upstreamSoFar := hits.Load()
	// Third and later replay from the router without touching upstream.
	for i := 0; i < 5; i++ {
		rec := doPredict(t, rt.Handler(), body)
		if rec.Code != http.StatusOK {
			t.Fatalf("hot replay %d: status %d", i, rec.Code)
		}
		if rec.Header().Get("X-Route-Cache") != "hit" {
			t.Fatalf("hot replay %d: X-Route-Cache %q", i, rec.Header().Get("X-Route-Cache"))
		}
		if rec.Header().Get("X-Cache") != "hit" || rec.Header().Get("X-Served-By") != id {
			t.Fatalf("hot replay %d lost replica attribution: X-Cache %q X-Served-By %q",
				i, rec.Header().Get("X-Cache"), rec.Header().Get("X-Served-By"))
		}
		if !bytes.Equal(rec.Body.Bytes(), second.Body.Bytes()) {
			t.Fatalf("hot replay %d: body differs", i)
		}
	}
	if got := hits.Load(); got != upstreamSoFar {
		t.Fatalf("hot replays reached upstream: %d -> %d", upstreamSoFar, got)
	}
	if got := rt.hotHits.Value(); got != 5 {
		t.Fatalf("hotcache_hits_total = %d, want 5", got)
	}
}

func TestHotCacheTTLAndCap(t *testing.T) {
	now := time.Unix(1000, 0)
	h := newHotCache(2, time.Second)
	h.now = func() time.Time { return now }
	mk := func(s string) *upstream { return &upstream{status: 200, body: []byte(s)} }

	h.put("a", mk("A"))
	h.put("b", mk("B"))
	if _, ok := h.get("a"); !ok {
		t.Fatal("a missing")
	}
	// Cap eviction is LRU: touching a above made b the oldest.
	h.put("c", mk("C"))
	if _, ok := h.get("b"); ok {
		t.Fatal("b survived past the cap")
	}
	if h.len() != 2 {
		t.Fatalf("len %d, want 2", h.len())
	}
	// TTL expiry.
	now = now.Add(2 * time.Second)
	if _, ok := h.get("a"); ok {
		t.Fatal("a served after TTL")
	}
	// A refresh extends the expiry.
	h.put("c", mk("C2"))
	now = now.Add(900 * time.Millisecond)
	if up, ok := h.get("c"); !ok || string(up.body) != "C2" {
		t.Fatalf("refreshed c not served: %v", ok)
	}
	// Disabled cache is inert.
	var off *hotCache
	off.put("x", mk("X"))
	if _, ok := off.get("x"); ok {
		t.Fatal("nil hot cache served")
	}
	if newHotCache(0, time.Second) != nil || newHotCache(8, 0) != nil {
		t.Fatal("degenerate hot cache configs must disable it")
	}
}

func BenchmarkCoalescedStampede(b *testing.B) {
	// The follower path of the flight table: 63 followers join a leader's
	// flight and read its published answer — the hot loop a request
	// stampede exercises. The leader's upstream work is excluded (a
	// pre-built answer) so the benchmark isolates coalescing overhead.
	ft := newFlightTable()
	up := &upstream{status: 200, body: bytes.Repeat([]byte("x"), 1024), header: http.Header{}}
	const followers = 63
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, leader := ft.join("key")
		if !leader {
			b.Fatal("stale flight")
		}
		var wg sync.WaitGroup
		wg.Add(followers)
		for j := 0; j < followers; j++ {
			go func() {
				defer wg.Done()
				g, lead := ft.join("key")
				if lead {
					panic("follower became leader")
				}
				<-g.done
				if g.up == nil {
					panic("no shared answer")
				}
			}()
		}
		for f.waiters.Load() != followers {
			runtime.Gosched()
		}
		ft.finish("key", f, up, routeMeta{}, nil)
		wg.Wait()
	}
}
