package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

// newBackend starts a real `doppio serve` handler on a fresh local
// port and returns the (listener host:port) replica id, which is both
// the ring identity and the default X-Served-By value.
func newBackend(t *testing.T) (*httptest.Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	id := ln.Addr().String()
	s, err := serve.New(serve.Config{ReplicaID: id})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewUnstartedServer(s.Handler())
	ts.Listener.Close()
	ts.Listener = ln
	ts.Start()
	t.Cleanup(ts.Close)
	return ts, id
}

func newTestRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.health.SetReady(true) // Run does this; tests drive Handler directly
	return rt
}

// predictBodyFor scans request bodies until one shards to the wanted
// replica. Deterministic: the ring is a pure function of membership.
func predictBodyFor(t *testing.T, rt *Router, want string) []byte {
	t.Helper()
	for s := 1; s <= 128; s++ {
		body := []byte(fmt.Sprintf(`{"workload":"lr-small","slaves":%d,"cores":8}`, s))
		key, ok := serve.CanonicalShardKey("POST", "/api/v1/predict", body)
		if !ok {
			t.Fatalf("canonical predict body rejected: %s", body)
		}
		if rt.ring.Primary(key) == want {
			return body
		}
	}
	t.Fatalf("no predict body shards to %s", want)
	return nil
}

func doPredict(t *testing.T, h http.Handler, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/api/v1/predict", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestRouterShardsDeterministicallyAndPreservesCacheHits(t *testing.T) {
	_, id1 := newBackend(t)
	_, id2 := newBackend(t)
	_, id3 := newBackend(t)
	rt := newTestRouter(t, Config{Replicas: []string{id1, id2, id3}, HedgeAfter: 0})

	body := []byte(`{"workload":"lr-small","slaves":5,"cores":8}`)
	first := doPredict(t, rt.Handler(), body)
	if first.Code != http.StatusOK {
		t.Fatalf("first request: status %d body %s", first.Code, first.Body.String())
	}
	if got := first.Header().Get("X-Route-Status"); got != "primary" {
		t.Fatalf("first request: X-Route-Status %q, want primary", got)
	}
	served := first.Header().Get("X-Served-By")
	key, _ := serve.CanonicalShardKey("POST", "/api/v1/predict", body)
	if want := rt.ring.Primary(key); served != want {
		t.Fatalf("served by %q, ring primary is %q", served, want)
	}

	// The same logical request — different JSON spelling — must land on
	// the same replica and hit its cache byte-identically.
	respelled := []byte(`{"cores":8,"slaves":5,"workload":"lr-small"}`)
	second := doPredict(t, rt.Handler(), respelled)
	if second.Code != http.StatusOK {
		t.Fatalf("second request: status %d", second.Code)
	}
	if got := second.Header().Get("X-Served-By"); got != served {
		t.Fatalf("respelled request served by %q, want %q", got, served)
	}
	if got := second.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("respelled request X-Cache %q, want hit", got)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatal("cache hit body differs from first response")
	}
}

func TestRouterFailoverIsByteIdentical(t *testing.T) {
	ts1, id1 := newBackend(t)
	_, id2 := newBackend(t)
	_, id3 := newBackend(t)
	rt := newTestRouter(t, Config{
		Replicas:  []string{id1, id2, id3},
		RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond,
	})
	body := predictBodyFor(t, rt, id1)

	// Reference bytes: what the healthy cluster serves for this request.
	before := doPredict(t, rt.Handler(), body)
	if before.Code != http.StatusOK {
		t.Fatalf("warm request: status %d", before.Code)
	}

	ts1.Close() // SIGKILL stand-in: connections now refuse
	after := doPredict(t, rt.Handler(), body)
	if after.Code != http.StatusOK {
		t.Fatalf("failover request: status %d body %s", after.Code, after.Body.String())
	}
	if got := after.Header().Get("X-Route-Status"); got != "failover" {
		t.Fatalf("X-Route-Status %q, want failover", got)
	}
	if got := after.Header().Get("X-Served-By"); got == id1 {
		t.Fatal("failover response claims the dead replica served it")
	}
	// Graceful degradation is allowed to recompute on a cold replica but
	// NOT to answer differently: the bytes must match the primary's.
	if !bytes.Equal(before.Body.Bytes(), after.Body.Bytes()) {
		t.Fatal("failover response differs from the primary's bytes")
	}
	if rt.failovers.Value() == 0 {
		t.Fatal("failovers counter not incremented")
	}
	if rt.retries.Value() == 0 {
		t.Fatal("retries counter not incremented")
	}
}

func TestRouterRetriesOn5xx(t *testing.T) {
	// A replica that fails twice then recovers: the router must absorb
	// the 500s with retries and still answer 200.
	var calls atomic.Int64
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	flakyID := ln.Addr().String()
	inner, err := serve.New(serve.Config{ReplicaID: flakyID})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		inner.Handler().ServeHTTP(w, r)
	}))
	ts.Listener.Close()
	ts.Listener = ln
	ts.Start()
	t.Cleanup(ts.Close)

	rt := newTestRouter(t, Config{
		Replicas:  []string{flakyID},
		RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond,
	})
	body := []byte(`{"workload":"lr-small","slaves":3,"cores":8}`)
	rec := doPredict(t, rt.Handler(), body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 after retries; body %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Route-Attempts"); got != "3" {
		t.Fatalf("X-Route-Attempts %q, want 3", got)
	}
	if rt.retries.Value() != 2 {
		t.Fatalf("retries counter %d, want 2", rt.retries.Value())
	}
}

func TestRouterBreakerShortCircuitsDeadReplica(t *testing.T) {
	ts1, id1 := newBackend(t)
	_, id2 := newBackend(t)
	rt := newTestRouter(t, Config{
		Replicas:         []string{id1, id2},
		BreakerThreshold: 2, BreakerCooldown: time.Hour,
		RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond,
	})
	body := predictBodyFor(t, rt, id1)
	ts1.Close()

	// First requests pay the failed attempt against the dead primary.
	for i := 0; i < 2; i++ {
		rec := doPredict(t, rt.Handler(), body)
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, rec.Code)
		}
	}
	dead := rt.byID[id1]
	if got := dead.breaker.State(); got != BreakerOpen {
		t.Fatalf("dead replica breaker %v after %d failures, want open", got, 2)
	}
	if dead.healthyGauge.Value() != 0 {
		t.Fatal("doppio_cluster_replica_healthy still 1 for dead replica")
	}
	if dead.breakerGauge.Value() != int64(BreakerOpen) {
		t.Fatalf("breaker gauge %d, want %d", dead.breakerGauge.Value(), BreakerOpen)
	}

	// With the breaker open the router must route around the corpse on
	// the first attempt: no retry, no connect timeout paid.
	rec := doPredict(t, rt.Handler(), body)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-open request: status %d", rec.Code)
	}
	if got := rec.Header().Get("X-Route-Attempts"); got != "1" {
		t.Fatalf("post-open X-Route-Attempts %q, want 1", got)
	}
	if got := rec.Header().Get("X-Route-Status"); got != "failover" {
		t.Fatalf("post-open X-Route-Status %q, want failover", got)
	}
}

func TestRouterBreakerRecoversViaProbe(t *testing.T) {
	ts1, id1 := newBackend(t)
	_, id2 := newBackend(t)
	rt := newTestRouter(t, Config{
		Replicas:         []string{id1, id2},
		BreakerThreshold: 1, BreakerCooldown: time.Hour,
		FailAfter: 1, RecoverAfter: 1,
		RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond,
	})
	body := predictBodyFor(t, rt, id1)
	ts1.Close()
	if rec := doPredict(t, rt.Handler(), body); rec.Code != http.StatusOK {
		t.Fatalf("failover request: status %d", rec.Code)
	}
	rep := rt.byID[id1]
	if rep.breaker.State() != BreakerOpen {
		t.Fatalf("breaker %v, want open", rep.breaker.State())
	}

	// Restart the replica on the SAME port (as a supervisor would) and
	// deliver one probe result: the probe recovery must reset the
	// breaker even though its hour-long cooldown has not elapsed.
	ln, err := net.Listen("tcp", id1)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", id1, err)
	}
	s2, err := serve.New(serve.Config{ReplicaID: id1})
	if err != nil {
		t.Fatal(err)
	}
	// serve only reports ready from Run (which owns the listener); the
	// handler-only test backend needs readiness faked for the probe.
	ready := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		s2.Handler().ServeHTTP(w, r)
	})
	ts1b := httptest.NewUnstartedServer(ready)
	ts1b.Listener.Close()
	ts1b.Listener = ln
	ts1b.Start()
	t.Cleanup(ts1b.Close)

	rep.observeProbe(false, fmt.Errorf("down"), rt.cfg.FailAfter, rt.cfg.RecoverAfter)
	ok, err := rt.probe(context.Background(), rep)
	if !ok {
		t.Fatalf("probe of restarted replica failed: %v", err)
	}
	rep.observeProbe(ok, nil, rt.cfg.FailAfter, rt.cfg.RecoverAfter)
	if rep.breaker.State() != BreakerClosed {
		t.Fatalf("breaker %v after probe recovery, want closed", rep.breaker.State())
	}
	if rep.healthyGauge.Value() != 1 {
		t.Fatal("healthy gauge not restored after probe recovery")
	}
	rec := doPredict(t, rt.Handler(), body)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-recovery request: status %d", rec.Code)
	}
	if got := rec.Header().Get("X-Served-By"); got != id1 {
		t.Fatalf("post-recovery served by %q, want readmitted primary %q", got, id1)
	}
}

func TestRouterHedgesSlowPrimary(t *testing.T) {
	// Primary answers correctly but slowly; the hedge to the next ring
	// replica must win and the client must never see the stall.
	lnSlow, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	slowID := lnSlow.Addr().String()
	innerSlow, err := serve.New(serve.Config{ReplicaID: slowID})
	if err != nil {
		t.Fatal(err)
	}
	// The stall must dwarf the hedge target's cold compute (~1-2 s of
	// calibration on a loaded single-core runner) so elapsed time
	// cleanly separates "hedge won" from "client saw the stall". The
	// router cancels the losing attempt, so waking on r.Context() keeps
	// server shutdown fast despite the long sleep.
	tsSlow := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/api/") {
			// Drain the body before stalling: only then does net/http
			// watch the connection and cancel r.Context() when the
			// router abandons the losing attempt, which keeps Close
			// fast despite the long sleep.
			body, _ := io.ReadAll(r.Body)
			r.Body = io.NopCloser(bytes.NewReader(body))
			select {
			case <-time.After(20 * time.Second):
			case <-r.Context().Done():
				return
			}
		}
		innerSlow.Handler().ServeHTTP(w, r)
	}))
	tsSlow.Listener.Close()
	tsSlow.Listener = lnSlow
	tsSlow.Start()
	t.Cleanup(tsSlow.Close)

	_, fastID := newBackend(t)
	rt := newTestRouter(t, Config{
		Replicas:   []string{slowID, fastID},
		HedgeAfter: 20 * time.Millisecond,
	})
	body := predictBodyFor(t, rt, slowID)
	start := time.Now()
	rec := doPredict(t, rt.Handler(), body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if got := rec.Header().Get("X-Route-Status"); got != "hedged" {
		t.Fatalf("X-Route-Status %q, want hedged", got)
	}
	if got := rec.Header().Get("X-Served-By"); got != fastID {
		t.Fatalf("served by %q, want hedge target %q", got, fastID)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("hedged request took %v; the slow primary stalled the client", elapsed)
	}
	if rt.hedges.Value() == 0 || rt.hedgeWins.Value() == 0 {
		t.Fatalf("hedge counters: launched=%d won=%d, want both > 0", rt.hedges.Value(), rt.hedgeWins.Value())
	}
}

func TestRouterAllReplicasDownAnswers502(t *testing.T) {
	ts1, id1 := newBackend(t)
	ts2, id2 := newBackend(t)
	rt := newTestRouter(t, Config{
		Replicas:   []string{id1, id2},
		MaxRetries: 1, RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond,
	})
	ts1.Close()
	ts2.Close()
	rec := doPredict(t, rt.Handler(), []byte(`{"workload":"lr-small","slaves":3}`))
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("status %d, want 502", rec.Code)
	}
	if got := rec.Header().Get("X-Route-Status"); got != "error" {
		t.Fatalf("X-Route-Status %q, want error", got)
	}
	if !strings.Contains(rec.Body.String(), "no replica could serve") {
		t.Fatalf("error body %q lacks explanation", rec.Body.String())
	}
}

func TestRouterNonCanonicalRequestsStillRoute(t *testing.T) {
	// A request no replica can canonicalize (unknown endpoint) still
	// shards deterministically by raw bytes and passes the replica's
	// 4xx straight through — 4xx is deliverable, not retryable.
	_, id1 := newBackend(t)
	_, id2 := newBackend(t)
	rt := newTestRouter(t, Config{Replicas: []string{id1, id2}})
	var first string
	for i := 0; i < 3; i++ {
		req := httptest.NewRequest(http.MethodPost, "/api/v1/nonsense", strings.NewReader(`{}`))
		rec := httptest.NewRecorder()
		rt.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusNotFound {
			t.Fatalf("status %d, want replica's 404 passed through", rec.Code)
		}
		if got := rec.Header().Get("X-Route-Attempts"); got != "1" {
			t.Fatalf("X-Route-Attempts %q, want 1 (4xx must not retry)", got)
		}
		if i == 0 {
			first = rec.Header().Get("X-Served-By")
		} else if got := rec.Header().Get("X-Served-By"); got != first {
			t.Fatalf("non-canonical request moved replica: %q then %q", first, got)
		}
	}
}

func TestRouterReadyz(t *testing.T) {
	_, id1 := newBackend(t)
	rt := newTestRouter(t, Config{Replicas: []string{id1}})
	get := func() *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		rt.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
		return rec
	}
	if rec := get(); rec.Code != http.StatusOK {
		t.Fatalf("ready router: readyz %d", rec.Code)
	}
	// Every replica unavailable: the router must report itself not ready
	// so its own load balancer stops sending traffic.
	rep := rt.byID[id1]
	rep.mu.Lock()
	rep.probeHealthy = false
	rep.mu.Unlock()
	if rec := get(); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("no-healthy-replicas readyz %d, want 503", rec.Code)
	}
	rep.mu.Lock()
	rep.probeHealthy = true
	rep.mu.Unlock()
	rt.health.SetReady(false) // draining
	if rec := get(); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz %d, want 503", rec.Code)
	}
}

func TestRouterRunServesAndDrains(t *testing.T) {
	_, id1 := newBackend(t)
	rt, err := New(Config{Addr: "127.0.0.1:0", Replicas: []string{id1}, ProbeInterval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- rt.Run(ctx) }()
	select {
	case <-rt.Started():
	case <-time.After(5 * time.Second):
		t.Fatal("router did not start")
	}
	resp, err := http.Post("http://"+rt.Addr()+"/api/v1/predict", "application/json",
		strings.NewReader(`{"workload":"lr-small","slaves":3}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	// Let at least one probe tick land so the probe loop's counters run.
	time.Sleep(120 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("router did not drain")
	}
}

func TestConfigValidate(t *testing.T) {
	base := Config{Replicas: []string{"127.0.0.1:1234"}}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for name, cfg := range map[string]Config{
		"no replicas":       {},
		"bad addr":          {Addr: "nope", Replicas: []string{"127.0.0.1:1234"}},
		"dup replica":       {Replicas: []string{"127.0.0.1:1234", "http://127.0.0.1:1234"}},
		"bad scheme":        {Replicas: []string{"ftp://127.0.0.1:1234"}},
		"replica path":      {Replicas: []string{"http://127.0.0.1:1234/api"}},
		"replica no port":   {Replicas: []string{"127.0.0.1"}},
		"negative retries":  {Replicas: []string{"127.0.0.1:1234"}, MaxRetries: -1},
		"negative hedge":    {Replicas: []string{"127.0.0.1:1234"}, HedgeAfter: -time.Second},
		"negative interval": {Replicas: []string{"127.0.0.1:1234"}, ProbeInterval: -time.Second},
	} {
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
