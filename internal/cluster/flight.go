package cluster

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"
)

// Router-level request collapsing, two layers deep:
//
//   - flightTable coalesces concurrent identical requests: the first
//     arrival for a canonical key (the leader) runs the full routing
//     stack; every later arrival while it is in flight (a follower)
//     waits and replays the leader's buffered answer. A stampede of N
//     identical requests costs exactly one upstream call. Safe because
//     every API endpoint is a pure function of its canonical body —
//     the same property that makes retries and hedging safe.
//
//   - hotCache keeps the last few coalesced answers for a short TTL.
//     When a hot key's home replica dies, the ring fails the key over
//     to a replica that has never seen it; without a buffer the whole
//     stampede of followers arriving just after the leader finishes
//     would land there as cold recomputes. The cache only ever stores
//     200 responses that were replica cache hits (X-Cache: hit), so a
//     cold first computation is never frozen and the replica-side
//     warm/cold distinction stays observable through the router.
//
// Both layers are keyed on serve.CanonicalShardKey output; requests no
// replica could canonicalize bypass both.

// flight is one in-flight leader and the answer its followers share.
type flight struct {
	done    chan struct{} // closed when up/meta/err are final
	waiters atomic.Int64  // followers currently waiting (tests/benchmarks)
	up      *upstream
	meta    routeMeta
	err     error
}

// flightTable tracks in-flight canonical keys.
type flightTable struct {
	mu      sync.Mutex
	flights map[string]*flight
}

func newFlightTable() *flightTable {
	return &flightTable{flights: map[string]*flight{}}
}

// join returns the flight for key and whether the caller is its leader.
// The leader MUST call finish exactly once; followers wait on
// flight.done (or their own context) and read the shared answer.
func (ft *flightTable) join(key string) (*flight, bool) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	if f, ok := ft.flights[key]; ok {
		f.waiters.Add(1)
		return f, false
	}
	f := &flight{done: make(chan struct{})}
	ft.flights[key] = f
	return f, true
}

// finish publishes the leader's answer and wakes every follower. The
// key is deleted before done is closed, so a request arriving after the
// answer is final starts a fresh flight instead of reading stale state.
func (ft *flightTable) finish(key string, f *flight, up *upstream, meta routeMeta, err error) {
	f.up, f.meta, f.err = up, meta, err
	ft.mu.Lock()
	delete(ft.flights, key)
	ft.mu.Unlock()
	close(f.done)
}

// hotEntry is one cached response with its expiry.
type hotEntry struct {
	key     string
	up      *upstream
	expires time.Time
}

// hotCache is a tiny TTL'd LRU over coalesced hot answers. The upstream
// values it stores are immutable once published (the router buffers
// each reply exactly once), so entries are shared, not copied.
type hotCache struct {
	mu    sync.Mutex
	cap   int
	ttl   time.Duration
	ll    *list.List               // front = most recent
	items map[string]*list.Element // value: *hotEntry
	now   func() time.Time         // injectable for TTL tests
}

func newHotCache(capacity int, ttl time.Duration) *hotCache {
	if capacity < 1 || ttl <= 0 {
		return nil
	}
	return &hotCache{
		cap:   capacity,
		ttl:   ttl,
		ll:    list.New(),
		items: map[string]*list.Element{},
		now:   time.Now,
	}
}

// get returns the live cached answer for key, expiring it if stale.
func (h *hotCache) get(key string) (*upstream, bool) {
	if h == nil {
		return nil, false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	el, ok := h.items[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*hotEntry)
	if h.now().After(e.expires) {
		h.ll.Remove(el)
		delete(h.items, key)
		return nil, false
	}
	h.ll.MoveToFront(el)
	return e.up, true
}

// put inserts or refreshes an answer, evicting the oldest past the cap.
func (h *hotCache) put(key string, up *upstream) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	expires := h.now().Add(h.ttl)
	if el, ok := h.items[key]; ok {
		e := el.Value.(*hotEntry)
		e.up, e.expires = up, expires
		h.ll.MoveToFront(el)
		return
	}
	h.items[key] = h.ll.PushFront(&hotEntry{key: key, up: up, expires: expires})
	for h.ll.Len() > h.cap {
		oldest := h.ll.Back()
		h.ll.Remove(oldest)
		delete(h.items, oldest.Value.(*hotEntry).key)
	}
}

// len reports the live entry count (expired entries may still linger
// until their next get).
func (h *hotCache) len() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ll.Len()
}
