package cluster

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// maxProxyBody bounds one upstream response; the largest legitimate
// body (a dense sweep grid) is well under this.
const maxProxyBody = 16 << 20

// proxyReq is the replayable form of one client request: the body is
// buffered so the same request can be retried, failed over, or hedged.
// Every API endpoint is a pure function of its canonical body, which is
// what makes duplicate in-flight attempts safe.
type proxyReq struct {
	method      string
	uri         string // path plus raw query
	contentType string
	body        []byte
}

// upstream is one replica's buffered answer.
type upstream struct {
	status int
	header http.Header
	body   []byte
	rep    *replica
}

// routeMeta accounts for how a request was served, for the response
// headers, the access log, and the metrics.
type routeMeta struct {
	attempts int
	hedged   bool
	hedgeWon bool
	failover bool
}

// deliverable reports whether an attempt's outcome should be returned
// to the client: any transport-level success below 5xx except a 429
// shed (another replica may have capacity). 4xx client errors are
// deliverable — every replica would answer the same.
func deliverable(up *upstream, err error) bool {
	return err == nil && up.status != http.StatusTooManyRequests && up.status < 500
}

// forward issues one attempt against one replica and buffers the reply.
func (rt *Router) forward(ctx context.Context, pr proxyReq, rep *replica) (*upstream, error) {
	req, err := http.NewRequestWithContext(ctx, pr.method, rep.base+pr.uri, bytes.NewReader(pr.body))
	if err != nil {
		return nil, err
	}
	if pr.contentType != "" {
		req.Header.Set("Content-Type", pr.contentType)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyBody))
	if err != nil {
		// A connection that died mid-body: the attempt failed even though
		// headers arrived; the caller may retry.
		return nil, err
	}
	return &upstream{status: resp.StatusCode, header: resp.Header, body: body, rep: rep}, nil
}

// observeOutcome feeds one attempt's result into the per-replica
// counters and the breaker. A 429 shed counts as alive (the limiter
// answered), everything else below 5xx counts as success.
func (rt *Router) observeOutcome(rep *replica, up *upstream, err error) {
	code := "error"
	ok := false
	if err == nil {
		code = strconv.Itoa(up.status)
		ok = up.status < 500
	}
	rt.replicaRequests.With(rep.id, code).Inc()
	rep.observeResult(ok)
}

// pickIndex scans the preference order from position from for the first
// replica that is probe-healthy and whose breaker admits the attempt
// (consuming a half-open trial slot when it grants one). When every
// replica is down or open it falls back to the preferred candidate
// anyway: a last-resort attempt beats a guaranteed 502, and its outcome
// re-arms or closes the breaker.
func (rt *Router) pickIndex(order []*replica, from int) int {
	n := len(order)
	for off := 0; off < n; off++ {
		i := (from + off) % n
		rep := order[i]
		if rep.probeOK() && rep.breaker.Allow() {
			return i
		}
	}
	return from % n
}

// hedgeBackup returns the best distinct replica to hedge onto, or nil.
func (rt *Router) hedgeBackup(order []*replica, primaryIdx int) *replica {
	for off := 1; off < len(order); off++ {
		rep := order[(primaryIdx+off)%len(order)]
		if rep.probeOK() && rep.breaker.State() == BreakerClosed {
			return rep
		}
	}
	return nil
}

// do runs the full robustness stack for one request: up to
// 1+MaxRetries attempts, each on the next admissible replica in ring
// preference order, with exponential backoff + jitter between attempts
// and an optional hedge on the first one. It returns the first
// deliverable answer, or the last failure when the budget is spent.
func (rt *Router) do(ctx context.Context, pr proxyReq, order []*replica) (*upstream, routeMeta, error) {
	var meta routeMeta
	var lastUp *upstream
	var lastErr error
	idx := 0
	for attempt := 0; attempt <= rt.cfg.MaxRetries; attempt++ {
		i := rt.pickIndex(order, idx)
		rep := order[i]
		meta.attempts++
		var up *upstream
		var err error
		if attempt == 0 && rt.cfg.HedgeAfter > 0 {
			up, err = rt.hedgedForward(ctx, pr, rep, rt.hedgeBackup(order, i), &meta)
		} else {
			up, err = rt.forward(ctx, pr, rep)
			rt.observeOutcome(rep, up, err)
		}
		if deliverable(up, err) {
			if up.rep != order[0] {
				meta.failover = true
				rt.failovers.Inc()
			}
			return up, meta, nil
		}
		lastUp, lastErr = up, err
		if ctx.Err() != nil || attempt == rt.cfg.MaxRetries {
			break
		}
		rt.retries.Inc()
		idx = i + 1 // fail over to the next preference
		if !rt.sleepBackoff(ctx, attempt) {
			break
		}
	}
	return lastUp, meta, lastErr
}

// hedgedForward races the primary against one backup: the backup fires
// only if the primary has not answered within HedgeAfter, and the first
// deliverable response wins (the loser is cancelled). A primary failure
// before the hedge fires returns immediately so the outer retry loop
// handles it as an ordinary failover.
func (rt *Router) hedgedForward(ctx context.Context, pr proxyReq, primary, backup *replica, meta *routeMeta) (*upstream, error) {
	if backup == nil {
		up, err := rt.forward(ctx, pr, primary)
		rt.observeOutcome(primary, up, err)
		return up, err
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type res struct {
		up    *upstream
		err   error
		rep   *replica
		hedge bool
	}
	ch := make(chan res, 2)
	fire := func(rep *replica, hedge bool) {
		go func() {
			up, err := rt.forward(hctx, pr, rep)
			ch <- res{up, err, rep, hedge}
		}()
	}
	fire(primary, false)
	outstanding := 1
	timer := time.NewTimer(rt.cfg.HedgeAfter)
	defer timer.Stop()
	timerC := timer.C
	var last res
	for {
		select {
		case <-timerC:
			timerC = nil
			meta.hedged = true
			rt.hedges.Inc()
			fire(backup, true)
			outstanding++
		case r := <-ch:
			outstanding--
			rt.observeOutcome(r.rep, r.up, r.err)
			if deliverable(r.up, r.err) {
				if r.hedge {
					meta.hedgeWon = true
					rt.hedgeWins.Inc()
				}
				return r.up, nil
			}
			last = r
			if outstanding == 0 {
				return last.up, last.err
			}
		}
	}
}

// sleepBackoff waits the attempt's backoff (base doubling per attempt,
// capped, jittered over the upper half so synchronized retries from
// concurrent requests spread out). Returns false if ctx expired first.
func (rt *Router) sleepBackoff(ctx context.Context, attempt int) bool {
	d := rt.cfg.RetryBase << uint(attempt)
	if d > rt.cfg.RetryMax || d <= 0 {
		d = rt.cfg.RetryMax
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}
