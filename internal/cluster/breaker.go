package cluster

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position. The numeric values are
// exported on the doppio_cluster_breaker_state gauge, so keep them
// stable: closed < half-open < open reads as "degree of distrust".
type BreakerState int32

const (
	// BreakerClosed passes every request; consecutive failures are
	// counted against the trip threshold.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen admits exactly one trial request; its outcome
	// decides between closing and re-opening.
	BreakerHalfOpen
	// BreakerOpen rejects requests until the cooldown elapses.
	BreakerOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return "unknown"
}

// Breaker is a per-replica circuit breaker. The router consults it
// before proxying: a replica that has failed threshold times in a row
// stops receiving traffic for cooldown, then gets one half-open trial
// request; success closes the circuit, failure re-opens it for another
// cooldown. This turns a dead replica from "every request to its shard
// pays a connect timeout" into "one probe per cooldown pays it".
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable for the state-transition tests

	mu       sync.Mutex
	state    BreakerState
	fails    int
	openedAt time.Time
	trial    bool // a half-open trial is in flight
}

// NewBreaker returns a closed breaker tripping after threshold
// consecutive failures (<=0 means 3) and cooling down for cooldown
// (<=0 means 3s).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 3 * time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether a request may proceed, consuming the half-open
// trial slot when it grants one. Callers that get true MUST report the
// outcome via Success or Failure, or an open breaker's trial slot leaks
// until the next cooldown.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = BreakerHalfOpen
			b.trial = true
			return true
		}
		return false
	default: // half-open
		if b.trial {
			return false
		}
		b.trial = true
		return true
	}
}

// Success records a completed request: the circuit closes and the
// failure streak resets, whatever state it was in.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.fails = 0
	b.trial = false
}

// Failure records a failed request. In closed state it counts toward
// the threshold; a failed half-open trial re-opens immediately; in open
// state (a last-resort attempt when every replica was down) it re-arms
// the cooldown.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.state = BreakerOpen
			b.openedAt = b.now()
		}
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.trial = false
	case BreakerOpen:
		b.openedAt = b.now()
	}
}

// State returns the current position (open reported as open even if the
// cooldown has elapsed: the transition to half-open happens in Allow).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
