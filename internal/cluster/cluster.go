// Package cluster implements `doppio route`: a fault-tolerant sharding
// front tier over N `doppio serve` replicas. The router consistent-
// hashes each request's canonical key — the same canonical bytes the
// replica cache keys on (serve.CanonicalShardKey) — so every logical
// request has one home replica and the byte-identical cache-hit
// property survives sharding. Around each proxied call it wraps the
// recovery discipline PR 2 gave the simulated Spark cluster, applied to
// the serving path itself:
//
//   - per-replica health from active /readyz probes plus passive
//     observation of proxied outcomes (health.go);
//   - a closed/open/half-open circuit breaker per replica (breaker.go);
//   - bounded retries with exponential backoff and jitter on connect
//     errors and 5xx, failing over to the next replica on the hash ring
//     (proxy.go) — a re-routed request recomputes on a cold replica and
//     still returns the exact bytes the home replica would have served;
//   - optional hedged duplicates after a latency threshold for tail
//     tolerance.
//
// Everything is stdlib-only, mirroring internal/serve.
package cluster

import (
	"fmt"
	"io"
	"net"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/shard"
)

// Config tunes the router.
type Config struct {
	// Addr is the listen address (default ":8090").
	Addr string
	// Replicas lists the backend `doppio serve` instances as host:port
	// or http://host:port. At least one is required; the host:port is
	// the replica's ring identity and must match the replica's default
	// ReplicaID so X-Served-By attribution lines up.
	Replicas []string
	// VNodes is the ring points per replica (default DefaultVNodes).
	VNodes int
	// ProbeInterval is the active /readyz probe period (default 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe (default: ProbeInterval, capped at 1s).
	ProbeTimeout time.Duration
	// FailAfter consecutive probe failures mark a replica down (default 2).
	FailAfter int
	// RecoverAfter consecutive probe successes mark it back up (default 2).
	RecoverAfter int
	// BreakerThreshold consecutive proxied failures open the circuit
	// (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit rejects traffic before
	// granting a half-open trial (default 3s).
	BreakerCooldown time.Duration
	// MaxRetries bounds the extra attempts after the first (default 3);
	// each retry fails over to the next replica in ring order.
	MaxRetries int
	// RetryBase is the first backoff delay; it doubles per retry with
	// jitter (default 50ms).
	RetryBase time.Duration
	// RetryMax caps the backoff (default 1s).
	RetryMax time.Duration
	// HedgeAfter launches a duplicate request to the next replica when
	// the primary has not answered within this delay; first response
	// wins. 0 disables hedging.
	HedgeAfter time.Duration
	// RequestTimeout bounds one client request across all attempts
	// (default 30s).
	RequestTimeout time.Duration
	// DrainTimeout bounds graceful shutdown (default 30s).
	DrainTimeout time.Duration
	// AccessLog receives one JSON line per routed request (nil = discard).
	AccessLog io.Writer
	// HotCacheTTL enables the router's bounded hot-response cache: a
	// coalesced leader whose upstream answer was a 200 replica cache hit
	// is replayed to followers of the same canonical key for this long,
	// so a hot key failing over does not stampede the takeover replica.
	// 0 disables the hot cache (the zero-value Config keeps the PR 7
	// behavior; `doppio route` defaults it on).
	HotCacheTTL time.Duration
	// HotCacheEntries caps the hot cache (default 128 when HotCacheTTL
	// is set).
	HotCacheEntries int
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8090"
	}
	if c.VNodes == 0 {
		c.VNodes = shard.DefaultVNodes
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout == 0 {
		c.ProbeTimeout = c.ProbeInterval
		if c.ProbeTimeout > time.Second {
			c.ProbeTimeout = time.Second
		}
	}
	if c.FailAfter == 0 {
		c.FailAfter = 2
	}
	if c.RecoverAfter == 0 {
		c.RecoverAfter = 2
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = 3 * time.Second
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.RetryBase == 0 {
		c.RetryBase = 50 * time.Millisecond
	}
	if c.RetryMax == 0 {
		c.RetryMax = time.Second
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.HotCacheTTL > 0 && c.HotCacheEntries == 0 {
		c.HotCacheEntries = 128
	}
	return c
}

// Validate rejects configurations the flag layer should have caught.
func (c Config) Validate() error {
	c = c.withDefaults()
	if _, port, err := net.SplitHostPort(c.Addr); err != nil {
		return fmt.Errorf("cluster: bad listen address %q: %v", c.Addr, err)
	} else if p, err := strconv.Atoi(port); err != nil || p < 0 || p > 65535 {
		return fmt.Errorf("cluster: bad listen port %q", port)
	}
	if len(c.Replicas) == 0 {
		return fmt.Errorf("cluster: at least one replica is required")
	}
	seen := map[string]bool{}
	for _, r := range c.Replicas {
		id, _, err := normalizeReplica(r)
		if err != nil {
			return err
		}
		if seen[id] {
			return fmt.Errorf("cluster: duplicate replica %q", id)
		}
		seen[id] = true
	}
	for name, v := range map[string]int{
		"VNodes": c.VNodes, "FailAfter": c.FailAfter, "RecoverAfter": c.RecoverAfter,
		"BreakerThreshold": c.BreakerThreshold,
	} {
		if v < 1 {
			return fmt.Errorf("cluster: %s must be positive", name)
		}
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("cluster: MaxRetries must not be negative")
	}
	for name, d := range map[string]time.Duration{
		"ProbeInterval": c.ProbeInterval, "ProbeTimeout": c.ProbeTimeout,
		"BreakerCooldown": c.BreakerCooldown, "RetryBase": c.RetryBase,
		"RetryMax": c.RetryMax, "RequestTimeout": c.RequestTimeout,
		"DrainTimeout": c.DrainTimeout,
	} {
		if d <= 0 {
			return fmt.Errorf("cluster: %s must be positive", name)
		}
	}
	if c.HedgeAfter < 0 {
		return fmt.Errorf("cluster: HedgeAfter must not be negative")
	}
	if c.HotCacheTTL < 0 {
		return fmt.Errorf("cluster: HotCacheTTL must not be negative")
	}
	if c.HotCacheEntries < 0 {
		return fmt.Errorf("cluster: HotCacheEntries must not be negative")
	}
	return nil
}

// normalizeReplica turns "host:port" or "http(s)://host:port" into the
// ring identity (host:port) and the base URL.
func normalizeReplica(s string) (id, base string, err error) {
	raw := s
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	u, err := url.Parse(s)
	if err != nil {
		return "", "", fmt.Errorf("cluster: bad replica %q: %v", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", "", fmt.Errorf("cluster: bad replica %q: scheme must be http or https", raw)
	}
	if u.Host == "" || u.Port() == "" {
		return "", "", fmt.Errorf("cluster: bad replica %q: need host:port", raw)
	}
	if u.Path != "" && u.Path != "/" {
		return "", "", fmt.Errorf("cluster: bad replica %q: no path allowed", raw)
	}
	return u.Host, u.Scheme + "://" + u.Host, nil
}

// sortedReplicaSpecs returns (id, base) pairs sorted by id, matching
// the ring's membership order.
func sortedReplicaSpecs(replicas []string) ([][2]string, error) {
	specs := make([][2]string, 0, len(replicas))
	for _, r := range replicas {
		id, base, err := normalizeReplica(r)
		if err != nil {
			return nil, err
		}
		specs = append(specs, [2]string{id, base})
	}
	sort.Slice(specs, func(i, j int) bool { return specs[i][0] < specs[j][0] })
	return specs, nil
}
