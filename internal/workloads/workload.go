// Package workloads defines the applications the paper evaluates: the
// GATK4 genome-analysis pipeline (Sections II-B, III, V-A) and the five
// SparkBench/BigDataBench applications of Section V-B (Logistic
// Regression, SVM, PageRank, Triangle Count, Terasort).
//
// Each workload builds a spark.App — stages of task groups with
// HDFS/shuffle/persist I/O and computation — from published parameters:
// input sizes, shuffle volumes, partition counts, per-reducer sizes, and
// the per-operation throughputs (T) and task-to-I/O ratios (λ) the paper
// reports. Where the paper leaves a constant unstated, the value is
// chosen so the paper's published ratios emerge (each such choice is
// commented) and recorded in EXPERIMENTS.md.
//
// Workload construction is a function of the cluster configuration
// because cache-or-persist decisions depend on the cluster's storage
// memory (paper Section III-B2).
package workloads

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/spark"
	"repro/internal/units"
)

// Workload is a buildable Spark application.
type Workload struct {
	// Name identifies the workload ("gatk4", "lr-small", ...).
	Name string
	// Description is a one-line summary for CLI listings.
	Description string
	// Build constructs the application for a cluster configuration.
	Build func(cfg spark.ClusterConfig) spark.App
}

var registry = map[string]Workload{}

// Register adds a workload to the global registry; duplicate names
// panic (registration happens in init functions).
func Register(w Workload) {
	if _, dup := registry[w.Name]; dup {
		panic(fmt.Sprintf("workloads: duplicate workload %q", w.Name))
	}
	registry[w.Name] = w
}

// Get returns a registered workload.
func Get(name string) (Workload, error) {
	w, ok := registry[name]
	if !ok {
		return Workload{}, fmt.Errorf("workloads: unknown workload %q (have %v)", name, Names())
	}
	return w, nil
}

// Names lists registered workloads, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// computeFor returns the compute duration that makes a task's total time
// equal lambda times its I/O time: compute = (λ-1) · ioTime. This is how
// the paper's λ ("average time ratio of the entire task execution to the
// I/O access") translates into a task definition.
func computeFor(lambda float64, ioTime time.Duration) time.Duration {
	if lambda <= 1 {
		return 0
	}
	return time.Duration(float64(ioTime) * (lambda - 1))
}

// ioTime is the uncontended duration of moving bytes at the per-core
// throughput t.
func ioTime(bytes units.ByteSize, t units.Rate) time.Duration {
	return t.TimeFor(bytes)
}

// perTask divides a cluster-wide volume evenly over tasks.
func perTask(total units.ByteSize, tasks int) units.ByteSize {
	if tasks <= 0 {
		return total
	}
	return total / units.ByteSize(tasks)
}

// spillToLocal returns how much of an RDD does not fit in cluster
// storage memory and therefore lives on Spark Local (Spark's
// MEMORY_AND_DISK semantics; paper Section III-B2).
func spillToLocal(cfg spark.ClusterConfig, rdd units.ByteSize) units.ByteSize {
	mem := cfg.StorageMemory()
	if rdd <= mem {
		return 0
	}
	return rdd - mem
}
