package workloads

import (
	"fmt"

	"repro/internal/spark"
	"repro/internal/units"
)

// LRParams describes SparkBench Logistic Regression (paper Section
// V-B1): a dataValidator stage that parses the input into the parsedData
// RDD, then 50 gradient-descent iterations over it.
//
// Two datasets are evaluated: 1,200M examples (parsedData = 280 GB,
// fully cacheable on the ten-slave cluster) and 4,000M examples
// (parsedData = 990 GB, spilling to Spark Local), which is what makes
// LR's I/O behaviour config-dependent.
type LRParams struct {
	// InputBytes is the HDFS text input consumed by dataValidator.
	InputBytes units.ByteSize
	// RDDBytes is the parsedData RDD footprint (serialized-on-disk size;
	// 280 GB small, 990 GB large).
	RDDBytes units.ByteSize
	// Iterations is the gradient-descent count (paper: 50).
	Iterations int
	// THDFSRead is the per-core read+parse throughput of dataValidator.
	THDFSRead units.Rate
	// LambdaValidate: dataValidator task-to-I/O ratio. 4.2 reproduces the
	// ~2x HDD/SSD gap the paper reports for the small dataset at P=36.
	LambdaValidate float64
	// TPersist is the per-core persist read/write throughput
	// (deserialisation-bound, ~200 MB/s).
	TPersist units.Rate
	// PersistReqSize is the request size of Spark disk-store accesses
	// (~256 KB buffered reads). At 256 KB the HDD/SSD bandwidth ratio is
	// ~7x, the gap the paper reports for the large dataset's iterations.
	PersistReqSize units.ByteSize
	// TMemory is the per-core rate at which an iteration consumes
	// memory-cached partitions.
	TMemory units.Rate
	// LambdaIter is the iteration task-to-disk-I/O ratio for spilled
	// RDDs (9 keeps the SSD case near its read floor, yielding the ~7x
	// iteration gap the paper reports for the large dataset).
	LambdaIter float64
}

// DefaultLRSmallParams is the 1,200M-example dataset.
func DefaultLRSmallParams() LRParams {
	return LRParams{
		InputBytes:     240 * units.GB,
		RDDBytes:       280 * units.GB,
		Iterations:     50,
		THDFSRead:      units.MBps(32.5),
		LambdaValidate: 4.2,
		TPersist:       units.MBps(200),
		PersistReqSize: 256 * units.KB,
		TMemory:        units.MBps(400),
		LambdaIter:     9,
	}
}

// DefaultLRLargeParams is the 4,000M-example dataset.
func DefaultLRLargeParams() LRParams {
	p := DefaultLRSmallParams()
	p.InputBytes = 800 * units.GB
	p.RDDBytes = 990 * units.GB
	return p
}

// Build constructs the LR application for the cluster. The spilled
// fraction of parsedData (if any) is persisted by dataValidator and
// re-read from Spark Local every iteration; the cached remainder is
// consumed at memory speed.
func (p LRParams) Build(cfg spark.ClusterConfig) spark.App {
	m := spark.HDFSTasks(p.InputBytes, cfg.HDFSBlockSize)
	spill := spillToLocal(cfg, p.RDDBytes)

	inPerTask := perTask(p.InputBytes, m)
	rddPerTask := perTask(p.RDDBytes, m)
	spillPerTask := perTask(spill, m)
	cachedPerTask := rddPerTask - spillPerTask

	// dataValidator: read+parse (interleaved at block granularity),
	// persist whatever does not fit.
	readT := ioTime(inPerTask, p.THDFSRead)
	dvOps := []spark.Op{
		spark.IOC(spark.OpHDFSRead, inPerTask, 0, p.THDFSRead,
			computeFor(p.LambdaValidate, readT)),
	}
	if spill > 0 {
		dvOps = append(dvOps,
			spark.IO(spark.OpPersistWrite, spillPerTask, p.PersistReqSize, p.TPersist))
	}
	stages := []spark.Stage{{
		Name:   "dataValidator",
		Groups: []spark.TaskGroup{{Name: "parse", Count: m, Ops: dvOps}},
	}}

	// Iterations: gradient over cached portion (memory-speed compute)
	// plus persist read of the spilled portion.
	memTime := ioTime(cachedPerTask, p.TMemory)
	iterOps := []spark.Op{spark.Compute(memTime)}
	if spill > 0 {
		diskT := ioTime(spillPerTask, p.TPersist)
		iterOps = []spark.Op{
			spark.IOC(spark.OpPersistRead, spillPerTask, p.PersistReqSize, p.TPersist,
				memTime+computeFor(p.LambdaIter, diskT)),
		}
	}
	for i := 1; i <= p.Iterations; i++ {
		stages = append(stages, spark.Stage{
			Name:   fmt.Sprintf("iter-%02d", i),
			Groups: []spark.TaskGroup{{Name: "gradient", Count: m, Ops: iterOps}},
		})
	}
	return spark.App{Name: "LogisticRegression", Stages: stages}
}

func init() {
	Register(Workload{
		Name:        "lr-small",
		Description: "Logistic Regression, 1200M examples, parsedData 280GB (memory-cached)",
		Build:       DefaultLRSmallParams().Build,
	})
	Register(Workload{
		Name:        "lr-large",
		Description: "Logistic Regression, 4000M examples, parsedData 990GB (spills to Spark Local)",
		Build:       DefaultLRLargeParams().Build,
	})
}
