package workloads

import (
	"fmt"

	"repro/internal/spark"
	"repro/internal/units"
)

// SVMParams describes SparkBench Support Vector Machine (paper Section
// V-B2): dataValidator, ten in-memory training iterations over an 82 GB
// cached RDD, then a shuffle-heavy subtract phase moving 170 GB.
type SVMParams struct {
	// InputBytes is the HDFS input (12M samples × 1000 features).
	InputBytes units.ByteSize
	// CachedRDD is the per-iteration training RDD (82 GB; fits in
	// memory on the evaluation cluster).
	CachedRDD units.ByteSize
	// Partitions is the dataset partition count (paper: 1200).
	Partitions int
	// Iterations is the training iteration count (paper: 10).
	Iterations int
	// ShuffleBytes is the subtract phase's total shuffle volume (170 GB).
	ShuffleBytes units.ByteSize
	// THDFSRead, TShuffle, TMemory are per-core throughputs as in the
	// other workloads.
	THDFSRead units.Rate
	TShuffle  units.Rate
	TMemory   units.Rate
	// LambdaValidate is dataValidator's task-to-I/O ratio.
	LambdaValidate float64
	// LambdaSubtract is the subtract task-to-shuffle-read ratio; 3.5
	// reproduces the paper's 6.2x HDD/SSD subtract gap at P=36.
	LambdaSubtract float64
}

// DefaultSVMParams returns the paper's dataset.
func DefaultSVMParams() SVMParams {
	return SVMParams{
		InputBytes:     96 * units.GB,
		CachedRDD:      82 * units.GB,
		Partitions:     1200,
		Iterations:     10,
		ShuffleBytes:   170 * units.GB,
		THDFSRead:      units.MBps(32.5),
		TShuffle:       units.MBps(60),
		TMemory:        units.MBps(400),
		LambdaValidate: 3,
		LambdaSubtract: 3.5,
	}
}

// Build constructs the three-phase SVM application.
func (p SVMParams) Build(cfg spark.ClusterConfig) spark.App {
	m := p.Partitions
	inPerTask := perTask(p.InputBytes, m)
	readT := ioTime(inPerTask, p.THDFSRead)
	stages := []spark.Stage{{
		Name: "dataValidator",
		Groups: []spark.TaskGroup{{
			Name:  "parse",
			Count: m,
			Ops: []spark.Op{
				spark.IOC(spark.OpHDFSRead, inPerTask, 0, p.THDFSRead,
					computeFor(p.LambdaValidate, readT)),
			},
		}},
	}}

	// In-memory training iterations: pure computation over the cached
	// RDD (82 GB fits in storage memory on the evaluation cluster; if it
	// doesn't fit here, the spill is re-read like LR-large).
	spill := spillToLocal(cfg, p.CachedRDD)
	cachedPerTask := perTask(p.CachedRDD-spill, m)
	iterOps := []spark.Op{spark.Compute(ioTime(cachedPerTask, p.TMemory))}
	if spill > 0 {
		iterOps = append([]spark.Op{
			spark.IO(spark.OpPersistRead, perTask(spill, m), 256*units.KB, p.TMemory),
		}, iterOps...)
	}
	for i := 1; i <= p.Iterations; i++ {
		stages = append(stages, spark.Stage{
			Name:   fmt.Sprintf("iter-%02d", i),
			Groups: []spark.TaskGroup{{Name: "train", Count: m, Ops: iterOps}},
		})
	}

	// subtract: groupByKey-style shuffle of 170 GB over the same
	// partitioning: per-reducer 145 MB pulled from 1200 map outputs
	// (~124 KB requests).
	shufPerRed := perTask(p.ShuffleBytes, m)
	shufReq := spark.ShuffleReadReqSize(shufPerRed, m)
	shufReadT := ioTime(shufPerRed, p.TShuffle)
	stages = append(stages,
		spark.Stage{
			Name: "subtract-map",
			Groups: []spark.TaskGroup{{
				Name:  "map",
				Count: m,
				Ops: []spark.Op{
					spark.Compute(ioTime(cachedPerTask, p.TMemory)),
					spark.IO(spark.OpShuffleWrite, shufPerRed, shufPerRed, p.TShuffle),
				},
			}},
		},
		spark.Stage{
			Name: "subtract",
			Groups: []spark.TaskGroup{{
				Name:  "reduce",
				Count: m,
				Ops: []spark.Op{
					spark.IOC(spark.OpShuffleRead, shufPerRed, shufReq, p.TShuffle,
						computeFor(p.LambdaSubtract, shufReadT)),
				},
			}},
		})
	return spark.App{Name: "SVM", Stages: stages}
}

func init() {
	Register(Workload{
		Name:        "svm",
		Description: "Support Vector Machine: 82GB cached RDD, 10 iterations, 170GB subtract shuffle",
		Build:       DefaultSVMParams().Build,
	})
}
