package workloads

// Registry-wide golden equivalence for wave coalescing: every workload,
// run on a homogeneous cluster, must produce a byte-identical
// spark.Result whether the simulator takes the coalesced
// (representative-node) path or the per-task path. This is the contract
// that lets the perf optimisation exist at all — see docs/PERF.md.

import (
	"reflect"
	"testing"

	"repro/internal/disk"
	"repro/internal/spark"
)

// homogeneousConfig is the paper testbed with every per-task
// heterogeneity source disabled, which is what makes a run eligible for
// coalescing in the first place.
func homogeneousConfig(slaves, cores int, hdfs, local disk.Device) spark.ClusterConfig {
	cfg := spark.DefaultTestbed(slaves, cores, hdfs, local)
	cfg.ComputeJitter = 0
	return cfg
}

func runBothPaths(t *testing.T, cfg spark.ClusterConfig, app spark.App) (coalesced, perTask *spark.Result) {
	t.Helper()
	coalesced, err := spark.Run(cfg, app)
	if err != nil {
		t.Fatalf("coalesced run: %v", err)
	}
	cfg.DisableCoalescing = true
	perTask, err = spark.Run(cfg, app)
	if err != nil {
		t.Fatalf("per-task run: %v", err)
	}
	return coalesced, perTask
}

// TestCoalescingGoldenRegistry runs every registered workload through
// both simulation paths on clusters where coalescing genuinely engages
// (4 and 8 slaves divide the registry's task counts at many stages) and
// where it must fall back, and requires identical Results.
func TestCoalescingGoldenRegistry(t *testing.T) {
	hdd, ssd := disk.NewHDD(), disk.NewSSD()
	shapes := []struct {
		name          string
		slaves, cores int
		hdfs, local   disk.Device
	}{
		{"4xSSD", 4, 8, ssd, ssd},
		{"4xHDD", 4, 8, hdd, hdd},
		{"8xHybrid", 8, 4, ssd, hdd},
		{"3xSSD", 3, 8, ssd, ssd}, // odd node count: most stages fall back
	}
	for _, name := range Names() {
		w, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, sh := range shapes {
			t.Run(name+"/"+sh.name, func(t *testing.T) {
				cfg := homogeneousConfig(sh.slaves, sh.cores, sh.hdfs, sh.local)
				app := w.Build(cfg)
				a, b := runBothPaths(t, cfg, app)
				if !reflect.DeepEqual(a, b) {
					t.Errorf("coalesced and per-task Results differ for %s on %s:\ncoalesced: %+v\nper-task:  %+v",
						name, sh.name, a, b)
				}
			})
		}
	}
}

// TestCoalescingGoldenJitterFallback checks the other side of the
// contract: with compute jitter on (the registry's default), both calls
// must take the per-task path and still agree — DisableCoalescing is a
// no-op when the run was never eligible.
func TestCoalescingGoldenJitterFallback(t *testing.T) {
	ssd := disk.NewSSD()
	for _, name := range Names() {
		w, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			cfg := spark.DefaultTestbed(4, 8, ssd, ssd) // jitter 0.15 default
			app := w.Build(cfg)
			a, b := runBothPaths(t, cfg, app)
			if !reflect.DeepEqual(a, b) {
				t.Errorf("per-task path is not deterministic for %s", name)
			}
		})
	}
}
