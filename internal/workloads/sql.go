package workloads

import (
	"repro/internal/spark"
	"repro/internal/units"
)

// SQLParams describes a Spark SQL scan/aggregate workload in the style
// of the big-data benchmark Ousterhout et al. [5] studied — the study
// whose "optimising disk I/O reduces runtime by at most 19%" finding
// the paper reconciles in Section VII-A: their workload moved only
// ~10 MB/s of disk traffic per active core on a 4:1 CPU:disk cluster,
// so Eq. 1's I/O-limit terms never bind. This workload reproduces those
// characteristics so the reconciliation can be demonstrated rather than
// asserted — and shows the same query becoming I/O-bound again on a
// core-rich 18:1 cluster like the paper's.
type SQLParams struct {
	// InputBytes is the scanned columnar table.
	InputBytes units.ByteSize
	// SelectivityShuffle is the fraction of input volume that survives
	// the filter and is shuffled for the aggregation (SQL queries
	// shuffle little).
	SelectivityShuffle float64
	// TMedia is the per-core media read rate while actually issuing I/O.
	TMedia units.Rate
	// EffectiveScanRate is the long-run per-core consumption including
	// the interleaved deserialisation and predicate evaluation — [5]'s
	// ~10 MB/s per active core. The gap to TMedia becomes coupled
	// compute.
	EffectiveScanRate units.Rate
	// TShuffle and LambdaAgg shape the small aggregation stage.
	TShuffle  units.Rate
	LambdaAgg float64
}

// DefaultSQLParams returns a query with [5]'s characteristics.
func DefaultSQLParams() SQLParams {
	return SQLParams{
		InputBytes:         200 * units.GB,
		SelectivityShuffle: 0.02,
		TMedia:             units.MBps(130),
		EffectiveScanRate:  units.MBps(10),
		TShuffle:           units.MBps(60),
		LambdaAgg:          4,
	}
}

// Build constructs the two-stage query: scan+filter, then aggregate.
func (p SQLParams) Build(cfg spark.ClusterConfig) spark.App {
	m := spark.HDFSTasks(p.InputBytes, cfg.HDFSBlockSize)
	inPerTask := perTask(p.InputBytes, m)
	// Coupled compute makes the long-run per-core rate EffectiveScanRate:
	// total = bytes/eff, blocked = bytes/media, coupled = difference.
	scanCoupled := ioTime(inPerTask, p.EffectiveScanRate) - ioTime(inPerTask, p.TMedia)

	shuffleBytes := units.ByteSize(float64(p.InputBytes) * p.SelectivityShuffle)
	reducers := m / 8
	if reducers < 1 {
		reducers = 1
	}
	shufPerRed := perTask(shuffleBytes, reducers)
	shufReq := spark.ShuffleReadReqSize(shufPerRed, m)
	aggReadT := ioTime(shufPerRed, p.TShuffle)

	return spark.App{Name: "SQLQuery", Stages: []spark.Stage{
		{
			Name: "scan",
			Groups: []spark.TaskGroup{{
				Name:  "scan-filter",
				Count: m,
				Ops: []spark.Op{
					spark.IOC(spark.OpHDFSRead, inPerTask, 0, p.TMedia, scanCoupled),
					spark.IO(spark.OpShuffleWrite, perTask(shuffleBytes, m),
						perTask(shuffleBytes, m), p.TShuffle),
				},
			}},
		},
		{
			Name: "aggregate",
			Groups: []spark.TaskGroup{{
				Name:  "agg",
				Count: reducers,
				Ops: []spark.Op{
					spark.IOC(spark.OpShuffleRead, shufPerRed, shufReq, p.TShuffle,
						computeFor(p.LambdaAgg, aggReadT)),
				},
			}},
		},
	}}
}

func init() {
	Register(Workload{
		Name:        "sql",
		Description: "SQL scan/aggregate with Ousterhout et al.'s low I/O intensity (~10MB/s per core, 2% shuffle selectivity)",
		Build:       DefaultSQLParams().Build,
	})
}
