package workloads

// Registry-wide golden pin for the memory subsystem: with HeapGB unset
// the memory layer must be completely inert, so every workload's Result
// must stay byte-identical to the totals recorded before the memory
// subsystem existed. The committed golden file was generated from the
// pre-memory tree; regenerate only with -update and only when a change
// is *supposed* to alter legacy results (which the memory work is not).

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/disk"
	"repro/internal/spark"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

const legacyGoldenFile = "testdata/memory_legacy_golden.json"

// legacyGolden records, per workload and cluster shape, the exact
// simulated totals (in nanoseconds) of a zero-heap run.
type legacyGolden struct {
	TotalNS  int64   `json:"total_ns"`
	StageEnd []int64 `json:"stage_end_ns"`
}

func legacyShapes() []struct {
	name          string
	slaves, cores int
	hdfs, local   disk.Device
} {
	hdd, ssd := disk.NewHDD(), disk.NewSSD()
	return []struct {
		name          string
		slaves, cores int
		hdfs, local   disk.Device
	}{
		{"4xSSD", 4, 8, ssd, ssd},
		{"4xHDD", 4, 8, hdd, hdd},
		{"8xHybrid", 8, 4, ssd, hdd},
	}
}

func legacyRun(t *testing.T, name string, sh struct {
	name          string
	slaves, cores int
	hdfs, local   disk.Device
}) legacyGolden {
	t.Helper()
	w, err := Get(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg := homogeneousConfig(sh.slaves, sh.cores, sh.hdfs, sh.local)
	res, err := spark.Run(cfg, w.Build(cfg))
	if err != nil {
		t.Fatalf("%s on %s: %v", name, sh.name, err)
	}
	g := legacyGolden{TotalNS: int64(res.Total)}
	for _, st := range res.Stages {
		g.StageEnd = append(g.StageEnd, int64(st.End))
	}
	return g
}

// TestMemoryLegacyGolden pins every registered workload's zero-heap
// simulation output to the pre-memory-subsystem goldens, byte for byte.
func TestMemoryLegacyGolden(t *testing.T) {
	got := map[string]map[string]legacyGolden{}
	for _, name := range Names() {
		got[name] = map[string]legacyGolden{}
		for _, sh := range legacyShapes() {
			got[name][sh.name] = legacyRun(t, name, sh)
		}
	}
	if *updateGolden {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(legacyGoldenFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(legacyGoldenFile, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", legacyGoldenFile)
		return
	}
	buf, err := os.ReadFile(legacyGoldenFile)
	if err != nil {
		t.Fatalf("missing golden file (run with -update from a known-good tree): %v", err)
	}
	var want map[string]map[string]legacyGolden
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	for name, shapes := range want {
		for shName, wantG := range shapes {
			gotG, ok := got[name][shName]
			if !ok {
				t.Errorf("golden has %s/%s but run did not produce it", name, shName)
				continue
			}
			if gotG.TotalNS != wantG.TotalNS {
				t.Errorf("%s/%s: Total drifted from legacy golden: got %d ns, want %d ns",
					name, shName, gotG.TotalNS, wantG.TotalNS)
			}
			for i := range wantG.StageEnd {
				if i >= len(gotG.StageEnd) || gotG.StageEnd[i] != wantG.StageEnd[i] {
					t.Errorf("%s/%s: stage %d end drifted from legacy golden", name, shName, i)
					break
				}
			}
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Logf("note: workload %q has no legacy golden entry (new workload?)", name)
		}
	}
}
