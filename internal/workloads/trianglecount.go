package workloads

import (
	"repro/internal/spark"
	"repro/internal/units"
)

// TriangleCountParams describes Spark GraphX Triangle Count (paper
// Section V-B4): graphLoader then computeTriangleCount, which first
// repartitions/canonicalises the graph (a 396 GB shuffle) and then
// counts triangles over a 49 GB cached RDD.
type TriangleCountParams struct {
	// InputBytes is the edge list input.
	InputBytes units.ByteSize
	// CachedRDD is the canonical graph RDD (49 GB; cacheable).
	CachedRDD units.ByteSize
	// ShuffleBytes is the canonicalisation shuffle volume (396 GB).
	ShuffleBytes units.ByteSize
	// Partitions is the graph partition count (paper: 2400).
	Partitions int
	// Throughputs as elsewhere.
	THDFSRead units.Rate
	TShuffle  units.Rate
	TMemory   units.Rate
	// LambdaLoad is graphLoader's task-to-I/O ratio.
	LambdaLoad float64
	// LambdaCount is the shuffle-read-to-task ratio of
	// computeTriangleCount; 10 reproduces the paper's 6.5x HDD/SSD gap
	// at P=36.
	LambdaCount float64
}

// DefaultTriangleCountParams returns the paper's 1M-vertex dataset.
func DefaultTriangleCountParams() TriangleCountParams {
	return TriangleCountParams{
		InputBytes:   60 * units.GB,
		CachedRDD:    49 * units.GB,
		ShuffleBytes: 396 * units.GB,
		Partitions:   2400,
		THDFSRead:    units.MBps(32.5),
		TShuffle:     units.MBps(60),
		TMemory:      units.MBps(400),
		LambdaLoad:   4,
		LambdaCount:  10,
	}
}

// Build constructs the two-phase Triangle Count application. The
// canonicalisation shuffle is split into its map (shuffle write) and
// reduce (shuffle read + count) halves, as GraphX executes it.
func (p TriangleCountParams) Build(cfg spark.ClusterConfig) spark.App {
	m := p.Partitions
	loaders := spark.HDFSTasks(p.InputBytes, cfg.HDFSBlockSize)
	inPerTask := perTask(p.InputBytes, loaders)
	readT := ioTime(inPerTask, p.THDFSRead)

	shufPerTask := perTask(p.ShuffleBytes, m)
	shufReq := spark.ShuffleReadReqSize(shufPerTask, m)
	shufReadT := ioTime(shufPerTask, p.TShuffle)
	cachedPerTask := perTask(p.CachedRDD, m)

	return spark.App{Name: "TriangleCount", Stages: []spark.Stage{
		{
			Name: "graphLoader",
			Groups: []spark.TaskGroup{{
				Name:  "load",
				Count: loaders,
				Ops: []spark.Op{
					spark.IOC(spark.OpHDFSRead, inPerTask, 0, p.THDFSRead,
						computeFor(p.LambdaLoad, readT)),
				},
			}},
		},
		{
			Name: "canonicalize",
			Groups: []spark.TaskGroup{{
				Name:  "repartition-map",
				Count: m,
				Ops: []spark.Op{
					spark.Compute(ioTime(cachedPerTask, p.TMemory)),
					spark.IO(spark.OpShuffleWrite, shufPerTask, shufPerTask, p.TShuffle),
				},
			}},
		},
		{
			Name: "computeTriangleCount",
			Groups: []spark.TaskGroup{{
				Name:  "count",
				Count: m,
				Ops: []spark.Op{
					spark.IOC(spark.OpShuffleRead, shufPerTask, shufReq, p.TShuffle,
						computeFor(p.LambdaCount, shufReadT)),
				},
			}},
		},
	}}
}

func init() {
	Register(Workload{
		Name:        "trianglecount",
		Description: "GraphX Triangle Count: 396GB canonicalisation shuffle, 49GB cached RDD",
		Build:       DefaultTriangleCountParams().Build,
	})
}
