package workloads

// Registry-wide golden equivalence for partial (clean-node)
// coalescing: every workload, run with degraded-mode machinery enabled
// — fault injection, speculation, stragglers — must produce a
// byte-identical spark.Result whether the simulator takes its default
// path (partial coalescing where the pre-drawn plan allows, with
// runtime bail-out) or the DisableCoalescing per-task replay. Together
// with FuzzFaultyCoalesce in internal/spark this is the acceptance
// gate for the degraded-mode fast path — see docs/PERF.md.

import (
	"reflect"
	"testing"

	"repro/internal/disk"
	"repro/internal/spark"
)

// faultProfiles are representative degraded configurations applied on
// top of a homogeneous cluster: the regimes of the paper's failure,
// fetch-failure and straggler measurements.
func faultProfiles() map[string]func(cfg *spark.ClusterConfig) {
	return map[string]func(cfg *spark.ClusterConfig){
		"faults": func(cfg *spark.ClusterConfig) {
			cfg.Faults = spark.FaultConfig{TaskFailureProb: 0.004, Seed: 7, RetryBackoff: 0.05}
		},
		"fetch": func(cfg *spark.ClusterConfig) {
			cfg.Faults = spark.FaultConfig{TaskFailureProb: 0.002, ShuffleFetchFailureProb: 0.01, Seed: 3, RetryBackoff: 0.05}
		},
		"stragglers": func(cfg *spark.ClusterConfig) {
			cfg.Speculation = true
			cfg.StragglerFraction = 0.01
			cfg.StragglerSlowdown = 4
		},
		"all": func(cfg *spark.ClusterConfig) {
			cfg.Speculation = true
			cfg.StragglerFraction = 0.008
			cfg.StragglerSlowdown = 4
			cfg.Faults = spark.FaultConfig{TaskFailureProb: 0.003, ShuffleFetchFailureProb: 0.005, Seed: 11, RetryBackoff: 0.05}
		},
	}
}

// TestFaultyCoalescingGoldenRegistry runs every registered workload
// under every fault profile on shapes where partial coalescing can
// engage (divisible task counts) and where it must fall back (odd node
// counts), and requires identical Results from both paths.
func TestFaultyCoalescingGoldenRegistry(t *testing.T) {
	hdd, ssd := disk.NewHDD(), disk.NewSSD()
	shapes := []struct {
		name          string
		slaves, cores int
		hdfs, local   disk.Device
	}{
		{"8xSSD", 8, 4, ssd, ssd},
		{"4xHDD", 4, 8, hdd, hdd},
		{"3xSSD", 3, 8, ssd, ssd}, // never partial-eligible: per-task on both calls
	}
	for _, name := range Names() {
		w, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, sh := range shapes {
			for prof, apply := range faultProfiles() {
				t.Run(name+"/"+sh.name+"/"+prof, func(t *testing.T) {
					cfg := homogeneousConfig(sh.slaves, sh.cores, sh.hdfs, sh.local)
					apply(&cfg)
					app := w.Build(cfg)
					a, b := runBothPaths(t, cfg, app)
					if !reflect.DeepEqual(a, b) {
						t.Errorf("default and per-task Results differ for %s on %s under %s:\ndefault:  %+v\nper-task: %+v",
							name, sh.name, prof, a, b)
					}
				})
			}
		}
	}
}
