package workloads

import (
	"repro/internal/spark"
	"repro/internal/units"
)

// GATK4FullParams extends the three-stage pipeline with the two stages
// the paper's conclusion defers to future work: the Burrows-Wheeler
// Aligner (BWA) in front and HaplotypeCaller (HC) behind — both present
// in the January 2018 GATK4 release. Both are strongly compute-bound
// (alignment and local haplotype assembly), so the extension
// demonstrates the model's prediction that adding them dilutes, but
// does not remove, the pipeline's storage sensitivity.
type GATK4FullParams struct {
	// Base is the MD/BR/SF core.
	Base GATK4Params
	// FastqBytes is the unaligned input consumed by BWA (~107 GB of
	// compressed FASTQ for the 500M read-pair genome).
	FastqBytes units.ByteSize
	// LambdaBWA is BWA's task-to-HDFS-read ratio. Alignment dominates:
	// tens of CPU-minutes per 128 MB chunk.
	LambdaBWA float64
	// VcfBytes is HaplotypeCaller's variant output (~1 GB).
	VcfBytes units.ByteSize
	// LambdaHC is HC's task-to-HDFS-read ratio over the analysis-ready
	// BAM.
	LambdaHC float64
}

// DefaultGATK4FullParams returns the six-stage pipeline.
func DefaultGATK4FullParams() GATK4FullParams {
	return GATK4FullParams{
		Base:       DefaultGATK4Params(),
		FastqBytes: 107 * units.GB,
		LambdaBWA:  45,
		VcfBytes:   units.GB,
		LambdaHC:   30,
	}
}

// Build constructs BWA → MD → BR → SF → HC.
func (p GATK4FullParams) Build(cfg spark.ClusterConfig) spark.App {
	base := p.Base.Build(cfg)

	// BWA: read FASTQ chunks, align (heavily compute-coupled), emit the
	// aligned BAM the MD stage consumes.
	bwaTasks := spark.HDFSTasks(p.FastqBytes, cfg.HDFSBlockSize)
	fastqPerTask := perTask(p.FastqBytes, bwaTasks)
	bamPerTask := perTask(p.Base.InputBAM, bwaTasks)
	readT := ioTime(fastqPerTask, p.Base.THDFSRead)
	bwaWrite := ioTime(bamPerTask, p.Base.TShuffle)
	bwaCompute := computeFor(p.LambdaBWA, readT) - bwaWrite
	if bwaCompute < 0 {
		bwaCompute = 0
	}
	bwa := spark.Stage{
		Name: "BWA",
		Groups: []spark.TaskGroup{{
			Name:  "align",
			Count: bwaTasks,
			Ops: []spark.Op{
				spark.IOC(spark.OpHDFSRead, fastqPerTask, 0, p.Base.THDFSRead, bwaCompute),
				spark.IO(spark.OpHDFSWrite, bamPerTask, 0, p.Base.TShuffle),
			},
		}},
	}

	// HC: read the analysis-ready BAM, assemble haplotypes
	// (compute-bound), write the VCF.
	hcTasks := spark.HDFSTasks(p.Base.OutputBAM, cfg.HDFSBlockSize)
	bamInPerTask := perTask(p.Base.OutputBAM, hcTasks)
	vcfPerTask := perTask(p.VcfBytes, hcTasks)
	hcRead := ioTime(bamInPerTask, p.Base.THDFSRead)
	hc := spark.Stage{
		Name: "HC",
		Groups: []spark.TaskGroup{{
			Name:  "call",
			Count: hcTasks,
			Ops: []spark.Op{
				spark.IOC(spark.OpHDFSRead, bamInPerTask, 0, p.Base.THDFSRead,
					computeFor(p.LambdaHC, hcRead)),
				spark.IO(spark.OpHDFSWrite, vcfPerTask, 0, p.Base.TShuffle),
			},
		}},
	}

	stages := append([]spark.Stage{bwa}, base.Stages...)
	stages = append(stages, hc)
	return spark.App{Name: "GATK4-full", Stages: stages}
}

func init() {
	Register(Workload{
		Name:        "gatk4-full",
		Description: "Extended GATK4: BWA alignment + MD/BR/SF + HaplotypeCaller (paper's future work, Jan 2018 release)",
		Build:       DefaultGATK4FullParams().Build,
	})
}
