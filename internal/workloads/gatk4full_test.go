package workloads

import (
	"testing"

	"repro/internal/disk"
	"repro/internal/spark"
)

func TestGATK4FullStructure(t *testing.T) {
	cfg := testbed(3, 36, disk.NewSSD(), disk.NewSSD())
	app := DefaultGATK4FullParams().Build(cfg)
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	want := []string{"BWA", "MD", "BR", "SF", "HC"}
	if len(app.Stages) != len(want) {
		t.Fatalf("stages = %d, want %d", len(app.Stages), len(want))
	}
	for i, n := range want {
		if app.Stages[i].Name != n {
			t.Errorf("stage %d = %s, want %s", i, app.Stages[i].Name, n)
		}
	}
	// BWA hands the MD stage its input volume.
	bwaOut := app.Stages[0].TotalBytes(spark.OpHDFSWrite)
	mdIn := app.Stages[1].TotalBytes(spark.OpHDFSRead)
	if r := float64(bwaOut) / float64(mdIn); r < 0.95 || r > 1.05 {
		t.Errorf("BWA output %v vs MD input %v", bwaOut, mdIn)
	}
}

// TestGATK4FullComputeStagesInsensitiveToLocalDisk: BWA and HC never
// touch Spark Local, so a local HDD must not slow them while it still
// cripples BR and SF — the model's prediction for the extended pipeline.
func TestGATK4FullComputeStagesInsensitiveToLocalDisk(t *testing.T) {
	hdd, ssd := disk.NewHDD(), disk.NewSSD()
	run := func(local disk.Device) *spark.Result {
		cfg := testbed(3, 36, ssd, local)
		return runOn(t, "gatk4-full", cfg)
	}
	fast, slow := run(ssd), run(hdd)
	for _, stage := range []string{"BWA", "HC"} {
		f := fast.MustStage(stage).Duration().Seconds()
		s := slow.MustStage(stage).Duration().Seconds()
		if ratio := s / f; ratio > 1.05 {
			t.Errorf("%s slowed %.2fx by local HDD; it does no local I/O", stage, ratio)
		}
	}
	for _, stage := range []string{"BR", "SF"} {
		f := fast.MustStage(stage).Duration().Seconds()
		s := slow.MustStage(stage).Duration().Seconds()
		if ratio := s / f; ratio < 3 {
			t.Errorf("%s only %.1fx slower on local HDD; expected severe", stage, ratio)
		}
	}
	// The extension dilutes the whole-pipeline sensitivity below the
	// three-stage pipeline's.
	threeFast := runOn(t, "gatk4", testbed(3, 36, ssd, ssd))
	threeSlow := runOn(t, "gatk4", testbed(3, 36, ssd, hdd))
	threeGap := threeSlow.Total.Seconds() / threeFast.Total.Seconds()
	fullGap := slow.Total.Seconds() / fast.Total.Seconds()
	if fullGap >= threeGap {
		t.Errorf("full pipeline gap %.1fx should be below the core pipeline's %.1fx", fullGap, threeGap)
	}
	if fullGap < 1.5 {
		t.Errorf("full pipeline gap %.1fx; storage should still matter", fullGap)
	}
}
