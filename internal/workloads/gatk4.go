package workloads

import (
	"time"

	"repro/internal/spark"
	"repro/internal/units"
)

// GATK4Params are the published characteristics of the Spark-based
// Genome Analysis ToolKit processing one 30x whole human genome with
// 500 million read pairs (paper Sections II-C, III and V-A).
type GATK4Params struct {
	// InputBAM is the compressed input genome (122 GB).
	InputBAM units.ByteSize
	// ShuffleBytes is the intermediate volume written by MarkDuplicate
	// and read back by BaseRecalibrator and SaveAsNewAPIHadoopFile
	// (Table IV: 334 GB each).
	ShuffleBytes units.ByteSize
	// OutputBAM is the analysis-ready output (166 GB).
	OutputBAM units.ByteSize
	// ReducerBytes is the tuned per-reducer shuffle volume (27 MB),
	// which together with the mapper count determines the ~30 KB shuffle
	// read request size.
	ReducerBytes units.ByteSize
	// THDFSRead is the per-core HDFS read+parse throughput. The paper
	// gives the break points b=4.3 (HDD) and b=16 (SSD) for HDFS read in
	// MD, both of which imply T ≈ 140/4.3 ≈ 520/16 ≈ 32.5 MB/s.
	THDFSRead units.Rate
	// TShuffle is the per-core shuffle read/write throughput including
	// (de)serialisation and (de)compression: the paper's T = 60 MB/s.
	TShuffle units.Rate
	// LambdaMD is MD's task-time to HDFS-read-time ratio (paper: 12).
	LambdaMD float64
	// LambdaBRFilter is the ratio for BR's nonPrimaryReads HDFS-read
	// tasks (paper: 1.3).
	LambdaBRFilter float64
	// LambdaBR is the ratio for BR's shuffle-read recalibration tasks
	// (paper: 20).
	LambdaBR float64
	// LambdaSF is the ratio for SF's tasks. The paper states only that it
	// is smaller than BR's; 14 reproduces the ~9.5x SF local-disk gain.
	LambdaSF float64
	// GCPerCore and GCFreeCores shape the MarkDuplicate garbage
	// collection model: extra per-task time GCPerCore·(P-GCFreeCores)
	// for P above GCFreeCores. The paper observes GC makes MD flat in P
	// on SSDs (Section V-A1) while keeping it below BR at P=36.
	GCPerCore   time.Duration
	GCFreeCores int
	// HDFSWriteReqSize is the effective request size of SF's output
	// writes. The BAM writer emits ~1 MB compressed blocks, which is
	// what makes SF the most HDFS-disk-sensitive stage (the paper's "up
	// to 90%" gain from an SSD HDFS).
	HDFSWriteReqSize units.ByteSize
}

// DefaultGATK4Params returns the paper's whole-genome run.
func DefaultGATK4Params() GATK4Params {
	return GATK4Params{
		InputBAM:         122 * units.GB,
		ShuffleBytes:     334 * units.GB,
		OutputBAM:        166 * units.GB,
		ReducerBytes:     27 * units.MB,
		THDFSRead:        units.MBps(32.5),
		TShuffle:         units.MBps(60),
		LambdaMD:         12,
		LambdaBRFilter:   1.3,
		LambdaBR:         20,
		LambdaSF:         14,
		GCPerCore:        2500 * time.Millisecond,
		GCFreeCores:      12,
		HDFSWriteReqSize: units.MB,
	}
}

// Build constructs the three-stage GATK4 pipeline (Fig. 1):
// MarkDuplicate (MD), BaseRecalibrator (BR), SaveAsNewAPIHadoopFile (SF).
func (p GATK4Params) Build(cfg spark.ClusterConfig) spark.App {
	mappers := spark.HDFSTasks(p.InputBAM, cfg.HDFSBlockSize)
	reducers := int(p.ShuffleBytes / p.ReducerBytes)

	hdfsPerMap := perTask(p.InputBAM, mappers)
	shufPerMap := perTask(p.ShuffleBytes, mappers)
	shufPerRed := perTask(p.ShuffleBytes, reducers)
	outPerRed := perTask(p.OutputBAM, reducers)
	shufReq := spark.ShuffleReadReqSize(shufPerRed, mappers)

	// MD: read a block with the dedup computation interleaved, then
	// spill one large sorted chunk (~365 MB in the paper — here the
	// whole per-mapper shuffle output). λ_MD=12 is the ratio of the
	// whole task to the HDFS read I/O.
	hdfsReadT := ioTime(hdfsPerMap, p.THDFSRead)
	shufWriteT := ioTime(shufPerMap, p.TShuffle)
	mdCompute := computeFor(p.LambdaMD, hdfsReadT) - shufWriteT
	if mdCompute < 0 {
		mdCompute = 0
	}
	var gc func(int) time.Duration
	if p.GCPerCore > 0 {
		gc = func(pp int) time.Duration {
			extra := pp - p.GCFreeCores
			if extra <= 0 {
				return 0
			}
			return time.Duration(extra) * p.GCPerCore
		}
	}
	// The dedup computation interleaves with the block read; the sort
	// computation interleaves with the spill write (Spark spills sorted
	// runs while the map task is still processing).
	dedupCompute := time.Duration(float64(mdCompute) * 0.6)
	sortCompute := mdCompute - dedupCompute
	md := spark.Stage{
		Name: "MD",
		Groups: []spark.TaskGroup{{
			Name:  "dedup-map",
			Count: mappers,
			Ops: []spark.Op{
				spark.IOC(spark.OpHDFSRead, hdfsPerMap, 0, p.THDFSRead, dedupCompute),
				spark.IOC(spark.OpShuffleWrite, shufPerMap, shufPerMap, p.TShuffle, sortCompute),
			},
			GC: gc,
		}},
	}

	// BR: a small population of HDFS-read filter tasks (nonPrimaryReads,
	// mostly filtered out) plus the dominant shuffle-read recalibration
	// tasks.
	shufReadT := ioTime(shufPerRed, p.TShuffle)
	br := spark.Stage{
		Name: "BR",
		Groups: []spark.TaskGroup{
			{
				Name:  "filter",
				Count: mappers,
				Ops: []spark.Op{
					spark.IOC(spark.OpHDFSRead, hdfsPerMap, 0, p.THDFSRead,
						computeFor(p.LambdaBRFilter, hdfsReadT)),
				},
			},
			{
				Name:  "recal",
				Count: reducers,
				Ops: []spark.Op{
					spark.IOC(spark.OpShuffleRead, shufPerRed, shufReq, p.TShuffle,
						computeFor(p.LambdaBR, shufReadT)),
				},
			},
		},
	}

	// SF: re-read the shuffle (markedReads is too large to cache,
	// Section III-B2), apply recalibrated scores, write the output BAM.
	outWriteT := ioTime(outPerRed, p.TShuffle)
	sfCompute := computeFor(p.LambdaSF, shufReadT) - outWriteT
	if sfCompute < 0 {
		sfCompute = 0
	}
	// SF re-reads the input from HDFS as well (Table IV): markedReads is
	// a union of the shuffled primary reads and the nonPrimaryReads
	// recomputed from the BAM, exactly as in BR.
	sf := spark.Stage{
		Name: "SF",
		Groups: []spark.TaskGroup{
			{
				Name:  "recompute",
				Count: mappers,
				Ops: []spark.Op{
					spark.IOC(spark.OpHDFSRead, hdfsPerMap, 0, p.THDFSRead,
						computeFor(p.LambdaBRFilter, hdfsReadT)),
				},
			},
			{
				Name:  "save",
				Count: reducers,
				Ops: []spark.Op{
					spark.IOC(spark.OpShuffleRead, shufPerRed, shufReq, p.TShuffle, sfCompute),
					spark.IO(spark.OpHDFSWrite, outPerRed, p.HDFSWriteReqSize, p.TShuffle),
				},
			},
		},
	}

	return spark.App{Name: "GATK4", Stages: []spark.Stage{md, br, sf}}
}

func init() {
	Register(Workload{
		Name:        "gatk4",
		Description: "GATK4 genome pipeline: MarkDuplicate, BaseRecalibrator, SaveAsNewAPIHadoopFile (500M read pairs)",
		Build:       DefaultGATK4Params().Build,
	})
}
