package workloads

import (
	"repro/internal/spark"
	"repro/internal/units"
)

// TerasortParams describes SparkBench Terasort (paper Section V-B5):
// 10 billion 100-byte records, 930 GB total, in two stages —
// newAPIHadoopFile (NF: HDFS read, range partition, shuffle write) and
// saveAsNewAPIHadoopFile (SF: shuffle read, in-range sort, HDFS write).
type TerasortParams struct {
	// DataBytes is the total dataset size (930 GB).
	DataBytes units.ByteSize
	// Reducers is the range-partition count. SparkBench tunes coarse
	// ranges (~3.6 GB per reducer), which keeps shuffle read requests
	// around 512 KB — large enough that the HDD local penalty is the
	// paper's 2.6x rather than the 30 KB-request catastrophe of GATK4.
	Reducers int
	// SpillChunk is the sorted-run size mappers write (shuffle write
	// request size).
	SpillChunk units.ByteSize
	// Throughputs as elsewhere.
	THDFSRead units.Rate
	TShuffle  units.Rate
	// LambdaNF and LambdaSF are the task-to-I/O ratios of the two
	// stages' dominant operations.
	LambdaNF float64
	LambdaSF float64
}

// DefaultTerasortParams returns the paper's 10B-record dataset.
func DefaultTerasortParams() TerasortParams {
	return TerasortParams{
		DataBytes:  930 * units.GB,
		Reducers:   512,
		SpillChunk: 365 * units.MB,
		THDFSRead:  units.MBps(60),
		TShuffle:   units.MBps(60),
		LambdaNF:   2.0,
		LambdaSF:   2.0,
	}
}

// Build constructs the two-stage Terasort application.
func (p TerasortParams) Build(cfg spark.ClusterConfig) spark.App {
	mappers := spark.HDFSTasks(p.DataBytes, cfg.HDFSBlockSize)
	inPerMap := perTask(p.DataBytes, mappers)
	readT := ioTime(inPerMap, p.THDFSRead)
	shufWriteT := ioTime(inPerMap, p.TShuffle)

	perRed := perTask(p.DataBytes, p.Reducers)
	shufReq := spark.ShuffleReadReqSize(perRed, mappers)
	shufReadT := ioTime(perRed, p.TShuffle)
	writeT := ioTime(perRed, p.TShuffle)

	// λ applies to the whole task over its combined I/O time; the CPU
	// work (range partitioning / in-range sort) interleaves with the
	// read side of each stage.
	nfCompute := computeFor(p.LambdaNF, readT+shufWriteT)
	sfCompute := computeFor(p.LambdaSF, shufReadT+writeT)

	return spark.App{Name: "Terasort", Stages: []spark.Stage{
		{
			Name: "NF",
			Groups: []spark.TaskGroup{{
				Name:  "partition",
				Count: mappers,
				Ops: []spark.Op{
					spark.IOC(spark.OpHDFSRead, inPerMap, 0, p.THDFSRead, nfCompute),
					spark.IO(spark.OpShuffleWrite, inPerMap, p.SpillChunk, p.TShuffle),
				},
			}},
		},
		{
			Name: "SF",
			Groups: []spark.TaskGroup{{
				Name:  "sort-save",
				Count: p.Reducers,
				Ops: []spark.Op{
					spark.IOC(spark.OpShuffleRead, perRed, shufReq, p.TShuffle, sfCompute),
					spark.IO(spark.OpHDFSWrite, perRed, 0, p.TShuffle),
				},
			}},
		},
	}}
}

func init() {
	Register(Workload{
		Name:        "terasort",
		Description: "Terasort: 930GB, range partition (NF) then sorted write (SF)",
		Build:       DefaultTerasortParams().Build,
	})
}
