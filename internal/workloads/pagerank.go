package workloads

import (
	"fmt"

	"repro/internal/spark"
	"repro/internal/units"
)

// PageRankParams describes Spark GraphX PageRank (paper Section V-B3):
// graphLoader, ten iterations over a 420 GB graph RDD (too large for
// the ten-slave cluster's 360 GB storage memory, so its tail persists in
// Spark Local), and saveAsTextFile.
type PageRankParams struct {
	// InputBytes is the edge list read by graphLoader.
	InputBytes units.ByteSize
	// GraphRDD is the materialised graph + rank RDD footprint (420 GB).
	GraphRDD units.ByteSize
	// Partitions is the graph partition count (paper: 4800).
	Partitions int
	// Iterations is the PageRank iteration count (paper: 10).
	Iterations int
	// OutputBytes is the final ranks text output.
	OutputBytes units.ByteSize
	// Throughputs as elsewhere.
	THDFSRead units.Rate
	TPersist  units.Rate
	TMemory   units.Rate
	// PersistReqSize is the Spark disk-store access size.
	PersistReqSize units.ByteSize
	// LambdaLoad is graphLoader's task-to-I/O ratio.
	LambdaLoad float64
	// IterComputePerByte scales the per-iteration computation with the
	// cached portion; together with the ~60 GB spill this reproduces the
	// paper's 2.2x HDD/SSD iteration gap.
	IterComputeRate units.Rate
}

// DefaultPageRankParams returns the paper's 20M-vertex dataset.
func DefaultPageRankParams() PageRankParams {
	return PageRankParams{
		InputBytes:      150 * units.GB,
		GraphRDD:        420 * units.GB,
		Partitions:      4800,
		Iterations:      10,
		OutputBytes:     20 * units.GB,
		THDFSRead:       units.MBps(32.5),
		TPersist:        units.MBps(200),
		TMemory:         units.MBps(400),
		PersistReqSize:  256 * units.KB,
		LambdaLoad:      5,
		IterComputeRate: units.MBps(11),
	}
}

// Build constructs the PageRank application. Each iteration reads the
// previous iteration's RDD (cached portion from memory, spilled portion
// from Spark Local) and writes the next one (spilled portion back to
// Spark Local) — the paper's description of GraphX iteration I/O.
func (p PageRankParams) Build(cfg spark.ClusterConfig) spark.App {
	m := p.Partitions
	loaders := spark.HDFSTasks(p.InputBytes, cfg.HDFSBlockSize)
	inPerTask := perTask(p.InputBytes, loaders)
	readT := ioTime(inPerTask, p.THDFSRead)
	spill := spillToLocal(cfg, p.GraphRDD)
	spillPerTask := perTask(spill, m)
	cachedPerTask := perTask(p.GraphRDD-spill, m)

	// graphLoader parses the edge list; the graph RDD itself
	// materialises lazily during the first iteration (GraphX), which is
	// where the spilled portion is first persisted.
	loadOps := []spark.Op{
		spark.IOC(spark.OpHDFSRead, inPerTask, 0, p.THDFSRead,
			computeFor(p.LambdaLoad, readT)),
	}
	stages := []spark.Stage{{
		Name:   "graphLoader",
		Groups: []spark.TaskGroup{{Name: "load", Count: loaders, Ops: loadOps}},
	}}

	iterCompute := ioTime(cachedPerTask, p.IterComputeRate)
	for i := 1; i <= p.Iterations; i++ {
		iterOps := []spark.Op{spark.Compute(iterCompute)}
		if spill > 0 {
			if i == 1 {
				// First iteration materialises the graph and persists the
				// portion that does not fit in storage memory.
				iterOps = []spark.Op{
					spark.Compute(iterCompute),
					spark.IO(spark.OpPersistWrite, spillPerTask, p.PersistReqSize, p.TPersist),
				}
			} else {
				iterOps = []spark.Op{
					spark.IOC(spark.OpPersistRead, spillPerTask, p.PersistReqSize, p.TPersist, iterCompute),
					spark.IO(spark.OpPersistWrite, spillPerTask, p.PersistReqSize, p.TPersist),
				}
			}
		}
		stages = append(stages, spark.Stage{
			Name:   fmt.Sprintf("iter-%02d", i),
			Groups: []spark.TaskGroup{{Name: "rank", Count: m, Ops: iterOps}},
		})
	}

	outPerTask := perTask(p.OutputBytes, m)
	stages = append(stages, spark.Stage{
		Name: "saveAsTextFile",
		Groups: []spark.TaskGroup{{
			Name:  "save",
			Count: m,
			Ops: []spark.Op{
				spark.Compute(ioTime(cachedPerTask, p.TMemory)),
				spark.IO(spark.OpHDFSWrite, outPerTask, 0, p.TPersist),
			},
		}},
	})
	return spark.App{Name: "PageRank", Stages: stages}
}

func init() {
	Register(Workload{
		Name:        "pagerank",
		Description: "GraphX PageRank: 420GB graph RDD (partially spilled), 10 iterations",
		Build:       DefaultPageRankParams().Build,
	})
}
