package workloads

import (
	"sync"
	"testing"

	"repro/internal/disk"
	"repro/internal/spark"
)

// TestConcurrentBuildsAreIndependent asserts the registered workload
// builders are safe to invoke concurrently and return independent Apps
// — required by the parallel experiment harness and the grid sweeps,
// which call Build(cfg) from pool workers. Run under -race in CI.
func TestConcurrentBuildsAreIndependent(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent full workload sims")
	}
	for _, name := range []string{"gatk4", "terasort"} {
		w, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := testbed(3, 8, disk.NewSSD(), disk.NewSSD())
		ref, err := spark.Run(cfg, w.Build(cfg))
		if err != nil {
			t.Fatal(err)
		}
		const runs = 4
		var wg sync.WaitGroup
		for i := 0; i < runs; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				res, err := spark.Run(cfg, w.Build(cfg))
				if err != nil {
					t.Error(err)
					return
				}
				if res.Total != ref.Total {
					t.Errorf("concurrent %s run total %v != %v", name, res.Total, ref.Total)
				}
			}()
		}
		wg.Wait()
	}
}
