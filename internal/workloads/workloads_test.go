package workloads

import (
	"strings"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/spark"
	"repro/internal/units"
)

func testbed(slaves, cores int, hdfs, local disk.Device) spark.ClusterConfig {
	return spark.DefaultTestbed(slaves, cores, hdfs, local)
}

func runOn(t *testing.T, name string, cfg spark.ClusterConfig) *spark.Result {
	t.Helper()
	w, err := Get(name)
	if err != nil {
		t.Fatal(err)
	}
	app := w.Build(cfg)
	if err := app.Validate(); err != nil {
		t.Fatalf("%s: invalid app: %v", name, err)
	}
	res, err := spark.Run(cfg, app)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return res
}

// phaseSum aggregates stage durations by name prefix (e.g. all "iter-*"
// stages of an iterative workload).
func phaseSum(res *spark.Result, prefix string) time.Duration {
	var total time.Duration
	for _, s := range res.Stages {
		if strings.HasPrefix(s.Name, prefix) {
			total += s.Duration()
		}
	}
	return total
}

func TestRegistry(t *testing.T) {
	want := []string{"gatk4", "gatk4-full", "lr-large", "lr-small", "pagerank", "sql", "svm", "terasort", "trianglecount"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registered %v, want %v", got, want)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Error("Get(nope) should fail")
	}
	for _, n := range want {
		w, err := Get(n)
		if err != nil {
			t.Fatal(err)
		}
		if w.Description == "" {
			t.Errorf("%s: empty description", n)
		}
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Register(Workload{Name: "gatk4"})
}

func TestAllWorkloadsBuildValidApps(t *testing.T) {
	ssd := disk.NewSSD()
	for _, n := range Names() {
		w, _ := Get(n)
		for _, slaves := range []int{1, 3, 10} {
			cfg := testbed(slaves, 8, ssd, ssd)
			app := w.Build(cfg)
			if err := app.Validate(); err != nil {
				t.Errorf("%s on %d slaves: %v", n, slaves, err)
			}
		}
	}
}

// TestGATK4TableIV verifies the simulator's I/O accounting reproduces
// the paper's Table IV: per-stage HDFS read / shuffle write / shuffle
// read / HDFS write volumes.
func TestGATK4TableIV(t *testing.T) {
	ssd := disk.NewSSD()
	cfg := testbed(3, 36, ssd, ssd)
	res := runOn(t, "gatk4", cfg)

	within := func(got, want units.ByteSize, what string) {
		t.Helper()
		lo, hi := float64(want)*0.97, float64(want)*1.03
		if f := float64(got); f < lo || f > hi {
			t.Errorf("%s = %v, want ≈%v", what, got, want)
		}
	}
	md := res.MustStage("MD")
	within(md.IO[spark.OpHDFSRead].Bytes, 122*units.GB, "MD hdfs read")
	within(md.IO[spark.OpShuffleWrite].Bytes, 334*units.GB, "MD shuffle write")
	if md.IO[spark.OpShuffleRead].Bytes != 0 || md.IO[spark.OpHDFSWrite].Bytes != 0 {
		t.Error("MD should have no shuffle read / hdfs write")
	}

	br := res.MustStage("BR")
	within(br.IO[spark.OpHDFSRead].Bytes, 122*units.GB, "BR hdfs read")
	within(br.IO[spark.OpShuffleRead].Bytes, 334*units.GB, "BR shuffle read")
	if br.IO[spark.OpShuffleWrite].Bytes != 0 || br.IO[spark.OpHDFSWrite].Bytes != 0 {
		t.Error("BR should have no shuffle write / hdfs write")
	}

	sf := res.MustStage("SF")
	within(sf.IO[spark.OpShuffleRead].Bytes, 334*units.GB, "SF shuffle read")
	// HDFS write is replication-amplified on the device (166 GB × 2).
	within(sf.IO[spark.OpHDFSWrite].Bytes, 332*units.GB, "SF hdfs write (replicated)")

	// Shuffle read request size ≈ 30 KB (Section III-C2).
	rs := br.IO[spark.OpShuffleRead].AvgReqSize()
	if rs < 26*units.KB || rs > 32*units.KB {
		t.Errorf("BR shuffle read request size = %v, paper says ~30KB", rs)
	}
}

// TestGATK4Fig2Shape checks the qualitative claims of Fig. 2 / Section
// III-A on the four hybrid disk configurations (Table III).
func TestGATK4Fig2Shape(t *testing.T) {
	hdd, ssd := disk.NewHDD(), disk.NewSSD()
	stage := func(hdfs, local disk.Device, name string) time.Duration {
		return runOn(t, "gatk4", testbed(3, 36, hdfs, local)).MustStage(name).Duration()
	}

	// Observation 1: HDFS HDD→SSD gives no gain for MD...
	mdSS, mdHS := stage(ssd, ssd, "MD"), stage(hdd, ssd, "MD")
	if gain := mdHS.Seconds() / mdSS.Seconds(); gain > 1.10 {
		t.Errorf("MD gained %.2fx from HDFS SSD; paper says none", gain)
	}
	// ...but BR and SF do gain (up to 30% and 90%).
	brSS, brHS := stage(ssd, ssd, "BR"), stage(hdd, ssd, "BR")
	if gain := brHS.Seconds()/brSS.Seconds() - 1; gain < 0.08 || gain > 0.45 {
		t.Errorf("BR HDFS-SSD gain = %.0f%%, paper says up to 30%%", gain*100)
	}
	sfSS, sfHS := stage(ssd, ssd, "SF"), stage(hdd, ssd, "SF")
	if gain := sfHS.Seconds()/sfSS.Seconds() - 1; gain < 0.40 || gain > 1.2 {
		t.Errorf("SF HDFS-SSD gain = %.0f%%, paper says up to 90%%", gain*100)
	}

	// Observation 3: Spark Local is much more I/O-sensitive than HDFS.
	brSH := stage(ssd, hdd, "BR")
	sfSH := stage(ssd, hdd, "SF")
	if ratio := brSH.Seconds() / brSS.Seconds(); ratio < 3 {
		t.Errorf("BR local HDD penalty only %.1fx; expected severe", ratio)
	}
	if ratio := sfSH.Seconds() / sfSS.Seconds(); ratio < 5 {
		t.Errorf("SF local HDD penalty only %.1fx; expected severe (paper ~9.5x)", ratio)
	}

	// Section III-C3: with an HDD as Spark Local, BR and SF each take
	// ~126 minutes (334 GB / 3 nodes / 15 MB/s).
	for name, d := range map[string]time.Duration{"BR": brSH, "SF": sfSH} {
		if min := d.Minutes(); min < 115 || min > 150 {
			t.Errorf("%s with HDD local = %.0f min, paper computes ~126", name, min)
		}
	}
}

// TestGATK4Fig3Scaling checks the core-count behaviour of Fig. 3:
// BR/SF scale with P on SSDs but are flat on HDDs; MD is flat on both.
func TestGATK4Fig3Scaling(t *testing.T) {
	hdd, ssd := disk.NewHDD(), disk.NewSSD()
	times := func(dev disk.Device, stage string) (p12, p24, p36 float64) {
		get := func(p int) float64 {
			return runOn(t, "gatk4", testbed(3, p, dev, dev)).MustStage(stage).Duration().Minutes()
		}
		return get(12), get(24), get(36)
	}

	// BR on SSDs: decreasing in P (b=8, B=160 per the paper).
	b12, b24, b36 := times(ssd, "BR")
	if !(b12 > b24*1.5 && b24 > b36*1.2) {
		t.Errorf("BR SSD not scaling: %.1f, %.1f, %.1f min", b12, b24, b36)
	}
	// BR on HDDs: flat (B=5 < 12).
	h12, h24, h36 := times(hdd, "BR")
	if spread(h12, h24, h36) > 0.10 {
		t.Errorf("BR HDD should be flat: %.1f, %.1f, %.1f min", h12, h24, h36)
	}
	// MD: roughly flat on both (GC on SSDs, shuffle-write bound on HDDs).
	m12, m24, m36 := times(ssd, "MD")
	if spread(m12, m24, m36) > 0.30 {
		t.Errorf("MD SSD should be near flat: %.1f, %.1f, %.1f min", m12, m24, m36)
	}
	hm12, hm24, hm36 := times(hdd, "MD")
	if spread(hm12, hm24, hm36) > 0.20 {
		t.Errorf("MD HDD should be near flat: %.1f, %.1f, %.1f min", hm12, hm24, hm36)
	}
}

// spread is (max-min)/max over three values.
func spread(a, b, c float64) float64 {
	max, min := a, a
	for _, v := range []float64{b, c} {
		if v > max {
			max = v
		}
		if v < min {
			min = v
		}
	}
	return (max - min) / max
}

// TestSectionVBGaps verifies the HDD/SSD runtime ratios the paper's
// Section V-B summary reports for the five benchmark workloads.
func TestSectionVBGaps(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-workload sweep")
	}
	hdd, ssd := disk.NewHDD(), disk.NewSSD()
	gap := func(name, phase string, hdfs bool) float64 {
		// hdfs=true switches both disks; false switches only Spark Local.
		hCfg := testbed(10, 36, ssd, hdd)
		if hdfs {
			hCfg = testbed(10, 36, hdd, hdd)
		}
		sCfg := testbed(10, 36, ssd, ssd)
		h := phaseSum(runOn(t, name, hCfg), phase)
		s := phaseSum(runOn(t, name, sCfg), phase)
		return h.Seconds() / s.Seconds()
	}
	cases := []struct {
		name, phase string
		hdfs        bool
		want        float64 // paper's reported ratio
		tol         float64
	}{
		{"lr-small", "dataValidator", true, 2.0, 0.25},              // "2x in LR (Fig 8a)"
		{"lr-large", "iter", true, 7.0, 0.25},                       // "7.0x in Fig 8b"
		{"pagerank", "iter", true, 2.2, 0.25},                       // "2.2x in Fig 10"
		{"svm", "subtract", false, 6.2, 0.25},                       // "6.2x in Fig 9"
		{"trianglecount", "computeTriangleCount", false, 6.5, 0.25}, // "6.5x in Fig 11"
		{"terasort", "", false, 2.6, 0.25},                          // "2.6x in Fig 12" (whole app)
	}
	for _, c := range cases {
		got := gap(c.name, c.phase, c.hdfs)
		if got < c.want*(1-c.tol) || got > c.want*(1+c.tol) {
			t.Errorf("%s/%s gap = %.2fx, paper reports %.1fx", c.name, c.phase, got, c.want)
		}
	}
}

func TestLRCachingDependsOnCluster(t *testing.T) {
	ssd := disk.NewSSD()
	p := DefaultLRSmallParams()
	// Ten slaves: 360 GB storage >= 280 GB, fully cached -> no persist I/O.
	big := p.Build(testbed(10, 36, ssd, ssd))
	for _, s := range big.Stages[1:] {
		if s.TotalBytes(spark.OpPersistRead) != 0 {
			t.Fatal("small dataset on 10 slaves should be fully cached")
		}
	}
	// Three slaves: 108 GB storage < 280 GB -> iterations hit Spark Local.
	small := p.Build(testbed(3, 36, ssd, ssd))
	iter := small.Stages[1]
	if iter.TotalBytes(spark.OpPersistRead) == 0 {
		t.Fatal("small dataset on 3 slaves should spill")
	}
	// Spill size = RDD - storage memory.
	want := 280*units.GB - 108*units.GB
	got := iter.TotalBytes(spark.OpPersistRead)
	if f := float64(got) / float64(want); f < 0.95 || f > 1.05 {
		t.Errorf("spill = %v, want ≈%v", got, want)
	}
}

func TestSVMShuffleRequestSize(t *testing.T) {
	// 170 GB over 1200 reducers from 1200 mappers ≈ 124 KB requests.
	cfg := testbed(10, 36, disk.NewSSD(), disk.NewSSD())
	app := DefaultSVMParams().Build(cfg)
	sub := app.Stages[len(app.Stages)-1]
	op := sub.Groups[0].Ops[0]
	if op.Kind != spark.OpShuffleRead {
		t.Fatalf("unexpected first op %v", op.Kind)
	}
	if op.ReqSize < 110*units.KB || op.ReqSize > 135*units.KB {
		t.Errorf("subtract request size = %v, want ~124KB", op.ReqSize)
	}
}

func TestTerasortStageStructure(t *testing.T) {
	cfg := testbed(10, 36, disk.NewSSD(), disk.NewSSD())
	app := DefaultTerasortParams().Build(cfg)
	if len(app.Stages) != 2 || app.Stages[0].Name != "NF" || app.Stages[1].Name != "SF" {
		t.Fatalf("unexpected stages: %+v", app.Stages)
	}
	// Conservation: NF shuffle write volume == SF shuffle read volume.
	w := app.Stages[0].TotalBytes(spark.OpShuffleWrite)
	r := app.Stages[1].TotalBytes(spark.OpShuffleRead)
	if d := float64(w-r) / float64(w); d > 0.01 || d < -0.01 {
		t.Errorf("shuffle write %v != shuffle read %v", w, r)
	}
}

func TestGATK4ShuffleConservation(t *testing.T) {
	cfg := testbed(3, 36, disk.NewSSD(), disk.NewSSD())
	app := DefaultGATK4Params().Build(cfg)
	w := app.Stages[0].TotalBytes(spark.OpShuffleWrite)
	rBR := app.Stages[1].TotalBytes(spark.OpShuffleRead)
	rSF := app.Stages[2].TotalBytes(spark.OpShuffleRead)
	for _, r := range []units.ByteSize{rBR, rSF} {
		if d := float64(w-r) / float64(w); d > 0.01 || d < -0.01 {
			t.Errorf("shuffle volumes disagree: write %v, read %v", w, r)
		}
	}
}
