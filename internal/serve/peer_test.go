package serve

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newPeerPair boots two real listeners (read-through dials peers over
// TCP) whose Peers config is each other, and returns them with their
// IDs. The ring decides which of the two owns any given key.
func newPeerPair(t *testing.T) (a, b *Server, idA, idB string) {
	t.Helper()
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	idA, idB = lnA.Addr().String(), lnB.Addr().String()
	peers := []string{idA, idB}
	mk := func(id string) *Server {
		return newTestServer(t, func(c *Config) {
			c.ReplicaID = id
			c.Peers = peers
			c.PeerTimeout = 2 * time.Second
		})
	}
	a, b = mk(idA), mk(idB)
	for srv, ln := range map[*Server]net.Listener{a: lnA, b: lnB} {
		ts := httptest.NewUnstartedServer(srv.Handler())
		ts.Listener.Close()
		ts.Listener = ln
		ts.Start()
		t.Cleanup(ts.Close)
	}
	return a, b, idA, idB
}

func TestPeekServesOnlyCachedResults(t *testing.T) {
	s := newTestServer(t, nil)
	key := "/api/v1/predict\x00{\"workload\":\"wc\"}"
	rec := post(t, s.Handler(), peekRoute, key)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("peek of absent key: status %d, want 404", rec.Code)
	}
	s.cache.put(key, []byte(`{"answer":42}`+"\n"))
	s.cache.put("calibration\x00testbed\x00wc\x003", []byte("not served either way"))
	before := s.CacheStats()
	rec = post(t, s.Handler(), peekRoute, key)
	if rec.Code != http.StatusOK {
		t.Fatalf("peek of cached key: status %d", rec.Code)
	}
	if got := rec.Body.String(); got != `{"answer":42}`+"\n" {
		t.Fatalf("peek body %q", got)
	}
	// Peeks are invisible to the local hit/miss accounting.
	if after := s.CacheStats(); after.Hits != before.Hits || after.Misses != before.Misses {
		t.Fatalf("peek moved cache stats: %+v -> %+v", before, after)
	}
	if rec := post(t, s.Handler(), peekRoute, ""); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty peek: status %d, want 400", rec.Code)
	}
}

func TestReadThroughServesPeerBytes(t *testing.T) {
	a, b, idA, _ := newPeerPair(t)
	// Find a predict body whose canonical key is owned by A, so a request
	// to B must read through to A.
	var body string
search:
	for _, w := range []string{"lr-small", "sql"} {
		for slaves := 2; slaves <= 5; slaves++ {
			cand := fmt.Sprintf(`{"workload":%q,"slaves":%d,"cores":8}`, w, slaves)
			key, ok := CanonicalShardKey("POST", "/api/v1/predict", []byte(cand))
			if !ok {
				t.Fatalf("request not canonicalizable: %s", cand)
			}
			if a.peerRing.Primary(key) == idA {
				body = cand
				break search
			}
		}
	}
	if body == "" {
		t.Fatal("no candidate key owned by replica A")
	}
	// Warm the owner.
	first := post(t, a.Handler(), "/api/v1/predict", body)
	if first.Code != 200 || first.Header().Get("X-Cache") != "miss" {
		t.Fatalf("warming owner: status %d X-Cache %q", first.Code, first.Header().Get("X-Cache"))
	}
	// The non-owner misses locally, peeks the owner, and serves the
	// owner's exact bytes — no local compute.
	viaPeer := post(t, b.Handler(), "/api/v1/predict", body)
	if viaPeer.Code != 200 {
		t.Fatalf("read-through: status %d", viaPeer.Code)
	}
	if got := viaPeer.Header().Get("X-Cache"); got != "peer" {
		t.Fatalf("read-through X-Cache %q, want peer", got)
	}
	if !bytes.Equal(viaPeer.Body.Bytes(), first.Body.Bytes()) {
		t.Fatal("read-through bytes differ from the owner's")
	}
	if got := b.readThroughs.With("hit").Value(); got != 1 {
		t.Fatalf("readthrough{hit} = %d, want 1", got)
	}
	// The peer's answer is now cached locally: the next request is a
	// plain local hit.
	again := post(t, b.Handler(), "/api/v1/predict", body)
	if got := again.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("second request X-Cache %q, want hit", got)
	}
	if !bytes.Equal(again.Body.Bytes(), first.Body.Bytes()) {
		t.Fatal("cached read-through bytes differ")
	}
}

func TestReadThroughDeadPeerFallsThrough(t *testing.T) {
	// Peers configured, but the owner never comes up: every request the
	// non-owner gets must still compute locally and succeed.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadID := ln.Addr().String()
	ln.Close() // nothing listens here
	liveID := "127.0.0.1:1"
	s := newTestServer(t, func(c *Config) {
		c.ReplicaID = liveID
		c.Peers = []string{deadID, liveID}
		c.PeerTimeout = 50 * time.Millisecond
	})
	// Find a key the dead peer owns.
	var body string
search:
	for _, w := range []string{"lr-small", "sql"} {
		for slaves := 2; slaves <= 5; slaves++ {
			cand := fmt.Sprintf(`{"workload":%q,"slaves":%d,"cores":8}`, w, slaves)
			key, ok := CanonicalShardKey("POST", "/api/v1/predict", []byte(cand))
			if ok && s.peerRing.Primary(key) == deadID {
				body = cand
				break search
			}
		}
	}
	if body == "" {
		t.Skip("no sampled key owned by the dead peer")
	}
	start := time.Now()
	rec := post(t, s.Handler(), "/api/v1/predict", body)
	if rec.Code != 200 {
		t.Fatalf("status %d with dead peer", rec.Code)
	}
	if got := rec.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("X-Cache %q, want miss (local compute)", got)
	}
	if s.readThroughs.With("error").Value()+s.readThroughs.With("miss").Value() == 0 {
		t.Fatal("no read-through attempt recorded")
	}
	// The failed peek must have cost about PeerTimeout, not correctness;
	// the request itself then paid the normal compute.
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("dead peer stalled the request for %v", elapsed)
	}
}

func TestReadThroughSkipsOwnedAndNonResultKeys(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.ReplicaID = "127.0.0.1:1"
		c.Peers = []string{"127.0.0.1:1", "127.0.0.1:2"}
	})
	if _, ok := s.readThrough("calibration\x00testbed\x00wc\x003"); ok {
		t.Fatal("read-through attempted for a calibration key")
	}
	if got := s.readThroughs.With("hit").Value() + s.readThroughs.With("miss").Value() + s.readThroughs.With("error").Value(); got != 0 {
		t.Fatalf("calibration key touched read-through counters: %d", got)
	}
	// Keys this replica owns never leave it, even on a miss.
	owned := 0
	for i := 0; i < 64; i++ {
		key := "/api/v1/predict\x00{\"i\":" + string(rune('0'+i%10)) + strings.Repeat("x", i) + "}"
		if s.peerRing.Primary(key) == s.ReplicaID() {
			owned++
			if _, ok := s.readThrough(key); ok {
				t.Fatalf("read-through returned a value for self-owned key %q", key)
			}
		}
	}
	if owned == 0 {
		t.Fatal("no sampled key was self-owned; test vacuous")
	}
	if got := s.readThroughs.With("error").Value(); got != 0 {
		t.Fatalf("self-owned keys dialed the network: error count %d", got)
	}
	// No peers at all: read-through is a no-op.
	plain := newTestServer(t, nil)
	if _, ok := plain.readThrough("/api/v1/predict\x00{}"); ok {
		t.Fatal("read-through without peers returned a value")
	}
}
