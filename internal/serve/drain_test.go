package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestGracefulDrain boots a real listener, holds several requests in
// flight, and cancels the run context (what `doppio serve` does on
// SIGTERM). The contract under test: every accepted request completes
// with its real answer, readiness flips off so load balancers stop
// routing here, and Run returns nil after a clean drain. Run with -race
// this also audits the shutdown path for data races.
func TestGracefulDrain(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.DrainTimeout = 5 * time.Second
	})
	s.buildDelay = 400 * time.Millisecond

	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- s.Run(ctx) }()
	select {
	case <-s.Started():
	case <-time.After(5 * time.Second):
		t.Fatal("server never started")
	}
	base := "http://" + s.Addr()

	if resp, err := http.Get(base + "/readyz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("readyz while serving = %d, want 200", resp.StatusCode)
		}
	}

	// Put several slow requests in flight, each with a distinct cache key
	// so each runs its own build.
	const inFlight = 4
	var wg sync.WaitGroup
	codes := make([]int, inFlight)
	bodies := make([]string, inFlight)
	for i := 0; i < inFlight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"workload":"sql","slaves":3,"cores":%d}`, i+1)
			resp, err := http.Post(base+"/api/v1/simulate", "application/json", strings.NewReader(body))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			codes[i], bodies[i] = resp.StatusCode, string(b)
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.inflight.Value() < inFlight {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d requests went in flight", s.inflight.Value(), inFlight)
		}
		time.Sleep(time.Millisecond)
	}

	// SIGTERM arrives mid-flight.
	cancel()

	wg.Wait()
	for i, code := range codes {
		if code != 200 {
			t.Errorf("in-flight request %d finished %d during drain, want 200 (%s)", i, code, bodies[i])
		}
		if !strings.Contains(bodies[i], "total_seconds") {
			t.Errorf("in-flight request %d got a truncated body: %s", i, bodies[i])
		}
	}

	select {
	case err := <-runErr:
		if err != nil {
			t.Errorf("Run returned %v after drain, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after drain")
	}

	// The listener is gone: new connections must fail rather than hang.
	client := &http.Client{Timeout: time.Second}
	if resp, err := client.Get(base + "/healthz"); err == nil {
		resp.Body.Close()
		t.Errorf("connection accepted after drain (status %d)", resp.StatusCode)
	}
}

// TestDrainFlipsReadiness checks the ordering detail load balancers rely
// on: readiness reports draining before shutdown completes.
func TestDrainFlipsReadiness(t *testing.T) {
	s := newTestServer(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- s.Run(ctx) }()
	<-s.Started()
	if !s.health.Ready() {
		t.Error("not ready while serving")
	}
	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.health.Ready() {
		t.Error("still ready after drain")
	}
}
