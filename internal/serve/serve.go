// Package serve implements `doppio serve`: a long-lived HTTP prediction
// service over the calibrated Doppio model (Eq. 1) and the cluster
// simulator. The what-if questions operators ask — device choice, core
// count, data volume — are pure functions of a canonicalized request, so
// every POST endpoint shares one bounded LRU result/calibration cache
// with singleflight builds; repeated questions cost microseconds, not
// simulator runs.
//
// The service carries the robustness plumbing a production inference
// stack needs and a paper reproduction usually skips: per-request
// context timeouts (503 on expiry, the abandoned build still lands in
// the cache), a concurrency limiter that sheds with 429 instead of
// queueing unboundedly, graceful drain on SIGTERM (readiness flips off,
// accepted requests finish), structured JSON access logs, and a
// Prometheus-text /metrics endpoint from internal/obs. Everything is
// stdlib-only.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/shard"
)

// Config tunes the service.
type Config struct {
	// Addr is the listen address (default ":8080").
	Addr string
	// MaxInFlight bounds concurrently served API requests; excess
	// requests are shed with 429 (default 64).
	MaxInFlight int
	// RequestTimeout bounds each API request's computation; expiry
	// answers 503 while the build continues into the cache (default 30s).
	RequestTimeout time.Duration
	// DrainTimeout bounds graceful shutdown: how long in-flight requests
	// get to finish after SIGTERM (default 30s).
	DrainTimeout time.Duration
	// CacheEntries bounds the shared result/calibration LRU (default 512).
	CacheEntries int
	// AccessLog receives one JSON line per request (nil = discard).
	AccessLog io.Writer
	// ReplicaID names this replica in the X-Served-By header stamped on
	// every response (probes and API alike) and in the access log, so a
	// fronting router and the load generator can attribute responses in a
	// multi-replica deployment. Empty means the bound host:port.
	ReplicaID string
	// SnapshotPath enables cache snapshot/warm-start: on boot the cache
	// is restored from this file (missing file = cold boot; corrupt or
	// wrong-version file = rejected, logged, cold boot), and Run writes
	// it back every SnapshotInterval plus once after the shutdown drain.
	// Empty disables snapshotting.
	SnapshotPath string
	// SnapshotInterval is the periodic snapshot cadence when
	// SnapshotPath is set (default 30s).
	SnapshotInterval time.Duration
	// Peers lists every replica of the serve tier (host:port, including
	// this one) and enables cross-replica read-through: on a local miss
	// for a result key, the replica peeks the key's hash-ring owner
	// before computing cold. Requires ReplicaID to be set to this
	// replica's own entry. Empty disables read-through.
	Peers []string
	// PeerTimeout bounds one read-through peek (default 150ms); any
	// peek that errors or outlives it falls through to local compute.
	PeerTimeout time.Duration
	// EventLog receives snapshot/warm-start lifecycle notices, one line
	// each (nil = stderr).
	EventLog io.Writer
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 64
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 512
	}
	if c.SnapshotInterval == 0 {
		c.SnapshotInterval = 30 * time.Second
	}
	if c.PeerTimeout == 0 {
		c.PeerTimeout = 150 * time.Millisecond
	}
	if c.EventLog == nil {
		c.EventLog = os.Stderr
	}
	return c
}

// Validate rejects configurations the flag layer should have caught.
func (c Config) Validate() error {
	c = c.withDefaults()
	if _, port, err := net.SplitHostPort(c.Addr); err != nil {
		return fmt.Errorf("serve: bad listen address %q: %v", c.Addr, err)
	} else if p, err := strconv.Atoi(port); err != nil || p < 0 || p > 65535 {
		return fmt.Errorf("serve: bad listen port %q", port)
	}
	if c.MaxInFlight < 0 {
		return fmt.Errorf("serve: MaxInFlight must be positive, got %d", c.MaxInFlight)
	}
	if c.RequestTimeout < 0 {
		return fmt.Errorf("serve: negative RequestTimeout %v", c.RequestTimeout)
	}
	if c.DrainTimeout < 0 {
		return fmt.Errorf("serve: negative DrainTimeout %v", c.DrainTimeout)
	}
	if c.CacheEntries < 0 {
		return fmt.Errorf("serve: CacheEntries must be positive, got %d", c.CacheEntries)
	}
	if c.SnapshotInterval < 0 {
		return fmt.Errorf("serve: negative SnapshotInterval %v", c.SnapshotInterval)
	}
	if c.PeerTimeout < 0 {
		return fmt.Errorf("serve: negative PeerTimeout %v", c.PeerTimeout)
	}
	if len(c.Peers) > 0 {
		if c.ReplicaID == "" {
			return fmt.Errorf("serve: Peers requires ReplicaID (the ring must know which member this replica is)")
		}
		self := false
		for _, p := range c.Peers {
			if _, _, err := net.SplitHostPort(p); err != nil {
				return fmt.Errorf("serve: bad peer %q: %v", p, err)
			}
			if p == c.ReplicaID {
				self = true
			}
		}
		if !self {
			return fmt.Errorf("serve: ReplicaID %q is not in Peers %v", c.ReplicaID, c.Peers)
		}
	}
	return nil
}

// Server is the doppio prediction service.
type Server struct {
	cfg     Config
	reg     *obs.Registry
	health  *obs.Health
	cache   *lru
	handler http.Handler
	sem     chan struct{}

	requests *obs.CounterVec   // doppio_http_requests_total{route,code}
	latency  *obs.HistogramVec // doppio_http_request_duration_seconds{route}
	inflight *obs.Gauge        // doppio_http_in_flight
	shed     *obs.Counter      // doppio_http_shed_total

	optEvaluated *obs.Counter // doppio_optimizer_evaluated_total
	optPruned    *obs.Counter // doppio_optimizer_pruned_total
	sweepPoints  *obs.Counter // doppio_sweep_points_total

	snapWrites      *obs.Counter // doppio_cache_snapshot_writes_total
	snapWriteErrors *obs.Counter // doppio_cache_snapshot_write_errors_total
	snapRejected    *obs.Counter // doppio_cache_snapshot_rejected_total
	snapRestored    *obs.Gauge   // doppio_cache_snapshot_restored_entries
	snapLastBytes   *obs.Gauge   // doppio_cache_snapshot_last_bytes
	snapMu          sync.Mutex   // serializes snapshot writes
	snapBuf         []byte       // reused encode buffer, under snapMu

	peerRing     *shard.Ring     // nil unless Peers configured
	peerClient   *http.Client    // peek transport, nil unless Peers configured
	peekRequests *obs.CounterVec // doppio_peek_requests_total{result}
	readThroughs *obs.CounterVec // doppio_peer_readthrough_total{result}

	logMu sync.Mutex

	started chan struct{}
	addr    atomic.Value // string, set once listening

	// buildDelay artificially lengthens every cache build; tests use it
	// to hold requests in flight deterministically.
	buildDelay time.Duration
}

// New assembles a Server (no listener yet; see Run and Handler).
func New(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		reg:     obs.NewRegistry(),
		health:  obs.NewHealth(),
		cache:   newLRU(cfg.CacheEntries),
		sem:     make(chan struct{}, cfg.MaxInFlight),
		started: make(chan struct{}),
	}
	s.requests = s.reg.NewCounterVec("doppio_http_requests_total",
		"Requests served, by route and status code.", "route", "code")
	s.latency = s.reg.NewHistogramVec("doppio_http_request_duration_seconds",
		"Request latency, by route.", nil, "route")
	s.inflight = s.reg.NewGauge("doppio_http_in_flight",
		"API requests currently being served.")
	s.shed = s.reg.NewCounter("doppio_http_shed_total",
		"API requests shed with 429 by the concurrency limiter.")
	s.optEvaluated = s.reg.NewCounter("doppio_optimizer_evaluated_total",
		"Provisioning-space configurations evaluated by /api/v1/recommend searches.")
	s.optPruned = s.reg.NewCounter("doppio_optimizer_pruned_total",
		"Provisioning-space configurations pruned without evaluation by /api/v1/recommend searches.")
	s.sweepPoints = s.reg.NewCounter("doppio_sweep_points_total",
		"Grid points predicted by /api/v1/sweep requests.")
	s.reg.NewCounterFunc("doppio_cache_hits_total",
		"Result/calibration cache lookups answered from cache.",
		func() float64 { return float64(s.cache.Stats().Hits) })
	s.reg.NewCounterFunc("doppio_cache_misses_total",
		"Result/calibration cache lookups that had to build.",
		func() float64 { return float64(s.cache.Stats().Misses) })
	s.reg.NewCounterFunc("doppio_cache_evictions_total",
		"Cache entries evicted by the LRU bound.",
		func() float64 { return float64(s.cache.Stats().Evictions) })
	s.reg.NewGaugeFunc("doppio_cache_entries",
		"Entries currently cached.",
		func() float64 { return float64(s.cache.Stats().Entries) })
	s.reg.NewGaugeFunc("doppio_cache_hit_ratio",
		"hits/(hits+misses) since start.",
		func() float64 { return s.cache.Stats().HitRatio() })
	s.snapWrites = s.reg.NewCounter("doppio_cache_snapshot_writes_total",
		"Cache snapshots written (periodic + post-drain).")
	s.snapWriteErrors = s.reg.NewCounter("doppio_cache_snapshot_write_errors_total",
		"Cache snapshot writes that failed.")
	s.snapRejected = s.reg.NewCounter("doppio_cache_snapshot_rejected_total",
		"Boot-time snapshots rejected (corrupt, torn, or wrong version); each meant a cold boot.")
	s.snapRestored = s.reg.NewGauge("doppio_cache_snapshot_restored_entries",
		"Cache entries restored from the snapshot at boot (warm start).")
	s.snapLastBytes = s.reg.NewGauge("doppio_cache_snapshot_last_bytes",
		"Size of the most recently written snapshot.")
	s.peekRequests = s.reg.NewCounterVec("doppio_peek_requests_total",
		"Peer cache probes served on /internal/v1/peek, by result.", "result")
	s.readThroughs = s.reg.NewCounterVec("doppio_peer_readthrough_total",
		"Local misses that consulted the key's ring owner, by result.", "result")
	// Resolve the label values now so every scrape lists them.
	for _, res := range []string{"hit", "miss", "bad"} {
		s.peekRequests.With(res)
	}
	for _, res := range []string{"hit", "miss", "error"} {
		s.readThroughs.With(res)
	}

	if len(cfg.Peers) > 0 {
		ring, err := shard.NewRing(cfg.Peers, 0)
		if err != nil {
			return nil, fmt.Errorf("serve: peers: %w", err)
		}
		s.peerRing = ring
		s.peerClient = newPeerClient(cfg.PeerTimeout)
	}

	mux := http.NewServeMux()
	mux.Handle("GET /healthz", s.stampReplica(s.health.HealthzHandler()))
	mux.Handle("GET /readyz", s.stampReplica(s.health.ReadyzHandler()))
	mux.Handle("GET /metrics", s.stampReplica(s.reg.Handler()))
	mux.Handle("POST "+peekRoute, s.stampReplica(http.HandlerFunc(s.handlePeek)))
	for _, ep := range s.endpoints() {
		mux.Handle(ep.method+" "+ep.route, s.instrument(ep.route, ep.handler))
		// Resolve the common series now so /metrics lists every route
		// from the first scrape, in deterministic order.
		s.latency.With(ep.route)
	}
	s.handler = mux
	if cfg.SnapshotPath != "" {
		s.loadSnapshot()
	}
	return s, nil
}

// eventf logs one snapshot/warm-start lifecycle line.
func (s *Server) eventf(format string, args ...any) {
	fmt.Fprintf(s.cfg.EventLog, format+"\n", args...)
}

// Handler returns the full route tree (probes, metrics, API); tests
// drive it through httptest.
func (s *Server) Handler() http.Handler { return s.handler }

// CacheStats snapshots the shared cache counters.
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// Addr returns the bound listen address once Run is started (empty
// before; wait on Started).
func (s *Server) Addr() string {
	if v := s.addr.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// Started is closed once the listener is accepting and readiness is up.
func (s *Server) Started() <-chan struct{} { return s.started }

// ReplicaID is this replica's stable identity: Config.ReplicaID when
// set, the bound host:port once listening, the configured listen
// address otherwise (Handler-only tests).
func (s *Server) ReplicaID() string {
	if s.cfg.ReplicaID != "" {
		return s.cfg.ReplicaID
	}
	if a := s.Addr(); a != "" {
		return a
	}
	return s.cfg.Addr
}

// stampReplica adds the X-Served-By identity header to non-API
// responses (probes, metrics); API responses get it in instrument.
func (s *Server) stampReplica(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Served-By", s.ReplicaID())
		h.ServeHTTP(w, r)
	})
}

// Run listens and serves until ctx is cancelled, then drains: readiness
// flips to 503 so load balancers stop routing here, and in-flight
// requests get DrainTimeout to finish — an accepted request is never
// dropped by shutdown. Returns nil after a clean drain.
func (s *Server) Run(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	s.addr.Store(ln.Addr().String())
	srv := &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	s.health.SetReady(true)
	close(s.started)
	var snapDone chan struct{}
	var stopSnap context.CancelFunc
	if s.cfg.SnapshotPath != "" {
		var snapCtx context.Context
		snapCtx, stopSnap = context.WithCancel(context.Background())
		defer stopSnap()
		snapDone = make(chan struct{})
		go func() {
			defer close(snapDone)
			s.snapshotLoop(snapCtx, s.cfg.SnapshotInterval)
		}()
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	s.health.SetReady(false)
	dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		return fmt.Errorf("serve: drain: %w", err)
	}
	if s.cfg.SnapshotPath != "" {
		// Final snapshot after the drain: every request this replica
		// accepted has finished and landed in the cache, so the successor
		// warm-starts with the complete picture.
		stopSnap()
		<-snapDone
		if err := s.writeSnapshot(); err != nil {
			s.snapWriteErrors.Inc()
			s.eventf("serve: drain snapshot failed: %v", err)
		}
	}
	return nil
}

// statusRecorder captures the response status and size for metrics and
// the access log.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(p)
	r.bytes += n
	return n, err
}

// instrument wraps an API handler with the full middleware stack, outer
// to inner: panic recovery, metrics + access log, concurrency limiter
// (429), request timeout.
func (s *Server) instrument(route string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		rec.Header().Set("X-Served-By", s.ReplicaID())
		defer func() {
			if p := recover(); p != nil {
				if rec.status == 0 {
					writeError(rec, http.StatusInternalServerError, fmt.Errorf("internal error: %v", p))
				}
			}
			dur := time.Since(start)
			if rec.status == 0 {
				rec.status = http.StatusOK
			}
			s.requests.With(route, strconv.Itoa(rec.status)).Inc()
			s.latency.With(route).Observe(dur.Seconds())
			s.accessLog(r, route, rec, dur)
		}()

		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			s.shed.Inc()
			writeError(rec, http.StatusTooManyRequests,
				fmt.Errorf("server at capacity (%d in flight), retry later", s.cfg.MaxInFlight))
			return
		}
		s.inflight.Inc()
		defer s.inflight.Dec()

		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		h(rec, r.WithContext(ctx))
	})
}

// accessLog emits one structured line per request.
func (s *Server) accessLog(r *http.Request, route string, rec *statusRecorder, dur time.Duration) {
	if s.cfg.AccessLog == nil {
		return
	}
	line, err := json.Marshal(struct {
		Time    string  `json:"time"`
		Replica string  `json:"replica"`
		Method  string  `json:"method"`
		Route   string  `json:"route"`
		Path    string  `json:"path"`
		Status  int     `json:"status"`
		Bytes   int     `json:"bytes"`
		Millis  float64 `json:"duration_ms"`
		Remote  string  `json:"remote"`
	}{
		Time:    time.Now().UTC().Format(time.RFC3339Nano),
		Replica: s.ReplicaID(),
		Method:  r.Method,
		Route:   route,
		Path:    r.URL.Path,
		Status:  rec.status,
		Bytes:   rec.bytes,
		Millis:  float64(dur.Microseconds()) / 1000,
		Remote:  r.RemoteAddr,
	})
	if err != nil {
		return
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	s.cfg.AccessLog.Write(append(line, '\n'))
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body, _ := json.Marshal(errorResponse{Error: err.Error()})
	w.Write(append(body, '\n'))
}

// serveCached answers from the shared cache, building at most once per
// canonical key across concurrent requests. On a local miss the build
// first tries a cross-replica read-through (see peer.go); the X-Cache
// header reports where the bytes came from: "hit" (local cache,
// including snapshot-restored entries), "peer" (ring owner's cache), or
// "miss" (computed here). A request whose context expires first gets
// 503; the build keeps running and its result lands in the cache for
// the retry (the same abandonment semantics as the experiment runner's
// per-artifact deadline).
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, key string, build func() ([]byte, error)) {
	type outcome struct {
		body   []byte
		source string
		err    error
	}
	ch := make(chan outcome, 1)
	go func() {
		// source is written by the build closure and read after cache.do
		// returns, all within this goroutine — no shared state.
		source := "miss"
		v, hit, err := s.cache.do(key, func() (any, error) {
			if s.buildDelay > 0 {
				time.Sleep(s.buildDelay)
			}
			if body, ok := s.readThrough(key); ok {
				source = "peer"
				return body, nil
			}
			return build()
		})
		if err != nil {
			ch <- outcome{err: err}
			return
		}
		if hit {
			source = "hit"
		}
		ch <- outcome{body: v.([]byte), source: source}
	}()
	select {
	case <-r.Context().Done():
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("request deadline exceeded (%v); the result is being computed and will be cached", s.cfg.RequestTimeout))
	case o := <-ch:
		if o.err != nil {
			writeError(w, http.StatusInternalServerError, o.err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Cache", o.source)
		w.Write(o.body)
	}
}

// marshalBody renders a response exactly once; cache hits replay the
// same bytes, which the tests assert byte-for-byte.
func marshalBody(v any) ([]byte, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("encoding response: %w", err)
	}
	return append(body, '\n'), nil
}
