package serve

import (
	"fmt"
	"strings"
	"testing"
)

func TestCanonicalShardKeyRoutes(t *testing.T) {
	cases := []struct {
		name   string
		method string
		path   string
		body   string
	}{
		{"workloads", "GET", "/api/v1/workloads", ""},
		{"predict", "POST", "/api/v1/predict", `{"workload":"lr-small","slaves":3,"cores":8}`},
		{"simulate", "POST", "/api/v1/simulate", `{"workload":"sql","slaves":3,"cores":8}`},
		{"whatif", "POST", "/api/v1/whatif", `{"workload":"lr-small","slaves":3,"max_cores":16}`},
		{"recommend", "POST", "/api/v1/recommend", `{"workload":"lr-small","slaves":3,"top":3}`},
		{"sweep", "POST", "/api/v1/sweep", `{"workloads":["sql"],"nodes":[3],"cores":[4,8]}`},
	}
	keys := map[string]bool{}
	for _, tc := range cases {
		key, ok := CanonicalShardKey(tc.method, tc.path, []byte(tc.body))
		if !ok {
			t.Fatalf("%s: CanonicalShardKey not ok", tc.name)
		}
		if keys[key] {
			t.Errorf("%s: key collides with another route's", tc.name)
		}
		keys[key] = true
	}
}

// TestCanonicalShardKeyDefaultsCollapse pins that a body spelling out
// the defaults shards identically to one omitting them — the same
// collapse the replica cache performs.
func TestCanonicalShardKeyDefaultsCollapse(t *testing.T) {
	a, ok1 := CanonicalShardKey("POST", "/api/v1/predict",
		[]byte(`{"workload":"lr-small"}`))
	b, ok2 := CanonicalShardKey("POST", "/api/v1/predict",
		[]byte(`{"workload":"lr-small","slaves":10,"cores":36,"hdfs":"ssd","local":"ssd","mode":"doppio"}`))
	if !ok1 || !ok2 {
		t.Fatal("CanonicalShardKey not ok")
	}
	if a != b {
		t.Errorf("defaults did not collapse:\n  %q\n  %q", a, b)
	}
	c, ok := CanonicalShardKey("POST", "/api/v1/predict",
		[]byte(`{"workload":"lr-small","slaves":4}`))
	if !ok {
		t.Fatal("CanonicalShardKey not ok")
	}
	if c == a {
		t.Error("different requests produced the same shard key")
	}
}

func TestCanonicalShardKeyRejects(t *testing.T) {
	for _, tc := range []struct {
		name   string
		method string
		path   string
		body   string
	}{
		{"unknown route", "POST", "/api/v1/nonsense", `{}`},
		{"wrong method", "GET", "/api/v1/predict", ``},
		{"bad json", "POST", "/api/v1/predict", `{"workload":`},
		{"unknown field", "POST", "/api/v1/predict", `{"workload":"lr-small","slave":10}`},
		{"invalid value", "POST", "/api/v1/predict", `{"workload":"lr-small","slaves":-4}`},
		{"trailing garbage", "POST", "/api/v1/predict", `{"workload":"lr-small"} x`},
	} {
		if key, ok := CanonicalShardKey(tc.method, tc.path, []byte(tc.body)); ok {
			t.Errorf("%s: unexpectedly canonicalized to %q", tc.name, key)
		}
	}
}

// FuzzCanonicalShardKey pins the property cluster routing depends on:
// JSON bodies that differ only in member order (and whitespace) for the
// same logical request canonicalize to the same hash-ring key. Shard
// stability under re-encoding is what preserves byte-identical cache
// hits when a client, proxy, or SDK re-serializes the request.
func FuzzCanonicalShardKey(f *testing.F) {
	f.Add("lr-small", 3, 8, "ssd", "hdd")
	f.Add("sql", 10, 36, "ssd", "ssd")
	f.Add("pagerank", 1, 1, "hdd", "pd-ssd:500GB")
	f.Add("nope", 0, -3, "", "floppy")
	f.Add("terasort", 1024, 1024, "pd-standard:2TB", "ssd")
	f.Fuzz(func(t *testing.T, workload string, slaves, cores int, hdfs, local string) {
		if strings.ContainsAny(workload+hdfs+local, "\"\\\x00") {
			t.Skip("quoting would change the JSON encoding, not the request")
		}
		fields := []string{
			fmt.Sprintf("%q:%q", "workload", workload),
			fmt.Sprintf("%q:%d", "slaves", slaves),
			fmt.Sprintf("%q:%d", "cores", cores),
			fmt.Sprintf("%q:%q", "hdfs", hdfs),
			fmt.Sprintf("%q:%q", "local", local),
		}
		// Two member orders and two whitespace styles for one request.
		ordered := "{" + strings.Join(fields, ",") + "}"
		reversed := make([]string, len(fields))
		for i, fld := range fields {
			reversed[len(fields)-1-i] = fld
		}
		shuffled := "{\n  " + strings.Join(reversed, " ,\n  ") + " }"

		k1, ok1 := CanonicalShardKey("POST", "/api/v1/predict", []byte(ordered))
		k2, ok2 := CanonicalShardKey("POST", "/api/v1/predict", []byte(shuffled))
		if ok1 != ok2 {
			t.Fatalf("permutation changed acceptance: %v vs %v\n%s\n%s", ok1, ok2, ordered, shuffled)
		}
		if k1 != k2 {
			t.Fatalf("permutation changed the shard key:\n  %q\n  %q", k1, k2)
		}
	})
}
