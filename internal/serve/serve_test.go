package serve

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden response files")

// newTestServer builds a Server with test-friendly defaults; mutate cfg
// via fn before construction.
func newTestServer(t *testing.T, fn func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		Addr:           "127.0.0.1:0",
		MaxInFlight:    16,
		RequestTimeout: 30 * time.Second,
		CacheEntries:   128,
	}
	if fn != nil {
		fn(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func post(t *testing.T, h http.Handler, route, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", route, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func get(t *testing.T, h http.Handler, route string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", route, nil))
	return rec
}

// checkGolden compares a response body against testdata/<name>.golden,
// rewriting it under -update.
func checkGolden(t *testing.T, name string, body []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, body, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/serve -run %s -update`): %v", t.Name(), err)
	}
	if !bytes.Equal(want, body) {
		t.Errorf("response differs from %s\ngot:  %s\nwant: %s", path, body, want)
	}
}

func TestWorkloadsRoute(t *testing.T) {
	s := newTestServer(t, nil)
	rec := get(t, s.Handler(), "/api/v1/workloads")
	if rec.Code != 200 {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var resp WorkloadsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Workloads) < 5 {
		t.Errorf("only %d workloads listed", len(resp.Workloads))
	}
	checkGolden(t, "workloads", rec.Body.Bytes())
}

func TestPredictRoute(t *testing.T) {
	s := newTestServer(t, nil)
	body := `{"workload":"lr-small","slaves":3,"cores":8,"hdfs":"ssd","local":"hdd"}`
	rec := post(t, s.Handler(), "/api/v1/predict", body)
	if rec.Code != 200 {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var resp PredictResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.TotalSeconds <= 0 || len(resp.Stages) == 0 {
		t.Errorf("implausible prediction: %+v", resp)
	}
	if resp.Mode != "doppio" || resp.Slaves != 3 || resp.Cores != 8 {
		t.Errorf("canonical echo wrong: %+v", resp)
	}
	checkGolden(t, "predict_lr_small", rec.Body.Bytes())
}

func TestPredictSingleStage(t *testing.T) {
	s := newTestServer(t, nil)
	full := post(t, s.Handler(), "/api/v1/predict", `{"workload":"sql","slaves":3,"cores":8}`)
	if full.Code != 200 {
		t.Fatalf("status = %d: %s", full.Code, full.Body)
	}
	var fullResp PredictResponse
	if err := json.Unmarshal(full.Body.Bytes(), &fullResp); err != nil {
		t.Fatal(err)
	}
	stage := fullResp.Stages[0].Name
	rec := post(t, s.Handler(), "/api/v1/predict",
		fmt.Sprintf(`{"workload":"sql","slaves":3,"cores":8,"stage":%q}`, stage))
	if rec.Code != 200 {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var resp PredictResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Stages) != 1 || resp.Stages[0].Name != stage {
		t.Errorf("stage filter returned %+v, want only %q", resp.Stages, stage)
	}
	if resp.TotalSeconds != resp.Stages[0].Seconds {
		t.Errorf("single-stage total %v != stage seconds %v", resp.TotalSeconds, resp.Stages[0].Seconds)
	}

	missing := post(t, s.Handler(), "/api/v1/predict",
		`{"workload":"sql","slaves":3,"cores":8,"stage":"no-such-stage"}`)
	if missing.Code != 500 {
		t.Errorf("unknown stage status = %d, want 500", missing.Code)
	}
}

func TestPredictFaulty(t *testing.T) {
	s := newTestServer(t, nil)
	body := `{"workload":"lr-small","slaves":3,"cores":8,"hdfs":"ssd","local":"hdd",
		"faults":{"task_failure_prob":0.05,"shuffle_fetch_failure_prob":0.05}}`
	rec := post(t, s.Handler(), "/api/v1/predict", body)
	if rec.Code != 200 {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var resp PredictResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Inflation <= 1 {
		t.Errorf("faulty inflation = %v, want > 1", resp.Inflation)
	}
	if resp.BaseSeconds <= 0 || resp.TotalSeconds <= resp.BaseSeconds {
		t.Errorf("faulty total %v should exceed base %v", resp.TotalSeconds, resp.BaseSeconds)
	}
}

func TestSimulateRoute(t *testing.T) {
	s := newTestServer(t, nil)
	rec := post(t, s.Handler(), "/api/v1/simulate", `{"workload":"sql","slaves":3,"cores":8}`)
	if rec.Code != 200 {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var resp SimulateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.TotalSeconds <= 0 || len(resp.Stages) == 0 {
		t.Errorf("implausible simulation: %+v", resp)
	}
	if resp.Faults != nil {
		t.Errorf("fault-free run reported faults: %+v", resp.Faults)
	}
	checkGolden(t, "simulate_sql", rec.Body.Bytes())

	faulty := post(t, s.Handler(), "/api/v1/simulate",
		`{"workload":"sql","slaves":3,"cores":8,"faults":{"task_failure_prob":0.05,"max_task_failures":10,"seed":7}}`)
	if faulty.Code != 200 {
		t.Fatalf("faulty status = %d: %s", faulty.Code, faulty.Body)
	}
	var fresp SimulateResponse
	if err := json.Unmarshal(faulty.Body.Bytes(), &fresp); err != nil {
		t.Fatal(err)
	}
	if fresp.Faults == nil || fresp.Faults.TaskFailures == 0 {
		t.Errorf("injected faults not reported: %+v", fresp.Faults)
	}
}

func TestWhatifRoutes(t *testing.T) {
	s := newTestServer(t, nil)
	rec := post(t, s.Handler(), "/api/v1/whatif",
		`{"workload":"lr-small","slaves":3,"max_cores":16}`)
	if rec.Code != 200 {
		t.Fatalf("model status = %d: %s", rec.Code, rec.Body)
	}
	var resp WhatifResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Points) != 5 { // 1,2,4,8,16
		t.Errorf("model backend returned %d points, want 5", len(resp.Points))
	}
	if resp.Points[0].Bottlenecks == nil {
		t.Errorf("model backend should report bottlenecks")
	}

	sim := post(t, s.Handler(), "/api/v1/whatif",
		`{"workload":"sql","slaves":3,"max_cores":8,"backend":"sim"}`)
	if sim.Code != 200 {
		t.Fatalf("sim status = %d: %s", sim.Code, sim.Body)
	}
	var simResp WhatifResponse
	if err := json.Unmarshal(sim.Body.Bytes(), &simResp); err != nil {
		t.Fatal(err)
	}
	if len(simResp.Points) != 4 { // 1,2,4,8
		t.Errorf("sim backend returned %d points, want 4", len(simResp.Points))
	}
	if simResp.Points[0].Bottlenecks != nil {
		t.Errorf("sim backend should not report Eq.1 bottlenecks")
	}
	if simResp.Points[0].TotalSeconds <= simResp.Points[len(simResp.Points)-1].TotalSeconds {
		t.Errorf("more cores should not be slower at small P: %+v", simResp.Points)
	}
}

func TestRecommendRoute(t *testing.T) {
	if testing.Short() {
		t.Skip("grid search over the full cloud space")
	}
	s := newTestServer(t, nil)
	rec := post(t, s.Handler(), "/api/v1/recommend", `{"workload":"lr-small","slaves":3,"top":3}`)
	if rec.Code != 200 {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var resp RecommendResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Best) != 3 {
		t.Errorf("got %d candidates, want 3", len(resp.Best))
	}
	if len(resp.References) != 2 {
		t.Errorf("got %d references, want 2 (R1, R2)", len(resp.References))
	}
	for i := 1; i < len(resp.Best); i++ {
		if resp.Best[i].CostUSD < resp.Best[i-1].CostUSD {
			t.Errorf("candidates not sorted by cost: %+v", resp.Best)
		}
	}
	if resp.Evaluated != resp.SpaceSize || resp.Pruned != 0 {
		t.Errorf("unconstrained search: evaluated=%d pruned=%d, want %d/0",
			resp.Evaluated, resp.Pruned, resp.SpaceSize)
	}
}

// TestRecommendDeadline exercises the pruned search path: a deadline at
// the best candidate's own runtime keeps at least one feasible
// configuration while pruning part of the space, every returned
// candidate respects the bound, and the accounting always closes
// (evaluated + pruned == space_size).
func TestRecommendDeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("grid search over the full cloud space")
	}
	s := newTestServer(t, nil)
	rec := post(t, s.Handler(), "/api/v1/recommend", `{"workload":"lr-small","slaves":3,"top":3}`)
	if rec.Code != 200 {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var free RecommendResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &free); err != nil {
		t.Fatal(err)
	}
	deadline := free.Best[0].TimeMinutes
	rec = post(t, s.Handler(), "/api/v1/recommend", fmt.Sprintf(
		`{"workload":"lr-small","slaves":3,"top":3,"deadline_minutes":%g}`, deadline))
	if rec.Code != 200 {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var resp RecommendResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Best) == 0 {
		t.Fatal("deadline at a feasible runtime returned no candidates")
	}
	for _, c := range resp.Best {
		if c.TimeMinutes > deadline {
			t.Errorf("candidate %+v exceeds deadline %g min", c, deadline)
		}
	}
	if resp.Evaluated+resp.Pruned != resp.SpaceSize {
		t.Errorf("accounting: %d evaluated + %d pruned != %d", resp.Evaluated, resp.Pruned, resp.SpaceSize)
	}
	if resp.Pruned == 0 {
		t.Error("binding deadline pruned nothing")
	}
	if s.optEvaluated.Value() == 0 || s.optPruned.Value() == 0 {
		t.Errorf("optimizer counters not advanced: evaluated=%d pruned=%d",
			s.optEvaluated.Value(), s.optPruned.Value())
	}
}

func TestSweepRoute(t *testing.T) {
	s := newTestServer(t, nil)
	rec := post(t, s.Handler(), "/api/v1/sweep", `{
		"workloads":["lr-small"],
		"nodes":[3],
		"cores":[4,8],
		"devices":[{"hdfs":"ssd","local":"ssd"},{"hdfs":"ssd","local":"hdd"}]}`)
	if rec.Code != 200 {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var resp SweepResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Points) != 4 {
		t.Fatalf("got %d points, want 4", len(resp.Points))
	}
	for _, p := range resp.Points {
		if p.Err != "" || p.TotalSeconds <= 0 {
			t.Errorf("bad point: %+v", p)
		}
		if p.Bottleneck == "" {
			t.Errorf("point missing bottleneck: %+v", p)
		}
	}
	// Row-major grid order: cores vary before devices in Grid.Points.
	if resp.Points[0].Cores != 4 || resp.Points[0].Local != "ssd" ||
		resp.Points[1].Local != "hdd" || resp.Points[2].Cores != 8 {
		t.Errorf("points not in row-major grid order: %+v", resp.Points)
	}
	if got := s.sweepPoints.Value(); got != 4 {
		t.Errorf("doppio_sweep_points_total = %d, want 4", got)
	}
}

// TestMalformedBodies asserts every POST route answers 400 (not 500, not
// a hang) to the standard abuse: syntactically broken JSON, unknown
// fields, missing workload, bad devices, bad enum values, out-of-range
// numbers.
func TestMalformedBodies(t *testing.T) {
	s := newTestServer(t, nil)
	routes := []string{"/api/v1/predict", "/api/v1/simulate", "/api/v1/whatif", "/api/v1/recommend", "/api/v1/sweep"}
	common := []string{
		`{`,                      // truncated JSON
		`[]`,                     // wrong JSON kind
		`{"workload":"sql"}}`,    // trailing garbage
		`{"wrokload":"sql"}`,     // unknown field (typo)
		`{}`,                     // missing workload(s)
		`{"workload":"no-such"}`, // unregistered workload
	}
	perRoute := map[string][]string{
		"/api/v1/predict": {
			`{"workload":"sql","hdfs":"floppy"}`,
			`{"workload":"sql","mode":"ernest"}`,
			`{"workload":"sql","slaves":-1}`,
			`{"workload":"sql","faults":{"task_failure_prob":1.5}}`,
		},
		"/api/v1/simulate": {
			`{"workload":"sql","stragglers":2}`,
			`{"workload":"sql","local":"pd-ssd:0GB"}`,
		},
		"/api/v1/whatif": {
			`{"workload":"sql","max_cores":-4}`,
			`{"workload":"sql","backend":"crystal-ball"}`,
		},
		"/api/v1/recommend": {
			`{"workload":"sql","top":999}`,
		},
		"/api/v1/sweep": {
			`{"workloads":["sql"],"nodes":[0]}`,
			`{"workloads":["sql"],"devices":[{"hdfs":"tape","local":"ssd"}]}`,
		},
	}
	for _, route := range routes {
		bodies := common
		if route == "/api/v1/sweep" {
			// sweep uses "workloads"; its missing/unknown cases are below.
			bodies = []string{`{`, `[]`, `{"workloads":["sql"]}}`, `{"wrokloads":["sql"]}`, `{}`, `{"workloads":["no-such"]}`}
		}
		for _, body := range append(bodies, perRoute[route]...) {
			rec := post(t, s.Handler(), route, body)
			if rec.Code != 400 {
				t.Errorf("%s with %q: status = %d, want 400 (%s)", route, body, rec.Code, rec.Body)
			}
			var e errorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
				t.Errorf("%s with %q: error body not structured: %s", route, body, rec.Body)
			}
		}
	}
}

// TestCacheHitByteIdentical asserts the caching contract: the second
// identical request is a hit and replays the exact same bytes, and a
// semantically identical body (different field order, defaults spelled
// out) shares the entry.
func TestCacheHitByteIdentical(t *testing.T) {
	s := newTestServer(t, nil)
	body := `{"workload":"lr-small","slaves":3,"cores":8}`
	first := post(t, s.Handler(), "/api/v1/predict", body)
	if first.Code != 200 {
		t.Fatalf("status = %d: %s", first.Code, first.Body)
	}
	if h := first.Header().Get("X-Cache"); h != "miss" {
		t.Errorf("first request X-Cache = %q, want miss", h)
	}
	second := post(t, s.Handler(), "/api/v1/predict", body)
	if second.Code != 200 {
		t.Fatalf("status = %d: %s", second.Code, second.Body)
	}
	if h := second.Header().Get("X-Cache"); h != "hit" {
		t.Errorf("second request X-Cache = %q, want hit", h)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Errorf("cache hit not byte-identical:\n%s\n%s", first.Body, second.Body)
	}
	// Same question, different spelling: field order changed, defaults
	// explicit, whitespace added.
	respelled := post(t, s.Handler(), "/api/v1/predict",
		` {"cores": 8, "slaves": 3, "local": "ssd", "hdfs": "ssd", "mode": "doppio", "workload": "lr-small"} `)
	if h := respelled.Header().Get("X-Cache"); h != "hit" {
		t.Errorf("canonicalized request X-Cache = %q, want hit", h)
	}
	if !bytes.Equal(first.Body.Bytes(), respelled.Body.Bytes()) {
		t.Errorf("canonicalized hit not byte-identical")
	}
	stats := s.CacheStats()
	if stats.Hits < 2 {
		t.Errorf("stats.Hits = %d, want >= 2", stats.Hits)
	}
}

// TestRequestTimeout503 asserts a request whose computation outlives the
// per-request deadline gets a 503 and a structured error.
func TestRequestTimeout503(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.RequestTimeout = 20 * time.Millisecond })
	s.buildDelay = 300 * time.Millisecond
	start := time.Now()
	rec := post(t, s.Handler(), "/api/v1/simulate", `{"workload":"sql","slaves":3,"cores":8}`)
	if rec.Code != 503 {
		t.Fatalf("status = %d, want 503 (%s)", rec.Code, rec.Body)
	}
	if elapsed := time.Since(start); elapsed > 250*time.Millisecond {
		t.Errorf("timeout took %v, deadline was 20ms", elapsed)
	}
	var e errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
		t.Errorf("503 body not structured: %s", rec.Body)
	}
}

// TestLimiter429 asserts the concurrency limiter sheds with 429 once
// MaxInFlight requests are being served, and counts the sheds.
func TestLimiter429(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxInFlight = 1 })
	s.buildDelay = 500 * time.Millisecond

	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		done <- post(t, s.Handler(), "/api/v1/simulate", `{"workload":"sql","slaves":3,"cores":8}`)
	}()
	// Wait until the slow request holds the only slot.
	deadline := time.Now().Add(2 * time.Second)
	for s.inflight.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never went in flight")
		}
		time.Sleep(time.Millisecond)
	}
	shed := post(t, s.Handler(), "/api/v1/simulate", `{"workload":"sql","slaves":3,"cores":4}`)
	if shed.Code != 429 {
		t.Fatalf("status = %d, want 429 (%s)", shed.Code, shed.Body)
	}
	if got := s.shed.Value(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}
	first := <-done
	if first.Code != 200 {
		t.Errorf("slow request status = %d, want 200 (%s)", first.Code, first.Body)
	}
}

var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (-?[0-9.eE+-]+|\+Inf|NaN)$`)

// TestMetricsEndpoint asserts /metrics parses as Prometheus text and
// carries the advertised series: per-route requests and latency, cache
// counters with a nonzero hit ratio after a repeat request, in-flight
// gauge and shed counter.
func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, nil)
	body := `{"workload":"sql","slaves":3,"cores":8}`
	post(t, s.Handler(), "/api/v1/simulate", body)
	post(t, s.Handler(), "/api/v1/simulate", body) // cache hit
	post(t, s.Handler(), "/api/v1/predict", `{"workload":"nope"}`)

	rec := get(t, s.Handler(), "/metrics")
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	out := rec.Body.String()
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("line does not parse as Prometheus text: %q", line)
		}
	}
	for _, want := range []string{
		`doppio_http_requests_total{route="/api/v1/simulate",code="200"} 2`,
		`doppio_http_requests_total{route="/api/v1/predict",code="400"} 1`,
		`doppio_http_request_duration_seconds_count{route="/api/v1/simulate"} 2`,
		"doppio_http_in_flight 0",
		"doppio_http_shed_total 0",
		"doppio_cache_hits_total 1",
		"doppio_cache_misses_total 1",
		"doppio_cache_hit_ratio 0.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestProbes(t *testing.T) {
	s := newTestServer(t, nil)
	if rec := get(t, s.Handler(), "/healthz"); rec.Code != 200 {
		t.Errorf("healthz = %d, want 200", rec.Code)
	}
	// Readiness is off until Run starts listening.
	if rec := get(t, s.Handler(), "/readyz"); rec.Code != 503 {
		t.Errorf("readyz before Run = %d, want 503", rec.Code)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := newTestServer(t, nil)
	rec := get(t, s.Handler(), "/api/v1/predict")
	if rec.Code != 405 {
		t.Errorf("GET on POST route = %d, want 405", rec.Code)
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"defaults", Config{}, true},
		{"explicit", Config{Addr: "127.0.0.1:8080", MaxInFlight: 4}, true},
		{"bad addr", Config{Addr: "no-port-here"}, false},
		{"bad port", Config{Addr: "127.0.0.1:notaport"}, false},
		{"negative inflight", Config{MaxInFlight: -1}, false},
		{"negative timeout", Config{RequestTimeout: -time.Second}, false},
		{"negative drain", Config{DrainTimeout: -time.Second}, false},
		{"negative cache", Config{CacheEntries: -5}, false},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

// TestConcurrentMixedLoad drives every route from many goroutines; run
// under -race it is the service-layer analogue of the experiment
// harness's concurrency audits.
func TestConcurrentMixedLoad(t *testing.T) {
	s := newTestServer(t, nil)
	bodies := map[string]string{
		"/api/v1/predict":  `{"workload":"lr-small","slaves":3,"cores":8}`,
		"/api/v1/simulate": `{"workload":"sql","slaves":3,"cores":8}`,
		"/api/v1/whatif":   `{"workload":"sql","slaves":3,"max_cores":8}`,
		"/api/v1/sweep":    `{"workloads":["sql"],"nodes":[3],"cores":[4,8]}`,
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for route, body := range bodies {
				rec := post(t, s.Handler(), route, body)
				if rec.Code != 200 {
					errs <- fmt.Sprintf("%s: %d %s", route, rec.Code, rec.Body)
				}
				if mrec := get(t, s.Handler(), "/metrics"); mrec.Code != 200 {
					errs <- fmt.Sprintf("/metrics: %d", mrec.Code)
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	stats := s.CacheStats()
	if stats.Hits == 0 {
		t.Errorf("32 requests over 4 distinct bodies should hit the cache: %+v", stats)
	}
}
