package serve

import (
	"container/list"
	"sync"
)

// CacheStats is a point-in-time snapshot of cache activity. Hits count
// lookups answered from a cached entry (including callers who joined an
// in-flight build of the same key); misses count lookups that had to
// build.
type CacheStats struct {
	Hits, Misses, Evictions uint64
	Entries                 int
}

// HitRatio returns hits/(hits+misses), 0 before any lookup.
func (s CacheStats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// lru is the bounded result/calibration cache behind every serve
// endpoint: a plain LRU over canonicalized request keys, with
// singleflight semantics — concurrent lookups of the same absent key
// share one build instead of duplicating the work (calibration is four
// simulator runs; a thundering herd on a popular what-if must not
// multiply that). Build errors are never cached, so transient failures
// retry.
type lru struct {
	mu       sync.Mutex
	cap      int
	ll       *list.List               // front = most recent
	items    map[string]*list.Element // value: *cacheEntry
	inflight map[string]*inflightCall
	stats    CacheStats
}

type cacheEntry struct {
	key string
	val any
}

type inflightCall struct {
	done chan struct{}
	val  any
	err  error
}

// newLRU returns a cache bounded to capacity entries (minimum 1).
func newLRU(capacity int) *lru {
	if capacity < 1 {
		capacity = 1
	}
	return &lru{
		cap:      capacity,
		ll:       list.New(),
		items:    map[string]*list.Element{},
		inflight: map[string]*inflightCall{},
	}
}

// get returns the cached value and bumps its recency.
func (c *lru) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.stats.Hits++
		return el.Value.(*cacheEntry).val, true
	}
	c.stats.Misses++
	return nil, false
}

// put inserts or refreshes a value, evicting the oldest entry past
// capacity. It does not touch the hit/miss counters: callers that
// already counted a miss via get or do would double-count.
func (c *lru) put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(key, val)
}

func (c *lru) putLocked(key string, val any) {
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.stats.Evictions++
	}
}

// do returns the cached value for key, or builds it exactly once across
// concurrent callers. The second return reports whether the answer came
// from cache (or a shared in-flight build) rather than this caller's own
// build.
func (c *lru) do(key string, build func() (any, error)) (any, bool, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.stats.Hits++
		v := el.Value.(*cacheEntry).val
		c.mu.Unlock()
		return v, true, nil
	}
	if call, ok := c.inflight[key]; ok {
		// Someone is already building this key: share their answer. It
		// still counts as a hit — the lookup spent no build work.
		c.stats.Hits++
		c.mu.Unlock()
		<-call.done
		return call.val, true, call.err
	}
	call := &inflightCall{done: make(chan struct{})}
	c.inflight[key] = call
	c.stats.Misses++
	c.mu.Unlock()

	call.val, call.err = build()

	c.mu.Lock()
	delete(c.inflight, key)
	if call.err == nil {
		c.putLocked(key, call.val)
	}
	c.mu.Unlock()
	close(call.done)
	return call.val, false, call.err
}

// Stats snapshots the counters.
func (c *lru) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.ll.Len()
	return s
}
