package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/experiments/sweep"
	"repro/internal/optimizer"
	"repro/internal/spark"
	"repro/internal/units"
	"repro/internal/workloads"
)

// maxBodyBytes bounds request bodies; the largest legitimate request (a
// dense sweep grid) is well under this.
const maxBodyBytes = 1 << 20

// maxSweepPoints bounds one sweep request's grid so a single POST cannot
// monopolise the worker pool.
const maxSweepPoints = 1024

// endpoint binds a route to its handler.
type endpoint struct {
	method  string
	route   string
	handler http.HandlerFunc
}

// endpoints lists every API route; the mux, the metrics series and the
// docs are all generated from this one table.
func (s *Server) endpoints() []endpoint {
	return []endpoint{
		{"GET", "/api/v1/workloads", s.handleWorkloads},
		{"POST", "/api/v1/predict", s.handlePredict},
		{"POST", "/api/v1/simulate", s.handleSimulate},
		{"POST", "/api/v1/whatif", s.handleWhatif},
		{"POST", "/api/v1/recommend", s.handleRecommend},
		{"POST", "/api/v1/sweep", s.handleSweep},
	}
}

// decodeStrict parses a JSON body, rejecting unknown fields and trailing
// garbage so typos ("slave": 10) surface as 400s instead of silently
// applying defaults.
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(io.LimitReader(r, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %v", err)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return fmt.Errorf("bad request body: trailing data after JSON value")
	}
	return nil
}

// cacheKey canonicalizes a normalized request: the key is the route plus
// the re-marshalled struct, so two bodies that differ only in field
// order, whitespace, or explicitly-spelled defaults share one entry.
func cacheKey(route string, req any) (string, error) {
	canon, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	return route + "\x00" + string(canon), nil
}

// --- shared request shapes -------------------------------------------

// ClusterParams is the cluster shape shared by predict, simulate and
// whatif requests. Devices use the CLI vocabulary ("hdd", "ssd",
// "pd-standard:2TB", "pd-ssd:500GB").
type ClusterParams struct {
	Workload string `json:"workload"`
	Slaves   int    `json:"slaves"`
	Cores    int    `json:"cores"`
	HDFS     string `json:"hdfs"`
	Local    string `json:"local"`
	// HeapGB provisions per-node executor memory, enabling the memory
	// layer (spill + GC) in simulations and the t_mem_limit term in
	// predictions. Omitted or zero keeps the legacy memory-free
	// behaviour, and omitempty keeps legacy cache keys unchanged.
	HeapGB float64 `json:"heap_gb,omitempty"`
}

// normalize applies the CLI defaults and validates; after it returns the
// struct is fully specified, so its marshal form is canonical.
func (c *ClusterParams) normalize() error {
	if c.Workload == "" {
		return fmt.Errorf("workload is required (GET /api/v1/workloads lists them)")
	}
	if _, err := workloads.Get(c.Workload); err != nil {
		return err
	}
	if c.Slaves == 0 {
		c.Slaves = 10
	}
	if c.Cores == 0 {
		c.Cores = 36
	}
	if c.HDFS == "" {
		c.HDFS = "ssd"
	}
	if c.Local == "" {
		c.Local = "ssd"
	}
	if c.Slaves < 1 || c.Slaves > 1024 {
		return fmt.Errorf("slaves %d outside [1, 1024]", c.Slaves)
	}
	if c.Cores < 1 || c.Cores > 1024 {
		return fmt.Errorf("cores %d outside [1, 1024]", c.Cores)
	}
	if c.HeapGB < 0 || c.HeapGB > 4096 {
		return fmt.Errorf("heap_gb %v outside [0, 4096]", c.HeapGB)
	}
	if _, err := cloud.ParseDevice(c.HDFS); err != nil {
		return fmt.Errorf("hdfs: %v", err)
	}
	if _, err := cloud.ParseDevice(c.Local); err != nil {
		return fmt.Errorf("local: %v", err)
	}
	return nil
}

// clusterConfig builds the simulator configuration (devices are
// constructed per call: device state is not shareable across runs).
func (c ClusterParams) clusterConfig() (spark.ClusterConfig, error) {
	hd, err := cloud.ParseDevice(c.HDFS)
	if err != nil {
		return spark.ClusterConfig{}, err
	}
	ld, err := cloud.ParseDevice(c.Local)
	if err != nil {
		return spark.ClusterConfig{}, err
	}
	cfg := spark.DefaultTestbed(c.Slaves, c.Cores, hd, ld)
	cfg.Memory = spark.MemoryConfig{HeapGB: c.HeapGB}
	return cfg, nil
}

// FaultSpec mirrors core.FaultParams / spark.FaultConfig in JSON.
type FaultSpec struct {
	TaskFailureProb         float64 `json:"task_failure_prob,omitempty"`
	ShuffleFetchFailureProb float64 `json:"shuffle_fetch_failure_prob,omitempty"`
	MaxTaskFailures         int     `json:"max_task_failures,omitempty"`
	RetryBackoffSeconds     float64 `json:"retry_backoff_seconds,omitempty"`
	Seed                    uint64  `json:"seed,omitempty"`
}

func (f *FaultSpec) empty() bool {
	return f == nil || (f.TaskFailureProb == 0 && f.ShuffleFetchFailureProb == 0 &&
		f.MaxTaskFailures == 0 && f.RetryBackoffSeconds == 0 && f.Seed == 0)
}

func (f *FaultSpec) params() core.FaultParams {
	return core.FaultParams{
		TaskFailureProb:         f.TaskFailureProb,
		ShuffleFetchFailureProb: f.ShuffleFetchFailureProb,
		MaxTaskFailures:         f.MaxTaskFailures,
		RetryBackoff:            units.SecDuration(f.RetryBackoffSeconds),
	}
}

func (f *FaultSpec) config() spark.FaultConfig {
	return spark.FaultConfig{
		TaskFailureProb:         f.TaskFailureProb,
		ShuffleFetchFailureProb: f.ShuffleFetchFailureProb,
		MaxTaskFailures:         f.MaxTaskFailures,
		RetryBackoff:            spark.DurationParam(f.RetryBackoffSeconds),
		Seed:                    f.Seed,
	}
}

// --- calibration -----------------------------------------------------

// calibration returns the cached calibrated model for (workload,
// slaves), fitting it on first use exactly as `doppio predict` does:
// four sample runs on the physical-testbed devices at the target slave
// count (paper Section VI-1).
func (s *Server) calibration(workload string, slaves int) (*core.Calibration, error) {
	key := fmt.Sprintf("calibration\x00testbed\x00%s\x00%d", workload, slaves)
	v, _, err := s.cache.do(key, func() (any, error) {
		w, err := workloads.Get(workload)
		if err != nil {
			return nil, err
		}
		ssd, hdd := disk.NewSSD(), disk.NewHDD()
		base := spark.DefaultTestbed(slaves, 1, ssd, ssd)
		cal, err := core.Calibrate(base, ssd, hdd, w.Build)
		if err != nil {
			return nil, fmt.Errorf("calibrating %s at %d slaves: %w", workload, slaves, err)
		}
		return cal, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*core.Calibration), nil
}

// cloudCalibration is the recommend endpoint's model: fitted on Google
// Cloud virtual disks (Section VI-1's 500 GB pd-ssd / 200 GB
// pd-standard probes, three slaves).
func (s *Server) cloudCalibration(workload string) (*core.Calibration, error) {
	key := fmt.Sprintf("calibration\x00cloud\x00%s", workload)
	v, _, err := s.cache.do(key, func() (any, error) {
		w, err := workloads.Get(workload)
		if err != nil {
			return nil, err
		}
		ssd := cloud.NewDisk(cloud.PDSSD, 500*units.GB)
		hdd := cloud.NewDisk(cloud.PDStandard, 200*units.GB)
		base := spark.DefaultTestbed(3, 1, ssd, ssd)
		cal, err := core.Calibrate(base, ssd, hdd, w.Build)
		if err != nil {
			return nil, fmt.Errorf("calibrating %s on cloud disks: %w", workload, err)
		}
		return cal, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*core.Calibration), nil
}

func parseMode(s string) (core.Mode, error) {
	switch s {
	case "", "doppio":
		return core.ModeDoppio, nil
	case "peak-bw":
		return core.ModePeakBW, nil
	case "no-overlap":
		return core.ModeNoOverlap, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (doppio, peak-bw, no-overlap)", s)
	}
}

// --- GET /api/v1/workloads -------------------------------------------

// WorkloadInfo is one catalogue entry.
type WorkloadInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

// WorkloadsResponse lists the workload catalogue.
type WorkloadsResponse struct {
	Workloads []WorkloadInfo `json:"workloads"`
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	resp := WorkloadsResponse{}
	for _, n := range workloads.Names() {
		wl, err := workloads.Get(n)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		resp.Workloads = append(resp.Workloads, WorkloadInfo{Name: n, Description: wl.Description})
	}
	body, err := marshalBody(resp)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// --- POST /api/v1/predict --------------------------------------------

// PredictRequest asks the calibrated analytical model (Eq. 1) for a
// stage or application runtime; with faults set it asks the
// failure-recovery extension (core.PredictFaulty) instead.
type PredictRequest struct {
	ClusterParams
	Mode   string     `json:"mode"`
	Stage  string     `json:"stage,omitempty"`
	Faults *FaultSpec `json:"faults,omitempty"`
}

func (req *PredictRequest) normalize() error {
	if err := req.ClusterParams.normalize(); err != nil {
		return err
	}
	if req.Mode == "" {
		req.Mode = "doppio"
	}
	if _, err := parseMode(req.Mode); err != nil {
		return err
	}
	if req.Faults.empty() {
		req.Faults = nil
	} else if err := req.Faults.params().Validate(); err != nil {
		return err
	}
	return nil
}

// StagePredictionJSON is one stage's evaluated Eq. 1.
type StagePredictionJSON struct {
	Name               string  `json:"name"`
	Seconds            float64 `json:"seconds"`
	Bottleneck         string  `json:"bottleneck"`
	ScaleSeconds       float64 `json:"scale_seconds"`
	ReadLimitSeconds   float64 `json:"read_limit_seconds"`
	WriteLimitSeconds  float64 `json:"write_limit_seconds"`
	DeviceLimitSeconds float64 `json:"device_limit_seconds"`
	MemLimitSeconds    float64 `json:"mem_limit_seconds,omitempty"`
}

func stageJSON(p core.StagePrediction) StagePredictionJSON {
	return StagePredictionJSON{
		Name:               p.Name,
		Seconds:            p.T.Seconds(),
		Bottleneck:         p.Bottleneck,
		ScaleSeconds:       p.TScale.Seconds(),
		ReadLimitSeconds:   p.TReadLimit.Seconds(),
		WriteLimitSeconds:  p.TWriteLimit.Seconds(),
		DeviceLimitSeconds: p.TDeviceLimit.Seconds(),
		MemLimitSeconds:    p.TMemLimit.Seconds(),
	}
}

// PredictResponse is the model's answer.
type PredictResponse struct {
	Workload            string                `json:"workload"`
	Mode                string                `json:"mode"`
	Slaves              int                   `json:"slaves"`
	Cores               int                   `json:"cores"`
	HDFS                string                `json:"hdfs"`
	Local               string                `json:"local"`
	Stages              []StagePredictionJSON `json:"stages"`
	TotalSeconds        float64               `json:"total_seconds"`
	BaseSeconds         float64               `json:"base_seconds,omitempty"`
	Inflation           float64               `json:"inflation,omitempty"`
	AbortProb           float64               `json:"abort_prob,omitempty"`
	CalibrationWarnings []string              `json:"calibration_warnings,omitempty"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req PredictRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := req.normalize(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key, err := cacheKey("/api/v1/predict", req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.serveCached(w, r, key, func() ([]byte, error) { return s.computePredict(req) })
}

func (s *Server) computePredict(req PredictRequest) ([]byte, error) {
	cal, err := s.calibration(req.Workload, req.Slaves)
	if err != nil {
		return nil, err
	}
	cfg, err := req.clusterConfig()
	if err != nil {
		return nil, err
	}
	mode, err := parseMode(req.Mode)
	if err != nil {
		return nil, err
	}
	pl := core.PlatformFor(cfg)
	resp := PredictResponse{
		Workload: req.Workload, Mode: req.Mode,
		Slaves: req.Slaves, Cores: req.Cores,
		HDFS: req.HDFS, Local: req.Local,
		CalibrationWarnings: cal.Warnings,
	}
	if req.Faults != nil {
		pred, err := cal.Model.PredictFaulty(pl, mode, req.Faults.params())
		if err != nil {
			return nil, err
		}
		for _, st := range pred.Stages {
			resp.Stages = append(resp.Stages, stageJSON(st.StagePrediction))
		}
		resp.TotalSeconds = pred.Total.Seconds()
		resp.BaseSeconds = pred.Base.Seconds()
		resp.Inflation = pred.Inflation()
		resp.AbortProb = pred.AbortProb
	} else {
		pred, err := cal.Model.Predict(pl, mode)
		if err != nil {
			return nil, err
		}
		for _, st := range pred.Stages {
			resp.Stages = append(resp.Stages, stageJSON(st))
		}
		resp.TotalSeconds = pred.Total.Seconds()
	}
	if req.Stage != "" {
		var kept []StagePredictionJSON
		for _, st := range resp.Stages {
			if st.Name == req.Stage {
				kept = append(kept, st)
			}
		}
		if len(kept) == 0 {
			return nil, fmt.Errorf("workload %s has no stage %q", req.Workload, req.Stage)
		}
		resp.Stages = kept
		resp.TotalSeconds = kept[0].Seconds
	}
	return marshalBody(resp)
}

// --- POST /api/v1/simulate -------------------------------------------

// SimulateRequest runs the discrete-event cluster simulator.
type SimulateRequest struct {
	ClusterParams
	Seed       uint64     `json:"seed,omitempty"`
	Stragglers float64    `json:"stragglers,omitempty"`
	Speculate  bool       `json:"speculate,omitempty"`
	Faults     *FaultSpec `json:"faults,omitempty"`
}

func (req *SimulateRequest) normalize() error {
	if err := req.ClusterParams.normalize(); err != nil {
		return err
	}
	if req.Stragglers < 0 || req.Stragglers >= 1 {
		return fmt.Errorf("stragglers %v outside [0, 1)", req.Stragglers)
	}
	if req.Faults.empty() {
		req.Faults = nil
	}
	return nil
}

func (req SimulateRequest) config() (spark.ClusterConfig, error) {
	cfg, err := req.clusterConfig()
	if err != nil {
		return spark.ClusterConfig{}, err
	}
	cfg.Seed = req.Seed
	if req.Stragglers > 0 {
		cfg.StragglerFraction = req.Stragglers
		cfg.StragglerSlowdown = 5
	}
	cfg.Speculation = req.Speculate
	if req.Faults != nil {
		cfg.Faults = req.Faults.config()
	}
	if err := cfg.Validate(); err != nil {
		return spark.ClusterConfig{}, err
	}
	return cfg, nil
}

// SimStageJSON is one simulated stage measurement.
type SimStageJSON struct {
	Name      string  `json:"name"`
	Seconds   float64 `json:"seconds"`
	Tasks     int     `json:"tasks"`
	HDFSUtil  float64 `json:"hdfs_util"`
	LocalUtil float64 `json:"local_util"`
}

// SimFaultsJSON summarises injected-fault activity.
type SimFaultsJSON struct {
	TaskFailures  int `json:"task_failures"`
	FetchFailures int `json:"fetch_failures"`
	Retries       int `json:"retries"`
	Recomputes    int `json:"recomputes"`
}

// SimulateResponse is the simulator's measurement.
type SimulateResponse struct {
	Workload     string         `json:"workload"`
	Slaves       int            `json:"slaves"`
	Cores        int            `json:"cores"`
	HDFS         string         `json:"hdfs"`
	Local        string         `json:"local"`
	Stages       []SimStageJSON `json:"stages"`
	TotalSeconds float64        `json:"total_seconds"`
	CoreSeconds  float64        `json:"core_seconds"`
	Faults       *SimFaultsJSON `json:"faults,omitempty"`
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := req.normalize(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Surface config-vocabulary problems (e.g. fault probabilities out of
	// range) as 400s before caching.
	if _, err := req.config(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key, err := cacheKey("/api/v1/simulate", req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.serveCached(w, r, key, func() ([]byte, error) { return s.computeSimulate(req) })
}

func (s *Server) computeSimulate(req SimulateRequest) ([]byte, error) {
	wl, err := workloads.Get(req.Workload)
	if err != nil {
		return nil, err
	}
	cfg, err := req.config()
	if err != nil {
		return nil, err
	}
	res, err := spark.Run(cfg, wl.Build(cfg))
	if err != nil {
		return nil, err
	}
	resp := SimulateResponse{
		Workload: req.Workload,
		Slaves:   req.Slaves, Cores: req.Cores,
		HDFS: req.HDFS, Local: req.Local,
		TotalSeconds: res.Total.Seconds(),
		CoreSeconds:  res.CoreSeconds,
	}
	for _, st := range res.Stages {
		resp.Stages = append(resp.Stages, SimStageJSON{
			Name:      st.Name,
			Seconds:   st.Duration().Seconds(),
			Tasks:     st.Tasks,
			HDFSUtil:  st.HDFSUtil(res.Slaves),
			LocalUtil: st.LocalUtil(res.Slaves),
		})
	}
	if res.Faults.Any() {
		resp.Faults = &SimFaultsJSON{
			TaskFailures:  res.Faults.TaskFailures,
			FetchFailures: res.Faults.FetchFailures,
			Retries:       res.Faults.Retries,
			Recomputes:    res.Faults.Recomputes,
		}
	}
	return marshalBody(resp)
}

// --- POST /api/v1/whatif ---------------------------------------------

// WhatifRequest sweeps per-node core counts — the capacity-planning
// question the paper's break-point analysis answers. backend "model"
// (default) uses the calibrated Eq. 1; backend "sim" runs the full
// simulator at every point.
type WhatifRequest struct {
	ClusterParams
	MaxCores int    `json:"max_cores"`
	Backend  string `json:"backend"`
}

func (req *WhatifRequest) normalize() error {
	// Cores is swept, not chosen; pin it so the canonical key does not
	// fragment on an ignored field.
	req.Cores = 1
	if err := req.ClusterParams.normalize(); err != nil {
		return err
	}
	if req.MaxCores == 0 {
		req.MaxCores = 64
	}
	if req.MaxCores < 1 || req.MaxCores > 1024 {
		return fmt.Errorf("max_cores %d outside [1, 1024]", req.MaxCores)
	}
	switch req.Backend {
	case "":
		req.Backend = "model"
	case "model", "sim":
	default:
		return fmt.Errorf("unknown backend %q (model, sim)", req.Backend)
	}
	return nil
}

// WhatifPointJSON is one swept core count.
type WhatifPointJSON struct {
	Cores        int     `json:"cores"`
	TotalSeconds float64 `json:"total_seconds"`
	// Bottlenecks counts stages per binding Eq. 1 term (model backend).
	Bottlenecks map[string]int `json:"bottlenecks,omitempty"`
	// ScalingExhausted marks the first point that improves <5% over the
	// previous one: P has passed the stage break points.
	ScalingExhausted bool `json:"scaling_exhausted,omitempty"`
}

// WhatifResponse is the swept curve.
type WhatifResponse struct {
	Workload string            `json:"workload"`
	Backend  string            `json:"backend"`
	Slaves   int               `json:"slaves"`
	HDFS     string            `json:"hdfs"`
	Local    string            `json:"local"`
	Points   []WhatifPointJSON `json:"points"`
}

func (s *Server) handleWhatif(w http.ResponseWriter, r *http.Request) {
	var req WhatifRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := req.normalize(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key, err := cacheKey("/api/v1/whatif", req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.serveCached(w, r, key, func() ([]byte, error) { return s.computeWhatif(req) })
}

func (s *Server) computeWhatif(req WhatifRequest) ([]byte, error) {
	resp := WhatifResponse{
		Workload: req.Workload, Backend: req.Backend,
		Slaves: req.Slaves, HDFS: req.HDFS, Local: req.Local,
	}
	var cal *core.Calibration
	var wl workloads.Workload
	var err error
	if req.Backend == "model" {
		if cal, err = s.calibration(req.Workload, req.Slaves); err != nil {
			return nil, err
		}
	} else if wl, err = workloads.Get(req.Workload); err != nil {
		return nil, err
	}
	base, err := req.clusterConfig()
	if err != nil {
		return nil, err
	}
	var prev float64
	for p := 1; p <= req.MaxCores; p *= 2 {
		cfg := base.WithCores(p)
		point := WhatifPointJSON{Cores: p}
		if req.Backend == "model" {
			pred, err := cal.Model.Predict(core.PlatformFor(cfg), core.ModeDoppio)
			if err != nil {
				return nil, err
			}
			point.TotalSeconds = pred.Total.Seconds()
			point.Bottlenecks = map[string]int{}
			for _, st := range pred.Stages {
				point.Bottlenecks[st.Bottleneck]++
			}
		} else {
			res, err := spark.Run(cfg, wl.Build(cfg))
			if err != nil {
				return nil, err
			}
			point.TotalSeconds = res.Total.Seconds()
		}
		point.ScalingExhausted = prev > 0 && point.TotalSeconds > prev*0.95
		resp.Points = append(resp.Points, point)
		prev = point.TotalSeconds
	}
	return marshalBody(resp)
}

// --- POST /api/v1/recommend ------------------------------------------

// RecommendRequest searches the Google Cloud provisioning space for the
// cheapest configurations (paper Section VI), via the cloud-calibrated
// model.
type RecommendRequest struct {
	Workload string `json:"workload"`
	Slaves   int    `json:"slaves"`
	Top      int    `json:"top"`
	// DeadlineMinutes bounds the admissible predicted runtime; 0 means
	// unconstrained. With a deadline set the search prunes subspaces
	// using Eq. 1's monotonicity instead of evaluating the full grid
	// (omitempty keeps cache keys for deadline-free requests unchanged).
	DeadlineMinutes float64 `json:"deadline_minutes,omitempty"`
	// HeapGBs adds an executor-heap axis to the search space: each value
	// is evaluated with the t_mem_limit term parameterised by that heap
	// and priced per GB. Empty keeps the memory-free legacy space (and,
	// via omitempty, the legacy cache keys).
	HeapGBs []float64 `json:"heap_gbs,omitempty"`
}

func (req *RecommendRequest) normalize() error {
	if req.Workload == "" {
		return fmt.Errorf("workload is required (GET /api/v1/workloads lists them)")
	}
	if _, err := workloads.Get(req.Workload); err != nil {
		return err
	}
	if req.Slaves == 0 {
		req.Slaves = 10
	}
	if req.Slaves < 1 || req.Slaves > 1024 {
		return fmt.Errorf("slaves %d outside [1, 1024]", req.Slaves)
	}
	if req.Top == 0 {
		req.Top = 5
	}
	if req.Top < 1 || req.Top > 50 {
		return fmt.Errorf("top %d outside [1, 50]", req.Top)
	}
	if req.DeadlineMinutes < 0 {
		return fmt.Errorf("deadline_minutes %g must be non-negative", req.DeadlineMinutes)
	}
	if len(req.HeapGBs) > 16 {
		return fmt.Errorf("heap_gbs has %d values, limit 16", len(req.HeapGBs))
	}
	for _, h := range req.HeapGBs {
		if h <= 0 || h > 4096 {
			return fmt.Errorf("heap_gbs value %v outside (0, 4096]", h)
		}
	}
	return nil
}

// CandidateJSON is one evaluated cloud configuration.
type CandidateJSON struct {
	Spec         string  `json:"spec"`
	VCPUs        int     `json:"vcpus"`
	HDFSType     string  `json:"hdfs_type"`
	HDFSSizeGB   float64 `json:"hdfs_size_gb"`
	LocalType    string  `json:"local_type"`
	LocalSizeGB  float64 `json:"local_size_gb"`
	HeapGB       float64 `json:"heap_gb,omitempty"`
	TimeMinutes  float64 `json:"time_minutes"`
	CostUSD      float64 `json:"cost_usd"`
	SavingVsBest float64 `json:"-"`
}

func candidateJSON(c optimizer.Candidate) CandidateJSON {
	return CandidateJSON{
		Spec:        c.Spec.String(),
		VCPUs:       c.Spec.VCPUs,
		HDFSType:    c.Spec.HDFSType.String(),
		HDFSSizeGB:  c.Spec.HDFSSize.GBytes(),
		LocalType:   c.Spec.LocalType.String(),
		LocalSizeGB: c.Spec.LocalSize.GBytes(),
		HeapGB:      c.Spec.HeapGB,
		TimeMinutes: c.Time.Minutes(),
		CostUSD:     c.Cost,
	}
}

// ReferenceJSON is a rule-of-thumb provisioning baseline and the saving
// the optimum achieves over it.
type ReferenceJSON struct {
	Name        string  `json:"name"`
	Spec        string  `json:"spec"`
	TimeMinutes float64 `json:"time_minutes"`
	CostUSD     float64 `json:"cost_usd"`
	Saving      float64 `json:"saving"`
}

// RecommendResponse lists the cheapest (feasible) configurations, the
// references, and the search's evaluation accounting: evaluated +
// pruned always equals space_size. Without a deadline everything is
// evaluated; with one, pruned reports the work Eq. 1's monotonicity
// saved.
type RecommendResponse struct {
	Workload   string          `json:"workload"`
	Slaves     int             `json:"slaves"`
	SpaceSize  int             `json:"space_size"`
	Evaluated  int             `json:"evaluated"`
	Pruned     int             `json:"pruned"`
	Best       []CandidateJSON `json:"best"`
	References []ReferenceJSON `json:"references"`
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	var req RecommendRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := req.normalize(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key, err := cacheKey("/api/v1/recommend", req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.serveCached(w, r, key, func() ([]byte, error) { return s.computeRecommend(req) })
}

func (s *Server) computeRecommend(req RecommendRequest) ([]byte, error) {
	cal, err := s.cloudCalibration(req.Workload)
	if err != nil {
		return nil, err
	}
	eval := optimizer.ModelEvaluator(cal.Model)
	pricing := cloud.DefaultPricing()
	space := optimizer.DefaultSpace(req.Slaves)
	space.HeapGBs = req.HeapGBs
	cons := optimizer.Constraints{Deadline: time.Duration(req.DeadlineMinutes * float64(time.Minute))}
	rep, err := optimizer.PrunedSearch(space, eval, pricing, cons)
	if err != nil {
		return nil, err
	}
	s.optEvaluated.Add(uint64(rep.Evaluated))
	s.optPruned.Add(uint64(rep.Pruned))
	cands := rep.Candidates
	resp := RecommendResponse{
		Workload: req.Workload, Slaves: req.Slaves, SpaceSize: space.Size(),
		Evaluated: rep.Evaluated, Pruned: rep.Pruned,
	}
	for i, c := range cands {
		if i >= req.Top {
			break
		}
		resp.Best = append(resp.Best, candidateJSON(c))
	}
	for _, ref := range []struct {
		name string
		spec cloud.ClusterSpec
	}{{"R1", cloud.R1(req.Slaves, 16)}, {"R2", cloud.R2(req.Slaves, 16)}} {
		d, err := eval.Evaluate(ref.spec)
		if err != nil {
			return nil, err
		}
		cost := ref.spec.Cost(d, pricing)
		saving := 0.0
		if len(cands) > 0 {
			saving = 1 - cands[0].Cost/cost
		}
		resp.References = append(resp.References, ReferenceJSON{
			Name:        ref.name,
			Spec:        ref.spec.String(),
			TimeMinutes: d.Minutes(),
			CostUSD:     cost,
			Saving:      saving,
		})
	}
	return marshalBody(resp)
}

// --- POST /api/v1/sweep ----------------------------------------------

// DevicePairJSON names one (HDFS, Spark Local) device combination.
type DevicePairJSON struct {
	HDFS  string `json:"hdfs"`
	Local string `json:"local"`
}

// SweepRequest fans the calibrated model out over a cluster-shape grid
// (nodes × cores × device pairs × workloads) through the sweep engine.
type SweepRequest struct {
	Workloads []string         `json:"workloads"`
	Nodes     []int            `json:"nodes"`
	Cores     []int            `json:"cores"`
	Devices   []DevicePairJSON `json:"devices"`
}

func (req *SweepRequest) normalize() error {
	if len(req.Workloads) == 0 {
		return fmt.Errorf("workloads is required (GET /api/v1/workloads lists them)")
	}
	for _, w := range req.Workloads {
		if _, err := workloads.Get(w); err != nil {
			return err
		}
	}
	if len(req.Nodes) == 0 {
		req.Nodes = []int{10}
	}
	if len(req.Cores) == 0 {
		req.Cores = []int{36}
	}
	if len(req.Devices) == 0 {
		req.Devices = []DevicePairJSON{{HDFS: "ssd", Local: "ssd"}}
	}
	for _, n := range req.Nodes {
		if n < 1 || n > 1024 {
			return fmt.Errorf("nodes value %d outside [1, 1024]", n)
		}
	}
	for _, c := range req.Cores {
		if c < 1 || c > 1024 {
			return fmt.Errorf("cores value %d outside [1, 1024]", c)
		}
	}
	for _, d := range req.Devices {
		if _, err := cloud.ParseDevice(d.HDFS); err != nil {
			return fmt.Errorf("devices.hdfs: %v", err)
		}
		if _, err := cloud.ParseDevice(d.Local); err != nil {
			return fmt.Errorf("devices.local: %v", err)
		}
	}
	if n := len(req.Workloads) * len(req.Nodes) * len(req.Cores) * len(req.Devices); n > maxSweepPoints {
		return fmt.Errorf("grid has %d points, limit %d", n, maxSweepPoints)
	}
	return nil
}

// SweepPointJSON is one evaluated grid point. Err isolates a failing
// point without losing its siblings, mirroring sweep.Outcome.
type SweepPointJSON struct {
	Workload     string  `json:"workload"`
	Nodes        int     `json:"nodes"`
	Cores        int     `json:"cores"`
	HDFS         string  `json:"hdfs"`
	Local        string  `json:"local"`
	TotalSeconds float64 `json:"total_seconds,omitempty"`
	Bottleneck   string  `json:"bottleneck,omitempty"`
	Err          string  `json:"error,omitempty"`
}

// SweepResponse is the evaluated grid in row-major order.
type SweepResponse struct {
	Points []SweepPointJSON `json:"points"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := req.normalize(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key, err := cacheKey("/api/v1/sweep", req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.serveCached(w, r, key, func() ([]byte, error) { return s.computeSweep(req) })
}

func (s *Server) computeSweep(req SweepRequest) ([]byte, error) {
	grid := sweep.Grid{Nodes: req.Nodes, Cores: req.Cores, Workloads: req.Workloads}
	for _, d := range req.Devices {
		d := d
		grid.Devices = append(grid.Devices, sweep.DevicePair{
			Name: d.HDFS + "/" + d.Local,
			HDFS: func() disk.Device { dev, _ := cloud.ParseDevice(d.HDFS); return dev },
			Local: func() disk.Device {
				dev, _ := cloud.ParseDevice(d.Local)
				return dev
			},
		})
	}
	// The sweep planner: a calibration (and the model compiled against
	// its devices) depends on (workload, nodes, device pair) but not on
	// the cores axis, so points are grouped by that key, each group pays
	// for calibration and compilation once, and its shapes stream through
	// the zero-alloc PredictBatch. Groups fan out over the worker pool
	// and write to disjoint indices of one preallocated result slab, so
	// the response keeps row-major grid order without reassembly.
	points := grid.Points()
	type calKey struct {
		workload string
		nodes    int
		devices  string
	}
	groups := sweep.GroupBy(points, func(p sweep.Point) calKey {
		return calKey{p.Workload, p.Nodes, p.Devices.Name}
	})
	slab := make([]SweepPointJSON, len(points))
	sweep.Map(groups, 0, func(g sweep.Group[calKey, sweep.Point]) (struct{}, error) {
		hdfsName, localName, _ := strings.Cut(g.Key.devices, "/")
		for j, p := range g.Points {
			slab[g.Indices[j]] = SweepPointJSON{
				Workload: p.Workload, Nodes: p.Nodes, Cores: p.Cores,
				HDFS: hdfsName, Local: localName,
			}
		}
		fail := func(err error) (struct{}, error) {
			for _, idx := range g.Indices {
				slab[idx].Err = err.Error()
			}
			return struct{}{}, nil
		}
		cal, err := s.calibration(g.Key.workload, g.Key.nodes)
		if err != nil {
			return fail(err)
		}
		dev := g.Points[0].Devices
		cfg := spark.DefaultTestbed(g.Key.nodes, 1, dev.HDFS(), dev.Local())
		cm, err := core.Compile(cal.Model, core.EnvOf(core.PlatformFor(cfg)), core.ModeDoppio)
		if err != nil {
			return fail(err)
		}
		shapes := make([]core.Shape, len(g.Points))
		for j, p := range g.Points {
			shapes[j] = core.Shape{N: p.Nodes, P: p.Cores}
		}
		totals := make([]time.Duration, len(shapes))
		if _, err := cm.PredictBatch(shapes, totals); err != nil {
			return fail(err)
		}
		for j, idx := range g.Indices {
			slab[idx].TotalSeconds = totals[j].Seconds()
			top, err := cm.TopBottleneck(shapes[j].N, shapes[j].P)
			if err != nil {
				return fail(err)
			}
			slab[idx].Bottleneck = top
		}
		return struct{}{}, nil
	})
	s.sweepPoints.Add(uint64(len(points)))
	return marshalBody(SweepResponse{Points: slab})
}
