package serve

import "bytes"

// normalizer is any API request shape that can apply its defaults and
// validate itself; after a successful normalize the struct is fully
// specified, so its marshal form is canonical.
type normalizer interface{ normalize() error }

// CanonicalShardKey canonicalizes one API request exactly the way the
// serve cache does and returns the resulting key. It is the contract a
// fronting router needs to shard by: two bodies that differ only in
// JSON field order, whitespace, or explicitly-spelled defaults produce
// the same key here AND hit the same cache entry on the replica, so the
// byte-identical cache-hit property survives sharding — whichever
// replica the key consistently hashes to holds the one cached entry.
//
// The second return is false when the request cannot be canonicalized:
// an unknown route, malformed JSON, or a body that fails validation.
// Such requests would be answered with a 400/404 by any replica, so a
// router may shard them however it likes (e.g. by raw bytes).
func CanonicalShardKey(method, path string, body []byte) (string, bool) {
	var req normalizer
	switch method + " " + path {
	case "GET /api/v1/workloads":
		// No body to canonicalize: the route is the key.
		return path, true
	case "POST /api/v1/predict":
		req = &PredictRequest{}
	case "POST /api/v1/simulate":
		req = &SimulateRequest{}
	case "POST /api/v1/whatif":
		req = &WhatifRequest{}
	case "POST /api/v1/recommend":
		req = &RecommendRequest{}
	case "POST /api/v1/sweep":
		req = &SweepRequest{}
	default:
		return "", false
	}
	if err := decodeStrict(bytes.NewReader(body), req); err != nil {
		return "", false
	}
	if err := req.normalize(); err != nil {
		return "", false
	}
	// cacheKey marshals the normalized struct; marshalling through the
	// pointer produces the same bytes the handlers produce from the
	// value, so this IS the replica's cache key for the request.
	key, err := cacheKey(path, req)
	if err != nil {
		return "", false
	}
	return key, true
}
