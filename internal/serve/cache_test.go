package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestLRUEviction(t *testing.T) {
	c := newLRU(2)
	c.put("a", 1)
	c.put("b", 2)
	c.put("c", 3) // evicts a
	if _, ok := c.get("a"); ok {
		t.Error("a should have been evicted")
	}
	if v, ok := c.get("b"); !ok || v.(int) != 2 {
		t.Errorf("b = %v, %v", v, ok)
	}
	// b is now most recent; inserting d evicts c.
	c.put("d", 4)
	if _, ok := c.get("c"); ok {
		t.Error("c should have been evicted after b was touched")
	}
	stats := c.Stats()
	if stats.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", stats.Evictions)
	}
	if stats.Entries != 2 {
		t.Errorf("entries = %d, want 2", stats.Entries)
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := newLRU(2)
	c.put("a", 1)
	c.put("a", 2)
	if v, _ := c.get("a"); v.(int) != 2 {
		t.Errorf("a = %v, want refreshed value 2", v)
	}
	if got := c.Stats().Entries; got != 1 {
		t.Errorf("entries = %d, want 1", got)
	}
}

func TestLRUMinimumCapacity(t *testing.T) {
	c := newLRU(0)
	c.put("a", 1)
	if _, ok := c.get("a"); !ok {
		t.Error("capacity should clamp to 1, not 0")
	}
}

func TestDoCachesSuccess(t *testing.T) {
	c := newLRU(4)
	calls := 0
	build := func() (any, error) { calls++; return "v", nil }
	v, cached, err := c.do("k", build)
	if err != nil || v.(string) != "v" || cached {
		t.Fatalf("first do = %v, %v, %v", v, cached, err)
	}
	v, cached, err = c.do("k", build)
	if err != nil || v.(string) != "v" || !cached {
		t.Fatalf("second do = %v, %v, %v", v, cached, err)
	}
	if calls != 1 {
		t.Errorf("build ran %d times, want 1", calls)
	}
	stats := c.Stats()
	if stats.Hits != 1 || stats.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", stats)
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := newLRU(4)
	calls := 0
	failing := func() (any, error) { calls++; return nil, errors.New("boom") }
	if _, _, err := c.do("k", failing); err == nil {
		t.Fatal("expected error")
	}
	if _, _, err := c.do("k", failing); err == nil {
		t.Fatal("expected error on retry")
	}
	if calls != 2 {
		t.Errorf("failing build ran %d times, want 2 (errors must not cache)", calls)
	}
	// A later success does cache.
	if _, _, err := c.do("k", func() (any, error) { return 42, nil }); err != nil {
		t.Fatal(err)
	}
	v, cached, err := c.do("k", failing)
	if err != nil || !cached || v.(int) != 42 {
		t.Errorf("after success: %v, %v, %v", v, cached, err)
	}
}

// TestDoSingleflight has many goroutines demand the same absent key; the
// build must run exactly once and everyone must observe its value.
func TestDoSingleflight(t *testing.T) {
	c := newLRU(4)
	var calls atomic.Int64
	release := make(chan struct{})
	build := func() (any, error) {
		calls.Add(1)
		<-release
		return "shared", nil
	}
	const n = 16
	var wg sync.WaitGroup
	results := make([]any, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.do("k", build)
			if err != nil {
				t.Errorf("do: %v", err)
			}
			results[i] = v
		}(i)
	}
	// Let the herd pile up behind the single in-flight build, then open it.
	for calls.Load() == 0 {
	}
	close(release)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Errorf("build ran %d times under contention, want 1", got)
	}
	for i, v := range results {
		if v.(string) != "shared" {
			t.Errorf("goroutine %d saw %v", i, v)
		}
	}
	stats := c.Stats()
	if stats.Misses != 1 || stats.Hits != n-1 {
		t.Errorf("stats = %+v, want 1 miss / %d hits", stats, n-1)
	}
}

func TestDoConcurrentDistinctKeys(t *testing.T) {
	c := newLRU(128)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				key := fmt.Sprintf("k%d", j)
				v, _, err := c.do(key, func() (any, error) { return j, nil })
				if err != nil || v.(int) != j {
					t.Errorf("do(%s) = %v, %v", key, v, err)
				}
			}
		}(i)
	}
	wg.Wait()
	if got := c.Stats().Entries; got != 50 {
		t.Errorf("entries = %d, want 50", got)
	}
}

func TestHitRatio(t *testing.T) {
	if got := (CacheStats{}).HitRatio(); got != 0 {
		t.Errorf("empty ratio = %v, want 0", got)
	}
	if got := (CacheStats{Hits: 3, Misses: 1}).HitRatio(); got != 0.75 {
		t.Errorf("ratio = %v, want 0.75", got)
	}
}
