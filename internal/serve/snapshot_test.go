package serve

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func sampleEntries() []snapEntry {
	return []snapEntry{
		{kind: snapKindResult, key: "/api/v1/predict\x00{\"workload\":\"lr-small\",\"slaves\":3}", val: []byte(`{"total_minutes":4.2}` + "\n")},
		{kind: snapKindResult, key: "/api/v1/whatif\x00{\"workload\":\"sql\"}", val: []byte(`{"rows":[1,2,3]}` + "\n")},
		{kind: snapKindResult, key: "empty-value", val: nil},
	}
}

func TestSnapshotCodecRoundTrip(t *testing.T) {
	in := sampleEntries()
	enc := appendSnapshot(nil, in)
	out, err := decodeSnapshot(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d entries, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].kind != in[i].kind || out[i].key != in[i].key || !bytes.Equal(out[i].val, in[i].val) {
			t.Fatalf("entry %d: got %+v want %+v", i, out[i], in[i])
		}
	}
	// Encoding must be deterministic: same entries, same bytes.
	if again := appendSnapshot(nil, in); !bytes.Equal(again, enc) {
		t.Fatal("re-encoding the same entries produced different bytes")
	}
}

func TestSnapshotCodecEmpty(t *testing.T) {
	enc := appendSnapshot(nil, nil)
	out, err := decodeSnapshot(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("decoded %d entries from empty snapshot", len(out))
	}
}

func TestSnapshotDecodeRejectsDefects(t *testing.T) {
	valid := appendSnapshot(nil, sampleEntries())
	cases := map[string][]byte{
		"empty":         {},
		"short":         valid[:8],
		"bad magic":     append([]byte("NOTASNAP"), valid[8:]...),
		"truncated":     valid[:len(valid)-9],
		"trailing junk": append(append([]byte{}, valid...), 0xFF),
	}
	// Bit flips anywhere — magic, lengths, keys, values, checksum — must
	// be caught by the CRC (or the structure checks behind it).
	for i := 0; i < len(valid); i += 7 {
		flipped := append([]byte{}, valid...)
		flipped[i] ^= 0x40
		cases[fmt.Sprintf("bit flip at %d", i)] = flipped
	}
	// A wrong version with a RECOMPUTED valid checksum must still be
	// rejected: checksums authenticate bytes, versions gate formats.
	wrongVersion := append([]byte{}, snapshotMagic...)
	wrongVersion = append(wrongVersion, 99) // version 99
	wrongVersion = append(wrongVersion, 0)  // zero entries
	sum := crc32.ChecksumIEEE(wrongVersion)
	wrongVersion = binary.LittleEndian.AppendUint32(wrongVersion, sum)
	cases["wrong version, valid checksum"] = wrongVersion

	for name, data := range cases {
		if _, err := decodeSnapshot(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSnapshotServerWarmStart(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.snap")
	a := newTestServer(t, func(c *Config) { c.SnapshotPath = path })
	body := `{"workload":"lr-small","slaves":3,"cores":8}`
	first := post(t, a.Handler(), "/api/v1/predict", body)
	if first.Code != 200 {
		t.Fatalf("predict: status %d: %s", first.Code, first.Body)
	}
	if got := first.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("first request X-Cache %q, want miss", got)
	}
	if err := a.writeSnapshot(); err != nil {
		t.Fatal(err)
	}
	if a.CacheStats().Entries < 2 {
		t.Fatalf("expected result + calibration entries, have %d", a.CacheStats().Entries)
	}

	// A fresh process (fresh Server) restores the snapshot and serves the
	// previously-computed answer as a byte-identical first-request hit,
	// calibration included: no simulator runs, no model fits.
	b := newTestServer(t, func(c *Config) { c.SnapshotPath = path })
	stats := b.CacheStats()
	if stats.Entries != a.CacheStats().Entries {
		t.Fatalf("restored %d entries, want %d", stats.Entries, a.CacheStats().Entries)
	}
	if stats.Hits != 0 || stats.Misses != 0 {
		t.Fatalf("restore polluted stats: %+v", stats)
	}
	start := time.Now()
	again := post(t, b.Handler(), "/api/v1/predict", body)
	warmLatency := time.Since(start)
	if again.Code != 200 {
		t.Fatalf("warm predict: status %d", again.Code)
	}
	if got := again.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("first request after warm start: X-Cache %q, want hit", got)
	}
	if !bytes.Equal(again.Body.Bytes(), first.Body.Bytes()) {
		t.Fatal("warm-start response differs from the original bytes")
	}
	// Generous bound: a hit is a map lookup; a recompute is simulator runs.
	if warmLatency > 5*time.Second {
		t.Fatalf("warm hit took %v; looks like a recompute", warmLatency)
	}
}

func TestSnapshotMissingFileColdBoot(t *testing.T) {
	var events strings.Builder
	s := newTestServer(t, func(c *Config) {
		c.SnapshotPath = filepath.Join(t.TempDir(), "never-written.snap")
		c.EventLog = &events
	})
	if n := s.CacheStats().Entries; n != 0 {
		t.Fatalf("cold boot restored %d entries", n)
	}
	if events.Len() != 0 {
		t.Fatalf("missing snapshot logged noise: %q", events.String())
	}
	rec := post(t, s.Handler(), "/api/v1/predict", `{"workload":"lr-small","slaves":3,"cores":8}`)
	if rec.Code != 200 || rec.Header().Get("X-Cache") != "miss" {
		t.Fatalf("cold boot first request: status %d X-Cache %q", rec.Code, rec.Header().Get("X-Cache"))
	}
}

func TestSnapshotCorruptFileRejectedAndLogged(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.snap")
	if err := os.WriteFile(path, []byte("DOPSNAP\ngarbage everywhere"), 0o644); err != nil {
		t.Fatal(err)
	}
	var events strings.Builder
	s := newTestServer(t, func(c *Config) {
		c.SnapshotPath = path
		c.EventLog = &events
	})
	if n := s.CacheStats().Entries; n != 0 {
		t.Fatalf("corrupt snapshot restored %d entries", n)
	}
	if !strings.Contains(events.String(), "rejected") {
		t.Fatalf("corrupt snapshot not logged: %q", events.String())
	}
	if got := s.snapRejected.Value(); got != 1 {
		t.Fatalf("snapshot_rejected_total = %d, want 1", got)
	}
}

func TestSnapshotWriteIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.snap")
	s := newTestServer(t, func(c *Config) { c.SnapshotPath = path })
	s.cache.put("/api/v1/predict\x00{}", []byte("one"))
	if err := s.writeSnapshot(); err != nil {
		t.Fatal(err)
	}
	old, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s.cache.put("/api/v1/predict\x00{\"slaves\":4}", []byte("two"))
	if err := s.writeSnapshot(); err != nil {
		t.Fatal(err)
	}
	// No temp droppings, and the file is always a complete valid snapshot.
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 || files[0].Name() != "cache.snap" {
		names := make([]string, len(files))
		for i, f := range files {
			names[i] = f.Name()
		}
		t.Fatalf("snapshot dir has %v, want exactly [cache.snap]", names)
	}
	cur, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(cur, old) {
		t.Fatal("second snapshot did not replace the first")
	}
	if _, err := decodeSnapshot(cur); err != nil {
		t.Fatalf("replaced snapshot invalid: %v", err)
	}
	if got := s.snapWrites.Value(); got != 2 {
		t.Fatalf("snapshot_writes_total = %d, want 2", got)
	}
}

func TestSnapshotPreservesLRUOrder(t *testing.T) {
	// Restoring a snapshot into a smaller cache must keep the NEWEST
	// entries — proof the oldest→newest wire order round-trips recency.
	big := newLRU(8)
	for i := 0; i < 8; i++ {
		big.put(fmt.Sprintf("/api/k%d", i), []byte{byte(i)})
	}
	entries, err := big.exportEntries()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := decodeSnapshot(appendSnapshot(nil, entries))
	if err != nil {
		t.Fatal(err)
	}
	small := newLRU(3)
	if _, _, err := small.restoreEntries(dec); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, ok := small.peekResult(fmt.Sprintf("/api/k%d", i)); ok {
			t.Fatalf("old entry k%d survived a 3-entry restore", i)
		}
	}
	for i := 5; i < 8; i++ {
		if _, ok := small.peekResult(fmt.Sprintf("/api/k%d", i)); !ok {
			t.Fatalf("recent entry k%d lost in restore", i)
		}
	}
}

func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("DOPSNAP\n"))
	f.Add(appendSnapshot(nil, nil))
	f.Add(appendSnapshot(nil, sampleEntries()))
	f.Add(appendSnapshot(nil, []snapEntry{{kind: snapKindCalibration, key: "calibration\x00testbed\x00wc\x003", val: []byte{1, 2, 3}}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Arbitrary bytes must never panic the decoder; whatever it
		// accepts must survive a re-encode/re-decode cycle unchanged.
		if entries, err := decodeSnapshot(data); err == nil {
			back, err := decodeSnapshot(appendSnapshot(nil, entries))
			if err != nil {
				t.Fatalf("re-decode of accepted snapshot failed: %v", err)
			}
			compareSnapEntries(t, entries, back)
		}
		// Encode→decode must be the identity on arbitrary entry content,
		// keys and values alike (binary, NULs, non-UTF8, empty).
		mid := len(data) / 2
		in := []snapEntry{
			{kind: byte(len(data) % 2), key: string(data[:mid]), val: data[mid:]},
			{kind: snapKindResult, key: "", val: nil},
		}
		out, err := decodeSnapshot(appendSnapshot(nil, in))
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		compareSnapEntries(t, in, out)
	})
}

func compareSnapEntries(t *testing.T, want, got []snapEntry) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].kind != want[i].kind || got[i].key != want[i].key || !bytes.Equal(got[i].val, want[i].val) {
			t.Fatalf("entry %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}
