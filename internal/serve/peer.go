package serve

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"strings"
	"time"
)

// Cross-replica read-through. A replica that misses locally on a result
// key asks the key's hash-ring owner for its cached bytes before paying
// the compute itself — the I/O-vs-recompute tradeoff the paper's Eq. 1
// prices, applied to the serve tier: one small LAN round-trip against a
// calibration (four simulator runs) or a sweep. The protocol is
// deliberately dumb:
//
//	POST /internal/v1/peek   body = the canonical cache key, verbatim
//	  200 + cached bytes     owner had the result entry
//	  404                    owner doesn't have it (or it isn't a result)
//
// Peek is read-only on the owner: it never triggers a build, never
// recurses into the owner's own read-through, and never moves the
// owner's hit/miss stats. The asker bounds the round-trip with
// Config.PeerTimeout so a dead or slow peer costs at most that before
// the asker falls through to local compute — read-through affects
// latency only, never correctness or availability.

// peekRoute is the internal cache-peek endpoint. The fronting router
// only proxies /api/, so peers are reachable for peek but clients are
// not.
const peekRoute = "/internal/v1/peek"

// handlePeek answers a peer's cache probe. Only result entries ([]byte
// values) are served: calibrations are an implementation detail of the
// owner and their keys never leave a replica.
func (s *Server) handlePeek(w http.ResponseWriter, r *http.Request) {
	key, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil || len(key) == 0 || len(key) > maxBodyBytes {
		s.peekRequests.With("bad").Inc()
		w.WriteHeader(http.StatusBadRequest)
		return
	}
	body, ok := s.cache.peekResult(string(key))
	if !ok {
		s.peekRequests.With("miss").Inc()
		w.WriteHeader(http.StatusNotFound)
		return
	}
	s.peekRequests.With("hit").Inc()
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// peekResult returns the cached result bytes for key without disturbing
// the cache: no recency bump, no hit/miss accounting — a peer's probe
// must not look like local traffic.
func (c *lru) peekResult(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	body, ok := el.Value.(*cacheEntry).val.([]byte)
	return body, ok
}

// readThrough consults key's ring owner before a cold compute. It
// returns the owner's cached bytes, or false if this replica IS the
// owner, the key is not a result key, peers are not configured, or the
// peek failed or timed out for any reason whatsoever — every failure
// falls through to local compute.
func (s *Server) readThrough(key string) ([]byte, bool) {
	if s.peerRing == nil || !strings.HasPrefix(key, "/api/") {
		return nil, false
	}
	owner := s.peerRing.Primary(key)
	if owner == s.ReplicaID() {
		return nil, false
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.PeerTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+owner+peekRoute, bytes.NewReader([]byte(key)))
	if err != nil {
		s.readThroughs.With("error").Inc()
		return nil, false
	}
	resp, err := s.peerClient.Do(req)
	if err != nil {
		s.readThroughs.With("error").Inc()
		return nil, false
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		s.readThroughs.With("miss").Inc()
		return nil, false
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes+1))
	if err != nil || len(body) == 0 || len(body) > maxBodyBytes {
		s.readThroughs.With("error").Inc()
		return nil, false
	}
	s.readThroughs.With("hit").Inc()
	return body, true
}

// newPeerClient builds the HTTP client used for peeks: tiny timeouts,
// a few idle connections per peer so steady-state peeks reuse sockets.
func newPeerClient(timeout time.Duration) *http.Client {
	return &http.Client{
		Timeout: timeout,
		Transport: &http.Transport{
			MaxIdleConns:        16,
			MaxIdleConnsPerHost: 4,
			IdleConnTimeout:     90 * time.Second,
		},
	}
}
