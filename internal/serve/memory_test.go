package serve

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// TestPredictHeapGB checks the memory term flows through the predict
// route: a tight heap inflates the prediction, surfaces per-stage
// mem_limit_seconds, and the legacy (heap-free) response stays free of
// the new field so cached bytes are unchanged.
func TestPredictHeapGB(t *testing.T) {
	s := newTestServer(t, nil)
	legacy := post(t, s.Handler(), "/api/v1/predict",
		`{"workload":"terasort","slaves":3,"cores":8,"hdfs":"hdd","local":"hdd"}`)
	if legacy.Code != 200 {
		t.Fatalf("legacy status = %d: %s", legacy.Code, legacy.Body)
	}
	if strings.Contains(legacy.Body.String(), "mem_limit_seconds") {
		t.Error("heap-free prediction leaks mem_limit_seconds into the response")
	}
	var base PredictResponse
	if err := json.Unmarshal(legacy.Body.Bytes(), &base); err != nil {
		t.Fatal(err)
	}

	tight := post(t, s.Handler(), "/api/v1/predict",
		`{"workload":"terasort","slaves":3,"cores":8,"hdfs":"hdd","local":"hdd","heap_gb":0.25}`)
	if tight.Code != 200 {
		t.Fatalf("tight status = %d: %s", tight.Code, tight.Body)
	}
	var mem PredictResponse
	if err := json.Unmarshal(tight.Body.Bytes(), &mem); err != nil {
		t.Fatal(err)
	}
	if mem.TotalSeconds <= base.TotalSeconds {
		t.Errorf("0.25 GB heap predicted %v s, want > heap-free %v s",
			mem.TotalSeconds, base.TotalSeconds)
	}
	var anyMem bool
	for _, st := range mem.Stages {
		if st.MemLimitSeconds < 0 {
			t.Errorf("stage %s has negative mem_limit_seconds %v", st.Name, st.MemLimitSeconds)
		}
		anyMem = anyMem || st.MemLimitSeconds > 0
	}
	if !anyMem {
		t.Error("no stage reports a positive mem_limit_seconds under a 0.25 GB heap")
	}
}

// TestSimulateHeapGB checks the simulator backend honours heap_gb: the
// same seed and cluster runs longer when spill and GC are live.
func TestSimulateHeapGB(t *testing.T) {
	s := newTestServer(t, nil)
	run := func(heap string) SimulateResponse {
		t.Helper()
		body := fmt.Sprintf(
			`{"workload":"terasort","slaves":3,"cores":8,"hdfs":"hdd","local":"hdd","seed":7%s}`, heap)
		rec := post(t, s.Handler(), "/api/v1/simulate", body)
		if rec.Code != 200 {
			t.Fatalf("status = %d: %s", rec.Code, rec.Body)
		}
		var resp SimulateResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}
	base := run("")
	mem := run(`,"heap_gb":0.25`)
	if mem.TotalSeconds <= base.TotalSeconds {
		t.Errorf("simulated 0.25 GB heap ran %v s, want > heap-free %v s",
			mem.TotalSeconds, base.TotalSeconds)
	}
}

// TestRecommendHeapAxis checks heap_gbs widens the search space and the
// winning candidates carry their heap.
func TestRecommendHeapAxis(t *testing.T) {
	s := newTestServer(t, nil)
	legacy := post(t, s.Handler(), "/api/v1/recommend", `{"workload":"lr-small","top":3}`)
	if legacy.Code != 200 {
		t.Fatalf("legacy status = %d: %s", legacy.Code, legacy.Body)
	}
	var base RecommendResponse
	if err := json.Unmarshal(legacy.Body.Bytes(), &base); err != nil {
		t.Fatal(err)
	}

	rec := post(t, s.Handler(), "/api/v1/recommend",
		`{"workload":"lr-small","top":3,"heap_gbs":[4,64]}`)
	if rec.Code != 200 {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var resp RecommendResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.SpaceSize != 2*base.SpaceSize {
		t.Errorf("heap axis space = %d, want 2x legacy %d", resp.SpaceSize, base.SpaceSize)
	}
	if len(resp.Best) == 0 {
		t.Fatal("no candidates returned")
	}
	for _, c := range resp.Best {
		if c.HeapGB != 4 && c.HeapGB != 64 {
			t.Errorf("candidate %s carries heap %v, want one of the requested values", c.Spec, c.HeapGB)
		}
	}
}

// TestHeapValidation rejects out-of-range heap parameters.
func TestHeapValidation(t *testing.T) {
	s := newTestServer(t, nil)
	for _, tc := range []struct{ route, body string }{
		{"/api/v1/predict", `{"workload":"terasort","heap_gb":-1}`},
		{"/api/v1/predict", `{"workload":"terasort","heap_gb":5000}`},
		{"/api/v1/recommend", `{"workload":"terasort","heap_gbs":[0]}`},
		{"/api/v1/recommend", `{"workload":"terasort","heap_gbs":[-2]}`},
	} {
		rec := post(t, s.Handler(), tc.route, tc.body)
		if rec.Code != 400 {
			t.Errorf("POST %s %s status = %d, want 400", tc.route, tc.body, rec.Code)
		}
	}
}
