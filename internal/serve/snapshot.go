package serve

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
)

// Snapshot format, version 1 (all integers little-endian or uvarint):
//
//	magic    8 bytes   "DOPSNAP\n"
//	version  uvarint   currently 1
//	count    uvarint   number of entries
//	entries  count ×:
//	  kind   1 byte    0 = result bytes, 1 = gob-encoded *core.Calibration
//	  klen   uvarint   key length, then key bytes
//	  vlen   uvarint   value length, then value bytes
//	crc      4 bytes   IEEE CRC-32 over everything above, little-endian
//
// Entries are ordered oldest → newest so replaying them through the LRU
// reproduces the recency order the snapshot was taken with. The trailing
// checksum makes torn or bit-flipped files detectable before any entry
// is trusted; decodeSnapshot never panics on arbitrary input (fuzz-pinned
// by FuzzSnapshotRoundTrip).

const (
	snapshotMagic   = "DOPSNAP\n"
	snapshotVersion = 1

	snapKindResult      = 0
	snapKindCalibration = 1
)

// snapEntry is one cache entry in wire form. For result entries val is
// the response bytes themselves; for calibration entries it is a gob
// encoding of the *core.Calibration.
type snapEntry struct {
	kind byte
	key  string
	val  []byte
}

// appendSnapshot appends the encoded snapshot to dst and returns the
// extended slice. It allocates nothing beyond dst's growth, so a caller
// reusing dst across snapshots encodes with zero allocations
// (BenchmarkSnapshotEncode pins this).
func appendSnapshot(dst []byte, entries []snapEntry) []byte {
	start := len(dst)
	dst = append(dst, snapshotMagic...)
	dst = binary.AppendUvarint(dst, snapshotVersion)
	dst = binary.AppendUvarint(dst, uint64(len(entries)))
	for i := range entries {
		e := &entries[i]
		dst = append(dst, e.kind)
		dst = binary.AppendUvarint(dst, uint64(len(e.key)))
		dst = append(dst, e.key...)
		dst = binary.AppendUvarint(dst, uint64(len(e.val)))
		dst = append(dst, e.val...)
	}
	crc := crc32.ChecksumIEEE(dst[start:])
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// decodeSnapshot parses and fully validates a snapshot. Any defect —
// bad magic, unsupported version, truncation, trailing garbage, length
// overflow, checksum mismatch — returns an error; no partially-decoded
// entries are ever returned. The returned entries alias data.
func decodeSnapshot(data []byte) ([]snapEntry, error) {
	if len(data) < len(snapshotMagic)+4 {
		return nil, fmt.Errorf("snapshot too short (%d bytes)", len(data))
	}
	if string(data[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("bad snapshot magic")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	want := binary.LittleEndian.Uint32(tail)
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("snapshot checksum mismatch: file says %08x, contents hash to %08x", want, got)
	}
	rest := body[len(snapshotMagic):]
	version, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("unreadable snapshot version")
	}
	rest = rest[n:]
	if version != snapshotVersion {
		return nil, fmt.Errorf("unsupported snapshot version %d (want %d)", version, snapshotVersion)
	}
	count, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("unreadable entry count")
	}
	rest = rest[n:]
	if count > uint64(len(rest)) { // each entry needs >= 3 bytes; cheap overflow guard
		return nil, fmt.Errorf("entry count %d exceeds snapshot size", count)
	}
	entries := make([]snapEntry, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(rest) < 1 {
			return nil, fmt.Errorf("entry %d: truncated before kind", i)
		}
		kind := rest[0]
		rest = rest[1:]
		if kind != snapKindResult && kind != snapKindCalibration {
			return nil, fmt.Errorf("entry %d: unknown kind %d", i, kind)
		}
		key, rem, err := snapField(rest)
		if err != nil {
			return nil, fmt.Errorf("entry %d key: %v", i, err)
		}
		val, rem, err := snapField(rem)
		if err != nil {
			return nil, fmt.Errorf("entry %d value: %v", i, err)
		}
		rest = rem
		entries = append(entries, snapEntry{kind: kind, key: string(key), val: val})
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%d trailing bytes after last entry", len(rest))
	}
	return entries, nil
}

// snapField reads one uvarint-length-prefixed field.
func snapField(b []byte) (field, rest []byte, err error) {
	l, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, nil, fmt.Errorf("unreadable length")
	}
	b = b[n:]
	if l > uint64(len(b)) {
		return nil, nil, fmt.Errorf("length %d exceeds remaining %d bytes", l, len(b))
	}
	return b[:l], b[l:], nil
}

// exportEntries freezes the cache into wire entries, oldest → newest.
// Result entries are aliased, not copied (cached bodies are immutable);
// calibrations are gob-encoded. Values of any other type (none exist
// today) are skipped rather than failing the snapshot.
func (c *lru) exportEntries() ([]snapEntry, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	entries := make([]snapEntry, 0, c.ll.Len())
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		ce := el.Value.(*cacheEntry)
		switch v := ce.val.(type) {
		case []byte:
			entries = append(entries, snapEntry{kind: snapKindResult, key: ce.key, val: v})
		case *core.Calibration:
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(v); err != nil {
				return nil, fmt.Errorf("encoding calibration %q: %w", ce.key, err)
			}
			entries = append(entries, snapEntry{kind: snapKindCalibration, key: ce.key, val: buf.Bytes()})
		}
	}
	return entries, nil
}

// restoreEntries replays decoded entries into the cache in order, so the
// newest snapshot entry ends up most recent. It validates every entry
// before touching the cache: a snapshot either restores whole or not at
// all. Hit/miss counters are untouched — restored entries answer their
// first lookup as an ordinary hit.
func (c *lru) restoreEntries(entries []snapEntry) (results, calibrations int, err error) {
	vals := make([]any, len(entries))
	for i, e := range entries {
		switch e.kind {
		case snapKindResult:
			vals[i] = e.val
		case snapKindCalibration:
			cal := new(core.Calibration)
			if err := gob.NewDecoder(bytes.NewReader(e.val)).Decode(cal); err != nil {
				return 0, 0, fmt.Errorf("decoding calibration %q: %v", e.key, err)
			}
			vals[i] = cal
		default:
			return 0, 0, fmt.Errorf("entry %q: unknown kind %d", e.key, e.kind)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, e := range entries {
		c.putLocked(e.key, vals[i])
		if e.kind == snapKindResult {
			results++
		} else {
			calibrations++
		}
	}
	return results, calibrations, nil
}

// writeSnapshot encodes the current cache state and atomically replaces
// the snapshot file: write to a temp file in the same directory, fsync,
// rename over the target, fsync the directory. A crash at any point
// leaves either the old complete snapshot or the new complete snapshot,
// never a torn file.
func (s *Server) writeSnapshot() error {
	entries, err := s.cache.exportEntries()
	if err != nil {
		return err
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	s.snapBuf = appendSnapshot(s.snapBuf[:0], entries)
	path := s.cfg.SnapshotPath
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(s.snapBuf); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	s.snapWrites.Inc()
	s.snapLastBytes.Set(int64(len(s.snapBuf)))
	return nil
}

// loadSnapshot warm-starts the cache from Config.SnapshotPath. A missing
// file is a normal cold boot. Anything else that stops the restore —
// unreadable file, failed validation, undecodable entry — is logged and
// counted, and the server boots cold: a snapshot is an optimization,
// never an authority.
func (s *Server) loadSnapshot() {
	path := s.cfg.SnapshotPath
	data, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			s.snapRejected.Inc()
			s.eventf("serve: snapshot %s unreadable, booting cold: %v", path, err)
		}
		return
	}
	entries, err := decodeSnapshot(data)
	if err != nil {
		s.snapRejected.Inc()
		s.eventf("serve: snapshot %s rejected, booting cold: %v", path, err)
		return
	}
	results, calibrations, err := s.cache.restoreEntries(entries)
	if err != nil {
		s.snapRejected.Inc()
		s.eventf("serve: snapshot %s rejected, booting cold: %v", path, err)
		return
	}
	s.snapRestored.Set(int64(results + calibrations))
	s.eventf("serve: warm start from %s: %d result + %d calibration entries", path, results, calibrations)
}

// snapshotLoop writes a snapshot every interval until ctx is done. Run
// takes one final snapshot after the drain completes, so a SIGTERM'd
// replica hands its successor a cache that includes everything it served.
func (s *Server) snapshotLoop(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := s.writeSnapshot(); err != nil {
				s.snapWriteErrors.Inc()
				s.eventf("serve: snapshot write failed: %v", err)
			}
		}
	}
}
