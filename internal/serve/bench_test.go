package serve

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
)

// The serve benchmarks gate the request hot path in CI (see
// docs/BENCH_serve.json and the bench-regression job): a cache hit must
// stay a hash lookup plus a header write, never a simulator run.

func BenchmarkCacheDoHit(b *testing.B) {
	c := newLRU(64)
	if _, _, err := c.do("k", func() (any, error) { return []byte("v"), nil }); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, hit, _ := c.do("k", nil); !hit {
			b.Fatal("expected hit")
		}
	}
}

func BenchmarkCachePutEvict(b *testing.B) {
	c := newLRU(64)
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	// The value is fixed: boxing the loop counter would allocate only
	// for i >= 256, leaving allocs/op straddling an integer boundary
	// and flaking the strict allocs gate in CI.
	val := any([]byte("value"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.put(keys[i%len(keys)], val)
	}
}

func BenchmarkCanonicalKey(b *testing.B) {
	req := PredictRequest{
		ClusterParams: ClusterParams{Workload: "sql", Slaves: 3, Cores: 8},
	}
	if err := req.normalize(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cacheKey("/api/v1/predict", req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHandlerCacheHit measures the full HTTP path of a warm
// request: decode, normalize, canonical key, cache hit, replayed bytes.
func BenchmarkHandlerCacheHit(b *testing.B) {
	s, err := New(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		b.Fatal(err)
	}
	body := `{"workload":"sql","slaves":3,"cores":8}`
	warm := httptest.NewRecorder()
	warmReq := httptest.NewRequest("POST", "/api/v1/simulate", strings.NewReader(body))
	s.Handler().ServeHTTP(warm, warmReq)
	if warm.Code != 200 {
		b.Fatalf("warmup status = %d: %s", warm.Code, warm.Body)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/api/v1/simulate", strings.NewReader(body))
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != 200 {
			b.Fatalf("status = %d", rec.Code)
		}
	}
}

// BenchmarkSnapshotEncode measures serializing a populated cache into
// the snapshot wire format with a reused buffer — the steady-state cost
// of the periodic snapshot loop. The append-style codec must stay
// zero-alloc so snapshotting never pressures the GC under load.
func BenchmarkSnapshotEncode(b *testing.B) {
	entries := make([]snapEntry, 256)
	for i := range entries {
		entries[i] = snapEntry{
			kind: snapKindResult,
			key:  fmt.Sprintf("/api/v1/predict\x00{\"cores\":8,\"slaves\":%d,\"workload\":\"lr-small\"}", i+1),
			val:  []byte(`{"workload":"lr-small","predicted_runtime_seconds":142.51,"model":"doppio-io"}`),
		}
	}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = appendSnapshot(buf[:0], entries)
		if len(buf) == 0 {
			b.Fatal("empty snapshot")
		}
	}
}

// BenchmarkMetricsScrape measures a /metrics render with the full series
// set populated.
func BenchmarkMetricsScrape(b *testing.B) {
	s, err := New(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		b.Fatal(err)
	}
	warm := httptest.NewRecorder()
	s.Handler().ServeHTTP(warm, httptest.NewRequest("POST", "/api/v1/simulate",
		strings.NewReader(`{"workload":"sql","slaves":3,"cores":8}`)))
	if warm.Code != 200 {
		b.Fatalf("warmup status = %d", warm.Code)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		if rec.Code != 200 {
			b.Fatalf("status = %d", rec.Code)
		}
	}
}
