package core

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/spark"
	"repro/internal/units"
)

// fuzzKinds are the op kinds a model may carry (everything but
// OpCompute, which Validate rejects).
var fuzzKinds = []spark.OpKind{
	spark.OpHDFSRead, spark.OpHDFSWrite,
	spark.OpShuffleRead, spark.OpShuffleWrite,
	spark.OpPersistRead, spark.OpPersistWrite,
}

// fuzzCurve derives a valid monotone-request-size curve from the rng.
func fuzzCurve(r *rand.Rand) *disk.Curve {
	n := 1 + r.Intn(5)
	pts := make([]disk.CurvePoint, n)
	req := units.ByteSize(1 + r.Intn(64))
	for i := range pts {
		pts[i] = disk.CurvePoint{
			ReqSize:   req * units.KB,
			Bandwidth: units.MBps(0.5 + 600*r.Float64()),
		}
		req *= units.ByteSize(2 + r.Intn(8))
	}
	return disk.MustCurve(pts)
}

// fuzzModel derives a valid model and environment from the rng. Zeros
// are sprinkled deliberately: zero bytes, zero T, zero coupled rate and
// zero deltas all take distinct branches in the compiler.
func fuzzModel(r *rand.Rand) (AppModel, Env) {
	env := Env{
		Curves: Curves{
			HDFSRead:   fuzzCurve(r),
			HDFSWrite:  fuzzCurve(r),
			LocalRead:  fuzzCurve(r),
			LocalWrite: fuzzCurve(r),
		},
		Replication: 1 + r.Intn(3),
		BlockSize:   units.ByteSize(1+r.Intn(256)) * units.MB,
	}
	// Half the models carry a memory term; partial parameter sets take
	// the default-resolution branches, tiny heaps the full-spill clamp.
	if r.Intn(2) == 0 {
		env.Memory = MemParams{HeapBytes: units.ByteSize(1 + r.Int63n(int64(64*units.GB)))}
		if r.Intn(2) == 0 {
			env.Memory.Expansion = 0.5 + 4*r.Float64()
		}
		if r.Intn(2) == 0 {
			env.Memory.SpillReqSize = units.ByteSize(1+r.Intn(4096)) * units.KB
		}
		if r.Intn(2) == 0 {
			env.Memory.GCMaxPause = time.Duration(r.Int63n(int64(2 * time.Second)))
		}
		if r.Intn(2) == 0 {
			env.Memory.GCThreshold = r.Float64()
		}
	}
	app := AppModel{Name: "fuzz"}
	for s := 0; s < 1+r.Intn(4); s++ {
		st := StageModel{
			Name:       string(rune('a' + s)),
			DeltaScale: time.Duration(r.Intn(3)) * time.Second,
			DeltaRead:  time.Duration(r.Intn(2)) * time.Second,
			DeltaWrite: time.Duration(r.Intn(2)) * time.Second,
		}
		for g := 0; g < 1+r.Intn(3); g++ {
			gm := GroupModel{
				Name:           string(rune('p' + g)),
				Count:          1 + r.Intn(2000),
				ComputePerTask: time.Duration(r.Int63n(int64(10 * time.Second))),
			}
			for o := 0; o < r.Intn(4); o++ {
				op := OpModel{
					Kind:         fuzzKinds[r.Intn(len(fuzzKinds))],
					BytesPerTask: units.ByteSize(r.Int63n(int64(units.GB))),
				}
				if r.Intn(2) == 0 {
					op.ReqSize = units.ByteSize(r.Int63n(int64(64 * units.MB)))
				}
				if r.Intn(2) == 0 {
					op.T = units.MBps(1 + 400*r.Float64())
				}
				if r.Intn(3) == 0 {
					op.CoupledRate = units.MBps(1 + 800*r.Float64())
				}
				gm.Ops = append(gm.Ops, op)
			}
			st.Groups = append(st.Groups, gm)
		}
		app.Stages = append(app.Stages, st)
	}
	return app, env
}

// FuzzCompiledPredict holds the compiled fast path and the classic
// per-stage path byte-identical on randomized models, environments,
// shapes and modes. Seeds live in testdata/fuzz/FuzzCompiledPredict.
func FuzzCompiledPredict(f *testing.F) {
	f.Add(uint64(1), 3, 8, 0)
	f.Add(uint64(42), 10, 36, 1)
	f.Add(uint64(7), 32, 16, 2)
	f.Add(uint64(1234567), 1, 1, 0)
	f.Fuzz(func(t *testing.T, seed uint64, n, p, mode int) {
		n = 1 + abs(n)%4096
		p = 1 + abs(p)%4096
		m := Mode(abs(mode) % 3)
		r := rand.New(rand.NewSource(int64(seed)))
		app, env := fuzzModel(r)
		if err := app.Validate(); err != nil {
			t.Fatalf("fuzzModel built an invalid model: %v", err)
		}
		pl := Platform{N: n, P: p, Curves: env.Curves, Replication: env.Replication, BlockSize: env.BlockSize, Memory: env.Memory}
		want := refPredict(app, pl, m)

		got, err := app.Predict(pl, m)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d shape (%d,%d) mode %v: compiled diverges\n got %+v\nwant %+v",
				seed, n, p, m, got, want)
		}

		cm, err := Compile(app, env, m)
		if err != nil {
			t.Fatal(err)
		}
		var out [1]time.Duration
		batch, err := cm.PredictBatch([]Shape{{N: n, P: p}}, out[:])
		if err != nil {
			t.Fatal(err)
		}
		if batch[0] != want.Total {
			t.Fatalf("seed %d shape (%d,%d) mode %v: batch total %v != %v",
				seed, n, p, m, batch[0], want.Total)
		}
	})
}

func abs(v int) int {
	if v < 0 {
		// Avoid the MinInt overflow: any fixed positive value keeps the
		// mapping deterministic.
		if v == -v {
			return 1
		}
		return -v
	}
	return v
}
