package core
