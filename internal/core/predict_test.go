package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/disk"
	"repro/internal/spark"
	"repro/internal/units"
)

// flatCurve builds a request-size-independent curve.
func flatCurve(r units.Rate) *disk.Curve {
	return disk.MustCurve([]disk.CurvePoint{
		{ReqSize: units.KB, Bandwidth: r},
		{ReqSize: units.GB, Bandwidth: r},
	})
}

func flatPlatform(n, p int, bw units.Rate) Platform {
	c := flatCurve(bw)
	return Platform{
		N: n, P: p,
		Curves:      Curves{HDFSRead: c, HDFSWrite: c, LocalRead: c, LocalWrite: c},
		Replication: 1,
		BlockSize:   128 * units.MB,
	}
}

// fig6Stage is the paper's running example: T=60 MB/s, λ=4 (1s I/O + 3s
// compute per task), BW=120 MB/s, so b=2 and B=8.
func fig6Stage(m int) StageModel {
	return StageModel{
		Name: "fig6",
		Groups: []GroupModel{{
			Name: "g", Count: m,
			ComputePerTask: 3 * time.Second,
			Ops: []OpModel{{
				Kind:         spark.OpShuffleRead,
				BytesPerTask: 60 * units.MB,
				ReqSize:      60 * units.MB,
				T:            units.MBps(60),
			}},
		}},
	}
}

func TestPredictScaleRegime(t *testing.T) {
	s := fig6Stage(64)
	pl := flatPlatform(1, 2, units.MBps(120))
	pred := s.Predict(pl, ModeDoppio)
	// t_scale = 64/2 * 4s = 128s; read limit = 64*60MB/120MB/s = 32s.
	if got := pred.TScale.Seconds(); math.Abs(got-128) > 0.5 {
		t.Errorf("TScale = %.1fs, want 128", got)
	}
	if got := pred.TReadLimit.Seconds(); math.Abs(got-32) > 0.5 {
		t.Errorf("TReadLimit = %.1fs, want 32", got)
	}
	if pred.T != pred.TScale || pred.Bottleneck != "scale" {
		t.Errorf("bottleneck = %s (T=%v), want scale", pred.Bottleneck, pred.T)
	}
	if got := pred.TAvg.Seconds(); math.Abs(got-4) > 0.01 {
		t.Errorf("TAvg = %.2fs, want 4", got)
	}
}

func TestPredictIOBoundRegime(t *testing.T) {
	s := fig6Stage(64)
	pl := flatPlatform(1, 16, units.MBps(120)) // P=16 > B=8
	pred := s.Predict(pl, ModeDoppio)
	// t_scale = 64/16*4 = 16s < read limit 32s.
	if pred.Bottleneck != "read" {
		t.Errorf("bottleneck = %s, want read", pred.Bottleneck)
	}
	if got := pred.T.Seconds(); math.Abs(got-32) > 0.5 {
		t.Errorf("T = %.1fs, want 32", got)
	}
}

func TestPredictMoreCoresDoNotHelpPastB(t *testing.T) {
	s := fig6Stage(64)
	t16 := s.Predict(flatPlatform(1, 16, units.MBps(120)), ModeDoppio).T
	t64 := s.Predict(flatPlatform(1, 64, units.MBps(120)), ModeDoppio).T
	if t64 != t16 {
		t.Errorf("P=64 (%v) != P=16 (%v); past B the model must plateau", t64, t16)
	}
}

func TestPredictMonotoneInP(t *testing.T) {
	// Property: predicted stage time is non-increasing in P.
	s := fig6Stage(200)
	f := func(a, b uint8) bool {
		p1, p2 := int(a%63)+1, int(b%63)+1
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		t1 := s.Predict(flatPlatform(2, p1, units.MBps(120)), ModeDoppio).T
		t2 := s.Predict(flatPlatform(2, p2, units.MBps(120)), ModeDoppio).T
		return t2 <= t1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPredictMonotoneInN(t *testing.T) {
	s := fig6Stage(200)
	f := func(a, b uint8) bool {
		n1, n2 := int(a%15)+1, int(b%15)+1
		if n1 > n2 {
			n1, n2 = n2, n1
		}
		t1 := s.Predict(flatPlatform(n1, 8, units.MBps(120)), ModeDoppio).T
		t2 := s.Predict(flatPlatform(n2, 8, units.MBps(120)), ModeDoppio).T
		return t2 <= t1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPredictDeltasAdd(t *testing.T) {
	s := fig6Stage(64)
	s.DeltaScale = 10 * time.Second
	pl := flatPlatform(1, 2, units.MBps(120))
	pred := s.Predict(pl, ModeDoppio)
	if got := pred.TScale.Seconds(); math.Abs(got-138) > 0.5 {
		t.Errorf("TScale with δ = %.1fs, want 138", got)
	}
	s.DeltaRead = 100 * time.Second
	pred = s.Predict(flatPlatform(1, 16, units.MBps(120)), ModeDoppio)
	if got := pred.TReadLimit.Seconds(); math.Abs(got-132) > 0.5 {
		t.Errorf("TReadLimit with δ = %.1fs, want 132", got)
	}
}

func TestPredictWriteLimitAndReplication(t *testing.T) {
	s := StageModel{
		Name: "w",
		Groups: []GroupModel{{
			Name: "g", Count: 10,
			Ops: []OpModel{{
				Kind:         spark.OpHDFSWrite,
				BytesPerTask: 120 * units.MB,
				T:            units.MBps(1000),
			}},
		}},
	}
	pl := flatPlatform(1, 10, units.MBps(120))
	pl.Replication = 2
	pred := s.Predict(pl, ModeDoppio)
	// 10 tasks * 120 MB * 2 replication / 120 MB/s = 20s.
	if got := pred.TWriteLimit.Seconds(); math.Abs(got-20) > 0.5 {
		t.Errorf("TWriteLimit = %.1fs, want 20 (with 2x replication)", got)
	}
	if pred.Bottleneck != "write" {
		t.Errorf("bottleneck = %s, want write", pred.Bottleneck)
	}
}

func TestCoupledComputeHarmonic(t *testing.T) {
	// bytes=60MB, media 60 MB/s, coupled compute 3s -> op time 4s.
	g := GroupModel{
		Name: "g", Count: 1,
		Ops: []OpModel{{
			Kind:         spark.OpShuffleRead,
			BytesPerTask: 60 * units.MB,
			T:            units.MBps(60),
			CoupledRate:  units.Rate(float64(60*units.MB) / 3.0),
		}},
	}
	pl := flatPlatform(1, 1, units.MBps(1000))
	if got := g.TaskTime(pl, ModeDoppio).Seconds(); math.Abs(got-4) > 0.01 {
		t.Errorf("coupled task time = %.2fs, want 4", got)
	}
}

func TestModePeakBWIgnoresRequestSize(t *testing.T) {
	// A 30 KB-request read on a realistic HDD: Doppio sees 15 MB/s, the
	// peak-BW ablation sees ~142 MB/s and wildly underpredicts.
	hdd := disk.NewHDD()
	pl := Platform{
		N: 1, P: 36,
		Curves:      CurvesFor(hdd, hdd),
		Replication: 2,
		BlockSize:   128 * units.MB,
	}
	s := StageModel{
		Name: "shuffle",
		Groups: []GroupModel{{
			Name: "g", Count: 1000,
			Ops: []OpModel{{
				Kind:         spark.OpShuffleRead,
				BytesPerTask: 27 * units.MB,
				ReqSize:      30 * units.KB,
				T:            units.MBps(60),
			}},
		}},
	}
	doppio := s.Predict(pl, ModeDoppio)
	peak := s.Predict(pl, ModePeakBW)
	if ratio := doppio.T.Seconds() / peak.T.Seconds(); ratio < 5 {
		t.Errorf("peak-BW ablation only %.1fx off; expected huge underprediction", ratio)
	}
}

func TestModeNoOverlapSums(t *testing.T) {
	s := fig6Stage(64)
	pl := flatPlatform(1, 4, units.MBps(120))
	d := s.Predict(pl, ModeDoppio)
	n := s.Predict(pl, ModeNoOverlap)
	if n.T != d.TScale+d.TReadLimit+d.TWriteLimit {
		t.Errorf("no-overlap T = %v, want sum %v", n.T, d.TScale+d.TReadLimit)
	}
	if n.Bottleneck != "sum" {
		t.Errorf("bottleneck = %s", n.Bottleneck)
	}
}

func TestModeString(t *testing.T) {
	if ModeDoppio.String() != "doppio" || ModePeakBW.String() != "peak-bw" ||
		ModeNoOverlap.String() != "no-overlap" {
		t.Error("Mode.String broken")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Error("unknown Mode.String broken")
	}
}

func TestAppPredictSumsStages(t *testing.T) {
	a := AppModel{Name: "app", Stages: []StageModel{fig6Stage(64), fig6Stage(32)}}
	pl := flatPlatform(1, 2, units.MBps(120))
	pred, err := a.Predict(pl, ModeDoppio)
	if err != nil {
		t.Fatal(err)
	}
	if len(pred.Stages) != 2 {
		t.Fatalf("stages = %d", len(pred.Stages))
	}
	if pred.Total != pred.Stages[0].T+pred.Stages[1].T {
		t.Error("total != sum of stages")
	}
	if _, ok := pred.Stage("fig6"); !ok {
		t.Error("Stage lookup failed")
	}
	if _, ok := pred.Stage("nope"); ok {
		t.Error("Stage found a ghost")
	}
}

func TestValidationErrors(t *testing.T) {
	pl := flatPlatform(1, 1, units.MBps(100))
	bad := []AppModel{
		{Name: "empty"},
		{Name: "nogroups", Stages: []StageModel{{Name: "s"}}},
		{Name: "zerocount", Stages: []StageModel{{Name: "s", Groups: []GroupModel{{Count: 0}}}}},
		{Name: "computeop", Stages: []StageModel{{Name: "s", Groups: []GroupModel{{
			Count: 1, Ops: []OpModel{{Kind: spark.OpCompute}},
		}}}}},
	}
	for _, a := range bad {
		if _, err := a.Predict(pl, ModeDoppio); err == nil {
			t.Errorf("model %q accepted", a.Name)
		}
	}
	good := AppModel{Name: "g", Stages: []StageModel{fig6Stage(1)}}
	for _, p := range []Platform{
		{N: 0, P: 1, Curves: pl.Curves, Replication: 1, BlockSize: units.MB},
		{N: 1, P: 0, Curves: pl.Curves, Replication: 1, BlockSize: units.MB},
		{N: 1, P: 1, Curves: pl.Curves, Replication: 0, BlockSize: units.MB},
		{N: 1, P: 1, Curves: pl.Curves, Replication: 1, BlockSize: 0},
		{N: 1, P: 1, Replication: 1, BlockSize: units.MB},
	} {
		if _, err := good.Predict(p, ModeDoppio); err == nil {
			t.Errorf("platform %+v accepted", p)
		}
	}
}

func TestErrorRate(t *testing.T) {
	if e := ErrorRate(110*time.Second, 100*time.Second); math.Abs(e-0.1) > 1e-9 {
		t.Errorf("ErrorRate = %v", e)
	}
	if e := ErrorRate(90*time.Second, 100*time.Second); math.Abs(e-0.1) > 1e-9 {
		t.Errorf("ErrorRate = %v", e)
	}
	if ErrorRate(time.Second, 0) != 0 {
		t.Error("zero measured should give 0")
	}
}

func TestBreakPoints(t *testing.T) {
	// Paper Section V-A2, SSD case: T=60 MB/s, BW=480 MB/s at 30 KB,
	// λ=20 -> b=8, B=160.
	ssd := disk.NewSSD()
	pl := Platform{N: 10, P: 36, Curves: CurvesFor(ssd, ssd), Replication: 2, BlockSize: 128 * units.MB}
	readT := units.MBps(60).TimeFor(27 * units.MB) // 0.45s
	g := GroupModel{
		Name: "recal", Count: 12000,
		ComputePerTask: time.Duration(19 * float64(readT)), // λ=20
		Ops: []OpModel{{
			Kind:         spark.OpShuffleRead,
			BytesPerTask: 27 * units.MB,
			ReqSize:      30 * units.KB,
			T:            units.MBps(60),
		}},
	}
	bp, err := g.Analyze(0, pl)
	if err != nil {
		t.Fatal(err)
	}
	if bp.B0 < 7 || bp.B0 > 9 {
		t.Errorf("b = %.1f, paper says 8", bp.B0)
	}
	if bp.Lambda < 18 || bp.Lambda > 22 {
		t.Errorf("λ = %.1f, paper says 20", bp.Lambda)
	}
	if bp.B < 140 || bp.B > 180 {
		t.Errorf("B = %.0f, paper says 160", bp.B)
	}
	if ph := bp.Classify(36); ph != PhaseHidden {
		t.Errorf("P=36 phase = %v, want hidden (36 < B=160)", ph)
	}
	if ph := bp.Classify(4); ph != PhaseNoContention {
		t.Errorf("P=4 phase = %v", ph)
	}
	if ph := bp.Classify(200); ph != PhaseIOBound {
		t.Errorf("P=200 phase = %v", ph)
	}

	// HDD case: BW(30KB)=15 < T=60 -> b floors at 1; λ at HDD speeds
	// drops to ~5 -> B≈5 (paper Section V-A2).
	hdd := disk.NewHDD()
	plH := Platform{N: 10, P: 36, Curves: CurvesFor(hdd, hdd), Replication: 2, BlockSize: 128 * units.MB}
	bpH, err := g.Analyze(0, plH)
	if err != nil {
		t.Fatal(err)
	}
	if bpH.B0 != 1 {
		t.Errorf("HDD b = %.2f, paper says 1", bpH.B0)
	}
	if bpH.Lambda < 4 || bpH.Lambda > 7 {
		t.Errorf("HDD λ = %.1f, paper says ~5", bpH.Lambda)
	}
	if ph := bpH.Classify(36); ph != PhaseIOBound {
		t.Errorf("HDD P=36 phase = %v, want I/O bound", ph)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	g := GroupModel{Name: "g", Count: 1, Ops: []OpModel{{Kind: spark.OpShuffleRead, BytesPerTask: units.MB}}}
	pl := flatPlatform(1, 1, units.MBps(100))
	if _, err := g.Analyze(5, pl); err == nil {
		t.Error("out-of-range op index accepted")
	}
	if _, err := g.Analyze(0, pl); err != nil {
		t.Errorf("valid analyze failed: %v", err)
	}
}

func TestPhaseString(t *testing.T) {
	for _, p := range []Phase{PhaseNoContention, PhaseHidden, PhaseIOBound} {
		if p.String() == "" {
			t.Error("empty phase string")
		}
	}
	if Phase(9).String() != "Phase(9)" {
		t.Error("unknown phase string")
	}
}
