// Package core implements the Doppio I/O-aware analytical performance
// model for in-memory cluster computing frameworks (paper Section IV).
//
// For every stage i the model computes
//
//	t_stage = max(t_scale, t_read_limit, t_write_limit) + t_mem_limit
//	t_scale       = M/(N·P) · t_avg          + δ_scale
//	t_read_limit  = D_read /(N · BW_read)    + δ_read
//	t_write_limit = D_write/(N · BW_write)   + δ_write
//	t_app = Σ t_stage
//
// t_mem_limit is this reproduction's extension for memory-constrained
// clusters: executor-heap spill served by the Local device plus
// occupancy-driven GC stalls (see memory.go and docs/MEMORY.md). It is
// zero — and the model byte-identical to the paper's Eq. 1 — unless
// Platform.Memory is set.
//
// with the two I/O-aware ingredients prior models missed: BW is the
// device's *effective* bandwidth at the stage's observed request size
// (a per-device lookup table, internal/disk.Curve), and t_avg is
// decomposed into CPU time plus per-operation I/O time at
// min(T, BW(reqSize)) so the model tracks how a task slows down when the
// device, not the per-core throughput T, becomes the limit.
//
// Model parameters are either constructed directly from a workload
// description or — faithfully to the paper's Section VI-1 — extracted
// from four profiling sample runs via Calibrate.
package core

import (
	"fmt"
	"time"

	"repro/internal/disk"
	"repro/internal/spark"
	"repro/internal/units"
)

// Curves bundles the four effective-bandwidth lookup tables the model
// consumes: one per (device, direction) path. They come from the
// one-time fio profiling of each device (disk.ProfileRead/ProfileWrite).
type Curves struct {
	HDFSRead   *disk.Curve
	HDFSWrite  *disk.Curve
	LocalRead  *disk.Curve
	LocalWrite *disk.Curve
}

// CurvesFor profiles both devices of a cluster configuration. This is
// the "one-time disk profiling per data center" of Section VI-1.
func CurvesFor(hdfs, local disk.Device) Curves {
	return Curves{
		HDFSRead:   disk.ProfileRead(hdfs, nil),
		HDFSWrite:  disk.ProfileWrite(hdfs, nil),
		LocalRead:  disk.ProfileRead(local, nil),
		LocalWrite: disk.ProfileWrite(local, nil),
	}
}

// forOp returns the curve serving the given op kind.
func (c Curves) forOp(kind spark.OpKind) *disk.Curve {
	switch kind {
	case spark.OpHDFSRead:
		return c.HDFSRead
	case spark.OpHDFSWrite:
		return c.HDFSWrite
	case spark.OpShuffleRead, spark.OpPersistRead, spark.OpSpillRead:
		return c.LocalRead
	case spark.OpShuffleWrite, spark.OpPersistWrite, spark.OpSpillWrite:
		return c.LocalWrite
	default:
		return nil
	}
}

// Platform is the hardware/configuration point a prediction is made for.
type Platform struct {
	// N is the number of slave nodes.
	N int
	// P is the number of executor cores per node.
	P int
	// Curves are the effective-bandwidth tables of the platform's disks.
	Curves Curves
	// Replication is dfs.replication; HDFS writes are amplified by it.
	Replication int
	// BlockSize is dfs.blocksize, the default request size of HDFS ops.
	BlockSize units.ByteSize
	// Memory enables the t_mem_limit term (executor-heap spill and GC
	// stalls, see memory.go). The zero value disables it, leaving every
	// prediction byte-identical to the memory-free model.
	Memory MemParams
}

// Validate checks the platform: the cluster shape plus the environment
// (Env.Validate).
func (p Platform) Validate() error {
	if err := checkShape(p.N, p.P); err != nil {
		return err
	}
	return EnvOf(p).Validate()
}

// PlatformFor builds a Platform matching a simulator cluster config,
// profiling its devices.
func PlatformFor(cfg spark.ClusterConfig) Platform {
	return Platform{
		N:           cfg.Slaves,
		P:           cfg.ExecutorCores,
		Curves:      CurvesFor(cfg.HDFSDisk, cfg.LocalDisk),
		Replication: cfg.HDFSReplication,
		BlockSize:   cfg.HDFSBlockSize,
		Memory:      MemParamsFor(cfg),
	}
}

// OpModel describes one I/O operation of a task for the model.
type OpModel struct {
	Kind spark.OpKind
	// BytesPerTask is the per-task volume.
	BytesPerTask units.ByteSize
	// ReqSize is the device request size (selects the bandwidth operating
	// point). Zero uses the HDFS block size for HDFS ops and the full
	// per-task volume otherwise.
	ReqSize units.ByteSize
	// T is the per-core throughput when the device is not a limit (the
	// paper's T, including client-side costs such as decompression).
	// Zero means device-limited only.
	T units.Rate
	// CoupledRate is the per-core rate of CPU work interleaved with the
	// op's I/O (bytes of data processed per second of pure computation).
	// The op's uncontended time is bytes·(1/min(T,BW) + 1/CoupledRate);
	// the device is free during the compute slices. Zero means none.
	// In real Spark this decomposition is observable as task time minus
	// blocked time.
	CoupledRate units.Rate
}

// GroupModel is a homogeneous set of tasks within a stage.
type GroupModel struct {
	Name string
	// Count is the group's task count (contributes to the stage's M).
	Count int
	// ComputePerTask is the pure-CPU portion of one task.
	ComputePerTask time.Duration
	// Ops are the task's I/O operations.
	Ops []OpModel
}

// StageModel carries everything needed to evaluate Eq. 1 for one stage.
type StageModel struct {
	Name   string
	Groups []GroupModel
	// DeltaScale, DeltaRead and DeltaWrite are the constant terms of
	// Eq. 1, absorbing serial/linear parts of the stage.
	DeltaScale time.Duration
	DeltaRead  time.Duration
	DeltaWrite time.Duration
}

// M returns the stage's task count.
func (s StageModel) M() int {
	n := 0
	for _, g := range s.Groups {
		n += g.Count
	}
	return n
}

// AppModel is the model of a whole application: Σ over stages.
type AppModel struct {
	Name   string
	Stages []StageModel
}

// Validate checks structural consistency.
func (a AppModel) Validate() error {
	if len(a.Stages) == 0 {
		return fmt.Errorf("core: app model %q has no stages", a.Name)
	}
	for _, s := range a.Stages {
		if len(s.Groups) == 0 {
			return fmt.Errorf("core: stage %q has no groups", s.Name)
		}
		for _, g := range s.Groups {
			if g.Count <= 0 {
				return fmt.Errorf("core: stage %q group %q has non-positive count", s.Name, g.Name)
			}
			for _, op := range g.Ops {
				if op.BytesPerTask < 0 || op.ReqSize < 0 {
					return fmt.Errorf("core: stage %q group %q: negative op sizes", s.Name, g.Name)
				}
				if op.Kind == spark.OpCompute {
					return fmt.Errorf("core: stage %q group %q: compute must use ComputePerTask", s.Name, g.Name)
				}
			}
		}
	}
	return nil
}

// Stage returns the named stage model, or false.
func (a AppModel) Stage(name string) (StageModel, bool) {
	for _, s := range a.Stages {
		if s.Name == name {
			return s, true
		}
	}
	return StageModel{}, false
}
