package core

import (
	"fmt"
	"time"

	"repro/internal/disk"
	"repro/internal/spark"
	"repro/internal/units"
)

// Calibration is the output of the paper's four-sample-run procedure
// (Section VI-1): a fitted AppModel plus the raw runs and any sanity
// warnings. The procedure is black-box: it only reads measured stage
// results (task/op timings, iostat-style request sizes), never the
// workload definition.
type Calibration struct {
	Model AppModel
	// Run1 (P=1, SSD/SSD), Run2 (P=2, SSD/SSD), Run3 (P=16, HDD local),
	// Run4 (P=16, HDD HDFS) are the sample runs.
	Run1, Run2, Run3, Run4 *spark.Result
	// Warnings collects sanity-check failures (e.g. "I/O already the
	// bottleneck at P=1"), the situations where the paper re-samples
	// with a resized disk.
	Warnings []string
}

// Calibrate performs the four sample runs on a small cluster and fits
// the model.
//
// base supplies the cluster shape (Slaves, memory, overheads); its disks
// and core count are overridden per run: SSDs everywhere at P=1 and P=2
// to measure t_avg, per-op per-core throughput T and δ_scale without I/O
// bottlenecks; then P=16 with an HDD as Spark Local (run 3) and as HDFS
// (run 4) to expose the I/O-limit terms and fit δ_read/δ_write.
//
// build constructs the application for a given cluster configuration
// (the caching plan may depend on cluster memory).
func Calibrate(base spark.ClusterConfig, ssd, hdd disk.Device, build func(spark.ClusterConfig) spark.App) (*Calibration, error) {
	cal := &Calibration{}

	runCfg := func(hdfs, local disk.Device, p int) (*spark.Result, spark.ClusterConfig, error) {
		cfg := base.WithDisks(hdfs, local).WithCores(p)
		res, err := spark.Run(cfg, build(cfg))
		return res, cfg, err
	}

	var err error
	var cfg1, cfg3, cfg4 spark.ClusterConfig
	if cal.Run1, cfg1, err = runCfg(ssd, ssd, 1); err != nil {
		return nil, fmt.Errorf("core: sample run 1: %w", err)
	}
	if cal.Run2, _, err = runCfg(ssd, ssd, 2); err != nil {
		return nil, fmt.Errorf("core: sample run 2: %w", err)
	}
	if cal.Run3, cfg3, err = runCfg(ssd, hdd, 16); err != nil {
		return nil, fmt.Errorf("core: sample run 3: %w", err)
	}
	if cal.Run4, cfg4, err = runCfg(hdd, ssd, 16); err != nil {
		return nil, fmt.Errorf("core: sample run 4: %w", err)
	}

	if len(cal.Run2.Stages) != len(cal.Run1.Stages) ||
		len(cal.Run3.Stages) != len(cal.Run1.Stages) ||
		len(cal.Run4.Stages) != len(cal.Run1.Stages) {
		return nil, fmt.Errorf("core: sample runs disagree on stage structure")
	}

	pl1 := PlatformFor(cfg1)
	pl3 := PlatformFor(cfg3)
	pl4 := PlatformFor(cfg4)

	model := AppModel{Name: cal.Run1.App}
	for si, s1 := range cal.Run1.Stages {
		sm := fitStageShape(s1)

		// Sanity check (paper: "t_stage > D/(N*BW)"): at P=1 on SSDs I/O
		// must not be the bottleneck, otherwise t_avg absorbs device
		// queueing and the fit degrades. The paper re-samples with a
		// doubled SSD; with fixed physical devices we warn.
		chk := sm.Predict(pl1, ModeDoppio)
		if lim := maxDur(chk.TReadLimit, chk.TWriteLimit); lim > 0 && s1.Duration() < lim {
			cal.Warnings = append(cal.Warnings,
				fmt.Sprintf("stage %s: I/O near saturation already at P=1 (measured %v < limit %v)",
					s1.Name, s1.Duration(), lim))
		}

		// δ_scale from runs 1 and 2: residual of the measured stage time
		// over the modelled parallel work, averaged.
		w1 := parallelWork(sm, pl1)
		w2 := parallelWork(sm, Platform{N: pl1.N, P: 2, Curves: pl1.Curves,
			Replication: pl1.Replication, BlockSize: pl1.BlockSize})
		r1 := s1.Duration() - w1
		r2 := cal.Run2.Stages[si].Duration() - w2
		sm.DeltaScale = (r1 + r2) / 2
		if sm.DeltaScale < 0 {
			sm.DeltaScale = 0
		}

		// Runs 3 and 4: with an HDD in the local (then HDFS) slot, fit the
		// δ of whichever I/O direction binds. The effective bandwidths
		// come from the device lookup tables at the request sizes the run
		// actually exhibited — the paper's iostat step.
		fitDelta(&sm, cal.Run3.Stages[si], pl3)
		fitDelta(&sm, cal.Run4.Stages[si], pl4)

		model.Stages = append(model.Stages, sm)
	}
	if err := model.Validate(); err != nil {
		return nil, fmt.Errorf("core: calibration produced invalid model: %w", err)
	}
	cal.Model = model
	return cal, nil
}

// fitStageShape reconstructs the stage's group/op structure and the
// uncontended per-op parameters from the P=1 SSD run.
func fitStageShape(s spark.StageResult) StageModel {
	sm := StageModel{Name: s.Name}
	for _, g := range s.Groups {
		gm := GroupModel{Name: g.Name, Count: g.Count}
		var ioTime time.Duration
		for _, opst := range g.OpTimes {
			if opst.Count == 0 || opst.Kind == spark.OpCompute {
				continue
			}
			avgT := opst.AvgTime()
			perTask := opst.Bytes / units.ByteSize(opst.Count)
			ioTime += avgT
			om := OpModel{Kind: opst.Kind, BytesPerTask: perTask}
			// iostat: request size observed for this op kind at stage
			// level.
			om.ReqSize = s.IO[opst.Kind].AvgReqSize()
			// T: measured per-core media throughput. Spark's metrics
			// decompose op time into blocked (I/O) and processing
			// (coupled compute) time; the media rate comes from the
			// blocked part. HDFS writes move replication-amplified
			// volume through the device, which the stage-level IOStat
			// reflects; recover the device-level rate.
			vol := perTask
			if opst.Kind == spark.OpHDFSWrite && opst.Bytes > 0 {
				ampl := float64(s.IO[opst.Kind].Bytes) / float64(opst.Bytes)
				vol = units.ByteSize(float64(perTask) * ampl)
			}
			coupled := opst.AvgCoupled()
			if blocked := avgT - coupled; blocked > 0 {
				om.T = units.Over(vol, blocked)
			}
			if coupled > 0 {
				om.CoupledRate = units.Over(vol, coupled)
			}
			gm.Ops = append(gm.Ops, om)
		}
		gm.ComputePerTask = g.AvgTaskTime() - ioTime
		if gm.ComputePerTask < 0 {
			gm.ComputePerTask = 0
		}
		sm.Groups = append(sm.Groups, gm)
	}
	return sm
}

// parallelWork is the modelled Σ_g Count_g/(N·P)·t_avg_g without δ.
func parallelWork(sm StageModel, pl Platform) time.Duration {
	var sec float64
	for _, g := range sm.Groups {
		sec += float64(g.Count) / float64(pl.N*pl.P) * g.TaskTime(pl, ModeDoppio).Seconds()
	}
	return units.SecDuration(sec)
}

// fitDelta fits δ_read or δ_write from an I/O-bound sample run: when the
// measured stage time exceeds the δ-free I/O limit prediction, the
// binding direction's δ is the residual. Fits from different probe runs
// keep the larger value (a constant must explain both).
func fitDelta(sm *StageModel, meas spark.StageResult, pl Platform) {
	bare := *sm
	bare.DeltaRead, bare.DeltaWrite = 0, 0
	pred := bare.Predict(pl, ModeDoppio)
	measT := meas.Duration()
	// Only fit when the stage is genuinely I/O-bound on this platform;
	// otherwise the residual belongs to δ_scale, already fitted.
	if pred.Bottleneck == "scale" || measT <= pred.TScale {
		return
	}
	rawLimit := maxDur(pred.TDeviceLimit, maxDur(pred.TReadLimit, pred.TWriteLimit))
	d := measT - rawLimit
	if d <= 0 || d >= measT/2 {
		return
	}
	if pred.TReadLimit >= pred.TWriteLimit {
		if d > sm.DeltaRead {
			sm.DeltaRead = d
		}
	} else {
		if d > sm.DeltaWrite {
			sm.DeltaWrite = d
		}
	}
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
