package core

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// Phase is one of the three execution regimes of the paper's Fig. 6.
type Phase int

const (
	// PhaseNoContention is P <= b: cores never contend for I/O bandwidth.
	PhaseNoContention Phase = iota
	// PhaseHidden is b < P <= λ·b: I/O contention exists but hides under
	// the CPU computation of other task batches.
	PhaseHidden
	// PhaseIOBound is P > λ·b = B: the device is the bottleneck and more
	// cores do not help.
	PhaseIOBound
)

// String names the phase as in the paper's figure captions.
func (p Phase) String() string {
	switch p {
	case PhaseNoContention:
		return "P<=b (no I/O contention)"
	case PhaseHidden:
		return "b<P<=λb (I/O hidden by CPU)"
	case PhaseIOBound:
		return "P>λb (I/O bound)"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// BreakPoints carries the derived quantities of Section IV-A/B: the core
// count b at which the device saturates and the turning point B = λ·b
// past which the stage stops scaling.
type BreakPoints struct {
	// T is the per-core throughput with no contention.
	T units.Rate
	// BW is the device's effective bandwidth at the operating request
	// size.
	BW units.Rate
	// Lambda is the ratio of the whole task time to its I/O time.
	Lambda float64
	// B0 is the bandwidth break point b = BW/T (cores; may be
	// fractional). Floored at 1: a single core cannot contend with
	// itself, even when BW < T (the paper's "b = 1" HDD case).
	B0 float64
	// B is the turning point λ·b after which I/O is the bottleneck.
	B float64
}

// Classify returns the execution phase at a given per-node core count.
func (bp BreakPoints) Classify(p int) Phase {
	pf := float64(p)
	switch {
	case pf <= bp.B0:
		return PhaseNoContention
	case pf <= bp.B:
		return PhaseHidden
	default:
		return PhaseIOBound
	}
}

// Analyze computes the break points for one op of a group on a platform.
// opIdx indexes the group's Ops slice.
func (g GroupModel) Analyze(opIdx int, pl Platform) (BreakPoints, error) {
	if opIdx < 0 || opIdx >= len(g.Ops) {
		return BreakPoints{}, fmt.Errorf("core: op index %d out of range", opIdx)
	}
	op := g.Ops[opIdx]
	bw := effBW(op, pl, ModeDoppio)
	if bw <= 0 {
		return BreakPoints{}, fmt.Errorf("core: op %v has no bandwidth on this platform", op.Kind)
	}
	t := op.T
	if t <= 0 {
		t = bw // uncapped stream: saturates with one core
	}
	// λ relates the whole task to the op's *blocked* I/O time (the
	// paper's "I/O access" time), excluding any compute interleaved with
	// the I/O.
	blocked := perTaskBlockedTime(op, pl)
	taskTime := g.TaskTime(pl, ModeDoppio)
	lambda := math.Inf(1)
	if blocked > 0 {
		lambda = taskTime.Seconds() / blocked.Seconds()
	}
	b0 := float64(bw) / float64(t)
	if b0 < 1 {
		b0 = 1
	}
	return BreakPoints{T: t, BW: bw, Lambda: lambda, B0: b0, B: lambda * b0}, nil
}
