package core

import (
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/spark"
	"repro/internal/units"
)

// memTestModel is a single-stage model whose tasks read one HDFS block
// each; the working set is ws = Expansion × BytesPerTask.
func memTestModel(tasks int, perTask units.ByteSize) AppModel {
	return AppModel{
		Name: "memtest",
		Stages: []StageModel{{
			Name: "scan",
			Groups: []GroupModel{{
				Name:           "map",
				Count:          tasks,
				ComputePerTask: 2 * time.Second,
				Ops:            []OpModel{{Kind: spark.OpHDFSRead, BytesPerTask: perTask}},
			}},
		}},
	}
}

func memTestPlatform(t *testing.T, local disk.Device, heapGB float64) Platform {
	t.Helper()
	cfg := spark.DefaultTestbed(4, 4, disk.NewHDD(), local)
	cfg.Memory = spark.MemoryConfig{HeapGB: heapGB}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	pl := PlatformFor(cfg)
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	return pl
}

// TestMemLimitDisabledIsZero pins that an unset Memory leaves the term
// and the prediction untouched.
func TestMemLimitDisabledIsZero(t *testing.T) {
	app := memTestModel(64, 128*units.MB)
	plOff := memTestPlatform(t, disk.NewSSD(), 0)
	pred, err := app.Predict(plOff, ModeDoppio)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range pred.Stages {
		if s.TMemLimit != 0 {
			t.Fatalf("memory off: TMemLimit = %v, want 0", s.TMemLimit)
		}
		if s.Bottleneck == "memory" {
			t.Fatalf("memory off: bottleneck %q", s.Bottleneck)
		}
	}
}

// TestMemLimitHugeHeapIsZero pins that a heap far above the wave's
// working set produces no spill and no GC cost.
func TestMemLimitHugeHeapIsZero(t *testing.T) {
	app := memTestModel(64, 128*units.MB)
	pl := memTestPlatform(t, disk.NewSSD(), 1<<20)
	pred, err := app.Predict(pl, ModeDoppio)
	if err != nil {
		t.Fatal(err)
	}
	if got := pred.Stages[0].TMemLimit; got != 0 {
		t.Fatalf("huge heap: TMemLimit = %v, want 0", got)
	}
	off, err := app.Predict(memTestPlatform(t, disk.NewSSD(), 0), ModeDoppio)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Total != off.Total {
		t.Fatalf("huge heap total %v != memory-off total %v", pred.Total, off.Total)
	}
}

// TestMemLimitAdditiveAndDeviceAware checks the term's two load-bearing
// properties: a binding heap adds time, and the added time is larger on
// an HDD-backed Local device than on an SSD-backed one (the
// request-size-aware spill cost).
func TestMemLimitAdditiveAndDeviceAware(t *testing.T) {
	// 4 cores × 2.5 × 128 MB = 1.25 GB wave against a 0.5 GB heap: every
	// task spills.
	app := memTestModel(64, 128*units.MB)
	run := func(local disk.Device) (StagePrediction, time.Duration) {
		t.Helper()
		pl := memTestPlatform(t, local, 0.5)
		pred, err := app.Predict(pl, ModeDoppio)
		if err != nil {
			t.Fatal(err)
		}
		return pred.Stages[0], pred.Total
	}
	ssd, ssdTotal := run(disk.NewSSD())
	hdd, hddTotal := run(disk.NewHDD())
	if ssd.TMemLimit <= 0 || hdd.TMemLimit <= 0 {
		t.Fatalf("binding heap: TMemLimit ssd=%v hdd=%v, want both > 0", ssd.TMemLimit, hdd.TMemLimit)
	}
	if hdd.TMemLimit <= ssd.TMemLimit {
		t.Fatalf("spill on HDD (%v) should exceed SSD (%v)", hdd.TMemLimit, ssd.TMemLimit)
	}
	// Additivity: T carries the full term on top of the max of the
	// other candidates.
	for _, s := range []StagePrediction{ssd, hdd} {
		base := s.TScale
		for _, c := range []time.Duration{s.TReadLimit, s.TWriteLimit, s.TDeviceLimit} {
			if c > base {
				base = c
			}
		}
		if s.T != base+s.TMemLimit {
			t.Fatalf("T = %v, want max(candidates) %v + TMemLimit %v", s.T, base, s.TMemLimit)
		}
	}
	if hddTotal <= ssdTotal {
		t.Fatalf("hdd total %v should exceed ssd total %v", hddTotal, ssdTotal)
	}
}

// TestMemLimitMonotoneInHeap pins the property the optimizer's pruning
// relies on: predicted runtime is non-increasing as the heap grows,
// everything else fixed.
func TestMemLimitMonotoneInHeap(t *testing.T) {
	app := memTestModel(64, 128*units.MB)
	prev := time.Duration(1<<63 - 1)
	for _, heap := range []float64{0.25, 0.5, 1, 2, 4, 8, 1024} {
		pl := memTestPlatform(t, disk.NewHDD(), heap)
		pred, err := app.Predict(pl, ModeDoppio)
		if err != nil {
			t.Fatal(err)
		}
		if pred.Total > prev {
			t.Fatalf("heap %v GB: total %v > previous %v (runtime must be non-increasing in heap)", heap, pred.Total, prev)
		}
		prev = pred.Total
	}
}

// TestMemLimitBottleneckLabel drives the term far above the other
// candidates and checks the census plumbing end to end.
func TestMemLimitBottleneckLabel(t *testing.T) {
	// Tiny heap, huge per-task volume on a slow device: spill dominates.
	app := memTestModel(256, 512*units.MB)
	pl := memTestPlatform(t, disk.NewHDD(), 0.1)
	pred, err := app.Predict(pl, ModeDoppio)
	if err != nil {
		t.Fatal(err)
	}
	if got := pred.Stages[0].Bottleneck; got != "memory" {
		t.Fatalf("bottleneck = %q, want memory (stage %+v)", got, pred.Stages[0])
	}
	cm, err := Compile(app, EnvOf(pl), ModeDoppio)
	if err != nil {
		t.Fatal(err)
	}
	top, err := cm.TopBottleneck(pl.N, pl.P)
	if err != nil {
		t.Fatal(err)
	}
	if top != "memory" {
		t.Fatalf("TopBottleneck = %q, want memory", top)
	}
}

// TestMemParamsForResolvesDefaults pins that the model and the
// simulator resolve the same defaulted knob values.
func TestMemParamsForResolvesDefaults(t *testing.T) {
	cfg := spark.DefaultTestbed(4, 4, disk.NewHDD(), disk.NewSSD())
	cfg.Memory = spark.MemoryConfig{HeapGB: 2}
	mp := MemParamsFor(cfg)
	if mp.HeapBytes != cfg.Memory.HeapBytes() {
		t.Fatalf("HeapBytes %v != %v", mp.HeapBytes, cfg.Memory.HeapBytes())
	}
	if mp.Expansion != spark.DefaultMemExpansion {
		t.Fatalf("Expansion %v != default %v", mp.Expansion, spark.DefaultMemExpansion)
	}
	if mp.SpillReqSize != spark.DefaultSpillReqSize {
		t.Fatalf("SpillReqSize %v != default %v", mp.SpillReqSize, units.ByteSize(spark.DefaultSpillReqSize))
	}
	if mp.GCMaxPause != 500*time.Millisecond {
		t.Fatalf("GCMaxPause %v != 500ms", mp.GCMaxPause)
	}
	if mp.GCThreshold != spark.DefaultGCThreshold {
		t.Fatalf("GCThreshold %v != default %v", mp.GCThreshold, spark.DefaultGCThreshold)
	}
	if got := MemParamsFor(spark.DefaultTestbed(4, 4, disk.NewHDD(), disk.NewSSD())); got.Enabled() {
		t.Fatalf("memory-off config resolved to enabled params %+v", got)
	}
}

// TestMemParamsValidate covers the parameter bounds.
func TestMemParamsValidate(t *testing.T) {
	bad := []MemParams{
		{HeapBytes: -1},
		{HeapBytes: units.GB, Expansion: -1},
		{HeapBytes: units.GB, SpillReqSize: -1},
		{HeapBytes: units.GB, GCMaxPause: -time.Second},
		{HeapBytes: units.GB, GCThreshold: 1.5},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Fatalf("case %d: %+v validated", i, m)
		}
	}
	if err := (MemParams{}).Validate(); err != nil {
		t.Fatalf("zero value must validate: %v", err)
	}
}

// TestMemLimitBatchMatchesPredict holds PredictBatch and the per-shape
// Predict identical with the memory term active, across an N×P grid.
func TestMemLimitBatchMatchesPredict(t *testing.T) {
	app := memTestModel(128, 128*units.MB)
	pl := memTestPlatform(t, disk.NewSSD(), 0.75)
	cm, err := Compile(app, EnvOf(pl), ModeDoppio)
	if err != nil {
		t.Fatal(err)
	}
	var shapes []Shape
	for n := 1; n <= 8; n++ {
		for p := 1; p <= 8; p++ {
			shapes = append(shapes, Shape{N: n, P: p})
		}
	}
	out := make([]time.Duration, len(shapes))
	batch, err := cm.PredictBatch(shapes, out)
	if err != nil {
		t.Fatal(err)
	}
	for i, sh := range shapes {
		want, err := cm.Total(sh.N, sh.P)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i] != want {
			t.Fatalf("shape %+v: batch %v != Total %v", sh, batch[i], want)
		}
	}
}
