package core

// The t_mem_limit term: a closed-form memory model matching the
// simulator's executor-heap layer (internal/spark/memory.go). In steady
// state the simulator runs P concurrent tasks per node, so a task of
// working set ws reserves against a resident set of (P-1)·ws and spills
// clamp(P·ws - heap, 0, ws) bytes to the Local device (written once,
// re-read once), while completions at occupancy P·ws/heap pay a GC
// pause of GCMaxPause·q² with q the clamped occupancy excess. Summed
// over a stage's groups that yields two candidate limits, mirroring
// Eq. 1's scale/device split:
//
//	t_mem_scale  = Σ_g Count_g/(N·P) · (s_g·c_spill + gc_g)
//	t_mem_device = Σ_g Count_g · s_g·c_spill / N
//	t_mem_limit  = max(t_mem_scale, t_mem_device)
//
// with s_g the per-task spill bytes, c_spill = 1/BW_localWrite +
// 1/BW_localRead at the spill request size (the request-size-aware
// lookup is what makes HDD and SSD spill costs diverge), and gc_g the
// expected per-task GC pause. The term is additive on the stage time:
// spill I/O and GC stalls sit on the critical path no matter which of
// Eq. 1's candidates wins. See docs/MEMORY.md for the derivation.

import (
	"fmt"
	"time"

	"repro/internal/spark"
	"repro/internal/units"
)

// MemParams is the memory-model residue of a cluster configuration:
// everything the t_mem_limit term needs besides the curves and the
// shape. The zero value disables the term, keeping every prediction
// byte-identical to the memory-free model.
type MemParams struct {
	// HeapBytes is the usable executor heap per node. Zero disables the
	// memory term entirely.
	HeapBytes units.ByteSize
	// Expansion scales a task's on-disk I/O bytes into its in-heap
	// working set. Zero means spark.DefaultMemExpansion.
	Expansion float64
	// SpillReqSize selects the Local-device bandwidth operating point
	// for spill traffic. Zero means spark.DefaultSpillReqSize.
	SpillReqSize units.ByteSize
	// GCMaxPause is the per-task stop-the-world pause at full heap
	// occupancy. Zero means spark.DefaultGCMaxPause.
	GCMaxPause time.Duration
	// GCThreshold is the heap occupancy below which collections are
	// free. Zero means spark.DefaultGCThreshold.
	GCThreshold float64
}

// MemParamsFor extracts the memory parameters of a simulator cluster
// configuration, resolving the same defaults the simulator applies so
// model and simulation agree on every knob.
func MemParamsFor(cfg spark.ClusterConfig) MemParams {
	m := cfg.Memory
	if !m.Enabled() {
		return MemParams{}
	}
	return MemParams{
		HeapBytes:    m.HeapBytes(),
		Expansion:    m.ExpansionFactor(),
		SpillReqSize: m.SpillRequestSize(),
		GCMaxPause:   m.GCPauseMax(),
		GCThreshold:  m.GCOccupancyThreshold(),
	}
}

// Enabled reports whether the memory term is active.
func (m MemParams) Enabled() bool { return m.HeapBytes > 0 }

// ExpansionFactor returns the working-set expansion with the default
// applied.
func (m MemParams) ExpansionFactor() float64 {
	if m.Expansion > 0 {
		return m.Expansion
	}
	return spark.DefaultMemExpansion
}

// SpillRequestSize returns the spill request size with the default
// applied.
func (m MemParams) SpillRequestSize() units.ByteSize {
	if m.SpillReqSize > 0 {
		return m.SpillReqSize
	}
	return spark.DefaultSpillReqSize
}

// GCPauseMax returns the full-occupancy pause with the default applied.
func (m MemParams) GCPauseMax() time.Duration {
	if m.GCMaxPause > 0 {
		return m.GCMaxPause
	}
	return units.SecDuration(spark.DefaultGCMaxPause.Seconds())
}

// GCOccupancyThreshold returns the free-GC occupancy bound with the
// default applied.
func (m MemParams) GCOccupancyThreshold() float64 {
	if m.GCThreshold > 0 {
		return m.GCThreshold
	}
	return spark.DefaultGCThreshold
}

// Validate checks the memory parameters.
func (m MemParams) Validate() error {
	switch {
	case m.HeapBytes < 0:
		return fmt.Errorf("core: memory HeapBytes must be >= 0, got %v", m.HeapBytes)
	case m.Expansion < 0:
		return fmt.Errorf("core: memory Expansion must be >= 0, got %v", m.Expansion)
	case m.SpillReqSize < 0:
		return fmt.Errorf("core: memory SpillReqSize must be >= 0, got %v", m.SpillReqSize)
	case m.GCMaxPause < 0:
		return fmt.Errorf("core: memory GCMaxPause must be >= 0, got %v", m.GCMaxPause)
	case m.GCThreshold < 0 || m.GCThreshold > 1:
		return fmt.Errorf("core: memory GCThreshold %v outside [0,1]", m.GCThreshold)
	}
	return nil
}

// memEnv is the curve-resolved residue of MemParams: the scalars the
// per-shape evaluation consumes. Both the classic and the compiled
// prediction paths evaluate the term through this struct so their
// floating-point expressions are identical.
type memEnv struct {
	heapF        float64 // usable heap per node, bytes
	spillPerByte float64 // Local-device seconds per spilled byte (write + re-read)
	gcMaxSec     float64
	thr          float64
	expansion    float64
}

// resolve folds the memory parameters against the device curves. The
// second return is false when the term is disabled or the Local curves
// cannot serve the spill request size.
func (m MemParams) resolve(c Curves) (memEnv, bool) {
	if !m.Enabled() || c.LocalRead == nil || c.LocalWrite == nil {
		return memEnv{}, false
	}
	rs := m.SpillRequestSize()
	bwW := float64(c.LocalWrite.Lookup(rs))
	bwR := float64(c.LocalRead.Lookup(rs))
	if bwW <= 0 || bwR <= 0 {
		return memEnv{}, false
	}
	return memEnv{
		heapF:        float64(m.HeapBytes),
		spillPerByte: 1/bwW + 1/bwR,
		gcMaxSec:     m.GCPauseMax().Seconds(),
		thr:          m.GCOccupancyThreshold(),
		expansion:    m.ExpansionFactor(),
	}, true
}

// groupWS returns one task group's in-heap working set in bytes: the
// expansion factor times the per-task I/O volume, the same rule as
// spark.MemoryConfig.TaskWorkingSet.
func (me memEnv) groupWS(g GroupModel) float64 {
	var io units.ByteSize
	for _, op := range g.Ops {
		if op.Kind.IsIO() {
			io += op.BytesPerTask
		}
	}
	return me.expansion * float64(io)
}

// groupTerms returns one group's contribution to the two t_mem_limit
// candidates: the per-wave critical-path seconds (spill latency plus
// expected GC pause, over Count/(N·P) waves) and the per-node device
// seconds of the group's total spill volume. Shared by the classic and
// compiled paths; the expression order here defines the term.
func (me memEnv) groupTerms(count, ws, nf, pf float64) (scaleSec, devSec float64) {
	if ws <= 0 {
		return 0, 0
	}
	// Steady-state spill per task: the wave holds P working sets against
	// the heap and each task owns at most its own set of the overflow.
	wave := pf * ws
	spill := wave - me.heapF
	if spill < 0 {
		spill = 0
	} else if spill > ws {
		spill = ws
	}
	var gcSec float64
	if me.thr < 1 && me.heapF > 0 {
		q := (wave/me.heapF - me.thr) / (1 - me.thr)
		if q > 1 {
			q = 1
		}
		if q > 0 {
			gcSec = me.gcMaxSec * q * q
		}
	}
	spillSec := spill * me.spillPerByte
	return count / (nf * pf) * (spillSec + gcSec), count * spillSec / nf
}
