package core

import (
	"testing"
	"time"

	"repro/internal/units"
)

// BenchmarkPredictBatch is the steady-state cost of the compiled model:
// a 1024-shape slab through PredictBatch. Gated at 0 allocs/op in
// docs/BENCH_model.json — the whole point of compiling is that sweeps
// do arithmetic, not allocation.
func BenchmarkPredictBatch(b *testing.B) {
	cm, err := Compile(testApp(), testEnv(), ModeDoppio)
	if err != nil {
		b.Fatal(err)
	}
	shapes := make([]Shape, 1024)
	for i := range shapes {
		shapes[i] = Shape{N: 1 + i%32, P: 1 + i%36}
	}
	out := make([]time.Duration, len(shapes))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cm.PredictBatch(shapes, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompile prices the one-time compilation an environment pays
// before its predictions become table arithmetic.
func BenchmarkCompile(b *testing.B) {
	app := testApp()
	env := testEnv()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(app, env, ModeDoppio); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictClassic is the pre-compilation path for comparison:
// one full AppModel.Predict per point, re-deriving per-stage state each
// time (what the optimizer paid per grid point before the fast path).
func BenchmarkPredictClassic(b *testing.B) {
	app := testApp()
	env := testEnv()
	pl := Platform{N: 10, P: 36, Curves: env.Curves, Replication: env.Replication, BlockSize: env.BlockSize}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := app.Predict(pl, ModeDoppio); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictBatchMem is BenchmarkPredictBatch with the memory
// term live: the same 1024-shape slab against an environment whose
// 1 GB heap makes every stage spill. Gated at 0 allocs/op alongside the
// memory-free row — t_mem_limit must stay pure arithmetic.
func BenchmarkPredictBatchMem(b *testing.B) {
	env := testEnv()
	env.Memory = MemParams{HeapBytes: units.GB}
	cm, err := Compile(testApp(), env, ModeDoppio)
	if err != nil {
		b.Fatal(err)
	}
	shapes := make([]Shape, 1024)
	for i := range shapes {
		shapes[i] = Shape{N: 1 + i%32, P: 1 + i%36}
	}
	out := make([]time.Duration, len(shapes))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cm.PredictBatch(shapes, out); err != nil {
			b.Fatal(err)
		}
	}
}
