package core

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/spark"
	"repro/internal/units"
)

// The JSON form of a calibrated model. Calibration costs four cluster
// runs; persisting the fitted model lets later sessions (or other
// machines) predict without repeating them — the workflow the released
// Doppio toolset supports with its lookup tables.

type opJSON struct {
	Kind         string         `json:"kind"`
	BytesPerTask units.ByteSize `json:"bytesPerTask"`
	ReqSize      units.ByteSize `json:"reqSize,omitempty"`
	TBytesPerSec float64        `json:"tBytesPerSec,omitempty"`
	CoupledBps   float64        `json:"coupledBytesPerSec,omitempty"`
}

type groupJSON struct {
	Name       string   `json:"name"`
	Count      int      `json:"count"`
	ComputeSec float64  `json:"computeSec"`
	Ops        []opJSON `json:"ops,omitempty"`
}

type stageJSON struct {
	Name          string      `json:"name"`
	Groups        []groupJSON `json:"groups"`
	DeltaScaleSec float64     `json:"deltaScaleSec,omitempty"`
	DeltaReadSec  float64     `json:"deltaReadSec,omitempty"`
	DeltaWriteSec float64     `json:"deltaWriteSec,omitempty"`
}

type appJSON struct {
	Name   string      `json:"name"`
	Stages []stageJSON `json:"stages"`
}

var opKindNames = map[spark.OpKind]string{
	spark.OpHDFSRead:     "hdfsRead",
	spark.OpHDFSWrite:    "hdfsWrite",
	spark.OpShuffleRead:  "shuffleRead",
	spark.OpShuffleWrite: "shuffleWrite",
	spark.OpPersistRead:  "persistRead",
	spark.OpPersistWrite: "persistWrite",
}

var opKindValues = func() map[string]spark.OpKind {
	m := map[string]spark.OpKind{}
	for k, v := range opKindNames {
		m[v] = k
	}
	return m
}()

// WriteJSON serialises the model.
func (a AppModel) WriteJSON(w io.Writer) error {
	out := appJSON{Name: a.Name}
	for _, s := range a.Stages {
		sj := stageJSON{
			Name:          s.Name,
			DeltaScaleSec: s.DeltaScale.Seconds(),
			DeltaReadSec:  s.DeltaRead.Seconds(),
			DeltaWriteSec: s.DeltaWrite.Seconds(),
		}
		for _, g := range s.Groups {
			gj := groupJSON{Name: g.Name, Count: g.Count, ComputeSec: g.ComputePerTask.Seconds()}
			for _, op := range g.Ops {
				name, ok := opKindNames[op.Kind]
				if !ok {
					return fmt.Errorf("core: cannot serialise op kind %v", op.Kind)
				}
				gj.Ops = append(gj.Ops, opJSON{
					Kind:         name,
					BytesPerTask: op.BytesPerTask,
					ReqSize:      op.ReqSize,
					TBytesPerSec: float64(op.T),
					CoupledBps:   float64(op.CoupledRate),
				})
			}
			sj.Groups = append(sj.Groups, gj)
		}
		out.Stages = append(out.Stages, sj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON deserialises a model and validates it.
func ReadJSON(r io.Reader) (AppModel, error) {
	var in appJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return AppModel{}, fmt.Errorf("core: decoding model: %w", err)
	}
	a := AppModel{Name: in.Name}
	for _, sj := range in.Stages {
		s := StageModel{
			Name:       sj.Name,
			DeltaScale: units.SecDuration(sj.DeltaScaleSec),
			DeltaRead:  units.SecDuration(sj.DeltaReadSec),
			DeltaWrite: units.SecDuration(sj.DeltaWriteSec),
		}
		for _, gj := range sj.Groups {
			g := GroupModel{
				Name:           gj.Name,
				Count:          gj.Count,
				ComputePerTask: units.SecDuration(gj.ComputeSec),
			}
			for _, oj := range gj.Ops {
				kind, ok := opKindValues[oj.Kind]
				if !ok {
					return AppModel{}, fmt.Errorf("core: unknown op kind %q", oj.Kind)
				}
				g.Ops = append(g.Ops, OpModel{
					Kind:         kind,
					BytesPerTask: oj.BytesPerTask,
					ReqSize:      oj.ReqSize,
					T:            units.Rate(oj.TBytesPerSec),
					CoupledRate:  units.Rate(oj.CoupledBps),
				})
			}
			s.Groups = append(s.Groups, g)
		}
		a.Stages = append(a.Stages, s)
	}
	if err := a.Validate(); err != nil {
		return AppModel{}, fmt.Errorf("core: loaded model invalid: %w", err)
	}
	return a, nil
}

// durationsEqual compares with sub-microsecond tolerance (JSON carries
// float seconds).
func durationsEqual(a, b time.Duration) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < time.Microsecond
}
