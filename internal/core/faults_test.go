package core

import (
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/spark"
	"repro/internal/units"
)

// mrModel is the analytical twin of a shuffle-heavy two-stage
// map/reduce workload: maps write substantial shuffle data at small
// (64 KB) request sizes, reducers pull it back at the M-fanin request
// size. On HDD both stages are device-bound, so recovery I/O extends
// the run; on SSD the device has slack and recovery hides in it.
func mrModel(mapTasks, reduceTasks int) AppModel {
	const perMap = 32 * units.MB
	shuffled := units.ByteSize(mapTasks) * perMap
	perRed := shuffled / units.ByteSize(reduceTasks)
	return AppModel{Name: "mr", Stages: []StageModel{
		{
			Name: "map",
			Groups: []GroupModel{{Name: "m", Count: mapTasks, ComputePerTask: 200 * time.Millisecond, Ops: []OpModel{
				{Kind: spark.OpHDFSRead, BytesPerTask: 32 * units.MB, ReqSize: 32 * units.MB},
				{Kind: spark.OpShuffleWrite, BytesPerTask: perMap, ReqSize: 64 * units.KB},
			}}},
		},
		{
			Name: "reduce",
			Groups: []GroupModel{{Name: "r", Count: reduceTasks, ComputePerTask: 200 * time.Millisecond, Ops: []OpModel{
				{Kind: spark.OpShuffleRead, BytesPerTask: perRed, ReqSize: spark.ShuffleReadReqSize(perRed, mapTasks)},
			}}},
		},
	}}
}

func platformOn(dev disk.Device) Platform {
	return Platform{
		N: 4, P: 4,
		Curves:      CurvesFor(dev, dev),
		Replication: 2,
		BlockSize:   128 * units.MB,
	}
}

func TestPredictFaultyZeroIsIdentity(t *testing.T) {
	m := mrModel(32, 32)
	pl := platformOn(disk.NewSSD())
	base, err := m.Predict(pl, ModeDoppio)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := m.PredictFaulty(pl, ModeDoppio, FaultParams{})
	if err != nil {
		t.Fatal(err)
	}
	if fp.Total != base.Total {
		t.Errorf("zero FaultParams changed the prediction: %v vs %v", fp.Total, base.Total)
	}
	if fp.Inflation() != 1 {
		t.Errorf("inflation = %v, want 1", fp.Inflation())
	}
	if fp.AbortProb != 0 {
		t.Errorf("abort probability %v without faults", fp.AbortProb)
	}
}

func TestPredictFaultyMonotonic(t *testing.T) {
	m := mrModel(32, 32)
	pl := platformOn(disk.NewSSD())
	prev := time.Duration(0)
	for _, p := range []float64{0, 0.05, 0.1, 0.2, 0.4} {
		fp, err := m.PredictFaulty(pl, ModeDoppio, FaultParams{TaskFailureProb: p})
		if err != nil {
			t.Fatal(err)
		}
		if fp.Total <= prev {
			t.Errorf("p=%v: total %v did not grow past %v", p, fp.Total, prev)
		}
		prev = fp.Total
	}
}

// TestPredictFaultyHDDDivergence is the paper's point applied to
// recovery: the same fetch-failure rate costs more on HDD because the
// recompute's shuffle I/O lands on the small-request bandwidth cliff.
func TestPredictFaultyHDDDivergence(t *testing.T) {
	m := mrModel(128, 128)
	f := FaultParams{ShuffleFetchFailureProb: 0.2, RetryBackoff: 100 * time.Millisecond}
	ssd, err := m.PredictFaulty(platformOn(disk.NewSSD()), ModeDoppio, f)
	if err != nil {
		t.Fatal(err)
	}
	hdd, err := m.PredictFaulty(platformOn(disk.NewHDD()), ModeDoppio, f)
	if err != nil {
		t.Fatal(err)
	}
	if hdd.Inflation() <= ssd.Inflation() {
		t.Errorf("HDD inflation %.3f not above SSD %.3f", hdd.Inflation(), ssd.Inflation())
	}
}

func TestPredictFaultyAbortProb(t *testing.T) {
	m := mrModel(16, 16)
	pl := platformOn(disk.NewSSD())
	low, err := m.PredictFaulty(pl, ModeDoppio, FaultParams{TaskFailureProb: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	high, err := m.PredictFaulty(pl, ModeDoppio, FaultParams{TaskFailureProb: 0.5, MaxTaskFailures: 2})
	if err != nil {
		t.Fatal(err)
	}
	if low.AbortProb <= 0 || low.AbortProb > 1e-4 {
		t.Errorf("low abort prob %v out of expected range", low.AbortProb)
	}
	if high.AbortProb < 0.9 {
		t.Errorf("0.5^2 per task over 32 tasks should almost surely abort, got %v", high.AbortProb)
	}
}

func TestPredictFaultyValidate(t *testing.T) {
	m := mrModel(8, 8)
	pl := platformOn(disk.NewSSD())
	for i, f := range []FaultParams{
		{TaskFailureProb: -0.1},
		{TaskFailureProb: 1},
		{ShuffleFetchFailureProb: 1.2},
		{MaxTaskFailures: -1},
		{RetryBackoff: -time.Second},
	} {
		if _, err := m.PredictFaulty(pl, ModeDoppio, f); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

// TestPredictFaultyTracksSimulation: the closed form must land in the
// same ballpark as the simulator's measured degraded runs — the
// model-vs-sim comparison the resilience artifact makes per device.
func TestPredictFaultyTracksSimulation(t *testing.T) {
	const mapTasks, reduceTasks = 128, 128
	model := mrModel(mapTasks, reduceTasks)
	for _, tc := range []struct {
		name string
		dev  disk.Device
	}{{"ssd", disk.NewSSD()}, {"hdd", disk.NewHDD()}} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := spark.DefaultTestbed(4, 4, tc.dev, tc.dev)
			cfg.ComputeJitter = 0
			cfg.TaskLaunchOverhead = 0
			cfg.StageSetupOverhead = 0
			cfg.ModelNetwork = false
			app := simMRApp(mapTasks, reduceTasks)
			clean, err := spark.Run(cfg, app)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Faults = spark.FaultConfig{TaskFailureProb: 0.05, ShuffleFetchFailureProb: 0.2,
				RetryBackoff: 0.1, Seed: 5}
			faulty, err := spark.Run(cfg, app)
			if err != nil {
				t.Fatal(err)
			}
			simInfl := faulty.Total.Seconds() / clean.Total.Seconds()

			fp, err := model.PredictFaulty(platformOn(tc.dev), ModeDoppio, FaultsFor(cfg.Faults))
			if err != nil {
				t.Fatal(err)
			}
			modelInfl := fp.Inflation()
			if simInfl <= 1 {
				t.Fatalf("simulated run did not degrade: inflation %.3f", simInfl)
			}
			// First-order estimate: demand the same direction and the
			// right order of magnitude, not point accuracy.
			simExcess, modelExcess := simInfl-1, modelInfl-1
			if modelExcess <= 0 {
				t.Fatalf("model predicts no degradation (inflation %.3f) while sim shows %.3f", modelInfl, simInfl)
			}
			ratio := modelExcess / simExcess
			if ratio < 0.2 || ratio > 5 {
				t.Errorf("model excess %.3f vs sim excess %.3f (ratio %.2f) — off by more than 5x", modelExcess, simExcess, ratio)
			}
		})
	}
}

// simMRApp mirrors mrModel for the simulator.
func simMRApp(mapTasks, reduceTasks int) spark.App {
	const perMap = 32 * units.MB
	shuffled := units.ByteSize(mapTasks) * perMap
	perRed := shuffled / units.ByteSize(reduceTasks)
	return spark.App{Name: "mr", Stages: []spark.Stage{
		{
			Name: "map",
			Groups: []spark.TaskGroup{{Name: "m", Count: mapTasks, Ops: []spark.Op{
				spark.IO(spark.OpHDFSRead, 32*units.MB, 32*units.MB, 0),
				spark.Compute(200 * time.Millisecond),
				spark.IO(spark.OpShuffleWrite, perMap, 64*units.KB, 0),
			}}},
		},
		{
			Name: "reduce",
			Groups: []spark.TaskGroup{{Name: "r", Count: reduceTasks, Ops: []spark.Op{
				spark.IO(spark.OpShuffleRead, perRed, spark.ShuffleReadReqSize(perRed, mapTasks), 0),
				spark.Compute(200 * time.Millisecond),
			}}},
		},
	}}
}
