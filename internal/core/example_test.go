package core_test

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/spark"
	"repro/internal/units"
)

// Example reproduces the paper's Section V-A2 back-of-envelope: the
// GATK4 BaseRecalibrator shuffle-read task on an SSD has T = 60 MB/s,
// BW(30 KB) ≈ 480 MB/s and λ = 20, so the stage scales until
// B = λ·b ≈ 160 cores — and on an HDD the break point collapses to
// b = 1, B ≈ 5.
func Example() {
	readT := units.MBps(60).TimeFor(27 * units.MB)
	group := core.GroupModel{
		Name:           "recal",
		Count:          12667,
		ComputePerTask: time.Duration(19 * float64(readT)), // λ = 20
		Ops: []core.OpModel{{
			Kind:         spark.OpShuffleRead,
			BytesPerTask: 27 * units.MB,
			ReqSize:      30 * units.KB,
			T:            units.MBps(60),
		}},
	}
	for _, dev := range []disk.Device{disk.NewSSD(), disk.NewHDD()} {
		pl := core.Platform{
			N: 3, P: 36,
			Curves:      core.CurvesFor(dev, dev),
			Replication: 2,
			BlockSize:   128 * units.MB,
		}
		bp, err := group.Analyze(0, pl)
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("%s: b=%.0f B=%.0f -> at P=36: %v\n",
			dev.Kind(), bp.B0, bp.B, bp.Classify(36))
	}
	// Output:
	// SSD: b=8 B=166 -> at P=36: b<P<=λb (I/O hidden by CPU)
	// HDD: b=1 B=6 -> at P=36: P>λb (I/O bound)
}
