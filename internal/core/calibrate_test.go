package core

import (
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/spark"
	"repro/internal/units"
	"repro/internal/workloads"
)

func calibrateGATK4(t *testing.T) *Calibration {
	t.Helper()
	hdd, ssd := disk.NewHDD(), disk.NewSSD()
	w, err := workloads.Get("gatk4")
	if err != nil {
		t.Fatal(err)
	}
	base := spark.DefaultTestbed(3, 1, ssd, ssd)
	cal, err := Calibrate(base, ssd, hdd, w.Build)
	if err != nil {
		t.Fatal(err)
	}
	return cal
}

func TestCalibrateReconstructsStructure(t *testing.T) {
	cal := calibrateGATK4(t)
	m := cal.Model
	if len(m.Stages) != 3 {
		t.Fatalf("stages = %d, want 3", len(m.Stages))
	}
	names := []string{"MD", "BR", "SF"}
	for i, n := range names {
		if m.Stages[i].Name != n {
			t.Errorf("stage %d = %s, want %s", i, m.Stages[i].Name, n)
		}
	}
	br, _ := m.Stage("BR")
	if len(br.Groups) != 2 {
		t.Fatalf("BR groups = %d, want 2 (filter + recal)", len(br.Groups))
	}
	// The recal group should have recovered T ≈ 60 MB/s and the ~28 KB
	// request size from the measurements alone.
	recal := br.Groups[1]
	if len(recal.Ops) != 1 || recal.Ops[0].Kind != spark.OpShuffleRead {
		t.Fatalf("recal ops = %+v", recal.Ops)
	}
	op := recal.Ops[0]
	if tm := op.T.PerSecMB(); tm < 50 || tm > 70 {
		t.Errorf("recovered T = %.1f MB/s, want ~60", tm)
	}
	if op.ReqSize < 25*units.KB || op.ReqSize > 32*units.KB {
		t.Errorf("recovered request size = %v, want ~28KB", op.ReqSize)
	}
	if op.BytesPerTask < 26*units.MB || op.BytesPerTask > 28*units.MB {
		t.Errorf("recovered reducer bytes = %v, want ~27MB", op.BytesPerTask)
	}
	// λ = task/IO should come out ≈ 20 on the SSD platform.
	ssd := disk.NewSSD()
	pl := Platform{N: 3, P: 1, Curves: CurvesFor(ssd, ssd), Replication: 2, BlockSize: 128 * units.MB}
	bp, err := recal.Analyze(0, pl)
	if err != nil {
		t.Fatal(err)
	}
	if bp.Lambda < 17 || bp.Lambda > 23 {
		t.Errorf("recovered λ = %.1f, want ~20", bp.Lambda)
	}
}

// TestCalibratedModelAccuracy is the heart of the reproduction: the
// four-sample-run calibrated model predicts GATK4 runtimes on a
// ten-slave cluster across disk configurations and core counts within
// the paper's 10% application-level error bound (Fig. 7 reports <6%
// average per stage; our MarkDuplicate carries the GC effect the paper
// explicitly excludes from its model, so MD is checked looser, as the
// paper itself does in Section V-A1).
func TestCalibratedModelAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("full prediction grid")
	}
	cal := calibrateGATK4(t)
	hdd, ssd := disk.NewHDD(), disk.NewSSD()
	w, _ := workloads.Get("gatk4")

	var sumErr float64
	var cells int
	for _, devs := range []struct {
		name        string
		hdfs, local disk.Device
	}{{"2SSD", ssd, ssd}, {"hddHDFS", hdd, ssd}, {"hddLocal", ssd, hdd}, {"2HDD", hdd, hdd}} {
		for _, p := range []int{6, 12, 24} {
			cfg := spark.DefaultTestbed(10, p, devs.hdfs, devs.local)
			res, err := spark.Run(cfg, w.Build(cfg))
			if err != nil {
				t.Fatal(err)
			}
			pred, err := cal.Model.Predict(PlatformFor(cfg), ModeDoppio)
			if err != nil {
				t.Fatal(err)
			}
			var expTotal, modTotal time.Duration
			for _, st := range []string{"MD", "BR", "SF"} {
				meas := res.MustStage(st).Duration()
				pr, ok := pred.Stage(st)
				if !ok {
					t.Fatalf("no prediction for %s", st)
				}
				e := ErrorRate(pr.T, meas)
				sumErr += e
				cells++
				limit := 0.15
				if st == "MD" {
					limit = 0.40 // GC is outside the model (paper §V-A1)
				}
				if e > limit {
					t.Errorf("%s P=%d %s: exp=%.1fmin model=%.1fmin err=%.0f%% (>%.0f%%)",
						devs.name, p, st, meas.Minutes(), pr.T.Minutes(), e*100, limit*100)
				}
				expTotal += meas
				modTotal += pr.T
			}
			// Application-level error must stay within the paper's 10%.
			if e := ErrorRate(modTotal, expTotal); e > 0.10 {
				t.Errorf("%s P=%d: app-level error %.1f%% > 10%%", devs.name, p, e*100)
			}
		}
	}
	if avg := sumErr / float64(cells); avg > 0.10 {
		t.Errorf("average per-stage error %.1f%% > 10%%", avg*100)
	}
}

func TestCalibrationNoWarningsForGATK4(t *testing.T) {
	cal := calibrateGATK4(t)
	// The SSD sample runs at P=1 must not be I/O-saturated for GATK4
	// (that is the paper's sanity check before fitting t_avg).
	for _, w := range cal.Warnings {
		t.Errorf("unexpected calibration warning: %s", w)
	}
}

func TestCalibrationRunsRecorded(t *testing.T) {
	cal := calibrateGATK4(t)
	for i, r := range []*spark.Result{cal.Run1, cal.Run2, cal.Run3, cal.Run4} {
		if r == nil {
			t.Fatalf("run %d missing", i+1)
		}
		if len(r.Stages) != 3 {
			t.Errorf("run %d has %d stages", i+1, len(r.Stages))
		}
	}
	if cal.Run1.Cores != 1 || cal.Run2.Cores != 2 || cal.Run3.Cores != 16 || cal.Run4.Cores != 16 {
		t.Error("sample runs used wrong core counts")
	}
	// Run 2 at P=2 should be roughly half run 1's wall time (scale
	// regime).
	ratio := cal.Run1.Total.Seconds() / cal.Run2.Total.Seconds()
	if ratio < 1.7 || ratio > 2.2 {
		t.Errorf("run1/run2 ratio = %.2f, want ~2 (both scale-bound)", ratio)
	}
}

// TestAblationPeakBW: replacing the request-size-aware lookup by peak
// bandwidth must blow up the HDD-local prediction error — the paper's
// core argument against Ernest-style models.
func TestAblationPeakBW(t *testing.T) {
	if testing.Short() {
		t.Skip("extra sim runs")
	}
	cal := calibrateGATK4(t)
	hdd, ssd := disk.NewHDD(), disk.NewSSD()
	w, _ := workloads.Get("gatk4")
	cfg := spark.DefaultTestbed(10, 24, ssd, hdd)
	res, err := spark.Run(cfg, w.Build(cfg))
	if err != nil {
		t.Fatal(err)
	}
	pl := PlatformFor(cfg)
	meas := res.MustStage("BR").Duration()

	good, _ := cal.Model.Predict(pl, ModeDoppio)
	bad, _ := cal.Model.Predict(pl, ModePeakBW)
	gp, _ := good.Stage("BR")
	bp, _ := bad.Stage("BR")
	if e := ErrorRate(gp.T, meas); e > 0.15 {
		t.Errorf("doppio BR error %.0f%%", e*100)
	}
	if e := ErrorRate(bp.T, meas); e < 0.5 {
		t.Errorf("peak-BW BR error only %.0f%%; ablation should fail badly", e*100)
	}
}
