package core

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/spark"
	"repro/internal/units"
)

// refPredict is the pre-compilation prediction path — a direct loop
// over StageModel.Predict, which the compiled path must reproduce
// byte-for-byte.
func refPredict(a AppModel, pl Platform, mode Mode) AppPrediction {
	out := AppPrediction{App: a.Name}
	for _, s := range a.Stages {
		sp := s.Predict(pl, mode)
		out.Stages = append(out.Stages, sp)
		out.Total += sp.T
	}
	return out
}

// steppedCurve is a non-flat bandwidth curve so the compiled path is
// exercised with real request-size-dependent lookups.
func steppedCurve(base units.Rate) *disk.Curve {
	return disk.MustCurve([]disk.CurvePoint{
		{ReqSize: 4 * units.KB, Bandwidth: base / 8},
		{ReqSize: 512 * units.KB, Bandwidth: base / 2},
		{ReqSize: 16 * units.MB, Bandwidth: base},
		{ReqSize: units.GB, Bandwidth: base + base/4},
	})
}

func testEnv() Env {
	return Env{
		Curves: Curves{
			HDFSRead:   steppedCurve(units.MBps(180)),
			HDFSWrite:  steppedCurve(units.MBps(120)),
			LocalRead:  steppedCurve(units.MBps(400)),
			LocalWrite: steppedCurve(units.MBps(350)),
		},
		Replication: 2,
		BlockSize:   128 * units.MB,
	}
}

// testApp mixes HDFS, shuffle and persist ops across devices, with and
// without T caps, coupled rates and explicit request sizes, plus all
// three delta terms — every branch of the compiler.
func testApp() AppModel {
	return AppModel{
		Name: "compiled-test",
		Stages: []StageModel{
			{
				Name: "read-heavy",
				Groups: []GroupModel{{
					Name: "g0", Count: 300, ComputePerTask: 2 * time.Second,
					Ops: []OpModel{
						{Kind: spark.OpHDFSRead, BytesPerTask: 200 * units.MB, T: units.MBps(150)},
						{Kind: spark.OpShuffleWrite, BytesPerTask: 30 * units.MB},
					},
				}},
				DeltaScale: 700 * time.Millisecond,
				DeltaRead:  400 * time.Millisecond,
			},
			{
				Name: "mixed",
				Groups: []GroupModel{
					{
						Name: "g1", Count: 120, ComputePerTask: time.Second,
						Ops: []OpModel{
							{Kind: spark.OpShuffleRead, BytesPerTask: 45 * units.MB, ReqSize: 2 * units.MB},
							{Kind: spark.OpHDFSWrite, BytesPerTask: 64 * units.MB, CoupledRate: units.MBps(500)},
						},
					},
					{
						Name: "g2", Count: 40, ComputePerTask: 4 * time.Second,
						Ops: []OpModel{
							{Kind: spark.OpPersistRead, BytesPerTask: 16 * units.MB},
							{Kind: spark.OpPersistWrite, BytesPerTask: 16 * units.MB},
						},
					},
				},
				DeltaWrite: 900 * time.Millisecond,
			},
			{
				Name: "compute-only",
				Groups: []GroupModel{{
					Name: "g3", Count: 512, ComputePerTask: 750 * time.Millisecond,
				}},
				DeltaScale: time.Second,
			},
		},
	}
}

func TestCompiledPredictMatchesReference(t *testing.T) {
	app := testApp()
	env := testEnv()
	pl := Platform{Curves: env.Curves, Replication: env.Replication, BlockSize: env.BlockSize}
	for _, mode := range []Mode{ModeDoppio, ModePeakBW, ModeNoOverlap} {
		cm, err := Compile(app, env, mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		for _, sh := range []Shape{{1, 1}, {3, 8}, {10, 36}, {32, 16}, {100, 4}} {
			pl.N, pl.P = sh.N, sh.P
			want := refPredict(app, pl, mode)
			got, err := cm.Predict(sh.N, sh.P)
			if err != nil {
				t.Fatalf("%v %v: %v", mode, sh, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%v %v: compiled prediction diverges\n got %+v\nwant %+v", mode, sh, got, want)
			}
			// The public wrapper must agree too.
			viaModel, err := app.Predict(pl, mode)
			if err != nil {
				t.Fatalf("%v %v: %v", mode, sh, err)
			}
			if !reflect.DeepEqual(viaModel, want) {
				t.Errorf("%v %v: AppModel.Predict diverges from reference", mode, sh)
			}
		}
	}
}

func TestCompiledBatchAndTotalMatchPredict(t *testing.T) {
	cm, err := Compile(testApp(), testEnv(), ModeDoppio)
	if err != nil {
		t.Fatal(err)
	}
	shapes := []Shape{{2, 4}, {5, 16}, {8, 8}, {32, 2}, {7, 36}}
	out := make([]time.Duration, len(shapes))
	got, err := cm.PredictBatch(shapes, out)
	if err != nil {
		t.Fatal(err)
	}
	for i, sh := range shapes {
		pred, err := cm.Predict(sh.N, sh.P)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != pred.Total {
			t.Errorf("shape %v: batch %v != Predict total %v", sh, got[i], pred.Total)
		}
		total, err := cm.Total(sh.N, sh.P)
		if err != nil {
			t.Fatal(err)
		}
		if total != pred.Total {
			t.Errorf("shape %v: Total %v != Predict total %v", sh, total, pred.Total)
		}
	}
}

func TestPredictBatchZeroAlloc(t *testing.T) {
	cm, err := Compile(testApp(), testEnv(), ModeDoppio)
	if err != nil {
		t.Fatal(err)
	}
	shapes := make([]Shape, 64)
	for i := range shapes {
		shapes[i] = Shape{N: 1 + i%8, P: 1 + i%32}
	}
	out := make([]time.Duration, len(shapes))
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := cm.PredictBatch(shapes, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("PredictBatch allocates %.1f times per call, want 0", allocs)
	}
}

func TestPredictBatchErrors(t *testing.T) {
	cm, err := Compile(testApp(), testEnv(), ModeDoppio)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cm.PredictBatch(make([]Shape, 3), make([]time.Duration, 2)); err == nil {
		t.Error("short out slab accepted")
	}
	if _, err := cm.PredictBatch([]Shape{{0, 4}}, make([]time.Duration, 1)); err == nil {
		t.Error("zero N accepted")
	}
	if _, err := cm.Predict(3, 0); err == nil {
		t.Error("zero P accepted")
	}
	if _, err := cm.Total(-1, 4); err == nil {
		t.Error("negative N accepted")
	}
}

func TestCompileValidates(t *testing.T) {
	if _, err := Compile(AppModel{Name: "empty"}, testEnv(), ModeDoppio); err == nil {
		t.Error("empty model compiled")
	}
	bad := testEnv()
	bad.Replication = 0
	if _, err := Compile(testApp(), bad, ModeDoppio); err == nil {
		t.Error("bad env compiled")
	}
}

func TestTopBottleneckMatchesCensus(t *testing.T) {
	app := testApp()
	env := testEnv()
	cm, err := Compile(app, env, ModeDoppio)
	if err != nil {
		t.Fatal(err)
	}
	pl := Platform{Curves: env.Curves, Replication: env.Replication, BlockSize: env.BlockSize}
	for _, sh := range []Shape{{1, 1}, {3, 8}, {10, 36}, {64, 32}} {
		pl.N, pl.P = sh.N, sh.P
		// Reference census: the rule the sweep endpoint has always used.
		counts := map[string]int{}
		top := ""
		for _, s := range app.Stages {
			st := s.Predict(pl, ModeDoppio)
			counts[st.Bottleneck]++
			if top == "" || counts[st.Bottleneck] > counts[top] {
				top = st.Bottleneck
			}
		}
		got, err := cm.TopBottleneck(sh.N, sh.P)
		if err != nil {
			t.Fatal(err)
		}
		if got != top {
			t.Errorf("shape %v: TopBottleneck = %q, census says %q", sh, got, top)
		}
	}
}
