package core

import (
	"fmt"
	"time"

	"repro/internal/units"
)

// Env is the part of a Platform that does not depend on the cluster
// shape: the device bandwidth curves and the HDFS configuration. A
// model compiled against an Env can be evaluated for any (N, P) — that
// is what makes the compiled form reusable across a whole search grid,
// where the devices are fixed per subspace and only the shape varies.
type Env struct {
	Curves      Curves
	Replication int
	BlockSize   units.ByteSize
	// Memory enables the t_mem_limit term; the zero value disables it
	// (see memory.go).
	Memory MemParams
}

// EnvOf extracts the environment of a platform.
func EnvOf(pl Platform) Env {
	return Env{Curves: pl.Curves, Replication: pl.Replication, BlockSize: pl.BlockSize, Memory: pl.Memory}
}

// Validate checks the environment.
func (e Env) Validate() error {
	switch {
	case e.Replication <= 0:
		return fmt.Errorf("core: Replication must be positive, got %d", e.Replication)
	case e.BlockSize <= 0:
		return fmt.Errorf("core: BlockSize must be positive")
	case e.Curves.HDFSRead == nil || e.Curves.HDFSWrite == nil ||
		e.Curves.LocalRead == nil || e.Curves.LocalWrite == nil:
		return fmt.Errorf("core: incomplete curve set")
	}
	return e.Memory.Validate()
}

// platform reconstructs a Platform for the op-level helpers (which
// never read N or P).
func (e Env) platform() Platform {
	return Platform{N: 1, P: 1, Curves: e.Curves, Replication: e.Replication, BlockSize: e.BlockSize, Memory: e.Memory}
}

// checkShape validates a cluster shape with the same errors
// Platform.Validate reports, so the compiled path and the classic path
// fail identically.
func checkShape(n, p int) error {
	switch {
	case n <= 0:
		return fmt.Errorf("core: N must be positive, got %d", n)
	case p <= 0:
		return fmt.Errorf("core: P must be positive, got %d", p)
	}
	return nil
}

// Shape is one (N, P) cluster shape in a batch prediction.
type Shape struct {
	// N is the number of slave nodes, P the executor cores per node.
	N, P int
}

// compiledGroup is the per-group input of the t_scale term. count is
// stored pre-converted so the hot loop does no int-to-float work, but
// the arithmetic — count/(N·P)·t_g, summed in group order — is exactly
// the expression StageModel.Predict evaluates.
type compiledGroup struct {
	count float64 // float64(GroupModel.Count)
	tgSec float64 // GroupModel.TaskTime(env, mode) in seconds
	// ws is the per-task in-heap working set in bytes for the
	// t_mem_limit term; zero when the environment's memory model is off.
	ws float64
}

// compiledStage is the flat, shape-independent residue of one
// StageModel against one Env: everything Eq. 1 needs except N and P.
type compiledStage struct {
	name   string
	groups []compiledGroup
	// readSec/writeSec are Σ D_op/BW_op device-seconds per (device,
	// direction) path, accumulated in the same (group, op) order as
	// StageModel.Predict. Index 0 is the Spark Local device, 1 is HDFS.
	readSec  [2]float64
	writeSec [2]float64
	// tAvg is the count-weighted average task time (shape-independent).
	tAvg                              time.Duration
	deltaScale, deltaRead, deltaWrite time.Duration
}

// CompiledModel is an AppModel compiled against a fixed environment:
// all curve lookups, request-size resolution, replication amplification
// and per-op aggregation are done once, leaving per-prediction work of
// a handful of floating-point operations per stage. A CompiledModel is
// immutable after Compile and therefore safe for concurrent use; the
// prediction methods allocate nothing (PredictBatch is the zero-alloc
// steady-state API).
//
// Predictions are byte-identical to AppModel.Predict on a Platform with
// the same environment: the compiled form preserves the exact
// floating-point expression order of the classic path.
type CompiledModel struct {
	app    string
	mode   Mode
	stages []compiledStage
	// mem is the curve-resolved memory model; memOn gates every memory
	// branch so a memory-free environment evaluates the exact legacy
	// expressions.
	mem   memEnv
	memOn bool
}

// Compile flattens the model against the environment. The model and
// environment are validated once here instead of per prediction.
func Compile(a AppModel, env Env, mode Mode) (*CompiledModel, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if err := env.Validate(); err != nil {
		return nil, err
	}
	return compile(a, env, mode), nil
}

// compile assumes a validated model and environment.
func compile(a AppModel, env Env, mode Mode) *CompiledModel {
	pl := env.platform()
	cm := &CompiledModel{app: a.Name, mode: mode, stages: make([]compiledStage, 0, len(a.Stages))}
	cm.mem, cm.memOn = env.Memory.resolve(env.Curves)
	for _, s := range a.Stages {
		cs := compiledStage{
			name:       s.Name,
			groups:     make([]compiledGroup, 0, len(s.Groups)),
			deltaScale: s.DeltaScale,
			deltaRead:  s.DeltaRead,
			deltaWrite: s.DeltaWrite,
		}
		var weighted float64
		total := 0
		for _, g := range s.Groups {
			tg := g.TaskTime(pl, mode).Seconds()
			cg := compiledGroup{count: float64(g.Count), tgSec: tg}
			if cm.memOn {
				cg.ws = cm.mem.groupWS(g)
			}
			cs.groups = append(cs.groups, cg)
			weighted += float64(g.Count) * tg
			total += g.Count
		}
		if total > 0 {
			cs.tAvg = units.SecDuration(weighted / float64(total))
		}
		// Per-path D/BW sums, same op walk as StageModel.Predict.
		for _, g := range s.Groups {
			for _, op := range g.Ops {
				bw := effBW(op, pl, mode)
				if bw <= 0 || op.BytesPerTask <= 0 {
					continue
				}
				vol := units.ByteSize(int64(g.Count)) * opVolume(op, pl)
				sec := float64(vol) / float64(bw)
				d := deviceIdx(op.Kind)
				if op.Kind.IsRead() {
					cs.readSec[d] += sec
				} else {
					cs.writeSec[d] += sec
				}
			}
		}
		cm.stages = append(cm.stages, cs)
	}
	return cm
}

// App returns the compiled model's application name.
func (c *CompiledModel) App() string { return c.app }

// Mode returns the model variant the compilation resolved.
func (c *CompiledModel) Mode() Mode { return c.mode }

// stageIOTerms are one stage's shape-dependent I/O limit terms. They
// depend on N only, so batch evaluation computes them once per node
// count and reuses them across the P axis — reuse is byte-identical to
// recomputation because the operations are deterministic.
type stageIOTerms struct {
	read, write, dev time.Duration
}

// ioTerms evaluates the three I/O limit terms of Eq. 1, mirroring
// StageModel.Predict operation for operation.
func (cs *compiledStage) ioTerms(n int) stageIOTerms {
	var io stageIOTerms
	nf := float64(n)
	if r := maxf(cs.readSec[0], cs.readSec[1]); r > 0 {
		io.read = units.SecDuration(r/nf) + cs.deltaRead
	}
	if w := maxf(cs.writeSec[0], cs.writeSec[1]); w > 0 {
		io.write = units.SecDuration(w/nf) + cs.deltaWrite
	}
	for d := 0; d < 2; d++ {
		combined := cs.readSec[d] + cs.writeSec[d]
		if combined <= 0 {
			continue
		}
		lim := units.SecDuration(combined / nf)
		if cs.readSec[d] > 0 {
			lim += cs.deltaRead
		}
		if cs.writeSec[d] > 0 {
			lim += cs.deltaWrite
		}
		if lim > io.dev {
			io.dev = lim
		}
	}
	return io
}

// scale evaluates t_scale: Σ_g Count_g/(N·P)·t_avg_g + δ_scale, with
// the per-group expression order of StageModel.Predict.
func (cs *compiledStage) scale(n, p int) time.Duration {
	var scaleSec float64
	np := float64(n * p)
	for _, g := range cs.groups {
		scaleSec += g.count / np * g.tgSec
	}
	return units.SecDuration(scaleSec) + cs.deltaScale
}

// timeWith combines precomputed I/O terms with the shape's scaling term
// into the stage time, applying the mode's overlap rule.
func (cs *compiledStage) timeWith(io stageIOTerms, n, p int, mode Mode) time.Duration {
	ts := cs.scale(n, p)
	if mode == ModeNoOverlap {
		return ts + io.read + io.write
	}
	t := ts
	if io.read > t {
		t = io.read
	}
	if io.write > t {
		t = io.write
	}
	if io.dev > t {
		t = io.dev
	}
	return t
}

// memLimit evaluates one stage's t_mem_limit for a shape without
// allocating; zero when the environment's memory model is off. The
// per-group expressions are memEnv.groupTerms, shared with
// StageModel.Predict for byte-identity.
func (c *CompiledModel) memLimit(cs *compiledStage, n, p int) time.Duration {
	if !c.memOn {
		return 0
	}
	nf, pf := float64(n), float64(p)
	var memScale, memDev float64
	for _, g := range cs.groups {
		a, b := c.mem.groupTerms(g.count, g.ws, nf, pf)
		memScale += a
		memDev += b
	}
	return units.SecDuration(maxf(memScale, memDev))
}

// evalStage evaluates Eq. 1 for one compiled stage, byte-identical to
// StageModel.Predict, without allocating.
func (c *CompiledModel) evalStage(cs *compiledStage, n, p int) StagePrediction {
	pred := StagePrediction{Name: cs.name, TAvg: cs.tAvg}
	pred.TScale = cs.scale(n, p)
	io := cs.ioTerms(n)
	pred.TReadLimit, pred.TWriteLimit, pred.TDeviceLimit = io.read, io.write, io.dev
	pred.TMemLimit = c.memLimit(cs, n, p)

	if c.mode == ModeNoOverlap {
		pred.T = pred.TScale + pred.TReadLimit + pred.TWriteLimit + pred.TMemLimit
		pred.Bottleneck = "sum"
		return pred
	}

	pred.T = pred.TScale
	pred.Bottleneck = "scale"
	if pred.TReadLimit > pred.T {
		pred.T = pred.TReadLimit
		pred.Bottleneck = "read"
	}
	if pred.TWriteLimit > pred.T {
		pred.T = pred.TWriteLimit
		pred.Bottleneck = "write"
	}
	if pred.TDeviceLimit > pred.T {
		pred.T = pred.TDeviceLimit
		pred.Bottleneck = "device"
	}
	if pred.TMemLimit > 0 && pred.TMemLimit > pred.T {
		pred.Bottleneck = "memory"
	}
	pred.T += pred.TMemLimit
	return pred
}

// Predict evaluates the compiled model for one cluster shape, returning
// the full per-stage breakdown (this allocates the stage slice; use
// Total or PredictBatch on the hot path).
func (c *CompiledModel) Predict(n, p int) (AppPrediction, error) {
	if err := checkShape(n, p); err != nil {
		return AppPrediction{}, err
	}
	out := AppPrediction{App: c.app, Stages: make([]StagePrediction, len(c.stages))}
	for i := range c.stages {
		sp := c.evalStage(&c.stages[i], n, p)
		out.Stages[i] = sp
		out.Total += sp.T
	}
	return out, nil
}

// Total evaluates t_app for one shape without allocating.
func (c *CompiledModel) Total(n, p int) (time.Duration, error) {
	if err := checkShape(n, p); err != nil {
		return 0, err
	}
	var total time.Duration
	for i := range c.stages {
		total += c.evalStage(&c.stages[i], n, p).T
	}
	return total, nil
}

// PredictBatch evaluates t_app for every shape, writing results into
// the caller-provided slab. It allocates nothing (the slab is sized by
// the caller, typically reused across batches), making it the
// steady-state API for grid sweeps; it is safe to call concurrently on
// the same CompiledModel. It returns out[:len(shapes)].
func (c *CompiledModel) PredictBatch(shapes []Shape, out []time.Duration) ([]time.Duration, error) {
	if len(out) < len(shapes) {
		return nil, fmt.Errorf("core: PredictBatch: out has %d slots for %d shapes", len(out), len(shapes))
	}
	for _, sh := range shapes {
		if err := checkShape(sh.N, sh.P); err != nil {
			return nil, err
		}
	}
	// The I/O limit terms depend on N only; batches are typically sorted
	// or grouped by N (grid enumerations vary P innermost), so caching
	// the last N's terms removes most of the per-shape work. Better
	// still, the three terms fold to a single duration per stage: under
	// overlap the stage time is max(t_scale, read, write, device) — equal
	// to max(t_scale, fold) with fold = max(read, write, device) — and
	// under ModeNoOverlap it is t_scale + (read + write); int64 duration
	// addition is associative, so both folds are exact. Stage counts
	// beyond the stack buffer fall back to per-shape evaluation.
	stages := c.stages
	var foldBuf [64]time.Duration
	if len(stages) > len(foldBuf) {
		for i, sh := range shapes {
			var total time.Duration
			for j := range stages {
				total += c.evalStage(&stages[j], sh.N, sh.P).T
			}
			out[i] = total
		}
		return out[:len(shapes)], nil
	}
	fold := foldBuf[:len(stages)]
	noOverlap := c.mode == ModeNoOverlap
	lastN := 0 // shapes are validated, so N >= 1 marks the cache filled
	for i, sh := range shapes {
		if sh.N != lastN {
			for j := range stages {
				io := stages[j].ioTerms(sh.N)
				if noOverlap {
					fold[j] = io.read + io.write
				} else {
					f := io.read
					if io.write > f {
						f = io.write
					}
					if io.dev > f {
						f = io.dev
					}
					fold[j] = f
				}
			}
			lastN = sh.N
		}
		np := float64(sh.N * sh.P)
		var total time.Duration
		for j := range stages {
			var scaleSec float64
			for _, g := range stages[j].groups {
				scaleSec += g.count / np * g.tgSec
			}
			ts := units.SecDuration(scaleSec) + stages[j].deltaScale
			if noOverlap {
				ts += fold[j]
			} else if fold[j] > ts {
				ts = fold[j]
			}
			// t_mem_limit depends on both N and P, so it sits outside the
			// N-only fold; the branch is skipped entirely when the memory
			// model is off, keeping the legacy fast path intact.
			if c.memOn {
				ts += c.memLimit(&stages[j], sh.N, sh.P)
			}
			total += ts
		}
		out[i] = total
	}
	return out[:len(shapes)], nil
}

// TopBottleneck returns the most common per-stage bottleneck for the
// shape, with ties resolved in stage order (the same census rule the
// serve sweep endpoint has always used). It does not allocate.
func (c *CompiledModel) TopBottleneck(n, p int) (string, error) {
	if err := checkShape(n, p); err != nil {
		return "", err
	}
	// Indexes into bottleneckNames; mirrors the string census of the
	// sweep handler: top switches only on a strictly greater count.
	var counts [6]int
	top := -1
	for i := range c.stages {
		sp := c.evalStage(&c.stages[i], n, p)
		k := bottleneckIndex(sp.Bottleneck)
		counts[k]++
		if top < 0 || counts[k] > counts[top] {
			top = k
		}
	}
	if top < 0 {
		return "", nil
	}
	return bottleneckNames[top], nil
}

var bottleneckNames = [6]string{"scale", "read", "write", "device", "sum", "memory"}

func bottleneckIndex(b string) int {
	for i, n := range bottleneckNames {
		if n == b {
			return i
		}
	}
	return 0
}
