package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/spark"
	"repro/internal/units"
)

// FaultParams feeds the expected-runtime-under-faults estimator. It is
// the analytical mirror of spark.FaultConfig: the simulator injects
// individual failures; this model predicts their aggregate cost so
// degraded simulated runs can be checked against a closed form.
type FaultParams struct {
	// TaskFailureProb is the per-attempt failure probability.
	TaskFailureProb float64
	// ShuffleFetchFailureProb is the per-attempt fetch-failure
	// probability of shuffle-read tasks.
	ShuffleFetchFailureProb float64
	// MaxTaskFailures is the attempt budget (spark.task.maxFailures);
	// zero means the Spark default of 4.
	MaxTaskFailures int
	// RetryBackoff is the base retry delay; zero means one second.
	RetryBackoff time.Duration
}

// Enabled reports whether any fault source is configured.
func (f FaultParams) Enabled() bool {
	return f.TaskFailureProb > 0 || f.ShuffleFetchFailureProb > 0
}

// Validate checks the parameters.
func (f FaultParams) Validate() error {
	switch {
	case f.TaskFailureProb < 0 || f.TaskFailureProb >= 1:
		return fmt.Errorf("core: TaskFailureProb %v outside [0,1)", f.TaskFailureProb)
	case f.ShuffleFetchFailureProb < 0 || f.ShuffleFetchFailureProb >= 1:
		return fmt.Errorf("core: ShuffleFetchFailureProb %v outside [0,1)", f.ShuffleFetchFailureProb)
	case f.MaxTaskFailures < 0:
		return fmt.Errorf("core: negative MaxTaskFailures")
	case f.RetryBackoff < 0:
		return fmt.Errorf("core: negative RetryBackoff")
	}
	return nil
}

// FaultsFor converts a simulator fault configuration to model
// parameters, keeping experiment code honest about using the same
// numbers on both sides of a model-vs-simulation comparison.
func FaultsFor(f spark.FaultConfig) FaultParams {
	return FaultParams{
		TaskFailureProb:         f.TaskFailureProb,
		ShuffleFetchFailureProb: f.ShuffleFetchFailureProb,
		MaxTaskFailures:         f.MaxTaskFailures,
		RetryBackoff:            units.SecDuration(f.RetryBackoff.Seconds()),
	}
}

func (f FaultParams) maxTaskFailures() int {
	if f.MaxTaskFailures > 0 {
		return f.MaxTaskFailures
	}
	return 4
}

func (f FaultParams) backoffBase() time.Duration {
	if f.RetryBackoff > 0 {
		return f.RetryBackoff
	}
	return time.Second
}

// extraAttempts returns the expected number of failed attempts per task
// for per-attempt failure probability p under an attempt budget of K:
// Σ_{k=1..K-1} p^k, the truncated geometric mean (runs exhausting the
// budget abort the application and are excluded).
func (f FaultParams) extraAttempts(p float64) float64 {
	if p <= 0 {
		return 0
	}
	e, pk := 0.0, 1.0
	for k := 1; k < f.maxTaskFailures(); k++ {
		pk *= p
		e += pk
	}
	return e
}

// FaultyStagePrediction is one stage's degraded-runtime estimate.
type FaultyStagePrediction struct {
	// StagePrediction holds the degraded Eq. 1 terms; T is the expected
	// stage time under faults.
	StagePrediction
	// Base is the fault-free stage prediction for the same platform and
	// mode, so Inflation = T/Base.
	Base time.Duration
	// ExtraAttempts is the expected number of failed attempts across the
	// stage's tasks.
	ExtraAttempts float64
	// Recomputes is the expected number of parent map-task
	// recomputations triggered by fetch failures.
	Recomputes float64
}

// FaultyAppPrediction sums the degraded stage estimates.
type FaultyAppPrediction struct {
	App    string
	Stages []FaultyStagePrediction
	// Total is the expected application runtime under faults; Base is
	// the fault-free prediction.
	Total time.Duration
	Base  time.Duration
	// AbortProb is the probability that some task exhausts its attempt
	// budget and the application aborts (the estimate conditions on
	// survival).
	AbortProb float64
}

// Inflation returns Total/Base, the headline degradation factor the
// resilience sweeps compare across devices.
func (p FaultyAppPrediction) Inflation() float64 {
	if p.Base <= 0 {
		return 1
	}
	return p.Total.Seconds() / p.Base.Seconds()
}

// wasteFraction is the expected fraction of an attempt's work done
// before an injected failure: the failure point is uniform over the op
// boundaries, so half on average.
const wasteFraction = 0.5

// PredictFaulty evaluates the expected runtime under faults: a
// first-order extension of Eq. 1 where
//
//   - every failed attempt wastes wasteFraction of its work, inflating
//     both the scale term's core-seconds and the I/O terms' volumes by
//     (1 + E[extra attempts]·wasteFraction);
//   - each fetch failure on a shuffle-read stage additionally recomputes
//     one parent map task — re-reading the parent's HDFS input at block
//     sizes and re-writing its shuffle output at small request sizes —
//     charged to the consumer stage's terms. This is where the
//     request-size-aware curves make recovery device-dependent: the
//     recompute is cheap on SSD and brutal on HDD;
//   - the last wave's failures cannot hide behind other tasks, so the
//     scale term gains p·(wasteFraction·t_avg + backoff) of expected
//     tail latency.
//
// Stages are treated as a linear chain (stage i's parent is stage i-1),
// matching the simulator's implicit scheduling for chain apps.
func (a AppModel) PredictFaulty(pl Platform, mode Mode, f FaultParams) (FaultyAppPrediction, error) {
	if err := f.Validate(); err != nil {
		return FaultyAppPrediction{}, err
	}
	base, err := a.Predict(pl, mode)
	if err != nil {
		return FaultyAppPrediction{}, err
	}
	out := FaultyAppPrediction{App: a.Name, Base: base.Total}
	if !f.Enabled() {
		// Strictly additive, like the simulator: no faults, no change.
		for _, sp := range base.Stages {
			out.Stages = append(out.Stages, FaultyStagePrediction{StagePrediction: sp, Base: sp.T})
		}
		out.Total = base.Total
		return out, nil
	}

	p := f.TaskFailureProb
	q := f.ShuffleFetchFailureProb
	inflate := 1 + f.extraAttempts(p)*wasteFraction
	survive := 1.0
	for i, s := range a.Stages {
		sp := s.Predict(pl, mode)
		fs := FaultyStagePrediction{StagePrediction: sp, Base: sp.T}

		// Work inflation applies to the load-dependent part of every
		// term; the δ constants are serial overheads failures do not
		// multiply.
		fs.TScale = scaleTerm(sp.TScale, s.DeltaScale, inflate)
		fs.TReadLimit = scaleTerm(sp.TReadLimit, s.DeltaRead, inflate)
		fs.TWriteLimit = scaleTerm(sp.TWriteLimit, s.DeltaWrite, inflate)
		fs.TDeviceLimit = scaleTerm(sp.TDeviceLimit, s.DeltaRead+s.DeltaWrite, inflate)
		fs.ExtraAttempts = f.extraAttempts(p) * float64(s.M())

		// Tail latency: a failure in the final wave delays the stage by
		// the wasted work plus the backoff before the retry.
		if p > 0 {
			fs.TScale += units.SecDuration(p * (wasteFraction*sp.TAvg.Seconds() + f.backoffBase().Seconds()))
		}

		// Fetch failures: each recomputes one parent map task, adding
		// the parent's op volumes to this stage's device loads and the
		// parent's task time to its core work.
		if q > 0 && i > 0 {
			parent := a.Stages[i-1]
			if g := shuffleReadTasks(s); g > 0 && len(parent.Groups) > 0 {
				rec := f.extraAttempts(q) * float64(g)
				fs.Recomputes = rec
				pg := parent.Groups[0]
				perRecompute := pg.TaskTime(pl, mode).Seconds()
				fs.TScale += units.SecDuration(rec / float64(pl.N*pl.P) * perRecompute)
				rSec, wSec := opDeviceSeconds(pg.Ops, pl, mode)
				fs.TReadLimit += units.SecDuration(rec * rSec / float64(pl.N))
				fs.TWriteLimit += units.SecDuration(rec * wSec / float64(pl.N))
				fs.TDeviceLimit += units.SecDuration(rec * (rSec + wSec) / float64(pl.N))
				// A fetch-failed reducer's recovery is serial: backoff,
				// recompute, then a full re-attempt. A final-wave failure
				// cannot hide behind other tasks, so the chain extends the
				// stage tail with probability q.
				chain := f.backoffBase().Seconds() + perRecompute + sp.TAvg.Seconds()
				fs.TScale += units.SecDuration(q * chain)
			}
		}

		fs.T = fs.TScale
		fs.Bottleneck = "scale"
		if fs.TReadLimit > fs.T {
			fs.T = fs.TReadLimit
			fs.Bottleneck = "read"
		}
		if fs.TWriteLimit > fs.T {
			fs.T = fs.TWriteLimit
			fs.Bottleneck = "write"
		}
		if fs.TDeviceLimit > fs.T {
			fs.T = fs.TDeviceLimit
			fs.Bottleneck = "device"
		}
		if mode == ModeNoOverlap {
			fs.T = fs.TScale + fs.TReadLimit + fs.TWriteLimit
			fs.Bottleneck = "sum"
		}
		out.Stages = append(out.Stages, fs)
		out.Total += fs.T

		// Budget exhaustion aborts the app: P(task survives) summed over
		// both failure channels, per task.
		pk := math.Pow(p, float64(f.maxTaskFailures()))
		qk := 0.0
		if i > 0 {
			qk = math.Pow(q, float64(f.maxTaskFailures()))
		}
		survive *= math.Pow((1-pk)*(1-qk), float64(s.M()))
	}
	out.AbortProb = 1 - survive
	return out, nil
}

// scaleTerm inflates the load-dependent part of an Eq. 1 term, leaving
// its δ constant alone. Zero terms stay zero.
func scaleTerm(t, delta time.Duration, factor float64) time.Duration {
	if t <= 0 {
		return t
	}
	load := t - delta
	if load < 0 {
		load = 0
	}
	return units.SecDuration(load.Seconds()*factor) + delta
}

// shuffleReadTasks counts the stage's tasks that perform shuffle reads
// (the population exposed to fetch failures).
func shuffleReadTasks(s StageModel) int {
	n := 0
	for _, g := range s.Groups {
		for _, op := range g.Ops {
			if op.Kind == spark.OpShuffleRead {
				n += g.Count
				break
			}
		}
	}
	return n
}

// opDeviceSeconds sums one task's device-seconds per direction at the
// platform's effective bandwidths — the per-recompute I/O load.
func opDeviceSeconds(ops []OpModel, pl Platform, mode Mode) (readSec, writeSec float64) {
	for _, op := range ops {
		bw := effBW(op, pl, mode)
		if bw <= 0 || op.BytesPerTask <= 0 {
			continue
		}
		sec := float64(opVolume(op, pl)) / float64(bw)
		if op.Kind.IsRead() {
			readSec += sec
		} else {
			writeSec += sec
		}
	}
	return readSec, writeSec
}
